/**
 * @file
 * Ablation: count-weighted vs bytes-weighted partial offload.
 *
 * When only granularities above break-even are offloaded, the paper
 * scales the offloaded kernel fraction by the *count* of profitable
 * offloads (α_eff = α · n_prof/n_total) — the only quantity its
 * production tooling could measure. Physically, for a linear kernel the
 * cycles that leave the host scale with the *bytes* those offloads
 * carry. Our simulator executes selective offload exactly, so it can
 * adjudicate: which weighting predicts the measured speedup?
 *
 * The experiment offloads Feed1-style compression (off-chip Sync,
 * A=27, L=2300) with the break-even threshold applied, at several
 * synthetic granularity distributions from "uniform" (count ≈ bytes) to
 * "heavy-tailed" (few offloads carry most bytes).
 */

#include "bench_common.hh"
#include "microsim/ab_test.hh"
#include "model/granularity.hh"
#include "workload/request_factory.hh"

using namespace accel;
using model::AlphaWeighting;
using model::ThreadingDesign;

namespace {

struct Shape
{
    const char *name;
    std::shared_ptr<const BucketDist> sizes;
};

double
modelSpeedup(const BucketDist &sizes, double cb,
             AlphaWeighting weighting)
{
    model::Params base;
    base.hostCycles = 2.3e9;
    base.alpha = 0.15;
    base.interfaceCycles = 2300;
    base.accelFactor = 27;
    model::OffloadProfit profit{cb, 1.0};
    auto plan = model::planOffloads(sizes, 15008, base.alpha, profit,
                                    ThreadingDesign::Sync, base,
                                    weighting);
    model::Accelerometer m(model::applyPlan(base, base.alpha, plan));
    return m.speedup(ThreadingDesign::Sync) - 1.0;
}

} // namespace

int
main()
{
    bench::banner("Ablation: count- vs bytes-weighted partial offload "
                  "(simulator adjudicates)");

    std::vector<Shape> shapes = {
        {"uniform sizes",
         std::make_shared<const BucketDist>(std::vector<DistBucket>{
             {200, 4000, 1.0}})},
        {"Feed1 (Fig. 19)",
         workload::compressionSizes(workload::ServiceId::Feed1)},
        {"heavy tail",
         std::make_shared<const BucketDist>(std::vector<DistBucket>{
             {64, 425, 6.0}, {425, 2048, 2.5}, {16384, 65536, 1.5}})},
    };

    TextTable table({"granularity shape", "count-weighted model",
                     "bytes-weighted model", "simulated real",
                     "closer"});
    for (size_t c = 1; c <= 3; ++c)
        table.setAlign(c, Align::Right);

    const double cb = workload::feed1CompressionCyclesPerByte();
    for (const Shape &shape : shapes) {
        double count_est =
            modelSpeedup(*shape.sizes, cb, AlphaWeighting::CountWeighted);
        double bytes_est =
            modelSpeedup(*shape.sizes, cb, AlphaWeighting::BytesWeighted);

        // Ground truth: selective offload executed in the simulator.
        model::Params base;
        base.hostCycles = 2.3e9;
        base.alpha = 0.15;
        base.interfaceCycles = 2300;
        base.accelFactor = 27;
        model::OffloadProfit profit{cb, 1.0};
        double g_star =
            profit.breakEvenSpeedup(ThreadingDesign::Sync, base);

        microsim::AbExperiment e;
        e.service.cores = 1;
        e.service.threads = 1;
        e.service.design = ThreadingDesign::Sync;
        e.service.clockGHz = 2.3;
        e.service.minOffloadBytes = g_star;
        e.accelerator.speedupFactor = 27;
        e.accelerator.fixedLatencyCycles = 2300;
        e.accelerator.channels = 4;
        e.workload = workload::makeWorkload(base.hostCycles, base.alpha,
                                            15008, shape.sizes);
        // Keep the kernel cost per byte at the calibrated Cb so the
        // break-even threshold is consistent.
        e.workload.cyclesPerByte = cb;
        e.workload.nonKernelCyclesMean =
            (1 - base.alpha) / base.alpha * cb * shape.sizes->mean();
        e.seed = 31;
        e.measureSeconds = 1.0;
        e.warmupSeconds = 0.1;
        microsim::AbResult r = microsim::runAbTest(e);
        double real = r.measuredSpeedup() - 1.0;

        const char *closer =
            std::abs(count_est - real) < std::abs(bytes_est - real)
                ? "count" : "bytes";
        table.addRow({shape.name, fmtPct(count_est, 2),
                      fmtPct(bytes_est, 2), fmtPct(real, 2), closer});
    }
    std::cout << table.str();
    std::cout << "\nReadings: for linear kernels the bytes-weighted rule "
                 "tracks the executed reality; the paper's "
                 "count-weighted rule under-estimates whenever large "
                 "offloads carry a disproportionate share of bytes "
                 "(heavy-tailed CDFs). The paper's Fig. 20 numbers are "
                 "nevertheless reproduced with its own rule — see "
                 "fig20_projected_speedup.\n";
    return 0;
}

/**
 * @file
 * Ablation: the model's Q parameter. Several cores share one
 * accelerator channel; as core count grows, contention produces an
 * emergent per-offload queue wait in the simulator. We re-project the
 * speedup three ways — Q = 0 (the paper's validation setting), Q from
 * the M/M/1 approximation, and Q measured from the simulator — to show
 * when the queuing term matters and how well M/M/1 stands in for it.
 */

#include "bench_common.hh"
#include "microsim/ab_test.hh"
#include "model/queueing.hh"

using namespace accel;
using model::ThreadingDesign;

namespace {

/**
 * Second ablation: N tier replicas instead of one shared device. The
 * simulator round-robins offloads over k single-channel replicas (k
 * separate FIFO queues); the analytical stand-ins are M/M/k (one
 * shared queue, k servers) and k independent M/M/1 queues each fed
 * lambda/k. M/M/k is always the smaller of the two — a shared queue
 * never leaves a server idle while work waits, while round-robin can —
 * so the pair gives an error band for the open-loop approximations.
 */
void
replicaAdjudication()
{
    bench::banner("Ablation: multi-replica Q — M/M/k vs per-replica "
                  "M/M/1 vs simulator");

    const double kKernelCycles = 2000;
    const double kClockHz = 1e9;
    const double kServiceCycles = kKernelCycles / 2.0; // A = 2

    TextTable table({"replicas", "offloads/s", "util/replica", "Q sim",
                     "Q M/M/k", "Q kxM/M/1", "mmk err", "mm1 err"});
    for (size_t c = 1; c <= 7; ++c)
        table.setAlign(c, Align::Right);

    for (std::uint32_t k : {1u, 2u, 3u, 4u}) {
        microsim::AbExperiment e;
        e.service.cores = 6;
        e.service.threads = 6;
        e.service.design = ThreadingDesign::Sync;
        e.service.clockGHz = kClockHz / 1e9;
        e.accelerator.speedupFactor = 2;
        e.accelerator.channels = 1;
        e.tier.replicas = k;
        e.tier.policy = microsim::DispatchPolicy::RoundRobin;
        e.workload.nonKernelCyclesMean = 2000;
        e.workload.nonKernelCv = 0.4;
        e.workload.kernelsPerRequest = 1;
        e.workload.granularity = std::make_shared<const BucketDist>(
            std::vector<DistBucket>{{900, 1100, 1.0}});
        e.workload.cyclesPerByte = 2.0;
        e.measureSeconds = 0.05;
        e.warmupSeconds = 0.01;
        microsim::AbResult r = microsim::runAbTest(e);

        double offered = r.treatment.offloadsIssued /
            r.treatment.measuredSeconds;
        double q_sim = r.treatment.accelerator.queueWaitCycles.mean();
        double rho = model::utilization(kServiceCycles, offered,
                                        kClockHz) / k;

        std::string q_mmk = "saturated";
        std::string q_mm1 = "saturated";
        std::string mmk_err = "-";
        std::string mm1_err = "-";
        if (rho < 0.98) {
            double mmk = model::mmkWaitCycles(kServiceCycles, offered,
                                              kClockHz, k);
            double mm1 = model::mm1WaitCycles(kServiceCycles,
                                              offered / k, kClockHz);
            q_mmk = fmtF(mmk, 0);
            q_mm1 = fmtF(mm1, 0);
            mmk_err = fmtF(mmk - q_sim, 0);
            mm1_err = fmtF(mm1 - q_sim, 0);
        }
        table.addRow({fmtF(k, 0), fmtF(offered, 0), fmtF(rho, 2),
                      fmtF(q_sim, 0), q_mmk, q_mm1, mmk_err, mm1_err});
    }
    std::cout << table.str();
    std::cout << "\nReadings: adding replicas drains the contention "
                 "that saturated the single device — per-replica "
                 "utilization falls and the measured wait collapses. "
                 "Both open-loop stand-ins over-estimate that wait "
                 "here, and by a wide margin near saturation: the "
                 "closed loop caps the queue at the client population "
                 "(6 threads), arrivals are smoother than Poisson, and "
                 "service is near-deterministic, all of which M/M/* "
                 "assumptions give away. The shared-queue M/M/k is "
                 "consistently the tighter of the two (k separate "
                 "round-robin queues waste idle servers, so k x M/M/1 "
                 "sits ~2x higher at moderate load); treat [M/M/k, "
                 "k x M/M/1] as the model's error band, use M/M/k for "
                 "tier capacity planning, and prefer the measured "
                 "sum-of-Qi form when projecting speedup for a "
                 "deployed tier.\n";
}

} // namespace

int
main()
{
    bench::banner("Ablation: the Q parameter under device contention");

    const double kKernelCycles = 2000;
    const double kClockHz = 1e9;
    const double kServiceCycles = kKernelCycles / 2.0; // A = 2

    TextTable table({"cores", "offloads/s", "util", "Q sim",
                     "model Q=0", "model Q=M/M/1", "model Q=sim",
                     "sim speedup"});
    for (size_t c = 1; c <= 7; ++c)
        table.setAlign(c, Align::Right);

    for (std::uint32_t cores : {1u, 2u, 3u, 4u, 6u}) {
        microsim::AbExperiment e;
        e.service.cores = cores;
        e.service.threads = cores;
        e.service.design = ThreadingDesign::Sync;
        e.service.clockGHz = kClockHz / 1e9;
        e.accelerator.speedupFactor = 2;
        e.accelerator.channels = 1;
        e.workload.nonKernelCyclesMean = 2000;
        e.workload.nonKernelCv = 0.4;
        e.workload.kernelsPerRequest = 1;
        e.workload.granularity = std::make_shared<const BucketDist>(
            std::vector<DistBucket>{{900, 1100, 1.0}});
        e.workload.cyclesPerByte = 2.0;
        e.measureSeconds = 0.05;
        e.warmupSeconds = 0.01;
        microsim::AbResult r = microsim::runAbTest(e);

        double offered = r.treatment.offloadsIssued /
            r.treatment.measuredSeconds;
        double q_sim = r.treatment.accelerator.queueWaitCycles.mean();
        double rho = model::utilization(kServiceCycles, offered,
                                        kClockHz);

        model::Params p = microsim::deriveModelParams(e, r);
        auto speedupWithQ = [&](double q) {
            model::Params v = p;
            v.queueCycles = q;
            model::Accelerometer m(v);
            return fmtPct(m.speedup(ThreadingDesign::Sync) - 1.0, 1);
        };
        std::string q_mm1 = rho < 0.98
            ? speedupWithQ(model::mm1WaitCycles(kServiceCycles, offered,
                                                kClockHz))
            : std::string("saturated");

        table.addRow({fmtF(cores, 0), fmtF(offered, 0), fmtF(rho, 2),
                      fmtF(q_sim, 0), speedupWithQ(0), q_mm1,
                      speedupWithQ(q_sim),
                      fmtPct(r.measuredSpeedup() - 1.0, 1)});
    }
    std::cout << table.str();
    std::cout << "\nReadings: with one core the device never queues and "
                 "Q = 0 is exact. As cores contend, the zero-Q model "
                 "over-estimates badly (33% projected vs -33% actual at "
                 "6 cores); plugging the measured Q back into eq. (1) "
                 "recovers the simulator's speedup to within 0.1 pp — "
                 "exactly why the model carries a queuing term for "
                 "shared accelerators. The open-loop M/M/1 stand-in "
                 "over-predicts waits here (closed-loop arrivals, "
                 "near-deterministic service violate its assumptions): "
                 "prefer a measured queuing distribution, per the "
                 "paper's sum-of-Qi form, when one is available.\n";

    replicaAdjudication();
    return 0;
}

/**
 * @file
 * Ablation: how much of the projected win depends on the threading
 * design and the offload-induced overheads? For the off-chip
 * compression accelerator of Table 7, knock out one overhead at a time
 * (L, o0-equivalent, o1, partial offload) and re-project under every
 * design. This quantifies DESIGN.md's claim that the threading design —
 * not the device — dominates achievable speedup.
 */

#include "bench_common.hh"
#include "model/granularity.hh"
#include "workload/request_factory.hh"

using namespace accel;
using model::ThreadingDesign;

namespace {

model::Params
base()
{
    model::Params p;
    p.hostCycles = 2.3e9;
    p.alpha = 0.15;
    p.interfaceCycles = 2300;
    p.threadSwitchCycles = 5750;
    p.accelFactor = 27;
    p.strategy = model::Strategy::OffChip;
    return p;
}

/** Plan offloads for a variant and project under the given design. */
double
projectVariant(const model::Params &variant, ThreadingDesign design)
{
    auto sizes = workload::compressionSizes(workload::ServiceId::Feed1);
    model::OffloadProfit profit{
        workload::feed1CompressionCyclesPerByte(), 1.0};
    auto plan = model::planOffloads(*sizes, 15008, variant.alpha, profit,
                                    design, variant);
    model::Params planned = model::applyPlan(variant, variant.alpha,
                                             plan);
    model::Accelerometer m(planned);
    return (m.speedup(design) - 1.0) * 100.0;
}

} // namespace

int
main()
{
    bench::banner("Ablation: threading design x overhead knockout "
                  "(Feed1 off-chip compression)");

    struct Variant
    {
        const char *name;
        std::function<void(model::Params &)> apply;
    };
    const Variant variants[] = {
        {"full overheads (Table 7)", [](model::Params &) {}},
        {"no interface latency (L = 0)",
         [](model::Params &p) { p.interfaceCycles = 0; }},
        {"free thread switches (o1 = 0)",
         [](model::Params &p) { p.threadSwitchCycles = 0; }},
        {"infinite accelerator (A -> inf)",
         [](model::Params &p) { p.accelFactor = 1e9; }},
    };
    const ThreadingDesign designs[] = {
        ThreadingDesign::Sync, ThreadingDesign::SyncOS,
        ThreadingDesign::AsyncSameThread,
        ThreadingDesign::AsyncDistinctThread,
    };

    std::vector<std::string> headers = {"variant"};
    for (ThreadingDesign d : designs)
        headers.push_back(toString(d));
    TextTable table(headers);
    for (size_t c = 1; c < headers.size(); ++c)
        table.setAlign(c, Align::Right);

    for (const Variant &v : variants) {
        std::vector<std::string> row = {v.name};
        for (ThreadingDesign d : designs) {
            model::Params p = base();
            v.apply(p);
            row.push_back(fmtF(projectVariant(p, d), 1) + "%");
        }
        table.addRow(row);
    }
    std::cout << table.str();

    std::cout << "\nReadings:\n"
                 "- o1 is the Sync-OS killer: zeroing it lifts Sync-OS "
                 "from ~1.6% to the async level.\n"
                 "- L caps every design: with L = 0 all offloads break "
                 "even and designs converge near the ideal.\n"
                 "- A barely matters past ~27x: the interface, not the "
                 "device, is the bound (the paper's core warning).\n";
    return 0;
}

/**
 * @file
 * Extension bench: SLO-driven autoscaling of a replicated accelerator
 * tier under time-varying traffic.
 *
 * The paper sizes accelerator capacity for a fixed offered load; a
 * production tier faces diurnal traffic and flash crowds, and the
 * operational question is whether a reactive controller can track the
 * load with materially fewer provisioned replica-cycles than static
 * peak provisioning — without giving the latency SLO away while it
 * reacts. A graceful brown-out gate bounds the damage inside the
 * controller's reaction window by shedding early instead of queueing
 * to collapse.
 *
 * Usage: autoscale_slo [--seed N] [--json PATH]
 *
 * Exits non-zero unless ALL acceptance criteria hold:
 *  (a) day trace: static-peak and autoscaled arms both hold request
 *      p99 <= the 1M-cycle (1 ms at 1 GHz) SLO budget, and the
 *      autoscaled arm consumes <= 80% of the static arm's provisioned
 *      replica-cycles at a bounded shed fraction;
 *  (b) flash crowd: same criteria against a 4x traffic spike;
 *  (c) stationary limit: under a constant-rate program at moderate
 *      load the controller takes no scaling actions and the measured
 *      per-offload queue wait lands in the open-loop model band
 *      [0.5 x M/M/k, k x M/M/1] around model::mmkWaitCycles.
 */

#include <cstdlib>
#include <fstream>

#include "bench_common.hh"
#include "microsim/arrival_program.hh"
#include "microsim/service_spec.hh"
#include "microsim/service_sim.hh"
#include "microsim/tier.hh"
#include "model/queueing.hh"

using namespace accel;
using model::ThreadingDesign;

namespace {

constexpr double kClockHz = 1e9;

/** Acceptance SLO: request p99 within 1 ms at 1 GHz. */
constexpr double kBudgetCycles = 1e6;

/** Autoscaled arm must use at most this fraction of static cycles. */
constexpr double kSavingsTarget = 0.80;

/** Shed budget for the autoscaled arms (fraction of arrivals). */
constexpr double kShedBudget = 0.05;

/**
 * Trace arms: ~1000-byte kernels at 200 host cycles/byte, A = 10 plus
 * transfer overheads — a ~20.2k-cycle offload service, so one replica
 * serves ~49k offloads/s and the traces below span 1..4 replicas of
 * demand.
 */
constexpr double kTraceServiceCycles = 20200;

microsim::WorkloadSpec
traceWorkload()
{
    microsim::WorkloadSpec w;
    w.nonKernelCyclesMean = 1000;
    w.nonKernelCv = 0.3;
    w.kernelsPerRequest = 1;
    w.granularity = std::make_shared<const BucketDist>(
        std::vector<DistBucket>{{900, 1100, 1.0}});
    w.cyclesPerByte = 200.0; // ~200k host cycles per kernel
    return w;
}

microsim::AcceleratorConfig
traceDevice()
{
    microsim::AcceleratorConfig acc;
    acc.speedupFactor = 10;
    acc.fixedLatencyCycles = 100;
    acc.latencyCyclesPerByte = 0.1;
    return acc;
}

/**
 * Stationary arm: exponential-ish granularity (CV ~1.2) so service
 * times approach the M/M/k assumptions, and a bare device (no fixed
 * or per-byte latency) so the analytic service time is exact:
 * 20 cycles per byte of kernel.
 */
const std::vector<DistBucket> kStationaryBuckets = {
    {100, 300, 0.40}, {300, 700, 0.30}, {700, 1500, 0.20},
    {1500, 3100, 0.08}, {3100, 6300, 0.02}};

microsim::WorkloadSpec
stationaryWorkload()
{
    microsim::WorkloadSpec w;
    w.nonKernelCyclesMean = 1000;
    w.nonKernelCv = 0.3;
    w.kernelsPerRequest = 1;
    w.granularity =
        std::make_shared<const BucketDist>(kStationaryBuckets);
    w.cyclesPerByte = 200.0;
    return w;
}

microsim::AcceleratorConfig
stationaryDevice()
{
    microsim::AcceleratorConfig acc;
    acc.speedupFactor = 10; // service = 20 x bytes, nothing else
    return acc;
}

double
stationaryMeanServiceCycles()
{
    double mean_bytes = 0, mass = 0;
    for (const DistBucket &b : kStationaryBuckets) {
        mean_bytes += 0.5 * (b.lo + b.hi) * b.mass;
        mass += b.mass;
    }
    return 20.0 * mean_bytes / mass;
}

microsim::ServiceConfig
serviceConfig(std::uint32_t threads)
{
    microsim::ServiceConfig svc;
    svc.cores = threads;
    svc.threads = threads;
    svc.design = ThreadingDesign::Sync;
    svc.clockGHz = kClockHz / 1e9;
    svc.offloadSetupCycles = 20;
    return svc;
}

microsim::TierConfig
tierConfig(std::uint32_t replicas, std::uint64_t seed)
{
    microsim::TierConfig tier;
    tier.replicas = replicas;
    tier.policy = microsim::DispatchPolicy::LeastOutstanding;
    tier.seed = seed;
    return tier;
}

/** The reactive controller shared by both autoscaled trace arms. */
microsim::AutoscalerConfig
controller(std::uint32_t maxReplicas)
{
    microsim::AutoscalerConfig a;
    a.enabled = true;
    a.intervalCycles = 5e5; // 0.5 ms control ticks
    a.sloLatencyCycles = 400000;
    a.scaleUpPressure = 0.5;   // act at p99 >= 200k cycles
    a.scaleDownPressure = 0.12; // relax below p99 ~48k cycles
    a.upWindows = 1;
    a.downWindows = 10;
    a.cooldownCycles = 1.5e6;
    a.minReplicas = 1;
    a.maxReplicas = maxReplicas;
    a.scaleStep = 1;
    a.brownout = true;
    a.brownoutFloor = 32;
    return a;
}

struct Arm
{
    std::string name;
    microsim::ServiceConfig svc;
    microsim::AcceleratorConfig dev;
    microsim::TierConfig tier;
    microsim::WorkloadSpec work;
    double measureSeconds;
    double warmupSeconds;
    microsim::ServiceMetrics m;
};

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seed = 2020;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--seed" && i + 1 < argc) {
            seed = static_cast<std::uint64_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            fatal("autoscale_slo: unknown argument '" + arg +
                  "' (usage: [--seed N] [--json PATH])");
        }
    }

    bench::banner("Autoscale SLO: time-varying traffic vs static peak "
                  "provisioning (extension)");

    // ---- Offered-load programs ----
    // Day trace: eight 50 ms steps between 0.4x and 2.8x of 50k/s
    // (peak 140k/s, mean ~66k/s).
    microsim::ArrivalProgram day = microsim::ArrivalProgram::dayTrace(
        50000, {0.4, 0.7, 1.2, 2.0, 2.8, 2.0, 1.0, 0.5}, 0.05);
    // Flash crowd: steady 40k/s plus a 120k/s surge at t = 0.1 s
    // (20 ms ramps around a 100 ms hold, peak 160k/s).
    microsim::ArrivalProgram flash = microsim::ArrivalProgram::compose(
        {microsim::ArrivalProgram::constant(40000),
         microsim::ArrivalProgram::flashCrowd(120000, 0.10, 0.02,
                                              0.10)});

    // Static arms provision for the trace peak: the smallest replica
    // count whose M/M/k wait meets a 20k-cycle queue budget at peak.
    auto peakReplicas = [](const microsim::ArrivalProgram &p) {
        return model::minServersForWait(kTraceServiceCycles,
                                        p.peakRate(), kClockHz,
                                        /*waitBudgetCycles=*/20000);
    };
    std::uint32_t day_k = peakReplicas(day);
    std::uint32_t flash_k = peakReplicas(flash);
    std::cout << "static peak provisioning: day trace " << day_k
              << " replicas, flash crowd " << flash_k << " replicas\n";

    auto traceArm = [&](const std::string &name,
                        const microsim::ArrivalProgram &program,
                        std::uint32_t replicas, bool autoscaled) {
        Arm arm;
        arm.name = name;
        arm.svc = serviceConfig(/*threads=*/24);
        arm.svc.arrivalProgram = program;
        arm.svc.maxArrivalQueue = 256;
        if (autoscaled)
            arm.svc.autoscaler = controller(replicas);
        arm.dev = traceDevice();
        arm.tier = tierConfig(replicas, seed);
        arm.work = traceWorkload();
        arm.measureSeconds = 0.4;
        arm.warmupSeconds = 0.05;
        return arm;
    };

    // Stationary arm: constant program at rho ~0.65 over 3 replicas,
    // with the controller pinned (min == max) so any scaling action
    // is a bug, not a tuning artifact.
    double stat_service = stationaryMeanServiceCycles();
    double stat_rate = 0.65 * 3.0 * kClockHz / stat_service;
    Arm stationary;
    stationary.name = "stationary";
    stationary.svc = serviceConfig(/*threads=*/16);
    stationary.svc.arrivalProgram =
        microsim::ArrivalProgram::constant(stat_rate);
    stationary.svc.autoscaler = controller(3);
    stationary.svc.autoscaler.minReplicas = 3;
    stationary.svc.autoscaler.brownout = false;
    stationary.svc.maxArrivalQueue = 0;
    stationary.dev = stationaryDevice();
    stationary.tier = tierConfig(3, seed);
    stationary.work = stationaryWorkload();
    stationary.measureSeconds = 0.25;
    stationary.warmupSeconds = 0.05;

    std::vector<Arm> arms = {
        traceArm("day/static", day, day_k, false),
        traceArm("day/autoscaled", day, day_k, true),
        traceArm("flash/static", flash, flash_k, false),
        traceArm("flash/autoscaled", flash, flash_k, true),
        stationary,
    };
    arms = bench::shardConfigs(arms, [&](Arm arm) {
        microsim::ServiceSim sim(microsim::ServiceSpec(arm.name)
                                     .service(arm.svc)
                                     .accelerator(arm.dev)
                                     .tier(arm.tier)
                                     .workload(arm.work)
                                     .seed(seed));
        arm.m = sim.run(arm.measureSeconds, arm.warmupSeconds);
        return arm;
    });

    TextTable table({"arm", "p99 cyc", "QPS", "shed %", "overload %",
                     "replica-cyc", "ups/downs", "final k"});
    for (size_t c = 1; c <= 7; ++c)
        table.setAlign(c, Align::Right);
    std::ostringstream csv_text;
    CsvWriter csv(csv_text,
                  {"arm", "p99_cycles", "qps", "shed_fraction",
                   "overload_shed_fraction", "replica_cycles",
                   "scale_ups", "scale_downs", "final_replicas",
                   "control_windows", "breach_windows",
                   "admission_tightenings"});
    auto shedFrac = [](const microsim::ServiceMetrics &m) {
        return m.requestsArrived == 0
            ? 0.0
            : static_cast<double>(m.requestsShed) /
                static_cast<double>(m.requestsArrived);
    };
    for (const Arm &arm : arms) {
        const microsim::ServiceMetrics &m = arm.m;
        double overload_frac = m.requestsArrived == 0
            ? 0.0
            : static_cast<double>(m.requestsShedOverload) /
                static_cast<double>(m.requestsArrived);
        table.addRow(
            {arm.name, fmtF(m.latencySample.p99(), 0), fmtF(m.qps(), 0),
             fmtPct(shedFrac(m), 2), fmtPct(overload_frac, 2),
             fmtF(m.tier.provisionedReplicaCycles, 0),
             std::to_string(m.autoscaler.scaleUps) + "/" +
                 std::to_string(m.autoscaler.scaleDowns),
             std::to_string(m.autoscaler.finalReplicas)});
        csv.row({arm.name, fmtF(m.latencySample.p99(), 0),
                 fmtF(m.qps(), 1), fmtF(shedFrac(m), 4),
                 fmtF(overload_frac, 4),
                 fmtF(m.tier.provisionedReplicaCycles, 0),
                 std::to_string(m.autoscaler.scaleUps),
                 std::to_string(m.autoscaler.scaleDowns),
                 std::to_string(m.autoscaler.finalReplicas),
                 std::to_string(m.autoscaler.controlWindows),
                 std::to_string(m.autoscaler.breachWindows),
                 std::to_string(m.autoscaler.admissionTightenings)});
    }
    std::cout << table.str() << "\ncsv:\n" << csv_text.str() << "\n";

    // ---- Criteria (a) and (b): SLO held at >= 20% fewer cycles ----
    auto adjudicateTrace = [&](const Arm &st, const Arm &au) {
        double ratio = au.m.tier.provisionedReplicaCycles /
            st.m.tier.provisionedReplicaCycles;
        bool ok = st.m.latencySample.p99() <= kBudgetCycles &&
            au.m.latencySample.p99() <= kBudgetCycles &&
            ratio <= kSavingsTarget && shedFrac(au.m) <= kShedBudget;
        std::cout << au.name << " check: p99 "
                  << fmtF(st.m.latencySample.p99(), 0) << " static / "
                  << fmtF(au.m.latencySample.p99(), 0)
                  << " autoscaled (budget " << fmtF(kBudgetCycles, 0)
                  << "), replica-cycles ratio " << fmtF(ratio, 3)
                  << " (criterion: <= " << fmtF(kSavingsTarget, 2)
                  << "), shed " << fmtPct(shedFrac(au.m), 2)
                  << " (criterion: <= " << fmtPct(kShedBudget, 0)
                  << ") -> " << (ok ? "pass" : "FAIL") << "\n";
        return ok;
    };
    bool day_ok = adjudicateTrace(arms[0], arms[1]);
    bool flash_ok = adjudicateTrace(arms[2], arms[3]);

    // ---- Criterion (c): stationary limit converges to M/M/k ----
    const microsim::ServiceMetrics &sm = arms[4].m;
    double offered = static_cast<double>(sm.offloadsIssued) /
        sm.measuredSeconds;
    double q_sim = sm.accelerator.queueWaitCycles.mean();
    double q_mmk =
        model::mmkWaitCycles(stat_service, offered, kClockHz, 3);
    double q_mm1 =
        model::mm1WaitCycles(stat_service, offered / 3.0, kClockHz);
    bool stationary_ok = sm.autoscaler.scaleUps == 0 &&
        sm.autoscaler.scaleDowns == 0 && q_sim >= 0.5 * q_mmk &&
        q_sim <= q_mm1;
    std::cout << "stationary check: Q sim " << fmtF(q_sim, 0)
              << " cycles vs band [0.5 x M/M/3 = "
              << fmtF(0.5 * q_mmk, 0)
              << ", 3 x M/M/1 = " << fmtF(q_mm1, 0) << "], "
              << sm.autoscaler.scaleUps << " ups / "
              << sm.autoscaler.scaleDowns
              << " downs (criterion: 0/0) -> "
              << (stationary_ok ? "pass" : "FAIL") << "\n";

    std::cout
        << "\nReading: the controller tracks the day trace a control "
           "window behind the load, so the provisioned-cycle bill "
           "follows demand instead of the peak; the brown-out gate "
           "sheds the overhang while replicas spin up, which is what "
           "keeps the transient out of p99. In the stationary limit "
           "the same controller goes quiet and the tier's measured "
           "queue wait sits inside the open-loop model band — the "
           "autoscaler costs nothing when traffic is flat.\n";

    bool ok = day_ok && flash_ok && stationary_ok;
    if (!json_path.empty()) {
        std::ostringstream json;
        json << "{\n  \"seed\": " << seed << ",\n  \"budget_cycles\": "
             << fmtF(kBudgetCycles, 0) << ",\n  \"arms\": [\n";
        for (size_t i = 0; i < arms.size(); ++i) {
            const microsim::ServiceMetrics &m = arms[i].m;
            json << (i == 0 ? "" : ",\n") << "    {\"arm\": \""
                 << arms[i].name << "\", \"p99_cycles\": "
                 << fmtF(m.latencySample.p99(), 0) << ", \"qps\": "
                 << fmtF(m.qps(), 1) << ", \"shed_fraction\": "
                 << fmtF(shedFrac(m), 4) << ", \"replica_cycles\": "
                 << fmtF(m.tier.provisionedReplicaCycles, 0)
                 << ", \"summary\": " << m.summaryJson() << "}";
        }
        json << "\n  ],\n  \"day_ratio\": "
             << fmtF(arms[1].m.tier.provisionedReplicaCycles /
                         arms[0].m.tier.provisionedReplicaCycles,
                     4)
             << ",\n  \"flash_ratio\": "
             << fmtF(arms[3].m.tier.provisionedReplicaCycles /
                         arms[2].m.tier.provisionedReplicaCycles,
                     4)
             << ",\n  \"q_sim\": " << fmtF(q_sim, 1)
             << ",\n  \"q_mmk\": " << fmtF(q_mmk, 1)
             << ",\n  \"q_kxmm1\": " << fmtF(q_mm1, 1)
             << ",\n  \"day_pass\": " << (day_ok ? "true" : "false")
             << ",\n  \"flash_pass\": " << (flash_ok ? "true" : "false")
             << ",\n  \"stationary_pass\": "
             << (stationary_ok ? "true" : "false")
             << ",\n  \"pass\": " << (ok ? "true" : "false") << "\n}\n";
        std::ofstream out(json_path);
        require(static_cast<bool>(out),
                "autoscale_slo: cannot write '" + json_path + "'");
        out << json.str();
        std::cout << "json written to " << json_path << "\n";
    }
    return ok ? 0 : 1;
}

/**
 * @file
 * Bench-side rendering of workload::beforeAfterBreakdown (Figs. 16-18).
 */

#pragma once

#include <iostream>

#include "util/table.hh"
#include "workload/before_after.hh"

namespace accel::bench {

/** Print the unaccelerated vs accelerated functionality breakdown. */
inline void
printBeforeAfter(const workload::ServiceProfile &profile,
                 workload::Functionality target,
                 const model::Params &params,
                 model::ThreadingDesign design, bool accelOnHost,
                 std::optional<workload::Functionality> overheadSink =
                     std::nullopt)
{
    workload::BeforeAfter ba = workload::beforeAfterBreakdown(
        profile, target, params, design, accelOnHost, overheadSink);

    TextTable table({"functionality", "unaccelerated %",
                     "accelerated %"});
    table.setAlign(1, Align::Right);
    table.setAlign(2, Align::Right);
    for (const auto &shift : ba.shifts) {
        if (shift.beforePercent <= 0 && shift.functionality != target)
            continue;
        table.addRow({toString(shift.functionality),
                      fmtF(shift.beforePercent, 1),
                      fmtF(shift.afterPercent, 1)});
    }
    std::cout << table.str();

    std::cout << "\nhost cycles freed: " << fmtF(ba.freedPercent, 1)
              << "% of the unaccelerated total\n"
              << toString(target) << " functionality improved by "
              << fmtF(ba.targetImprovementPercent, 1) << "%\n";
}

} // namespace accel::bench

/**
 * @file
 * Shared helpers for the figure/table benches: each bench prints the
 * paper-shaped table, a machine-readable CSV block, and (for the
 * characterization figures) the same breakdown re-derived through the
 * profiling pipeline as a cross-check.
 */

#pragma once

#include <functional>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "profiling/breakdown_report.hh"
#include "util/csv.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"
#include "workload/granularities.hh"
#include "workload/profiles.hh"

namespace accel::bench {

/** Print a bench banner. */
inline void
banner(const std::string &title)
{
    std::cout << "\n=== " << title << " ===\n\n";
}

/** Traces per service for pipeline cross-checks (speed/precision). */
constexpr size_t kTraceCount = 120000;

/**
 * Shard independent per-config evaluations (simulator runs, fleet
 * projections) across the global worker pool — width from ACCEL_JOBS,
 * default hardware concurrency, 1 = serial. Results come back in input
 * order, so every table and CSV block prints identically for any
 * worker count.
 */
template <typename Config, typename Fn>
auto
shardConfigs(const std::vector<Config> &configs, Fn &&fn)
{
    return parallelMap(configs, std::forward<Fn>(fn));
}

/**
 * Print one characterization figure: for each characterized service a
 * row per category with the encoded (paper) share, plus a CSV block,
 * plus a pipeline-recovered comparison for the anchor service.
 */
template <typename Category>
void
printShareFigure(
    const std::string &title,
    const std::vector<Category> &categories,
    const std::function<const workload::ShareMap<Category> &(
        const workload::ServiceProfile &)> &select,
    const std::function<std::map<Category, double>(
        const profiling::Aggregator &)> &recover,
    workload::ServiceId anchor)
{
    banner(title);

    std::vector<std::string> headers = {"service"};
    for (Category c : categories)
        headers.push_back(toString(c));
    TextTable table(headers);
    for (size_t c = 1; c < headers.size(); ++c)
        table.setAlign(c, Align::Right);

    std::ostringstream csv_text;
    CsvWriter csv(csv_text, headers);
    for (workload::ServiceId id : workload::characterizedServices()) {
        const auto &profile = workload::profile(id);
        const auto &shares = select(profile);
        std::vector<std::string> row = {profile.name};
        for (Category c : categories)
            row.push_back(fmtF(shares.at(c), 0));
        table.addRow(row);
        csv.row(row);
    }
    std::cout << table.str() << "\ncsv:\n" << csv_text.str() << "\n";

    // Cross-check: re-derive the anchor service's row from sampled
    // traces through the tagging pipeline.
    profiling::Aggregator agg = profiling::profileService(
        anchor, workload::CpuGen::GenC, /*seed=*/2020, kTraceCount);
    std::cout << profiling::comparisonBlock(
        "pipeline cross-check (" + workload::toString(anchor) + ")",
        select(workload::profile(anchor)), recover(agg));
}

/** Print a CDF figure from a BucketDist in the paper's bucket scheme. */
inline void
printCdf(const std::string &series, const BucketDist &dist)
{
    TextTable table({"bucket (bytes)", "mass %", "CDF"});
    table.setAlign(1, Align::Right);
    table.setAlign(2, Align::Right);
    double cum = 0;
    for (size_t i = 0; i < dist.bucketCount(); ++i) {
        cum += dist.bucket(i).mass;
        table.addRow({dist.bucketLabel(i),
                      fmtF(dist.bucket(i).mass * 100, 1), fmtF(cum, 3)});
    }
    std::cout << series << "\n" << table.str() << "\n";
}

} // namespace accel::bench

/**
 * @file
 * Extension bench: retry-storm metastability and cascade containment.
 *
 * The paper accelerates services in isolation; at hyperscale the
 * dominant *availability* risk is graph-level: a transient brown-out
 * at one tier turns into a self-sustaining retry storm at its callers,
 * and the fleet stays degraded long after the fault clears. This bench
 * reproduces that failure mode on the ServiceGraph simulator and
 * measures how much of it the containment layer (deadline budgets,
 * retry budgets, per-edge circuit breakers) removes.
 *
 * Topology: web (open loop, 10k roots/s) -sync-> ads -sync-> cache,
 * where cache is a single-thread tier at ~50% utilization. The fault
 * is a windowed latency spike on the ads->cache edge ([0.3s, 0.5s):
 * every call delivered 400k cycles late, 2x the RPC timeout), so the
 * callee still runs every late call — the zombie-work regime that
 * makes naive retries self-amplifying:
 *
 *   naive arm:     timeout + 6 attempts, no budgets, no breaker. Every
 *                  timed-out attempt still lands in cache's unbounded
 *                  queue; retries multiply the offered load ~6x over a
 *                  1x-capacity tier, the backlog outlives the fault
 *                  window, and post-fault RTT stays above the timeout:
 *                  metastable collapse.
 *   contained arm: the same edge with a root deadline budget
 *                  (reserve-for-retry split), a retry token bucket,
 *                  and a per-edge breaker. Over-budget deliveries are
 *                  cancelled at cache's door, the bucket and breaker
 *                  cut the storm, callers degrade instead of failing,
 *                  and the graph snaps back when the fault clears.
 *
 * Each (arm, phase) figure is measured by replaying the same seeded
 * trajectory with a different (warmup, measure) split — the measuring
 * flag only gates stat recording, so healthy/fault/post windows come
 * from one deterministic timeline.
 *
 * Usage: cascade_containment [--seed N] [--json PATH]
 *
 * Exits non-zero unless ALL acceptance criteria hold:
 *  (a) storm: in the fault window the naive arm's sick edge issues
 *      >= 2x as many attempts as logical calls (retry amplification);
 *  (b) metastability: naive post-fault goodput < 0.5x its healthy
 *      goodput (the storm outlives the fault);
 *  (c) containment: contained goodput >= 0.9x its healthy figure in
 *      BOTH the fault window and the post window (degraded responses
 *      count toward goodput; failed ones do not);
 *  (d) waste: naive post-fault ignored completions (zombie work cache
 *      executed for nobody) exceed 10x the contained arm's;
 *  (e) honest attribution: the contained arm's saves are visible in
 *      its own counters (short-circuits + deadline exceeded > 0,
 *      degraded roots > 0, breaker opens in the fault window and
 *      closes after it), and the naive arm shows none (no degraded
 *      roots, no drops/blackholes from a spike-only plan).
 */

#include <cstdlib>
#include <fstream>

#include "bench_common.hh"
#include "graph_fixtures.hh"
#include "microsim/service_graph.hh"

using namespace accel;

namespace {

constexpr double kClockGHz = 1.0;
constexpr double kRootPerSec = 10e3;
constexpr double kRootDeadline = 1e6;   //!< 1 ms budget at 1 GHz
// The timeout clears the healthy RTT tail (~70k + queueing at 50%
// utilization) by a wide margin, so the naive arm is stable until the
// fault; the spike exceeds the timeout, so every faulted call times
// out at the caller yet still executes at the callee — zombies.
constexpr double kRpcTimeout = 600e3;   //!< per-attempt, ads->cache
constexpr double kSpikeCycles = 700e3;  //!< > timeout: all zombies
constexpr sim::Tick kFaultBegin = 300'000'000; //!< 0.3 s in ticks
constexpr sim::Tick kFaultEnd = 500'000'000;   //!< 0.5 s

struct Phase
{
    const char *name;
    double warmupSeconds;
    double measureSeconds;
};

/** healthy ends at the fault's onset; post starts at its clearance. */
constexpr Phase kPhases[] = {
    {"healthy", 0.05, 0.25},
    {"fault", 0.30, 0.20},
    {"post", 0.50, 0.30},
};

/**
 * The two-edge chain with the sick ads->cache edge. The naive and
 * contained arms differ ONLY in the containment layer.
 */
microsim::ServiceGraph
buildArm(bool contained, std::uint64_t seed)
{
    microsim::ServiceGraph g(seed);
    g.addService(bench::lightTier("web", kClockGHz, /*threads=*/2,
                                  kRootPerSec, /*meanCycles=*/10e3,
                                  seed));
    g.addService(bench::lightTier("ads", kClockGHz, /*threads=*/2,
                                  /*arrivalsPerSec=*/0,
                                  /*meanCycles=*/20e3, seed + 1));
    // cache: one thread, 50k-cycle requests => 20k/s capacity, ~50%
    // utilized by healthy traffic. Unbounded queue: the storm shows up
    // as backlog, not shedding.
    g.addService(bench::lightTier("cache", kClockGHz, /*threads=*/1,
                                  /*arrivalsPerSec=*/0,
                                  /*meanCycles=*/50e3, seed + 2));

    microsim::EdgeConfig front;
    front.caller = "web";
    front.callee = "ads";
    front.latencyCycles = 10e3;
    g.addEdge(front);

    microsim::EdgeConfig sick;
    sick.caller = "ads";
    sick.callee = "cache";
    sick.latencyCycles = 10e3;
    sick.rpcTimeoutCycles = kRpcTimeout;
    sick.maxAttempts = 6; // the storm: up to 5 retries per call
    auto plan = std::make_shared<faults::EdgeFaultPlan>();
    plan->seed = seed ^ 0xedfeULL;
    plan->spikeProbability = 1.0;
    plan->spikeLatencyCycles = kSpikeCycles;
    plan->spikeWindows = {{kFaultBegin, kFaultEnd}};
    sick.faultPlan = std::move(plan);

    if (contained) {
        sick.maxAttempts = 3;
        sick.budgetSplit = microsim::BudgetSplit::ReserveForRetry;
        sick.retryBudget.cap = 20;
        sick.retryBudget.ratio = 0.05;
        sick.breaker.enabled = true;
        sick.breaker.openThreshold = 0.5;
        sick.breaker.window = 32;
        sick.breaker.minSamples = 8;
        sick.breaker.probeAfterCycles = 2e6;
        g.rootDeadline(kRootDeadline);
    }
    g.addEdge(sick);
    return g;
}

struct Cell
{
    bool contained = false;
    Phase phase;
    microsim::GraphMetrics m;
};

const microsim::EdgeStats &
sickEdge(const microsim::GraphMetrics &m)
{
    for (const microsim::EdgeStats &es : m.edges) {
        if (es.caller == "ads" && es.callee == "cache")
            return es;
    }
    fatal("cascade_containment: no ads->cache edge in metrics");
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seed = 2020;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--seed" && i + 1 < argc) {
            seed = static_cast<std::uint64_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            fatal("cascade_containment: unknown argument '" + arg +
                  "' (usage: [--seed N] [--json PATH])");
        }
    }

    bench::banner("Cascade containment: retry storms vs deadline "
                  "budgets, retry budgets, per-edge breakers "
                  "(extension)");

    std::vector<Cell> cells;
    for (bool contained : {false, true})
        for (const Phase &phase : kPhases)
            cells.push_back(Cell{contained, phase, {}});
    cells = bench::shardConfigs(cells, [&](Cell cell) {
        cell.m = buildArm(cell.contained, seed)
                     .run(cell.phase.measureSeconds,
                          cell.phase.warmupSeconds);
        return cell;
    });
    auto at = [&cells](bool contained, const char *phase)
        -> const microsim::GraphMetrics & {
        for (const Cell &cell : cells) {
            if (cell.contained == contained &&
                std::string(cell.phase.name) == phase)
                return cell.m;
        }
        fatal("cascade_containment: missing cell");
    };

    TextTable table({"arm", "phase", "goodput/s", "roots failed",
                     "roots degraded", "attempts", "calls", "ignored",
                     "root p99 cyc"});
    for (size_t c = 2; c <= 8; ++c)
        table.setAlign(c, Align::Right);
    std::ostringstream csv_text;
    CsvWriter csv(csv_text,
                  {"arm", "phase", "goodput_qps", "roots_failed",
                   "roots_degraded", "attempts_issued", "calls_issued",
                   "calls_completed_ignored", "root_p99_cycles"});
    for (const Cell &cell : cells) {
        const microsim::EdgeStats &es = sickEdge(cell.m);
        const char *arm = cell.contained ? "contained" : "naive";
        table.addRow({arm, cell.phase.name,
                      fmtF(cell.m.rootGoodputQps(), 0),
                      std::to_string(cell.m.rootsFailed),
                      std::to_string(cell.m.rootsDegraded),
                      std::to_string(es.attemptsIssued),
                      std::to_string(es.callsIssued),
                      std::to_string(es.callsCompletedIgnored),
                      fmtF(cell.m.rootLatencyCycles.p99(), 0)});
        csv.row({arm, cell.phase.name, fmtF(cell.m.rootGoodputQps(), 1),
                 std::to_string(cell.m.rootsFailed),
                 std::to_string(cell.m.rootsDegraded),
                 std::to_string(es.attemptsIssued),
                 std::to_string(es.callsIssued),
                 std::to_string(es.callsCompletedIgnored),
                 fmtF(cell.m.rootLatencyCycles.p99(), 0)});
    }
    std::cout << table.str() << "\ncsv:\n" << csv_text.str() << "\n";

    // ---- (a) retry amplification at the sick edge ----
    const microsim::EdgeStats &naive_fault = sickEdge(at(false, "fault"));
    double amplification = naive_fault.callsIssued == 0
        ? 0.0
        : static_cast<double>(naive_fault.attemptsIssued) /
            static_cast<double>(naive_fault.callsIssued);
    bool storm_ok = amplification >= 2.0;
    std::cout << "storm check: naive fault-window attempts/calls = "
              << fmtF(amplification, 2) << " (>= 2 means the retry "
              << "ladder multiplies load on the sick tier) -> "
              << (storm_ok ? "pass" : "FAIL") << "\n";

    // ---- (b) naive metastability ----
    double naive_healthy = at(false, "healthy").rootGoodputQps();
    double naive_post = at(false, "post").rootGoodputQps();
    bool metastable_ok =
        naive_healthy > 0 && naive_post < 0.5 * naive_healthy;
    std::cout << "metastability check: naive post-fault goodput "
              << fmtF(naive_post, 0) << "/s vs healthy "
              << fmtF(naive_healthy, 0)
              << "/s (< 0.5x: the storm outlives the fault) -> "
              << (metastable_ok ? "pass" : "FAIL") << "\n";

    // ---- (c) containment ----
    double cont_healthy = at(true, "healthy").rootGoodputQps();
    double cont_fault = at(true, "fault").rootGoodputQps();
    double cont_post = at(true, "post").rootGoodputQps();
    bool contain_ok = cont_healthy > 0 &&
        cont_fault >= 0.9 * cont_healthy &&
        cont_post >= 0.9 * cont_healthy;
    std::cout << "containment check: contained goodput fault "
              << fmtF(cont_fault, 0) << "/s, post " << fmtF(cont_post, 0)
              << "/s vs healthy " << fmtF(cont_healthy, 0)
              << "/s (both >= 0.9x: held through the fault and "
              << "recovered) -> " << (contain_ok ? "pass" : "FAIL")
              << "\n";

    // ---- (d) wasted downstream work ----
    std::uint64_t naive_waste =
        sickEdge(at(false, "post")).callsCompletedIgnored;
    std::uint64_t cont_waste =
        sickEdge(at(true, "post")).callsCompletedIgnored;
    bool waste_ok = naive_waste >= 500 && cont_waste * 10 <= naive_waste;
    std::cout << "waste check: post-fault zombie completions naive "
              << naive_waste << " vs contained " << cont_waste
              << " (cancel-at-door + breaker cut >= 10x) -> "
              << (waste_ok ? "pass" : "FAIL") << "\n";

    // ---- (e) honest attribution ----
    const microsim::GraphMetrics &cf = at(true, "fault");
    const microsim::EdgeStats &cf_edge = sickEdge(cf);
    const microsim::EdgeStats &cp_edge = sickEdge(at(true, "post"));
    bool attrib_ok = cf_edge.callsShortCircuited +
                cf_edge.callsDeadlineExceeded > 0 &&
        cf.rootsDegraded > 0 && cf_edge.breakerOpens >= 1 &&
        cp_edge.breakerCloses >= 1 &&
        at(false, "fault").rootsDegraded == 0 &&
        naive_fault.callsDropped == 0 &&
        naive_fault.callsBlackholed == 0;
    std::cout << "attribution check: contained saves are labelled "
              << "(short-circuited " << cf_edge.callsShortCircuited
              << ", deadline-exceeded " << cf_edge.callsDeadlineExceeded
              << ", degraded roots " << cf.rootsDegraded
              << ", breaker opens " << cf_edge.breakerOpens
              << ", closes post " << cp_edge.breakerCloses
              << "), naive shows none -> "
              << (attrib_ok ? "pass" : "FAIL") << "\n";

    std::cout
        << "\nReading: with zombie work and unbounded retries, a 0.2 s "
           "brown-out permanently collapses the naive arm — retries "
           "multiply offered load past the sick tier's capacity, and "
           "the backlog keeps RTT above the timeout after the fault "
           "clears (metastable failure). The contained arm converts "
           "the same fault into labelled degraded responses: budgets "
           "cancel over-deadline work before the callee pays for it, "
           "the token bucket and breaker stop the storm at its source, "
           "and goodput recovers as soon as the breaker's probe "
           "succeeds.\n";

    bool ok = storm_ok && metastable_ok && contain_ok && waste_ok &&
        attrib_ok;
    if (!json_path.empty()) {
        std::ostringstream json;
        json << "{\n  \"seed\": " << seed
             << ",\n  \"amplification\": " << fmtF(amplification, 4)
             << ",\n  \"goodput\": {\"naive_healthy\": "
             << fmtF(naive_healthy, 1) << ", \"naive_post\": "
             << fmtF(naive_post, 1) << ", \"contained_healthy\": "
             << fmtF(cont_healthy, 1) << ", \"contained_fault\": "
             << fmtF(cont_fault, 1) << ", \"contained_post\": "
             << fmtF(cont_post, 1)
             << "},\n  \"waste\": {\"naive_post_ignored\": "
             << naive_waste << ", \"contained_post_ignored\": "
             << cont_waste << "},\n  \"cells\": [\n";
        for (size_t i = 0; i < cells.size(); ++i) {
            json << (i == 0 ? "" : ",\n") << "    {\"arm\": \""
                 << (cells[i].contained ? "contained" : "naive")
                 << "\", \"phase\": \"" << cells[i].phase.name
                 << "\", \"summary\": " << cells[i].m.summaryJson()
                 << "}";
        }
        json << "\n  ],\n  \"storm_pass\": "
             << (storm_ok ? "true" : "false")
             << ",\n  \"metastability_pass\": "
             << (metastable_ok ? "true" : "false")
             << ",\n  \"containment_pass\": "
             << (contain_ok ? "true" : "false") << ",\n  \"waste_pass\": "
             << (waste_ok ? "true" : "false")
             << ",\n  \"attribution_pass\": "
             << (attrib_ok ? "true" : "false") << ",\n  \"pass\": "
             << (ok ? "true" : "false") << "\n}\n";
        std::ofstream out(json_path);
        require(static_cast<bool>(out),
                "cascade_containment: cannot write '" + json_path + "'");
        out << json.str();
        std::cout << "json written to " << json_path << "\n";
    }
    return ok ? 0 : 1;
}

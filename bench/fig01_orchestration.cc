/**
 * @file
 * Fig. 1: cycles spent in core application logic vs orchestration work
 * for the seven production microservices.
 */

#include "bench_common.hh"

using namespace accel;

int
main()
{
    bench::banner("Fig. 1: application logic vs orchestration");

    TextTable table({"service", "application logic %", "orchestration %",
                     "orchestration"});
    table.setAlign(1, Align::Right);
    table.setAlign(2, Align::Right);

    std::ostringstream csv_text;
    CsvWriter csv(csv_text,
                  {"service", "application_logic_pct",
                   "orchestration_pct"});
    for (workload::ServiceId id : workload::characterizedServices()) {
        const auto &p = workload::profile(id);
        double app = p.applicationLogicPercent();
        double orch = p.orchestrationPercent();
        table.addRow({p.name, fmtF(app, 0), fmtF(orch, 0),
                      percentBar(orch, 40)});
        csv.row({p.name, fmtF(app, 1), fmtF(orch, 1)});
    }
    std::cout << table.str() << "\ncsv:\n" << csv_text.str();

    std::cout << "\nPaper's headline: orchestration overheads can "
                 "significantly dominate; Web serves core logic with "
                 "only 18% of its cycles.\n";
    return 0;
}

/**
 * @file
 * Fig. 2: breakdown of cycles spent in leaf-function categories across
 * the seven microservices, with Google fleet and SPEC CPU2006 reference
 * rows, cross-checked through the profiling pipeline.
 */

#include "bench_common.hh"

using namespace accel;

int
main()
{
    bench::printShareFigure<workload::LeafCategory>(
        "Fig. 2: leaf-function category breakdown (% of total cycles)",
        workload::allLeafCategories(),
        [](const workload::ServiceProfile &p)
            -> const workload::ShareMap<workload::LeafCategory> & {
            return p.leafShare;
        },
        [](const profiling::Aggregator &agg) {
            return agg.leafBreakdown();
        },
        workload::ServiceId::Cache1);

    // Reference rows (Fig. 2 bottom): Google fleet + SPEC CPU2006.
    std::vector<std::string> headers = {"reference"};
    for (auto c : workload::allLeafCategories())
        headers.push_back(toString(c));
    TextTable refs(headers);
    for (size_t c = 1; c < headers.size(); ++c)
        refs.setAlign(c, Align::Right);
    for (const auto &row : workload::referenceLeafRows()) {
        std::vector<std::string> cells = {row.name};
        for (auto c : workload::allLeafCategories())
            cells.push_back(fmtF(row.leafShare.at(c), 0));
        refs.addRow(cells);
    }
    std::cout << "\nreference rows:\n" << refs.str();
    std::cout << "\nPaper's headline: memory and kernel leaves are "
                 "significant and common across services; SPEC CPU2006 "
                 "does not capture them.\n";
    return 0;
}

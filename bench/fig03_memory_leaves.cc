/**
 * @file
 * Fig. 3: breakdown of cycles spent in memory leaf functions (copy,
 * free, allocation, move, set, compare) with the "net %" of total
 * cycles per service, plus Google and SPEC reference rows.
 */

#include "bench_common.hh"

using namespace accel;

int
main()
{
    bench::printShareFigure<workload::MemoryLeaf>(
        "Fig. 3: memory leaf breakdown (% of memory cycles)",
        workload::allMemoryLeaves(),
        [](const workload::ServiceProfile &p)
            -> const workload::ShareMap<workload::MemoryLeaf> & {
            return p.memoryShare;
        },
        [](const profiling::Aggregator &agg) {
            return agg.memoryBreakdown();
        },
        workload::ServiceId::Web);

    TextTable net({"service", "memory net % of total cycles"});
    net.setAlign(1, Align::Right);
    for (workload::ServiceId id : workload::characterizedServices()) {
        const auto &p = workload::profile(id);
        net.addRow({p.name,
                    fmtF(p.leafShare.at(workload::LeafCategory::Memory),
                         0)});
    }
    for (const auto &row : workload::referenceLeafRows())
        net.addRow({row.name, fmtF(row.memoryNetPercent, 0)});
    std::cout << "\nnet memory share:\n" << net.str();

    std::cout << "\nPaper's headline: memory copy, allocation, and free "
                 "consume significant cycles; copies are the largest "
                 "single consumer (Google: 5% of fleet cycles).\n";
    return 0;
}

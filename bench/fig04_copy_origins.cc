/**
 * @file
 * Fig. 4: attribution of memory copies to the microservice
 * functionalities that invoke them, with the per-service copy share of
 * total cycles.
 */

#include "bench_common.hh"

using namespace accel;

int
main()
{
    bench::printShareFigure<workload::CopyOrigin>(
        "Fig. 4: memory-copy origins (% of copy cycles)",
        workload::allCopyOrigins(),
        [](const workload::ServiceProfile &p)
            -> const workload::ShareMap<workload::CopyOrigin> & {
            return p.copyOriginShare;
        },
        [](const profiling::Aggregator &agg) {
            return agg.copyOriginBreakdown();
        },
        workload::ServiceId::Web);

    TextTable net({"service", "copies net % of total cycles"});
    net.setAlign(1, Align::Right);
    for (workload::ServiceId id : workload::characterizedServices()) {
        const auto &p = workload::profile(id);
        net.addRow({p.name, fmtF(p.copyNetPercent, 0)});
    }
    std::cout << "\nnet copy share:\n" << net.str();

    std::cout << "\nPaper's headline: dominant copy origins differ "
                 "sharply across services (Web: I/O pre/post "
                 "processing; Cache2: network stacks), suggesting "
                 "per-service copy optimizations.\n"
              << "Note: the pipeline cross-check derives origins from "
                 "the IPF joint, so it matches the encoded table only "
                 "in shape; see DESIGN.md.\n";
    return 0;
}

/**
 * @file
 * Fig. 5: breakdown of cycles spent in kernel leaf functions
 * (scheduler, event handling, network, synchronization, memory
 * management).
 */

#include "bench_common.hh"

using namespace accel;

int
main()
{
    bench::printShareFigure<workload::KernelLeaf>(
        "Fig. 5: kernel leaf breakdown (% of kernel cycles)",
        workload::allKernelLeaves(),
        [](const workload::ServiceProfile &p)
            -> const workload::ShareMap<workload::KernelLeaf> & {
            return p.kernelShare;
        },
        [](const profiling::Aggregator &agg) {
            return agg.kernelBreakdown();
        },
        workload::ServiceId::Cache2);

    TextTable net({"service", "kernel net % of total cycles"});
    net.setAlign(1, Align::Right);
    for (workload::ServiceId id : workload::characterizedServices()) {
        const auto &p = workload::profile(id);
        net.addRow({p.name,
                    fmtF(p.leafShare.at(workload::LeafCategory::Kernel),
                         0)});
    }
    std::cout << "\nnet kernel share:\n" << net.str();

    std::cout << "\nPaper's headline: the caches invoke scheduler "
                 "functions frequently (context switches at high "
                 "service throughput) and Cache2 spends significant "
                 "cycles in network interaction; kernel-bypass and "
                 "multi-queue NICs would help.\n";
    return 0;
}

/**
 * @file
 * Fig. 6: breakdown of cycles spent in synchronization leaf functions
 * (C++ atomics, mutex, compare-exchange-swap, spin locks).
 */

#include "bench_common.hh"

using namespace accel;

int
main()
{
    bench::printShareFigure<workload::SyncLeaf>(
        "Fig. 6: synchronization leaf breakdown (% of sync cycles)",
        workload::allSyncLeaves(),
        [](const workload::ServiceProfile &p)
            -> const workload::ShareMap<workload::SyncLeaf> & {
            return p.syncShare;
        },
        [](const profiling::Aggregator &agg) {
            return agg.syncBreakdown();
        },
        workload::ServiceId::Cache1);

    TextTable net({"service", "sync net % of total cycles"});
    net.setAlign(1, Align::Right);
    for (workload::ServiceId id : workload::characterizedServices()) {
        const auto &p = workload::profile(id);
        net.addRow(
            {p.name,
             fmtF(p.leafShare.at(workload::LeafCategory::Synchronization),
                  0)});
    }
    std::cout << "\nnet synchronization share:\n" << net.str();

    std::cout << "\nPaper's headline: Cache over-subscribes threads and "
                 "spins rather than blocking, trading cycles for "
                 "microsecond-scale wakeup latency.\n";
    return 0;
}

/**
 * @file
 * Fig. 7: breakdown of cycles spent in C-library leaf functions
 * (algorithms, constructors, strings, hash tables, vectors, trees).
 */

#include "bench_common.hh"

using namespace accel;

int
main()
{
    bench::printShareFigure<workload::ClibLeaf>(
        "Fig. 7: C-library leaf breakdown (% of C-library cycles)",
        workload::allClibLeaves(),
        [](const workload::ServiceProfile &p)
            -> const workload::ShareMap<workload::ClibLeaf> & {
            return p.clibShare;
        },
        [](const profiling::Aggregator &agg) {
            return agg.clibBreakdown();
        },
        workload::ServiceId::Feed2);

    TextTable net({"service", "C-library net % of total cycles"});
    net.setAlign(1, Align::Right);
    for (workload::ServiceId id : workload::characterizedServices()) {
        const auto &p = workload::profile(id);
        net.addRow(
            {p.name,
             fmtF(p.leafShare.at(workload::LeafCategory::CLibraries),
                  0)});
    }
    std::cout << "\nnet C-library share:\n" << net.str();

    std::cout << "\nPaper's headline: the ML services hammer vector "
                 "operations on large feature vectors; Web parses "
                 "strings and probes hash tables across its many URL "
                 "endpoints.\n";
    return 0;
}

/**
 * @file
 * Fig. 8: Cache1's per-core IPC for key leaf categories across three
 * CPU generations, both from the platform tables and re-derived from
 * profiled traces.
 */

#include "bench_common.hh"

using namespace accel;

int
main()
{
    bench::banner("Fig. 8: Cache1 leaf IPC scaling across CPU gens");

    TextTable table({"leaf category", "GenA", "GenB", "GenC",
                     "GenC/GenA"});
    for (size_t c = 1; c <= 4; ++c)
        table.setAlign(c, Align::Right);
    std::ostringstream csv_text;
    CsvWriter csv(csv_text, {"category", "GenA", "GenB", "GenC"});
    for (auto cat : workload::ipcReportedLeafCategories()) {
        double a = workload::leafIpc(workload::CpuGen::GenA, cat);
        double b = workload::leafIpc(workload::CpuGen::GenB, cat);
        double c = workload::leafIpc(workload::CpuGen::GenC, cat);
        table.addRow({toString(cat), fmtF(a, 2), fmtF(b, 2), fmtF(c, 2),
                      fmtF(c / a, 2)});
        csv.row({toString(cat), fmtF(a, 2), fmtF(b, 2), fmtF(c, 2)});
    }
    std::cout << table.str() << "\ncsv:\n" << csv_text.str() << "\n";

    // Cross-check: recover GenC IPC from sampled traces.
    profiling::Aggregator agg = profiling::profileService(
        workload::ServiceId::Cache1, workload::CpuGen::GenC, 8,
        bench::kTraceCount);
    TextTable check({"leaf category", "table GenC IPC",
                     "recovered GenC IPC"});
    check.setAlign(1, Align::Right);
    check.setAlign(2, Align::Right);
    const auto &totals = agg.leafTotals();
    for (auto cat : workload::ipcReportedLeafCategories()) {
        double expect = workload::leafIpc(workload::CpuGen::GenC, cat);
        auto it = totals.find(cat);
        double got = it != totals.end() ? it->second.ipc() : 0.0;
        check.addRow({toString(cat), fmtF(expect, 2), fmtF(got, 2)});
    }
    std::cout << "pipeline cross-check:\n" << check.str();

    std::cout << "\nPaper's headline: every leaf category uses under "
                 "half the 4.0-wide GenC pipeline; kernel IPC is lowest "
                 "and scales worst, C libraries scale best.\n";
    return 0;
}

/**
 * @file
 * Fig. 9: breakdown of CPU cycles spent in microservice
 * functionalities, the paper's central characterization figure.
 */

#include "bench_common.hh"

using namespace accel;

int
main()
{
    bench::printShareFigure<workload::Functionality>(
        "Fig. 9: microservice functionality breakdown (% of cycles)",
        workload::allFunctionalities(),
        [](const workload::ServiceProfile &p)
            -> const workload::ShareMap<workload::Functionality> & {
            return p.functionalityShare;
        },
        [](const profiling::Aggregator &agg) {
            return agg.functionalityBreakdown();
        },
        workload::ServiceId::Web);

    // Derived bounds the paper quotes from this figure.
    TextTable bounds({"service", "inference %",
                      "ideal speedup if inference were free"});
    bounds.setAlign(1, Align::Right);
    bounds.setAlign(2, Align::Right);
    for (workload::ServiceId id :
         {workload::ServiceId::Feed1, workload::ServiceId::Feed2,
          workload::ServiceId::Ads1, workload::ServiceId::Ads2}) {
        double pred = workload::profile(id).functionalityShare.at(
            workload::Functionality::PredictionRanking);
        bounds.addRow({workload::toString(id), fmtF(pred, 0),
                       fmtF(1.0 / (1.0 - pred / 100.0), 2) + "x"});
    }
    std::cout << "\ninference acceleration bounds (paper: 1.49x-2.38x):\n"
              << bounds.str();

    std::cout << "\nPaper's headline: orchestration overheads are "
                 "significant and fairly common; even infinite inference "
                 "acceleration improves the ML services by at most "
                 "1.49x-2.38x.\n";
    return 0;
}

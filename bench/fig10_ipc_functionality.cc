/**
 * @file
 * Fig. 10: Cache1's per-core IPC for key functionality categories
 * across three CPU generations.
 */

#include "bench_common.hh"

using namespace accel;

int
main()
{
    bench::banner(
        "Fig. 10: Cache1 functionality IPC scaling across CPU gens");

    TextTable table({"functionality", "GenA", "GenB", "GenC",
                     "GenC/GenA"});
    for (size_t c = 1; c <= 4; ++c)
        table.setAlign(c, Align::Right);
    std::ostringstream csv_text;
    CsvWriter csv(csv_text, {"category", "GenA", "GenB", "GenC"});
    for (auto cat : workload::ipcReportedFunctionalities()) {
        double a = workload::functionalityIpc(workload::CpuGen::GenA, cat);
        double b = workload::functionalityIpc(workload::CpuGen::GenB, cat);
        double c = workload::functionalityIpc(workload::CpuGen::GenC, cat);
        table.addRow({toString(cat), fmtF(a, 2), fmtF(b, 2), fmtF(c, 2),
                      fmtF(c / a, 2)});
        csv.row({toString(cat), fmtF(a, 2), fmtF(b, 2), fmtF(c, 2)});
    }
    std::cout << table.str() << "\ncsv:\n" << csv_text.str();

    std::cout << "\nPaper's headline: I/O IPC stays low across "
                 "generations because I/O is kernel-bound; key-value "
                 "application logic barely improves because it is "
                 "memory-bound.\n";
    return 0;
}

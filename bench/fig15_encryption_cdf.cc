/**
 * @file
 * Fig. 15: CDF of bytes encrypted by Cache1, with the AES-NI break-even
 * granularity marker.
 */

#include "bench_common.hh"
#include "model/accelerometer.hh"
#include "workload/request_factory.hh"

using namespace accel;

int
main()
{
    bench::banner("Fig. 15: CDF of bytes encrypted in Cache1");

    auto sizes = workload::encryptionSizes(workload::ServiceId::Cache1);
    bench::printCdf("Cache1 encryption granularities", *sizes);

    // The AES-NI break-even marker: with Table 6's o0=10, L=3, A=6 and
    // the calibrated software-AES cost, speedup > 1 from ~1 B.
    workload::CaseStudy cs = workload::aesNiCaseStudy();
    double cb = cs.experiment.workload.cyclesPerByte;
    model::OffloadProfit profit{cb, 1.0};
    double g_star =
        profit.breakEvenSpeedup(model::ThreadingDesign::Sync,
                                cs.publishedParams);
    std::cout << "software AES cost Cb = " << fmtF(cb, 2)
              << " cycles/B -> min AES-NI granularity for speedup > 1: "
              << fmtF(g_star, 1) << " B (paper: >= 1 B)\n";
    std::cout << "fraction of Cache1 encryptions above break-even: "
              << fmtPct(sizes->fractionAtLeast(g_star), 1)
              << " (paper: all offloads improve speedup)\n";
    return 0;
}

/**
 * @file
 * Fig. 16: Cache1 functionality breakdown without and with AES-NI:
 * acceleration frees host cycles in the secure-I/O functionality.
 * Printed twice: analytically (re-normalized shares) and as measured
 * by the simulator's tagged-segment accounting.
 */

#include "bench_common.hh"
#include "before_after.hh"
#include "microsim/ab_test.hh"
#include "workload/request_factory.hh"

using namespace accel;

namespace {

// Work tags for the simulated breakdown.
constexpr microsim::WorkTag kIo = 0;       // secure+insecure I/O sans AES
constexpr microsim::WorkTag kApp = 1;      // application logic
constexpr microsim::WorkTag kOther = 2;    // remaining orchestration
constexpr microsim::WorkTag kCrypto = 3;   // the AES kernel

} // namespace

int
main()
{
    bench::banner("Fig. 16: Cache1 with and without AES-NI");

    workload::CaseStudy cs = workload::aesNiCaseStudy();
    std::cout << "analytic (re-normalized shares):\n";
    bench::printBeforeAfter(
        workload::profile(workload::ServiceId::Cache1),
        workload::Functionality::SecureInsecureIO, cs.publishedParams,
        cs.design, /*accelOnHost=*/true);

    // Simulated: tag the non-kernel work by functionality group and
    // measure per-tag core cycles in the A/B run.
    microsim::AbExperiment e = cs.experiment;
    e.workload.segmentTemplate = {
        {38.0 - 16.6, kIo}, {20.0, kApp}, {25.4, kOther}};
    e.workload.kernelTag = kCrypto;
    e.measureSeconds = 0.2;
    microsim::AbResult r = microsim::runAbTest(e);

    auto occupied = [](const microsim::ServiceMetrics &m) {
        return m.coreBusyCycles + m.coreHeldIdleCycles;
    };
    auto share = [&](const microsim::ServiceMetrics &m,
                     microsim::WorkTag tag) {
        auto it = m.coreCyclesByTag.find(tag);
        double cycles = it == m.coreCyclesByTag.end() ? 0 : it->second;
        return 100.0 * cycles / m.coreBusyCycles;
    };

    std::cout << "\nsimulated (tagged-segment accounting):\n";
    TextTable table({"work", "unaccelerated %", "with AES-NI %"});
    table.setAlign(1, Align::Right);
    table.setAlign(2, Align::Right);
    struct Row { const char *name; microsim::WorkTag tag; };
    for (Row row : {Row{"secure+insecure I/O (sans AES)", kIo},
                    Row{"AES encryption (host)", kCrypto},
                    Row{"application logic", kApp},
                    Row{"other orchestration", kOther},
                    Row{"offload overhead",
                        microsim::kOverheadWorkTag}}) {
        table.addRow({row.name, fmtF(share(r.baseline, row.tag), 1),
                      fmtF(share(r.treatment, row.tag), 1)});
    }
    std::cout << table.str();

    double base = occupied(r.baseline) /
        static_cast<double>(r.baseline.requestsCompleted);
    double treat = occupied(r.treatment) /
        static_cast<double>(r.treatment.requestsCompleted);
    std::cout << "\nmeasured core time freed per request: "
              << fmtF((base - treat) / base * 100.0, 1)
              << "% (paper: 12.8% of cycles; throughput +"
              << fmtPct(r.measuredSpeedup() - 1.0, 1) << ")\n";

    std::cout << "\nPaper's headline: AES-NI accelerates the secure-IO "
                 "functionality by 73%, saving 12.8% of Cache1's "
                 "cycles.\n";
    return 0;
}

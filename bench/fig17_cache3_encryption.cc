/**
 * @file
 * Fig. 17: Cache3 functionality breakdown with and without the
 * off-chip PCIe encryption accelerator.
 */

#include "bench_common.hh"
#include "before_after.hh"
#include "workload/request_factory.hh"

using namespace accel;

int
main()
{
    bench::banner("Fig. 17: Cache3 with and without off-chip encryption");

    workload::CaseStudy cs = workload::offChipEncryptionCaseStudy();
    // Async no-response: the encrypted payload leaves via the device, so
    // no accelerator time returns to the host.
    bench::printBeforeAfter(
        workload::profile(workload::ServiceId::Cache3),
        workload::Functionality::SecureInsecureIO, cs.publishedParams,
        cs.design, /*accelOnHost=*/false);

    std::cout << "\nPaper's headline: acceleration improves the secure-IO "
                 "overhead by 35.7%, improving Cache3's throughput by "
                 "7.5%.\n";
    return 0;
}

/**
 * @file
 * Fig. 18: Ads1 functionality breakdown for local vs remote inference:
 * the inference functionality is fully offloaded while extra I/O cycles
 * appear.
 */

#include "bench_common.hh"
#include "before_after.hh"
#include "microsim/ab_test.hh"
#include "workload/request_factory.hh"

using namespace accel;

int
main()
{
    bench::banner("Fig. 18: Ads1 with local vs remote inference");

    workload::CaseStudy cs = workload::remoteInferenceCaseStudy();
    bench::printBeforeAfter(
        workload::profile(workload::ServiceId::Ads1),
        workload::Functionality::PredictionRanking, cs.publishedParams,
        cs.design, /*accelOnHost=*/false,
        workload::Functionality::SecureInsecureIO);

    // Simulated cross-check: tag the batch's non-inference work and
    // measure how host core time redistributes when inference leaves.
    constexpr microsim::WorkTag kIo = 0, kOther = 1, kInfer = 2;
    microsim::AbExperiment e = cs.experiment;
    e.workload.segmentTemplate = {{17.0, kIo}, {31.0, kOther}};
    e.workload.kernelTag = kInfer;
    microsim::AbResult r = microsim::runAbTest(e);
    auto share = [](const microsim::ServiceMetrics &m,
                    microsim::WorkTag tag) {
        auto it = m.coreCyclesByTag.find(tag);
        double cycles = it == m.coreCyclesByTag.end() ? 0 : it->second;
        return 100.0 * cycles / m.coreBusyCycles;
    };
    std::cout << "\nsimulated (tagged-segment accounting):\n";
    TextTable table({"work", "local inference %", "remote inference %"});
    table.setAlign(1, Align::Right);
    table.setAlign(2, Align::Right);
    struct Row { const char *name; microsim::WorkTag tag; };
    for (Row row : {Row{"I/O", kIo}, Row{"other host work", kOther},
                    Row{"ML inference (host)", kInfer},
                    Row{"offload I/O overhead (o0, o1, pickup)",
                        microsim::kOverheadWorkTag}}) {
        table.addRow({row.name, fmtF(share(r.baseline, row.tag), 1),
                      fmtF(share(r.treatment, row.tag), 1)});
    }
    std::cout << table.str();
    std::cout << "measured host speedup: +"
              << fmtPct(r.measuredSpeedup() - 1.0, 1) << "\n";

    std::cout << "\nPaper's headline: remote inference consumes extra "
                 "I/O cycles (o0) but completely offloads the inference "
                 "functionality, freeing host cycles; each request pays "
                 "~10 ms of network traversal in exchange.\n";
    return 0;
}

/**
 * @file
 * Fig. 19: CDF of bytes compressed in Feed1 and Cache1, annotated with
 * the break-even granularities for on-chip and off-chip offload.
 */

#include "bench_common.hh"
#include "model/accelerometer.hh"
#include "workload/request_factory.hh"

using namespace accel;

int
main()
{
    bench::banner("Fig. 19: CDF of bytes compressed (Feed1, Cache1)");

    auto feed1 = workload::compressionSizes(workload::ServiceId::Feed1);
    auto cache1 = workload::compressionSizes(workload::ServiceId::Cache1);
    bench::printCdf("Feed1 compression granularities", *feed1);
    bench::printCdf("Cache1 compression granularities", *cache1);

    // Break-even markers (Table 7 parameters).
    double cb = workload::feed1CompressionCyclesPerByte();
    model::OffloadProfit profit{cb, 1.0};

    model::Params off_chip;
    off_chip.hostCycles = 2.3e9;
    off_chip.alpha = 0.15;
    off_chip.interfaceCycles = 2300;
    off_chip.accelFactor = 27;
    model::Params sync_os = off_chip;
    sync_os.threadSwitchCycles = 5750;

    TextTable marks({"offload design", "break-even g (B)",
                     "Feed1 fraction above", "paper fraction"});
    for (size_t c = 1; c <= 3; ++c)
        marks.setAlign(c, Align::Right);
    auto addMark = [&](const std::string &name,
                       model::ThreadingDesign design,
                       const model::Params &p, const char *paper) {
        double g = profit.breakEvenSpeedup(design, p);
        marks.addRow({name, fmtF(g, 0),
                      fmtPct(feed1->fractionAtLeast(g), 1), paper});
    };
    model::Params on_chip = off_chip;
    on_chip.interfaceCycles = 0;
    on_chip.accelFactor = 5;
    addMark("on-chip Sync", model::ThreadingDesign::Sync, on_chip,
            "100% (g >= 1 B)");
    addMark("off-chip Sync", model::ThreadingDesign::Sync, off_chip,
            "64.2% (g >= 425 B)");
    addMark("off-chip Async", model::ThreadingDesign::AsyncSameThread,
            off_chip, "65.1%");
    addMark("off-chip Sync-OS", model::ThreadingDesign::SyncOS, sync_os,
            "26.6%");
    std::cout << marks.str();

    std::cout << "\nPaper's headline: Feed1 often compresses large "
                 "granularities, so most of its compressions survive the "
                 "off-chip break-even; Cache1's do not.\n";
    return 0;
}

/**
 * @file
 * Fig. 20: Accelerometer-projected speedups for the acceleration
 * recommendations (compression, memory copy, memory allocation), with
 * the ideal Amdahl bars and the paper's published values.
 */

#include "bench_common.hh"
#include "model/report.hh"
#include "workload/request_factory.hh"

using namespace accel;

int
main()
{
    bench::banner("Fig. 20: projected speedup for key overheads");

    TextTable table({"overhead", "acceleration", "projected speedup",
                     "latency reduction", "paper", "ideal"});
    for (size_t c = 2; c <= 5; ++c)
        table.setAlign(c, Align::Right);
    std::ostringstream csv_text;
    CsvWriter csv(csv_text, {"overhead", "acceleration", "speedup_pct",
                             "latency_reduction_pct", "paper_pct"});

    for (const auto &rec : workload::fig20Recommendations()) {
        model::Accelerometer m(rec.params);
        model::Projection proj = m.project(rec.design);
        table.addRow({rec.overhead, rec.acceleration,
                      fmtPct(proj.speedup - 1.0, 1),
                      fmtPct(proj.latencyReduction - 1.0, 1),
                      fmtF(rec.paperSpeedupPercent, 1) + "%",
                      fmtPct(m.idealSpeedup() - 1.0, 1)});
        csv.row({rec.overhead, rec.acceleration,
                 fmtF((proj.speedup - 1.0) * 100, 2),
                 fmtF((proj.latencyReduction - 1.0) * 100, 2),
                 fmtF(rec.paperSpeedupPercent, 2)});
    }
    std::cout << table.str() << "\ncsv:\n" << csv_text.str();

    std::cout << "\nPaper's headline: offload-induced performance bounds "
                 "limit achievable speedup well below the ideal; on-chip "
                 "compression (A=5) beats the 27x off-chip device, and "
                 "Sync-OS collapses to 1.6% under thread-switch "
                 "overhead.\n";
    return 0;
}

/**
 * @file
 * Fig. 21: CDF of memory-copy granularities across the seven services,
 * with Ads1's on-chip break-even marker.
 */

#include "bench_common.hh"
#include "kernels/calibration.hh"
#include "model/accelerometer.hh"

using namespace accel;

int
main()
{
    bench::banner("Fig. 21: CDF of bytes copied across microservices");

    // Compact multi-series view: CDF at the figure's bucket edges.
    std::vector<double> edges = {64, 128, 256, 512, 1024, 2048, 4096};
    std::vector<std::string> headers = {"service"};
    for (double e : edges)
        headers.push_back("<=" + fmtF(e, 0));
    TextTable table(headers);
    for (size_t c = 1; c < headers.size(); ++c)
        table.setAlign(c, Align::Right);
    for (workload::ServiceId id : workload::characterizedServices()) {
        auto d = workload::copySizes(id);
        std::vector<std::string> row = {workload::toString(id)};
        for (double e : edges)
            row.push_back(fmtF(d->cdf(e), 2));
        table.addRow(row);
    }
    std::cout << table.str() << "\n";

    bench::printCdf("Ads1 copy granularities (full buckets)",
                    *workload::copySizes(workload::ServiceId::Ads1));

    // Ads1 on-chip break-even with the measured memcpy cost.
    kernels::Calibration copy_cal = kernels::calibrateMemOp(0, 2.3);
    model::Params p;
    p.hostCycles = 2.3e9;
    p.alpha = 0.1512;
    p.accelFactor = 4;
    p.setupCycles = 10; // a dense-copy instruction still needs setup
    model::OffloadProfit profit{std::max(copy_cal.cyclesPerByte, 0.05),
                                1.0};
    double g = profit.breakEvenSpeedup(model::ThreadingDesign::Sync, p);
    std::cout << "measured memcpy cost: "
              << fmtF(copy_cal.cyclesPerByte, 3)
              << " cycles/B -> Ads1 on-chip break-even ~" << fmtF(g, 0)
              << " B\n";

    std::cout << "\nPaper's headline: most services frequently copy "
                 "granularities below 512 B — smaller than a 4 KiB "
                 "page.\n";
    return 0;
}

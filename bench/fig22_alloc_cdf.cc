/**
 * @file
 * Fig. 22: CDF of memory-allocation granularities across services,
 * with Cache1's on-chip break-even marker.
 */

#include "bench_common.hh"
#include "model/accelerometer.hh"

using namespace accel;

int
main()
{
    bench::banner("Fig. 22: CDF of bytes allocated across microservices");

    std::vector<double> edges = {64, 128, 256, 512, 1024, 2048, 4096};
    std::vector<std::string> headers = {"service"};
    for (double e : edges)
        headers.push_back("<=" + fmtF(e, 0));
    TextTable table(headers);
    for (size_t c = 1; c < headers.size(); ++c)
        table.setAlign(c, Align::Right);
    for (workload::ServiceId id : workload::characterizedServices()) {
        auto d = workload::allocationSizes(id);
        std::vector<std::string> row = {workload::toString(id)};
        for (double e : edges)
            row.push_back(fmtF(d->cdf(e), 2));
        table.addRow(row);
    }
    std::cout << table.str() << "\n";

    bench::printCdf("Cache1 allocation granularities (full buckets)",
                    *workload::allocationSizes(workload::ServiceId::Cache1));

    // Cache1 on-chip allocation acceleration (Mallacc-style, A = 1.5):
    // Table 7 charges the whole allocation path, so break-even is about
    // covering the setup of the allocation-queue instructions.
    model::Params p;
    p.hostCycles = 2.0e9;
    p.alpha = 0.055;
    p.offloads = 51695;
    p.accelFactor = 1.5;
    double alloc_cycles = p.alpha * p.hostCycles / p.offloads;
    std::cout << "Cache1 spends " << fmtF(alloc_cycles, 0)
              << " cycles per allocation (alpha*C/n); an A=1.5 on-chip "
                 "path must save "
              << fmtF(alloc_cycles * (1 - 1 / 1.5), 0)
              << " cycles per call to break even on any size.\n";

    std::cout << "\nPaper's headline: allocations are small (typically "
                 "< 512 B); accelerating all of Cache1's allocations "
                 "yields only a 1.86% speedup.\n";
    return 0;
}

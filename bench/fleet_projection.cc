/**
 * @file
 * Extension bench: fleet-wide projection of accelerating the common
 * overheads (compression, memory copy, memory allocation) across all
 * seven characterized services — the paper's "data center operators can
 * project fleet-wide gains" use case, quantified.
 *
 * Server counts are illustrative weights (the paper does not publish
 * the installed base); per-service α comes from each profile's
 * functionality/leaf shares.
 */

#include "bench_common.hh"
#include "model/fleet.hh"

using namespace accel;

namespace {

/** Illustrative installed-base weights per service. */
double
servers(workload::ServiceId id)
{
    switch (id) {
      case workload::ServiceId::Web:
        return 40000;
      case workload::ServiceId::Feed1:
      case workload::ServiceId::Feed2:
        return 12000;
      case workload::ServiceId::Ads1:
      case workload::ServiceId::Ads2:
        return 9000;
      case workload::ServiceId::Cache1:
      case workload::ServiceId::Cache2:
        return 15000;
      default:
        return 0;
    }
}

/** Fleet of one acceleration applied everywhere it helps. */
model::FleetProjection
project(const std::string &kernel, double accel_factor,
        const std::function<double(const workload::ServiceProfile &)>
            &alphaOf)
{
    std::vector<model::FleetService> fleet;
    for (workload::ServiceId id : workload::characterizedServices()) {
        const auto &profile = workload::profile(id);
        double alpha = alphaOf(profile) / 100.0;
        model::FleetService svc;
        svc.name = profile.name + " (" + kernel + ")";
        svc.servers = servers(id);
        svc.params.hostCycles = 2e9;
        svc.params.alpha = alpha;
        svc.params.offloads = alpha > 0 ? 1 : 0; // on-chip: no dispatch
        svc.params.accelFactor = accel_factor;
        svc.params.offloadedFraction = alpha > 0 ? 1.0 : 0.0;
        svc.params.strategy = model::Strategy::OnChip;
        svc.design = model::ThreadingDesign::Sync;
        fleet.push_back(std::move(svc));
    }
    return model::projectFleet(fleet);
}

} // namespace

int
main()
{
    bench::banner("Fleet-wide projection of common-overhead "
                  "acceleration (extension)");

    using L = workload::LeafCategory;
    using M = workload::MemoryLeaf;
    struct Row
    {
        const char *name;
        double factor;
        std::function<double(const workload::ServiceProfile &)> alpha;
    };
    const Row rows[] = {
        {"compression (A=5, on-chip)", 5.0,
         [](const workload::ServiceProfile &p) {
             return p.functionalityShare.at(
                 workload::Functionality::Compression);
         }},
        {"memory copy (A=4, SIMD)", 4.0,
         [](const workload::ServiceProfile &p) {
             return p.leafShare.at(L::Memory) *
                    p.memoryShare.at(M::Copy) / 100.0;
         }},
        {"memory allocation (A=1.5, Mallacc)", 1.5,
         [](const workload::ServiceProfile &p) {
             return p.leafShare.at(L::Memory) *
                    p.memoryShare.at(M::Allocation) / 100.0;
         }},
    };

    TextTable table({"accelerated overhead", "fleet speedup",
                     "servers freed", "capacity"});
    for (size_t c = 1; c <= 3; ++c)
        table.setAlign(c, Align::Right);
    // The three overhead scenarios are independent projections; shard
    // them across the pool, keeping row order.
    std::vector<const Row *> configs;
    for (const Row &row : rows)
        configs.push_back(&row);
    std::vector<model::FleetProjection> fleets = bench::shardConfigs(
        configs, [](const Row *row) {
            return project(row->name, row->factor, row->alpha);
        });
    for (size_t i = 0; i < configs.size(); ++i) {
        const model::FleetProjection &fleet = fleets[i];
        table.addRow({configs[i]->name,
                      fmtPct(fleet.fleetSpeedup - 1.0, 2),
                      fmtF(fleet.serversFreed, 0),
                      fmtPct(fleet.capacityFraction(), 2)});
    }
    std::cout << table.str();
    std::cout << "\nTakeaway: a modest 1.5x allocation path still frees "
                 "hundreds of servers at fleet scale, and compression "
                 "acceleration pays for itself across every service "
                 "domain — the paper's motivation for accelerating "
                 "common building blocks.\n";
    return 0;
}

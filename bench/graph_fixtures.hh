/**
 * @file
 * Shared ServiceGraph fixtures for the graph benches.
 *
 * graph_tail and cascade_containment both drive small Web -> Ads ->
 * Cache style graphs; the tier builders and the Ads1 case-study graph
 * live here so the two benches measure the same topology rather than
 * two hand-copied near-twins that drift apart.
 */

#pragma once

#include <memory>
#include <string>

#include "microsim/ab_test.hh"
#include "microsim/service_graph.hh"
#include "microsim/service_spec.hh"

namespace accel::bench {

/**
 * Host-only request: @p meanCycles of non-kernel work and nothing to
 * offload — the front-end/cache tiers whose only role in a graph bench
 * is to occupy the call path.
 */
inline microsim::WorkloadSpec
lightWorkload(double meanCycles, double cv = 0.2)
{
    microsim::WorkloadSpec w;
    w.nonKernelCyclesMean = meanCycles;
    w.nonKernelCv = cv;
    w.kernelsPerRequest = 0;
    return w;
}

/**
 * Host-only Sync tier (cores == threads) running lightWorkload.
 * @p arrivalsPerSec > 0 makes it an open-loop front-end;
 * @p maxArrivalQueue 0 keeps the admission queue unbounded.
 */
inline microsim::ServiceSpec
lightTier(const std::string &name, double clockGHz, std::uint32_t threads,
          double arrivalsPerSec, double meanCycles, std::uint64_t seed,
          std::uint64_t maxArrivalQueue = 0)
{
    microsim::ServiceConfig cfg;
    cfg.cores = threads;
    cfg.threads = threads;
    cfg.design = model::ThreadingDesign::Sync;
    cfg.clockGHz = clockGHz;
    cfg.accelerated = false;
    cfg.openArrivalsPerSec = arrivalsPerSec;
    cfg.maxArrivalQueue = maxArrivalQueue;
    return microsim::ServiceSpec(name)
        .service(cfg)
        .accelerator(microsim::AcceleratorConfig{})
        .workload(lightWorkload(meanCycles))
        .seed(seed);
}

/**
 * Web -> Ads -> Cache: the Ads1 case-study service, driven by an
 * open-loop front-end offering well above its capacity (a bounded
 * admission queue sheds the surplus), with an async cache notification
 * riding behind it. The Ads node's completion rate then measures its
 * capacity, and the accelerated/host ratio reproduces the standalone
 * A/B speedup (graph_tail gate b). Assembled but not run.
 */
inline microsim::ServiceGraph
webAdsCacheGraph(const microsim::AbExperiment &ads, bool accelerated)
{
    microsim::ServiceConfig ads_cfg = ads.service;
    ads_cfg.accelerated = accelerated;
    ads_cfg.maxArrivalQueue = 8;

    microsim::ServiceGraph graph(ads.seed);
    // Front-end and cache: light host-only work (1e6 cycles = 0.4 ms
    // at 2.5 GHz) on the same clock as the Ads node.
    graph.addService(lightTier("web", ads.service.clockGHz, /*threads=*/2,
                               /*arrivalsPerSec=*/40, // ~4x Ads capacity
                               /*meanCycles=*/1e6, ads.seed));
    graph.addService(microsim::ServiceSpec("ads")
                         .service(ads_cfg)
                         .accelerator(ads.accelerator)
                         .workload(ads.workload)
                         .seed(ads.seed));
    graph.addService(lightTier("cache", ads.service.clockGHz,
                               /*threads=*/2, /*arrivalsPerSec=*/0,
                               /*meanCycles=*/1e6, ads.seed));

    microsim::EdgeConfig front;
    front.caller = "web";
    front.callee = "ads";
    front.latencyCycles = 1e6;
    graph.addEdge(front);
    microsim::EdgeConfig back;
    back.caller = "ads";
    back.callee = "cache";
    back.style = microsim::CallStyle::Async;
    back.latencyCycles = 1e6;
    graph.addEdge(back);
    return graph;
}

} // namespace accel::bench

/**
 * @file
 * Extension bench: RPC fan-out tail amplification across a service
 * graph, plus the Ads1 remote-inference validation re-run as a
 * Web -> Ads -> Cache graph.
 *
 * The paper measures each service's acceleration in isolation; at
 * hyperscale a user request fans out across tiers of services, and the
 * end-to-end tail is the join over the slowest child at every level.
 * This bench quantifies that amplification on the ServiceGraph
 * simulator and cross-checks the graph plumbing against the paper's
 * Ads1 case study driven through a front-end instead of a closed loop.
 *
 * Usage: graph_tail [--seed N] [--json PATH]
 *
 * Exits non-zero unless ALL acceptance criteria hold:
 *  (a) depth series: with 2-way sync fan-out and jittered hops at
 *      every level, end-to-end p99 grows strictly with fan-out depth
 *      1 -> 2 -> 3, and each depth's p99 amplification over the
 *      front-end's service-local p99 exceeds 1;
 *  (b) Ads1 in a graph: the accelerated-vs-host throughput ratio of
 *      the Ads node inside a saturated Web -> Ads -> Cache graph lands
 *      within 10 points of the standalone A/B measurement (which
 *      itself validates against the paper's 0.687x);
 *  (c) identity: a single-node graph reproduces the standalone
 *      ServiceSim metrics bit-identically (same JSON bytes).
 */

#include <cstdlib>
#include <fstream>

#include "bench_common.hh"
#include "graph_fixtures.hh"
#include "microsim/ab_test.hh"
#include "microsim/service_graph.hh"
#include "microsim/service_sim.hh"
#include "microsim/service_spec.hh"
#include "workload/request_factory.hh"

using namespace accel;
using model::ThreadingDesign;

namespace {

/** Gate (b): graph Ads throughput ratio within 10pp of standalone. */
constexpr double kAdsTolerance = 0.10;

/** ~5000-cycle host-only request for the depth-series tiers. */
microsim::WorkloadSpec
tierWorkload()
{
    microsim::WorkloadSpec w;
    w.nonKernelCyclesMean = 4000;
    w.nonKernelCv = 0.2;
    w.kernelsPerRequest = 1;
    w.granularity = std::make_shared<const BucketDist>(
        std::vector<DistBucket>{{400, 600, 1.0}});
    w.cyclesPerByte = 2.0;
    return w;
}

microsim::ServiceConfig
tierConfig(double arrivalsPerSec, std::uint32_t threads)
{
    microsim::ServiceConfig cfg;
    cfg.cores = threads;
    cfg.threads = threads;
    cfg.design = ThreadingDesign::Sync;
    cfg.clockGHz = 1.0;
    cfg.accelerated = false;
    cfg.openArrivalsPerSec = arrivalsPerSec;
    return cfg;
}

microsim::ServiceSpec
tierNode(const std::string &name, double arrivalsPerSec,
         std::uint32_t threads, std::uint64_t seed)
{
    return microsim::ServiceSpec(name)
        .service(tierConfig(arrivalsPerSec, threads))
        .accelerator(microsim::AcceleratorConfig{})
        .workload(tierWorkload())
        .seed(seed);
}

/**
 * Depth-d chain: web fans out 2-way sync to t1, t1 to t2, ... with a
 * jittered hop both ways, so the root joins over 2^d leaf draws.
 */
microsim::GraphMetrics
runDepth(std::uint32_t depth, std::uint64_t seed)
{
    microsim::ServiceGraph graph(seed);
    graph.addService(tierNode("web", /*arrivalsPerSec=*/10000,
                              /*threads=*/1, seed));
    std::string prev = "web";
    for (std::uint32_t d = 1; d <= depth; ++d) {
        // Built by append: GCC 12's -Wrestrict false-positives on
        // operator+(const char *, std::string &&) under -O2.
        std::string name = "t";
        name += std::to_string(d);
        // Offered load doubles per level; 4 threads keep every tier
        // far from saturation so the tail is join-driven, not queueing.
        graph.addService(tierNode(name, 0, /*threads=*/4, seed + d));
        microsim::EdgeConfig e;
        e.caller = prev;
        e.callee = name;
        e.fanout = 2;
        e.style = microsim::CallStyle::Sync;
        e.latencyCycles = 1000;
        e.latencyJitterCycles = 2000;
        graph.addEdge(e);
        prev = name;
    }
    return graph.run(/*measureSeconds=*/0.25, /*warmupSeconds=*/0.05);
}

/** One arm of the Ads1-in-a-graph validation. */
struct AdsArm
{
    std::string name;
    bool accelerated = false;
    microsim::GraphMetrics m;
};

/** One arm of the Ads1-in-a-graph validation (fixture topology). */
microsim::GraphMetrics
runAdsGraph(const microsim::AbExperiment &ads, bool accelerated)
{
    return bench::webAdsCacheGraph(ads, accelerated)
        .run(ads.measureSeconds, ads.warmupSeconds);
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seed = 2020;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--seed" && i + 1 < argc) {
            seed = static_cast<std::uint64_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            fatal("graph_tail: unknown argument '" + arg +
                  "' (usage: [--seed N] [--json PATH])");
        }
    }

    bench::banner("Graph tail: RPC fan-out amplification and Ads1 "
                  "as a service graph (extension)");

    // ---- (a) depth series ----
    const std::vector<std::uint32_t> depths = {1, 2, 3};
    std::vector<microsim::GraphMetrics> series =
        bench::shardConfigs(depths, [&](std::uint32_t depth) {
            return runDepth(depth, seed);
        });

    TextTable depth_table({"depth", "root p99 cyc", "web-local p99",
                           "amplification", "roots/s"});
    for (size_t c = 1; c <= 4; ++c)
        depth_table.setAlign(c, Align::Right);
    std::ostringstream csv_text;
    CsvWriter csv(csv_text, {"depth", "root_p99_cycles",
                             "web_local_p99_cycles", "amplification",
                             "root_qps"});
    std::vector<double> amp(depths.size());
    bool depth_ok = true;
    for (size_t i = 0; i < depths.size(); ++i) {
        const microsim::GraphMetrics &m = series[i];
        double root_p99 = m.rootLatencyCycles.p99();
        double local_p99 =
            m.node("web").service.latencySample.p99();
        amp[i] = root_p99 / local_p99;
        depth_table.addRow({std::to_string(depths[i]),
                            fmtF(root_p99, 0), fmtF(local_p99, 0),
                            fmtF(amp[i], 2), fmtF(m.rootQps(), 0)});
        csv.row({std::to_string(depths[i]), fmtF(root_p99, 0),
                 fmtF(local_p99, 0), fmtF(amp[i], 4),
                 fmtF(m.rootQps(), 1)});
        depth_ok = depth_ok && amp[i] > 1.0 &&
            (i == 0 || series[i].rootLatencyCycles.p99() >
                           series[i - 1].rootLatencyCycles.p99());
    }
    std::cout << depth_table.str() << "\ncsv:\n" << csv_text.str()
              << "\n";
    std::cout << "depth check: p99 strictly increasing with fan-out "
                 "depth, amplification > 1 at every depth -> "
              << (depth_ok ? "pass" : "FAIL") << "\n\n";

    // ---- (b) Ads1 as Web -> Ads -> Cache ----
    workload::CaseStudy cs = workload::remoteInferenceCaseStudy();
    microsim::AbResult standalone = microsim::runAbTest(cs.experiment);
    double standalone_speedup = standalone.measuredSpeedup();

    std::vector<AdsArm> arms(2);
    arms[0].name = "host-only";
    arms[1].name = "accelerated";
    arms[1].accelerated = true;
    arms = bench::shardConfigs(arms, [&](AdsArm arm) {
        arm.m = runAdsGraph(cs.experiment, arm.accelerated);
        return arm;
    });
    double host_qps = arms[0].m.node("ads").service.qps();
    double accel_qps = arms[1].m.node("ads").service.qps();
    require(host_qps > 0, "graph_tail: host arm measured no Ads "
                          "completions");
    double graph_speedup = accel_qps / host_qps;

    TextTable ads_table({"arm", "ads QPS", "ads shed", "root p99 cyc",
                         "cache QPS"});
    for (size_t c = 1; c <= 4; ++c)
        ads_table.setAlign(c, Align::Right);
    for (const AdsArm &arm : arms) {
        const microsim::ServiceMetrics &ads =
            arm.m.node("ads").service;
        ads_table.addRow(
            {arm.name, fmtF(ads.qps(), 2),
             std::to_string(ads.requestsShed),
             fmtF(arm.m.rootLatencyCycles.p99(), 0),
             fmtF(arm.m.node("cache").service.qps(), 2)});
    }
    std::cout << ads_table.str() << "\n";
    bool ads_ok =
        std::abs(graph_speedup - standalone_speedup) <= kAdsTolerance;
    std::cout << "ads check: graph speedup "
              << fmtF(graph_speedup, 4) << "x vs standalone "
              << fmtF(standalone_speedup, 4) << "x (paper real "
              << fmtF(1.0 + cs.paperRealSpeedup, 4)
              << "x; criterion: within " << fmtF(kAdsTolerance, 2)
              << ") -> " << (ads_ok ? "pass" : "FAIL") << "\n\n";

    // ---- (c) single-node graph identity ----
    microsim::ServiceSpec solo =
        tierNode("solo", 50000, /*threads=*/1, seed);
    microsim::ServiceMetrics alone =
        microsim::ServiceSim(solo).run(0.25, 0.05);
    microsim::ServiceGraph single(seed);
    single.addService(solo);
    microsim::GraphMetrics wrapped = single.run(0.25, 0.05);
    bool identity_ok = wrapped.node("solo").service.summaryJson() ==
        alone.summaryJson();
    std::cout << "identity check: single-node graph vs standalone "
                 "ServiceSim summary JSON "
              << (identity_ok ? "bit-identical -> pass"
                              : "DIVERGED -> FAIL")
              << "\n";

    std::cout
        << "\nReading: each sync fan-out level joins on its slowest "
           "child, so the end-to-end p99 compounds hop jitter that no "
           "single service's profile shows — accelerating one tier in "
           "isolation understates (or misses) what the user sees. The "
           "Ads1 arm shows the same simulator produces the paper's "
           "case-study economics when the service sits mid-graph "
           "behind a front-end rather than in a closed loop.\n";

    bool ok = depth_ok && ads_ok && identity_ok;
    if (!json_path.empty()) {
        std::ostringstream json;
        json << "{\n  \"seed\": " << seed << ",\n  \"depths\": [\n";
        for (size_t i = 0; i < depths.size(); ++i) {
            json << (i == 0 ? "" : ",\n") << "    {\"depth\": "
                 << depths[i] << ", \"amplification\": "
                 << fmtF(amp[i], 4) << ", \"summary\": "
                 << series[i].summaryJson() << "}";
        }
        json << "\n  ],\n  \"ads\": {\"standalone_speedup\": "
             << fmtF(standalone_speedup, 4) << ", \"graph_speedup\": "
             << fmtF(graph_speedup, 4) << ", \"paper_real\": "
             << fmtF(1.0 + cs.paperRealSpeedup, 4)
             << ", \"host\": " << arms[0].m.summaryJson()
             << ", \"accelerated\": " << arms[1].m.summaryJson()
             << "},\n  \"depth_pass\": "
             << (depth_ok ? "true" : "false") << ",\n  \"ads_pass\": "
             << (ads_ok ? "true" : "false")
             << ",\n  \"identity_pass\": "
             << (identity_ok ? "true" : "false") << ",\n  \"pass\": "
             << (ok ? "true" : "false") << "\n}\n";
        std::ofstream out(json_path);
        require(static_cast<bool>(out),
                "graph_tail: cannot write '" + json_path + "'");
        out << json.str();
        std::cout << "json written to " << json_path << "\n";
    }
    return ok ? 0 : 1;
}

/**
 * @file
 * Kernel calibration micro-benchmarks (google-benchmark).
 *
 * The paper derives model parameters from "micro-benchmarks that
 * measure execution time on the host and the accelerator". These
 * benchmarks time the real software kernels (AES, SHA-256, LZ
 * compression, memcpy, pool allocation) across granularities; the
 * per-byte costs feed the model's Cb parameter.
 */

#include <map>

#include <benchmark/benchmark.h>

#include "kernels/aes128.hh"
#include "kernels/lz_compress.hh"
#include "kernels/memops.hh"
#include "kernels/pool_allocator.hh"
#include "kernels/serde.hh"
#include "kernels/sha256.hh"
#include "util/rng.hh"
#include "util/thread_pool.hh"

namespace {

using namespace accel;

std::vector<std::uint8_t>
makeLogLikeData(size_t bytes)
{
    static const char *words[] = {
        "GET", "POST", "/api/v2/feed", "status=200", "latency_us=",
        "user_id=", "region=prn", "cache_hit", "bytes=",
    };
    Rng rng(1234);
    std::vector<std::uint8_t> out;
    out.reserve(bytes + 16);
    while (out.size() < bytes) {
        const char *w = words[rng.below(9)];
        for (const char *p = w; *p; ++p)
            out.push_back(static_cast<std::uint8_t>(*p));
        out.push_back(' ');
    }
    out.resize(bytes);
    return out;
}

/**
 * Benchmark input corpus, built once for every granularity the
 * benchmarks sweep. Generation shards across the worker pool
 * (ACCEL_JOBS) — only setup parallelizes; the timed loops stay serial
 * so per-kernel timings remain honest. Each buffer is seeded
 * identically to a direct makeLogLikeData() call, so benchmark inputs
 * are unchanged.
 */
const std::vector<std::uint8_t> &
logLikeData(size_t bytes)
{
    static const std::map<size_t, std::vector<std::uint8_t>> cache = [] {
        const std::vector<size_t> sizes = {64,   256,   1024,
                                           4096, 16384, 65536};
        std::vector<std::vector<std::uint8_t>> buffers =
            parallelMap(sizes, makeLogLikeData);
        std::map<size_t, std::vector<std::uint8_t>> built;
        for (size_t i = 0; i < sizes.size(); ++i)
            built.emplace(sizes[i], std::move(buffers[i]));
        return built;
    }();
    auto it = cache.find(bytes);
    if (it != cache.end())
        return it->second;
    // Uncached granularity (new benchmark range): generate on demand.
    static std::map<size_t, std::vector<std::uint8_t>> extra;
    return extra.emplace(bytes, makeLogLikeData(bytes)).first->second;
}

void
BM_AesCtr(benchmark::State &state)
{
    std::array<std::uint8_t, 16> key{}, iv{};
    key[0] = 0x2b;
    kernels::Aes128 cipher(key);
    const auto &data = logLikeData(static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        auto out = cipher.ctr(data, iv);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_AesCtr)->RangeMultiplier(4)->Range(64, 65536);

void
BM_Sha256(benchmark::State &state)
{
    const auto &data = logLikeData(static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        auto digest = kernels::Sha256::digest(data);
        benchmark::DoNotOptimize(digest.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Sha256)->RangeMultiplier(4)->Range(64, 65536);

void
BM_LzCompress(benchmark::State &state)
{
    const auto &data = logLikeData(static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        auto frame = kernels::lzCompress(data);
        benchmark::DoNotOptimize(frame.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_LzCompress)->RangeMultiplier(4)->Range(256, 65536);

void
BM_LzDecompress(benchmark::State &state)
{
    auto frame =
        kernels::lzCompress(logLikeData(static_cast<size_t>(
            state.range(0))));
    for (auto _ : state) {
        auto out = kernels::lzDecompress(frame);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_LzDecompress)->RangeMultiplier(4)->Range(256, 65536);

void
BM_Memcpy(benchmark::State &state)
{
    kernels::MemOpHarness harness(1 << 20);
    size_t bytes = static_cast<size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            harness.run(kernels::MemOp::Copy, bytes));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Memcpy)->RangeMultiplier(4)->Range(64, 1 << 20);

void
BM_Serialize(benchmark::State &state)
{
    kernels::SerdeMessage msg = kernels::makeStoryMessage(
        static_cast<size_t>(state.range(0)), 23);
    for (auto _ : state) {
        auto wire = kernels::serialize(msg);
        benchmark::DoNotOptimize(wire.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Serialize)->RangeMultiplier(4)->Range(256, 65536);

void
BM_Deserialize(benchmark::State &state)
{
    auto wire = kernels::serialize(kernels::makeStoryMessage(
        static_cast<size_t>(state.range(0)), 23));
    for (auto _ : state) {
        auto msg = kernels::deserialize(wire);
        benchmark::DoNotOptimize(&msg);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Deserialize)->RangeMultiplier(4)->Range(256, 65536);

void
BM_PoolAllocFreeUnsized(benchmark::State &state)
{
    kernels::PoolAllocator pool;
    size_t bytes = static_cast<size_t>(state.range(0));
    for (auto _ : state) {
        void *p = pool.allocate(bytes);
        benchmark::DoNotOptimize(p);
        pool.free(p);
    }
    const kernels::PoolStats &ps = pool.stats();
    state.counters["chunk_refills"] =
        static_cast<double>(ps.chunkRefills);
    state.counters["bytes_requested"] =
        static_cast<double>(ps.bytesRequested);
}
BENCHMARK(BM_PoolAllocFreeUnsized)->Arg(16)->Arg(128)->Arg(1024);

void
BM_PoolAllocFreeSized(benchmark::State &state)
{
    // The C++14 sized-deallocation path the paper contrasts against:
    // free() with the size skips the size-class lookup.
    kernels::PoolAllocator pool;
    size_t bytes = static_cast<size_t>(state.range(0));
    for (auto _ : state) {
        void *p = pool.allocate(bytes);
        benchmark::DoNotOptimize(p);
        pool.sizedFree(p, bytes);
    }
    // The sized-path share of frees is the quantity Table 7's A = 1.5
    // rests on; surface the allocator's own accounting alongside the
    // timing so the JSON artifact carries it.
    const kernels::PoolStats &ps = pool.stats();
    state.counters["sized_frees"] = static_cast<double>(ps.sizedFrees);
}
BENCHMARK(BM_PoolAllocFreeSized)->Arg(16)->Arg(128)->Arg(1024);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Extension bench: tail latency and goodput of a replicated remote
 * accelerator tier, swept over replica count x dispatch policy x
 * hedging x per-replica fault rate.
 *
 * The paper's remote case study (Ads1 inference, Table 6) models the
 * remote accelerator as a single device with a large L; a production
 * remote tier is a replicated fleet whose p99 is set by its slowest
 * replica. This bench asks the two operational questions for that
 * fleet: does hedging defend the tail against a brown-out replica at
 * acceptable duplicate-work cost, and does health-checked failover
 * keep goodput when a replica hard-fails?
 *
 * Usage: replica_tail [--seed N] [--json PATH]
 *
 * Exits non-zero unless BOTH acceptance criteria hold:
 *  (a) with one of four replicas serving 25% of its responses 30k
 *      cycles late, hedging (delay = healthy-tier p99, quantile-
 *      derived) improves p99 offload latency >= 2x over no hedging at
 *      <= 10% duplicate-work overhead;
 *  (b) with one of four replicas hard-failed from tick 0, ejection +
 *      failover keep goodput within 5% of the healthy-tier baseline —
 *      no host fallback configured.
 */

#include <cstdlib>
#include <fstream>

#include "bench_common.hh"
#include "faults/fault_plan.hh"
#include "microsim/service_spec.hh"
#include "microsim/service_sim.hh"
#include "microsim/tier.hh"

using namespace accel;
using model::Strategy;
using model::ThreadingDesign;

namespace {

/** Healthy-tier latency quantile the hedge delay derives from. */
constexpr double kHedgeQuantile = 0.99;

/** The brown-out replica: a quarter of its completions are this late. */
constexpr double kLateProbability = 0.25;
constexpr double kLateDelayCycles = 30000;

microsim::WorkloadSpec
workload()
{
    microsim::WorkloadSpec w;
    w.nonKernelCyclesMean = 4000;
    w.nonKernelCv = 0.3;
    w.kernelsPerRequest = 1;
    w.granularity = std::make_shared<const BucketDist>(
        std::vector<DistBucket>{{400, 600, 1.0}});
    w.cyclesPerByte = 2.0; // ~1000 host cycles per kernel
    return w;
}

microsim::ServiceConfig
service()
{
    microsim::ServiceConfig svc;
    svc.cores = 2;
    svc.threads = 2;
    svc.design = ThreadingDesign::AsyncSameThread;
    svc.strategy = Strategy::Remote;
    svc.driverWaitsForAck = false; // remote: transfer overlaps host work
    svc.clockGHz = 1.0;
    svc.offloadSetupCycles = 20;
    return svc;
}

microsim::AcceleratorConfig
device()
{
    microsim::AcceleratorConfig acc;
    acc.speedupFactor = 5; // ~200-cycle service per kernel
    acc.fixedLatencyCycles = 50;
    acc.latencyCyclesPerByte = 0.1;
    return acc;
}

/** Replica @p index responds late with probability @p late_p. */
std::shared_ptr<const faults::FaultPlan>
latePlan(double late_p, std::uint64_t seed)
{
    auto plan = std::make_shared<faults::FaultPlan>();
    plan->seed = seed;
    plan->lateProbability = late_p;
    plan->lateDelayCycles = kLateDelayCycles;
    return plan;
}

/** Replica dead from tick 0, never recovering. */
std::shared_ptr<const faults::FaultPlan>
deadPlan()
{
    auto plan = std::make_shared<faults::FaultPlan>();
    plan->deviceFailAtTick = 0;
    return plan;
}

microsim::TierConfig
tierConfig(std::uint32_t replicas, microsim::DispatchPolicy policy,
           double hedgeDelay, std::uint64_t seed)
{
    microsim::TierConfig tier;
    tier.replicas = replicas;
    tier.policy = policy;
    tier.seed = seed;
    if (hedgeDelay > 0) {
        tier.hedge.enabled = true;
        tier.hedge.delayCycles = hedgeDelay;
    }
    return tier;
}

/** Health tracking for the hard-failure scenario (criterion b). */
void
enableHealth(microsim::TierConfig &tier)
{
    tier.healthTimeoutCycles = 3000; // ~10x the healthy offload path
    tier.ejectAfterFailures = 3;
    tier.healthWindow = 16;
    tier.readmitAfterCycles = 1e6;
    tier.maxFailovers = 3;
}

microsim::ServiceMetrics
runTier(const microsim::TierConfig &tier, std::uint64_t seed)
{
    microsim::ServiceSim sim(microsim::ServiceSpec("replica-tail")
                                 .service(service())
                                 .accelerator(device())
                                 .tier(tier)
                                 .workload(workload())
                                 .seed(seed));
    return sim.run(/*measureSeconds=*/0.05, /*warmupSeconds=*/0.01);
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seed = 2020;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--seed" && i + 1 < argc) {
            seed = static_cast<std::uint64_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            fatal("replica_tail: unknown argument '" + arg +
                  "' (usage: [--seed N] [--json PATH])");
        }
    }

    bench::banner("Replica tail: hedged offloads and brown-out "
                  "failover on a replicated remote tier (extension)");

    // Calibration: a healthy 4-replica round-robin tier with no
    // hedging. The hedge delay is quantile-derived from its offload
    // latency distribution, so hedges fire only past the healthy tail.
    microsim::ServiceMetrics healthy = runTier(
        tierConfig(4, microsim::DispatchPolicy::RoundRobin, 0, seed),
        seed);
    double hedge_delay =
        healthy.tier.offloadLatencyCycles.quantile(kHedgeQuantile);
    std::cout << "hedge delay = healthy p99 offload latency = "
              << fmtF(hedge_delay, 0) << " cycles\n\n";

    // ---- Sweep: replicas x policy x hedge x slow-replica fault ----
    const std::vector<std::uint32_t> replica_counts = {2, 4};
    const std::vector<microsim::DispatchPolicy> policies = {
        microsim::DispatchPolicy::RoundRobin,
        microsim::DispatchPolicy::LeastOutstanding,
        microsim::DispatchPolicy::PowerOfTwoChoices};
    const std::vector<double> hedge_delays = {0.0, hedge_delay};
    const std::vector<double> late_rates = {0.0, kLateProbability};

    struct Cell
    {
        std::uint32_t replicas;
        microsim::DispatchPolicy policy;
        double hedgeDelay;
        double lateP;
        microsim::ServiceMetrics m;
    };
    std::vector<Cell> cells;
    for (std::uint32_t n : replica_counts)
        for (microsim::DispatchPolicy p : policies)
            for (double h : hedge_delays)
                for (double late_p : late_rates)
                    cells.push_back({n, p, h, late_p, {}});
    cells = bench::shardConfigs(cells, [&](Cell cell) {
        microsim::TierConfig tier =
            tierConfig(cell.replicas, cell.policy, cell.hedgeDelay, seed);
        if (cell.lateP > 0) {
            // The last replica browns out; the rest stay healthy.
            tier.replicaFaultPlans.resize(cell.replicas);
            tier.replicaFaultPlans[cell.replicas - 1] =
                latePlan(cell.lateP, seed);
        }
        cell.m = runTier(tier, seed);
        return cell;
    });

    TextTable table({"replicas", "policy", "hedge", "late p",
                     "p99 off cyc", "goodput QPS", "hedges", "dup work",
                     "wins/losses"});
    for (size_t c = 3; c <= 8; ++c)
        table.setAlign(c, Align::Right);
    std::ostringstream csv_text;
    CsvWriter csv(csv_text,
                  {"replicas", "policy", "hedge_delay", "late_p",
                   "p99_offload_cycles", "p50_offload_cycles",
                   "goodput_qps", "hedges_issued", "hedge_wins",
                   "hedge_losses", "duplicates", "dup_work_fraction",
                   "watchdog_expiries", "failovers", "ejections"});
    for (const Cell &cell : cells) {
        const microsim::TierStats &t = cell.m.tier;
        table.addRow(
            {std::to_string(cell.replicas), toString(cell.policy),
             cell.hedgeDelay > 0 ? "on" : "off", fmtF(cell.lateP, 2),
             fmtF(t.offloadLatencyCycles.p99(), 0),
             fmtF(cell.m.goodputQps(), 0),
             fmtF(static_cast<double>(t.hedgesIssued), 0),
             fmtPct(t.duplicateWorkFraction(), 1),
             std::to_string(t.hedgeWins) + "/" +
                 std::to_string(t.hedgeLosses)});
        csv.row({std::to_string(cell.replicas), toString(cell.policy),
                 fmtF(cell.hedgeDelay, 0), fmtF(cell.lateP, 2),
                 fmtF(t.offloadLatencyCycles.p99(), 0),
                 fmtF(t.offloadLatencyCycles.p50(), 0),
                 fmtF(cell.m.goodputQps(), 1),
                 std::to_string(t.hedgesIssued),
                 std::to_string(t.hedgeWins),
                 std::to_string(t.hedgeLosses),
                 std::to_string(t.duplicateCompletions),
                 fmtF(t.duplicateWorkFraction(), 4),
                 std::to_string(t.watchdogExpiries),
                 std::to_string(t.failovers),
                 std::to_string(t.ejections)});
    }
    std::cout << table.str() << "\ncsv:\n" << csv_text.str() << "\n";

    // ---- Criterion (a): hedging defends p99 under a brown-out ----
    auto find = [&](double hedge, double late_p) -> const Cell & {
        for (const Cell &cell : cells) {
            if (cell.replicas == 4 &&
                cell.policy == microsim::DispatchPolicy::RoundRobin &&
                (cell.hedgeDelay > 0) == (hedge > 0) &&
                cell.lateP == late_p) {
                return cell;
            }
        }
        fatal("replica_tail: sweep cell missing");
    };
    const Cell &no_hedge = find(0.0, kLateProbability);
    const Cell &hedged = find(hedge_delay, kLateProbability);
    double p99_no_hedge = no_hedge.m.tier.offloadLatencyCycles.p99();
    double p99_hedged = hedged.m.tier.offloadLatencyCycles.p99();
    double p99_improvement = p99_no_hedge / p99_hedged;
    double dup_work = hedged.m.tier.duplicateWorkFraction();
    bool hedge_ok = p99_improvement >= 2.0 && dup_work <= 0.10;
    std::cout << "hedge check: p99 " << fmtF(p99_no_hedge, 0) << " -> "
              << fmtF(p99_hedged, 0) << " cycles ("
              << fmtF(p99_improvement, 1) << "x, criterion: >= 2x) at "
              << fmtPct(dup_work, 1)
              << " duplicate work (criterion: <= 10%) -> "
              << (hedge_ok ? "pass" : "FAIL") << "\n";

    // ---- Criterion (b): goodput survives a hard-failed replica ----
    // Health tracking + failover only; no ServiceSim retry policy, so
    // there is no host fallback to hide behind.
    microsim::TierConfig healthy_tier =
        tierConfig(4, microsim::DispatchPolicy::RoundRobin, 0, seed);
    enableHealth(healthy_tier);
    microsim::TierConfig dead_tier = healthy_tier;
    dead_tier.replicaFaultPlans.resize(4);
    dead_tier.replicaFaultPlans[3] = deadPlan();

    struct Arm
    {
        microsim::TierConfig tier;
        microsim::ServiceMetrics m;
    };
    std::vector<Arm> arms = {{healthy_tier, {}}, {dead_tier, {}}};
    arms = bench::shardConfigs(arms, [&](Arm arm) {
        arm.m = runTier(arm.tier, seed);
        return arm;
    });
    const microsim::ServiceMetrics &healthy_m = arms[0].m;
    const microsim::ServiceMetrics &dead_m = arms[1].m;
    double goodput_ratio = dead_m.goodputQps() / healthy_m.goodputQps();
    bool failover_ok = goodput_ratio >= 0.95 && goodput_ratio <= 1.05;
    std::cout << "failover check: goodput with 1/4 replicas dead is "
              << fmtF(goodput_ratio, 3)
              << "x healthy tier (criterion: within 5%), "
              << dead_m.tier.ejections << " ejections, "
              << dead_m.tier.failovers << " failovers -> "
              << (failover_ok ? "pass" : "FAIL") << "\n";

    // Per-replica breakdown of the hard-failure run: the dashboard
    // view of which replica died and who absorbed its load.
    TextTable rep_table({"replica", "dispatched", "wins", "duplicates",
                         "failures", "ejections", "served", "busy cyc"});
    for (size_t c = 1; c <= 7; ++c)
        rep_table.setAlign(c, Align::Right);
    std::ostringstream rep_csv_text;
    CsvWriter rep_csv(rep_csv_text,
                      {"replica", "dispatched", "wins", "duplicates",
                       "wasted_cycles", "failures", "ejections",
                       "readmissions", "served", "busy_cycles"});
    for (size_t r = 0; r < dead_m.tier.replicas.size(); ++r) {
        const microsim::TierReplicaStats &rs = dead_m.tier.replicas[r];
        const microsim::AcceleratorStats &ds = dead_m.tier.deviceStats[r];
        rep_table.addRow({std::to_string(r),
                          std::to_string(rs.dispatched),
                          std::to_string(rs.wins),
                          std::to_string(rs.duplicates),
                          std::to_string(rs.failures),
                          std::to_string(rs.ejections),
                          std::to_string(ds.served),
                          fmtF(ds.busyCycles, 0)});
        rep_csv.row({std::to_string(r), std::to_string(rs.dispatched),
                     std::to_string(rs.wins),
                     std::to_string(rs.duplicates),
                     fmtF(rs.wastedServiceCycles, 0),
                     std::to_string(rs.failures),
                     std::to_string(rs.ejections),
                     std::to_string(rs.readmissions),
                     std::to_string(ds.served),
                     fmtF(ds.busyCycles, 0)});
    }
    std::cout << "\nper-replica breakdown (1-of-4 hard-failed run):\n"
              << rep_table.str() << "\ncsv:\n" << rep_csv_text.str();

    std::cout << "\nReading: round-robin keeps routing a quarter of "
                 "offloads at the brown-out replica, so its 30k-cycle "
                 "late tail lands squarely on p99; a hedge at the "
                 "healthy p99 re-issues exactly those offloads and the "
                 "fast replica's completion wins the race. "
                 "Least-outstanding dodges much of the tail without "
                 "hedging — late responses hold the slow replica's "
                 "outstanding count high, steering new work away. A "
                 "hard-failed replica is ejected after consecutive "
                 "watchdog expiries and its load spreads over the "
                 "survivors; only the readmission probes keep paying "
                 "the timeout.\n";

    bool ok = hedge_ok && failover_ok;
    if (!json_path.empty()) {
        std::ostringstream json;
        json << "{\n  \"seed\": " << seed << ",\n  \"hedge_delay\": "
             << fmtF(hedge_delay, 0) << ",\n  \"p99_no_hedge\": "
             << fmtF(p99_no_hedge, 0) << ",\n  \"p99_hedged\": "
             << fmtF(p99_hedged, 0) << ",\n  \"p99_improvement\": "
             << fmtF(p99_improvement, 2)
             << ",\n  \"duplicate_work_fraction\": " << fmtF(dup_work, 4)
             << ",\n  \"hedge_criterion_pass\": "
             << (hedge_ok ? "true" : "false")
             << ",\n  \"failover_goodput_ratio\": "
             << fmtF(goodput_ratio, 4) << ",\n  \"ejections\": "
             << dead_m.tier.ejections << ",\n  \"failovers\": "
             << dead_m.tier.failovers
             << ",\n  \"failover_criterion_pass\": "
             << (failover_ok ? "true" : "false")
             << ",\n  \"replicas\": [\n";
        for (size_t r = 0; r < dead_m.tier.replicas.size(); ++r) {
            const microsim::TierReplicaStats &rs =
                dead_m.tier.replicas[r];
            json << (r == 0 ? "" : ",\n") << "    {\"replica\": " << r
                 << ", \"dispatched\": " << rs.dispatched
                 << ", \"wins\": " << rs.wins
                 << ", \"duplicates\": " << rs.duplicates
                 << ", \"failures\": " << rs.failures
                 << ", \"ejections\": " << rs.ejections
                 << ", \"readmissions\": " << rs.readmissions << "}";
        }
        // Complete tier dump for the adjudicated runs: every counter
        // the tier collected (failover exhaustion, readmission
        // probes, useful/wasted cycles, per-replica device stats),
        // not just the headline fields above.
        json << "\n  ],\n  \"hedged_tier_detail\": "
             << hedged.m.tier.summaryJson()
             << ",\n  \"dead_tier_detail\": "
             << dead_m.tier.summaryJson()
             << ",\n  \"pass\": " << (ok ? "true" : "false")
             << "\n}\n";
        std::ofstream out(json_path);
        require(static_cast<bool>(out),
                "replica_tail: cannot write '" + json_path + "'");
        out << json.str();
        std::cout << "json written to " << json_path << "\n";
    }
    return ok ? 0 : 1;
}

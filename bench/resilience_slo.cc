/**
 * @file
 * Extension bench: goodput and tail latency under injected device
 * faults, swept over fault rate x resilience policy.
 *
 * The paper models the accelerator as perfectly reliable; at
 * hyperscale, devices stall, drop completions, and die. This bench
 * asks the operational question: which degraded-mode policy keeps the
 * most goodput as the device degrades? It sweeps completion-drop
 * probability against three policies — timeout with immediate host
 * fallback, timeout with capped-exponential-backoff retries, and
 * retries behind a circuit breaker — and reports goodput relative to
 * the all-host endpoint the breaker converges to.
 *
 * Usage: resilience_slo [--seed N] [--json PATH]
 *
 * Exits non-zero when the breaker acceptance criterion fails: under a
 * 100% fault rate the breaker policy must hold goodput within 5% of
 * the host-only baseline.
 */

#include <cstdlib>
#include <fstream>

#include "bench_common.hh"
#include "faults/fault_plan.hh"
#include "microsim/ab_test.hh"

using namespace accel;
using model::ThreadingDesign;

namespace {

microsim::WorkloadSpec
workload()
{
    microsim::WorkloadSpec w;
    w.nonKernelCyclesMean = 4000;
    w.nonKernelCv = 0.3;
    w.kernelsPerRequest = 1;
    w.granularity = std::make_shared<const BucketDist>(
        std::vector<DistBucket>{{400, 600, 1.0}});
    w.cyclesPerByte = 2.0; // ~1000 host cycles per kernel
    return w;
}

struct Policy
{
    const char *name;
    microsim::RetryPolicy retry;
    microsim::BreakerConfig breaker;
};

std::vector<Policy>
policies()
{
    // The accelerated kernel takes ~300 cycles end to end, so a 3000-
    // cycle deadline only fires on genuinely lost completions.
    microsim::RetryPolicy no_retry;
    no_retry.timeoutCycles = 3000;

    microsim::RetryPolicy retry = no_retry;
    retry.maxAttempts = 3;
    retry.backoffBaseCycles = 500;
    retry.backoffCapCycles = 4000;

    microsim::BreakerConfig breaker;
    breaker.enabled = true;
    breaker.window = 32;
    breaker.minSamples = 8;
    breaker.openThreshold = 0.5;
    breaker.probeAfterCycles = 1e6;

    return {{"timeout-no-retry", no_retry, {}},
            {"retry", retry, {}},
            {"retry+breaker", retry, breaker}};
}

microsim::AbExperiment
experiment(const Policy &policy, double drop_p, std::uint64_t seed)
{
    microsim::AbExperiment e;
    e.service.cores = 2;
    e.service.threads = 2;
    e.service.design = ThreadingDesign::Sync;
    e.service.clockGHz = 1.0;
    e.service.offloadSetupCycles = 20;
    e.service.retry = policy.retry;
    e.service.breaker = policy.breaker;
    e.accelerator.speedupFactor = 5;
    e.accelerator.fixedLatencyCycles = 50;
    e.accelerator.latencyCyclesPerByte = 0.1;
    if (drop_p > 0) {
        auto plan = std::make_shared<faults::FaultPlan>();
        plan->seed = seed;
        plan->dropProbability = drop_p;
        e.accelerator.faultPlan = std::move(plan);
    }
    e.workload = workload();
    e.seed = seed;
    e.measureSeconds = 0.05;
    e.warmupSeconds = 0.01;
    return e;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seed = 2020;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--seed" && i + 1 < argc) {
            seed = static_cast<std::uint64_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            fatal("resilience_slo: unknown argument '" + arg +
                  "' (usage: [--seed N] [--json PATH])");
        }
    }

    bench::banner("Resilience SLO: goodput under injected device "
                  "faults, by policy (extension)");

    const std::vector<double> drop_rates = {0.0,  0.01, 0.05,
                                            0.2,  0.5,  1.0};
    std::vector<Policy> pols = policies();

    struct Cell
    {
        size_t policy;
        double dropP;
        microsim::ResilienceAbResult ab;
    };
    std::vector<Cell> cells;
    for (size_t p = 0; p < pols.size(); ++p)
        for (double d : drop_rates)
            cells.push_back({p, d, {}});
    cells = bench::shardConfigs(cells, [&](Cell cell) {
        cell.ab = microsim::runResilienceAbTest(
            experiment(pols[cell.policy], cell.dropP, seed));
        return cell;
    });

    double host_goodput = cells.front().ab.hostOnly.goodputQps();

    TextTable table({"policy", "drop p", "goodput QPS", "vs host",
                     "p99 cyc", "degraded", "timeouts", "fallbacks",
                     "opens"});
    for (size_t c = 1; c <= 8; ++c)
        table.setAlign(c, Align::Right);
    std::ostringstream csv_text;
    CsvWriter csv(csv_text,
                  {"policy", "drop_p", "goodput_qps", "goodput_vs_host",
                   "qps", "p99_cycles", "degraded", "failed", "timeouts",
                   "retries", "host_fallbacks", "breaker_fallbacks",
                   "breaker_opens"});
    std::ostringstream json;
    json << "{\n  \"seed\": " << seed << ",\n"
         << "  \"host_goodput_qps\": " << fmtF(host_goodput, 1)
         << ",\n  \"rows\": [\n";

    bool first_row = true;
    double breaker_ratio_at_full_failure = 0.0;
    const microsim::ServiceMetrics *breaker_detail = nullptr;
    for (const Cell &cell : cells) {
        const microsim::ServiceMetrics &m = cell.ab.resilient;
        double ratio = cell.ab.goodputRatio();
        std::uint64_t fallbacks = m.hostFallbacks + m.breakerFallbacks;
        if (pols[cell.policy].breaker.enabled && cell.dropP == 1.0) {
            breaker_ratio_at_full_failure = ratio;
            breaker_detail = &m;
        }
        table.addRow({pols[cell.policy].name, fmtF(cell.dropP, 2),
                      fmtF(m.goodputQps(), 0), fmtF(ratio, 3),
                      fmtF(m.latencySample.p99(), 0),
                      fmtF(static_cast<double>(m.requestsDegraded), 0),
                      fmtF(static_cast<double>(m.offloadTimeouts), 0),
                      fmtF(static_cast<double>(fallbacks), 0),
                      fmtF(static_cast<double>(m.breakerOpens), 0)});
        csv.row({pols[cell.policy].name, fmtF(cell.dropP, 2),
                 fmtF(m.goodputQps(), 1), fmtF(ratio, 4),
                 fmtF(m.qps(), 1), fmtF(m.latencySample.p99(), 0),
                 fmtF(static_cast<double>(m.requestsDegraded), 0),
                 fmtF(static_cast<double>(m.requestsFailed), 0),
                 fmtF(static_cast<double>(m.offloadTimeouts), 0),
                 fmtF(static_cast<double>(m.offloadRetries), 0),
                 fmtF(static_cast<double>(m.hostFallbacks), 0),
                 fmtF(static_cast<double>(m.breakerFallbacks), 0),
                 fmtF(static_cast<double>(m.breakerOpens), 0)});
        json << (first_row ? "" : ",\n") << "    {\"policy\": \""
             << pols[cell.policy].name << "\", \"drop_p\": "
             << fmtF(cell.dropP, 2) << ", \"goodput_qps\": "
             << fmtF(m.goodputQps(), 1) << ", \"goodput_vs_host\": "
             << fmtF(ratio, 4) << ", \"p99_cycles\": "
             << fmtF(m.latencySample.p99(), 0) << ", \"timeouts\": "
             << m.offloadTimeouts << ", \"retries\": "
             << m.offloadRetries << ", \"host_fallbacks\": "
             << m.hostFallbacks << ", \"breaker_fallbacks\": "
             << m.breakerFallbacks << ", \"breaker_opens\": "
             << m.breakerOpens << "}";
        first_row = false;
    }

    // Acceptance criterion: when the device is fully dead, the breaker
    // must converge to the host-only endpoint (goodput within 5%).
    bool breaker_ok =
        breaker_ratio_at_full_failure >= 0.95 &&
        breaker_ratio_at_full_failure <= 1.05;
    json << "\n  ],\n  \"breaker_ratio_at_full_failure\": "
         << fmtF(breaker_ratio_at_full_failure, 4)
         << ",\n  \"breaker_criterion_pass\": "
         << (breaker_ok ? "true" : "false");
    // Complete metrics dump for the adjudicated cell: every counter
    // the run collected (degraded-mode, breaker, shedding, overhead
    // accounting), not just the headline columns above.
    if (breaker_detail != nullptr)
        json << ",\n  \"breaker_cell_metrics\": "
             << breaker_detail->summaryJson();
    json << "\n}\n";

    std::cout << table.str() << "\ncsv:\n" << csv_text.str();
    std::cout << "\nbreaker check: goodput at 100% failure is "
              << fmtF(breaker_ratio_at_full_failure, 3)
              << "x host-only (criterion: within 5%) -> "
              << (breaker_ok ? "pass" : "FAIL") << "\n";
    std::cout << "\nReading: without a breaker every kernel pays the "
                 "full timeout/retry ladder before falling back, so "
                 "goodput collapses as the fault rate rises; the "
                 "breaker amortises that cost over its window and "
                 "converges to host-only throughput, trading only the "
                 "occasional probe.\n";

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        require(static_cast<bool>(out),
                "resilience_slo: cannot write '" + json_path + "'");
        out << json.str();
        std::cout << "json written to " << json_path << "\n";
    }
    return breaker_ok ? 0 : 1;
}

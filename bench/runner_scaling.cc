/**
 * @file
 * Extension bench: parallel experiment runner scaling. Runs a fleet of
 * independent, seed-deterministic ServiceSim evaluations serially
 * (1 worker) and in parallel (default ACCEL_JOBS width), verifies the
 * two result sets are bit-identical, and reports the wall-clock
 * speedup — the experiment-throughput headline the runner exists for.
 */

#include <chrono>

#include "bench_common.hh"
#include "microsim/service_spec.hh"
#include "microsim/service_sim.hh"

using namespace accel;
using model::ThreadingDesign;

namespace {

/** One experiment: a seeded open-loop service run at a given load. */
struct Experiment
{
    double load;
    std::uint64_t seed;
    bool accelerated;
};

microsim::ServiceMetrics
runOne(const Experiment &e)
{
    microsim::WorkloadSpec w;
    w.nonKernelCyclesMean = 4000;
    w.nonKernelCv = 0.3;
    w.kernelsPerRequest = 1;
    w.granularity = std::make_shared<const BucketDist>(
        std::vector<DistBucket>{{400, 600, 1.0}});
    w.cyclesPerByte = 2.0;

    microsim::ServiceConfig cfg;
    cfg.cores = 1;
    cfg.threads = 1;
    cfg.design = ThreadingDesign::Sync;
    cfg.clockGHz = 1.0;
    cfg.accelerated = e.accelerated;
    cfg.offloadSetupCycles = 20;
    cfg.openArrivalsPerSec = e.load;
    microsim::AcceleratorConfig dev;
    dev.speedupFactor = 5;
    dev.fixedLatencyCycles = 50;
    microsim::ServiceSim sim(microsim::ServiceSpec("runner-scaling")
                                 .service(cfg)
                                 .accelerator(dev)
                                 .workload(w)
                                 .seed(e.seed));
    return sim.run(0.25, 0.05);
}

std::vector<microsim::ServiceMetrics>
runFleet(const std::vector<Experiment> &experiments)
{
    return bench::shardConfigs(experiments, runOne);
}

double
seconds(std::chrono::steady_clock::time_point t0,
        std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main()
{
    bench::banner("Parallel experiment runner: serial vs parallel "
                  "wall-clock and bit-for-bit parity (extension)");

    std::vector<Experiment> experiments;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        for (double load : {120e3, 180e3}) {
            experiments.push_back({load, seed, false});
            experiments.push_back({load, seed, true});
        }
    }

    size_t parallel_workers = ThreadPool::defaultWorkers();

    ThreadPool::setWorkers(1);
    auto t0 = std::chrono::steady_clock::now();
    std::vector<microsim::ServiceMetrics> serial =
        runFleet(experiments);
    auto t1 = std::chrono::steady_clock::now();

    ThreadPool::setWorkers(parallel_workers);
    auto t2 = std::chrono::steady_clock::now();
    std::vector<microsim::ServiceMetrics> parallel =
        runFleet(experiments);
    auto t3 = std::chrono::steady_clock::now();

    size_t mismatches = 0;
    for (size_t i = 0; i < experiments.size(); ++i) {
        if (serial[i].qps() != parallel[i].qps() ||
            serial[i].meanLatencyCycles() !=
                parallel[i].meanLatencyCycles() ||
            serial[i].latencySample.p99() !=
                parallel[i].latencySample.p99())
            ++mismatches;
    }

    double serial_s = seconds(t0, t1);
    double parallel_s = seconds(t2, t3);
    TextTable table({"configuration", "experiments", "wall (s)",
                     "speedup"});
    for (size_t c = 1; c <= 3; ++c)
        table.setAlign(c, Align::Right);
    table.addRow({"serial (1 worker)",
                  std::to_string(experiments.size()),
                  fmtF(serial_s, 3), "1.00x"});
    table.addRow({"parallel (" + std::to_string(parallel_workers) +
                      " workers)",
                  std::to_string(experiments.size()),
                  fmtF(parallel_s, 3),
                  fmtF(serial_s / parallel_s, 2) + "x"});
    std::cout << table.str();

    std::cout << "\nparity: " << (experiments.size() - mismatches)
              << "/" << experiments.size()
              << " experiments bit-identical across worker counts\n";
    if (mismatches > 0) {
        std::cout << "FAIL: parallel runner diverged from the serial "
                     "path\n";
        return 1;
    }
    std::cout << "\nReading: every evaluation is deterministic given "
                 "its seed, and the runner writes results into slots "
                 "indexed by input position — so parallelism changes "
                 "wall-clock time only, never a number in a table.\n";
    return 0;
}

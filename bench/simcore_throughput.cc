/**
 * @file
 * Sim-core hot-path throughput gate: timer-wheel + InlineCallback
 * EventQueue vs the pre-change queue (sim::ReferenceEventQueue,
 * std::function + pure binary heap), on two workloads:
 *
 *  - steady: many self-rescheduling event chains whose callbacks
 *    capture a shared_ptr plus payload — the capture shape microsim
 *    callbacks actually have, and one std::function always
 *    heap-allocates;
 *  - hedging: the timer-heavy shape from the accelerator tiers — every
 *    operation schedules a completion, a hedge timer, and a watchdog,
 *    and the completion cancels the timers (most timers die
 *    unfired). A slice of watchdogs lands past the wheel horizon to
 *    exercise the overflow heap.
 *
 * Heap traffic is measured with a global operator-new counting hook
 * (this binary only). Both queues run identical op sequences and must
 * produce identical execution checksums and processed-event counts —
 * the same bit-identical-results contract the property suite enforces.
 *
 * Exit-code gates (regression wall, run in CI):
 *  - hedging events/sec: new queue >= 2x reference;
 *  - steady allocations/event on the new queue <= 1 (steady state,
 *    measured after a warmup round on the same queue instance);
 *  - checksum/processed parity between the two queues, both workloads.
 *
 * Usage: simcore_throughput [--seed N] [--json PATH]
 */

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <new>
#include <sstream>
#include <string>

#include "sim/event_queue.hh"
#include "sim/reference_event_queue.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/table.hh"
#include "util/wall_timer.hh"

// ---------------------------------------------------------------------
// Allocation counting hook: every flavor of global new/delete this
// binary can reach. Counting is process-wide; measurements take deltas
// around single-threaded regions, so the relaxed atomic is only for
// formal correctness.
// ---------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_allocs{0};
} // namespace

void *
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void *
operator new(std::size_t n, std::align_val_t align)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    const std::size_t a = static_cast<std::size_t>(align);
    const std::size_t rounded = (std::max<std::size_t>(n, 1) + a - 1) /
                                a * a; // aligned_alloc contract
    if (void *p = std::aligned_alloc(a, rounded))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n, std::align_val_t align)
{
    return ::operator new(n, align);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace accel::bench {
namespace {

std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

// ------------------------------------------------------------------
// Steady workload: kChains independent self-rescheduling chains.
// ------------------------------------------------------------------

constexpr unsigned kChains = 256;
constexpr std::uint64_t kSteadyPerChain = 1500; // events per chain/round

struct SteadyShared
{
    std::uint64_t checksum = 0;
    std::uint64_t fired = 0;
};

template <typename Queue> struct ChainTask
{
    Queue *q;
    std::shared_ptr<SteadyShared> shared;
    std::uint32_t id;
    std::uint64_t stride;
    std::uint64_t remaining;
    char payload[24]; // pad the capture to a realistic callback size

    void
    operator()()
    {
        shared->checksum =
            mix(shared->checksum ^ (q->now() * 0x9e3779b97f4a7c15ULL) ^
                id ^ static_cast<unsigned char>(payload[0]));
        ++shared->fired;
        if (--remaining > 0) {
            ChainTask next(*this);
            q->scheduleIn(stride, std::move(next));
        }
    }
};

struct RoundResult
{
    std::uint64_t events = 0;
    std::uint64_t allocs = 0;
    std::uint64_t checksum = 0;
    double seconds = 0;
};

template <typename Queue>
RoundResult
runSteadyRound(Queue &q, std::uint64_t seed)
{
    auto shared = std::make_shared<SteadyShared>();
    Rng rng(seed, /*stream=*/7);
    const std::uint64_t processedBefore = q.processed();
    const std::uint64_t allocsBefore =
        g_allocs.load(std::memory_order_relaxed);
    const double start = steadyWallTimer().seconds();
    for (std::uint32_t c = 0; c < kChains; ++c) {
        ChainTask<Queue> task{&q,
                              shared,
                              c,
                              /*stride=*/1 + rng.next() % 900,
                              kSteadyPerChain,
                              {}};
        task.payload[0] = static_cast<char>(c);
        q.scheduleIn(1 + c, std::move(task));
    }
    q.runAll();
    RoundResult out;
    out.seconds = steadyWallTimer().seconds() - start;
    out.events = q.processed() - processedBefore;
    out.allocs =
        g_allocs.load(std::memory_order_relaxed) - allocsBefore;
    out.checksum = shared->checksum;
    ensure(shared->fired == out.events,
           "simcore_throughput: steady chain accounting mismatch");
    return out;
}

// ------------------------------------------------------------------
// Hedging workload: kOpsChains chains of operations; each op arms a
// completion event plus three timers — a hedge, a retry, and a
// watchdog, the pattern a hedged offload with degraded-mode retry
// arms in the microsim — and the completion cancels whatever is still
// pending. Every 16th watchdog is scheduled past the wheel horizon to
// keep the overflow heap hot.
// ------------------------------------------------------------------

// Concurrency matters more than chain length here: with thousands of
// ops in flight (the hedged-offload regime the paper's services run
// at), the reference heap holds ~3 events per chain, so every push,
// pop, and compaction sweep pays O(log n) / O(n) over a multi-thousand
// element heap while the wheel stays O(1) per op.
constexpr unsigned kOpChains = 2048;
constexpr std::uint64_t kOpsPerChain = 120; // ops per chain/round

struct HedgeShared
{
    std::uint64_t checksum = 0;
    std::uint64_t completions = 0;
    Rng rng{0, 0};
};

template <typename Queue>
void issueOp(Queue &q, HedgeShared *shared, std::uint32_t chain,
             std::uint64_t opsRemaining);

// HedgeShared outlives the drained queue (it sits on the round's
// stack), so callbacks hold a raw pointer: refcount traffic on every
// capture copy would be identical overhead for both queues and only
// dilute what the bench is trying to compare.
template <typename Queue> struct Completion
{
    Queue *q;
    HedgeShared *shared;
    std::uint32_t chain;
    // Per-chain countdown: chains complete concurrently, so a shared
    // counter would be decremented past zero by in-flight completions.
    std::uint64_t opsRemaining;
    sim::TimerId hedge;
    sim::TimerId retry;
    sim::TimerId watchdog;

    void
    operator()()
    {
        shared->checksum =
            mix(shared->checksum ^ (q->now() * 0x2545f4914f6cdd1dULL) ^
                chain);
        ++shared->completions;
        q->cancelTimer(hedge);
        q->cancelTimer(retry);
        q->cancelTimer(watchdog);
        if (opsRemaining > 0)
            issueOp(*q, shared, chain, opsRemaining - 1);
    }
};

template <typename Queue> struct HedgeFire
{
    Queue *q;
    HedgeShared *shared;
    std::uint32_t chain;

    void
    operator()()
    {
        // A hedge that beats its completion: record it (parity across
        // queues proves both saw the identical race outcome).
        shared->checksum = mix(shared->checksum ^ q->now() ^
                               (std::uint64_t{chain} << 32));
    }
};

template <typename Queue>
void
issueOp(Queue &q, HedgeShared *shared, std::uint32_t chain,
        std::uint64_t opsRemaining)
{
    const std::uint64_t service = 200 + shared->rng.next() % 4600;
    const bool farWatchdog = (shared->rng.next() & 15u) == 0;
    const std::uint64_t watchdogDelay =
        farWatchdog ? sim::EventQueue::kWheelHorizon + 50000 : 20000;
    sim::TimerId hedge = q.scheduleTimerIn(
        3000, HedgeFire<Queue>{&q, shared, chain});
    // The retry always loses to the completion (service < 8000), so
    // it is pure arm-then-cancel traffic, like a degraded-mode retry
    // behind a service that is still healthy.
    sim::TimerId retry = q.scheduleTimerIn(
        8000, HedgeFire<Queue>{&q, shared, chain | 0x40000000u});
    sim::TimerId watchdog = q.scheduleTimerIn(
        watchdogDelay, HedgeFire<Queue>{&q, shared, chain | 0x80000000u});
    q.scheduleIn(service, Completion<Queue>{&q, shared, chain,
                                            opsRemaining, hedge, retry,
                                            watchdog});
}

template <typename Queue>
RoundResult
runHedgingRound(Queue &q, std::uint64_t seed)
{
    // Outlives the drained queue; callbacks capture the raw address.
    HedgeShared shared;
    shared.rng = Rng(seed, /*stream=*/11);
    const std::uint64_t processedBefore = q.processed();
    const std::uint64_t allocsBefore =
        g_allocs.load(std::memory_order_relaxed);
    const double start = steadyWallTimer().seconds();
    for (std::uint32_t c = 0; c < kOpChains; ++c)
        issueOp(q, &shared, c, kOpsPerChain - 1);
    q.runAll();
    RoundResult out;
    out.seconds = steadyWallTimer().seconds() - start;
    out.events = q.processed() - processedBefore;
    out.allocs =
        g_allocs.load(std::memory_order_relaxed) - allocsBefore;
    out.checksum = shared.checksum;
    ensure(shared.completions ==
               std::uint64_t{kOpChains} * kOpsPerChain,
           "simcore_throughput: hedging op accounting mismatch");
    return out;
}

// ------------------------------------------------------------------
// Harness
// ------------------------------------------------------------------

struct WorkloadReport
{
    RoundResult fresh;    // new queue, measured round
    RoundResult baseline; // reference queue, measured round
    bool parity = false;

    double
    speedup() const
    {
        const double freshEps =
            static_cast<double>(fresh.events) / fresh.seconds;
        const double baseEps =
            static_cast<double>(baseline.events) / baseline.seconds;
        return freshEps / baseEps;
    }

    double
    allocsPerEvent() const
    {
        return static_cast<double>(fresh.allocs) /
               static_cast<double>(fresh.events);
    }

    double
    baselineAllocsPerEvent() const
    {
        return static_cast<double>(baseline.allocs) /
               static_cast<double>(baseline.events);
    }
};

/**
 * Run warmup + measured rounds of @p round on a fresh instance of each
 * queue type. The measured round reuses the warmed queue instance so
 * pool chunks, wheel slots, and heap capacity reflect steady state.
 * Timing takes the best of kTimedRounds to shed scheduler noise.
 */
template <typename RoundFn>
WorkloadReport
runWorkload(RoundFn round, std::uint64_t seed)
{
    constexpr int kTimedRounds = 3;
    WorkloadReport report;

    sim::EventQueue fresh;
    sim::ReferenceEventQueue baseline;
    RoundResult freshWarm = round(fresh, seed);
    RoundResult baseWarm = round(baseline, seed);
    ensure(freshWarm.checksum == baseWarm.checksum,
           "simcore_throughput: warmup checksum divergence");

    report.fresh = round(fresh, seed + 1);
    report.baseline = round(baseline, seed + 1);
    report.parity =
        report.fresh.checksum == report.baseline.checksum &&
        report.fresh.events == report.baseline.events;
    // Additional rounds shed scheduler noise (best time) and report
    // true steady-state allocation behavior (fewest allocs).
    for (int r = 1; r < kTimedRounds; ++r) {
        RoundResult f = round(fresh, seed + 1 + r);
        RoundResult b = round(baseline, seed + 1 + r);
        report.parity = report.parity && f.checksum == b.checksum &&
                        f.events == b.events;
        report.fresh.seconds = std::min(report.fresh.seconds, f.seconds);
        report.fresh.allocs = std::min(report.fresh.allocs, f.allocs);
        report.baseline.seconds =
            std::min(report.baseline.seconds, b.seconds);
        report.baseline.allocs =
            std::min(report.baseline.allocs, b.allocs);
    }
    return report;
}

void
printWorkload(const char *name, const WorkloadReport &w)
{
    TextTable table({"queue", "events", "seconds", "events/sec",
                     "allocs/event"});
    for (size_t c = 1; c < 5; ++c)
        table.setAlign(c, Align::Right);
    auto row = [&](const char *queue, const RoundResult &r,
                   double allocsPerEvent) {
        std::ostringstream eps;
        eps.precision(3);
        eps << std::fixed
            << static_cast<double>(r.events) / r.seconds / 1e6 << "M";
        std::ostringstream sec;
        sec.precision(4);
        sec << std::fixed << r.seconds;
        std::ostringstream ape;
        ape.precision(3);
        ape << std::fixed << allocsPerEvent;
        table.addRow({queue, std::to_string(r.events), sec.str(),
                      eps.str(), ape.str()});
    };
    std::cout << "--- " << name << " ---\n";
    row("wheel+inline", w.fresh, w.allocsPerEvent());
    row("reference", w.baseline, w.baselineAllocsPerEvent());
    std::cout << table.str();
    std::cout.precision(2);
    std::cout << "speedup: " << std::fixed << w.speedup()
              << "x   parity: " << (w.parity ? "ok" : "DIVERGED")
              << "\n\n";
}

} // namespace
} // namespace accel::bench

int
main(int argc, char **argv)
{
    using namespace accel;
    using namespace accel::bench;

    std::uint64_t seed = 2020;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--seed" && i + 1 < argc) {
            seed = static_cast<std::uint64_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            fatal("simcore_throughput: unknown argument '" + arg +
                  "' (usage: [--seed N] [--json PATH])");
        }
    }

    std::cout << "\n=== simcore_throughput (seed " << seed
              << ") ===\n\n";

    WorkloadReport steady = runWorkload(
        [](auto &q, std::uint64_t s) { return runSteadyRound(q, s); },
        seed);
    printWorkload("steady (self-rescheduling chains)", steady);

    WorkloadReport hedging = runWorkload(
        [](auto &q, std::uint64_t s) { return runHedgingRound(q, s); },
        seed);
    printWorkload("hedging (timers armed and cancelled)", hedging);

    constexpr double kMinHedgingSpeedup = 2.0;
    constexpr double kMaxSteadyAllocsPerEvent = 1.0;
    struct Gate
    {
        const char *name;
        bool pass;
    };
    const Gate gates[] = {
        {"hedging speedup >= 2x",
         hedging.speedup() >= kMinHedgingSpeedup},
        {"steady allocs/event <= 1",
         steady.allocsPerEvent() <= kMaxSteadyAllocsPerEvent},
        {"steady parity", steady.parity},
        {"hedging parity", hedging.parity},
    };
    bool ok = true;
    std::cout << "gates:\n";
    for (const Gate &g : gates) {
        std::cout << "  [" << (g.pass ? "PASS" : "FAIL") << "] "
                  << g.name << "\n";
        ok = ok && g.pass;
    }
    std::cout << (ok ? "\nALL GATES PASS\n" : "\nGATE FAILURE\n");

    if (!json_path.empty()) {
        std::ostringstream json;
        auto workload = [&](const char *name, const WorkloadReport &w) {
            json << "  \"" << name << "\": {\n"
                 << "    \"events\": " << w.fresh.events << ",\n"
                 << "    \"new_events_per_sec\": "
                 << static_cast<double>(w.fresh.events) /
                        w.fresh.seconds
                 << ",\n"
                 << "    \"ref_events_per_sec\": "
                 << static_cast<double>(w.baseline.events) /
                        w.baseline.seconds
                 << ",\n"
                 << "    \"speedup\": " << w.speedup() << ",\n"
                 << "    \"new_allocs_per_event\": "
                 << w.allocsPerEvent() << ",\n"
                 << "    \"ref_allocs_per_event\": "
                 << w.baselineAllocsPerEvent() << ",\n"
                 << "    \"parity\": "
                 << (w.parity ? "true" : "false") << "\n"
                 << "  }";
        };
        json << "{\n  \"seed\": " << seed << ",\n";
        workload("steady", steady);
        json << ",\n";
        workload("hedging", hedging);
        json << ",\n  \"pass\": " << (ok ? "true" : "false") << "\n}\n";
        std::ofstream out(json_path);
        require(static_cast<bool>(out),
                "simcore_throughput: cannot write '" + json_path + "'");
        out << json.str();
        std::cout << "json written to " << json_path << "\n";
    }

    return ok ? 0 : 1;
}

/**
 * @file
 * Extension bench: latency-vs-load curves with and without
 * acceleration, open-loop Poisson arrivals. The analytical model exists
 * to answer "does acceleration let us serve more QPS without violating
 * the latency SLO?" — this bench shows the answer as the paper's
 * operators would see it: p50/p99 latency at rising offered load, with
 * the SLO crossing point shifting right under acceleration.
 */

#include "bench_common.hh"
#include "microsim/service_spec.hh"
#include "microsim/service_sim.hh"

using namespace accel;
using model::ThreadingDesign;

namespace {

microsim::WorkloadSpec
workload()
{
    microsim::WorkloadSpec w;
    w.nonKernelCyclesMean = 4000;
    w.nonKernelCv = 0.3;
    w.kernelsPerRequest = 1;
    w.granularity = std::make_shared<const BucketDist>(
        std::vector<DistBucket>{{400, 600, 1.0}});
    w.cyclesPerByte = 2.0; // ~5000 cycles/request unaccelerated
    return w;
}

microsim::ServiceMetrics
run(double load, bool accelerated)
{
    microsim::ServiceConfig cfg;
    cfg.cores = 1;
    cfg.threads = 1;
    cfg.design = ThreadingDesign::Sync;
    cfg.clockGHz = 1.0;
    cfg.accelerated = accelerated;
    cfg.offloadSetupCycles = 20;
    cfg.openArrivalsPerSec = load;
    microsim::AcceleratorConfig dev;
    dev.speedupFactor = 5;
    dev.fixedLatencyCycles = 50;
    microsim::ServiceSim sim(microsim::ServiceSpec("slo-curves")
                                 .service(cfg)
                                 .accelerator(dev)
                                 .workload(workload())
                                 .seed(2020));
    return sim.run(0.2, 0.05);
}

} // namespace

int
main()
{
    bench::banner("SLO curves: latency vs offered load, with and "
                  "without acceleration (extension)");

    const double kSloCycles = 25000; // p99 SLO: 25 us at 1 GHz

    TextTable table({"offered QPS", "baseline p50", "baseline p99",
                     "accel p50", "accel p99", "SLO (p99<25k)"});
    for (size_t c = 1; c <= 4; ++c)
        table.setAlign(c, Align::Right);
    std::ostringstream csv_text;
    CsvWriter csv(csv_text, {"offered_qps", "base_p50", "base_p99",
                             "accel_p50", "accel_p99"});
    // Both arms of every load point are independent seeded runs; shard
    // them across the pool and print in input order.
    const std::vector<double> loads = {50e3,  120e3, 160e3,
                                       180e3, 200e3, 220e3};
    struct Arms
    {
        microsim::ServiceMetrics base;
        microsim::ServiceMetrics accel;
    };
    std::vector<Arms> results = bench::shardConfigs(
        loads, [](double load) {
            return Arms{run(load, false), run(load, true)};
        });
    for (size_t i = 0; i < loads.size(); ++i) {
        double load = loads[i];
        microsim::ServiceMetrics &base = results[i].base;
        microsim::ServiceMetrics &accel = results[i].accel;
        std::string verdict;
        bool base_ok = base.latencySample.p99() < kSloCycles &&
                       base.qps() > 0.95 * load;
        bool accel_ok = accel.latencySample.p99() < kSloCycles &&
                        accel.qps() > 0.95 * load;
        if (base_ok && accel_ok)
            verdict = "both hold";
        else if (accel_ok)
            verdict = "only accelerated holds";
        else
            verdict = "both violate";
        table.addRow({fmtF(load, 0), fmtF(base.latencySample.p50(), 0),
                      fmtF(base.latencySample.p99(), 0),
                      fmtF(accel.latencySample.p50(), 0),
                      fmtF(accel.latencySample.p99(), 0), verdict});
        csv.row({fmtF(load, 0), fmtF(base.latencySample.p50(), 0),
                 fmtF(base.latencySample.p99(), 0),
                 fmtF(accel.latencySample.p50(), 0),
                 fmtF(accel.latencySample.p99(), 0)});
    }
    std::cout << table.str() << "\ncsv:\n" << csv_text.str();
    std::cout << "\nReading: acceleration lowers per-request service "
                 "time, which pushes the hockey-stick of the latency "
                 "curve — and therefore the maximum SLO-compliant load "
                 "— to the right. This is the throughput-without-"
                 "violating-SLO property the model's dual speedup / "
                 "latency-reduction projections are designed to check.\n";
    return 0;
}

/**
 * @file
 * Table 4: summary of findings and suggested acceleration
 * opportunities, each backed by the quantity our characterization
 * substrate measures for it.
 */

#include "bench_common.hh"

using namespace accel;

int
main()
{
    bench::banner("Table 4: findings and acceleration opportunities");

    auto pct = [](workload::ServiceId id, workload::Functionality f) {
        return workload::profile(id).functionalityShare.at(f);
    };
    auto leaf = [](workload::ServiceId id, workload::LeafCategory l) {
        return workload::profile(id).leafShare.at(l);
    };
    using F = workload::Functionality;
    using L = workload::LeafCategory;
    using S = workload::ServiceId;

    TextTable table({"finding", "evidence here", "opportunity"});
    table.addRow({"Significant orchestration overheads",
                  "Web orchestration " +
                      fmtF(workload::profile(S::Web)
                               .orchestrationPercent(), 0) + "%",
                  "accelerate orchestration, not just app logic"});
    table.addRow({"Common orchestration overheads",
                  "compression in 7/7 services (Feed1 " +
                      fmtF(pct(S::Feed1, F::Compression), 0) + "%)",
                  "fleet-wide wins from common-block accel."});
    table.addRow({"Poor IPC scaling for several functions",
                  "kernel IPC GenC/GenA = " +
                      fmtF(workload::leafIpc(workload::CpuGen::GenC,
                                             L::Kernel) /
                               workload::leafIpc(workload::CpuGen::GenA,
                                                 L::Kernel), 2),
                  "specialize hardware for key leaves"});
    table.addRow({"Memory copies & allocations significant",
                  "Web memory leaves " + fmtF(leaf(S::Web, L::Memory), 0) +
                      "% of cycles",
                  "SIMD copies, IO AT, DMA engines, PIM"});
    table.addRow({"Memory frees are expensive",
                  "free is " +
                      fmtF(workload::profile(S::Feed1).memoryShare.at(
                               workload::MemoryLeaf::Free), 0) +
                      "% of Feed1 memory cycles",
                  "sized delete, page-removal hardware"});
    table.addRow({"High kernel overhead and low IPC",
                  "Cache2 kernel " + fmtF(leaf(S::Cache2, L::Kernel), 0) +
                      "% of cycles at IPC " +
                      fmtF(workload::leafIpc(workload::CpuGen::GenC,
                                             L::Kernel), 2),
                  "coalesce I/O, user-space drivers, bypass"});
    table.addRow({"Logging overheads can dominate",
                  "Web logging " + fmtF(pct(S::Web, F::Logging), 0) + "%",
                  "reduce log size / update count"});
    table.addRow({"High compression overhead",
                  "Feed1 ZSTD leaves " + fmtF(leaf(S::Feed1, L::Zstd), 0) +
                      "%",
                  "dedicated compression hardware"});
    table.addRow({"Cache synchronizes frequently",
                  "Cache1 sync leaves " +
                      fmtF(leaf(S::Cache1, L::Synchronization), 0) + "%",
                  "thread tuning, TSX, spin/block hybrids"});
    table.addRow({"High event notification overhead",
                  "Cache1 event handling " +
                      fmtF(workload::profile(S::Cache1).kernelShare.at(
                               workload::KernelLeaf::EventHandling), 0) +
                      "% of kernel cycles",
                  "RDMA-style notification hardware"});
    std::cout << table.str();
    return 0;
}

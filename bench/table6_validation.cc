/**
 * @file
 * Table 6: validation of the Accelerometer model against the three
 * retrospective case studies. For each study we print the published
 * parameters, run the A/B test on the simulated production system,
 * and compare the model estimate against the measured speedup and the
 * paper's published pair.
 */

#include "bench_common.hh"
#include "microsim/ab_test.hh"
#include "model/report.hh"
#include "workload/request_factory.hh"

using namespace accel;

int
main()
{
    bench::banner("Table 6: model validation via A/B case studies");

    TextTable table({"case study", "C (1e9)", "alpha", "n", "o0", "Q",
                     "L", "o1", "A", "est.", "sim real", "err (pp)",
                     "paper est.", "paper real"});
    for (size_t c = 1; c <= 13; ++c)
        table.setAlign(c, Align::Right);
    std::ostringstream csv_text;
    CsvWriter csv(csv_text, {"case", "estimated_speedup_pct",
                             "simulated_real_pct", "error_pp",
                             "paper_estimated_pct", "paper_real_pct"});

    for (const auto &cs : workload::allCaseStudies()) {
        const model::Params &p = cs.publishedParams;
        model::Accelerometer m(p);
        double est = m.speedup(cs.design) - 1.0;

        microsim::AbResult r = microsim::runAbTest(cs.experiment);
        double real = r.measuredSpeedup() - 1.0;
        double err_pp = (est - real) * 100.0;

        table.addRow({cs.name, fmtF(p.hostCycles / 1e9, 1),
                      fmtF(p.alpha, 6), fmtF(p.offloads, 0),
                      fmtF(p.setupCycles, 0), fmtF(p.queueCycles, 0),
                      fmtF(p.interfaceCycles, 0),
                      fmtF(p.threadSwitchCycles, 0),
                      fmtF(p.accelFactor, 0), fmtPct(est, 2),
                      fmtPct(real, 2), fmtF(err_pp, 2),
                      fmtPct(cs.paperEstimatedSpeedup, 2),
                      fmtPct(cs.paperRealSpeedup, 2)});
        csv.row({cs.name, fmtF(est * 100, 2), fmtF(real * 100, 2),
                 fmtF(err_pp, 2), fmtF(cs.paperEstimatedSpeedup * 100, 2),
                 fmtF(cs.paperRealSpeedup * 100, 2)});

        std::cout << cs.name << " [" << cs.acceleration << ", "
                  << toString(cs.design) << "]\n  "
                  << microsim::compareLine(cs.experiment, r) << "\n"
                  << "  simulated latency reduction: "
                  << fmtPct(r.measuredLatencyReduction() - 1.0, 2)
                  << " (the paper could not measure this in "
                     "production)\n\n";
    }
    std::cout << table.str() << "\ncsv:\n" << csv_text.str();
    std::cout << "\nPaper's headline: the model estimates the real "
                 "speedup with <= 3.7% error across all three "
                 "acceleration strategies.\n";
    return 0;
}

/**
 * @file
 * Table 7: the model parameters used for the Fig. 20 acceleration
 * recommendations, with n and offloaded fractions derived from the
 * granularity CDFs.
 */

#include "bench_common.hh"
#include "workload/request_factory.hh"

using namespace accel;

int
main()
{
    bench::banner("Table 7: parameters for acceleration recommendations");

    TextTable table({"overhead", "acceleration", "C (1e9)", "alpha", "n",
                     "L", "o1", "A", "offloaded fraction"});
    for (size_t c = 2; c <= 8; ++c)
        table.setAlign(c, Align::Right);
    std::ostringstream csv_text;
    CsvWriter csv(csv_text, {"overhead", "acceleration", "C", "alpha",
                             "n", "L", "o1", "A", "offloaded_fraction"});
    for (const auto &rec : workload::fig20Recommendations()) {
        const model::Params &p = rec.params;
        table.addRow({rec.overhead, rec.acceleration,
                      fmtF(p.hostCycles / 1e9, 1), fmtF(p.alpha, 4),
                      fmtF(p.offloads, 0), fmtF(p.interfaceCycles, 0),
                      fmtF(p.threadSwitchCycles, 0),
                      fmtF(p.accelFactor, 0),
                      fmtPct(p.offloadedFraction, 1)});
        csv.row({rec.overhead, rec.acceleration,
                 fmtF(p.hostCycles, 0), fmtF(p.alpha, 4),
                 fmtF(p.offloads, 0), fmtF(p.interfaceCycles, 0),
                 fmtF(p.threadSwitchCycles, 0), fmtF(p.accelFactor, 1),
                 fmtF(p.offloadedFraction, 4)});
    }
    std::cout << table.str() << "\ncsv:\n" << csv_text.str();
    std::cout << "\nPaper anchors: compression n = 15,008 / 9,629 / "
                 "3,986 / 9,769; copy n = 1,473,681; allocation "
                 "n = 51,695.\n";
    return 0;
}

/**
 * @file
 * The artifact workflow: read model parameters from a configuration
 * file and print the estimated speedup for each section.
 *
 * Usage: accelerometer_cli <config.ini>
 *        accelerometer_cli            (runs the bundled Table 6 config)
 */

#include <iostream>

#include "model/config_frontend.hh"
#include "model/report.hh"
#include "util/logging.hh"

namespace {

/** Bundled config reproducing the paper's Table 6 parameter sets. */
const char *kTable6Config = R"(
[aes-ni-cache1]
C = 2.0e9
alpha = 0.165844
n = 298951
o0 = 10
Q = 0
L = 3
A = 6
strategy = on-chip
threading = sync

[encryption-cache3]
C = 2.3e9
alpha = 0.19154
n = 101863
o0 = 0
Q = 0
L = 2530
A = 27
strategy = off-chip
threading = async-no-response

[inference-ads1]
C = 2.5e9
alpha = 0.52
n = 10
o0 = 25e6
o1 = 12500
A = 1
strategy = remote
threading = async-distinct-thread
)";

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc > 1) {
            std::cout << accel::model::runConfigFile(argv[1]);
            return 0;
        }
        std::cout << "(no config given; using the bundled Table 6 "
                     "parameters)\n\n";
        accel::Config cfg = accel::Config::fromString(kTable6Config);
        for (const auto &c : accel::model::casesFromConfig(cfg)) {
            std::cout << accel::model::projectionReport(c.params,
                                                        "== " + c.name +
                                                            " ==")
                      << accel::model::projectionLine(c.params, c.design)
                      << "\n\n";
        }
        return 0;
    } catch (const accel::FatalError &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}

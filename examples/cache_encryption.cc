/**
 * @file
 * Case study walkthrough: accelerating Cache1's encryption with an
 * on-chip AES instruction, end to end.
 *
 *  1. Calibrate the software AES kernel's cycles/byte with a real
 *     micro-benchmark (the unaccelerated host cost).
 *  2. Take Cache1's encryption-granularity CDF and invocation rate from
 *     the workload characterization.
 *  3. Ask the model which granularities are worth offloading and what
 *     speedup to expect.
 *  4. Run the A/B experiment on the simulated production system and
 *     compare.
 */

#include <iostream>

#include "kernels/calibration.hh"
#include "microsim/ab_test.hh"
#include "model/granularity.hh"
#include "model/report.hh"
#include "util/table.hh"
#include "workload/granularities.hh"
#include "workload/request_factory.hh"

int
main()
{
    using namespace accel;
    using model::ThreadingDesign;

    std::cout << "== Step 1: calibrate software AES ==\n";
    kernels::Calibration aes = kernels::calibrateAesCtr(2.0);
    std::cout << "software AES-CTR: " << fmtF(aes.cyclesPerByte, 1)
              << " cycles/B, fixed " << fmtF(aes.fixedCycles, 0)
              << " cycles/call (r^2 = " << fmtF(aes.rSquared, 3)
              << ")\n\n";

    std::cout << "== Step 2: Cache1's encryption workload ==\n";
    auto sizes = workload::encryptionSizes(workload::ServiceId::Cache1);
    workload::KernelRates rates =
        workload::kernelRates(workload::ServiceId::Cache1);
    std::cout << "encryptions/s: " << fmtF(rates.encryptionsPerSec, 0)
              << ", mean granularity " << fmtF(sizes->mean(), 0)
              << " B, P(g >= 512 B) = "
              << fmtPct(sizes->fractionAtLeast(512), 1) << "\n\n";

    std::cout << "== Step 3: model projection (Table 6 parameters) ==\n";
    workload::CaseStudy cs = workload::aesNiCaseStudy();
    std::cout << model::projectionReport(cs.publishedParams,
                                         "AES-NI for Cache1");
    model::OffloadProfit profit{cs.experiment.workload.cyclesPerByte,
                                1.0};
    double g_star = profit.breakEvenSpeedup(ThreadingDesign::Sync,
                                            cs.publishedParams);
    std::cout << "break-even granularity: " << fmtF(g_star, 1)
              << " B -> " << fmtPct(sizes->fractionAtLeast(g_star), 1)
              << " of encryptions profit\n\n";

    std::cout << "== Step 4: A/B test on the simulated system ==\n";
    microsim::AbResult r = microsim::runAbTest(cs.experiment);
    std::cout << microsim::compareLine(cs.experiment, r) << "\n";
    std::cout << "baseline " << fmtF(r.baseline.qps(), 0)
              << " QPS -> accelerated " << fmtF(r.treatment.qps(), 0)
              << " QPS (paper: est +15.7%, real +14%)\n";
    return 0;
}

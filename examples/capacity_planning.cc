/**
 * @file
 * Fleet-operator use case, in three acts: (1) given a service's
 * measured overheads, sweep candidate accelerators and pick the
 * strategy that holds its speedup at the expected offload rate;
 * (2) check the winner survives peak load once queueing is priced in;
 * (3) stop planning for peak at all — run the replicated tier through
 * a simulated day of traffic with an SLO-driven autoscaler and compare
 * its replica-cycle bill against static peak provisioning.
 */

#include <iostream>
#include <memory>
#include <vector>

#include "microsim/arrival_program.hh"
#include "microsim/service_spec.hh"
#include "microsim/service_sim.hh"
#include "microsim/tier.hh"
#include "model/queueing.hh"
#include "model/report.hh"
#include "model/sweep.hh"
#include "util/table.hh"

int
main()
{
    using namespace accel;
    using namespace accel::model;

    // A caching tier spending 15% of cycles compressing at 40k ops/s.
    Params base;
    base.hostCycles = 2.3e9;
    base.alpha = 0.15;
    base.offloads = 40000;
    base.threadSwitchCycles = 5000;

    std::cout << "== Strategy comparison at nominal load ==\n";
    struct Candidate
    {
        const char *name;
        double factor, latency, o0;
        Strategy strategy;
        ThreadingDesign design;
    };
    const Candidate candidates[] = {
        {"on-chip ISA extension (A=4)", 4, 0, 0, Strategy::OnChip,
         ThreadingDesign::Sync},
        {"PCIe ASIC, sync driver (A=30)", 30, 2300, 200,
         Strategy::OffChip, ThreadingDesign::Sync},
        {"PCIe ASIC, async driver (A=30)", 30, 2300, 200,
         Strategy::OffChip, ThreadingDesign::AsyncSameThread},
        {"PCIe ASIC, oversubscribed (A=30)", 30, 2300, 200,
         Strategy::OffChip, ThreadingDesign::SyncOS},
        {"remote appliance (A=50)", 50, 0, 600000, Strategy::Remote,
         ThreadingDesign::AsyncDistinctThread},
    };
    TextTable table({"candidate", "speedup", "latency reduction"});
    table.setAlign(1, Align::Right);
    table.setAlign(2, Align::Right);
    for (const Candidate &c : candidates) {
        Params p = base;
        p.accelFactor = c.factor;
        p.interfaceCycles = c.latency;
        p.setupCycles = c.o0;
        p.strategy = c.strategy;
        Accelerometer m(p);
        Projection proj = m.project(c.design);
        table.addRow({c.name, fmtPct(proj.speedup - 1.0, 1),
                      fmtPct(proj.latencyReduction - 1.0, 1)});
    }
    std::cout << table.str() << "\n";

    std::cout << "== Does the async PCIe ASIC survive peak load? ==\n";
    // One shared device: queueing eats the win as utilization grows.
    Params p = base;
    p.accelFactor = 30;
    p.interfaceCycles = 2300;
    p.setupCycles = 200;
    double service_cycles = base.alpha * base.hostCycles /
        base.offloads / 30.0;
    TextTable load_table({"offloads/s", "utilization", "mean Q (cycles)",
                          "speedup"});
    for (size_t c = 1; c <= 3; ++c)
        load_table.setAlign(c, Align::Right);
    for (double load : {40e3, 400e3, 1.2e6, 2.0e6}) {
        double rho = utilization(service_cycles, load, 2.3e9);
        if (rho >= 1.0) {
            load_table.addRow({fmtF(load, 0), fmtF(rho, 2), "unstable",
                               "-"});
            continue;
        }
        Params q = p;
        q.offloads = load;
        q.queueCycles = mm1WaitCycles(service_cycles, load, 2.3e9);
        Accelerometer m(q);
        load_table.addRow(
            {fmtF(load, 0), fmtF(rho, 2), fmtF(q.queueCycles, 0),
             fmtPct(m.speedup(ThreadingDesign::AsyncSameThread) - 1.0,
                    1)});
    }
    std::cout << load_table.str();
    std::cout << "\nCapacity-planning takeaway: provision the device so "
                 "utilization stays modest, or the queuing term Q erases "
                 "the projected win.\n";

    std::cout << "\n== Planning for a day, not a peak ==\n";
    // Traffic is diurnal, so static provisioning pays for the peak all
    // day. Simulate a day-shaped trace (compressed to 50 ms steps)
    // against (a) a tier sized for peak with model::minServersForWait
    // and (b) the same tier under an SLO-driven autoscaler that grows
    // and shrinks live replicas, with a brown-out admission gate
    // covering its reaction window.
    microsim::ArrivalProgram day = microsim::ArrivalProgram::dayTrace(
        50000, {0.4, 0.7, 1.2, 2.0, 2.8, 2.0, 1.0, 0.5}, 0.05);
    const double kClockHz = 1e9;
    const double kServiceCycles = 20200; // ~1000-byte kernel, A = 10
    unsigned peak_k = model::minServersForWait(
        kServiceCycles, day.peakRate(), kClockHz,
        /*waitBudgetCycles=*/20000);
    std::cout << "peak " << fmtF(day.peakRate(), 0) << "/s needs "
              << peak_k << " replicas (M/M/k, 20k-cycle Q budget); "
              << "mean load is only " << fmtF(day.meanRate(0.4), 0)
              << "/s\n";

    microsim::WorkloadSpec work;
    work.nonKernelCyclesMean = 1000;
    work.nonKernelCv = 0.3;
    work.kernelsPerRequest = 1;
    work.granularity = std::make_shared<const BucketDist>(
        std::vector<DistBucket>{{900, 1100, 1.0}});
    work.cyclesPerByte = 200.0;
    microsim::AcceleratorConfig dev;
    dev.speedupFactor = 10;
    dev.fixedLatencyCycles = 100;
    dev.latencyCyclesPerByte = 0.1;
    microsim::TierConfig tier;
    tier.replicas = peak_k;
    tier.policy = microsim::DispatchPolicy::LeastOutstanding;

    auto runDay = [&](bool autoscaled) {
        microsim::ServiceConfig svc;
        svc.cores = 24;
        svc.threads = 24;
        svc.design = ThreadingDesign::Sync;
        svc.clockGHz = 1.0;
        svc.offloadSetupCycles = 20;
        svc.arrivalProgram = day;
        svc.maxArrivalQueue = 256;
        if (autoscaled) {
            svc.autoscaler.enabled = true;
            svc.autoscaler.intervalCycles = 5e5;
            svc.autoscaler.sloLatencyCycles = 400000;
            svc.autoscaler.scaleUpPressure = 0.5;
            svc.autoscaler.scaleDownPressure = 0.12;
            svc.autoscaler.downWindows = 10;
            svc.autoscaler.cooldownCycles = 1.5e6;
            svc.autoscaler.maxReplicas = peak_k;
            svc.autoscaler.brownout = true;
            svc.autoscaler.brownoutFloor = 32;
        }
        microsim::ServiceSim sim(microsim::ServiceSpec("capacity-day")
                                     .service(svc)
                                     .accelerator(dev)
                                     .tier(tier)
                                     .workload(work)
                                     .seed(2020));
        return sim.run(/*measureSeconds=*/0.4, /*warmupSeconds=*/0.05);
    };
    microsim::ServiceMetrics fixed = runDay(false);
    microsim::ServiceMetrics scaled = runDay(true);

    TextTable day_table({"arm", "p99 cycles", "QPS", "shed %",
                         "replica-cycles", "ups/downs"});
    for (size_t c = 1; c <= 5; ++c)
        day_table.setAlign(c, Align::Right);
    auto dayRow = [&](const char *name,
                      const microsim::ServiceMetrics &m) {
        double shed = m.requestsArrived == 0
            ? 0.0
            : static_cast<double>(m.requestsShed) / m.requestsArrived;
        day_table.addRow(
            {name, fmtF(m.latencySample.p99(), 0), fmtF(m.qps(), 0),
             fmtPct(shed, 2), fmtF(m.tier.provisionedReplicaCycles, 0),
             std::to_string(m.autoscaler.scaleUps) + "/" +
                 std::to_string(m.autoscaler.scaleDowns)});
    };
    dayRow("static peak", fixed);
    dayRow("autoscaled", scaled);
    std::cout << day_table.str();
    std::cout << "\nAutoscaling takeaway: the controller bills "
              << fmtPct(scaled.tier.provisionedReplicaCycles /
                                fixed.tier.provisionedReplicaCycles -
                            1.0,
                        1)
              << " replica-cycles vs static peak while both hold p99; "
                 "bench/autoscale_slo enforces this with exit-code "
                 "gates.\n";
    return 0;
}

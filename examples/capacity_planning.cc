/**
 * @file
 * Fleet-operator use case: given a service's measured overheads, sweep
 * candidate accelerators (speedup factor x interface latency x load)
 * and pick the strategy that holds its speedup at the expected offload
 * rate without violating the latency SLO.
 */

#include <iostream>

#include "model/queueing.hh"
#include "model/report.hh"
#include "model/sweep.hh"
#include "util/table.hh"

int
main()
{
    using namespace accel;
    using namespace accel::model;

    // A caching tier spending 15% of cycles compressing at 40k ops/s.
    Params base;
    base.hostCycles = 2.3e9;
    base.alpha = 0.15;
    base.offloads = 40000;
    base.threadSwitchCycles = 5000;

    std::cout << "== Strategy comparison at nominal load ==\n";
    struct Candidate
    {
        const char *name;
        double factor, latency, o0;
        Strategy strategy;
        ThreadingDesign design;
    };
    const Candidate candidates[] = {
        {"on-chip ISA extension (A=4)", 4, 0, 0, Strategy::OnChip,
         ThreadingDesign::Sync},
        {"PCIe ASIC, sync driver (A=30)", 30, 2300, 200,
         Strategy::OffChip, ThreadingDesign::Sync},
        {"PCIe ASIC, async driver (A=30)", 30, 2300, 200,
         Strategy::OffChip, ThreadingDesign::AsyncSameThread},
        {"PCIe ASIC, oversubscribed (A=30)", 30, 2300, 200,
         Strategy::OffChip, ThreadingDesign::SyncOS},
        {"remote appliance (A=50)", 50, 0, 600000, Strategy::Remote,
         ThreadingDesign::AsyncDistinctThread},
    };
    TextTable table({"candidate", "speedup", "latency reduction"});
    table.setAlign(1, Align::Right);
    table.setAlign(2, Align::Right);
    for (const Candidate &c : candidates) {
        Params p = base;
        p.accelFactor = c.factor;
        p.interfaceCycles = c.latency;
        p.setupCycles = c.o0;
        p.strategy = c.strategy;
        Accelerometer m(p);
        Projection proj = m.project(c.design);
        table.addRow({c.name, fmtPct(proj.speedup - 1.0, 1),
                      fmtPct(proj.latencyReduction - 1.0, 1)});
    }
    std::cout << table.str() << "\n";

    std::cout << "== Does the async PCIe ASIC survive peak load? ==\n";
    // One shared device: queueing eats the win as utilization grows.
    Params p = base;
    p.accelFactor = 30;
    p.interfaceCycles = 2300;
    p.setupCycles = 200;
    double service_cycles = base.alpha * base.hostCycles /
        base.offloads / 30.0;
    TextTable load_table({"offloads/s", "utilization", "mean Q (cycles)",
                          "speedup"});
    for (size_t c = 1; c <= 3; ++c)
        load_table.setAlign(c, Align::Right);
    for (double load : {40e3, 400e3, 1.2e6, 2.0e6}) {
        double rho = utilization(service_cycles, load, 2.3e9);
        if (rho >= 1.0) {
            load_table.addRow({fmtF(load, 0), fmtF(rho, 2), "unstable",
                               "-"});
            continue;
        }
        Params q = p;
        q.offloads = load;
        q.queueCycles = mm1WaitCycles(service_cycles, load, 2.3e9);
        Accelerometer m(q);
        load_table.addRow(
            {fmtF(load, 0), fmtF(rho, 2), fmtF(q.queueCycles, 0),
             fmtPct(m.speedup(ThreadingDesign::AsyncSameThread) - 1.0,
                    1)});
    }
    std::cout << load_table.str();
    std::cout << "\nCapacity-planning takeaway: provision the device so "
                 "utilization stays modest, or the queuing term Q erases "
                 "the projected win.\n";
    return 0;
}

/**
 * @file
 * Architect use case: explore break-even granularities. For each
 * interface latency and threading design, print the smallest offload
 * worth making, then compare against LogCA's g1 marker for the same
 * kernel.
 */

#include <iostream>

#include "model/accelerometer.hh"
#include "model/logca.hh"
#include "model/sensitivity.hh"
#include "util/table.hh"

int
main()
{
    using namespace accel;
    using namespace accel::model;

    // A compression-like kernel: 6 cycles/B on the host, 24x on the
    // device.
    const double cb = 6.0;
    const double accel_factor = 24.0;

    std::cout << "== Break-even granularity vs interface latency ==\n";
    TextTable table({"interface L (cycles)", "Sync", "Sync-OS",
                     "Async same-thread"});
    for (size_t c = 1; c <= 3; ++c)
        table.setAlign(c, Align::Right);
    for (double latency : {0.0, 100.0, 1000.0, 2300.0, 10000.0}) {
        Params p;
        p.hostCycles = 2e9;
        p.alpha = 0.15;
        p.interfaceCycles = latency;
        p.setupCycles = 50;
        p.threadSwitchCycles = 5000;
        p.accelFactor = accel_factor;
        OffloadProfit profit{cb, 1.0};
        auto fmt = [&](ThreadingDesign d) {
            double g = profit.breakEvenSpeedup(d, p);
            return fmtF(g, 0) + " B";
        };
        table.addRow({fmtF(latency, 0), fmt(ThreadingDesign::Sync),
                      fmt(ThreadingDesign::SyncOS),
                      fmt(ThreadingDesign::AsyncSameThread)});
    }
    std::cout << table.str() << "\n";

    std::cout << "== LogCA view of the same kernel (L = 2300) ==\n";
    LogCA logca({/*latencyPerByte=*/2300.0 / 1024, /*overheadCycles=*/50,
                 cb, accel_factor, 1.0});
    std::cout << "g1 (break-even):      " << fmtF(logca.g1(), 0)
              << " B\n"
              << "g_{A/2}:              " << fmtF(logca.gHalf(), 0)
              << " B\n"
              << "peak kernel speedup:  " << fmtF(logca.peakSpeedup(), 1)
              << "x (vs device A = " << fmtF(accel_factor, 0) << ")\n";
    std::cout << "\n== Which parameter should the architect fight for? ==\n";
    {
        Params p;
        p.hostCycles = 2e9;
        p.alpha = 0.15;
        p.offloads = 40000;
        p.interfaceCycles = 2300;
        p.setupCycles = 50;
        p.threadSwitchCycles = 5000;
        p.accelFactor = accel_factor;
        std::cout << sensitivityReport(p, ThreadingDesign::SyncOS)
                  << "\n";
    }

    std::cout << "\nAccelerometer's extension: the break-even point "
                 "depends on the threading design — async offload "
                 "tolerates much smaller granularities than LogCA's "
                 "synchronous assumption, while oversubscription's "
                 "2*o1 pushes it far out.\n";
    return 0;
}

/**
 * @file
 * Profiling-pipeline walkthrough: pick a service, sample Strobelight-
 * style call traces, and inspect it three ways — functionality
 * breakdown, leaf breakdown, and folded stacks ready for flamegraph.pl.
 *
 * Usage: profile_explorer [service] (default Cache1; one of Web, Feed1,
 *        Feed2, Ads1, Ads2, Cache1, Cache2)
 */

#include <iostream>

#include "profiling/breakdown_report.hh"
#include "profiling/folded_stacks.hh"
#include "profiling/sampler.hh"
#include "util/logging.hh"

int
main(int argc, char **argv)
{
    using namespace accel;
    workload::ServiceId id = workload::ServiceId::Cache1;
    if (argc > 1) {
        std::string want = argv[1];
        bool found = false;
        for (workload::ServiceId candidate :
             workload::characterizedServices()) {
            if (workload::toString(candidate) == want) {
                id = candidate;
                found = true;
            }
        }
        if (!found) {
            std::cerr << "unknown service '" << want << "'\n";
            return 1;
        }
    }
    const auto &profile = workload::profile(id);
    std::cout << "Profiling " << profile.name << ": "
              << profile.description << "\n\n";

    profiling::TraceSampler sampler(profile, workload::CpuGen::GenC,
                                    2020);
    auto traces = sampler.sampleMany(150000);
    profiling::Aggregator agg;
    agg.addAll(traces);

    std::cout << profiling::shareBlock("functionality breakdown",
                                       agg.functionalityBreakdown())
              << "\n"
              << profiling::shareBlock("leaf breakdown",
                                       agg.leafBreakdown())
              << "\n";

    std::cout << "top folded stacks (flamegraph.pl input; pipe the full "
                 "set into it for a flame graph):\n"
              << profiling::foldedStacksText(traces, 12);
    return 0;
}

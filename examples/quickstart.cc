/**
 * @file
 * Quickstart: build model parameters by hand, project speedup and
 * latency reduction for every threading design, and inspect the ideal
 * bound. Start here.
 */

#include <iostream>

#include "model/report.hh"

int
main()
{
    using namespace accel::model;

    // Suppose a service spends 20% of its cycles compressing RPC
    // payloads (alpha), performing 50k compressions per second on a
    // host that retires 2e9 busy cycles per second. A PCIe compression
    // ASIC is 25x faster than the host at this kernel, costs 300 cycles
    // of setup per offload, and 1800 cycles of transfer latency.
    Params params;
    params.hostCycles = 2e9;
    params.alpha = 0.20;
    params.offloads = 50000;
    params.setupCycles = 300;
    params.interfaceCycles = 1800;
    params.threadSwitchCycles = 4000; // if a design switches threads
    params.accelFactor = 25;
    params.strategy = Strategy::OffChip;

    // One call per question you would ask at design time:
    Accelerometer model(params);
    std::cout << projectionReport(params,
                                  "Compression offload projection");

    std::cout << "\nWould a 64-byte compression be worth offloading "
                 "under Sync?\n";
    OffloadProfit profit{/*cyclesPerByte=*/6.0, /*beta=*/1.0};
    std::cout << "  break-even granularity: "
              << profit.breakEvenSpeedup(ThreadingDesign::Sync, params)
              << " bytes\n";
    std::cout << "  64 B profitable: "
              << (profit.improvesSpeedup(64, ThreadingDesign::Sync,
                                         params)
                      ? "yes" : "no")
              << "\n";
    return 0;
}

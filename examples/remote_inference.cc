/**
 * @file
 * Case study 3 walkthrough: offloading Ads1's ML inference to a remote
 * CPU (A = 1). Shows the paper's counter-intuitive result — a 1x
 * "accelerator" still speeds the host up 72% under asynchronous offload
 * — and the throughput/latency trade-off that comes with it.
 */

#include <iostream>

#include "microsim/ab_test.hh"
#include "model/report.hh"
#include "model/sweep.hh"
#include "util/table.hh"
#include "workload/request_factory.hh"

int
main()
{
    using namespace accel;
    using model::ThreadingDesign;

    workload::CaseStudy cs = workload::remoteInferenceCaseStudy();

    std::cout << "== Model projection ==\n";
    std::cout << model::projectionReport(cs.publishedParams,
                                         "Remote inference for Ads1");
    std::cout << "\nNote: A = 1 (the remote box is just another CPU); "
                 "the speedup comes entirely from freeing host cycles "
                 "via asynchronous offload.\n\n";

    std::cout << "== A/B test on the simulated system ==\n";
    microsim::AbResult r = microsim::runAbTest(cs.experiment);
    std::cout << microsim::compareLine(cs.experiment, r) << "\n";
    std::cout << "per-request latency: baseline "
              << fmtF(r.baseline.meanLatencyCycles() / 2.5e6, 2)
              << " ms -> remote "
              << fmtF(r.treatment.meanLatencyCycles() / 2.5e6, 2)
              << " ms (throughput up, per-request latency worse — "
                 "check your SLO)\n\n";

    std::cout << "== What if the remote box were a real accelerator? ==\n";
    TextTable table({"remote A", "projected host speedup"});
    table.setAlign(1, Align::Right);
    for (const auto &point : model::sweepAccelFactor(
             cs.publishedParams, ThreadingDesign::AsyncDistinctThread,
             {1, 2, 4, 8})) {
        table.addRow({fmtF(point.x, 0),
                      fmtPct(point.projection.speedup - 1.0, 1)});
    }
    std::cout << table.str();
    std::cout << "\nThroughput is already host-bound: a faster remote "
                 "accelerator would mostly cut the response latency, "
                 "not raise QPS (the paper's closing point in §4).\n";
    return 0;
}

/**
 * @file
 * Case study 3 walkthrough: offloading Ads1's ML inference to a remote
 * CPU (A = 1). Shows the paper's counter-intuitive result — a 1x
 * "accelerator" still speeds the host up 72% under asynchronous offload
 * — and the throughput/latency trade-off that comes with it.
 */

#include <iostream>
#include <memory>

#include "faults/fault_plan.hh"
#include "microsim/ab_test.hh"
#include "model/report.hh"
#include "model/sweep.hh"
#include "util/table.hh"
#include "workload/request_factory.hh"

int
main()
{
    using namespace accel;
    using model::ThreadingDesign;

    workload::CaseStudy cs = workload::remoteInferenceCaseStudy();

    std::cout << "== Model projection ==\n";
    std::cout << model::projectionReport(cs.publishedParams,
                                         "Remote inference for Ads1");
    std::cout << "\nNote: A = 1 (the remote box is just another CPU); "
                 "the speedup comes entirely from freeing host cycles "
                 "via asynchronous offload.\n\n";

    std::cout << "== A/B test on the simulated system ==\n";
    microsim::AbResult r = microsim::runAbTest(cs.experiment);
    std::cout << microsim::compareLine(cs.experiment, r) << "\n";
    std::cout << "per-request latency: baseline "
              << fmtF(r.baseline.meanLatencyCycles() / 2.5e6, 2)
              << " ms -> remote "
              << fmtF(r.treatment.meanLatencyCycles() / 2.5e6, 2)
              << " ms (throughput up, per-request latency worse — "
                 "check your SLO)\n\n";

    std::cout << "== What if the remote box were a real accelerator? ==\n";
    TextTable table({"remote A", "projected host speedup"});
    table.setAlign(1, Align::Right);
    for (const auto &point : model::sweepAccelFactor(
             cs.publishedParams, ThreadingDesign::AsyncDistinctThread,
             {1, 2, 4, 8})) {
        table.addRow({fmtF(point.x, 0),
                      fmtPct(point.projection.speedup - 1.0, 1)});
    }
    std::cout << table.str();
    std::cout << "\nThroughput is already host-bound: a faster remote "
                 "accelerator would mostly cut the response latency, "
                 "not raise QPS (the paper's closing point in §4).\n\n";

    std::cout << "== Ads1 against a replicated remote tier ==\n";
    microsim::AbExperiment tiered = cs.experiment;
    tiered.tier.replicas = 4;
    tiered.tier.policy = microsim::DispatchPolicy::RoundRobin;
    microsim::AbResult healthy = microsim::runAbTest(tiered);
    double hedgeDelay =
        healthy.treatment.tier.offloadLatencyCycles.p99();

    // One of the four replicas browns out: a quarter of its responses
    // arrive much later than the healthy tier's whole p99.
    auto slow = std::make_shared<faults::FaultPlan>();
    slow->seed = 31;
    slow->lateProbability = 0.25;
    slow->lateDelayCycles = 25 * hedgeDelay;
    tiered.tier.replicaFaultPlans = {nullptr, nullptr, nullptr, slow};
    microsim::AbResult brownout = microsim::runAbTest(tiered);

    tiered.tier.hedge.enabled = true;
    tiered.tier.hedge.delayCycles = hedgeDelay;
    microsim::AbResult hedged = microsim::runAbTest(tiered);

    TextTable tier({"tier", "offload p99 (cyc)", "QPS", "dup work"});
    for (size_t c = 1; c <= 3; ++c)
        tier.setAlign(c, Align::Right);
    auto tierRow = [&](const char *name, const microsim::AbResult &r2) {
        tier.addRow({name,
                     fmtF(r2.treatment.tier.offloadLatencyCycles.p99(), 0),
                     fmtF(r2.treatment.qps(), 0),
                     fmtPct(r2.treatment.tier.duplicateWorkFraction(), 1)});
    };
    tierRow("4 healthy replicas", healthy);
    tierRow("1-of-4 browning out", brownout);
    tierRow("  + hedged offloads", hedged);
    std::cout << tier.str();
    std::cout << "\nHedging at the healthy tier's p99 ("
              << fmtF(hedgeDelay, 0)
              << " cycles) re-issues only the slow tail to a second "
                 "replica: the brown-out's offload p99 collapses back "
                 "toward healthy for a few percent of duplicate work "
                 "(bench/replica_tail sweeps this space and enforces "
                 "the win by exit code).\n";
    return 0;
}

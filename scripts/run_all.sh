#!/usr/bin/env bash
# Build, lint, test, and regenerate every table/figure into results/.
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

cmake -B build -G Ninja
cmake --build build
cmake --build build --target lint
ctest --test-dir build --output-on-failure

mkdir -p results
for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    name="$(basename "$b")"
    echo "== $name =="
    "$b" | tee "results/$name.txt"
done
echo "All figure/table outputs written to results/."

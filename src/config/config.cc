#include "config/config.hh"

#include <fstream>
#include <sstream>

#include "util/logging.hh"
#include "util/string_utils.hh"

namespace accel {

namespace {

/** Strip an unquoted trailing comment beginning with '#' or ';'. */
std::string
stripComment(const std::string &line)
{
    size_t pos = line.find_first_of("#;");
    if (pos == std::string::npos)
        return line;
    return line.substr(0, pos);
}

} // namespace

Config
Config::fromString(const std::string &text)
{
    Config cfg;
    std::istringstream in(text);
    std::string raw;
    std::string section;
    int lineno = 0;
    while (std::getline(in, raw)) {
        ++lineno;
        std::string line = trim(stripComment(raw));
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']')
                fatal("config line " + std::to_string(lineno) +
                      ": unterminated section header");
            section = trim(line.substr(1, line.size() - 2));
            if (section.empty())
                fatal("config line " + std::to_string(lineno) +
                      ": empty section name");
            continue;
        }
        size_t eq = line.find('=');
        if (eq == std::string::npos)
            fatal("config line " + std::to_string(lineno) +
                  ": expected 'key = value'");
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            fatal("config line " + std::to_string(lineno) + ": empty key");
        if (cfg.has(section, key))
            warn("config: duplicate key '" + key + "' in section [" +
                 section + "]; last value wins");
        cfg.set(section, key, value);
    }
    // The parser's own duplicate-detection probes are not consumer
    // accesses: a fresh Config starts with every key unused.
    cfg.accessed_.clear();
    return cfg;
}

Config
Config::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("config: cannot open file '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromString(buffer.str());
}

bool
Config::has(const std::string &section, const std::string &key) const
{
    noteAccess(section, key);
    auto it = sections_.find(section);
    return it != sections_.end() && it->second.values.count(key) > 0;
}

std::optional<std::string>
Config::get(const std::string &section, const std::string &key) const
{
    noteAccess(section, key);
    auto it = sections_.find(section);
    if (it == sections_.end())
        return std::nullopt;
    auto kv = it->second.values.find(key);
    if (kv == it->second.values.end())
        return std::nullopt;
    return kv->second;
}

std::string
Config::getString(const std::string &section, const std::string &key) const
{
    auto v = get(section, key);
    if (!v)
        fatal("config: missing key '" + key + "' in section [" + section +
              "]");
    return *v;
}

std::string
Config::getString(const std::string &section, const std::string &key,
                  const std::string &fallback) const
{
    auto v = get(section, key);
    return v ? *v : fallback;
}

double
Config::getDouble(const std::string &section, const std::string &key) const
{
    return parseDouble(getString(section, key));
}

double
Config::getDouble(const std::string &section, const std::string &key,
                  double fallback) const
{
    auto v = get(section, key);
    return v ? parseDouble(*v) : fallback;
}

std::uint64_t
Config::getCount(const std::string &section, const std::string &key) const
{
    return parseCount(getString(section, key));
}

std::uint64_t
Config::getCount(const std::string &section, const std::string &key,
                 std::uint64_t fallback) const
{
    auto v = get(section, key);
    return v ? parseCount(*v) : fallback;
}

bool
Config::getBool(const std::string &section, const std::string &key) const
{
    return parseBool(getString(section, key));
}

bool
Config::getBool(const std::string &section, const std::string &key,
                bool fallback) const
{
    auto v = get(section, key);
    return v ? parseBool(*v) : fallback;
}

std::vector<std::string>
Config::sections() const
{
    return sectionOrder_;
}

std::vector<std::string>
Config::keys(const std::string &section) const
{
    auto it = sections_.find(section);
    if (it == sections_.end())
        return {};
    return it->second.order;
}

void
Config::noteAccess(const std::string &section,
                   const std::string &key) const
{
    accessed_[section].insert(key);
}

std::vector<std::string>
Config::unusedKeys(const std::string &section) const
{
    std::vector<std::string> out;
    auto it = sections_.find(section);
    if (it == sections_.end())
        return out;
    auto acc = accessed_.find(section);
    for (const std::string &key : it->second.order) {
        if (acc == accessed_.end() || acc->second.count(key) == 0)
            out.push_back(key);
    }
    return out;
}

void
Config::set(const std::string &section, const std::string &key,
            const std::string &value)
{
    auto it = sections_.find(section);
    if (it == sections_.end()) {
        sectionOrder_.push_back(section);
        it = sections_.emplace(section, Section{}).first;
    }
    auto &sec = it->second;
    if (sec.values.count(key) == 0)
        sec.order.push_back(key);
    sec.values[key] = value;
}

} // namespace accel

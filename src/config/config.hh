/**
 * @file
 * INI-style configuration files.
 *
 * The Accelerometer artifact drives the model from parameter configuration
 * files; this parser provides that front end. Grammar:
 *
 *     # comment            ; comment
 *     [section]
 *     key = value
 *
 * Keys outside any section land in the "" (global) section. Section and
 * key lookups are case-sensitive. Duplicate keys overwrite (last wins)
 * with a warning; duplicate sections merge.
 */

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace accel {

/** Parsed configuration with typed accessors. */
class Config
{
  public:
    Config() = default;

    /** Parse configuration text. @throws FatalError on syntax errors. */
    static Config fromString(const std::string &text);

    /** Load and parse a file. @throws FatalError if unreadable. */
    static Config fromFile(const std::string &path);

    /** True when the section/key pair exists. */
    bool has(const std::string &section, const std::string &key) const;

    /** Raw string value, or std::nullopt when absent. */
    std::optional<std::string> get(const std::string &section,
                                   const std::string &key) const;

    /**
     * Required string value.
     * @throws FatalError when the key is absent.
     */
    std::string getString(const std::string &section,
                          const std::string &key) const;

    /** String with default. */
    std::string getString(const std::string &section, const std::string &key,
                          const std::string &fallback) const;

    /** Required double. @throws FatalError when absent or malformed. */
    double getDouble(const std::string &section,
                     const std::string &key) const;

    /** Double with default. */
    double getDouble(const std::string &section, const std::string &key,
                     double fallback) const;

    /** Required count (non-negative integer, sci notation OK). */
    std::uint64_t getCount(const std::string &section,
                           const std::string &key) const;

    /** Count with default. */
    std::uint64_t getCount(const std::string &section, const std::string &key,
                           std::uint64_t fallback) const;

    /** Required boolean. */
    bool getBool(const std::string &section, const std::string &key) const;

    /** Boolean with default. */
    bool getBool(const std::string &section, const std::string &key,
                 bool fallback) const;

    /** All section names in insertion order (the global "" first if used). */
    std::vector<std::string> sections() const;

    /** All keys in a section, in insertion order. */
    std::vector<std::string> keys(const std::string &section) const;

    /** Insert or overwrite a value programmatically. */
    void set(const std::string &section, const std::string &key,
             const std::string &value);

    /**
     * Keys of @p section that no accessor has probed yet, in insertion
     * order. Every has()/get*() call records its (section, key) pair —
     * whether or not the key exists — so after a parser has walked a
     * section, anything left here is a key the parser does not
     * recognise (typically a typo like `tier_hege_delay`). Access
     * recording is not synchronised: parse a Config from one thread
     * before fanning work out.
     */
    std::vector<std::string> unusedKeys(const std::string &section) const;

  private:
    struct Section
    {
        std::vector<std::string> order;
        std::map<std::string, std::string> values;
    };

    void noteAccess(const std::string &section,
                    const std::string &key) const;

    std::vector<std::string> sectionOrder_;
    std::map<std::string, Section> sections_;
    /** Probed (section, key) pairs; mutable so const getters record. */
    mutable std::map<std::string, std::set<std::string>> accessed_;
};

} // namespace accel

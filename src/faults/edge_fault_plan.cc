#include "faults/edge_fault_plan.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace accel::faults {

namespace {

/** splitmix64 finalizer: decorrelates (seed, slot) into an Rng seed. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Distinct from the device plan's stream: same (seed, index) pair on
 *  a device and an edge must not correlate. */
constexpr std::uint64_t kEdgeFaultStream = 0xed6efa17ULL;

void
requireProbability(double p, const char *field)
{
    require(std::isfinite(p) && p >= 0.0 && p <= 1.0,
            std::string("EdgeFaultPlan.") + field + " must be in [0, 1]");
}

void
requireWindows(const std::vector<StallWindow> &windows, const char *field)
{
    sim::Tick prev_end = 0;
    for (const StallWindow &w : windows) {
        require(w.begin < w.end,
                std::string("EdgeFaultPlan.") + field +
                    " entries must have begin < end");
        require(w.begin >= prev_end,
                std::string("EdgeFaultPlan.") + field +
                    " must be sorted and disjoint");
        prev_end = w.end;
    }
}

/** Sorted early-break membership scan over half-open windows. */
bool
inWindows(const std::vector<StallWindow> &windows, sim::Tick t)
{
    for (const StallWindow &w : windows) {
        if (t < w.begin)
            break; // sorted: later windows can't contain t
        if (t < w.end)
            return true;
    }
    return false;
}

} // namespace

bool
EdgeFaultPlan::active() const
{
    return dropProbability > 0.0 || spikeProbability > 0.0 ||
           !blackholes.empty();
}

bool
EdgeFaultPlan::canLoseCalls() const
{
    return dropProbability > 0.0 || !blackholes.empty();
}

void
EdgeFaultPlan::validate() const
{
    requireProbability(dropProbability, "dropProbability");
    requireProbability(spikeProbability, "spikeProbability");
    require(std::isfinite(spikeLatencyCycles) && spikeLatencyCycles >= 0.0,
            "EdgeFaultPlan.spikeLatencyCycles must be finite and >= 0");
    require(spikeProbability == 0.0 || spikeLatencyCycles > 0.0,
            "EdgeFaultPlan.spikeLatencyCycles must be > 0 when "
            "spikeProbability > 0");
    require(spikeWindows.empty() || spikeProbability > 0.0,
            "EdgeFaultPlan.spikeWindows without spikeProbability > 0 "
            "narrows a spike that never fires");
    requireWindows(spikeWindows, "spikeWindows");
    requireWindows(blackholes, "blackholes");
}

EdgeFaultDraw
EdgeFaultPlan::draw(std::uint64_t callSlot) const
{
    EdgeFaultDraw d;
    // One throwaway generator per call keeps the draw a pure function
    // of (seed, slot): fault outcomes cannot shift when retries or
    // scheduling change the order in which calls issue.
    Rng rng(mix(seed ^ mix(callSlot + 1)), kEdgeFaultStream);
    if (spikeProbability > 0.0 && rng.chance(spikeProbability))
        d.extraLatencyCycles = spikeLatencyCycles;
    if (dropProbability > 0.0 && rng.chance(dropProbability))
        d.drop = true; // a dropped call's spike draw is moot
    return d;
}

bool
EdgeFaultPlan::blackholedAt(sim::Tick t) const
{
    return inWindows(blackholes, t);
}

bool
EdgeFaultPlan::spikeActiveAt(sim::Tick t) const
{
    return spikeWindows.empty() || inWindows(spikeWindows, t);
}

} // namespace accel::faults

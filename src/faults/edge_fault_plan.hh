/**
 * @file
 * Deterministic fault schedules for RPC graph edges.
 *
 * An EdgeFaultPlan describes how one caller->callee edge misbehaves:
 * per-call probabilities of a dropped RPC or a latency spike, plus
 * blackhole windows in which every call issued on the edge vanishes.
 * Like the device FaultPlan, it is pure data plus a slot-indexed draw:
 * the faults hitting call #i on an edge depend only on (seed, i), never
 * on event interleaving, so seeded runs replay bit-identically and
 * retries (new slots) get independent draws.
 *
 * The null plan is the absence of the subsystem: an edge without a plan
 * takes zero extra branches and zero RNG draws, which keeps fault-off
 * graph runs bit-identical to a tree that never had this layer.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "faults/fault_plan.hh"
#include "sim/event_queue.hh"

namespace accel::faults {

/** Faults applied to one edge call, fixed by (seed, call slot). */
struct EdgeFaultDraw
{
    /** The RPC is silently lost: it never reaches the callee. */
    bool drop = false;

    /** Extra cycles added to this call's delivery latency. */
    double extraLatencyCycles = 0.0;
};

/** A seeded, fully deterministic edge-misbehaviour schedule. */
struct EdgeFaultPlan
{
    /** Seed for the per-call fault draws. */
    std::uint64_t seed = 1;

    /** Probability a call is silently dropped in flight. */
    double dropProbability = 0.0;

    /** Probability a call's delivery is delayed by spikeLatencyCycles. */
    double spikeProbability = 0.0;
    double spikeLatencyCycles = 0.0;

    /**
     * When non-empty, spike draws only apply to calls issued inside
     * these windows — the transient brown-out case (a congested link,
     * a sick replica behind the edge) whose onset and clearance are
     * what cascade-containment policies have to survive. Empty means
     * the spike probability applies for the whole run. Half-open
     * [begin, end) ticks; sorted by begin and non-overlapping.
     */
    std::vector<StallWindow> spikeWindows;

    /**
     * Windows in which every call issued on the edge vanishes (the
     * network partition / dead peer case). Half-open [begin, end)
     * ticks; must be sorted by begin and non-overlapping.
     */
    std::vector<StallWindow> blackholes;

    /** True when any fault field departs from the null plan. */
    bool active() const;

    /** True when the plan can lose a call (drop or blackhole). */
    bool canLoseCalls() const;

    /** @throws FatalError on out-of-domain values (names the field). */
    void validate() const;

    /**
     * Faults for call number @p callSlot (0-based issue order on this
     * edge). Pure function of (seed, callSlot) — the slot-indexed RNG
     * discipline: a retry is a new call and gets an independent draw.
     */
    EdgeFaultDraw draw(std::uint64_t callSlot) const;

    /** True when @p t falls inside a blackhole window. */
    bool blackholedAt(sim::Tick t) const;

    /**
     * True when a spike drawn for a call issued at @p t applies:
     * always, unless spikeWindows narrows the spike to its windows.
     */
    bool spikeActiveAt(sim::Tick t) const;
};

} // namespace accel::faults

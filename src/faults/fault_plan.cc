#include "faults/fault_plan.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace accel::faults {

namespace {

/** splitmix64 finalizer: decorrelates (seed, index) into an Rng seed. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

constexpr std::uint64_t kFaultStream = 0xfa0175ULL;

void
requireProbability(double p, const char *field)
{
    require(std::isfinite(p) && p >= 0.0 && p <= 1.0,
            std::string("FaultPlan.") + field + " must be in [0, 1]");
}

} // namespace

bool
FaultPlan::active() const
{
    return dropProbability > 0.0 || lateProbability > 0.0 ||
           transferSpikeProbability > 0.0 || !stallWindows.empty() ||
           deviceFailAtTick != kNeverTick;
}

void
FaultPlan::validate() const
{
    requireProbability(dropProbability, "dropProbability");
    requireProbability(lateProbability, "lateProbability");
    requireProbability(transferSpikeProbability,
                       "transferSpikeProbability");
    require(std::isfinite(lateDelayCycles) && lateDelayCycles >= 0.0,
            "FaultPlan.lateDelayCycles must be finite and >= 0");
    require(std::isfinite(transferSpikeFactor) &&
                transferSpikeFactor >= 1.0,
            "FaultPlan.transferSpikeFactor must be finite and >= 1");
    require(lateProbability == 0.0 || lateDelayCycles > 0.0,
            "FaultPlan.lateDelayCycles must be > 0 when "
            "lateProbability > 0");
    sim::Tick prev_end = 0;
    for (const StallWindow &w : stallWindows) {
        require(w.begin < w.end,
                "FaultPlan.stallWindows entries must have begin < end");
        require(w.begin >= prev_end,
                "FaultPlan.stallWindows must be sorted and disjoint");
        prev_end = w.end;
    }
    if (deviceFailAtTick == kNeverTick) {
        require(deviceRecoverAtTick == kNeverTick,
                "FaultPlan.deviceRecoverAtTick needs deviceFailAtTick");
    } else if (deviceRecoverAtTick != kNeverTick) {
        require(deviceFailAtTick < deviceRecoverAtTick,
                "FaultPlan.deviceRecoverAtTick must follow "
                "deviceFailAtTick");
    }
}

FaultDraw
FaultPlan::draw(std::uint64_t offloadIndex) const
{
    FaultDraw d;
    // One throwaway generator per offload keeps the draw a pure
    // function of (seed, index): fault outcomes cannot shift when
    // retries or scheduling change the order in which offloads issue.
    Rng rng(mix(seed ^ mix(offloadIndex + 1)), kFaultStream);
    if (transferSpikeProbability > 0.0 &&
        rng.chance(transferSpikeProbability)) {
        d.transferFactor = transferSpikeFactor;
    }
    if (dropProbability > 0.0 && rng.chance(dropProbability)) {
        d.dropResponse = true;
        return d; // a dropped completion can't also be late
    }
    if (lateProbability > 0.0 && rng.chance(lateProbability))
        d.lateResponseCycles = lateDelayCycles;
    return d;
}

bool
FaultPlan::stalledAt(sim::Tick t) const
{
    return stallEnd(t) != t;
}

sim::Tick
FaultPlan::stallEnd(sim::Tick t) const
{
    for (const StallWindow &w : stallWindows) {
        if (t < w.begin)
            break; // sorted: later windows can't contain t
        if (t < w.end)
            return w.end;
    }
    return t;
}

bool
FaultPlan::failedAt(sim::Tick t) const
{
    if (deviceFailAtTick == kNeverTick || t < deviceFailAtTick)
        return false;
    return deviceRecoverAtTick == kNeverTick || t < deviceRecoverAtTick;
}

} // namespace accel::faults

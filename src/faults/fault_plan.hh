/**
 * @file
 * Deterministic fault schedules for the accelerator device model.
 *
 * A FaultPlan describes how a device misbehaves over a run: windows in
 * which channels stall, per-offload probabilities of a dropped or late
 * completion, transfer-latency spikes, and a whole-device failure (with
 * optional recovery) at fixed ticks. The plan is pure data plus a
 * slot-indexed draw: the faults hitting offload #i depend only on
 * (seed, i), never on event interleaving, so a seeded run replays
 * bit-identically and parallel sweeps stay worker-count independent.
 *
 * The null plan (no fields set) is the absence of the subsystem: a
 * device without a plan takes zero extra branches and zero RNG draws,
 * which is what keeps fault-off outputs bit-identical to a tree that
 * never had this layer.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.hh"

namespace accel::faults {

/** Half-open window [begin, end) in simulated ticks. */
struct StallWindow
{
    sim::Tick begin = 0;
    sim::Tick end = 0;
};

/** Faults applied to one offload, fixed by (seed, offload index). */
struct FaultDraw
{
    /** Completion is lost: the device serves but never responds. */
    bool dropResponse = false;

    /** Extra cycles before the completion is delivered. */
    double lateResponseCycles = 0.0;

    /** Multiplier on the interface transfer latency. */
    double transferFactor = 1.0;
};

/** Sentinel for "this tick never arrives". */
constexpr sim::Tick kNeverTick = ~static_cast<sim::Tick>(0);

/** A seeded, fully deterministic device-misbehaviour schedule. */
struct FaultPlan
{
    /** Seed for the per-offload fault draws. */
    std::uint64_t seed = 1;

    /** Probability an offload's completion is silently lost. */
    double dropProbability = 0.0;

    /** Probability a completion is delayed by lateDelayCycles. */
    double lateProbability = 0.0;
    double lateDelayCycles = 0.0;

    /** Probability the transfer is multiplied by spikeFactor. */
    double transferSpikeProbability = 0.0;
    double transferSpikeFactor = 1.0;

    /**
     * Windows in which no channel starts new work (queued offloads
     * wait; in-flight service finishes normally). Must be sorted by
     * begin and non-overlapping.
     */
    std::vector<StallWindow> stallWindows;

    /**
     * Whole-device failure: from deviceFailAtTick until
     * deviceRecoverAtTick the device resets — queued and arriving
     * offloads are discarded and in-flight completions are lost.
     * kNeverTick disables failure / recovery respectively.
     */
    sim::Tick deviceFailAtTick = kNeverTick;
    sim::Tick deviceRecoverAtTick = kNeverTick;

    /** True when any fault field departs from the null plan. */
    bool active() const;

    /** @throws FatalError on out-of-domain values (names the field). */
    void validate() const;

    /**
     * Faults for offload number @p offloadIndex (0-based issue order).
     * Pure function of (seed, offloadIndex) — the slot-indexed RNG
     * discipline: a retry is a new offload and gets an independent
     * draw.
     */
    FaultDraw draw(std::uint64_t offloadIndex) const;

    /** True when @p t falls inside a stall window. */
    bool stalledAt(sim::Tick t) const;

    /**
     * End of the stall window containing @p t, or @p t itself when the
     * device is not stalled.
     */
    sim::Tick stallEnd(sim::Tick t) const;

    /** True when the device is failed (reset) at @p t. */
    bool failedAt(sim::Tick t) const;
};

} // namespace accel::faults

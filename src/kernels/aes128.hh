/**
 * @file
 * Software AES-128 (FIPS-197).
 *
 * The paper's first case study accelerates OpenSSL AES encryption in
 * Cache1 with the AES-NI instruction. We provide a portable software
 * AES-128 implementation as the *unaccelerated host kernel*: calibration
 * micro-benchmarks measure its cycles/byte (Cb) and compare against a
 * table-free "accelerated" path to derive the model's A factor, exactly
 * mirroring the paper's methodology of building micro-benchmarks from
 * the OpenSSL AES primitives.
 *
 * This is a correctness-oriented reference implementation (encrypt and
 * decrypt, ECB and CTR modes); it is validated against the FIPS-197 and
 * NIST SP 800-38A known-answer vectors in the test suite. It is not
 * hardened against timing side channels and must not be used for real
 * cryptography.
 */

#pragma once

#include <cstddef>
#include <array>
#include <cstdint>
#include <vector>

namespace accel::kernels {

/** AES-128 block cipher with precomputed round keys. */
class Aes128
{
  public:
    static constexpr size_t kBlockSize = 16;
    static constexpr size_t kKeySize = 16;
    static constexpr size_t kRounds = 10;

    /** Expand the 128-bit key into the round-key schedule. */
    explicit Aes128(const std::array<std::uint8_t, kKeySize> &key);

    /** Encrypt one 16-byte block in place. */
    void encryptBlock(std::uint8_t block[kBlockSize]) const;

    /** Decrypt one 16-byte block in place. */
    void decryptBlock(std::uint8_t block[kBlockSize]) const;

    /**
     * CTR-mode encryption (also decryption: CTR is an involution).
     * Processes arbitrary lengths; the 16-byte IV is the initial counter.
     */
    std::vector<std::uint8_t>
    ctr(const std::vector<std::uint8_t> &data,
        const std::array<std::uint8_t, kBlockSize> &iv) const;

    /**
     * ECB-mode encryption of whole blocks.
     * @throws FatalError when the input is not a multiple of 16 bytes.
     */
    std::vector<std::uint8_t>
    ecbEncrypt(const std::vector<std::uint8_t> &data) const;

    /** ECB-mode decryption of whole blocks. */
    std::vector<std::uint8_t>
    ecbDecrypt(const std::vector<std::uint8_t> &data) const;

  private:
    // Round keys: (kRounds + 1) 16-byte round keys.
    std::array<std::uint8_t, kBlockSize * (kRounds + 1)> roundKeys_;
};

} // namespace accel::kernels

#include "kernels/calibration.hh"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "kernels/aes128.hh"
#include "kernels/lz_compress.hh"
#include "kernels/memops.hh"
#include "kernels/serde.hh"
#include "kernels/sha256.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/wall_timer.hh"

namespace accel::kernels {

namespace {

/** Median of a small vector (copied; callers keep their order). */
double
median(std::vector<double> xs)
{
    ensure(!xs.empty(), "median of empty vector");
    std::sort(xs.begin(), xs.end());
    size_t mid = xs.size() / 2;
    if (xs.size() % 2 == 1)
        return xs[mid];
    return 0.5 * (xs[mid - 1] + xs[mid]);
}

/** Time one invocation in seconds on the injected wall clock. */
double
timeOnce(const std::function<std::uint64_t(size_t)> &op, size_t bytes,
         std::uint64_t &sink, const WallTimer &timer)
{
    double start = timer.seconds();
    sink ^= op(bytes);
    return timer.seconds() - start;
}

/** Synthetic log-like text with realistic redundancy. */
std::vector<std::uint8_t>
logLikeData(size_t bytes, Rng &rng)
{
    static const char *words[] = {
        "GET", "POST", "/api/v2/feed", "/api/v2/ads", "status=200",
        "status=404", "latency_us=", "user_id=", "region=prn",
        "region=ftw", "cache_hit", "cache_miss", "bytes=",
    };
    std::vector<std::uint8_t> out;
    out.reserve(bytes + 32);
    while (out.size() < bytes) {
        const char *w = words[rng.below(sizeof(words) / sizeof(words[0]))];
        for (const char *p = w; *p; ++p)
            out.push_back(static_cast<std::uint8_t>(*p));
        out.push_back(' ');
        if (rng.chance(0.2)) {
            std::uint32_t v = rng.below(100000);
            for (char c : std::to_string(v))
                out.push_back(static_cast<std::uint8_t>(c));
            out.push_back('\n');
        }
    }
    out.resize(bytes);
    return out;
}

} // namespace

Calibration
fitLinear(const std::vector<std::pair<double, double>> &samples)
{
    require(samples.size() >= 2, "fitLinear: need at least two samples");
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    double n = static_cast<double>(samples.size());
    for (const auto &[x, y] : samples) {
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    double denom = n * sxx - sx * sx;
    require(denom != 0, "fitLinear: need at least two distinct sizes");
    double slope = (n * sxy - sx * sy) / denom;
    double intercept = (sy - slope * sx) / n;

    double ss_tot = 0, ss_res = 0;
    double mean_y = sy / n;
    for (const auto &[x, y] : samples) {
        double fit = slope * x + intercept;
        ss_tot += (y - mean_y) * (y - mean_y);
        ss_res += (y - fit) * (y - fit);
    }
    double r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
    return {slope, intercept, r2};
}

Calibration
calibrate(const std::function<std::uint64_t(size_t)> &op,
          const std::vector<size_t> &sizes, double clockGHz,
          int repetitions, const WallTimer &timer)
{
    require(clockGHz > 0, "calibrate: clock must be positive");
    require(repetitions >= 1, "calibrate: need at least one repetition");
    double cycles_per_second = clockGHz * 1e9;

    std::uint64_t sink = 0;
    std::vector<std::pair<double, double>> samples;
    for (size_t bytes : sizes) {
        // Warm caches and code paths once before timing.
        sink ^= op(bytes);
        std::vector<double> times;
        times.reserve(static_cast<size_t>(repetitions));
        for (int r = 0; r < repetitions; ++r)
            times.push_back(timeOnce(op, bytes, sink, timer));
        samples.emplace_back(static_cast<double>(bytes),
                             median(times) * cycles_per_second);
    }
    // Keep the sink live so the measured work cannot be discarded.
    if (sink == 0xdeadbeefcafef00dULL)
        warn("calibrate: improbable sink value");
    return fitLinear(samples);
}

Calibration
calibrateAesCtr(double clockGHz)
{
    std::array<std::uint8_t, Aes128::kKeySize> key{};
    for (size_t i = 0; i < key.size(); ++i)
        key[i] = static_cast<std::uint8_t>(i);
    auto cipher = std::make_shared<Aes128>(key);
    Rng rng(42);
    auto data = std::make_shared<std::vector<std::uint8_t>>(
        logLikeData(64 * 1024, rng));
    std::array<std::uint8_t, Aes128::kBlockSize> iv{};

    auto op = [cipher, data, iv](size_t bytes) -> std::uint64_t {
        std::vector<std::uint8_t> input(data->begin(),
                                        data->begin() +
                                            static_cast<long>(bytes));
        auto out = cipher->ctr(input, iv);
        return out.empty() ? 0 : out.back();
    };
    return calibrate(op, {256, 1024, 4096, 16384, 65536}, clockGHz);
}

Calibration
calibrateSha256(double clockGHz)
{
    Rng rng(43);
    auto data = std::make_shared<std::vector<std::uint8_t>>(
        logLikeData(64 * 1024, rng));
    auto op = [data](size_t bytes) -> std::uint64_t {
        Sha256 h;
        h.update(data->data(), bytes);
        auto digest = h.finish();
        return digest[0];
    };
    return calibrate(op, {256, 1024, 4096, 16384, 65536}, clockGHz);
}

Calibration
calibrateLzCompress(double clockGHz)
{
    Rng rng(44);
    auto data = std::make_shared<std::vector<std::uint8_t>>(
        logLikeData(64 * 1024, rng));
    auto op = [data](size_t bytes) -> std::uint64_t {
        std::vector<std::uint8_t> input(data->begin(),
                                        data->begin() +
                                            static_cast<long>(bytes));
        auto frame = lzCompress(input);
        return frame.size();
    };
    return calibrate(op, {256, 1024, 4096, 16384, 65536}, clockGHz);
}

Calibration
calibrateSerialize(double clockGHz)
{
    auto op = [](size_t bytes) -> std::uint64_t {
        SerdeMessage msg = makeStoryMessage(bytes, 17);
        auto wire = serialize(msg);
        return wire.size();
    };
    return calibrate(op, {256, 1024, 4096, 16384, 65536}, clockGHz);
}

Calibration
calibrateDeserialize(double clockGHz)
{
    auto wires = std::make_shared<std::map<size_t,
        std::vector<std::uint8_t>>>();
    for (size_t bytes : {256, 1024, 4096, 16384, 65536})
        (*wires)[bytes] = serialize(makeStoryMessage(bytes, 18));
    auto op = [wires](size_t bytes) -> std::uint64_t {
        SerdeMessage msg = deserialize(wires->at(bytes));
        return msg.size();
    };
    return calibrate(op, {256, 1024, 4096, 16384, 65536}, clockGHz);
}

Calibration
calibrateMemOp(int op, double clockGHz)
{
    auto harness = std::make_shared<MemOpHarness>(1 << 20);
    MemOp mem_op = static_cast<MemOp>(op);
    auto fn = [harness, mem_op](size_t bytes) -> std::uint64_t {
        return harness->run(mem_op, bytes);
    };
    return calibrate(fn, {256, 4096, 65536, 262144, 1048576}, clockGHz);
}

} // namespace accel::kernels

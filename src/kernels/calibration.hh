/**
 * @file
 * Kernel calibration: derive model parameters by measuring real kernels.
 *
 * The paper measures model parameters with "micro-benchmarks that measure
 * execution time on the host and the accelerator". This module does the
 * same: it times a kernel over a range of granularities and fits
 *
 *     cycles(g) = Cb * g + o0
 *
 * by least squares, yielding the per-byte cost Cb and the fixed per-call
 * overhead o0 the model consumes. Wall time is converted to cycles at a
 * nominal host clock; the model operates on relative cycle shares, so the
 * nominal clock only scales units, never the projected speedups.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/wall_timer.hh"

namespace accel::kernels {

/** Result of a linear-fit calibration. */
struct Calibration
{
    double cyclesPerByte;  //!< Cb: marginal cycles per byte
    double fixedCycles;    //!< o0: fixed cycles per invocation
    double rSquared;       //!< goodness of the linear fit in [0,1]
};

/**
 * Times @p op at each granularity and fits the linear cost model.
 *
 * @param op          kernel under test; must process exactly @p bytes and
 *                    return a value derived from the data (defeats DCE)
 * @param sizes       granularities to sample (>= 2 distinct values)
 * @param clockGHz    nominal host clock for the time→cycles conversion
 * @param repetitions timing repetitions per granularity (median taken)
 * @param timer       wall-clock source; tests inject a deterministic
 *                    fake so calibration itself is reproducible
 *
 * @throws FatalError on fewer than two distinct sizes or non-positive
 *         clock.
 */
Calibration
calibrate(const std::function<std::uint64_t(size_t)> &op,
          const std::vector<size_t> &sizes, double clockGHz = 2.0,
          int repetitions = 9,
          const WallTimer &timer = steadyWallTimer());

/**
 * Fit the linear model to already-collected (bytes, cycles) samples.
 * Exposed separately so simulated measurements can reuse the fit.
 */
Calibration fitLinear(const std::vector<std::pair<double, double>> &samples);

/** Convenience: calibrate AES-128-CTR encryption (the SSL leaf). */
Calibration calibrateAesCtr(double clockGHz = 2.0);

/** Convenience: calibrate SHA-256 (the hashing leaf). */
Calibration calibrateSha256(double clockGHz = 2.0);

/**
 * Convenience: calibrate LZ compression over synthetic log-like text
 * (the ZSTD leaf).
 */
Calibration calibrateLzCompress(double clockGHz = 2.0);

/** Convenience: calibrate a memory leaf operation. */
Calibration calibrateMemOp(int op, double clockGHz = 2.0);

/** Convenience: calibrate message serialization (the RPC leaf). */
Calibration calibrateSerialize(double clockGHz = 2.0);

/** Convenience: calibrate message deserialization. */
Calibration calibrateDeserialize(double clockGHz = 2.0);

} // namespace accel::kernels

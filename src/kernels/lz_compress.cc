#include "kernels/lz_compress.hh"

#include <algorithm>
#include <array>
#include <cstring>

#include "util/logging.hh"

namespace accel::kernels {

namespace {

constexpr std::uint8_t kTokenLiteral = 0x00;
constexpr std::uint8_t kTokenMatch = 0x01;
constexpr std::uint32_t kHashBits = 15;
constexpr std::uint32_t kHashSize = 1u << kHashBits;

/** Multiplicative hash of the 4 bytes at @p p. */
inline std::uint32_t
hash4(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> (32 - kHashBits);
}

} // namespace

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(value) | 0x80);
        value >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t
getVarint(const std::vector<std::uint8_t> &data, size_t &pos)
{
    std::uint64_t value = 0;
    int shift = 0;
    for (int i = 0; i < 10; ++i) {
        if (pos >= data.size())
            fatal("lz: truncated varint");
        std::uint8_t byte = data[pos++];
        value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            return value;
        shift += 7;
    }
    fatal("lz: overlong varint");
}

std::vector<std::uint8_t>
lzCompress(const std::vector<std::uint8_t> &input, const LzOptions &options)
{
    std::vector<std::uint8_t> out;
    out.reserve(input.size() / 2 + 16);
    putVarint(out, input.size());

    const size_t n = input.size();
    // head[h]: most recent position with hash h; prev[i]: previous position
    // in i's chain. Positions are offset by 1 so 0 means "none".
    std::vector<std::uint32_t> head(kHashSize, 0);
    std::vector<std::uint32_t> prev(n, 0);

    size_t literal_start = 0;
    auto flushLiterals = [&](size_t end) {
        size_t start = literal_start;
        while (start < end) {
            size_t run = std::min<size_t>(end - start, 1 << 20);
            out.push_back(kTokenLiteral);
            putVarint(out, run);
            out.insert(out.end(), input.begin() + start,
                       input.begin() + start + run);
            start += run;
        }
        literal_start = end;
    };

    size_t pos = 0;
    while (pos + kLzMinMatch <= n) {
        std::uint32_t h = hash4(input.data() + pos);
        std::uint32_t candidate = head[h];

        size_t best_len = 0;
        size_t best_dist = 0;
        std::uint32_t probes = options.maxChainLength;
        while (candidate != 0 && probes-- > 0) {
            size_t cand_pos = candidate - 1;
            size_t dist = pos - cand_pos;
            if (dist > options.windowSize)
                break;
            size_t len = 0;
            size_t max_len = n - pos;
            while (len < max_len &&
                   input[cand_pos + len] == input[pos + len]) {
                ++len;
            }
            if (len > best_len) {
                best_len = len;
                best_dist = dist;
            }
            candidate = prev[cand_pos];
        }

        if (best_len >= kLzMinMatch) {
            flushLiterals(pos);
            out.push_back(kTokenMatch);
            putVarint(out, best_len);
            putVarint(out, best_dist);

            // Index every hashable position covered by the match, then
            // jump past it.
            size_t match_end = pos + best_len;
            size_t index_stop = std::min(match_end, n - kLzMinMatch + 1);
            for (size_t i = pos; i < index_stop; ++i) {
                std::uint32_t hh = hash4(input.data() + i);
                prev[i] = head[hh];
                head[hh] = static_cast<std::uint32_t>(i + 1);
            }
            pos = match_end;
            literal_start = match_end;
        } else {
            prev[pos] = head[h];
            head[h] = static_cast<std::uint32_t>(pos + 1);
            ++pos;
        }
    }
    flushLiterals(n);
    return out;
}

std::vector<std::uint8_t>
lzDecompress(const std::vector<std::uint8_t> &frame)
{
    size_t pos = 0;
    std::uint64_t raw_size = getVarint(frame, pos);
    std::vector<std::uint8_t> out;
    out.reserve(raw_size);

    while (out.size() < raw_size) {
        if (pos >= frame.size())
            fatal("lz: truncated frame");
        std::uint8_t token = frame[pos++];
        if (token == kTokenLiteral) {
            std::uint64_t run = getVarint(frame, pos);
            if (run == 0)
                fatal("lz: zero-length literal run");
            if (pos + run > frame.size())
                fatal("lz: literal run past end of frame");
            if (out.size() + run > raw_size)
                fatal("lz: literal run past declared size");
            out.insert(out.end(), frame.begin() + pos,
                       frame.begin() + pos + run);
            pos += run;
        } else if (token == kTokenMatch) {
            std::uint64_t len = getVarint(frame, pos);
            std::uint64_t dist = getVarint(frame, pos);
            if (len < kLzMinMatch)
                fatal("lz: match shorter than minimum");
            if (dist == 0 || dist > out.size())
                fatal("lz: match distance out of range");
            if (out.size() + len > raw_size)
                fatal("lz: match past declared size");
            // Byte-at-a-time copy: overlapping matches (dist < len)
            // replicate, exactly like LZ77 requires.
            size_t src = out.size() - dist;
            for (std::uint64_t i = 0; i < len; ++i)
                out.push_back(out[src + i]);
        } else {
            fatal("lz: unknown token");
        }
    }
    if (pos != frame.size())
        fatal("lz: trailing garbage after frame");
    return out;
}

} // namespace accel::kernels

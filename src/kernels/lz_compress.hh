/**
 * @file
 * LZ77-class byte compressor.
 *
 * Stands in for the ZSTD leaf category: a hash-chain LZ77 matcher with a
 * varint-framed token stream (literal runs and back-references). The
 * compression calibration micro-benchmark measures its cycles/byte to
 * derive the model's Cb for the compression case studies (Table 7), and
 * the test suite checks lossless round trips over adversarial inputs.
 *
 * Format (little-endian varints):
 *   frame   := raw_size token*
 *   token   := literal_run | match
 *   literal_run := 0x00 length byte[length]        (length >= 1)
 *   match       := 0x01 length distance            (length >= kMinMatch)
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace accel::kernels {

/** Tunables for the LZ77 matcher. */
struct LzOptions
{
    /** Window the matcher may reference backwards. */
    std::uint32_t windowSize = 64 * 1024;

    /** Maximum hash-chain probes per position (quality vs. speed). */
    std::uint32_t maxChainLength = 32;
};

/** Minimum profitable match length. */
constexpr std::uint32_t kLzMinMatch = 4;

/** Compress @p input; never fails (worst case grows by the framing). */
std::vector<std::uint8_t> lzCompress(const std::vector<std::uint8_t> &input,
                                     const LzOptions &options = {});

/**
 * Decompress a frame produced by lzCompress().
 * @throws FatalError on malformed or truncated frames.
 */
std::vector<std::uint8_t>
lzDecompress(const std::vector<std::uint8_t> &frame);

/** Append a LEB128 varint to @p out. */
void putVarint(std::vector<std::uint8_t> &out, std::uint64_t value);

/**
 * Read a LEB128 varint at @p pos, advancing it.
 * @throws FatalError on truncation or overlong encodings (> 10 bytes).
 */
std::uint64_t getVarint(const std::vector<std::uint8_t> &data, size_t &pos);

} // namespace accel::kernels

#include "kernels/memops.hh"

#include <cstring>

#include "util/logging.hh"

namespace accel::kernels {

std::string
toString(MemOp op)
{
    switch (op) {
      case MemOp::Copy:
        return "Memory-Copy";
      case MemOp::Move:
        return "Memory-Move";
      case MemOp::Set:
        return "Memory-Set";
      case MemOp::Compare:
        return "Memory-Compare";
    }
    panic("toString: unknown MemOp");
}

MemOpHarness::MemOpHarness(size_t capacity)
    : src_(capacity), dst_(capacity)
{
    require(capacity > 0, "MemOpHarness: capacity must be positive");
    for (size_t i = 0; i < capacity; ++i)
        src_[i] = static_cast<std::uint8_t>(i * 131 + 17);
}

std::uint64_t
MemOpHarness::run(MemOp op, size_t bytes)
{
    require(bytes <= src_.size(), "MemOpHarness: size exceeds capacity");
    if (bytes == 0)
        return 0;
    switch (op) {
      case MemOp::Copy:
        std::memcpy(dst_.data(), src_.data(), bytes);
        return dst_[bytes - 1];
      case MemOp::Move:
        // Overlapping move within the destination buffer.
        std::memcpy(dst_.data(), src_.data(), bytes);
        std::memmove(dst_.data() + bytes / 4, dst_.data(),
                     bytes - bytes / 4);
        return dst_[bytes - 1];
      case MemOp::Set:
        ++fill_;
        std::memset(dst_.data(), fill_, bytes);
        return dst_[bytes - 1];
      case MemOp::Compare:
        return static_cast<std::uint64_t>(
            std::memcmp(dst_.data(), src_.data(), bytes) + 1);
    }
    panic("MemOpHarness: unknown MemOp");
}

} // namespace accel::kernels

/**
 * @file
 * Memory leaf-function harness.
 *
 * The characterization's largest leaf category is memory operations
 * (copy, set, move, compare). This harness wraps them behind a uniform
 * interface so the calibration micro-benchmark can measure cycles/byte
 * for each, mirroring how the paper derives copy-acceleration parameters
 * (Table 7's memory-copy row).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace accel::kernels {

/** The memory leaf operations from the paper's Fig. 3. */
enum class MemOp { Copy, Move, Set, Compare };

/** Printable name matching the figure labels. */
std::string toString(MemOp op);

/**
 * Scratch buffers for exercising memory operations of a given size.
 *
 * Buffers are allocated once; run() performs one operation over @p bytes
 * and returns a checksum-ish value so the compiler cannot elide the work.
 */
class MemOpHarness
{
  public:
    /** Allocate source/destination buffers of @p capacity bytes. */
    explicit MemOpHarness(size_t capacity);

    /** Buffer capacity in bytes. */
    size_t capacity() const { return src_.size(); }

    /**
     * Execute @p op over the first @p bytes.
     * @throws FatalError when bytes exceeds the capacity.
     */
    std::uint64_t run(MemOp op, size_t bytes);

  private:
    std::vector<std::uint8_t> src_;
    std::vector<std::uint8_t> dst_;
    std::uint8_t fill_ = 0;
};

} // namespace accel::kernels

#include "kernels/pool_allocator.hh"

#include <bit>
#include <new>
#include <sstream>

#include "util/logging.hh"

namespace accel::kernels {

std::string
PoolStats::summaryJson() const
{
    std::ostringstream os;
    os << "{\"allocations\": " << allocations << ", \"frees\": "
       << frees << ", \"sized_frees\": " << sizedFrees
       << ", \"chunk_refills\": " << chunkRefills
       << ", \"bytes_requested\": " << bytesRequested
       << ", \"live_blocks\": " << liveBlocks << "}";
    return os.str();
}

PoolAllocator::PoolAllocator()
{
    // Size classes: 16, 32, 48, 64, then doubling to kMaxBlockSize.
    for (size_t s = 16; s <= 64; s += 16)
        classSizes_.push_back(s);
    for (size_t s = 128; s <= kMaxBlockSize; s *= 2)
        classSizes_.push_back(s);
    freeLists_.assign(classSizes_.size(), nullptr);
}

PoolAllocator::~PoolAllocator()
{
    for (const Chunk &chunk : chunks_)
        ::operator delete(chunk.base);
}

size_t
PoolAllocator::sizeClassCount() const
{
    return classSizes_.size();
}

size_t
PoolAllocator::sizeClassFor(size_t bytes) const
{
    require(bytes > 0, "PoolAllocator: zero-byte allocation");
    require(bytes <= kMaxBlockSize, "PoolAllocator: request too large");
    // O(1): classes 0..3 cover 16/32/48/64 in 16-byte steps; beyond
    // that they double, so the index follows the bit width.
    if (bytes <= 64)
        return (bytes - 1) / 16;
    return 4 + static_cast<size_t>(std::bit_width(bytes - 1)) - 7;
}

size_t
PoolAllocator::classBlockSize(size_t cls) const
{
    ensure(cls < classSizes_.size(), "PoolAllocator: bad size class");
    return classSizes_[cls];
}

void
PoolAllocator::refill(size_t cls)
{
    size_t block = classSizes_[cls];
    auto *base = static_cast<std::uint8_t *>(::operator new(kChunkSize));
    chunks_.push_back({base, cls});
    auto addr = reinterpret_cast<std::uintptr_t>(base);
    for (size_t page = 0; page < kChunkSize / kPageSize; ++page)
        pageMap_[addr + page * kPageSize] = cls;
    size_t count = kChunkSize / block;
    ensure(count > 0, "PoolAllocator: chunk smaller than block");
    for (size_t i = 0; i < count; ++i) {
        auto *node = reinterpret_cast<FreeNode *>(base + i * block);
        node->next = freeLists_[cls];
        freeLists_[cls] = node;
    }
    ++stats_.chunkRefills;
}

void *
PoolAllocator::allocate(size_t bytes)
{
    size_t cls = sizeClassFor(bytes);
    if (freeLists_[cls] == nullptr)
        refill(cls);
    FreeNode *node = freeLists_[cls];
    freeLists_[cls] = node->next;
    ++stats_.allocations;
    stats_.bytesRequested += bytes;
    ++stats_.liveBlocks;
    return node;
}

size_t
PoolAllocator::pageMapClassOf(const void *ptr) const
{
    // The size-class recovery the paper calls out as cache-hostile:
    // unsized free() must look the page up in a map. Blocks never span
    // pages (the largest block is below kPageSize * 16 and chunks are
    // page-aligned by class), so the page covering ptr decides — but a
    // block may *start* mid-page only within its own chunk, so round
    // down to the page and accept a hit on the owning chunk's range.
    auto addr = reinterpret_cast<std::uintptr_t>(ptr);
    auto it = pageMap_.upper_bound(addr);
    if (it == pageMap_.begin())
        fatal("PoolAllocator: pointer not owned by this pool");
    --it;
    if (addr - it->first >= kPageSize)
        fatal("PoolAllocator: pointer not owned by this pool");
    return it->second;
}

void
PoolAllocator::free(void *ptr)
{
    require(ptr != nullptr, "PoolAllocator: freeing null");
    size_t cls = pageMapClassOf(ptr);
    auto *node = static_cast<FreeNode *>(ptr);
    node->next = freeLists_[cls];
    freeLists_[cls] = node;
    ++stats_.frees;
    ensure(stats_.liveBlocks > 0, "PoolAllocator: free without allocate");
    --stats_.liveBlocks;
}

void
PoolAllocator::sizedFree(void *ptr, size_t bytes)
{
    require(ptr != nullptr, "PoolAllocator: freeing null");
    size_t cls = sizeClassFor(bytes);
    auto *node = static_cast<FreeNode *>(ptr);
    node->next = freeLists_[cls];
    freeLists_[cls] = node;
    ++stats_.sizedFrees;
    ensure(stats_.liveBlocks > 0, "PoolAllocator: free without allocate");
    --stats_.liveBlocks;
}

} // namespace accel::kernels

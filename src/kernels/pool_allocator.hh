/**
 * @file
 * Size-class pool allocator.
 *
 * The paper highlights allocation and free as expensive leaves: free()
 * takes no size parameter, so TCMalloc-style allocators perform a lookup
 * to recover the size class, which caches poorly. This allocator models
 * both designs: free() recovers the size class from a page map (the
 * expensive path the paper describes) while sizedFree() takes the block
 * size directly (the C++14 sized-deallocation optimization). The
 * allocation calibration micro-benchmark contrasts the two to justify
 * Table 7's A = 1.5 for on-chip allocation acceleration (Mallacc-style).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace accel::kernels {

/** Statistics the allocator maintains for tests and benches. */
struct PoolStats
{
    std::uint64_t allocations = 0;
    std::uint64_t frees = 0;
    std::uint64_t sizedFrees = 0;
    std::uint64_t chunkRefills = 0;
    std::uint64_t bytesRequested = 0;
    std::uint64_t liveBlocks = 0;

    /** Every counter above as one JSON object (report surface). */
    std::string summaryJson() const;
};

/**
 * A segregated free-list allocator with power-of-two-ish size classes.
 *
 * Blocks are carved from fixed-size chunks obtained from ::operator new;
 * a page map (chunk base -> size class) supports unsized free(). All
 * memory is returned when the allocator is destroyed; outstanding blocks
 * become invalid at that point.
 */
class PoolAllocator
{
  public:
    /** Largest serviceable request; bigger requests throw FatalError. */
    static constexpr size_t kMaxBlockSize = 64 * 1024;

    PoolAllocator();
    ~PoolAllocator();

    PoolAllocator(const PoolAllocator &) = delete;
    PoolAllocator &operator=(const PoolAllocator &) = delete;

    /**
     * Allocate at least @p bytes (1..kMaxBlockSize).
     * @throws FatalError for zero or oversized requests.
     */
    void *allocate(size_t bytes);

    /**
     * Free without a size: recovers the size class via the page map, the
     * expensive path the paper describes.
     * @throws FatalError when @p ptr was not allocated by this pool.
     */
    void free(void *ptr);

    /**
     * Free with the original request size: skips the page-map lookup
     * (C++ sized deallocation).
     */
    void sizedFree(void *ptr, size_t bytes);

    /** Number of size classes. */
    size_t sizeClassCount() const;

    /** Size class index for a request. @throws FatalError when oversized. */
    size_t sizeClassFor(size_t bytes) const;

    /** Block size of a size class. */
    size_t classBlockSize(size_t cls) const;

    /** Counters. */
    const PoolStats &stats() const { return stats_; }

  private:
    struct FreeNode
    {
        FreeNode *next;
    };

    struct Chunk
    {
        std::uint8_t *base;
        size_t sizeClass;
    };

    static constexpr size_t kChunkSize = 256 * 1024;
    static constexpr size_t kPageSize = 4 * 1024;

    std::vector<size_t> classSizes_;
    std::vector<FreeNode *> freeLists_;
    std::vector<Chunk> chunks_;
    /**
     * Page map: page base address -> size class, consulted by unsized
     * free(). This is the lookup the paper calls out as cache-hostile
     * ("TCMalloc performs a hash lookup to get the size class").
     */
    std::map<std::uintptr_t, size_t> pageMap_;
    PoolStats stats_;

    void refill(size_t cls);
    size_t pageMapClassOf(const void *ptr) const;
};

} // namespace accel::kernels

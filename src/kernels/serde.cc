#include "kernels/serde.hh"

#include <cstring>

#include "kernels/lz_compress.hh" // varint helpers
#include "util/logging.hh"
#include "util/rng.hh"

namespace accel::kernels {

namespace {

constexpr std::uint8_t kTypeInt = 1;
constexpr std::uint8_t kTypeDouble = 2;
constexpr std::uint8_t kTypeString = 3;
constexpr std::uint8_t kTypeIntList = 4;

} // namespace

std::uint64_t
zigzagEncode(std::int64_t value)
{
    return (static_cast<std::uint64_t>(value) << 1) ^
           static_cast<std::uint64_t>(value >> 63);
}

std::int64_t
zigzagDecode(std::uint64_t value)
{
    return static_cast<std::int64_t>(value >> 1) ^
           -static_cast<std::int64_t>(value & 1);
}

void
SerdeMessage::set(std::uint32_t tag, SerdeValue value)
{
    require(tag != 0, "SerdeMessage: tag 0 is the end marker");
    fields_[tag] = std::move(value);
}

bool
SerdeMessage::has(std::uint32_t tag) const
{
    return fields_.count(tag) > 0;
}

const SerdeValue &
SerdeMessage::get(std::uint32_t tag) const
{
    auto it = fields_.find(tag);
    require(it != fields_.end(), "SerdeMessage: missing field");
    return it->second;
}

std::vector<std::uint8_t>
serialize(const SerdeMessage &message)
{
    std::vector<std::uint8_t> out;
    for (const auto &[tag, value] : message.fields()) {
        putVarint(out, tag);
        if (const auto *i = std::get_if<std::int64_t>(&value)) {
            out.push_back(kTypeInt);
            putVarint(out, zigzagEncode(*i));
        } else if (const auto *d = std::get_if<double>(&value)) {
            out.push_back(kTypeDouble);
            std::uint64_t bits;
            std::memcpy(&bits, d, sizeof(bits));
            for (int b = 0; b < 8; ++b)
                out.push_back(static_cast<std::uint8_t>(bits >> (8 * b)));
        } else if (const auto *s = std::get_if<std::string>(&value)) {
            out.push_back(kTypeString);
            putVarint(out, s->size());
            out.insert(out.end(), s->begin(), s->end());
        } else {
            const auto &list =
                std::get<std::vector<std::int64_t>>(value);
            out.push_back(kTypeIntList);
            putVarint(out, list.size());
            for (std::int64_t v : list)
                putVarint(out, zigzagEncode(v));
        }
    }
    out.push_back(0x00);
    return out;
}

SerdeMessage
deserialize(const std::vector<std::uint8_t> &wire)
{
    SerdeMessage message;
    size_t pos = 0;
    while (true) {
        std::uint64_t tag = getVarint(wire, pos);
        if (tag == 0)
            break;
        require(tag <= 0xffffffffULL, "serde: tag out of range");
        require(!message.has(static_cast<std::uint32_t>(tag)),
                "serde: duplicate tag");
        require(pos < wire.size(), "serde: truncated field type");
        std::uint8_t type = wire[pos++];
        switch (type) {
          case kTypeInt: {
            message.set(static_cast<std::uint32_t>(tag),
                        zigzagDecode(getVarint(wire, pos)));
            break;
          }
          case kTypeDouble: {
            require(pos + 8 <= wire.size(), "serde: truncated double");
            std::uint64_t bits = 0;
            for (int b = 0; b < 8; ++b) {
                bits |= static_cast<std::uint64_t>(wire[pos + b])
                        << (8 * b);
            }
            pos += 8;
            double d;
            std::memcpy(&d, &bits, sizeof(d));
            message.set(static_cast<std::uint32_t>(tag), d);
            break;
          }
          case kTypeString: {
            std::uint64_t len = getVarint(wire, pos);
            require(pos + len <= wire.size(), "serde: truncated string");
            message.set(static_cast<std::uint32_t>(tag),
                        std::string(wire.begin() + pos,
                                    wire.begin() + pos + len));
            pos += len;
            break;
          }
          case kTypeIntList: {
            std::uint64_t count = getVarint(wire, pos);
            require(count <= wire.size(),
                    "serde: implausible list length");
            std::vector<std::int64_t> list;
            list.reserve(count);
            for (std::uint64_t i = 0; i < count; ++i)
                list.push_back(zigzagDecode(getVarint(wire, pos)));
            message.set(static_cast<std::uint32_t>(tag),
                        std::move(list));
            break;
          }
          default:
            fatal("serde: unknown field type");
        }
    }
    require(pos == wire.size(), "serde: trailing bytes after message");
    return message;
}

SerdeMessage
makeStoryMessage(size_t approxBytes, std::uint64_t seed)
{
    Rng rng(seed, 0x73657264654dULL);
    SerdeMessage msg;
    msg.set(1, static_cast<std::int64_t>(rng.next())); // story id
    msg.set(2, static_cast<std::int64_t>(rng.next())); // author id
    msg.set(3, rng.uniform());                         // relevance

    // Text blob: about 40% of the target size.
    size_t text_len = approxBytes * 2 / 5;
    std::string text;
    text.reserve(text_len);
    static const char *words[] = {"story", "ranked", "by", "relevance",
                                  "for", "user", "feed", "segment"};
    while (text.size() < text_len) {
        text += words[rng.below(8)];
        text += ' ';
    }
    msg.set(4, std::move(text));

    // Feature ids: fill the remainder (~2 wire bytes per small id).
    size_t count = approxBytes / 4;
    std::vector<std::int64_t> features;
    features.reserve(count);
    for (size_t i = 0; i < count; ++i)
        features.push_back(static_cast<std::int64_t>(rng.below(1 << 14)));
    msg.set(5, std::move(features));
    return msg;
}

} // namespace accel::kernels

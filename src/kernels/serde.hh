/**
 * @file
 * Compact binary serialization (Thrift-style).
 *
 * The characterization's Serialization functionality is RPC
 * serialization/deserialization; this kernel implements a compact
 * binary wire format — zigzag varint integers, length-prefixed strings
 * and lists — over a small message model, so the serialization Cb can
 * be calibrated from real encode/decode work and the round-trip
 * property can be tested.
 *
 * Wire format:
 *   message := field* 0x00
 *   field   := tag(varint, != 0) type(1B) payload
 *   types   : 1 = zigzag varint int64, 2 = double (8B LE),
 *             3 = string (varint len + bytes),
 *             4 = list<int64> (varint count + zigzag varints)
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace accel::kernels {

/** A field value in a message. */
using SerdeValue = std::variant<std::int64_t, double, std::string,
                                std::vector<std::int64_t>>;

/** A message: ordered (tag -> value) fields; tags must be positive. */
class SerdeMessage
{
  public:
    /** Set a field (overwrites). @throws FatalError for tag 0. */
    void set(std::uint32_t tag, SerdeValue value);

    /** True when the tag is present. */
    bool has(std::uint32_t tag) const;

    /** Field access. @throws FatalError when absent. */
    const SerdeValue &get(std::uint32_t tag) const;

    /** Number of fields. */
    size_t size() const { return fields_.size(); }

    const std::map<std::uint32_t, SerdeValue> &fields() const
    {
        return fields_;
    }

    bool operator==(const SerdeMessage &other) const = default;

  private:
    std::map<std::uint32_t, SerdeValue> fields_;
};

/** Encode a message to its wire form. */
std::vector<std::uint8_t> serialize(const SerdeMessage &message);

/**
 * Decode a wire buffer.
 * @throws FatalError on malformed input (truncation, bad types,
 *         duplicate or zero tags).
 */
SerdeMessage deserialize(const std::vector<std::uint8_t> &wire);

/** Zigzag-encode a signed integer. */
std::uint64_t zigzagEncode(std::int64_t value);

/** Zigzag-decode to a signed integer. */
std::int64_t zigzagDecode(std::uint64_t value);

/**
 * Build a feed-story-like message of roughly @p approxBytes on the
 * wire (ids, scores, a text blob, and a feature-id list) for
 * calibration workloads. Deterministic for a given seed.
 */
SerdeMessage makeStoryMessage(size_t approxBytes, std::uint64_t seed);

} // namespace accel::kernels

/**
 * @file
 * SHA-256 (FIPS 180-4).
 *
 * The characterization's "Hashing" leaf category is dominated by SHA-style
 * digests; this reference implementation backs the hashing calibration
 * micro-benchmark and is validated against the NIST test vectors.
 */

#pragma once

#include <cstddef>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace accel::kernels {

/** Incremental SHA-256 hasher. */
class Sha256
{
  public:
    static constexpr size_t kDigestSize = 32;
    static constexpr size_t kBlockSize = 64;

    Sha256();

    /** Absorb @p len bytes. */
    void update(const std::uint8_t *data, size_t len);

    /** Absorb a byte vector. */
    void update(const std::vector<std::uint8_t> &data);

    /** Finalize and return the 32-byte digest; the hasher is consumed. */
    std::array<std::uint8_t, kDigestSize> finish();

    /** One-shot digest of a byte vector. */
    static std::array<std::uint8_t, kDigestSize>
    digest(const std::vector<std::uint8_t> &data);

    /** One-shot digest of a string's bytes. */
    static std::array<std::uint8_t, kDigestSize>
    digest(const std::string &data);

    /** Lower-case hex rendering of a digest. */
    static std::string hex(const std::array<std::uint8_t, kDigestSize> &d);

  private:
    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, kBlockSize> buffer_;
    size_t bufferLen_ = 0;
    std::uint64_t totalBytes_ = 0;
    bool finished_ = false;

    void compress(const std::uint8_t block[kBlockSize]);

    /** Buffer-and-compress without touching the message length. */
    void absorb(const std::uint8_t *data, size_t len);
};

} // namespace accel::kernels

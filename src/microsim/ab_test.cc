#include "microsim/ab_test.hh"

#include <cmath>
#include <sstream>

#include "microsim/service_spec.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace accel::microsim {

double
AbResult::measuredSpeedup() const
{
    require(baseline.qps() > 0, "AbResult: baseline measured no requests");
    return treatment.qps() / baseline.qps();
}

double
AbResult::measuredLatencyReduction() const
{
    require(treatment.meanLatencyCycles() > 0,
            "AbResult: treatment measured no latency");
    return baseline.meanLatencyCycles() / treatment.meanLatencyCycles();
}

AbResult
runAbTest(const AbExperiment &experiment)
{
    // The two arms share nothing but the (copied) experiment config and
    // are seed-deterministic, so they run concurrently on the pool; each
    // arm writes its own result slot, keeping metrics bit-identical to
    // running them back to back.
    AbResult result;
    parallelFor(2, [&](size_t arm) {
        ServiceConfig cfg = experiment.service;
        // The baseline never offloads, so a Sync-OS treatment's thread
        // pool shape is kept identical; only the acceleration flag
        // differs.
        cfg.accelerated = (arm == 1);
        ServiceSim sim(ServiceSpec(arm == 0 ? "baseline" : "treatment")
                           .service(cfg)
                           .accelerator(experiment.accelerator)
                           .tier(experiment.tier)
                           .workload(experiment.workload)
                           .seed(experiment.seed));
        ServiceMetrics metrics = sim.run(experiment.measureSeconds,
                                         experiment.warmupSeconds);
        (arm == 0 ? result.baseline : result.treatment) =
            std::move(metrics);
    });
    return result;
}

double
ResilienceAbResult::goodputRatio() const
{
    require(hostOnly.goodputQps() > 0,
            "ResilienceAbResult: host-only arm measured no goodput");
    return resilient.goodputQps() / hostOnly.goodputQps();
}

ResilienceAbResult
runResilienceAbTest(const AbExperiment &experiment)
{
    ResilienceAbResult result;
    parallelFor(2, [&](size_t arm) {
        ServiceConfig svc = experiment.service;
        AcceleratorConfig acc = experiment.accelerator;
        TierConfig tier = experiment.tier;
        if (arm == 0) {
            // Control: the all-host endpoint. Faults only affect the
            // device, and the resilience policy is moot without
            // offloads — strip both so validation can't trip on a
            // breaker-without-retry combination. The tier (and its
            // per-replica plans) goes with them: no offloads, no tier.
            svc.accelerated = false;
            svc.retry = RetryPolicy();
            svc.breaker = BreakerConfig();
            acc.faultPlan.reset();
            tier = TierConfig();
        }
        ServiceSim sim(ServiceSpec(arm == 0 ? "host-only" : "resilient")
                           .service(svc)
                           .accelerator(acc)
                           .tier(tier)
                           .workload(experiment.workload)
                           .seed(experiment.seed));
        ServiceMetrics metrics = sim.run(experiment.measureSeconds,
                                         experiment.warmupSeconds);
        (arm == 0 ? result.hostOnly : result.resilient) =
            std::move(metrics);
    });
    return result;
}

model::Params
deriveModelParams(const AbExperiment &experiment, const AbResult &result)
{
    const ServiceConfig &svc = experiment.service;
    const WorkloadSpec &wl = experiment.workload;

    model::Params p;
    p.hostCycles =
        static_cast<double>(svc.cores) * svc.clockGHz * 1e9;
    p.alpha = wl.impliedAlpha();

    double above = 1.0;
    double mean_offload_bytes = 0.0;
    if (wl.kernelsPerRequest > 0) {
        ensure(wl.granularity != nullptr, "deriveModelParams: no sizes");
        above = wl.granularity->fractionAtLeast(svc.minOffloadBytes);
        double mean_all = wl.granularity->mean();
        mean_offload_bytes = above > 0
            ? mean_all * wl.granularity->valueFractionAtLeast(
                             svc.minOffloadBytes) / above
            : 0.0;
    }

    // n: profitable offloads per second, measured on the unaccelerated
    // system the way the paper counts invocations in production.
    p.offloads = result.baseline.qps() *
        static_cast<double>(wl.kernelsPerRequest) * above;

    p.setupCycles = svc.offloadSetupCycles;
    p.queueCycles = 0.0; // emergent in the simulator; see accelerator stats
    // The interface latency consumes host cycles only when the core is
    // held for the transfer: always under Sync, otherwise only when the
    // driver synchronously awaits the device's acknowledgement. A
    // remote/async no-ack offload overlaps the transfer with host work,
    // which is exactly why the paper sets L + Q = 0 for case study 3.
    bool host_pays_transfer =
        svc.design == model::ThreadingDesign::Sync ||
        svc.driverWaitsForAck;
    p.interfaceCycles = host_pays_transfer
        ? experiment.accelerator.fixedLatencyCycles +
              experiment.accelerator.latencyCyclesPerByte *
                  mean_offload_bytes
        : 0.0;
    p.threadSwitchCycles = svc.contextSwitchCycles;
    p.accelFactor = experiment.accelerator.speedupFactor;
    // The paper's count-weighted partial-offload rule (see DESIGN.md).
    p.offloadedFraction = above;
    p.strategy = svc.strategy;
    p.validate();
    return p;
}

std::string
compareLine(const AbExperiment &experiment, const AbResult &result)
{
    model::Params params = deriveModelParams(experiment, result);
    model::Accelerometer model(params);
    double est = model.speedup(experiment.service.design);
    double real = result.measuredSpeedup();
    double err_pp = (est - real) * 100.0;

    std::ostringstream os;
    os << "est +" << fmtPct(est - 1.0, 2) << "  real +"
       << fmtPct(real - 1.0, 2) << "  err "
       << fmtF(std::abs(err_pp), 2) << "pp";
    return os.str();
}

} // namespace accel::microsim

/**
 * @file
 * A/B testing harness (paper §4 validation methodology).
 *
 * "A/B testing is the process of comparing two identical systems that
 * differ only in a single variable." The harness runs two simulated
 * service instances — identical configuration, same workload seed —
 * differing only in whether the kernel is accelerated, and reports the
 * measured throughput speedup and latency change alongside the
 * Accelerometer model's estimate.
 */

#pragma once

#include <string>

#include "microsim/service_sim.hh"
#include "model/accelerometer.hh"

namespace accel::microsim {

/** Outcome of one A/B experiment. */
struct AbResult
{
    ServiceMetrics baseline;
    ServiceMetrics treatment;

    /** Measured throughput speedup: treatment QPS / baseline QPS. */
    double measuredSpeedup() const;

    /** Measured latency reduction: baseline mean / treatment mean. */
    double measuredLatencyReduction() const;
};

/** An A/B experiment definition. */
struct AbExperiment
{
    ServiceConfig service;      //!< treatment config (accelerated = true)
    AcceleratorConfig accelerator;
    /** Replica tier in front of the device; default = single device. */
    TierConfig tier;
    WorkloadSpec workload;
    std::uint64_t seed = 1;
    double measureSeconds = 1.0;
    double warmupSeconds = 0.1;
};

/**
 * Run baseline (kernels on host) and treatment (kernels offloaded) with
 * identical seeds and return both measurements.
 */
AbResult runAbTest(const AbExperiment &experiment);

/**
 * Outcome of a resilience A/B (faulted-accelerated vs host-only).
 *
 * Unlike the acceleration A/B, the control arm here is the degraded
 * endpoint the breaker converges to: every kernel on the host, no
 * faults. The question a resilience experiment answers is how much
 * goodput the fault-handling policy preserves relative to giving up on
 * the accelerator entirely.
 */
struct ResilienceAbResult
{
    ServiceMetrics hostOnly;  //!< control: host execution, faults stripped
    ServiceMetrics resilient; //!< treatment: accelerated under the plan

    /** Goodput retained: resilient goodput / host-only goodput. */
    double goodputRatio() const;
};

/**
 * Run the host-only control (acceleration off, fault plan and
 * retry/breaker policy stripped) against the configured treatment with
 * identical seeds and return both measurements.
 */
ResilienceAbResult runResilienceAbTest(const AbExperiment &experiment);

/**
 * Derive the Accelerometer model parameters that describe @p experiment,
 * the way the paper derives them from production measurements: C from
 * the baseline run's busy cycles, α from the workload's kernel share,
 * n from the offload rate, overheads from the service config, and L
 * from the accelerator interface at the workload's mean granularity.
 */
model::Params deriveModelParams(const AbExperiment &experiment,
                                const AbResult &result);

/**
 * One-line comparison: measured vs model-estimated speedup and the
 * estimation error in percentage points, e.g.
 * "est +15.7% real +14.0% err 1.7pp".
 */
std::string compareLine(const AbExperiment &experiment,
                        const AbResult &result);

} // namespace accel::microsim

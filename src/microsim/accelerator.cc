#include "microsim/accelerator.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace accel::microsim {

void
AcceleratorConfig::validate() const
{
    require(speedupFactor >= 1.0, "Accelerator: A must be >= 1");
    require(fixedLatencyCycles >= 0, "Accelerator: negative fixed latency");
    require(latencyCyclesPerByte >= 0,
            "Accelerator: negative per-byte latency");
    require(channels >= 1, "Accelerator: need at least one channel");
}

Accelerator::Accelerator(sim::EventQueue &eq,
                         const AcceleratorConfig &config)
    : eq_(eq), config_(config)
{
    config_.validate();
}

double
Accelerator::transferCycles(double bytes) const
{
    return config_.fixedLatencyCycles +
           config_.latencyCyclesPerByte * bytes;
}

void
Accelerator::offload(double hostEquivalentCycles, double bytes,
                     std::function<void()> &&onComplete,
                     bool transferPaidByHost)
{
    require(hostEquivalentCycles >= 0, "Accelerator: negative work");
    require(bytes >= 0, "Accelerator: negative granularity");

    double transfer = transferPaidByHost ? 0.0 : transferCycles(bytes);
    double service = hostEquivalentCycles / config_.speedupFactor;
    stats_.transferCycles.add(transfer);

    // The offload reaches the device queue after the transfer completes.
    eq_.scheduleIn(static_cast<sim::Tick>(std::llround(transfer)), [this,
        service, cb = std::move(onComplete)]() mutable {
        queue_.push_back(Pending{service, eq_.now(), std::move(cb)});
        stats_.maxQueueDepth =
            std::max<std::uint64_t>(stats_.maxQueueDepth, queue_.size());
        tryServe();
    });
}

void
Accelerator::tryServe()
{
    while (busyChannels_ < config_.channels && !queue_.empty()) {
        Pending item = std::move(queue_.front());
        queue_.pop_front();
        ++busyChannels_;

        double wait = static_cast<double>(eq_.now() - item.enqueued);
        stats_.queueWaitCycles.add(wait);
        stats_.serviceCycles.add(item.serviceCycles);
        stats_.busyCycles += item.serviceCycles;

        eq_.scheduleIn(
            static_cast<sim::Tick>(std::llround(item.serviceCycles)),
            [this, cb = std::move(item.onComplete)]() mutable {
                ensure(busyChannels_ > 0,
                       "Accelerator: channel underflow");
                --busyChannels_;
                ++stats_.served;
                cb();
                tryServe();
            });
    }
}

} // namespace accel::microsim

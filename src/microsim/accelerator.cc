#include "microsim/accelerator.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "util/json_fmt.hh"
#include "util/logging.hh"

namespace accel::microsim {

std::string
AcceleratorStats::summaryJson() const
{
    std::ostringstream os;
    os << "{\"served\": " << served << ", \"busy_cycles\": "
       << jsonNumber(busyCycles) << ", \"max_queue_depth\": "
       << maxQueueDepth << ", \"queue_wait_cycles\": "
       << queueWaitCycles.summaryJson() << ", \"service_cycles\": "
       << serviceCycles.summaryJson() << ", \"transfer_cycles\": "
       << transferCycles.summaryJson() << ", \"dropped_responses\": "
       << droppedResponses << ", \"late_responses\": " << lateResponses
       << ", \"spiked_transfers\": " << spikedTransfers
       << ", \"lost_to_device_failure\": " << lostToDeviceFailure
       << ", \"stall_deferrals\": " << stallDeferrals << "}";
    return os.str();
}

void
AcceleratorConfig::validate() const
{
    require(std::isfinite(speedupFactor) && speedupFactor >= 1.0,
            "AcceleratorConfig.speedupFactor must be finite and >= 1");
    require(std::isfinite(fixedLatencyCycles) && fixedLatencyCycles >= 0,
            "AcceleratorConfig.fixedLatencyCycles must be finite and "
            ">= 0");
    require(std::isfinite(latencyCyclesPerByte) &&
                latencyCyclesPerByte >= 0,
            "AcceleratorConfig.latencyCyclesPerByte must be finite and "
            ">= 0");
    require(channels >= 1, "AcceleratorConfig.channels must be >= 1");
    if (faultPlan)
        faultPlan->validate();
}

Accelerator::Accelerator(sim::EventQueue &eq,
                         const AcceleratorConfig &config)
    : eq_(eq), config_(config)
{
    config_.validate();
    // An inert plan (all defaults) is dropped here so every later
    // check is a single null test and fault-off behaviour is the
    // pre-fault code path.
    if (config_.faultPlan && !config_.faultPlan->active())
        config_.faultPlan.reset();
}

double
Accelerator::transferCycles(double bytes) const
{
    return config_.fixedLatencyCycles +
           config_.latencyCyclesPerByte * bytes;
}

void
Accelerator::offload(double hostEquivalentCycles, double bytes,
                     sim::InlineCallback &&onComplete,
                     bool transferPaidByHost)
{
    require(hostEquivalentCycles >= 0, "Accelerator: negative work");
    require(bytes >= 0, "Accelerator: negative granularity");

    double transfer = transferPaidByHost ? 0.0 : transferCycles(bytes);
    double service = hostEquivalentCycles / config_.speedupFactor;

    Pending item;
    item.serviceCycles = service;
    item.lateResponseCycles = 0.0;
    item.dropResponse = false;
    item.onComplete = std::move(onComplete);

    if (const faults::FaultPlan *plan = config_.faultPlan.get()) {
        faults::FaultDraw d = plan->draw(offloadIndex_++);
        if (d.transferFactor != 1.0 && !transferPaidByHost) {
            // Host-paid transfers were already charged at the nominal
            // latency on the core; spikes only hit the device-side leg.
            transfer *= d.transferFactor;
            ++stats_.spikedTransfers;
        }
        item.dropResponse = d.dropResponse;
        item.lateResponseCycles = d.lateResponseCycles;
    }
    stats_.transferCycles.add(transfer);

    // The offload reaches the device queue after the transfer completes.
    eq_.scheduleIn(static_cast<sim::Tick>(std::llround(transfer)),
                   [this, it = std::move(item)]() mutable {
                       enqueue(std::move(it));
                   });
}

void
Accelerator::enqueue(Pending &&item)
{
    if (config_.faultPlan && config_.faultPlan->failedAt(eq_.now())) {
        // The device is resetting: the request vanishes at the
        // interface and its completion callback never fires.
        ++stats_.lostToDeviceFailure;
        return;
    }
    item.enqueued = eq_.now();
    queue_.push_back(std::move(item));
    stats_.maxQueueDepth =
        std::max<std::uint64_t>(stats_.maxQueueDepth, queue_.size());
    tryServe();
}

void
Accelerator::tryServe()
{
    const faults::FaultPlan *plan = config_.faultPlan.get();
    if (plan && plan->failedAt(eq_.now())) {
        // Device reset: everything queued is lost. Wake up at the
        // recovery tick (if one exists) to resume service.
        stats_.lostToDeviceFailure += queue_.size();
        queue_.clear();
        if (plan->deviceRecoverAtTick != faults::kNeverTick &&
            !recoveryWakeScheduled_) {
            recoveryWakeScheduled_ = true;
            eq_.schedule(plan->deviceRecoverAtTick,
                         [this]() { tryServe(); });
        }
        return;
    }
    if (plan && !queue_.empty() && plan->stalledAt(eq_.now())) {
        // Channel stall: nothing new starts until the window ends.
        ++stats_.stallDeferrals;
        sim::Tick end = plan->stallEnd(eq_.now());
        if (stallWakeAt_ != end) {
            stallWakeAt_ = end;
            eq_.schedule(end, [this]() { tryServe(); });
        }
        return;
    }
    while (busyChannels_ < config_.channels && !queue_.empty()) {
        Pending item = std::move(queue_.front());
        queue_.pop_front();
        ++busyChannels_;

        double wait = static_cast<double>(eq_.now() - item.enqueued);
        stats_.queueWaitCycles.add(wait);
        stats_.serviceCycles.add(item.serviceCycles);
        stats_.busyCycles += item.serviceCycles;

        eq_.scheduleIn(
            static_cast<sim::Tick>(std::llround(item.serviceCycles)),
            [this, it = std::move(item)]() mutable {
                finishService(std::move(it));
            });
    }
}

void
Accelerator::finishService(Pending &&item)
{
    ensure(busyChannels_ > 0, "Accelerator: channel underflow");
    --busyChannels_;
    const faults::FaultPlan *plan = config_.faultPlan.get();
    if (plan && plan->failedAt(eq_.now())) {
        // The reset raced the in-flight work: its completion is lost.
        ++stats_.lostToDeviceFailure;
        tryServe();
        return;
    }
    ++stats_.served;
    if (item.dropResponse) {
        ++stats_.droppedResponses;
    } else if (item.lateResponseCycles > 0) {
        ++stats_.lateResponses;
        eq_.scheduleIn(static_cast<sim::Tick>(
                           std::llround(item.lateResponseCycles)),
                       std::move(item.onComplete));
    } else {
        item.onComplete();
    }
    tryServe();
}

} // namespace accel::microsim

/**
 * @file
 * Accelerator device model for the microservice simulator.
 *
 * A device with one or more service channels behind a FIFO queue. An
 * offload arrives after its interface transfer completes, waits for a
 * free channel, is served at the device's speedup factor, and invokes a
 * completion callback. Queue waits are emergent, giving the analytical
 * model's Q parameter a measurable counterpart.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/event_queue.hh"
#include "stats/online_stats.hh"

namespace accel::microsim {

/** Static description of an accelerator device. */
struct AcceleratorConfig
{
    /** A: service time = host-equivalent cycles / speedupFactor. */
    double speedupFactor = 1.0;

    /** Fixed interface transfer cycles per offload (part of L). */
    double fixedLatencyCycles = 0.0;

    /** Per-byte interface transfer cycles (the rest of L). */
    double latencyCyclesPerByte = 0.0;

    /** Parallel service channels. */
    std::uint32_t channels = 1;

    /** @throws FatalError on out-of-domain values. */
    void validate() const;
};

/** Observed device behaviour over a run. */
struct AcceleratorStats
{
    std::uint64_t served = 0;
    double busyCycles = 0.0;
    std::uint64_t maxQueueDepth = 0;
    OnlineStats queueWaitCycles;   //!< emergent Q per offload
    OnlineStats serviceCycles;
    OnlineStats transferCycles;
};

/** The device: transfer -> queue -> serve -> completion callback. */
class Accelerator
{
  public:
    /**
     * @param eq      simulation event queue (must outlive the device)
     * @param config  validated device description
     */
    Accelerator(sim::EventQueue &eq, const AcceleratorConfig &config);

    /**
     * Dispatch one offload.
     *
     * @param hostEquivalentCycles cycles the host would have spent
     * @param bytes                offload granularity (drives transfer)
     * @param onComplete           invoked when service finishes
     *                             (sink: moved into the device queue)
     * @param transferPaidByHost   true when the caller already held the
     *                             core for the transfer (driver-awaits-ack
     *                             designs); the device then skips its own
     *                             transfer delay so L is charged once
     */
    void offload(double hostEquivalentCycles, double bytes,
                 std::function<void()> &&onComplete,
                 bool transferPaidByHost = false);

    /** Clear statistics (used at the end of a warmup window). */
    void resetStats() { stats_ = AcceleratorStats{}; }

    /** Interface transfer cycles for a given granularity. */
    double transferCycles(double bytes) const;

    /** Current queue depth (offloads transferred but not yet served). */
    size_t queueDepth() const { return queue_.size(); }

    /** Observed statistics. */
    const AcceleratorStats &stats() const { return stats_; }

  private:
    struct Pending
    {
        double serviceCycles;
        sim::Tick enqueued;
        std::function<void()> onComplete;
    };

    sim::EventQueue &eq_;
    AcceleratorConfig config_;
    std::deque<Pending> queue_;
    std::uint32_t busyChannels_ = 0;
    AcceleratorStats stats_;

    void tryServe();
};

} // namespace accel::microsim

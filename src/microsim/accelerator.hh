/**
 * @file
 * Accelerator device model for the microservice simulator.
 *
 * A device with one or more service channels behind a FIFO queue. An
 * offload arrives after its interface transfer completes, waits for a
 * free channel, is served at the device's speedup factor, and invokes a
 * completion callback. Queue waits are emergent, giving the analytical
 * model's Q parameter a measurable counterpart.
 *
 * An optional FaultPlan makes the device misbehave deterministically:
 * transfers spike, completions arrive late or never, channels stall,
 * and the whole device can fail (and recover) at fixed ticks. Without a
 * plan the device takes the exact pre-fault code path, so fault-off
 * runs stay bit-identical.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "faults/fault_plan.hh"
#include "sim/event_queue.hh"
#include "stats/online_stats.hh"

namespace accel::microsim {

/** Static description of an accelerator device. */
struct AcceleratorConfig
{
    /** A: service time = host-equivalent cycles / speedupFactor. */
    double speedupFactor = 1.0;

    /** Fixed interface transfer cycles per offload (part of L). */
    double fixedLatencyCycles = 0.0;

    /** Per-byte interface transfer cycles (the rest of L). */
    double latencyCyclesPerByte = 0.0;

    /** Parallel service channels. */
    std::uint32_t channels = 1;

    /** Optional deterministic misbehaviour schedule (null = healthy). */
    std::shared_ptr<const faults::FaultPlan> faultPlan;

    /** @throws FatalError on out-of-domain values (names the field). */
    void validate() const;
};

/** Observed device behaviour over a run. */
struct AcceleratorStats
{
    std::uint64_t served = 0;
    double busyCycles = 0.0;
    std::uint64_t maxQueueDepth = 0;
    OnlineStats queueWaitCycles;   //!< emergent Q per offload
    OnlineStats serviceCycles;
    OnlineStats transferCycles;

    // --- fault-plan outcomes (all zero on a healthy device) ---
    std::uint64_t droppedResponses = 0;  //!< served but response lost
    std::uint64_t lateResponses = 0;     //!< response delayed
    std::uint64_t spikedTransfers = 0;   //!< transfer-latency spikes
    std::uint64_t lostToDeviceFailure = 0; //!< discarded by reset
    std::uint64_t stallDeferrals = 0;    //!< service starts deferred

    /** Every counter above as one JSON object (report surface). */
    std::string summaryJson() const;
};

/** The device: transfer -> queue -> serve -> completion callback. */
class Accelerator
{
  public:
    /**
     * @param eq      simulation event queue (must outlive the device)
     * @param config  validated device description
     */
    Accelerator(sim::EventQueue &eq, const AcceleratorConfig &config);

    /**
     * Dispatch one offload.
     *
     * Under a fault plan the completion callback may be invoked late or
     * never (dropped response, device failure); callers that need to
     * survive that race a deadline timer against it.
     *
     * @param hostEquivalentCycles cycles the host would have spent
     * @param bytes                offload granularity (drives transfer)
     * @param onComplete           invoked when service finishes
     *                             (sink: moved into the device queue)
     * @param transferPaidByHost   true when the caller already held the
     *                             core for the transfer (driver-awaits-ack
     *                             designs); the device then skips its own
     *                             transfer delay so L is charged once
     */
    void offload(double hostEquivalentCycles, double bytes,
                 sim::InlineCallback &&onComplete,
                 bool transferPaidByHost = false);

    /** Clear statistics (used at the end of a warmup window). */
    void resetStats() { stats_ = AcceleratorStats{}; }

    /** Interface transfer cycles for a given granularity. */
    double transferCycles(double bytes) const;

    /** Current queue depth (offloads transferred but not yet served). */
    size_t queueDepth() const { return queue_.size(); }

    /** Observed statistics. */
    const AcceleratorStats &stats() const { return stats_; }

  private:
    struct Pending
    {
        double serviceCycles;
        sim::Tick enqueued;
        double lateResponseCycles;
        bool dropResponse;
        sim::InlineCallback onComplete;
    };

    sim::EventQueue &eq_;
    AcceleratorConfig config_;
    std::deque<Pending> queue_;
    std::uint32_t busyChannels_ = 0;
    AcceleratorStats stats_;

    // --- fault-plan state ---
    std::uint64_t offloadIndex_ = 0;  //!< issue-order slot for draws
    sim::Tick stallWakeAt_ = 0;       //!< pending stall-resume event
    bool recoveryWakeScheduled_ = false;

    void enqueue(Pending &&item);
    void tryServe();
    void finishService(Pending &&item);
};

} // namespace accel::microsim

#include "microsim/arrival_program.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"
#include "util/string_utils.hh"

namespace accel::microsim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/**
 * Evaluate @p p inside the segment that contains @p from, at time
 * @p at (which must lie in the same segment, endpoint included). Used
 * by compose() to take the left limit at a breakpoint exactly.
 */
double
rateOn(const ArrivalProgram &p, double from, double at)
{
    for (const ArrivalSegment &s : p.segments) {
        if (from >= s.startSeconds &&
            (from < s.endSeconds || !std::isfinite(s.endSeconds))) {
            if (!std::isfinite(s.endSeconds) ||
                s.startRate == s.endRate) {
                return s.startRate;
            }
            double frac = (at - s.startSeconds) /
                          (s.endSeconds - s.startSeconds);
            return s.startRate + (s.endRate - s.startRate) * frac;
        }
    }
    // Past the last segment: the program holds its final rate.
    return p.segments.empty() ? 0.0 : p.segments.back().endRate;
}

} // namespace

double
ArrivalProgram::rateAt(double tSeconds) const
{
    if (segments.empty())
        return 0.0;
    double t = tSeconds;
    if (periodSeconds > 0.0) {
        t = std::fmod(t, periodSeconds);
        if (t < 0.0)
            t += periodSeconds;
    }
    if (t >= segments.back().endSeconds)
        return segments.back().endRate;
    return rateOn(*this, t, t);
}

double
ArrivalProgram::peakRate() const
{
    double peak = 0.0;
    for (const ArrivalSegment &s : segments)
        peak = std::max(peak, std::max(s.startRate, s.endRate));
    return peak;
}

double
ArrivalProgram::meanRate(double horizonSeconds) const
{
    require(std::isfinite(horizonSeconds) && horizonSeconds > 0.0,
            "ArrivalProgram::meanRate: horizon must be finite and > 0");
    if (segments.empty())
        return 0.0;

    // Integral of r over one pass of the segments clipped to [0, h],
    // plus the held tail beyond the last segment.
    auto passIntegral = [this](double h) {
        double area = 0.0;
        for (const ArrivalSegment &s : segments) {
            double lo = s.startSeconds;
            double hi = std::min(s.endSeconds, h);
            if (hi <= lo)
                continue;
            double rLo = rateOn(*this, lo, lo);
            double rHi = rateOn(*this, lo, hi);
            area += 0.5 * (rLo + rHi) * (hi - lo);
        }
        double lastEnd = segments.back().endSeconds;
        if (std::isfinite(lastEnd) && h > lastEnd)
            area += segments.back().endRate * (h - lastEnd);
        return area;
    };

    if (periodSeconds > 0.0) {
        double whole = std::floor(horizonSeconds / periodSeconds);
        double rest = horizonSeconds - whole * periodSeconds;
        double area = whole * passIntegral(periodSeconds);
        if (rest > 0.0)
            area += passIntegral(rest);
        return area / horizonSeconds;
    }
    return passIntegral(horizonSeconds) / horizonSeconds;
}

bool
ArrivalProgram::isConstant() const
{
    if (segments.empty())
        return false;
    double r = segments.front().startRate;
    for (const ArrivalSegment &s : segments) {
        if (s.startRate != r || s.endRate != r)
            return false;
    }
    return true;
}

void
ArrivalProgram::validate() const
{
    require(std::isfinite(periodSeconds) && periodSeconds >= 0.0,
            "ArrivalProgram.periodSeconds must be finite and >= 0");
    if (segments.empty()) {
        require(periodSeconds == 0.0,
                "ArrivalProgram.periodSeconds set without segments");
        return;
    }
    require(segments.front().startSeconds == 0.0,
            "ArrivalProgram.segments must start at t = 0");
    for (size_t i = 0; i < segments.size(); ++i) {
        const ArrivalSegment &s = segments[i];
        require(std::isfinite(s.startSeconds) && s.startSeconds >= 0.0,
                "ArrivalSegment.startSeconds must be finite and >= 0");
        require(s.endSeconds > s.startSeconds,
                "ArrivalSegment.endSeconds must exceed startSeconds");
        require(std::isfinite(s.startRate) && s.startRate >= 0.0,
                "ArrivalSegment.startRate must be finite and >= 0");
        require(std::isfinite(s.endRate) && s.endRate >= 0.0,
                "ArrivalSegment.endRate must be finite and >= 0");
        if (!std::isfinite(s.endSeconds)) {
            require(i + 1 == segments.size(),
                    "ArrivalProgram: only the last segment may be "
                    "unbounded");
            require(s.startRate == s.endRate,
                    "ArrivalProgram: an unbounded segment cannot ramp");
        }
        if (i > 0) {
            require(s.startSeconds == segments[i - 1].endSeconds,
                    "ArrivalProgram.segments must be contiguous");
        }
    }
    if (periodSeconds > 0.0) {
        require(segments.back().endSeconds == periodSeconds,
                "ArrivalProgram.segments must tile [0, periodSeconds) "
                "exactly when periodic");
    }
    require(peakRate() > 0.0,
            "ArrivalProgram.segments must reach a positive rate");
}

ArrivalProgram
ArrivalProgram::constant(double rate)
{
    ArrivalProgram p;
    p.segments.push_back(ArrivalSegment{0.0, kInf, rate, rate});
    p.validate();
    return p;
}

ArrivalProgram
ArrivalProgram::dayTrace(double baseRate,
                         const std::vector<double> &stepFactors,
                         double secondsPerStep)
{
    require(!stepFactors.empty(),
            "ArrivalProgram::dayTrace: no step factors");
    require(std::isfinite(baseRate) && baseRate > 0.0,
            "ArrivalProgram::dayTrace: baseRate must be > 0");
    require(std::isfinite(secondsPerStep) && secondsPerStep > 0.0,
            "ArrivalProgram::dayTrace: secondsPerStep must be > 0");
    ArrivalProgram p;
    for (size_t i = 0; i < stepFactors.size(); ++i) {
        double r = baseRate * stepFactors[i];
        p.segments.push_back(
            ArrivalSegment{static_cast<double>(i) * secondsPerStep,
                           static_cast<double>(i + 1) * secondsPerStep,
                           r, r});
    }
    p.periodSeconds =
        static_cast<double>(stepFactors.size()) * secondsPerStep;
    p.validate();
    return p;
}

ArrivalProgram
ArrivalProgram::flashCrowd(double extraRate, double startSeconds,
                           double rampSeconds, double holdSeconds)
{
    require(std::isfinite(extraRate) && extraRate > 0.0,
            "ArrivalProgram::flashCrowd: extraRate must be > 0");
    require(std::isfinite(startSeconds) && startSeconds >= 0.0,
            "ArrivalProgram::flashCrowd: startSeconds must be >= 0");
    require(std::isfinite(rampSeconds) && rampSeconds >= 0.0,
            "ArrivalProgram::flashCrowd: rampSeconds must be >= 0");
    require(std::isfinite(holdSeconds) && holdSeconds >= 0.0,
            "ArrivalProgram::flashCrowd: holdSeconds must be >= 0");
    require(rampSeconds + holdSeconds > 0.0,
            "ArrivalProgram::flashCrowd: surge has zero duration");
    ArrivalProgram p;
    double t = startSeconds;
    if (t > 0.0)
        p.segments.push_back(ArrivalSegment{0.0, t, 0.0, 0.0});
    if (rampSeconds > 0.0) {
        p.segments.push_back(
            ArrivalSegment{t, t + rampSeconds, 0.0, extraRate});
        t += rampSeconds;
    }
    if (holdSeconds > 0.0) {
        p.segments.push_back(
            ArrivalSegment{t, t + holdSeconds, extraRate, extraRate});
        t += holdSeconds;
    }
    if (rampSeconds > 0.0) {
        p.segments.push_back(
            ArrivalSegment{t, t + rampSeconds, extraRate, 0.0});
        t += rampSeconds;
    }
    p.segments.push_back(ArrivalSegment{t, kInf, 0.0, 0.0});
    p.validate();
    return p;
}

ArrivalProgram
ArrivalProgram::compose(const std::vector<ArrivalProgram> &parts)
{
    require(!parts.empty(), "ArrivalProgram::compose: no parts");
    double period = parts.front().periodSeconds;
    for (const ArrivalProgram &part : parts) {
        part.validate();
        require(!part.empty(),
                "ArrivalProgram::compose: empty part");
        require(part.periodSeconds == period,
                "ArrivalProgram::compose: parts must agree on "
                "periodSeconds");
    }

    // Breakpoints: the union of every part's finite segment bounds.
    // Each part is linear between consecutive breakpoints, so the sum
    // is too — composed ramps stay exact.
    std::vector<double> bounds{0.0};
    for (const ArrivalProgram &part : parts) {
        for (const ArrivalSegment &s : part.segments) {
            bounds.push_back(s.startSeconds);
            if (std::isfinite(s.endSeconds))
                bounds.push_back(s.endSeconds);
        }
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()),
                 bounds.end());

    ArrivalProgram out;
    out.periodSeconds = period;
    for (size_t i = 0; i + 1 < bounds.size(); ++i) {
        double lo = bounds[i];
        double hi = bounds[i + 1];
        double rLo = 0.0;
        double rHi = 0.0;
        for (const ArrivalProgram &part : parts) {
            rLo += rateOn(part, lo, lo);
            rHi += rateOn(part, lo, hi); // left limit at hi
        }
        out.segments.push_back(ArrivalSegment{lo, hi, rLo, rHi});
    }
    if (period == 0.0) {
        // Beyond the last breakpoint every part holds its final rate.
        double held = 0.0;
        for (const ArrivalProgram &part : parts)
            held += part.segments.back().endRate;
        out.segments.push_back(
            ArrivalSegment{bounds.back(), kInf, held, held});
    }
    out.validate();
    return out;
}

ArrivalProgram
arrivalProgramFromConfig(const Config &cfg, const std::string &section)
{
    ArrivalProgram program;
    bool linear = false;
    if (cfg.has(section, "arrival_shape")) {
        std::string shape = cfg.getString(section, "arrival_shape");
        require(shape == "step" || shape == "linear",
                "arrival_shape: want 'step' or 'linear', got '" +
                    shape + "'");
        linear = shape == "linear";
    }
    program.periodSeconds =
        cfg.getDouble(section, "arrival_period", 0.0);

    if (cfg.has(section, "arrival_trace")) {
        std::vector<double> times;
        std::vector<double> rates;
        for (const std::string &part :
             split(cfg.getString(section, "arrival_trace"), ',')) {
            std::string pair = trim(part);
            if (pair.empty())
                continue;
            auto fields = split(pair, ':');
            require(fields.size() == 2,
                    "arrival_trace: expected time:rate, got '" + pair +
                        "'");
            times.push_back(parseDouble(fields[0]));
            rates.push_back(parseDouble(fields[1]));
        }
        require(!times.empty(), "arrival_trace: no breakpoints");
        for (size_t i = 0; i < times.size(); ++i) {
            double end;
            double endRate;
            if (i + 1 < times.size()) {
                end = times[i + 1];
                endRate = linear ? rates[i + 1] : rates[i];
            } else if (program.periodSeconds > 0.0) {
                // Periodic: the last span closes the loop; a linear
                // trace ramps back to the first breakpoint's rate.
                end = program.periodSeconds;
                endRate = linear ? rates.front() : rates[i];
            } else {
                end = kInf;
                endRate = rates[i];
            }
            program.segments.push_back(
                ArrivalSegment{times[i], end, rates[i], endRate});
        }
    } else {
        require(program.periodSeconds == 0.0,
                "arrival_period: set without arrival_trace");
        require(!cfg.has(section, "arrival_shape"),
                "arrival_shape: set without arrival_trace");
    }

    if (cfg.has(section, "arrival_flash_at")) {
        require(!program.segments.empty(),
                "arrival_flash_at: set without arrival_trace");
        require(program.periodSeconds == 0.0,
                "arrival_flash_at: a flash crowd on a periodic trace "
                "is unsupported; unroll the trace instead");
        ArrivalProgram flash = ArrivalProgram::flashCrowd(
            cfg.getDouble(section, "arrival_flash_extra"),
            cfg.getDouble(section, "arrival_flash_at"),
            cfg.getDouble(section, "arrival_flash_ramp", 0.0),
            cfg.getDouble(section, "arrival_flash_hold", 0.0));
        program = ArrivalProgram::compose({program, flash});
    }

    if (!program.empty())
        program.validate();
    return program;
}

} // namespace accel::microsim

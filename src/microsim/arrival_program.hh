/**
 * @file
 * Time-varying open-loop arrival-rate programs.
 *
 * The open-loop simulator mode historically offered one constant
 * Poisson rate; real services see diurnal swings and flash crowds, and
 * the paper's fleet projections only hold if the accelerated service
 * survives them. An ArrivalProgram is a deterministic piecewise-linear
 * rate function r(t) (arrivals per simulated second): piecewise-constant
 * day traces, ramped flash crowds, and multi-tenant mixes composed by
 * summing per-service profiles are all expressible as segment lists.
 *
 * Sampling is by Lewis-Shedler thinning: candidates are drawn from a
 * homogeneous Poisson process at peakRate() and accepted with
 * probability r(t)/peakRate() — one extra uniform draw per candidate,
 * fully deterministic for a seed. A constant program takes the legacy
 * single-draw path instead, so `constant(r)` is bit-identical to
 * setting `openArrivalsPerSec = r` (the parallel-parity suite pins
 * this).
 */

#pragma once

#include <string>
#include <vector>

#include "config/config.hh"

namespace accel::microsim {

/**
 * One linear-rate span [startSeconds, endSeconds): the rate ramps from
 * startRate to endRate across the span. startRate == endRate makes the
 * span constant (a day-trace step).
 */
struct ArrivalSegment
{
    double startSeconds = 0.0;
    double endSeconds = 0.0;
    double startRate = 0.0; //!< arrivals/sec at startSeconds
    double endRate = 0.0;   //!< arrivals/sec approaching endSeconds
};

/**
 * A deterministic arrival-rate program r(t). Empty segments mean "no
 * program": the service falls back to the constant openArrivalsPerSec
 * knob. Time t = 0 is simulation tick 0 (warmup included), so warmup
 * plays the head of the trace.
 */
struct ArrivalProgram
{
    /** Contiguous ascending spans; the first must start at t = 0. */
    std::vector<ArrivalSegment> segments;

    /**
     * When > 0, the program wraps: r(t) = r(t mod periodSeconds), and
     * the segments must tile exactly [0, periodSeconds). 0 plays the
     * segments once, holding the last segment's endRate forever.
     */
    double periodSeconds = 0.0;

    bool empty() const { return segments.empty(); }

    /** Rate at time @p tSeconds (right-continuous at breakpoints). */
    double rateAt(double tSeconds) const;

    /** Supremum of r(t): the thinning envelope. */
    double peakRate() const;

    /** Mean of r(t) over [0, horizonSeconds] (expected offered load). */
    double meanRate(double horizonSeconds) const;

    /** True when r(t) is one constant (legacy single-draw path). */
    bool isConstant() const;

    /** @throws FatalError on out-of-domain values (names the field). */
    void validate() const;

    /** The constant program r(t) = rate. */
    static ArrivalProgram constant(double rate);

    /**
     * Piecewise-constant day trace: step i holds
     * baseRate * stepFactors[i] for secondsPerStep seconds. The program
     * is periodic with period stepFactors.size() * secondsPerStep, so a
     * run longer than one "day" replays it.
     */
    static ArrivalProgram dayTrace(double baseRate,
                                   const std::vector<double> &stepFactors,
                                   double secondsPerStep);

    /**
     * A flash crowd overlay: zero until startSeconds, linear ramp to
     * extraRate over rampSeconds, hold for holdSeconds, linear ramp
     * back to zero over rampSeconds, zero after. Compose it onto a base
     * trace to model a surge.
     */
    static ArrivalProgram flashCrowd(double extraRate, double startSeconds,
                                     double rampSeconds,
                                     double holdSeconds);

    /**
     * Multi-tenant mix: the sum of the parts' rates. Parts must agree
     * on periodSeconds (all 0 or all equal). Breakpoints are the union
     * of the parts' breakpoints, so composed ramps stay exact.
     */
    static ArrivalProgram compose(const std::vector<ArrivalProgram> &parts);
};

/**
 * Parse a section's arrival keys into an ArrivalProgram. Recognised
 * keys:
 *
 *     arrival_trace = 0:1e5, 0.2:2e5, 0.4:5e4   ; time:rate breakpoints
 *     arrival_shape = step                      ; or "linear" ramps
 *     arrival_period = 0.6                      ; optional wrap
 *     arrival_flash_at = 0.25                   ; flash-crowd overlay...
 *     arrival_flash_extra = 1e5                 ; ...added arrivals/sec
 *     arrival_flash_ramp = 0.02                 ; ...ramp up/down time
 *     arrival_flash_hold = 0.05                 ; ...time at full surge
 *
 * With `arrival_shape = step` each breakpoint's rate holds until the
 * next breakpoint; with `linear` the rate ramps between breakpoints.
 * A section with none of these keys yields the empty program (the
 * constant openArrivalsPerSec path).
 *
 * @throws FatalError on malformed traces or out-of-domain values.
 */
ArrivalProgram arrivalProgramFromConfig(const Config &cfg,
                                        const std::string &section);

} // namespace accel::microsim

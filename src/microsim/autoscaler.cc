#include "microsim/autoscaler.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/json_fmt.hh"
#include "util/logging.hh"

namespace accel::microsim {

namespace {

/**
 * Window latency histogram: linear buckets across [0, 2*SLO] so the
 * p99 interpolation is fine-grained exactly where the control decision
 * lives, plus the implicit overflow bucket for collapsed tails.
 */
Histogram
controlWindowHist(const AutoscalerConfig &cfg)
{
    cfg.validate();
    std::vector<double> edges;
    edges.reserve(65);
    double step = 2.0 * cfg.sloLatencyCycles / 64.0;
    for (int i = 0; i <= 64; ++i)
        edges.push_back(step * i);
    return Histogram(std::move(edges));
}

} // namespace

void
AutoscalerConfig::validate() const
{
    require(std::isfinite(intervalCycles) && intervalCycles >= 1.0,
            "AutoscalerConfig.intervalCycles must be finite and >= 1");
    require(std::isfinite(sloLatencyCycles) && sloLatencyCycles >= 0.0,
            "AutoscalerConfig.sloLatencyCycles must be finite and >= 0");
    require(!enabled || sloLatencyCycles > 0.0,
            "AutoscalerConfig.sloLatencyCycles must be > 0 when "
            "enabled");
    require(std::isfinite(scaleUpPressure) && scaleUpPressure > 0.0,
            "AutoscalerConfig.scaleUpPressure must be finite and > 0");
    require(std::isfinite(scaleDownPressure) &&
                scaleDownPressure >= 0.0 &&
                scaleDownPressure < scaleUpPressure,
            "AutoscalerConfig.scaleDownPressure must be in "
            "[0, scaleUpPressure)");
    require(upWindows >= 1, "AutoscalerConfig.upWindows must be >= 1");
    require(downWindows >= 1,
            "AutoscalerConfig.downWindows must be >= 1");
    require(std::isfinite(cooldownCycles) && cooldownCycles >= 0.0,
            "AutoscalerConfig.cooldownCycles must be finite and >= 0");
    require(minReplicas >= 1,
            "AutoscalerConfig.minReplicas must be >= 1");
    require(maxReplicas >= minReplicas,
            "AutoscalerConfig.maxReplicas must be >= minReplicas");
    require(scaleStep >= 1, "AutoscalerConfig.scaleStep must be >= 1");
    require(brownoutFloor >= 1,
            "AutoscalerConfig.brownoutFloor must be >= 1");
    require(std::isfinite(brownoutTighten) && brownoutTighten > 0.0 &&
                brownoutTighten < 1.0,
            "AutoscalerConfig.brownoutTighten must be in (0, 1)");
    require(std::isfinite(brownoutRelax) && brownoutRelax > 1.0,
            "AutoscalerConfig.brownoutRelax must be > 1");
    require(!brownout || enabled,
            "AutoscalerConfig.brownout needs the autoscaler enabled "
            "(the gate runs on the control cadence)");
}

AutoscalerConfig
autoscalerFromConfig(const Config &cfg, const std::string &section)
{
    AutoscalerConfig a;
    if (cfg.has(section, "scale_interval")) {
        a.enabled = true;
        a.intervalCycles = cfg.getDouble(section, "scale_interval");
        a.sloLatencyCycles = cfg.getDouble(section, "scale_slo_p99");
    }
    a.scaleUpPressure =
        cfg.getDouble(section, "scale_up_pressure", 0.9);
    a.scaleDownPressure =
        cfg.getDouble(section, "scale_down_pressure", 0.5);
    a.upWindows = static_cast<std::uint32_t>(
        cfg.getDouble(section, "scale_up_windows", 1.0));
    a.downWindows = static_cast<std::uint32_t>(
        cfg.getDouble(section, "scale_down_windows", 3.0));
    a.cooldownCycles = cfg.getDouble(section, "scale_cooldown", 0.0);
    a.minReplicas = static_cast<std::uint32_t>(
        cfg.getDouble(section, "scale_min_replicas", 1.0));
    a.maxReplicas = static_cast<std::uint32_t>(cfg.getDouble(
        section, "scale_max_replicas",
        static_cast<double>(a.minReplicas)));
    a.scaleStep = static_cast<std::uint32_t>(
        cfg.getDouble(section, "scale_step", 1.0));
    if (cfg.has(section, "scale_brownout_floor")) {
        a.brownout = true;
        a.brownoutFloor = static_cast<std::uint32_t>(
            cfg.getDouble(section, "scale_brownout_floor"));
    }
    a.brownoutTighten =
        cfg.getDouble(section, "scale_brownout_tighten", 0.5);
    a.brownoutRelax =
        cfg.getDouble(section, "scale_brownout_relax", 2.0);
    a.validate();
    return a;
}

std::string
AutoscalerStats::summaryJson() const
{
    std::ostringstream os;
    os << "{\"control_windows\": " << controlWindows
       << ", \"scale_ups\": " << scaleUps
       << ", \"scale_downs\": " << scaleDowns
       << ", \"up_blocked\": " << upBlocked
       << ", \"down_blocked\": " << downBlocked
       << ", \"breach_windows\": " << breachWindows
       << ", \"admission_tightenings\": " << admissionTightenings
       << ", \"admission_relaxations\": " << admissionRelaxations
       << ", \"window_p99_cycles\": " << windowP99Cycles.summaryJson()
       << ", \"merged_p99_cycles\": " << jsonNumber(mergedP99Cycles)
       << ", \"final_replicas\": " << finalReplicas
       << ", \"min_replicas_observed\": " << minReplicasObserved
       << ", \"max_replicas_observed\": " << maxReplicasObserved
       << "}";
    return os.str();
}

Autoscaler::Autoscaler(sim::EventQueue &eq, AcceleratorTier &tier,
                       const AutoscalerConfig &cfg,
                       std::uint32_t staticQueueBound)
    : eq_(eq),
      tier_(tier),
      cfg_(cfg),
      staticQueueBound_(staticQueueBound),
      window_(controlWindowHist(cfg)),
      cumulative_(controlWindowHist(cfg))
{
    require(cfg_.enabled, "Autoscaler: constructed while disabled");
    require(cfg_.maxReplicas <= tier_.replicaCount(),
            "Autoscaler: maxReplicas exceeds the tier's constructed "
            "replica count");
    require(!cfg_.brownout || staticQueueBound_ > 0,
            "Autoscaler: the brown-out gate tightens the admission "
            "queue, so ServiceConfig.maxArrivalQueue must be > 0");
    require(!cfg_.brownout || cfg_.brownoutFloor <= staticQueueBound_,
            "Autoscaler: brownoutFloor exceeds maxArrivalQueue");
    target_ = cfg_.minReplicas;
    admissionLimit_ = cfg_.brownout ? staticQueueBound_ : 0;
    stats_.finalReplicas = target_;
    stats_.minReplicasObserved = target_;
    stats_.maxReplicasObserved = target_;
}

void
Autoscaler::start(sim::Tick endTick)
{
    endTick_ = endTick;
    // A one-replica tier may be trivial (single-device fast path);
    // applying a target of 1 there is a no-op either way.
    if (tier_.replicaCount() > 1)
        tier_.setActiveReplicas(target_);
    auto interval = std::max<sim::Tick>(
        1, static_cast<sim::Tick>(std::llround(cfg_.intervalCycles)));
    eq_.scheduleIn(interval, [this]() { controlTick(); });
}

void
Autoscaler::observeLatency(double cycles)
{
    window_.add(cycles);
}

void
Autoscaler::noteQueueDepth(std::uint64_t depth)
{
    maxQueueInWindow_ = std::max(maxQueueInWindow_, depth);
}

void
Autoscaler::noteShed()
{
    ++shedsInWindow_;
}

void
Autoscaler::resetStats()
{
    stats_ = AutoscalerStats{};
    stats_.finalReplicas = target_;
    stats_.minReplicasObserved = target_;
    stats_.maxReplicasObserved = target_;
    // The measurement window starts a fresh aggregate; the in-flight
    // control window keeps its samples (control state is continuous).
    cumulative_ = controlWindowHist(cfg_);
}

void
Autoscaler::controlTick()
{
    ++stats_.controlWindows;
    bool hasSamples = window_.total() > 0.0;
    double p99 = hasSamples ? window_.quantile(0.99) : 0.0;
    stats_.windowP99Cycles.add(p99);
    cumulative_.merge(window_);
    window_ = controlWindowHist(cfg_);
    stats_.mergedP99Cycles = cumulative_.quantile(0.99);
    if (hasSamples && p99 > cfg_.sloLatencyCycles)
        ++stats_.breachWindows;

    evaluateScaling(p99, hasSamples);
    if (cfg_.brownout)
        evaluateAdmission(p99, hasSamples);

    shedsInWindow_ = 0;
    maxQueueInWindow_ = 0;
    stats_.finalReplicas = target_;

    if (eq_.now() < endTick_) {
        auto interval = std::max<sim::Tick>(
            1,
            static_cast<sim::Tick>(std::llround(cfg_.intervalCycles)));
        eq_.scheduleIn(interval, [this]() { controlTick(); });
    }
}

void
Autoscaler::evaluateScaling(double windowP99, bool hasSamples)
{
    // Pressure signals, any of which votes to grow: the window tail is
    // approaching the budget, arrivals were shed, or the admission
    // queue filled past half its bound (incipient overload the latency
    // percentile has not caught up with yet).
    bool up = shedsInWindow_ > 0 ||
        (hasSamples &&
         windowP99 >= cfg_.scaleUpPressure * cfg_.sloLatencyCycles) ||
        (staticQueueBound_ > 0 &&
         maxQueueInWindow_ * 2 >= staticQueueBound_);
    bool down = !up && hasSamples && shedsInWindow_ == 0 &&
        windowP99 <= cfg_.scaleDownPressure * cfg_.sloLatencyCycles;
    upVotes_ = up ? upVotes_ + 1 : 0;
    downVotes_ = down ? downVotes_ + 1 : 0;

    if (everActed_ &&
        static_cast<double>(eq_.now() - lastActionTick_) <
            cfg_.cooldownCycles)
        return; // cooling down; votes keep accumulating

    if (upVotes_ >= cfg_.upWindows) {
        upVotes_ = 0;
        if (target_ >= cfg_.maxReplicas) {
            ++stats_.upBlocked;
            return;
        }
        target_ = std::min(target_ + cfg_.scaleStep, cfg_.maxReplicas);
        tier_.setActiveReplicas(target_);
        ++stats_.scaleUps;
        stats_.maxReplicasObserved =
            std::max(stats_.maxReplicasObserved, target_);
        lastActionTick_ = eq_.now();
        everActed_ = true;
    } else if (downVotes_ >= cfg_.downWindows) {
        downVotes_ = 0;
        if (target_ <= cfg_.minReplicas) {
            ++stats_.downBlocked;
            return;
        }
        target_ = std::max(target_ - std::min(target_ - 1,
                                              cfg_.scaleStep),
                           cfg_.minReplicas);
        tier_.setActiveReplicas(target_);
        ++stats_.scaleDowns;
        stats_.minReplicasObserved =
            std::min(stats_.minReplicasObserved, target_);
        lastActionTick_ = eq_.now();
        everActed_ = true;
    }
}

void
Autoscaler::evaluateAdmission(double windowP99, bool hasSamples)
{
    std::uint64_t before = admissionLimit_;
    bool pressure =
        (hasSamples &&
         windowP99 >= cfg_.scaleUpPressure * cfg_.sloLatencyCycles) ||
        shedsInWindow_ > 0 ||
        maxQueueInWindow_ * 2 >= staticQueueBound_;
    bool healthy = hasSamples && shedsInWindow_ == 0 &&
        windowP99 <= cfg_.scaleDownPressure * cfg_.sloLatencyCycles;

    if (pressure) {
        // Tighten before latency collapses: admitted requests keep a
        // bounded queue ahead of them; the overflow is shed and
        // attributed to overload, not silently delayed.
        auto cut = static_cast<std::uint64_t>(
            static_cast<double>(admissionLimit_) *
            cfg_.brownoutTighten);
        admissionLimit_ = std::max<std::uint64_t>(cfg_.brownoutFloor,
                                                  cut);
        if (admissionLimit_ < before)
            ++stats_.admissionTightenings;
    } else if (healthy && admissionLimit_ < staticQueueBound_) {
        auto grown = static_cast<std::uint64_t>(
            static_cast<double>(admissionLimit_) * cfg_.brownoutRelax);
        admissionLimit_ = std::min<std::uint64_t>(
            staticQueueBound_,
            std::max(grown, admissionLimit_ + 1));
        if (admissionLimit_ > before)
            ++stats_.admissionRelaxations;
    }
}

} // namespace accel::microsim

/**
 * @file
 * SLO-driven autoscaler for a replicated accelerator tier.
 *
 * The Autoscaler closes the loop the breaker/ejection machinery left
 * open: instead of reacting to device *faults*, it reacts to *demand*.
 * On a fixed sim-timer cadence it samples windowed SLO signals — the
 * window's p99 latency against a budget, the admission-queue depth,
 * and the window's shed count — and votes. Sustained pressure grows
 * the live AcceleratorTier replica set (up to a cap); sustained slack
 * shrinks it (down to a floor), with hysteresis (consecutive-window
 * vote thresholds) and a cooldown between actions so the controller
 * cannot flap. Scale-down goes through the tier's draining path:
 * in-flight and hedged offloads settle before a replica parks, and an
 * ejected replica is the preferred victim since it contributes no
 * capacity anyway.
 *
 * Graceful brown-out: when latency is collapsing faster than capacity
 * can grow, the optional admission gate tightens maxArrivalQueue-style
 * shedding *before* the queue fills — bounding the latency of admitted
 * requests at the cost of honest, separately-attributed overload sheds
 * (ServiceMetrics::requestsShedOverload) — and relaxes again once the
 * window is healthy.
 *
 * Determinism: the controller runs on the event queue's timer cadence
 * and consumes only simulation-local signals; it draws no randomness,
 * so an autoscaled run replays bit-for-bit from a seed.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "config/config.hh"
#include "microsim/tier.hh"
#include "sim/event_queue.hh"
#include "stats/histogram.hh"
#include "stats/online_stats.hh"

namespace accel::microsim {

/** Static description of the SLO control loop. */
struct AutoscalerConfig
{
    /** Master switch; everything below is ignored when false. */
    bool enabled = false;

    /** Control-window length in cycles (the sampling cadence). */
    double intervalCycles = 1e6;

    /** p99 latency budget in cycles (the SLO being defended). */
    double sloLatencyCycles = 0.0;

    /** Window p99 above this fraction of the SLO votes to scale up. */
    double scaleUpPressure = 0.9;

    /** Window p99 below this fraction of the SLO votes to scale down. */
    double scaleDownPressure = 0.5;

    /** Consecutive up-votes before acting (scale-up hysteresis). */
    std::uint32_t upWindows = 1;

    /** Consecutive down-votes before acting (scale-down hysteresis). */
    std::uint32_t downWindows = 3;

    /** Minimum cycles between scaling actions. */
    double cooldownCycles = 0.0;

    /** Replica floor (also the initial live set). */
    std::uint32_t minReplicas = 1;

    /** Replica cap; the tier must be built with at least this many. */
    std::uint32_t maxReplicas = 1;

    /** Replicas added or drained per action. */
    std::uint32_t scaleStep = 1;

    /** Enables the adaptive admission (brown-out) gate. */
    bool brownout = false;

    /** The gate never tightens the admission limit below this depth. */
    std::uint32_t brownoutFloor = 4;

    /** Multiplier applied to the limit on a breaching window (< 1). */
    double brownoutTighten = 0.5;

    /** Multiplier applied on a healthy window (> 1), capped at the
     *  static maxArrivalQueue bound. */
    double brownoutRelax = 2.0;

    /** @throws FatalError on out-of-domain values (names the field). */
    void validate() const;
};

/**
 * Parse a section's autoscaler keys into an AutoscalerConfig.
 * Recognised keys:
 *
 *     scale_interval = 2e6        ; presence enables the autoscaler
 *     scale_slo_p99 = 1.2e5       ; required with scale_interval
 *     scale_up_pressure = 0.9
 *     scale_down_pressure = 0.5
 *     scale_up_windows = 1
 *     scale_down_windows = 3
 *     scale_cooldown = 0
 *     scale_min_replicas = 1
 *     scale_max_replicas = 4
 *     scale_step = 1
 *     scale_brownout_floor = 4    ; presence enables the brown-out gate
 *     scale_brownout_tighten = 0.5
 *     scale_brownout_relax = 2
 *
 * A section with none of these keys yields the default (disabled)
 * config.
 *
 * @throws FatalError on malformed or out-of-domain values.
 */
AutoscalerConfig autoscalerFromConfig(const Config &cfg,
                                      const std::string &section);

/** Observed control-loop behaviour over a run. */
struct AutoscalerStats
{
    std::uint64_t controlWindows = 0; //!< control ticks evaluated
    std::uint64_t scaleUps = 0;       //!< grow actions taken
    std::uint64_t scaleDowns = 0;     //!< shrink actions taken
    std::uint64_t upBlocked = 0;      //!< wanted up, already at cap
    std::uint64_t downBlocked = 0;    //!< wanted down, already at floor
    std::uint64_t breachWindows = 0;  //!< windows with p99 over budget
    std::uint64_t admissionTightenings = 0; //!< brown-out gate cuts
    std::uint64_t admissionRelaxations = 0; //!< brown-out gate grows

    /** Per-window p99 latency estimates (one sample per window). */
    OnlineStats windowP99Cycles;

    /**
     * p99 over every window merged so far (Histogram::merge across
     * control windows — no double counting), refreshed each tick.
     * Differs from the mean of window p99s: a quiet day with one bad
     * burst shows up here, not there.
     */
    double mergedP99Cycles = 0.0;

    /** Live replica count when the run ended. */
    std::uint32_t finalReplicas = 0;

    /** Extremes of the live replica count across the run. */
    std::uint32_t minReplicasObserved = 0;
    std::uint32_t maxReplicasObserved = 0;

    /** Every counter above as one JSON object (report surface). */
    std::string summaryJson() const;
};

/**
 * The control loop. Owned by ServiceSim when enabled: the simulator
 * feeds it completion latencies, admission-queue depths, and shed
 * events; the autoscaler owns the control timer and actuates
 * AcceleratorTier::setActiveReplicas plus the admission gate the
 * simulator consults on every arrival.
 */
class Autoscaler
{
  public:
    /**
     * @param eq          simulation event queue (must outlive this)
     * @param tier        the tier being scaled (must outlive this)
     * @param cfg         validated control-loop description
     * @param staticQueueBound  the service's maxArrivalQueue bound;
     *                    the brown-out gate tightens within it
     */
    Autoscaler(sim::EventQueue &eq, AcceleratorTier &tier,
               const AutoscalerConfig &cfg,
               std::uint32_t staticQueueBound);

    /**
     * Apply minReplicas to the tier and arm the control timer chain;
     * ticks stop once the queue passes @p endTick.
     */
    void start(sim::Tick endTick);

    /** Record one completed request's latency into the window. */
    void observeLatency(double cycles);

    /** Record the admission-queue depth after an enqueue. */
    void noteQueueDepth(std::uint64_t depth);

    /** Record one shed arrival (static bound or brown-out gate). */
    void noteShed();

    /**
     * Current admission limit from the brown-out gate; 0 when the gate
     * is disabled (callers fall back to the static bound alone). Never
     * exceeds the static bound, never drops below brownoutFloor.
     */
    std::uint64_t admissionLimit() const { return admissionLimit_; }

    /** Current live-replica target. */
    std::uint32_t activeTarget() const { return target_; }

    const AutoscalerStats &stats() const { return stats_; }

    /** Clear statistics (end of warmup); control state is preserved. */
    void resetStats();

  private:
    void controlTick();
    void evaluateScaling(double windowP99, bool hasSamples);
    void evaluateAdmission(double windowP99, bool hasSamples);

    sim::EventQueue &eq_;
    AcceleratorTier &tier_;
    AutoscalerConfig cfg_;
    std::uint32_t staticQueueBound_ = 0;

    sim::Tick endTick_ = 0;
    std::uint32_t target_ = 1;

    Histogram window_;     //!< latencies of the current window
    Histogram cumulative_; //!< all windows merged (Histogram::merge)
    std::uint64_t shedsInWindow_ = 0;
    std::uint64_t maxQueueInWindow_ = 0;

    std::uint32_t upVotes_ = 0;
    std::uint32_t downVotes_ = 0;
    sim::Tick lastActionTick_ = 0;
    bool everActed_ = false;

    std::uint64_t admissionLimit_ = 0;

    AutoscalerStats stats_;
};

} // namespace accel::microsim

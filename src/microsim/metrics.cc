#include "microsim/metrics.hh"

namespace accel::microsim {

double
ServiceMetrics::qps() const
{
    if (measuredSeconds <= 0)
        return 0.0;
    return static_cast<double>(requestsCompleted) / measuredSeconds;
}

double
ServiceMetrics::meanLatencyCycles() const
{
    return latencyCycles.mean();
}

} // namespace accel::microsim

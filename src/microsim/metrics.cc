#include "microsim/metrics.hh"

#include "util/logging.hh"

namespace accel::microsim {

double
ServiceMetrics::qps() const
{
    if (measuredSeconds <= 0)
        return 0.0;
    return static_cast<double>(requestsCompleted) / measuredSeconds;
}

double
ServiceMetrics::goodputQps() const
{
    if (measuredSeconds <= 0)
        return 0.0;
    ensure(requestsFailed <= requestsCompleted,
           "ServiceMetrics: failed > completed");
    return static_cast<double>(requestsCompleted - requestsFailed) /
           measuredSeconds;
}

double
ServiceMetrics::meanLatencyCycles() const
{
    return latencyCycles.mean();
}

} // namespace accel::microsim

#include "microsim/metrics.hh"

#include <sstream>

#include "util/json_fmt.hh"
#include "util/logging.hh"

namespace accel::microsim {

double
ServiceMetrics::qps() const
{
    if (measuredSeconds <= 0)
        return 0.0;
    return static_cast<double>(requestsCompleted) / measuredSeconds;
}

double
ServiceMetrics::goodputQps() const
{
    if (measuredSeconds <= 0)
        return 0.0;
    ensure(requestsFailed <= requestsCompleted,
           "ServiceMetrics: failed > completed");
    return static_cast<double>(requestsCompleted - requestsFailed) /
           measuredSeconds;
}

double
ServiceMetrics::meanLatencyCycles() const
{
    return latencyCycles.mean();
}

std::string
ServiceMetrics::summaryJson() const
{
    std::ostringstream os;
    os << "{\"measured_seconds\": " << jsonNumber(measuredSeconds)
       << ", \"qps\": " << jsonNumber(qps()) << ", \"goodput_qps\": "
       << jsonNumber(goodputQps())
       << ", \"requests_completed\": " << requestsCompleted
       << ", \"requests_arrived\": " << requestsArrived
       << ", \"requests_degraded\": " << requestsDegraded
       << ", \"requests_failed\": " << requestsFailed
       << ", \"requests_shed\": " << requestsShed
       << ", \"requests_shed_overload\": " << requestsShedOverload
       << ", \"max_arrival_queue_depth\": " << maxArrivalQueueDepth
       << ", \"latency_cycles\": " << latencyCycles.summaryJson()
       << ", \"latency_sample\": " << latencySample.summaryJson()
       << ", \"degraded_latency_cycles\": "
       << degradedLatencyCycles.summaryJson()
       << ", \"degraded_latency_sample\": "
       << degradedLatencySample.summaryJson()
       << ", \"end_to_end_latency_cycles\": "
       << endToEndLatencyCycles.summaryJson()
       << ", \"core_busy_cycles\": " << jsonNumber(coreBusyCycles)
       << ", \"core_cycles_by_tag\": {";
    bool first = true;
    for (const auto &[tag, cycles] : coreCyclesByTag) {
        os << (first ? "" : ", ") << "\"" << tag
           << "\": " << jsonNumber(cycles);
        first = false;
    }
    os << "}, \"core_held_idle_cycles\": "
       << jsonNumber(coreHeldIdleCycles)
       << ", \"dispatch_overhead_cycles\": "
       << jsonNumber(dispatchOverheadCycles)
       << ", \"switch_overhead_cycles\": "
       << jsonNumber(switchOverheadCycles)
       << ", \"offloads_issued\": " << offloadsIssued
       << ", \"kernels_on_host\": " << kernelsOnHost
       << ", \"offload_timeouts\": " << offloadTimeouts
       << ", \"offload_retries\": " << offloadRetries
       << ", \"host_fallbacks\": " << hostFallbacks
       << ", \"breaker_fallbacks\": " << breakerFallbacks
       << ", \"offloads_abandoned\": " << offloadsAbandoned
       << ", \"late_completions_ignored\": " << lateCompletionsIgnored
       << ", \"breaker_opens\": " << breakerOpens
       << ", \"breaker_probes\": " << breakerProbes
       << ", \"breaker_closes\": " << breakerCloses
       << ", \"fallback_host_cycles\": "
       << jsonNumber(fallbackHostCycles) << ", \"accelerator\": "
       << accelerator.summaryJson() << ", \"tier\": "
       << tier.summaryJson() << ", \"autoscaler\": "
       << autoscaler.summaryJson() << "}";
    return os.str();
}

} // namespace accel::microsim

/**
 * @file
 * Metrics collected by a microservice simulation run.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "microsim/accelerator.hh"
#include "microsim/autoscaler.hh"
#include "microsim/tier.hh"
#include "stats/online_stats.hh"
#include "stats/reservoir.hh"

namespace accel::microsim {

/** Tag under which offload/switch overhead core cycles accumulate. */
constexpr int kOverheadWorkTag = -2;

/** Everything a run measures; the A/B harness compares two of these. */
struct ServiceMetrics
{
    double measuredSeconds = 0.0;
    std::uint64_t requestsCompleted = 0;

    /** Open-loop mode only: requests that arrived in the window. */
    std::uint64_t requestsArrived = 0;

    /**
     * Completed requests that experienced degraded-mode handling (an
     * offload timeout, retry, host fallback, breaker fallback, or an
     * abandoned kernel). Subset of requestsCompleted.
     */
    std::uint64_t requestsDegraded = 0;

    /**
     * Completed requests in which at least one kernel was abandoned
     * (retries exhausted, no host fallback): the request finished but
     * produced no result for that kernel. Subset of requestsDegraded;
     * excluded from goodput.
     */
    std::uint64_t requestsFailed = 0;

    /** Open-loop mode: arrivals rejected by the bounded admission
     *  queue (load shedding). Shed arrivals count in requestsArrived
     *  (offered load) but never reach a thread. */
    std::uint64_t requestsShed = 0;

    /**
     * Open-loop mode: arrivals rejected by the *adaptive* brown-out
     * admission gate specifically (the gate had tightened below the
     * static maxArrivalQueue bound when the arrival was turned away).
     * Subset of requestsShed — kept separate so overload-driven
     * degradation is attributed honestly, not folded into ordinary
     * static-bound shedding.
     */
    std::uint64_t requestsShedOverload = 0;

    /** Open-loop mode: peak admission-queue depth observed. */
    std::uint64_t maxArrivalQueueDepth = 0;

    /** Request latency in cycles (service-local, per the paper). */
    OnlineStats latencyCycles;

    /** Uniform latency sample for tail quantiles (SLO analysis). */
    ReservoirSample latencySample;

    /** Latency of degraded requests only (tail under faults). */
    OnlineStats degradedLatencyCycles;
    ReservoirSample degradedLatencySample;

    /**
     * End-to-end latency including remote accelerator time that the
     * service-local latency excludes (Async no-response + remote).
     */
    OnlineStats endToEndLatencyCycles;

    /** Core cycles doing useful or overhead work. */
    double coreBusyCycles = 0.0;

    /**
     * Core cycles attributed per work tag (see WorkTag): tagged
     * segments and host-run kernels under their own tags, dispatch and
     * switch overheads under kOverheadWorkTag. Enables simulated
     * before/after functionality breakdowns (Figs. 16-18).
     */
    std::map<int, double> coreCyclesByTag;

    /** Core cycles held but idle (Sync blocking on the accelerator). */
    double coreHeldIdleCycles = 0.0;

    /** Core cycles spent on offload dispatch overhead (o0, L-hold). */
    double dispatchOverheadCycles = 0.0;

    /** Core cycles spent context switching (o1 and cache pollution). */
    double switchOverheadCycles = 0.0;

    std::uint64_t offloadsIssued = 0;
    std::uint64_t kernelsOnHost = 0;

    // --- degraded-mode offload accounting (zero without faults) ---
    std::uint64_t offloadTimeouts = 0;   //!< deadline expiries
    std::uint64_t offloadRetries = 0;    //!< re-issues after a timeout
    std::uint64_t hostFallbacks = 0;     //!< retry exhaustion -> host
    std::uint64_t breakerFallbacks = 0;  //!< breaker open -> host
    std::uint64_t offloadsAbandoned = 0; //!< exhausted, no fallback
    std::uint64_t lateCompletionsIgnored = 0; //!< lost the deadline race
    std::uint64_t breakerOpens = 0;
    std::uint64_t breakerProbes = 0;
    std::uint64_t breakerCloses = 0;

    /** Host cycles consumed re-executing fallen-back kernels. */
    double fallbackHostCycles = 0.0;

    /**
     * Device statistics. With a replicated tier this is the
     * cross-replica aggregate (counters sum, distributions merge);
     * with one replica it is exactly that device's stats.
     */
    AcceleratorStats accelerator;

    /**
     * Replicated-tier behaviour: dispatch, hedging, ejection, and
     * failover counters plus per-replica breakdowns and device stats.
     * All zero when the run used a trivial (single-device) tier.
     */
    TierStats tier;

    /**
     * SLO control-loop behaviour: scaling actions, breach windows, and
     * brown-out gate activity. All zero when the run did not enable
     * the autoscaler.
     */
    AutoscalerStats autoscaler;

    /** Completed requests per simulated second. */
    double qps() const;

    /**
     * Usefully completed requests per second: completions minus
     * failed (kernel-abandoned) requests. Degraded-but-correct work —
     * e.g. host fallback — still counts; shed arrivals never do.
     */
    double goodputQps() const;

    /** Mean request latency in cycles. */
    double meanLatencyCycles() const;

    /**
     * Every counter and distribution this struct collects — including
     * the degraded-mode, breaker, shedding, and overhead accounting —
     * as one JSON object, with the accelerator and tier summaries
     * nested. This is the complete report surface: benches embed it in
     * their JSON artifacts so no counter the simulation pays for is
     * collected and then silently dropped (the analyzer's
     * metrics-accounting rule enforces that every field is reachable
     * from a report path).
     */
    std::string summaryJson() const;
};

} // namespace accel::microsim

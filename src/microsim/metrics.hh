/**
 * @file
 * Metrics collected by a microservice simulation run.
 */

#pragma once

#include <cstdint>
#include <map>

#include "microsim/accelerator.hh"
#include "stats/online_stats.hh"
#include "stats/reservoir.hh"

namespace accel::microsim {

/** Tag under which offload/switch overhead core cycles accumulate. */
constexpr int kOverheadWorkTag = -2;

/** Everything a run measures; the A/B harness compares two of these. */
struct ServiceMetrics
{
    double measuredSeconds = 0.0;
    std::uint64_t requestsCompleted = 0;

    /** Open-loop mode only: requests that arrived in the window. */
    std::uint64_t requestsArrived = 0;

    /** Request latency in cycles (service-local, per the paper). */
    OnlineStats latencyCycles;

    /** Uniform latency sample for tail quantiles (SLO analysis). */
    ReservoirSample latencySample;

    /**
     * End-to-end latency including remote accelerator time that the
     * service-local latency excludes (Async no-response + remote).
     */
    OnlineStats endToEndLatencyCycles;

    /** Core cycles doing useful or overhead work. */
    double coreBusyCycles = 0.0;

    /**
     * Core cycles attributed per work tag (see WorkTag): tagged
     * segments and host-run kernels under their own tags, dispatch and
     * switch overheads under kOverheadWorkTag. Enables simulated
     * before/after functionality breakdowns (Figs. 16-18).
     */
    std::map<int, double> coreCyclesByTag;

    /** Core cycles held but idle (Sync blocking on the accelerator). */
    double coreHeldIdleCycles = 0.0;

    /** Core cycles spent on offload dispatch overhead (o0, L-hold). */
    double dispatchOverheadCycles = 0.0;

    /** Core cycles spent context switching (o1 and cache pollution). */
    double switchOverheadCycles = 0.0;

    std::uint64_t offloadsIssued = 0;
    std::uint64_t kernelsOnHost = 0;

    AcceleratorStats accelerator;

    /** Completed requests per simulated second. */
    double qps() const;

    /** Mean request latency in cycles. */
    double meanLatencyCycles() const;
};

} // namespace accel::microsim

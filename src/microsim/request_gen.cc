#include "microsim/request_gen.hh"

#include <cmath>

#include "util/logging.hh"

namespace accel::microsim {

double
Request::nonKernelCycles() const
{
    double total = 0;
    for (const WorkSegment &seg : segments)
        total += seg.cycles;
    return total;
}

double
Request::totalHostCycles() const
{
    double total = nonKernelCycles();
    for (const auto &k : kernels)
        total += k.hostCycles;
    return total;
}

void
WorkloadSpec::validate() const
{
    require(nonKernelCyclesMean >= 0,
            "WorkloadSpec: negative non-kernel cycles");
    require(nonKernelCv >= 0, "WorkloadSpec: negative CV");
    require(beta > 0, "WorkloadSpec: beta must be positive");
    if (kernelsPerRequest > 0) {
        require(granularity != nullptr,
                "WorkloadSpec: kernel work needs a granularity dist");
        require(cyclesPerByte > 0,
                "WorkloadSpec: kernel work needs positive Cb");
    }
    require(nonKernelCyclesMean > 0 || kernelsPerRequest > 0,
            "WorkloadSpec: request must contain some work");
    for (const WorkSegment &seg : segmentTemplate) {
        require(seg.cycles > 0,
                "WorkloadSpec: segment shares must be positive");
    }
    if (!segmentTemplate.empty()) {
        require(nonKernelCyclesMean > 0,
                "WorkloadSpec: segments need non-kernel cycles");
    }
}

double
WorkloadSpec::meanKernelCycles() const
{
    if (kernelsPerRequest == 0)
        return 0.0;
    ensure(granularity != nullptr, "WorkloadSpec: missing granularity");
    // Exact for beta == 1; a midpoint approximation otherwise.
    return static_cast<double>(kernelsPerRequest) * cyclesPerByte *
           std::pow(granularity->mean(), beta);
}

double
WorkloadSpec::impliedAlpha() const
{
    double kernel = meanKernelCycles();
    double total = kernel + nonKernelCyclesMean;
    return total > 0 ? kernel / total : 0.0;
}

RequestSource::RequestSource(const WorkloadSpec &spec, std::uint64_t seed)
    : spec_(spec), rng_(seed, /*stream=*/0x9e3779b97f4a7c15ULL)
{
    spec_.validate();
    if (spec_.nonKernelCv > 0 && spec_.nonKernelCyclesMean > 0) {
        // Log-normal with the requested mean and CV: if X ~ LN(mu, s),
        // E[X] = exp(mu + s^2/2) and CV^2 = exp(s^2) - 1.
        double s2 = std::log(1.0 + spec_.nonKernelCv * spec_.nonKernelCv);
        logSigma_ = std::sqrt(s2);
        logMu_ = std::log(spec_.nonKernelCyclesMean) - 0.5 * s2;
    }
}

Request
RequestSource::next()
{
    Request req;
    double non_kernel = 0.0;
    if (spec_.nonKernelCyclesMean > 0) {
        non_kernel = spec_.nonKernelCv > 0
            ? rng_.logNormal(logMu_, logSigma_)
            : spec_.nonKernelCyclesMean;
    }

    req.kernels.reserve(spec_.kernelsPerRequest);
    for (std::uint32_t i = 0; i < spec_.kernelsPerRequest; ++i) {
        double bytes = spec_.granularity->sample(rng_);
        double cycles = spec_.cyclesPerByte * std::pow(bytes, spec_.beta);
        req.kernels.push_back(
            KernelInvocation{bytes, cycles, spec_.kernelTag, 0});
    }

    if (spec_.segmentTemplate.empty()) {
        // Default: slice the work evenly around the kernels; kernel i
        // runs after slice i.
        std::uint32_t slices = spec_.kernelsPerRequest + 1;
        for (std::uint32_t s = 0; s < slices; ++s) {
            req.segments.push_back(
                {non_kernel / static_cast<double>(slices), kUntagged});
        }
        for (std::uint32_t i = 0; i < req.kernels.size(); ++i)
            req.kernels[i].afterSegment = i;
    } else {
        // Tagged composition: scale the template to this request's
        // non-kernel cycles; kernels run after the first segment.
        double share_total = 0;
        for (const WorkSegment &seg : spec_.segmentTemplate)
            share_total += seg.cycles;
        for (const WorkSegment &seg : spec_.segmentTemplate) {
            req.segments.push_back(
                {non_kernel * seg.cycles / share_total, seg.tag});
        }
        for (auto &k : req.kernels)
            k.afterSegment = 0;
    }
    return req;
}

} // namespace accel::microsim

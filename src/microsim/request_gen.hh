/**
 * @file
 * Request generation for the microservice simulator.
 *
 * A request is host work plus zero or more offloadable kernel
 * invocations. Kernel granularities are drawn from a BucketDist (the
 * paper's CDF figures); kernel cycles follow cyclesPerByte · g^beta.
 */

#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "stats/bucket_dist.hh"
#include "util/rng.hh"

namespace accel::microsim {

/**
 * Category tag carried by work segments and kernels so the simulator
 * can attribute core cycles (e.g. to the paper's functionality
 * categories). The simulator treats tags as opaque; kUntagged marks
 * generic work.
 */
using WorkTag = int;
constexpr WorkTag kUntagged = -1;

/** One offloadable kernel invocation inside a request. */
struct KernelInvocation
{
    double bytes;      //!< granularity g
    double hostCycles; //!< Cb · g^beta: cost if executed on the host
    WorkTag tag = kUntagged;

    /**
     * Segment index after which this kernel runs. Filled by
     * RequestSource; kernels of segment i execute between segments i
     * and i+1.
     */
    std::uint32_t afterSegment = 0;
};

/** A tagged slice of non-kernel host work. */
struct WorkSegment
{
    double cycles;
    WorkTag tag = kUntagged;
};

/** A generated request. */
struct Request
{
    /** Non-kernel work, executed in order. */
    std::vector<WorkSegment> segments;
    std::vector<KernelInvocation> kernels;

    /** Total non-kernel cycles across segments. */
    double nonKernelCycles() const;

    /** Total host cycles when nothing is offloaded. */
    double totalHostCycles() const;
};

/** Workload description from which requests are sampled. */
struct WorkloadSpec
{
    /** Mean non-kernel host cycles per request. */
    double nonKernelCyclesMean = 0.0;

    /**
     * Optional tagged composition of the non-kernel work: shares must
     * be positive and are normalized against nonKernelCyclesMean. When
     * empty, the work is a single untagged blob sliced evenly around
     * the kernels (the default closed-form-equivalent behaviour).
     */
    std::vector<WorkSegment> segmentTemplate;

    /** Tag attached to generated kernels. */
    WorkTag kernelTag = kUntagged;

    /**
     * Coefficient of variation of non-kernel cycles (log-normal); 0
     * makes requests deterministic.
     */
    double nonKernelCv = 0.0;

    /** Kernel invocations per request (deterministic count). */
    std::uint32_t kernelsPerRequest = 1;

    /** Granularity distribution of kernel invocations; may be null when
     *  kernelsPerRequest == 0. */
    std::shared_ptr<const BucketDist> granularity;

    /** Cb: host cycles per byte of kernel work. */
    double cyclesPerByte = 0.0;

    /** Kernel complexity exponent (1 = linear). */
    double beta = 1.0;

    /** @throws FatalError on inconsistent values. */
    void validate() const;

    /** Expected kernel host cycles per request (linear kernels). */
    double meanKernelCycles() const;

    /** Expected α this workload induces: kernel / (kernel+non-kernel). */
    double impliedAlpha() const;
};

/** Samples requests from a WorkloadSpec. */
class RequestSource
{
  public:
    RequestSource(const WorkloadSpec &spec, std::uint64_t seed);

    /** Draw the next request. */
    Request next();

    const WorkloadSpec &spec() const { return spec_; }

  private:
    WorkloadSpec spec_;
    Rng rng_;
    double logMu_ = 0.0;
    double logSigma_ = 0.0;
};

} // namespace accel::microsim

#include "microsim/service_graph.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/json_fmt.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"

namespace accel::microsim {

// --------------------------------------------------------------------
// Edge configuration
// --------------------------------------------------------------------

const char *
toString(CallStyle style)
{
    switch (style) {
      case CallStyle::Sync:
        return "sync";
      case CallStyle::Async:
        return "async";
    }
    panic("toString: unreachable CallStyle");
}

CallStyle
callStyleFromString(const std::string &name)
{
    if (name == "sync")
        return CallStyle::Sync;
    if (name == "async")
        return CallStyle::Async;
    fatal("unknown call style '" + name + "' (want sync | async)");
}

const char *
toString(BudgetSplit split)
{
    switch (split) {
      case BudgetSplit::Even:
        return "even";
      case BudgetSplit::Weighted:
        return "weighted";
      case BudgetSplit::ReserveForRetry:
        return "reserve_for_retry";
    }
    panic("toString: unreachable BudgetSplit");
}

BudgetSplit
budgetSplitFromString(const std::string &name)
{
    if (name == "even")
        return BudgetSplit::Even;
    if (name == "weighted")
        return BudgetSplit::Weighted;
    if (name == "reserve_for_retry")
        return BudgetSplit::ReserveForRetry;
    fatal("unknown budget split '" + name +
          "' (want even | weighted | reserve_for_retry)");
}

bool
EdgeConfig::resilient() const
{
    return rpcTimeoutCycles > 0 || maxAttempts > 1 ||
           retryBudget.enabled() || breaker.enabled;
}

void
EdgeConfig::validate() const
{
    require(!caller.empty(), "EdgeConfig.caller must name a service");
    require(!callee.empty(), "EdgeConfig.callee must name a service");
    require(fanout >= 1, "EdgeConfig.fanout must be >= 1");
    require(std::isfinite(latencyCycles) && latencyCycles >= 0,
            "EdgeConfig.latencyCycles must be finite and >= 0");
    require(std::isfinite(latencyJitterCycles) && latencyJitterCycles >= 0,
            "EdgeConfig.latencyJitterCycles must be finite and >= 0");
    require(std::isfinite(rpcTimeoutCycles) && rpcTimeoutCycles >= 0,
            "EdgeConfig.rpcTimeoutCycles must be finite and >= 0");
    require(maxAttempts >= 1, "EdgeConfig.maxAttempts must be >= 1");
    require(maxAttempts == 1 || rpcTimeoutCycles > 0,
            "EdgeConfig.maxAttempts > 1 requires rpcTimeoutCycles > 0 "
            "(timeouts are the retry trigger)");
    require(std::isfinite(retryBudget.ratio) && retryBudget.ratio >= 0,
            "EdgeConfig.retryBudget.ratio must be finite and >= 0");
    require(std::isfinite(retryBudget.cap) && retryBudget.cap >= 0,
            "EdgeConfig.retryBudget.cap must be finite and >= 0");
    require(!retryBudget.enabled() || retryBudget.ratio > 0,
            "EdgeConfig.retryBudget.ratio must be > 0 when the budget "
            "is enabled (a bucket that never refills only drains)");
    require(!retryBudget.enabled() || maxAttempts > 1,
            "EdgeConfig.retryBudget needs maxAttempts > 1: with no "
            "retries there is nothing to limit");
    if (breaker.enabled) {
        breaker.validate();
        require(rpcTimeoutCycles > 0,
                "EdgeConfig.breaker requires rpcTimeoutCycles > 0 "
                "(timeouts are the breaker's failure signal)");
    }
    require(std::isfinite(budgetWeight) && budgetWeight > 0 &&
                budgetWeight <= 1,
            "EdgeConfig.budgetWeight must be in (0, 1]");
    require(style == CallStyle::Sync || !resilient(),
            "EdgeConfig: async edges take no timeouts, retries, retry "
            "budgets, or breakers (fire-and-forget has no join to "
            "protect)");
    if (faultPlan) {
        faultPlan->validate();
        // A sync caller waiting on a call the plan can silently lose
        // would hang forever without a timeout to rescue it.
        require(style == CallStyle::Async || !faultPlan->canLoseCalls() ||
                    rpcTimeoutCycles > 0,
                "EdgeConfig.faultPlan can lose sync calls: set "
                "rpcTimeoutCycles > 0 so the caller can recover");
    }
}

// --------------------------------------------------------------------
// Metrics
// --------------------------------------------------------------------

std::string
EdgeStats::summaryJson() const
{
    std::ostringstream os;
    os << "{\"caller\": \"" << caller << "\", \"callee\": \"" << callee
       << "\", \"calls_issued\": " << callsIssued
       << ", \"calls_completed\": " << callsCompleted
       << ", \"calls_shed\": " << callsShed
       << ", \"failures_propagated\": " << failuresPropagated
       << ", \"degraded_propagated\": " << degradedPropagated
       << ", \"attempts_issued\": " << attemptsIssued
       << ", \"calls_dropped\": " << callsDropped
       << ", \"calls_blackholed\": " << callsBlackholed
       << ", \"attempts_timed_out\": " << attemptsTimedOut
       << ", \"attempts_retried\": " << attemptsRetried
       << ", \"retries_suppressed\": " << retriesSuppressed
       << ", \"calls_deadline_exceeded\": " << callsDeadlineExceeded
       << ", \"calls_cancelled_budget\": " << callsCancelledBudget
       << ", \"calls_short_circuited\": " << callsShortCircuited
       << ", \"calls_failed\": " << callsFailed
       << ", \"calls_completed_ignored\": " << callsCompletedIgnored
       << ", \"breaker_opens\": " << breakerOpens
       << ", \"breaker_probes\": " << breakerProbes
       << ", \"breaker_closes\": " << breakerCloses
       << ", \"rtt_cycles\": " << rttCycles.summaryJson() << "}";
    return os.str();
}

std::string
GraphNodeMetrics::summaryJson() const
{
    std::ostringstream os;
    os << "{\"node\": \"" << node
       << "\", \"subtrees_started\": " << subtreesStarted
       << ", \"subtrees_completed\": " << subtreesCompleted
       << ", \"subtrees_failed\": " << subtreesFailed
       << ", \"subtrees_degraded\": " << subtreesDegraded
       << ", \"subtrees_pruned_budget\": " << subtreesPrunedBudget
       << ", \"subtree_latency_cycles\": "
       << subtreeLatencyCycles.summaryJson()
       << ", \"service\": " << service.summaryJson() << "}";
    return os.str();
}

std::string
SharedTierMetrics::summaryJson() const
{
    std::ostringstream os;
    os << "{\"tier_name\": \"" << tierName
       << "\", \"aggregate_device\": " << aggregateDevice.summaryJson()
       << ", \"tier\": " << tierStats.summaryJson() << "}";
    return os.str();
}

double
GraphMetrics::rootQps() const
{
    if (graphMeasuredSeconds <= 0)
        return 0.0;
    return static_cast<double>(rootsCompleted) / graphMeasuredSeconds;
}

double
GraphMetrics::rootGoodputQps() const
{
    if (graphMeasuredSeconds <= 0)
        return 0.0;
    ensure(rootsFailed <= rootsCompleted,
           "GraphMetrics: failed > completed roots");
    return static_cast<double>(rootsCompleted - rootsFailed) /
           graphMeasuredSeconds;
}

const GraphNodeMetrics &
GraphMetrics::node(const std::string &name) const
{
    for (const GraphNodeMetrics &nm : nodes) {
        if (nm.node == name)
            return nm;
    }
    fatal("GraphMetrics: no node named '" + name + "'");
}

std::string
GraphMetrics::summaryJson() const
{
    std::ostringstream os;
    os << "{\"graph_measured_seconds\": "
       << jsonNumber(graphMeasuredSeconds)
       << ", \"root_qps\": " << jsonNumber(rootQps())
       << ", \"root_goodput_qps\": " << jsonNumber(rootGoodputQps())
       << ", \"roots_started\": " << rootsStarted
       << ", \"roots_completed\": " << rootsCompleted
       << ", \"roots_failed\": " << rootsFailed
       << ", \"roots_degraded\": " << rootsDegraded
       << ", \"root_latency_cycles\": " << rootLatencyCycles.summaryJson()
       << ", \"graph_requests_arrived\": " << graphRequestsArrived
       << ", \"graph_requests_completed\": " << graphRequestsCompleted
       << ", \"graph_requests_shed\": " << graphRequestsShed
       << ", \"graph_requests_failed\": " << graphRequestsFailed
       << ", \"nodes\": [";
    for (size_t i = 0; i < nodes.size(); ++i)
        os << (i == 0 ? "" : ", ") << nodes[i].summaryJson();
    os << "], \"edges\": [";
    for (size_t i = 0; i < edges.size(); ++i)
        os << (i == 0 ? "" : ", ") << edges[i].summaryJson();
    os << "], \"shared_tiers\": [";
    for (size_t i = 0; i < sharedTiers.size(); ++i)
        os << (i == 0 ? "" : ", ") << sharedTiers[i].summaryJson();
    os << "]}";
    return os.str();
}

// --------------------------------------------------------------------
// Assembly
// --------------------------------------------------------------------

ServiceGraph::ServiceGraph(std::uint64_t seed) : seed_(seed) {}

ServiceGraph &
ServiceGraph::addService(const ServiceSpec &spec)
{
    specs_.push_back(spec);
    return *this;
}

ServiceGraph &
ServiceGraph::addSharedTier(const std::string &tierName,
                            const AcceleratorConfig &device,
                            const TierConfig &tier)
{
    sharedTierDefs_.push_back(SharedTierDef{tierName, device, tier});
    return *this;
}

ServiceGraph &
ServiceGraph::addEdge(const EdgeConfig &edge)
{
    edges_.push_back(edge);
    return *this;
}

ServiceGraph &
ServiceGraph::rootDeadline(double cycles)
{
    require(std::isfinite(cycles) && cycles >= 0,
            "ServiceGraph::rootDeadline must be finite and >= 0");
    rootDeadlineCycles_ = cycles;
    return *this;
}

std::uint32_t
ServiceGraph::nodeIndex(const std::string &name) const
{
    for (size_t i = 0; i < specs_.size(); ++i) {
        if (specs_[i].name() == name)
            return static_cast<std::uint32_t>(i);
    }
    fatal("ServiceGraph: no service named '" + name + "'");
}

bool
ServiceGraph::hasInEdge(std::uint32_t node) const
{
    const std::string &name = specs_[node].name();
    return std::any_of(edges_.begin(), edges_.end(),
                       [&name](const EdgeConfig &e) {
                           return e.callee == name;
                       });
}

namespace {

/** Collect one throwing check as an error line (prefix stripped). */
template <typename Fn>
void
collect(std::vector<std::string> &out, const std::string &where, Fn &&check)
{
    try {
        check();
    } catch (const FatalError &e) {
        std::string msg = e.what();
        const std::string prefix = "fatal: ";
        if (msg.rfind(prefix, 0) == 0)
            msg.erase(0, prefix.size());
        out.push_back(where + msg);
    }
}

} // namespace

std::vector<std::string>
ServiceGraph::errors() const
{
    std::vector<std::string> out;
    if (specs_.empty())
        out.push_back("graph has no services");

    // Node names must be unique: they are the edge address space.
    for (size_t i = 0; i < specs_.size(); ++i) {
        if (specs_[i].name().empty())
            out.push_back("service " + std::to_string(i) +
                          " has an empty name");
        for (size_t j = i + 1; j < specs_.size(); ++j) {
            if (specs_[i].name() == specs_[j].name())
                out.push_back("duplicate service name '" +
                              specs_[i].name() + "'");
        }
    }

    for (const ServiceSpec &spec : specs_) {
        for (const std::string &err : spec.errors())
            out.push_back("node '" + spec.name() + "': " + err);
    }

    // All nodes share one tick clock; mixed frequencies would make the
    // shared queue's ticks mean different wall times per node.
    for (const ServiceSpec &spec : specs_) {
        if (spec.service().clockGHz != specs_.front().service().clockGHz)
            out.push_back("node '" + spec.name() + "': clockGHz " +
                          std::to_string(spec.service().clockGHz) +
                          " differs from '" + specs_.front().name() +
                          "' (" +
                          std::to_string(
                              specs_.front().service().clockGHz) +
                          "); the shared clock needs one frequency");
    }

    // Shared tiers: unique names, valid configs, every definition used,
    // every reference resolved, and no hedging into Sync-design nodes
    // (the same cross-check ServiceSpec applies to its own tier).
    for (size_t i = 0; i < sharedTierDefs_.size(); ++i) {
        const SharedTierDef &def = sharedTierDefs_[i];
        if (def.name.empty())
            out.push_back("shared tier " + std::to_string(i) +
                          " has an empty name");
        for (size_t j = i + 1; j < sharedTierDefs_.size(); ++j) {
            if (def.name == sharedTierDefs_[j].name)
                out.push_back("duplicate shared tier name '" + def.name +
                              "'");
        }
        collect(out, "shared tier '" + def.name + "': ",
                [&def] { def.device.validate(); });
        collect(out, "shared tier '" + def.name + "': ",
                [&def] { def.config.validate(); });
        bool used = false;
        for (const ServiceSpec &spec : specs_) {
            if (spec.sharedTierName() != def.name)
                continue;
            used = true;
            if (def.config.hedge.enabled &&
                spec.service().design == model::ThreadingDesign::Sync) {
                out.push_back(
                    "node '" + spec.name() + "': shared tier '" +
                    def.name +
                    "' hedges, but the node runs the Sync design (the "
                    "blocked driver waits on its single offload)");
            }
        }
        if (!used)
            out.push_back("shared tier '" + def.name +
                          "' is not referenced by any service");
    }
    for (const ServiceSpec &spec : specs_) {
        if (spec.sharedTierName().empty())
            continue;
        bool found = false;
        for (const SharedTierDef &def : sharedTierDefs_) {
            if (def.name == spec.sharedTierName())
                found = true;
        }
        if (!found)
            out.push_back("node '" + spec.name() +
                          "': names unknown shared tier '" +
                          spec.sharedTierName() + "'");
    }

    // Edges: valid shapes, known endpoints, no self-calls.
    for (const EdgeConfig &edge : edges_) {
        const std::string where =
            "edge " + edge.caller + " -> " + edge.callee + ": ";
        collect(out, where, [&edge] { edge.validate(); });
        bool endpoints = true;
        for (const std::string &end : {edge.caller, edge.callee}) {
            bool found = false;
            for (const ServiceSpec &spec : specs_) {
                if (spec.name() == end)
                    found = true;
            }
            if (!end.empty() && !found) {
                out.push_back(where + "no service named '" + end + "'");
                endpoints = false;
            }
        }
        if (endpoints && !edge.caller.empty() &&
            edge.caller == edge.callee)
            out.push_back(where + "a service cannot call itself");
    }

    // The graph must be a DAG: a cycle would recurse forever (every
    // completion at a node on the cycle re-injects into the cycle).
    bool resolvable = true;
    for (const EdgeConfig &edge : edges_) {
        for (const std::string &end : {edge.caller, edge.callee}) {
            bool found = false;
            for (const ServiceSpec &spec : specs_) {
                if (spec.name() == end)
                    found = true;
            }
            if (!found)
                resolvable = false;
        }
    }
    if (resolvable && !specs_.empty()) {
        // Iterative DFS three-colouring over node indices.
        std::vector<std::vector<std::uint32_t>> adj(specs_.size());
        for (const EdgeConfig &edge : edges_) {
            if (edge.caller != edge.callee)
                adj[nodeIndex(edge.caller)].push_back(
                    nodeIndex(edge.callee));
        }
        std::vector<int> colour(specs_.size(), 0); // 0 white 1 grey 2 black
        for (std::uint32_t root = 0; root < specs_.size(); ++root) {
            if (colour[root] != 0)
                continue;
            std::vector<std::pair<std::uint32_t, size_t>> stack;
            stack.emplace_back(root, 0);
            colour[root] = 1;
            while (!stack.empty()) {
                auto &[n, next] = stack.back();
                if (next < adj[n].size()) {
                    std::uint32_t m = adj[n][next++];
                    if (colour[m] == 1) {
                        out.push_back("cycle through '" +
                                      specs_[m].name() +
                                      "': the graph must be a DAG");
                        colour[m] = 2;
                    } else if (colour[m] == 0) {
                        colour[m] = 1;
                        stack.emplace_back(m, 0);
                    }
                } else {
                    colour[n] = 2;
                    stack.pop_back();
                }
            }
        }
    }
    return out;
}

void
ServiceGraph::validate() const
{
    std::vector<std::string> errs = errors(); // walks specs_ and edges_
    if (errs.empty())
        return;
    std::string msg = "ServiceGraph (" + std::to_string(specs_.size()) +
        " services, " + std::to_string(edges_.size()) + " edges):";
    for (const std::string &e : errs)
        msg += "\n  - " + e;
    fatal(msg);
}

// --------------------------------------------------------------------
// Run
// --------------------------------------------------------------------

void
ServiceGraph::initWindowStats()
{
    GraphMetrics fresh;
    fresh.graphMeasuredSeconds = metrics_.graphMeasuredSeconds;
    fresh.nodes.reserve(specs_.size());
    for (const ServiceSpec &spec : specs_) {
        GraphNodeMetrics nm;
        nm.node = spec.name();
        fresh.nodes.push_back(std::move(nm));
    }
    fresh.edges.reserve(edges_.size());
    for (const EdgeConfig &edge : edges_) {
        EdgeStats es;
        es.caller = edge.caller;
        es.callee = edge.callee;
        fresh.edges.push_back(std::move(es));
    }
    metrics_ = std::move(fresh);
}

GraphMetrics
ServiceGraph::run(double measureSeconds, double warmupSeconds)
{
    require(measureSeconds > 0,
            "ServiceGraph::run: window must be positive");
    require(warmupSeconds >= 0, "ServiceGraph::run: negative warmup");
    ensure(!ran_, "ServiceGraph::run: single-use object");
    ran_ = true;
    validate();

    eq_ = std::make_unique<sim::EventQueue>();

    sharedTiers_.reserve(sharedTierDefs_.size());
    for (const SharedTierDef &def : sharedTierDefs_) {
        sharedTiers_.push_back(std::make_unique<AcceleratorTier>(
            *eq_, def.device, def.config));
    }

    sims_.reserve(specs_.size());
    outEdges_.assign(specs_.size(), {});
    calleeIdx_.clear();
    calleeIdx_.reserve(edges_.size());
    for (size_t e = 0; e < edges_.size(); ++e) {
        outEdges_[nodeIndex(edges_[e].caller)].push_back(e);
        calleeIdx_.push_back(nodeIndex(edges_[e].callee));
        // One seeded stream per edge keeps jitter draws independent of
        // node count and of the other edges' traffic.
        edgeRngs_.emplace_back(seed_ ^ 0x6772617068ULL,
                               0xed6e0000ULL + e);
    }
    edgeFaultSeq_.assign(edges_.size(), 0);
    edgeBreakers_.assign(edges_.size(), EdgeBreaker{});
    edgeRetryTokens_.clear();
    edgeRetryTokens_.reserve(edges_.size());
    for (const EdgeConfig &edge : edges_)
        edgeRetryTokens_.push_back(edge.retryBudget.cap); // start full

    for (size_t i = 0; i < specs_.size(); ++i) {
        AcceleratorTier *shared = nullptr;
        for (size_t t = 0; t < sharedTierDefs_.size(); ++t) {
            if (sharedTierDefs_[t].name == specs_[i].sharedTierName())
                shared = sharedTiers_[t].get();
        }
        sims_.push_back(std::make_unique<ServiceSim>(
            specs_[i], *eq_, shared,
            hasInEdge(static_cast<std::uint32_t>(i))));
        std::uint32_t node = static_cast<std::uint32_t>(i);
        sims_[i]->setCompletionHook(
            [this, node](std::uint64_t token, sim::Tick arrivedAt,
                         bool failed) {
                onNodeCompletion(node, token, arrivedAt, failed);
            });
    }

    metrics_.graphMeasuredSeconds = measureSeconds;
    initWindowStats();
    measuring_ = warmupSeconds == 0;

    // Node windows first: a single-node graph then replays the exact
    // standalone event sequence, with the graph's own warmup flip
    // appended after every node's (same tick and priority, later
    // insertion order).
    for (const std::unique_ptr<ServiceSim> &sim : sims_)
        sim->beginWindow(measureSeconds, warmupSeconds);
    sim::Tick end_tick = sims_.front()->windowEndTick();

    if (!measuring_) {
        double cycles_per_second =
            specs_.front().service().clockGHz * 1e9;
        sim::Tick warmup_tick =
            static_cast<sim::Tick>(warmupSeconds * cycles_per_second);
        eq_->schedule(warmup_tick, [this]() {
            initWindowStats();
            // Shared tiers reset here, once — the nodes each skipped
            // their own tier reset for exactly this reason.
            for (const std::unique_ptr<AcceleratorTier> &tier :
                 sharedTiers_)
                tier->resetStats();
            measuring_ = true;
        }, /*priority=*/-100);
    }

    eq_->runUntil(end_tick);

    for (size_t i = 0; i < sims_.size(); ++i) {
        metrics_.nodes[i].service = sims_[i]->collectMetrics();
        const ServiceMetrics &sm = metrics_.nodes[i].service;
        metrics_.graphRequestsArrived += sm.requestsArrived;
        metrics_.graphRequestsCompleted += sm.requestsCompleted;
        metrics_.graphRequestsShed += sm.requestsShed;
        metrics_.graphRequestsFailed += sm.requestsFailed;
    }
    metrics_.sharedTiers.reserve(sharedTierDefs_.size());
    for (size_t t = 0; t < sharedTierDefs_.size(); ++t) {
        SharedTierMetrics st;
        st.tierName = sharedTierDefs_[t].name;
        st.aggregateDevice = sharedTiers_[t]->aggregateDeviceStats();
        st.tierStats = sharedTiers_[t]->snapshot();
        metrics_.sharedTiers.push_back(std::move(st));
    }
    return metrics_;
}

// --------------------------------------------------------------------
// Call flow
// --------------------------------------------------------------------

void
ServiceGraph::onNodeCompletion(std::uint32_t node, std::uint64_t token,
                               sim::Tick arrivedAt, bool failed)
{
    std::uint64_t tok = token;
    if (token == 0) {
        // A locally-originated request: it roots a fresh subtree.
        tok = nextToken_++;
        Call c;
        c.node = node;
        c.arrivedAt = arrivedAt;
        c.issuedAt = arrivedAt;
        c.serviceDone = true;
        c.failed = failed;
        if (rootDeadlineCycles_ > 0)
            c.deadline = arrivedAt + static_cast<sim::Tick>(
                             std::llround(rootDeadlineCycles_));
        calls_.emplace(tok, c);
        if (measuring_) {
            ++metrics_.rootsStarted;
            ++metrics_.nodes[node].subtreesStarted;
        }
    } else {
        auto it = calls_.find(token);
        ensure(it != calls_.end(),
               "ServiceGraph: completion for an unknown call token");
        Call &c = it->second;
        ensure(c.node == node,
               "ServiceGraph: call completed on wrong node");
        c.serviceDone = true;
        if (failed)
            c.failed = true;
        if (measuring_)
            ++metrics_.nodes[node].subtreesStarted;
    }
    Call &c = calls_.at(tok);
    if (c.deadline != faults::kNeverTick && eq_->now() >= c.deadline) {
        // The budget died during this node's own work: fanning out
        // would burn downstream cycles on an answer nobody can use
        // in time. Prune the subtree and answer degraded instead.
        c.degraded = true;
        if (measuring_)
            ++metrics_.nodes[node].subtreesPrunedBudget;
    } else {
        issueCalls(tok);
    }
    maybeFinishCall(tok);
}

void
ServiceGraph::issueCalls(std::uint64_t token)
{
    Call &c = calls_.at(token);
    sim::Tick parentDeadline = c.deadline;
    for (size_t e : outEdges_[c.node]) {
        const EdgeConfig &edge = edges_[e];
        if (edge.resilient()) {
            // Resilient (always sync) edges go through the chain
            // machinery. A chain can settle synchronously (open
            // breaker, spent budget), and a settle may finish the
            // parent — so every chain starts as its own event, after
            // this loop has registered all pending children.
            for (std::uint32_t k = 0; k < edge.fanout; ++k) {
                ++c.pendingChildren;
                eq_->scheduleIn(0, [this, e, token, parentDeadline]() {
                    startChain(e, token, parentDeadline);
                });
            }
            continue;
        }
        const faults::EdgeFaultPlan *plan =
            edge.faultPlan && edge.faultPlan->active()
                ? edge.faultPlan.get()
                : nullptr;
        for (std::uint32_t k = 0; k < edge.fanout; ++k) {
            if (measuring_)
                ++metrics_.edges[e].callsIssued;
            sim::Tick extra = 0;
            if (plan) {
                if (measuring_)
                    ++metrics_.edges[e].attemptsIssued;
                faults::EdgeFaultDraw d = plan->draw(edgeFaultSeq_[e]++);
                bool lost = false;
                if (plan->blackholedAt(eq_->now())) {
                    lost = true;
                    if (measuring_)
                        ++metrics_.edges[e].callsBlackholed;
                } else if (d.drop) {
                    lost = true;
                    if (measuring_)
                        ++metrics_.edges[e].callsDropped;
                }
                if (lost) {
                    // Only async edges may lose calls without a
                    // timeout (validate() enforces it), and async
                    // callers never joined — nothing else to do.
                    continue;
                }
                if (plan->spikeActiveAt(eq_->now()))
                    extra = static_cast<sim::Tick>(
                        std::llround(d.extraLatencyCycles));
            }
            if (edge.style == CallStyle::Sync)
                ++c.pendingChildren;
            sim::Tick issued = eq_->now();
            sim::Tick childDeadline = splitDeadline(e, parentDeadline);
            eq_->scheduleIn(drawEdgeLatency(e) + extra,
                            [this, e, token, issued, childDeadline]() {
                                deliverCall(e, token, issued,
                                            childDeadline);
                            });
        }
    }
}

void
ServiceGraph::deliverCall(std::size_t edge, std::uint64_t parentToken,
                          sim::Tick issuedAt, sim::Tick childDeadline)
{
    std::uint32_t callee = calleeIdx_[edge];
    if (childDeadline != faults::kNeverTick &&
        eq_->now() >= childDeadline) {
        // Cancelled at the door: the budget died in transit, so the
        // callee never spends a cycle on it. The sync caller's join
        // degrades rather than fails — upstream still answers.
        if (measuring_)
            ++metrics_.edges[edge].callsCancelledBudget;
        if (edges_[edge].style == CallStyle::Sync)
            settleChild(parentToken, /*childFailed=*/false,
                        /*childDegraded=*/true);
        return;
    }
    std::uint64_t tok = nextToken_++;
    if (sims_[callee]->injectArrival(tok)) {
        Call c;
        c.node = callee;
        c.arrivedAt = eq_->now();
        c.issuedAt = issuedAt;
        c.parentToken = parentToken;
        c.viaEdge = static_cast<std::int32_t>(edge);
        c.deadline = childDeadline;
        calls_.emplace(tok, c);
        return;
    }
    // Shed at the callee's admission queue: the call never ran. A sync
    // caller learns immediately (degenerate "rejection response") and
    // the failure joins into its subtree.
    if (measuring_)
        ++metrics_.edges[edge].callsShed;
    if (edges_[edge].style == CallStyle::Sync)
        settleChild(parentToken, /*childFailed=*/true,
                    /*childDegraded=*/false);
}

void
ServiceGraph::maybeFinishCall(std::uint64_t token)
{
    auto it = calls_.find(token);
    ensure(it != calls_.end(), "maybeFinishCall: unknown token");
    Call &c = it->second;
    if (!c.serviceDone || c.pendingChildren > 0)
        return;
    sim::Tick now = eq_->now();
    if (measuring_) {
        GraphNodeMetrics &nm = metrics_.nodes[c.node];
        ++nm.subtreesCompleted;
        if (c.failed)
            ++nm.subtreesFailed;
        if (c.degraded)
            ++nm.subtreesDegraded;
        nm.subtreeLatencyCycles.add(
            static_cast<double>(now - c.arrivedAt));
    }
    if (c.viaEdge < 0) {
        if (measuring_) {
            ++metrics_.rootsCompleted;
            if (c.failed)
                ++metrics_.rootsFailed;
            if (c.degraded)
                ++metrics_.rootsDegraded;
            metrics_.rootLatencyCycles.add(
                static_cast<double>(now - c.arrivedAt));
        }
        calls_.erase(it);
        return;
    }
    size_t e = static_cast<size_t>(c.viaEdge);
    std::uint64_t parent = c.parentToken;
    bool failed = c.failed;
    bool degraded = c.degraded;
    std::uint64_t chainId = c.chainId;
    std::uint32_t attemptNo = c.attemptNo;
    sim::Tick issued = c.issuedAt;
    calls_.erase(it);
    if (edges_[e].style == CallStyle::Async) {
        // Fire-and-forget: the caller joined long ago; just close the
        // edge's books. Failures are counted, never propagated.
        if (measuring_) {
            EdgeStats &es = metrics_.edges[e];
            ++es.callsCompleted;
            if (failed)
                ++es.failuresPropagated;
            if (degraded)
                ++es.degradedPropagated;
            es.rttCycles.add(static_cast<double>(now - issued));
        }
        return;
    }
    // Sync: the response pays the return hop, then joins at the caller.
    eq_->scheduleIn(
        drawEdgeLatency(e),
        [this, e, parent, failed, degraded, chainId, attemptNo,
         issued]() {
            if (chainId != 0) {
                // Resilient edge: the chain decides whether this
                // response is live or a straggler from an abandoned
                // attempt, and books the edge stats itself.
                resolveChainReturn(e, chainId, attemptNo, failed,
                                   degraded);
                return;
            }
            if (measuring_) {
                EdgeStats &es = metrics_.edges[e];
                ++es.callsCompleted;
                if (failed)
                    ++es.failuresPropagated;
                if (degraded)
                    ++es.degradedPropagated;
                es.rttCycles.add(
                    static_cast<double>(eq_->now() - issued));
            }
            settleChild(parent, failed, degraded);
        });
}

void
ServiceGraph::settleChild(std::uint64_t parentToken, bool childFailed,
                          bool childDegraded)
{
    auto it = calls_.find(parentToken);
    ensure(it != calls_.end(), "settleChild: unknown parent call");
    Call &p = it->second;
    ensure(p.pendingChildren > 0, "settleChild: no pending children");
    --p.pendingChildren;
    if (childFailed)
        p.failed = true;
    if (childDegraded)
        p.degraded = true;
    maybeFinishCall(parentToken);
}

sim::Tick
ServiceGraph::drawEdgeLatency(std::size_t edge)
{
    const EdgeConfig &cfg = edges_[edge];
    double lat = cfg.latencyCycles;
    if (cfg.latencyJitterCycles > 0)
        lat += edgeRngs_[edge].exponential(cfg.latencyJitterCycles);
    return std::max<sim::Tick>(
        1, static_cast<sim::Tick>(std::llround(lat)));
}

// --------------------------------------------------------------------
// Resilient edge dispatch
// --------------------------------------------------------------------

sim::Tick
ServiceGraph::splitDeadline(std::size_t edge, sim::Tick parentDeadline)
{
    if (parentDeadline == faults::kNeverTick)
        return faults::kNeverTick;
    sim::Tick now = eq_->now();
    if (parentDeadline <= now)
        return now; // exhausted: the callee will cancel at the door
    const EdgeConfig &cfg = edges_[edge];
    if (cfg.budgetSplit == BudgetSplit::Weighted) {
        double remaining = static_cast<double>(parentDeadline - now);
        return now + std::max<sim::Tick>(
                         1, static_cast<sim::Tick>(std::llround(
                                remaining * cfg.budgetWeight)));
    }
    // Even inherits the caller's absolute deadline; ReserveForRetry
    // slices it per attempt later, in startAttempt.
    return parentDeadline;
}

void
ServiceGraph::startChain(std::size_t edge, std::uint64_t parentToken,
                         sim::Tick parentDeadline)
{
    auto [pass, probe] = breakerGate(edge);
    if (!pass) {
        // Open breaker: skip the subtree instead of piling onto a
        // sick callee. The caller degrades — it answers without this
        // child's contribution — rather than failing outright.
        if (measuring_)
            ++metrics_.edges[edge].callsShortCircuited;
        settleChild(parentToken, /*childFailed=*/false,
                    /*childDegraded=*/true);
        return;
    }
    std::uint64_t id = nextChainId_++;
    EdgeCall ec;
    ec.edge = edge;
    ec.parentToken = parentToken;
    ec.issuedAt = eq_->now();
    ec.deadline = splitDeadline(edge, parentDeadline);
    ec.probe = probe;
    chains_.emplace(id, ec);
    if (measuring_)
        ++metrics_.edges[edge].callsIssued;
    startAttempt(id);
}

void
ServiceGraph::startAttempt(std::uint64_t chainId)
{
    auto it = chains_.find(chainId);
    ensure(it != chains_.end(), "startAttempt: unknown chain");
    EdgeCall &ec = it->second;
    const EdgeConfig &cfg = edges_[ec.edge];
    sim::Tick now = eq_->now();

    if (ec.deadline != faults::kNeverTick && now >= ec.deadline) {
        if (measuring_)
            ++metrics_.edges[ec.edge].callsDeadlineExceeded;
        settleChain(chainId, ChainOutcome::Degraded, false, false);
        return;
    }

    ++ec.attempt;
    if (measuring_)
        ++metrics_.edges[ec.edge].attemptsIssued;

    // The attempt's budget slice. Even/Weighted hand each attempt the
    // whole chain deadline (a retry inherits whatever is left);
    // ReserveForRetry divides the remainder by the attempts still
    // available so a full retry ladder fits inside the budget.
    sim::Tick sliceEnd = ec.deadline;
    if (ec.deadline != faults::kNeverTick &&
        cfg.budgetSplit == BudgetSplit::ReserveForRetry) {
        double remaining = static_cast<double>(ec.deadline - now);
        std::uint32_t left = cfg.maxAttempts - ec.attempt + 1;
        sliceEnd = now + std::max<sim::Tick>(
                             1, static_cast<sim::Tick>(std::llround(
                                    remaining / left)));
    }

    bool lost = false;
    sim::Tick extra = 0;
    if (cfg.faultPlan && cfg.faultPlan->active()) {
        faults::EdgeFaultDraw d =
            cfg.faultPlan->draw(edgeFaultSeq_[ec.edge]++);
        if (cfg.faultPlan->blackholedAt(now)) {
            lost = true;
            if (measuring_)
                ++metrics_.edges[ec.edge].callsBlackholed;
        } else if (d.drop) {
            lost = true;
            if (measuring_)
                ++metrics_.edges[ec.edge].callsDropped;
        }
        if (cfg.faultPlan->spikeActiveAt(now))
            extra = static_cast<sim::Tick>(
                std::llround(d.extraLatencyCycles));
    }

    if (!lost) {
        // The child's deadline is the attempt slice — never the RPC
        // timeout. A caller without a deadline budget gets no
        // cancellation help: its abandoned attempts run to completion
        // downstream, which is exactly the waste the budgeted arm of
        // the cascade bench eliminates.
        sim::Tick childDeadline = sliceEnd;
        sim::Tick issued = ec.issuedAt;
        std::uint32_t attemptNo = ec.attempt;
        std::size_t e = ec.edge;
        eq_->scheduleIn(drawEdgeLatency(ec.edge) + extra,
                        [this, e, chainId, attemptNo, childDeadline,
                         issued]() {
                            deliverAttempt(e, chainId, attemptNo,
                                           childDeadline, issued);
                        });
    }

    // Arm the attempt timer: the RPC timeout, clipped to the slice so
    // an attempt never outlives the budget it was given.
    sim::Tick timeoutAt = faults::kNeverTick;
    if (cfg.rpcTimeoutCycles > 0)
        timeoutAt = now + static_cast<sim::Tick>(
                              std::llround(cfg.rpcTimeoutCycles));
    if (sliceEnd != faults::kNeverTick)
        timeoutAt = std::min(timeoutAt, sliceEnd);
    if (timeoutAt != faults::kNeverTick) {
        ec.timer = eq_->scheduleTimerIn(
            timeoutAt > now ? timeoutAt - now : 1,
            [this, chainId]() { onAttemptTimeout(chainId); });
    } else {
        // No timeout and no deadline: only a lossless edge may wait
        // forever (validate() rejects lossy plans without timeouts).
        ensure(!lost, "startAttempt: lost attempt with no timer armed");
    }
}

void
ServiceGraph::onAttemptTimeout(std::uint64_t chainId)
{
    auto it = chains_.find(chainId);
    ensure(it != chains_.end(), "onAttemptTimeout: unknown chain");
    it->second.timer = sim::kInvalidTimer;
    if (measuring_)
        ++metrics_.edges[it->second.edge].attemptsTimedOut;
    retryOrFail(chainId);
}

void
ServiceGraph::retryOrFail(std::uint64_t chainId)
{
    auto it = chains_.find(chainId);
    ensure(it != chains_.end(), "retryOrFail: unknown chain");
    EdgeCall &ec = it->second;
    const EdgeConfig &cfg = edges_[ec.edge];
    if (ec.deadline != faults::kNeverTick &&
        eq_->now() >= ec.deadline) {
        if (measuring_)
            ++metrics_.edges[ec.edge].callsDeadlineExceeded;
        settleChain(chainId, ChainOutcome::Degraded, false, false);
        return;
    }
    if (ec.attempt >= cfg.maxAttempts) {
        settleChain(chainId, ChainOutcome::Failed, false, false);
        return;
    }
    if (cfg.retryBudget.enabled()) {
        if (edgeRetryTokens_[ec.edge] < 1.0) {
            // The bucket is dry: the edge's recent success rate no
            // longer pays for retries, so the storm is cut here.
            if (measuring_)
                ++metrics_.edges[ec.edge].retriesSuppressed;
            settleChain(chainId, ChainOutcome::Failed, false, false);
            return;
        }
        edgeRetryTokens_[ec.edge] -= 1.0;
    }
    if (measuring_)
        ++metrics_.edges[ec.edge].attemptsRetried;
    startAttempt(chainId);
}

void
ServiceGraph::deliverAttempt(std::size_t edge, std::uint64_t chainId,
                             std::uint32_t attemptNo,
                             sim::Tick childDeadline, sim::Tick issuedAt)
{
    std::uint32_t callee = calleeIdx_[edge];
    auto it = chains_.find(chainId);
    bool live = it != chains_.end() && it->second.attempt == attemptNo;
    if (!live) {
        // The chain abandoned this attempt (timeout fired, or the call
        // settled) before the network delivered it. With a budget the
        // delivery is cancelled at the door; without one the callee
        // has no way to know and runs it anyway — a zombie whose
        // completion we attribute as callsCompletedIgnored.
        if (childDeadline != faults::kNeverTick &&
            eq_->now() >= childDeadline) {
            if (measuring_)
                ++metrics_.edges[edge].callsCancelledBudget;
            return;
        }
        std::uint64_t tok = nextToken_++;
        if (sims_[callee]->injectArrival(tok)) {
            Call c;
            c.node = callee;
            c.arrivedAt = eq_->now();
            c.issuedAt = issuedAt;
            c.viaEdge = static_cast<std::int32_t>(edge);
            c.deadline = childDeadline;
            c.chainId = chainId;
            c.attemptNo = attemptNo;
            calls_.emplace(tok, c);
        }
        // A shed zombie has nobody to notify.
        return;
    }
    std::uint64_t tok = nextToken_++;
    if (sims_[callee]->injectArrival(tok)) {
        Call c;
        c.node = callee;
        c.arrivedAt = eq_->now();
        c.issuedAt = issuedAt;
        c.parentToken = it->second.parentToken;
        c.viaEdge = static_cast<std::int32_t>(edge);
        c.deadline = childDeadline;
        c.chainId = chainId;
        c.attemptNo = attemptNo;
        calls_.emplace(tok, c);
        return;
    }
    // Shed at the callee's admission queue: fail fast and let the
    // retry ladder decide what happens next.
    if (measuring_)
        ++metrics_.edges[edge].callsShed;
    if (it->second.timer != sim::kInvalidTimer) {
        eq_->cancelTimer(it->second.timer);
        it->second.timer = sim::kInvalidTimer;
    }
    retryOrFail(chainId);
}

void
ServiceGraph::resolveChainReturn(std::size_t edge, std::uint64_t chainId,
                                 std::uint32_t attemptNo, bool childFailed,
                                 bool childDegraded)
{
    auto it = chains_.find(chainId);
    if (it == chains_.end() || it->second.attempt != attemptNo) {
        // A straggler from an abandoned attempt. The callee's cycles
        // are already spent; all that is left is honest accounting.
        if (measuring_)
            ++metrics_.edges[edge].callsCompletedIgnored;
        return;
    }
    if (measuring_) {
        EdgeStats &es = metrics_.edges[edge];
        ++es.callsCompleted;
        if (childFailed)
            ++es.failuresPropagated;
        if (childDegraded)
            ++es.degradedPropagated;
        es.rttCycles.add(
            static_cast<double>(eq_->now() - it->second.issuedAt));
    }
    settleChain(chainId, ChainOutcome::Success, childFailed,
                childDegraded);
}

void
ServiceGraph::settleChain(std::uint64_t chainId, ChainOutcome outcome,
                          bool childFailed, bool childDegraded)
{
    auto it = chains_.find(chainId);
    ensure(it != chains_.end(), "settleChain: unknown chain");
    EdgeCall ec = it->second;
    chains_.erase(it);
    if (ec.timer != sim::kInvalidTimer)
        eq_->cancelTimer(ec.timer);
    const EdgeConfig &cfg = edges_[ec.edge];
    // The breaker watches transport health: a delivered response is a
    // success even when the child's subtree failed — the callee is
    // answering, which is all the breaker protects.
    if (cfg.breaker.enabled)
        breakerRecord(ec.edge, outcome == ChainOutcome::Success,
                      ec.probe);
    if (cfg.retryBudget.enabled() && outcome == ChainOutcome::Success)
        edgeRetryTokens_[ec.edge] =
            std::min(cfg.retryBudget.cap,
                     edgeRetryTokens_[ec.edge] + cfg.retryBudget.ratio);
    if (outcome == ChainOutcome::Failed && measuring_)
        ++metrics_.edges[ec.edge].callsFailed;
    switch (outcome) {
      case ChainOutcome::Success:
        settleChild(ec.parentToken, childFailed, childDegraded);
        return;
      case ChainOutcome::Degraded:
        settleChild(ec.parentToken, /*childFailed=*/false,
                    /*childDegraded=*/true);
        return;
      case ChainOutcome::Failed:
        settleChild(ec.parentToken, /*childFailed=*/true,
                    /*childDegraded=*/false);
        return;
    }
    panic("settleChain: unreachable outcome");
}

std::pair<bool, bool>
ServiceGraph::breakerGate(std::size_t edge)
{
    const EdgeConfig &cfg = edges_[edge];
    if (!cfg.breaker.enabled)
        return {true, false};
    EdgeBreaker &b = edgeBreakers_[edge];
    switch (b.state) {
      case EdgeBreaker::State::Closed:
        return {true, false};
      case EdgeBreaker::State::Open:
        if (static_cast<double>(eq_->now() - b.openedAt) >=
            cfg.breaker.probeAfterCycles) {
            b.state = EdgeBreaker::State::HalfOpen;
            if (measuring_)
                ++metrics_.edges[edge].breakerProbes;
            return {true, true};
        }
        return {false, false};
      case EdgeBreaker::State::HalfOpen:
        // A probe is already in flight; everyone else short-circuits.
        return {false, false};
    }
    panic("ServiceGraph::breakerGate: unreachable state");
}

void
ServiceGraph::breakerRecord(std::size_t edge, bool success, bool probe)
{
    const EdgeConfig &cfg = edges_[edge];
    EdgeBreaker &b = edgeBreakers_[edge];
    if (probe) {
        ensure(b.state == EdgeBreaker::State::HalfOpen,
               "breakerRecord: probe outcome without half-open state");
        if (success) {
            b.state = EdgeBreaker::State::Closed;
            b.window.clear();
            b.failures = 0;
            if (measuring_)
                ++metrics_.edges[edge].breakerCloses;
        } else {
            b.state = EdgeBreaker::State::Open;
            b.openedAt = eq_->now();
        }
        return;
    }
    if (b.state != EdgeBreaker::State::Closed)
        return; // stragglers from before the breaker opened
    b.window.push_back(success);
    if (!success)
        ++b.failures;
    if (b.window.size() > cfg.breaker.window) {
        if (!b.window.front())
            --b.failures;
        b.window.pop_front();
    }
    if (b.window.size() >= cfg.breaker.minSamples &&
        static_cast<double>(b.failures) /
                static_cast<double>(b.window.size()) >=
            cfg.breaker.openThreshold) {
        b.state = EdgeBreaker::State::Open;
        b.openedAt = eq_->now();
        b.window.clear();
        b.failures = 0;
        if (measuring_)
            ++metrics_.edges[edge].breakerOpens;
        warn("edge breaker " + cfg.caller + " -> " + cfg.callee +
             " opened at tick " + std::to_string(eq_->now()) +
             ": callers short-circuit to degraded responses");
    }
}

// --------------------------------------------------------------------
// Config front end
// --------------------------------------------------------------------

EdgeConfig
edgeFromConfig(const Config &cfg, const std::string &section,
               const std::string &prefix)
{
    auto key = [&prefix](const char *k) { return prefix + k; };
    EdgeConfig e;
    e.caller = cfg.getString(section, key("caller"));
    e.callee = cfg.getString(section, key("callee"));
    e.fanout =
        static_cast<std::uint32_t>(cfg.getCount(section, key("fanout"), 1));
    e.style =
        callStyleFromString(cfg.getString(section, key("style"), "sync"));
    e.latencyCycles = cfg.getDouble(section, key("latency"), 0.0);
    e.latencyJitterCycles = cfg.getDouble(section, key("jitter"), 0.0);
    e.rpcTimeoutCycles = cfg.getDouble(section, key("timeout"), 0.0);
    e.maxAttempts = static_cast<std::uint32_t>(
        cfg.getCount(section, key("max_attempts"), 1));
    e.retryBudget.ratio =
        cfg.getDouble(section, key("retry_budget_ratio"), 0.1);
    e.retryBudget.cap =
        cfg.getDouble(section, key("retry_budget_cap"), 0.0);
    e.budgetSplit = budgetSplitFromString(
        cfg.getString(section, key("budget_split"), "even"));
    e.budgetWeight = cfg.getDouble(section, key("budget_weight"), 0.5);
    // Presence of the threshold enables the breaker. The dependent
    // keys are only consumed when it is present, so a breaker_window
    // without a threshold surfaces as an unknown key.
    if (cfg.has(section, key("breaker_open_threshold"))) {
        e.breaker.enabled = true;
        e.breaker.openThreshold =
            cfg.getDouble(section, key("breaker_open_threshold"));
        e.breaker.window = static_cast<std::uint32_t>(cfg.getCount(
            section, key("breaker_window"), e.breaker.window));
        e.breaker.minSamples = static_cast<std::uint32_t>(cfg.getCount(
            section, key("breaker_min_samples"), e.breaker.minSamples));
        e.breaker.probeAfterCycles = cfg.getDouble(
            section, key("breaker_probe_after"),
            e.breaker.probeAfterCycles);
    }
    // Any fault key enables the plan. No short-circuit: every key must
    // be probed so unusedKeys() sees them all.
    auto parse_windows = [&cfg, &section](const std::string &wkey) {
        std::vector<faults::StallWindow> windows;
        for (const std::string &w :
             split(cfg.getString(section, wkey), ',')) {
            std::vector<std::string> ends = split(w, ':');
            if (ends.size() != 2)
                fatal("config key '" + wkey +
                      "': want begin:end[,begin:end] in ticks, got '" +
                      w + "'");
            faults::StallWindow win;
            try {
                win.begin = parseCount(trim(ends[0]));
                win.end = parseCount(trim(ends[1]));
            } catch (const FatalError &err) {
                fatal("config key '" + wkey + "': " + err.what());
            }
            windows.push_back(win);
        }
        return windows;
    };
    bool f_seed = cfg.has(section, key("fault_seed"));
    bool f_drop = cfg.has(section, key("fault_drop_p"));
    bool f_spike = cfg.has(section, key("fault_spike_p"));
    bool f_spike_cycles = cfg.has(section, key("fault_spike_cycles"));
    bool f_spike_windows = cfg.has(section, key("fault_spike_windows"));
    bool f_blackholes = cfg.has(section, key("fault_blackholes"));
    if (f_seed || f_drop || f_spike || f_spike_cycles || f_spike_windows ||
        f_blackholes) {
        auto plan = std::make_shared<faults::EdgeFaultPlan>();
        plan->seed = cfg.getCount(section, key("fault_seed"), 1);
        plan->dropProbability =
            cfg.getDouble(section, key("fault_drop_p"), 0.0);
        plan->spikeProbability =
            cfg.getDouble(section, key("fault_spike_p"), 0.0);
        plan->spikeLatencyCycles =
            cfg.getDouble(section, key("fault_spike_cycles"), 0.0);
        if (f_spike_windows)
            plan->spikeWindows =
                parse_windows(key("fault_spike_windows"));
        if (f_blackholes)
            plan->blackholes = parse_windows(key("fault_blackholes"));
        e.faultPlan = std::move(plan);
    }
    return e;
}

ServiceGraph
serviceGraphFromConfig(const Config &cfg, const std::string &graphSection)
{
    ServiceGraph g(cfg.getCount(graphSection, "seed", 1));
    g.rootDeadline(
        cfg.getDouble(graphSection, "root_deadline_cycles", 0.0));
    for (const std::string &entry :
         split(cfg.getString(graphSection, "services"), ',')) {
        std::string name = trim(entry);
        if (name.empty())
            fatal("config key 'services' in [" + graphSection +
                  "]: empty service section name");
        g.addService(ServiceSpec::fromConfig(cfg, name));
    }
    for (std::size_t i = 0;; ++i) {
        std::string prefix = "edge_" + std::to_string(i) + "_";
        if (!cfg.has(graphSection, prefix + "caller"))
            break;
        g.addEdge(edgeFromConfig(cfg, graphSection, prefix));
    }
    std::vector<std::string> unknown = cfg.unusedKeys(graphSection);
    if (!unknown.empty()) {
        std::string msg = "serviceGraphFromConfig: unknown key" +
            std::string(unknown.size() == 1 ? "" : "s") + " in [" +
            graphSection + "]:";
        for (const std::string &k : unknown)
            msg += " '" + k + "'";
        msg += " (edges must be numbered contiguously from edge_0_)";
        fatal(msg);
    }
    return g;
}

} // namespace accel::microsim

#include "microsim/service_graph.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/json_fmt.hh"
#include "util/logging.hh"

namespace accel::microsim {

// --------------------------------------------------------------------
// Edge configuration
// --------------------------------------------------------------------

const char *
toString(CallStyle style)
{
    switch (style) {
      case CallStyle::Sync:
        return "sync";
      case CallStyle::Async:
        return "async";
    }
    panic("toString: unreachable CallStyle");
}

CallStyle
callStyleFromString(const std::string &name)
{
    if (name == "sync")
        return CallStyle::Sync;
    if (name == "async")
        return CallStyle::Async;
    fatal("unknown call style '" + name + "' (want sync | async)");
}

void
EdgeConfig::validate() const
{
    require(!caller.empty(), "EdgeConfig.caller must name a service");
    require(!callee.empty(), "EdgeConfig.callee must name a service");
    require(fanout >= 1, "EdgeConfig.fanout must be >= 1");
    require(std::isfinite(latencyCycles) && latencyCycles >= 0,
            "EdgeConfig.latencyCycles must be finite and >= 0");
    require(std::isfinite(latencyJitterCycles) && latencyJitterCycles >= 0,
            "EdgeConfig.latencyJitterCycles must be finite and >= 0");
}

// --------------------------------------------------------------------
// Metrics
// --------------------------------------------------------------------

std::string
EdgeStats::summaryJson() const
{
    std::ostringstream os;
    os << "{\"caller\": \"" << caller << "\", \"callee\": \"" << callee
       << "\", \"calls_issued\": " << callsIssued
       << ", \"calls_completed\": " << callsCompleted
       << ", \"calls_shed\": " << callsShed
       << ", \"failures_propagated\": " << failuresPropagated
       << ", \"rtt_cycles\": " << rttCycles.summaryJson() << "}";
    return os.str();
}

std::string
GraphNodeMetrics::summaryJson() const
{
    std::ostringstream os;
    os << "{\"node\": \"" << node
       << "\", \"subtrees_started\": " << subtreesStarted
       << ", \"subtrees_completed\": " << subtreesCompleted
       << ", \"subtrees_failed\": " << subtreesFailed
       << ", \"subtree_latency_cycles\": "
       << subtreeLatencyCycles.summaryJson()
       << ", \"service\": " << service.summaryJson() << "}";
    return os.str();
}

std::string
SharedTierMetrics::summaryJson() const
{
    std::ostringstream os;
    os << "{\"tier_name\": \"" << tierName
       << "\", \"aggregate_device\": " << aggregateDevice.summaryJson()
       << ", \"tier\": " << tierStats.summaryJson() << "}";
    return os.str();
}

double
GraphMetrics::rootQps() const
{
    if (graphMeasuredSeconds <= 0)
        return 0.0;
    return static_cast<double>(rootsCompleted) / graphMeasuredSeconds;
}

double
GraphMetrics::rootGoodputQps() const
{
    if (graphMeasuredSeconds <= 0)
        return 0.0;
    ensure(rootsFailed <= rootsCompleted,
           "GraphMetrics: failed > completed roots");
    return static_cast<double>(rootsCompleted - rootsFailed) /
           graphMeasuredSeconds;
}

const GraphNodeMetrics &
GraphMetrics::node(const std::string &name) const
{
    for (const GraphNodeMetrics &nm : nodes) {
        if (nm.node == name)
            return nm;
    }
    fatal("GraphMetrics: no node named '" + name + "'");
}

std::string
GraphMetrics::summaryJson() const
{
    std::ostringstream os;
    os << "{\"graph_measured_seconds\": "
       << jsonNumber(graphMeasuredSeconds)
       << ", \"root_qps\": " << jsonNumber(rootQps())
       << ", \"root_goodput_qps\": " << jsonNumber(rootGoodputQps())
       << ", \"roots_started\": " << rootsStarted
       << ", \"roots_completed\": " << rootsCompleted
       << ", \"roots_failed\": " << rootsFailed
       << ", \"root_latency_cycles\": " << rootLatencyCycles.summaryJson()
       << ", \"graph_requests_arrived\": " << graphRequestsArrived
       << ", \"graph_requests_completed\": " << graphRequestsCompleted
       << ", \"graph_requests_shed\": " << graphRequestsShed
       << ", \"graph_requests_failed\": " << graphRequestsFailed
       << ", \"nodes\": [";
    for (size_t i = 0; i < nodes.size(); ++i)
        os << (i == 0 ? "" : ", ") << nodes[i].summaryJson();
    os << "], \"edges\": [";
    for (size_t i = 0; i < edges.size(); ++i)
        os << (i == 0 ? "" : ", ") << edges[i].summaryJson();
    os << "], \"shared_tiers\": [";
    for (size_t i = 0; i < sharedTiers.size(); ++i)
        os << (i == 0 ? "" : ", ") << sharedTiers[i].summaryJson();
    os << "]}";
    return os.str();
}

// --------------------------------------------------------------------
// Assembly
// --------------------------------------------------------------------

ServiceGraph::ServiceGraph(std::uint64_t seed) : seed_(seed) {}

ServiceGraph &
ServiceGraph::addService(const ServiceSpec &spec)
{
    specs_.push_back(spec);
    return *this;
}

ServiceGraph &
ServiceGraph::addSharedTier(const std::string &tierName,
                            const AcceleratorConfig &device,
                            const TierConfig &tier)
{
    sharedTierDefs_.push_back(SharedTierDef{tierName, device, tier});
    return *this;
}

ServiceGraph &
ServiceGraph::addEdge(const EdgeConfig &edge)
{
    edges_.push_back(edge);
    return *this;
}

std::uint32_t
ServiceGraph::nodeIndex(const std::string &name) const
{
    for (size_t i = 0; i < specs_.size(); ++i) {
        if (specs_[i].name() == name)
            return static_cast<std::uint32_t>(i);
    }
    fatal("ServiceGraph: no service named '" + name + "'");
}

bool
ServiceGraph::hasInEdge(std::uint32_t node) const
{
    const std::string &name = specs_[node].name();
    return std::any_of(edges_.begin(), edges_.end(),
                       [&name](const EdgeConfig &e) {
                           return e.callee == name;
                       });
}

namespace {

/** Collect one throwing check as an error line (prefix stripped). */
template <typename Fn>
void
collect(std::vector<std::string> &out, const std::string &where, Fn &&check)
{
    try {
        check();
    } catch (const FatalError &e) {
        std::string msg = e.what();
        const std::string prefix = "fatal: ";
        if (msg.rfind(prefix, 0) == 0)
            msg.erase(0, prefix.size());
        out.push_back(where + msg);
    }
}

} // namespace

std::vector<std::string>
ServiceGraph::errors() const
{
    std::vector<std::string> out;
    if (specs_.empty())
        out.push_back("graph has no services");

    // Node names must be unique: they are the edge address space.
    for (size_t i = 0; i < specs_.size(); ++i) {
        if (specs_[i].name().empty())
            out.push_back("service " + std::to_string(i) +
                          " has an empty name");
        for (size_t j = i + 1; j < specs_.size(); ++j) {
            if (specs_[i].name() == specs_[j].name())
                out.push_back("duplicate service name '" +
                              specs_[i].name() + "'");
        }
    }

    for (const ServiceSpec &spec : specs_) {
        for (const std::string &err : spec.errors())
            out.push_back("node '" + spec.name() + "': " + err);
    }

    // All nodes share one tick clock; mixed frequencies would make the
    // shared queue's ticks mean different wall times per node.
    for (const ServiceSpec &spec : specs_) {
        if (spec.service().clockGHz != specs_.front().service().clockGHz)
            out.push_back("node '" + spec.name() + "': clockGHz " +
                          std::to_string(spec.service().clockGHz) +
                          " differs from '" + specs_.front().name() +
                          "' (" +
                          std::to_string(
                              specs_.front().service().clockGHz) +
                          "); the shared clock needs one frequency");
    }

    // Shared tiers: unique names, valid configs, every definition used,
    // every reference resolved, and no hedging into Sync-design nodes
    // (the same cross-check ServiceSpec applies to its own tier).
    for (size_t i = 0; i < sharedTierDefs_.size(); ++i) {
        const SharedTierDef &def = sharedTierDefs_[i];
        if (def.name.empty())
            out.push_back("shared tier " + std::to_string(i) +
                          " has an empty name");
        for (size_t j = i + 1; j < sharedTierDefs_.size(); ++j) {
            if (def.name == sharedTierDefs_[j].name)
                out.push_back("duplicate shared tier name '" + def.name +
                              "'");
        }
        collect(out, "shared tier '" + def.name + "': ",
                [&def] { def.device.validate(); });
        collect(out, "shared tier '" + def.name + "': ",
                [&def] { def.config.validate(); });
        bool used = false;
        for (const ServiceSpec &spec : specs_) {
            if (spec.sharedTierName() != def.name)
                continue;
            used = true;
            if (def.config.hedge.enabled &&
                spec.service().design == model::ThreadingDesign::Sync) {
                out.push_back(
                    "node '" + spec.name() + "': shared tier '" +
                    def.name +
                    "' hedges, but the node runs the Sync design (the "
                    "blocked driver waits on its single offload)");
            }
        }
        if (!used)
            out.push_back("shared tier '" + def.name +
                          "' is not referenced by any service");
    }
    for (const ServiceSpec &spec : specs_) {
        if (spec.sharedTierName().empty())
            continue;
        bool found = false;
        for (const SharedTierDef &def : sharedTierDefs_) {
            if (def.name == spec.sharedTierName())
                found = true;
        }
        if (!found)
            out.push_back("node '" + spec.name() +
                          "': names unknown shared tier '" +
                          spec.sharedTierName() + "'");
    }

    // Edges: valid shapes, known endpoints, no self-calls.
    for (const EdgeConfig &edge : edges_) {
        const std::string where =
            "edge " + edge.caller + " -> " + edge.callee + ": ";
        collect(out, where, [&edge] { edge.validate(); });
        bool endpoints = true;
        for (const std::string &end : {edge.caller, edge.callee}) {
            bool found = false;
            for (const ServiceSpec &spec : specs_) {
                if (spec.name() == end)
                    found = true;
            }
            if (!end.empty() && !found) {
                out.push_back(where + "no service named '" + end + "'");
                endpoints = false;
            }
        }
        if (endpoints && !edge.caller.empty() &&
            edge.caller == edge.callee)
            out.push_back(where + "a service cannot call itself");
    }

    // The graph must be a DAG: a cycle would recurse forever (every
    // completion at a node on the cycle re-injects into the cycle).
    bool resolvable = true;
    for (const EdgeConfig &edge : edges_) {
        for (const std::string &end : {edge.caller, edge.callee}) {
            bool found = false;
            for (const ServiceSpec &spec : specs_) {
                if (spec.name() == end)
                    found = true;
            }
            if (!found)
                resolvable = false;
        }
    }
    if (resolvable && !specs_.empty()) {
        // Iterative DFS three-colouring over node indices.
        std::vector<std::vector<std::uint32_t>> adj(specs_.size());
        for (const EdgeConfig &edge : edges_) {
            if (edge.caller != edge.callee)
                adj[nodeIndex(edge.caller)].push_back(
                    nodeIndex(edge.callee));
        }
        std::vector<int> colour(specs_.size(), 0); // 0 white 1 grey 2 black
        for (std::uint32_t root = 0; root < specs_.size(); ++root) {
            if (colour[root] != 0)
                continue;
            std::vector<std::pair<std::uint32_t, size_t>> stack;
            stack.emplace_back(root, 0);
            colour[root] = 1;
            while (!stack.empty()) {
                auto &[n, next] = stack.back();
                if (next < adj[n].size()) {
                    std::uint32_t m = adj[n][next++];
                    if (colour[m] == 1) {
                        out.push_back("cycle through '" +
                                      specs_[m].name() +
                                      "': the graph must be a DAG");
                        colour[m] = 2;
                    } else if (colour[m] == 0) {
                        colour[m] = 1;
                        stack.emplace_back(m, 0);
                    }
                } else {
                    colour[n] = 2;
                    stack.pop_back();
                }
            }
        }
    }
    return out;
}

void
ServiceGraph::validate() const
{
    std::vector<std::string> errs = errors(); // walks specs_ and edges_
    if (errs.empty())
        return;
    std::string msg = "ServiceGraph (" + std::to_string(specs_.size()) +
        " services, " + std::to_string(edges_.size()) + " edges):";
    for (const std::string &e : errs)
        msg += "\n  - " + e;
    fatal(msg);
}

// --------------------------------------------------------------------
// Run
// --------------------------------------------------------------------

void
ServiceGraph::initWindowStats()
{
    GraphMetrics fresh;
    fresh.graphMeasuredSeconds = metrics_.graphMeasuredSeconds;
    fresh.nodes.reserve(specs_.size());
    for (const ServiceSpec &spec : specs_) {
        GraphNodeMetrics nm;
        nm.node = spec.name();
        fresh.nodes.push_back(std::move(nm));
    }
    fresh.edges.reserve(edges_.size());
    for (const EdgeConfig &edge : edges_) {
        EdgeStats es;
        es.caller = edge.caller;
        es.callee = edge.callee;
        fresh.edges.push_back(std::move(es));
    }
    metrics_ = std::move(fresh);
}

GraphMetrics
ServiceGraph::run(double measureSeconds, double warmupSeconds)
{
    require(measureSeconds > 0,
            "ServiceGraph::run: window must be positive");
    require(warmupSeconds >= 0, "ServiceGraph::run: negative warmup");
    ensure(!ran_, "ServiceGraph::run: single-use object");
    ran_ = true;
    validate();

    eq_ = std::make_unique<sim::EventQueue>();

    sharedTiers_.reserve(sharedTierDefs_.size());
    for (const SharedTierDef &def : sharedTierDefs_) {
        sharedTiers_.push_back(std::make_unique<AcceleratorTier>(
            *eq_, def.device, def.config));
    }

    sims_.reserve(specs_.size());
    outEdges_.assign(specs_.size(), {});
    calleeIdx_.clear();
    calleeIdx_.reserve(edges_.size());
    for (size_t e = 0; e < edges_.size(); ++e) {
        outEdges_[nodeIndex(edges_[e].caller)].push_back(e);
        calleeIdx_.push_back(nodeIndex(edges_[e].callee));
        // One seeded stream per edge keeps jitter draws independent of
        // node count and of the other edges' traffic.
        edgeRngs_.emplace_back(seed_ ^ 0x6772617068ULL,
                               0xed6e0000ULL + e);
    }

    for (size_t i = 0; i < specs_.size(); ++i) {
        AcceleratorTier *shared = nullptr;
        for (size_t t = 0; t < sharedTierDefs_.size(); ++t) {
            if (sharedTierDefs_[t].name == specs_[i].sharedTierName())
                shared = sharedTiers_[t].get();
        }
        sims_.push_back(std::make_unique<ServiceSim>(
            specs_[i], *eq_, shared,
            hasInEdge(static_cast<std::uint32_t>(i))));
        std::uint32_t node = static_cast<std::uint32_t>(i);
        sims_[i]->setCompletionHook(
            [this, node](std::uint64_t token, sim::Tick arrivedAt,
                         bool failed) {
                onNodeCompletion(node, token, arrivedAt, failed);
            });
    }

    metrics_.graphMeasuredSeconds = measureSeconds;
    initWindowStats();
    measuring_ = warmupSeconds == 0;

    // Node windows first: a single-node graph then replays the exact
    // standalone event sequence, with the graph's own warmup flip
    // appended after every node's (same tick and priority, later
    // insertion order).
    for (const std::unique_ptr<ServiceSim> &sim : sims_)
        sim->beginWindow(measureSeconds, warmupSeconds);
    sim::Tick end_tick = sims_.front()->windowEndTick();

    if (!measuring_) {
        double cycles_per_second =
            specs_.front().service().clockGHz * 1e9;
        sim::Tick warmup_tick =
            static_cast<sim::Tick>(warmupSeconds * cycles_per_second);
        eq_->schedule(warmup_tick, [this]() {
            initWindowStats();
            // Shared tiers reset here, once — the nodes each skipped
            // their own tier reset for exactly this reason.
            for (const std::unique_ptr<AcceleratorTier> &tier :
                 sharedTiers_)
                tier->resetStats();
            measuring_ = true;
        }, /*priority=*/-100);
    }

    eq_->runUntil(end_tick);

    for (size_t i = 0; i < sims_.size(); ++i) {
        metrics_.nodes[i].service = sims_[i]->collectMetrics();
        const ServiceMetrics &sm = metrics_.nodes[i].service;
        metrics_.graphRequestsArrived += sm.requestsArrived;
        metrics_.graphRequestsCompleted += sm.requestsCompleted;
        metrics_.graphRequestsShed += sm.requestsShed;
        metrics_.graphRequestsFailed += sm.requestsFailed;
    }
    metrics_.sharedTiers.reserve(sharedTierDefs_.size());
    for (size_t t = 0; t < sharedTierDefs_.size(); ++t) {
        SharedTierMetrics st;
        st.tierName = sharedTierDefs_[t].name;
        st.aggregateDevice = sharedTiers_[t]->aggregateDeviceStats();
        st.tierStats = sharedTiers_[t]->snapshot();
        metrics_.sharedTiers.push_back(std::move(st));
    }
    return metrics_;
}

// --------------------------------------------------------------------
// Call flow
// --------------------------------------------------------------------

void
ServiceGraph::onNodeCompletion(std::uint32_t node, std::uint64_t token,
                               sim::Tick arrivedAt, bool failed)
{
    if (token == 0) {
        // A locally-originated request: it roots a fresh subtree.
        std::uint64_t tok = nextToken_++;
        Call c;
        c.node = node;
        c.arrivedAt = arrivedAt;
        c.issuedAt = arrivedAt;
        c.serviceDone = true;
        c.failed = failed;
        calls_.emplace(tok, c);
        if (measuring_) {
            ++metrics_.rootsStarted;
            ++metrics_.nodes[node].subtreesStarted;
        }
        issueCalls(tok);
        maybeFinishCall(tok);
        return;
    }
    auto it = calls_.find(token);
    ensure(it != calls_.end(),
           "ServiceGraph: completion for an unknown call token");
    Call &c = it->second;
    ensure(c.node == node, "ServiceGraph: call completed on wrong node");
    c.serviceDone = true;
    if (failed)
        c.failed = true;
    if (measuring_)
        ++metrics_.nodes[node].subtreesStarted;
    issueCalls(token);
    maybeFinishCall(token);
}

void
ServiceGraph::issueCalls(std::uint64_t token)
{
    Call &c = calls_.at(token);
    for (size_t e : outEdges_[c.node]) {
        const EdgeConfig &edge = edges_[e];
        for (std::uint32_t k = 0; k < edge.fanout; ++k) {
            if (measuring_)
                ++metrics_.edges[e].callsIssued;
            if (edge.style == CallStyle::Sync)
                ++c.pendingChildren;
            sim::Tick issued = eq_->now();
            eq_->scheduleIn(drawEdgeLatency(e),
                            [this, e, token, issued]() {
                                deliverCall(e, token, issued);
                            });
        }
    }
}

void
ServiceGraph::deliverCall(std::size_t edge, std::uint64_t parentToken,
                          sim::Tick issuedAt)
{
    std::uint32_t callee = calleeIdx_[edge];
    std::uint64_t tok = nextToken_++;
    if (sims_[callee]->injectArrival(tok)) {
        Call c;
        c.node = callee;
        c.arrivedAt = eq_->now();
        c.issuedAt = issuedAt;
        c.parentToken = parentToken;
        c.viaEdge = static_cast<std::int32_t>(edge);
        calls_.emplace(tok, c);
        return;
    }
    // Shed at the callee's admission queue: the call never ran. A sync
    // caller learns immediately (degenerate "rejection response") and
    // the failure joins into its subtree.
    if (measuring_)
        ++metrics_.edges[edge].callsShed;
    if (edges_[edge].style == CallStyle::Sync)
        settleChild(parentToken, /*childFailed=*/true);
}

void
ServiceGraph::maybeFinishCall(std::uint64_t token)
{
    auto it = calls_.find(token);
    ensure(it != calls_.end(), "maybeFinishCall: unknown token");
    Call &c = it->second;
    if (!c.serviceDone || c.pendingChildren > 0)
        return;
    sim::Tick now = eq_->now();
    if (measuring_) {
        GraphNodeMetrics &nm = metrics_.nodes[c.node];
        ++nm.subtreesCompleted;
        if (c.failed)
            ++nm.subtreesFailed;
        nm.subtreeLatencyCycles.add(
            static_cast<double>(now - c.arrivedAt));
    }
    if (c.viaEdge < 0) {
        if (measuring_) {
            ++metrics_.rootsCompleted;
            if (c.failed)
                ++metrics_.rootsFailed;
            metrics_.rootLatencyCycles.add(
                static_cast<double>(now - c.arrivedAt));
        }
        calls_.erase(it);
        return;
    }
    size_t e = static_cast<size_t>(c.viaEdge);
    std::uint64_t parent = c.parentToken;
    bool failed = c.failed;
    sim::Tick issued = c.issuedAt;
    calls_.erase(it);
    if (edges_[e].style == CallStyle::Async) {
        // Fire-and-forget: the caller joined long ago; just close the
        // edge's books. Failures are counted, never propagated.
        if (measuring_) {
            EdgeStats &es = metrics_.edges[e];
            ++es.callsCompleted;
            if (failed)
                ++es.failuresPropagated;
            es.rttCycles.add(static_cast<double>(now - issued));
        }
        return;
    }
    // Sync: the response pays the return hop, then joins at the caller.
    eq_->scheduleIn(drawEdgeLatency(e),
                    [this, e, parent, failed, issued]() {
                        if (measuring_) {
                            EdgeStats &es = metrics_.edges[e];
                            ++es.callsCompleted;
                            if (failed)
                                ++es.failuresPropagated;
                            es.rttCycles.add(static_cast<double>(
                                eq_->now() - issued));
                        }
                        settleChild(parent, failed);
                    });
}

void
ServiceGraph::settleChild(std::uint64_t parentToken, bool childFailed)
{
    auto it = calls_.find(parentToken);
    ensure(it != calls_.end(), "settleChild: unknown parent call");
    Call &p = it->second;
    ensure(p.pendingChildren > 0, "settleChild: no pending children");
    --p.pendingChildren;
    if (childFailed)
        p.failed = true;
    maybeFinishCall(parentToken);
}

sim::Tick
ServiceGraph::drawEdgeLatency(std::size_t edge)
{
    const EdgeConfig &cfg = edges_[edge];
    double lat = cfg.latencyCycles;
    if (cfg.latencyJitterCycles > 0)
        lat += edgeRngs_[edge].exponential(cfg.latencyJitterCycles);
    return std::max<sim::Tick>(
        1, static_cast<sim::Tick>(std::llround(lat)));
}

} // namespace accel::microsim

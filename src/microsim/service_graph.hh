/**
 * @file
 * Multi-service RPC fan-out simulation on one shared clock.
 *
 * A ServiceGraph wires N ServiceSim instances (built from ServiceSpecs)
 * with directed RPC edges. When a request finishes its service-local
 * work at a node, the node issues one call per out-edge fan-out slot:
 * the call traverses a per-edge network latency (fixed plus optional
 * exponential jitter), arrives at the callee through its normal
 * admission path (so bounded queues shed RPCs exactly like local
 * arrivals), and recursively fans out from there. Sync edges join: the
 * caller's subtree is complete only when its own work and every sync
 * child subtree (plus the return hop) have finished, which is what
 * makes tail latency grow with fan-out depth (DeathStarBench's
 * observation). Async edges are fire-and-forget: they load the callee
 * but never extend the caller's critical path.
 *
 * Nodes may contend for graph-owned shared AcceleratorTiers
 * (addSharedTier + ServiceSpec::sharedTier), modelling the
 * shared-offload-engine deployment of the paper's fleet analysis:
 * one tier's queue absorbs offloads from every subscribed service.
 *
 * Worker threads never block on downstream RPCs — fan-out happens at
 * service completion (continuation-passing), so a node's concurrency
 * limits apply to its own work only, while the *latency* of sync
 * children lands on the caller's subtree path. GraphMetrics therefore
 * decomposes: per-node service-local latency (ServiceMetrics), per-edge
 * RTT (out hop + child subtree + return hop), and per-node subtree
 * latency whose root-node flavour is the end-to-end figure.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "config/config.hh"
#include "faults/edge_fault_plan.hh"
#include "microsim/service_spec.hh"
#include "stats/reservoir.hh"

namespace accel::microsim {

/** How a caller relates to one edge's RPCs. */
enum class CallStyle
{
    Sync, //!< caller's subtree joins on the child (and its return hop)
    Async //!< fire-and-forget: loads the callee, no join, no propagation
};

const char *toString(CallStyle style);
CallStyle callStyleFromString(const std::string &name);

/**
 * How a caller splits its remaining deadline budget across an edge's
 * calls (see ServiceGraph::rootDeadline). Only meaningful when the
 * root carries a deadline; without one every policy is a no-op.
 */
enum class BudgetSplit
{
    /** Child inherits the caller's absolute deadline unchanged. */
    Even,
    /** Child gets budgetWeight x the caller's remaining budget. */
    Weighted,
    /**
     * Each attempt gets remaining / (attempts left), so a full retry
     * ladder still fits inside the caller's budget.
     */
    ReserveForRetry,
};

const char *toString(BudgetSplit split);
BudgetSplit budgetSplitFromString(const std::string &name);

/**
 * Per-edge token-bucket retry limiter: the standard defense against
 * self-sustaining retry storms. The bucket starts at cap tokens; every
 * retry costs one token and every successful call refills ratio
 * tokens (clamped at cap), so sustained retry traffic is bounded by
 * ratio x the success rate instead of multiplying the offered load
 * when the callee browns out. cap == 0 (default) disables the bucket:
 * retries are limited only by EdgeConfig::maxAttempts.
 */
struct RetryBudgetConfig
{
    /** Tokens refilled per successful call. */
    double ratio = 0.1;

    /** Bucket capacity; 0 disables the budget. */
    double cap = 0.0;

    bool enabled() const { return cap > 0; }
};

/** One directed RPC edge: caller fans out to callee. */
struct EdgeConfig
{
    std::string caller;
    std::string callee;

    /** Calls issued per completed caller request. */
    std::uint32_t fanout = 1;

    CallStyle style = CallStyle::Sync;

    /** Fixed network/serialization delay per hop, in caller cycles. */
    double latencyCycles = 0.0;

    /** Mean of an exponential jitter added per hop (0 = deterministic). */
    double latencyJitterCycles = 0.0;

    // --- resilience layer (sync edges only; defaults = all off) ---

    /**
     * Caller-side RPC timeout per attempt, in cycles (0 = wait
     * forever, the legacy behaviour). On expiry the caller abandons
     * the attempt — a late response is ignored — and retries while
     * attempts and retry-budget tokens remain.
     */
    double rpcTimeoutCycles = 0.0;

    /** Total attempts per call, including the first (>= 2 retries). */
    std::uint32_t maxAttempts = 1;

    /** Token-bucket limiter on retries (default: disabled). */
    RetryBudgetConfig retryBudget;

    /**
     * Per-edge circuit breaker: while open the caller skips the
     * subtree and settles the call degraded instead of piling onto a
     * sick callee. Reuses the intra-service BreakerConfig; requires
     * rpcTimeoutCycles > 0 (timeouts are the failure signal).
     */
    BreakerConfig breaker;

    /** Deadline budget-split policy for this edge's calls. */
    BudgetSplit budgetSplit = BudgetSplit::Even;

    /** Fraction of remaining budget per child (Weighted split). */
    double budgetWeight = 0.5;

    /** Edge fault schedule (drops, spikes, blackholes); null = none. */
    std::shared_ptr<const faults::EdgeFaultPlan> faultPlan;

    /**
     * True when this edge needs the attempt/chain machinery rather
     * than the legacy fire-once dispatch path.
     */
    bool resilient() const;

    /** @throws FatalError on out-of-domain values (names the field). */
    void validate() const;
};

/**
 * Parse one edge from `<prefix>*` keys of @p section (the graph
 * config convention uses `edge_<i>_` prefixes): caller, callee,
 * fanout, style, latency, jitter, timeout, max_attempts,
 * retry_budget_ratio, retry_budget_cap, budget_split, budget_weight,
 * breaker_{open_threshold,window,min_samples,probe_after} (presence
 * of breaker_open_threshold enables), and
 * fault_{seed,drop_p,spike_p,spike_cycles,spike_windows,blackholes}
 * (presence of any enables; window lists = "begin:end,begin:end" in
 * ticks).
 * @throws FatalError on malformed values (names the key).
 */
EdgeConfig edgeFromConfig(const Config &cfg, const std::string &section,
                          const std::string &prefix);

/** Per-edge call accounting over the measurement window. */
struct EdgeStats
{
    std::string caller;
    std::string callee;

    std::uint64_t callsIssued = 0;
    /** Subtree completions reported back across this edge. */
    std::uint64_t callsCompleted = 0;
    /** Calls rejected at the callee's admission queue. */
    std::uint64_t callsShed = 0;
    /** Completed child subtrees that carried a failure. */
    std::uint64_t failuresPropagated = 0;
    /** Completed child subtrees that carried a degraded marker. */
    std::uint64_t degradedPropagated = 0;

    // --- resilience-layer attribution (all zero when the layer is off) ---

    /** RPC attempts issued (callsIssued counts logical calls once). */
    std::uint64_t attemptsIssued = 0;
    /** Attempts lost to the fault plan's drop draw. */
    std::uint64_t callsDropped = 0;
    /** Attempts issued into a blackhole window. */
    std::uint64_t callsBlackholed = 0;
    /** Attempts whose caller-side timeout expired. */
    std::uint64_t attemptsTimedOut = 0;
    /** Retries actually issued (consumed a budget token if enabled). */
    std::uint64_t attemptsRetried = 0;
    /** Retries wanted but suppressed by an empty token bucket. */
    std::uint64_t retriesSuppressed = 0;
    /** Calls settled degraded because the deadline budget ran out. */
    std::uint64_t callsDeadlineExceeded = 0;
    /** Deliveries cancelled at the callee's door: over budget. */
    std::uint64_t callsCancelledBudget = 0;
    /** Calls skipped by an open breaker (settled degraded). */
    std::uint64_t callsShortCircuited = 0;
    /** Calls that failed outright: retry ladder exhausted/suppressed. */
    std::uint64_t callsFailed = 0;
    /** Responses from abandoned attempts: pure wasted callee work. */
    std::uint64_t callsCompletedIgnored = 0;

    // --- per-edge breaker state machine ---
    std::uint64_t breakerOpens = 0;
    std::uint64_t breakerProbes = 0;
    std::uint64_t breakerCloses = 0;

    /** Edge RTT: out hop + child subtree (+ return hop when sync). */
    ReservoirSample rttCycles;

    std::string summaryJson() const;
};

/** One node's roll-up: its ServiceMetrics plus subtree accounting. */
struct GraphNodeMetrics
{
    std::string node;

    /** The node's own simulator metrics (service-local view). */
    ServiceMetrics service;

    /** Subtrees whose service-local phase completed at this node. */
    std::uint64_t subtreesStarted = 0;
    /** Subtrees fully joined (own work + every sync child). */
    std::uint64_t subtreesCompleted = 0;
    /** Joined subtrees that carried a failure. */
    std::uint64_t subtreesFailed = 0;
    /** Joined subtrees that carried a degraded marker. */
    std::uint64_t subtreesDegraded = 0;
    /** Subtrees whose fan-out was skipped: deadline budget exhausted. */
    std::uint64_t subtreesPrunedBudget = 0;

    /** Arrival at this node -> subtree join (includes sync children). */
    ReservoirSample subtreeLatencyCycles;

    std::string summaryJson() const;
};

/** One graph-owned tier's cross-service contention figures. */
struct SharedTierMetrics
{
    std::string tierName;

    /** Cross-replica device aggregate (all subscribed services). */
    AcceleratorStats aggregateDevice;

    /** Tier dispatch/hedge/health counters and replica breakdowns. */
    TierStats tierStats;

    std::string summaryJson() const;
};

/** Everything a graph run measures. */
struct GraphMetrics
{
    double graphMeasuredSeconds = 0.0;

    /** Locally-originated requests whose fan-out began in the window. */
    std::uint64_t rootsStarted = 0;
    /** Root subtrees fully joined: the end-to-end unit of work. */
    std::uint64_t rootsCompleted = 0;
    /** Joined root subtrees that carried a failure anywhere below. */
    std::uint64_t rootsFailed = 0;
    /**
     * Joined root subtrees that carried a degraded marker: some child
     * was skipped (open breaker) or abandoned at its deadline, but
     * the root still completed — a degraded response, counted toward
     * goodput, attributed here so the trade is honest.
     */
    std::uint64_t rootsDegraded = 0;

    /** Root arrival -> root subtree join (end-to-end latency). */
    ReservoirSample rootLatencyCycles;

    // Graph-level roll-ups of the node ServiceMetrics (offered load,
    // completions, shedding, and failures across every service).
    std::uint64_t graphRequestsArrived = 0;
    std::uint64_t graphRequestsCompleted = 0;
    std::uint64_t graphRequestsShed = 0;
    std::uint64_t graphRequestsFailed = 0;

    std::vector<GraphNodeMetrics> nodes;
    std::vector<EdgeStats> edges;
    std::vector<SharedTierMetrics> sharedTiers;

    /** Joined root subtrees per simulated second. */
    double rootQps() const;

    /** Root joins that carried no failure, per simulated second. */
    double rootGoodputQps() const;

    /** Node roll-up by name. @throws FatalError on an unknown name. */
    const GraphNodeMetrics &node(const std::string &name) const;

    /** The complete report surface (benches embed it verbatim). */
    std::string summaryJson() const;
};

/**
 * N services, one clock, directed RPC edges, optional shared tiers.
 *
 *     ServiceGraph g(seed);
 *     g.addService(ServiceSpec("web")...)
 *      .addService(ServiceSpec("ads")...)
 *      .addEdge({.caller = "web", .callee = "ads", .fanout = 2});
 *     GraphMetrics m = g.run(1.0);
 *
 * Like ServiceSim, a graph is a single-use object: assemble, run once,
 * read the metrics.
 */
class ServiceGraph
{
  public:
    /** @param seed drives the per-edge latency-jitter RNG streams. */
    explicit ServiceGraph(std::uint64_t seed = 1);

    /** Add one node. The spec's name() must be unique in the graph. */
    ServiceGraph &addService(const ServiceSpec &spec);

    /**
     * Register a graph-owned accelerator tier that services opting in
     * via ServiceSpec::sharedTier(tierName) contend for.
     */
    ServiceGraph &addSharedTier(const std::string &tierName,
                                const AcceleratorConfig &device,
                                const TierConfig &tier);

    /** Add one directed edge; both endpoints must be added services. */
    ServiceGraph &addEdge(const EdgeConfig &edge);

    /**
     * End-to-end deadline budget in cycles, granted to every root
     * request on arrival and carried down the call tree: each hop's
     * service time and network latency consume it, each edge splits
     * what remains per its BudgetSplit policy, and work that cannot
     * finish in budget is settled degraded (or cancelled at the
     * callee's door) instead of wasting tier cycles. 0 (default)
     * disables the budget entirely.
     */
    ServiceGraph &rootDeadline(double cycles);

    /**
     * Every assembly problem at once, each prefixed with the node or
     * edge it concerns: per-node ServiceSpec::errors(), duplicate or
     * unknown names, self-edges, cycles (the graph must be a DAG),
     * mixed clocks, hedged shared tiers feeding Sync-design nodes, and
     * unused shared tiers. Empty when the graph is runnable.
     */
    std::vector<std::string> errors() const;

    /** @throws FatalError listing every errors() entry at once. */
    void validate() const;

    /**
     * Build the simulators, run warmup + measurement on the shared
     * clock, and return the roll-up. Single use.
     */
    GraphMetrics run(double measureSeconds, double warmupSeconds = 0.1);

  private:
    struct SharedTierDef
    {
        std::string name;
        AcceleratorConfig device;
        TierConfig config;
    };

    /**
     * One in-flight subtree: a root request or one RPC call, keyed by
     * its token. Erased at join (or at async completion).
     */
    struct Call
    {
        std::uint32_t node = 0;      //!< executing node index
        sim::Tick arrivedAt = 0;     //!< arrival at that node
        sim::Tick issuedAt = 0;      //!< caller-side issue tick (RTT)
        std::uint64_t parentToken = 0;
        std::int32_t viaEdge = -1;   //!< delivering edge; -1 = root
        bool serviceDone = false;
        bool failed = false;
        bool degraded = false;       //!< a child was skipped/abandoned
        std::uint32_t pendingChildren = 0; //!< outstanding sync joins
        /** Absolute deadline; kNeverTick = no budget. */
        sim::Tick deadline = faults::kNeverTick;
        /** Owning edge-call chain (resilient edges); 0 = none. */
        std::uint64_t chainId = 0;
        /** Attempt that delivered this call (stale-response filter). */
        std::uint32_t attemptNo = 0;
    };

    /**
     * One logical call on a resilient edge: the caller-side chain of
     * attempts racing timeouts, retries, and the deadline budget.
     * Settles exactly once (success / degraded / failed), which joins
     * the parent; erased at settlement, so a chain lookup miss means
     * the response belongs to an abandoned attempt.
     */
    struct EdgeCall
    {
        std::size_t edge = 0;
        std::uint64_t parentToken = 0;
        sim::Tick issuedAt = 0; //!< first-attempt issue tick (RTT base)
        /** Chain deadline after the edge's budget split; kNever = none. */
        sim::Tick deadline = faults::kNeverTick;
        std::uint32_t attempt = 0; //!< current attempt, 1-based
        sim::TimerId timer = sim::kInvalidTimer;
        bool probe = false; //!< this chain is the breaker's probe
    };

    /** How a resilient edge call ultimately settled. */
    enum class ChainOutcome
    {
        Success,  //!< a live attempt's response joined
        Degraded, //!< skipped (breaker) or abandoned (deadline)
        Failed,   //!< attempts/budget exhausted with no response
    };

    /** Per-edge breaker instance (see BreakerConfig). */
    struct EdgeBreaker
    {
        enum class State { Closed, Open, HalfOpen };
        State state = State::Closed;
        std::deque<bool> window;
        std::uint32_t failures = 0;
        sim::Tick openedAt = 0;
    };

    std::uint32_t nodeIndex(const std::string &name) const;
    bool hasInEdge(std::uint32_t node) const;

    void initWindowStats();
    void onNodeCompletion(std::uint32_t node, std::uint64_t token,
                          sim::Tick arrivedAt, bool failed);
    void issueCalls(std::uint64_t token);
    void deliverCall(std::size_t edge, std::uint64_t parentToken,
                     sim::Tick issuedAt, sim::Tick childDeadline);
    void maybeFinishCall(std::uint64_t token);
    void settleChild(std::uint64_t parentToken, bool childFailed,
                     bool childDegraded);
    sim::Tick drawEdgeLatency(std::size_t edge);

    // --- resilient edge dispatch (timeout / retry / breaker / budget) ---
    sim::Tick splitDeadline(std::size_t edge, sim::Tick parentDeadline);
    void startChain(std::size_t edge, std::uint64_t parentToken,
                    sim::Tick parentDeadline);
    void startAttempt(std::uint64_t chainId);
    void onAttemptTimeout(std::uint64_t chainId);
    void retryOrFail(std::uint64_t chainId);
    void deliverAttempt(std::size_t edge, std::uint64_t chainId,
                        std::uint32_t attemptNo, sim::Tick childDeadline,
                        sim::Tick issuedAt);
    void resolveChainReturn(std::size_t edge, std::uint64_t chainId,
                            std::uint32_t attemptNo, bool childFailed,
                            bool childDegraded);
    void settleChain(std::uint64_t chainId, ChainOutcome outcome,
                     bool childFailed, bool childDegraded);
    /** @return pass this call through, and whether it is the probe. */
    std::pair<bool, bool> breakerGate(std::size_t edge);
    void breakerRecord(std::size_t edge, bool success, bool probe);

    std::uint64_t seed_;
    std::vector<ServiceSpec> specs_;
    std::vector<EdgeConfig> edges_;
    std::vector<SharedTierDef> sharedTierDefs_;
    double rootDeadlineCycles_ = 0.0;

    // --- run state (built by run()) ---
    std::unique_ptr<sim::EventQueue> eq_;
    std::vector<std::unique_ptr<AcceleratorTier>> sharedTiers_;
    std::vector<std::unique_ptr<ServiceSim>> sims_;
    std::vector<std::vector<std::size_t>> outEdges_;
    std::vector<std::uint32_t> calleeIdx_;
    std::vector<Rng> edgeRngs_;
    /** Token -> in-flight subtree; lookup/erase only, never iterated. */
    std::unordered_map<std::uint64_t, Call> calls_;
    /** Chain id -> in-flight resilient edge call; erased at settle. */
    std::unordered_map<std::uint64_t, EdgeCall> chains_;
    std::uint64_t nextToken_ = 1;
    std::uint64_t nextChainId_ = 1;
    /** Per-edge slot counters for the fault plans' slot-indexed draws. */
    std::vector<std::uint64_t> edgeFaultSeq_;
    /** Per-edge retry-budget token levels. */
    std::vector<double> edgeRetryTokens_;
    std::vector<EdgeBreaker> edgeBreakers_;
    bool measuring_ = false;
    bool ran_ = false;
    GraphMetrics metrics_;
};

/**
 * Assemble a ServiceGraph from one config: @p graphSection holds the
 * graph-level keys and each named service section parses through
 * ServiceSpec::fromConfig. Recognised graph keys:
 *
 *     [graph]
 *     services = web, ads, cache   ; section name per node (required)
 *     seed = 2020
 *     root_deadline_cycles = 1e6   ; 0 = no deadline budget
 *     edge_0_caller = web          ; edges numbered from 0 (see
 *     edge_0_callee = ads          ;  edgeFromConfig for the full
 *     edge_0_timeout = 2e5         ;  per-edge key list)
 *     ...
 *
 * Unknown keys in the graph section or any service section are
 * rejected with a field-named error. The returned graph is assembled
 * but not validated: call errors()/validate() (or run()) to surface
 * domain problems across all nodes at once.
 * @throws FatalError on unknown keys or malformed values.
 */
ServiceGraph serviceGraphFromConfig(const Config &cfg,
                                    const std::string &graphSection = "graph");

} // namespace accel::microsim

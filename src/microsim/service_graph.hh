/**
 * @file
 * Multi-service RPC fan-out simulation on one shared clock.
 *
 * A ServiceGraph wires N ServiceSim instances (built from ServiceSpecs)
 * with directed RPC edges. When a request finishes its service-local
 * work at a node, the node issues one call per out-edge fan-out slot:
 * the call traverses a per-edge network latency (fixed plus optional
 * exponential jitter), arrives at the callee through its normal
 * admission path (so bounded queues shed RPCs exactly like local
 * arrivals), and recursively fans out from there. Sync edges join: the
 * caller's subtree is complete only when its own work and every sync
 * child subtree (plus the return hop) have finished, which is what
 * makes tail latency grow with fan-out depth (DeathStarBench's
 * observation). Async edges are fire-and-forget: they load the callee
 * but never extend the caller's critical path.
 *
 * Nodes may contend for graph-owned shared AcceleratorTiers
 * (addSharedTier + ServiceSpec::sharedTier), modelling the
 * shared-offload-engine deployment of the paper's fleet analysis:
 * one tier's queue absorbs offloads from every subscribed service.
 *
 * Worker threads never block on downstream RPCs — fan-out happens at
 * service completion (continuation-passing), so a node's concurrency
 * limits apply to its own work only, while the *latency* of sync
 * children lands on the caller's subtree path. GraphMetrics therefore
 * decomposes: per-node service-local latency (ServiceMetrics), per-edge
 * RTT (out hop + child subtree + return hop), and per-node subtree
 * latency whose root-node flavour is the end-to-end figure.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "microsim/service_spec.hh"
#include "stats/reservoir.hh"

namespace accel::microsim {

/** How a caller relates to one edge's RPCs. */
enum class CallStyle
{
    Sync, //!< caller's subtree joins on the child (and its return hop)
    Async //!< fire-and-forget: loads the callee, no join, no propagation
};

const char *toString(CallStyle style);
CallStyle callStyleFromString(const std::string &name);

/** One directed RPC edge: caller fans out to callee. */
struct EdgeConfig
{
    std::string caller;
    std::string callee;

    /** Calls issued per completed caller request. */
    std::uint32_t fanout = 1;

    CallStyle style = CallStyle::Sync;

    /** Fixed network/serialization delay per hop, in caller cycles. */
    double latencyCycles = 0.0;

    /** Mean of an exponential jitter added per hop (0 = deterministic). */
    double latencyJitterCycles = 0.0;

    /** @throws FatalError on out-of-domain values (names the field). */
    void validate() const;
};

/** Per-edge call accounting over the measurement window. */
struct EdgeStats
{
    std::string caller;
    std::string callee;

    std::uint64_t callsIssued = 0;
    /** Subtree completions reported back across this edge. */
    std::uint64_t callsCompleted = 0;
    /** Calls rejected at the callee's admission queue. */
    std::uint64_t callsShed = 0;
    /** Completed child subtrees that carried a failure. */
    std::uint64_t failuresPropagated = 0;

    /** Edge RTT: out hop + child subtree (+ return hop when sync). */
    ReservoirSample rttCycles;

    std::string summaryJson() const;
};

/** One node's roll-up: its ServiceMetrics plus subtree accounting. */
struct GraphNodeMetrics
{
    std::string node;

    /** The node's own simulator metrics (service-local view). */
    ServiceMetrics service;

    /** Subtrees whose service-local phase completed at this node. */
    std::uint64_t subtreesStarted = 0;
    /** Subtrees fully joined (own work + every sync child). */
    std::uint64_t subtreesCompleted = 0;
    /** Joined subtrees that carried a failure. */
    std::uint64_t subtreesFailed = 0;

    /** Arrival at this node -> subtree join (includes sync children). */
    ReservoirSample subtreeLatencyCycles;

    std::string summaryJson() const;
};

/** One graph-owned tier's cross-service contention figures. */
struct SharedTierMetrics
{
    std::string tierName;

    /** Cross-replica device aggregate (all subscribed services). */
    AcceleratorStats aggregateDevice;

    /** Tier dispatch/hedge/health counters and replica breakdowns. */
    TierStats tierStats;

    std::string summaryJson() const;
};

/** Everything a graph run measures. */
struct GraphMetrics
{
    double graphMeasuredSeconds = 0.0;

    /** Locally-originated requests whose fan-out began in the window. */
    std::uint64_t rootsStarted = 0;
    /** Root subtrees fully joined: the end-to-end unit of work. */
    std::uint64_t rootsCompleted = 0;
    /** Joined root subtrees that carried a failure anywhere below. */
    std::uint64_t rootsFailed = 0;

    /** Root arrival -> root subtree join (end-to-end latency). */
    ReservoirSample rootLatencyCycles;

    // Graph-level roll-ups of the node ServiceMetrics (offered load,
    // completions, shedding, and failures across every service).
    std::uint64_t graphRequestsArrived = 0;
    std::uint64_t graphRequestsCompleted = 0;
    std::uint64_t graphRequestsShed = 0;
    std::uint64_t graphRequestsFailed = 0;

    std::vector<GraphNodeMetrics> nodes;
    std::vector<EdgeStats> edges;
    std::vector<SharedTierMetrics> sharedTiers;

    /** Joined root subtrees per simulated second. */
    double rootQps() const;

    /** Root joins that carried no failure, per simulated second. */
    double rootGoodputQps() const;

    /** Node roll-up by name. @throws FatalError on an unknown name. */
    const GraphNodeMetrics &node(const std::string &name) const;

    /** The complete report surface (benches embed it verbatim). */
    std::string summaryJson() const;
};

/**
 * N services, one clock, directed RPC edges, optional shared tiers.
 *
 *     ServiceGraph g(seed);
 *     g.addService(ServiceSpec("web")...)
 *      .addService(ServiceSpec("ads")...)
 *      .addEdge({.caller = "web", .callee = "ads", .fanout = 2});
 *     GraphMetrics m = g.run(1.0);
 *
 * Like ServiceSim, a graph is a single-use object: assemble, run once,
 * read the metrics.
 */
class ServiceGraph
{
  public:
    /** @param seed drives the per-edge latency-jitter RNG streams. */
    explicit ServiceGraph(std::uint64_t seed = 1);

    /** Add one node. The spec's name() must be unique in the graph. */
    ServiceGraph &addService(const ServiceSpec &spec);

    /**
     * Register a graph-owned accelerator tier that services opting in
     * via ServiceSpec::sharedTier(tierName) contend for.
     */
    ServiceGraph &addSharedTier(const std::string &tierName,
                                const AcceleratorConfig &device,
                                const TierConfig &tier);

    /** Add one directed edge; both endpoints must be added services. */
    ServiceGraph &addEdge(const EdgeConfig &edge);

    /**
     * Every assembly problem at once, each prefixed with the node or
     * edge it concerns: per-node ServiceSpec::errors(), duplicate or
     * unknown names, self-edges, cycles (the graph must be a DAG),
     * mixed clocks, hedged shared tiers feeding Sync-design nodes, and
     * unused shared tiers. Empty when the graph is runnable.
     */
    std::vector<std::string> errors() const;

    /** @throws FatalError listing every errors() entry at once. */
    void validate() const;

    /**
     * Build the simulators, run warmup + measurement on the shared
     * clock, and return the roll-up. Single use.
     */
    GraphMetrics run(double measureSeconds, double warmupSeconds = 0.1);

  private:
    struct SharedTierDef
    {
        std::string name;
        AcceleratorConfig device;
        TierConfig config;
    };

    /**
     * One in-flight subtree: a root request or one RPC call, keyed by
     * its token. Erased at join (or at async completion).
     */
    struct Call
    {
        std::uint32_t node = 0;      //!< executing node index
        sim::Tick arrivedAt = 0;     //!< arrival at that node
        sim::Tick issuedAt = 0;      //!< caller-side issue tick (RTT)
        std::uint64_t parentToken = 0;
        std::int32_t viaEdge = -1;   //!< delivering edge; -1 = root
        bool serviceDone = false;
        bool failed = false;
        std::uint32_t pendingChildren = 0; //!< outstanding sync joins
    };

    std::uint32_t nodeIndex(const std::string &name) const;
    bool hasInEdge(std::uint32_t node) const;

    void initWindowStats();
    void onNodeCompletion(std::uint32_t node, std::uint64_t token,
                          sim::Tick arrivedAt, bool failed);
    void issueCalls(std::uint64_t token);
    void deliverCall(std::size_t edge, std::uint64_t parentToken,
                     sim::Tick issuedAt);
    void maybeFinishCall(std::uint64_t token);
    void settleChild(std::uint64_t parentToken, bool childFailed);
    sim::Tick drawEdgeLatency(std::size_t edge);

    std::uint64_t seed_;
    std::vector<ServiceSpec> specs_;
    std::vector<EdgeConfig> edges_;
    std::vector<SharedTierDef> sharedTierDefs_;

    // --- run state (built by run()) ---
    std::unique_ptr<sim::EventQueue> eq_;
    std::vector<std::unique_ptr<AcceleratorTier>> sharedTiers_;
    std::vector<std::unique_ptr<ServiceSim>> sims_;
    std::vector<std::vector<std::size_t>> outEdges_;
    std::vector<std::uint32_t> calleeIdx_;
    std::vector<Rng> edgeRngs_;
    /** Token -> in-flight subtree; lookup/erase only, never iterated. */
    std::unordered_map<std::uint64_t, Call> calls_;
    std::uint64_t nextToken_ = 1;
    bool measuring_ = false;
    bool ran_ = false;
    GraphMetrics metrics_;
};

} // namespace accel::microsim

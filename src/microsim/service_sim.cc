#include "microsim/service_sim.hh"

#include <cmath>

#include "util/logging.hh"

namespace accel::microsim {

using model::Strategy;
using model::ThreadingDesign;

void
ServiceConfig::validate() const
{
    require(cores >= 1, "ServiceConfig: need at least one core");
    require(threads >= 1, "ServiceConfig: need at least one thread");
    require(clockGHz > 0, "ServiceConfig: clock must be positive");
    require(offloadSetupCycles >= 0, "ServiceConfig: negative o0");
    require(contextSwitchCycles >= 0, "ServiceConfig: negative o1");
    require(cachePollutionCycles >= 0,
            "ServiceConfig: negative cache pollution");
    require(responsePickupCycles >= 0,
            "ServiceConfig: negative pickup cost");
    require(unmodeledPerOffloadCycles >= 0,
            "ServiceConfig: negative driver slop");
    require(minOffloadBytes >= 0, "ServiceConfig: negative threshold");
    require(maxOutstanding >= 1, "ServiceConfig: maxOutstanding >= 1");
    require(openArrivalsPerSec >= 0,
            "ServiceConfig: negative arrival rate");
    if (design == ThreadingDesign::Sync) {
        require(threads == cores,
                "ServiceConfig: Sync runs one thread per core");
    } else if (design == ThreadingDesign::SyncOS) {
        require(threads > cores,
                "ServiceConfig: Sync-OS requires over-subscription");
    } else {
        require(threads >= cores,
                "ServiceConfig: async needs threads >= cores");
    }
}

ServiceSim::ServiceSim(const ServiceConfig &service,
                       const AcceleratorConfig &accel,
                       const WorkloadSpec &workload, std::uint64_t seed)
    : cfg_(service),
      accel_(eq_, accel),
      source_(workload, seed),
      arrivalRng_(seed ^ 0xa771a15ULL, 0x6f70656e6c6f6fULL)
{
    cfg_.validate();
    threads_.resize(cfg_.threads);
    resume_.resize(cfg_.threads);
    freeCores_ = cfg_.cores;
    if (cfg_.openArrivalsPerSec > 0) {
        cyclesPerArrival_ =
            cfg_.clockGHz * 1e9 / cfg_.openArrivalsPerSec;
    }
}

// --------------------------------------------------------------------
// Open-loop arrivals
// --------------------------------------------------------------------

void
ServiceSim::scheduleNextArrival()
{
    double gap = arrivalRng_.exponential(cyclesPerArrival_);
    sim::Tick ticks = std::max<sim::Tick>(
        1, static_cast<sim::Tick>(std::llround(gap)));
    eq_.scheduleIn(ticks, [this]() { onArrival(); });
}

void
ServiceSim::onArrival()
{
    if (eq_.now() < endTick_)
        scheduleNextArrival();
    arrivals_.push_back(PendingArrival{source_.next(), eq_.now()});
    if (measuring_)
        ++metrics_.requestsArrived;
    if (!idleThreads_.empty()) {
        size_t tid = idleThreads_.back();
        idleThreads_.pop_back();
        ensure(threads_[tid].state == ThreadState::Idle,
               "onArrival: woken thread not idle");
        makeReady(tid, [this, tid]() { startNextRequest(tid); });
    }
}

// --------------------------------------------------------------------
// Scheduling
// --------------------------------------------------------------------

void
ServiceSim::makeReady(size_t tid, std::function<void()> &&resume)
{
    ThreadCtx &ctx = threads_[tid];
    ctx.state = ThreadState::Ready;
    resume_[tid] = std::move(resume);
    if (ctx.core >= 0) {
        // The response beat the switch-away drain; the pending release
        // event enqueues the thread once the core is actually free.
        return;
    }
    readyQueue_.push_back(tid);
    dispatch();
}

void
ServiceSim::dispatch()
{
    while (freeCores_ > 0 && !readyQueue_.empty()) {
        size_t tid = readyQueue_.front();
        readyQueue_.pop_front();
        ThreadCtx &ctx = threads_[tid];
        if (ctx.state != ThreadState::Ready)
            continue; // stale entry
        --freeCores_;
        ctx.core = 1;
        ctx.state = ThreadState::Running;

        std::function<void()> resume = std::move(resume_[tid]);
        ensure(static_cast<bool>(resume), "dispatch: missing continuation");
        double switch_in = ctx.needsSwitchIn
            ? cfg_.contextSwitchCycles + cfg_.cachePollutionCycles : 0.0;
        ctx.needsSwitchIn = false;
        if (switch_in > 0) {
            if (measuring_)
                metrics_.switchOverheadCycles += switch_in;
            runOnCore(tid, switch_in, std::move(resume),
                      kOverheadWorkTag);
        } else {
            resume();
        }
    }
}

void
ServiceSim::releaseCore(size_t tid)
{
    ThreadCtx &ctx = threads_[tid];
    ensure(ctx.core >= 0, "releaseCore: thread not on a core");
    ctx.core = -1;
    ++freeCores_;
}

void
ServiceSim::yieldCore(size_t tid)
{
    ThreadCtx &ctx = threads_[tid];
    ctx.state = ThreadState::Blocked;
    double switch_away = cfg_.contextSwitchCycles;
    if (switch_away > 0) {
        if (measuring_)
            metrics_.switchOverheadCycles += switch_away;
        eq_.scheduleIn(
            static_cast<sim::Tick>(std::llround(switch_away)),
            [this, tid]() {
                releaseCore(tid);
                if (threads_[tid].state == ThreadState::Ready)
                    readyQueue_.push_back(tid);
                dispatch();
            });
    } else {
        releaseCore(tid);
        dispatch();
    }
}

double
ServiceSim::chargeStolen(double cycles)
{
    // Response-pickup work "steals" core time from whichever thread runs
    // next (see the class comment); fold the pool into this charge.
    double stolen = pendingStolenCycles_;
    pendingStolenCycles_ = 0.0;
    if (measuring_ && stolen > 0) {
        metrics_.switchOverheadCycles += stolen;
        metrics_.coreCyclesByTag[kOverheadWorkTag] += stolen;
    }
    return cycles + stolen;
}

void
ServiceSim::runOnCore(size_t tid, double cycles,
                      std::function<void()> &&done, WorkTag tag)
{
    ThreadCtx &ctx = threads_[tid];
    ensure(ctx.state == ThreadState::Running && ctx.core >= 0,
           "runOnCore: thread must be running on a core");
    double charged = chargeStolen(cycles);
    if (measuring_) {
        metrics_.coreBusyCycles += charged;
        metrics_.coreCyclesByTag[tag] += cycles;
    }
    // At least one tick so zero-cost request chains always advance time.
    sim::Tick ticks =
        std::max<sim::Tick>(1, static_cast<sim::Tick>(
                                   std::llround(charged)));
    eq_.scheduleIn(ticks, std::move(done));
}

// --------------------------------------------------------------------
// Request flow
// --------------------------------------------------------------------

void
ServiceSim::startNextRequest(size_t tid)
{
    ThreadCtx &ctx = threads_[tid];
    if (eq_.now() >= endTick_) {
        ctx.state = ThreadState::Parked;
        if (ctx.core >= 0) {
            releaseCore(tid);
            dispatch();
        }
        return;
    }
    sim::Tick started = eq_.now();
    if (cfg_.openArrivalsPerSec > 0) {
        if (arrivals_.empty()) {
            // Nothing to do: park until an arrival wakes us.
            ctx.state = ThreadState::Idle;
            if (ctx.core >= 0) {
                releaseCore(tid);
                dispatch();
            }
            idleThreads_.push_back(tid);
            return;
        }
        PendingArrival next = std::move(arrivals_.front());
        arrivals_.pop_front();
        ctx.req = std::move(next.req);
        // Latency is measured from arrival, so queueing time counts.
        started = next.arrived;
    } else {
        ctx.req = source_.next();
    }
    ctx.kernelIdx = 0;
    ctx.segmentIdx = 0;
    ctx.inflight = std::make_shared<InFlight>();
    ctx.inflight->start = started;
    maybeNext(tid);
}

void
ServiceSim::maybeNext(size_t tid)
{
    ThreadCtx &ctx = threads_[tid];
    // Kernels scheduled after already-executed segments come first,
    // then the next segment, then request completion.
    if (ctx.kernelIdx < ctx.req.kernels.size() &&
        ctx.req.kernels[ctx.kernelIdx].afterSegment < ctx.segmentIdx) {
        handleKernel(tid);
    } else if (ctx.segmentIdx < ctx.req.segments.size()) {
        execSegment(tid);
    } else if (ctx.kernelIdx < ctx.req.kernels.size()) {
        // Kernels pointing past the last segment still run.
        handleKernel(tid);
    } else {
        finishHostWork(tid);
    }
}

void
ServiceSim::execSegment(size_t tid)
{
    ThreadCtx &ctx = threads_[tid];
    const WorkSegment &seg = ctx.req.segments[ctx.segmentIdx];
    ++ctx.segmentIdx;
    runOnCore(tid, seg.cycles, [this, tid]() { maybeNext(tid); },
              seg.tag);
}

void
ServiceSim::handleKernel(size_t tid)
{
    ThreadCtx &ctx = threads_[tid];
    const KernelInvocation &k = ctx.req.kernels[ctx.kernelIdx++];

    bool offload = cfg_.accelerated && k.bytes >= cfg_.minOffloadBytes;
    if (!offload) {
        if (measuring_)
            ++metrics_.kernelsOnHost;
        runOnCore(tid, k.hostCycles, [this, tid]() { maybeNext(tid); },
                  k.tag);
        return;
    }

    if (measuring_)
        ++metrics_.offloadsIssued;
    switch (cfg_.design) {
      case ThreadingDesign::Sync:
        offloadSync(tid, k);
        break;
      case ThreadingDesign::SyncOS:
        offloadSyncOS(tid, k);
        break;
      case ThreadingDesign::AsyncSameThread:
      case ThreadingDesign::AsyncDistinctThread:
      case ThreadingDesign::AsyncNoResponse:
        offloadAsync(tid, k);
        break;
    }
}

void
ServiceSim::finishHostWork(size_t tid)
{
    ThreadCtx &ctx = threads_[tid];
    ctx.inflight->hostDone = true;
    maybeCompleteRequest(ctx.inflight,
                         cfg_.design == ThreadingDesign::AsyncNoResponse &&
                             cfg_.strategy == Strategy::Remote);
    startNextRequest(tid);
}

void
ServiceSim::maybeCompleteRequest(const std::shared_ptr<InFlight> &inflight,
                                 bool remoteExcluded)
{
    // Service-local latency: remote no-response offloads do not hold the
    // request open (their time lands on the application's end-to-end
    // path instead).
    bool service_done = inflight->hostDone &&
        (remoteExcluded || inflight->pendingKernels == 0);
    if (service_done && !inflight->counted) {
        inflight->counted = true;
        if (measuring_) {
            ++metrics_.requestsCompleted;
            double latency =
                static_cast<double>(eq_.now() - inflight->start);
            metrics_.latencyCycles.add(latency);
            metrics_.latencySample.add(latency);
        }
    }
    if (inflight->hostDone && inflight->pendingKernels == 0 &&
        measuring_ && inflight->counted) {
        metrics_.endToEndLatencyCycles.add(
            static_cast<double>(eq_.now() - inflight->start));
    }
}

// --------------------------------------------------------------------
// Offload paths
// --------------------------------------------------------------------

void
ServiceSim::offloadSync(size_t tid, const KernelInvocation &k)
{
    double issue = cfg_.offloadSetupCycles + cfg_.unmodeledPerOffloadCycles;
    if (measuring_)
        metrics_.dispatchOverheadCycles += issue;
    runOnCore(tid, issue, [this, tid, k]() {
        // The core stays held (idle) across transfer + queue + service.
        sim::Tick held_from = eq_.now();
        accel_.offload(k.hostCycles, k.bytes,
                       [this, tid, held_from]() {
                           if (measuring_) {
                               metrics_.coreHeldIdleCycles +=
                                   static_cast<double>(eq_.now() -
                                                       held_from);
                           }
                           maybeNext(tid);
                       });
    }, kOverheadWorkTag);
}

void
ServiceSim::offloadSyncOS(size_t tid, const KernelInvocation &k)
{
    double hold = cfg_.offloadSetupCycles + cfg_.unmodeledPerOffloadCycles;
    if (cfg_.driverWaitsForAck)
        hold += accel_.transferCycles(k.bytes);
    if (measuring_)
        metrics_.dispatchOverheadCycles += hold;
    runOnCore(tid, hold, [this, tid, k]() {
        accel_.offload(
            k.hostCycles, k.bytes,
            [this, tid]() {
                ThreadCtx &ctx = threads_[tid];
                ctx.needsSwitchIn = true;
                makeReady(tid, [this, tid]() { maybeNext(tid); });
            },
            /*transferPaidByHost=*/cfg_.driverWaitsForAck);
        yieldCore(tid);
    }, kOverheadWorkTag);
}

void
ServiceSim::offloadAsync(size_t tid, const KernelInvocation &k)
{
    ThreadCtx &ctx = threads_[tid];
    double hold = cfg_.offloadSetupCycles + cfg_.unmodeledPerOffloadCycles;
    if (cfg_.driverWaitsForAck)
        hold += accel_.transferCycles(k.bytes);
    if (measuring_)
        metrics_.dispatchOverheadCycles += hold;

    bool tracks_outstanding =
        cfg_.design != ThreadingDesign::AsyncNoResponse;

    std::shared_ptr<InFlight> inflight = ctx.inflight;
    ++inflight->pendingKernels;
    if (tracks_outstanding)
        ++ctx.outstanding;

    runOnCore(tid, hold, [this, tid, k, inflight,
                          tracks_outstanding]() {
        accel_.offload(
            k.hostCycles, k.bytes,
            [this, tid, inflight]() { onAsyncResponse(tid, inflight); },
            /*transferPaidByHost=*/cfg_.driverWaitsForAck);

        ThreadCtx &ctx = threads_[tid];
        if (tracks_outstanding && ctx.outstanding >= cfg_.maxOutstanding) {
            // Backpressure: stop issuing until responses drain. The
            // analytical model has no notion of this; it only bites at
            // high accelerator load.
            ctx.blockedOnOutstanding = true;
            ctx.state = ThreadState::Blocked;
            resume_[tid] = [this, tid]() { maybeNext(tid); };
            releaseCore(tid);
            dispatch();
        } else {
            maybeNext(tid);
        }
    }, kOverheadWorkTag);
}

void
ServiceSim::onAsyncResponse(size_t tid,
                            const std::shared_ptr<InFlight> &inflight)
{
    ThreadCtx &ctx = threads_[tid];
    ensure(inflight->pendingKernels > 0,
           "onAsyncResponse: no pending kernels");
    --inflight->pendingKernels;
    inflight->lastResponse = eq_.now();

    bool no_response = cfg_.design == ThreadingDesign::AsyncNoResponse;
    if (!no_response) {
        ensure(ctx.outstanding > 0, "onAsyncResponse: outstanding = 0");
        --ctx.outstanding;
        double stolen = cfg_.responsePickupCycles;
        if (cfg_.design == ThreadingDesign::AsyncDistinctThread) {
            stolen += cfg_.contextSwitchCycles +
                      cfg_.cachePollutionCycles;
        }
        pendingStolenCycles_ += stolen;
    }

    maybeCompleteRequest(inflight,
                         no_response &&
                             cfg_.strategy == Strategy::Remote);

    if (ctx.blockedOnOutstanding &&
        ctx.outstanding < cfg_.maxOutstanding) {
        ctx.blockedOnOutstanding = false;
        std::function<void()> resume = std::move(resume_[tid]);
        makeReady(tid, std::move(resume));
    }
}

// --------------------------------------------------------------------
// Run loop
// --------------------------------------------------------------------

ServiceMetrics
ServiceSim::run(double measureSeconds, double warmupSeconds)
{
    require(measureSeconds > 0, "ServiceSim::run: window must be positive");
    require(warmupSeconds >= 0, "ServiceSim::run: negative warmup");
    ensure(endTick_ == 0, "ServiceSim::run: single-use object");

    double cycles_per_second = cfg_.clockGHz * 1e9;
    sim::Tick warmup_tick =
        static_cast<sim::Tick>(warmupSeconds * cycles_per_second);
    endTick_ = warmup_tick +
        static_cast<sim::Tick>(measureSeconds * cycles_per_second);

    metrics_ = ServiceMetrics();
    metrics_.measuredSeconds = measureSeconds;
    measuring_ = warmupSeconds == 0;

    if (!measuring_) {
        eq_.schedule(warmup_tick, [this]() {
            ServiceMetrics fresh;
            fresh.measuredSeconds = metrics_.measuredSeconds;
            metrics_ = fresh;
            accel_.resetStats();
            measuring_ = true;
        }, /*priority=*/-100);
    }

    if (cfg_.openArrivalsPerSec > 0)
        scheduleNextArrival();
    for (size_t tid = 0; tid < threads_.size(); ++tid)
        makeReady(tid, [this, tid]() { startNextRequest(tid); });

    eq_.runUntil(endTick_);
    metrics_.accelerator = accel_.stats();
    return metrics_;
}

} // namespace accel::microsim

#include "microsim/service_sim.hh"

#include <algorithm>
#include <cmath>

#include "microsim/service_spec.hh"
#include "util/logging.hh"

namespace accel::microsim {

using model::Strategy;
using model::ThreadingDesign;

namespace {

/** Shared shape check: every cycle-cost knob must be finite and >= 0. */
void
requireCycles(double v, const char *field)
{
    require(std::isfinite(v) && v >= 0,
            std::string(field) + " must be finite and >= 0");
}

} // namespace

void
RetryPolicy::validate() const
{
    requireCycles(timeoutCycles, "RetryPolicy.timeoutCycles");
    require(maxAttempts >= 1, "RetryPolicy.maxAttempts must be >= 1");
    requireCycles(backoffBaseCycles, "RetryPolicy.backoffBaseCycles");
    require(std::isfinite(backoffFactor) && backoffFactor >= 1.0,
            "RetryPolicy.backoffFactor must be finite and >= 1");
    requireCycles(backoffCapCycles, "RetryPolicy.backoffCapCycles");
}

void
BreakerConfig::validate() const
{
    require(window >= 1, "BreakerConfig.window must be >= 1");
    require(minSamples >= 1, "BreakerConfig.minSamples must be >= 1");
    require(minSamples <= window,
            "BreakerConfig.minSamples must be <= window");
    require(std::isfinite(openThreshold) && openThreshold > 0 &&
                openThreshold <= 1,
            "BreakerConfig.openThreshold must be in (0, 1]");
    requireCycles(probeAfterCycles, "BreakerConfig.probeAfterCycles");
}

void
ServiceConfig::validate() const
{
    require(cores >= 1, "ServiceConfig.cores must be >= 1");
    require(threads >= 1, "ServiceConfig.threads must be >= 1");
    require(std::isfinite(clockGHz) && clockGHz > 0,
            "ServiceConfig.clockGHz must be finite and positive");
    requireCycles(offloadSetupCycles, "ServiceConfig.offloadSetupCycles");
    requireCycles(contextSwitchCycles,
                  "ServiceConfig.contextSwitchCycles");
    requireCycles(cachePollutionCycles,
                  "ServiceConfig.cachePollutionCycles");
    requireCycles(responsePickupCycles,
                  "ServiceConfig.responsePickupCycles");
    requireCycles(unmodeledPerOffloadCycles,
                  "ServiceConfig.unmodeledPerOffloadCycles");
    require(std::isfinite(minOffloadBytes) && minOffloadBytes >= 0,
            "ServiceConfig.minOffloadBytes must be finite and >= 0");
    require(maxOutstanding >= 1,
            "ServiceConfig.maxOutstanding must be >= 1");
    require(std::isfinite(openArrivalsPerSec) && openArrivalsPerSec >= 0,
            "ServiceConfig.openArrivalsPerSec must be finite and >= 0");
    if (!arrivalProgram.empty())
        arrivalProgram.validate();
    require(!(openArrivalsPerSec > 0 && !arrivalProgram.empty()),
            "ServiceConfig.arrivalProgram and openArrivalsPerSec are "
            "mutually exclusive (a constant program expresses the "
            "latter exactly)");
    autoscaler.validate();
    require(!autoscaler.enabled ||
                openArrivalsPerSec > 0 || !arrivalProgram.empty(),
            "ServiceConfig.autoscaler needs open-loop arrivals (the "
            "closed loop has no offered load to defend an SLO against)");
    require(!autoscaler.brownout || maxArrivalQueue > 0,
            "ServiceConfig.autoscaler brown-out gate needs "
            "maxArrivalQueue > 0 to tighten within");
    retry.validate();
    breaker.validate();
    require(!breaker.enabled || retry.active(),
            "ServiceConfig.breaker needs RetryPolicy.timeoutCycles > 0 "
            "(timeouts are the breaker's failure signal)");
    if (design == ThreadingDesign::Sync) {
        require(threads == cores,
                "ServiceConfig: Sync runs one thread per core");
    } else if (design == ThreadingDesign::SyncOS) {
        require(threads > cores,
                "ServiceConfig: Sync-OS requires over-subscription");
    } else {
        require(threads >= cores,
                "ServiceConfig: async needs threads >= cores");
    }
}

namespace {

/** Aggregate validation must run before any member construction. */
const ServiceSpec &
validated(const ServiceSpec &spec)
{
    spec.validate();
    return spec;
}

} // namespace

// The old constructor pair survives as shims so out-of-tree callers
// keep compiling (with a deprecation warning). Each delegates through
// a temporary ServiceSpec — not through the other shim, which would
// trip -Wdeprecated-declarations inside this file.
ServiceSim::ServiceSim(const ServiceConfig &service,
                       const AcceleratorConfig &accel,
                       const WorkloadSpec &workload, std::uint64_t seed)
    : ServiceSim(ServiceSpec()
                     .service(service)
                     .accelerator(accel)
                     .workload(workload)
                     .seed(seed),
                 nullptr, nullptr, false)
{
}

ServiceSim::ServiceSim(const ServiceConfig &service,
                       const AcceleratorConfig &accel,
                       const TierConfig &tier, const WorkloadSpec &workload,
                       std::uint64_t seed)
    : ServiceSim(ServiceSpec()
                     .service(service)
                     .accelerator(accel)
                     .tier(tier)
                     .workload(workload)
                     .seed(seed),
                 nullptr, nullptr, false)
{
}

ServiceSim::ServiceSim(const ServiceSpec &spec)
    : ServiceSim(spec, nullptr, nullptr, false)
{
}

ServiceSim::ServiceSim(const ServiceSpec &spec, sim::EventQueue &eq,
                       AcceleratorTier *sharedTier, bool serverMode)
    : ServiceSim(spec, &eq, sharedTier, serverMode)
{
}

ServiceSim::ServiceSim(const ServiceSpec &spec, sim::EventQueue *eq,
                       AcceleratorTier *sharedTier, bool serverMode)
    : cfg_(validated(spec).service()),
      ownedEq_(eq != nullptr ? nullptr
                             : std::make_unique<sim::EventQueue>()),
      eq_(eq != nullptr ? *eq : *ownedEq_),
      ownedAccel_(sharedTier != nullptr
                      ? nullptr
                      : std::make_unique<AcceleratorTier>(
                            eq_, spec.accelerator(), spec.tier())),
      accel_(sharedTier != nullptr ? *sharedTier : *ownedAccel_),
      sharedTier_(sharedTier != nullptr),
      serverMode_(serverMode),
      source_(spec.workload(), spec.seed()),
      arrivalRng_(spec.seed() ^ 0xa771a15ULL, 0x6f70656e6c6f6fULL)
{
    threads_.resize(cfg_.threads);
    resume_.resize(cfg_.threads);
    freeCores_ = cfg_.cores;
    cyclesPerSecond_ = cfg_.clockGHz * 1e9;
    if (cfg_.openArrivalsPerSec > 0) {
        cyclesPerArrival_ = cyclesPerSecond_ / cfg_.openArrivalsPerSec;
        openLoop_ = true;
    } else if (!cfg_.arrivalProgram.empty()) {
        // Constant programs take the legacy single-draw path so they
        // replay bit-for-bit as openArrivalsPerSec; varying programs
        // generate candidates at the peak rate and thin them.
        peakArrivalsPerSec_ = cfg_.arrivalProgram.peakRate();
        cyclesPerArrival_ = cyclesPerSecond_ / peakArrivalsPerSec_;
        thinning_ = !cfg_.arrivalProgram.isConstant();
        openLoop_ = true;
    }
    if (serverMode_) {
        // Graph node with in-edges: park idle threads and wait for
        // injected RPC arrivals (with no local source of its own,
        // cyclesPerArrival_ stays 0 and no arrival event is scheduled).
        openLoop_ = true;
    }
    if (cfg_.autoscaler.enabled) {
        autoscaler_ = std::make_unique<Autoscaler>(
            eq_, accel_, cfg_.autoscaler, cfg_.maxArrivalQueue);
    }
}

// --------------------------------------------------------------------
// Open-loop arrivals
// --------------------------------------------------------------------

void
ServiceSim::scheduleNextArrival()
{
    double gap = arrivalRng_.exponential(cyclesPerArrival_);
    sim::Tick ticks = std::max<sim::Tick>(
        1, static_cast<sim::Tick>(std::llround(gap)));
    eq_.scheduleIn(ticks, [this]() { onArrival(); });
}

void
ServiceSim::onArrival()
{
    if (eq_.now() < endTick_)
        scheduleNextArrival();
    if (thinning_) {
        // Lewis-Shedler thinning: this event is a peak-rate candidate;
        // it becomes a real arrival with probability rate(t)/peak. A
        // rejected candidate never happened (no counters move).
        double t = static_cast<double>(eq_.now()) / cyclesPerSecond_;
        double accept =
            cfg_.arrivalProgram.rateAt(t) / peakArrivalsPerSec_;
        if (!arrivalRng_.chance(accept))
            return;
    }
    admitArrival(/*token=*/0);
}

bool
ServiceSim::injectArrival(std::uint64_t token)
{
    require(token != 0,
            "ServiceSim::injectArrival: token 0 is reserved for "
            "locally-generated arrivals");
    return admitArrival(token);
}

bool
ServiceSim::admitArrival(std::uint64_t token)
{
    if (measuring_)
        ++metrics_.requestsArrived;
    bool shed = false;
    bool overload = false;
    std::uint64_t gate = autoscaler_ ? autoscaler_->admissionLimit() : 0;
    if (cfg_.maxArrivalQueue > 0 &&
        arrivals_.size() >= cfg_.maxArrivalQueue) {
        // Load shedding: the bounded admission queue is full, so the
        // arrival is rejected instead of queued. This is what keeps a
        // saturated open-loop run in constant memory.
        shed = true;
    } else if (gate > 0 && arrivals_.size() >= gate) {
        // Brown-out: the adaptive gate has tightened below the static
        // bound, shedding early so admitted requests keep a bounded
        // queue — attributed separately as overload degradation.
        shed = true;
        overload = true;
    }
    if (shed) {
        if (measuring_) {
            ++metrics_.requestsShed;
            if (overload)
                ++metrics_.requestsShedOverload;
        }
        if (autoscaler_)
            autoscaler_->noteShed();
        return false;
    }
    arrivals_.push_back(PendingArrival{source_.next(), eq_.now(), token});
    if (measuring_) {
        metrics_.maxArrivalQueueDepth = std::max<std::uint64_t>(
            metrics_.maxArrivalQueueDepth, arrivals_.size());
    }
    if (autoscaler_)
        autoscaler_->noteQueueDepth(arrivals_.size());
    if (!idleThreads_.empty()) {
        size_t tid = idleThreads_.back();
        idleThreads_.pop_back();
        ensure(threads_[tid].state == ThreadState::Idle,
               "onArrival: woken thread not idle");
        makeReady(tid, [this, tid]() { startNextRequest(tid); });
    }
    return true;
}

// --------------------------------------------------------------------
// Scheduling
// --------------------------------------------------------------------

void
ServiceSim::makeReady(size_t tid, sim::InlineCallback &&resume)
{
    ThreadCtx &ctx = threads_[tid];
    ctx.state = ThreadState::Ready;
    resume_[tid] = std::move(resume);
    if (ctx.core >= 0) {
        // The response beat the switch-away drain; the pending release
        // event enqueues the thread once the core is actually free.
        return;
    }
    readyQueue_.push_back(tid);
    dispatch();
}

void
ServiceSim::dispatch()
{
    while (freeCores_ > 0 && !readyQueue_.empty()) {
        size_t tid = readyQueue_.front();
        readyQueue_.pop_front();
        ThreadCtx &ctx = threads_[tid];
        if (ctx.state != ThreadState::Ready)
            continue; // stale entry
        --freeCores_;
        ctx.core = 1;
        ctx.state = ThreadState::Running;

        sim::InlineCallback resume = std::move(resume_[tid]);
        ensure(static_cast<bool>(resume), "dispatch: missing continuation");
        double switch_in = ctx.needsSwitchIn
            ? cfg_.contextSwitchCycles + cfg_.cachePollutionCycles : 0.0;
        ctx.needsSwitchIn = false;
        if (switch_in > 0) {
            if (measuring_)
                metrics_.switchOverheadCycles += switch_in;
            runOnCore(tid, switch_in, std::move(resume),
                      kOverheadWorkTag);
        } else {
            resume();
        }
    }
}

void
ServiceSim::releaseCore(size_t tid)
{
    ThreadCtx &ctx = threads_[tid];
    ensure(ctx.core >= 0, "releaseCore: thread not on a core");
    ctx.core = -1;
    ++freeCores_;
}

void
ServiceSim::yieldCore(size_t tid)
{
    ThreadCtx &ctx = threads_[tid];
    ctx.state = ThreadState::Blocked;
    double switch_away = cfg_.contextSwitchCycles;
    if (switch_away > 0) {
        if (measuring_)
            metrics_.switchOverheadCycles += switch_away;
        eq_.scheduleIn(
            static_cast<sim::Tick>(std::llround(switch_away)),
            [this, tid]() {
                releaseCore(tid);
                if (threads_[tid].state == ThreadState::Ready)
                    readyQueue_.push_back(tid);
                dispatch();
            });
    } else {
        releaseCore(tid);
        dispatch();
    }
}

double
ServiceSim::chargeStolen(double cycles)
{
    // Response-pickup work "steals" core time from whichever thread runs
    // next (see the class comment); fold the pool into this charge.
    double stolen = pendingStolenCycles_;
    pendingStolenCycles_ = 0.0;
    if (measuring_ && stolen > 0) {
        metrics_.switchOverheadCycles += stolen;
        metrics_.coreCyclesByTag[kOverheadWorkTag] += stolen;
    }
    return cycles + stolen;
}

void
ServiceSim::runOnCore(size_t tid, double cycles,
                      sim::InlineCallback &&done, WorkTag tag)
{
    ThreadCtx &ctx = threads_[tid];
    ensure(ctx.state == ThreadState::Running && ctx.core >= 0,
           "runOnCore: thread must be running on a core");
    double charged = chargeStolen(cycles);
    if (measuring_) {
        metrics_.coreBusyCycles += charged;
        metrics_.coreCyclesByTag[tag] += cycles;
    }
    // At least one tick so zero-cost request chains always advance time.
    sim::Tick ticks =
        std::max<sim::Tick>(1, static_cast<sim::Tick>(
                                   std::llround(charged)));
    eq_.scheduleIn(ticks, std::move(done));
}

// --------------------------------------------------------------------
// Request flow
// --------------------------------------------------------------------

void
ServiceSim::startNextRequest(size_t tid)
{
    ThreadCtx &ctx = threads_[tid];
    if (eq_.now() >= endTick_) {
        ctx.state = ThreadState::Parked;
        if (ctx.core >= 0) {
            releaseCore(tid);
            dispatch();
        }
        return;
    }
    sim::Tick started = eq_.now();
    std::uint64_t token = 0;
    if (openLoop_) {
        if (arrivals_.empty()) {
            // Nothing to do: park until an arrival wakes us.
            ctx.state = ThreadState::Idle;
            if (ctx.core >= 0) {
                releaseCore(tid);
                dispatch();
            }
            idleThreads_.push_back(tid);
            return;
        }
        PendingArrival next = std::move(arrivals_.front());
        arrivals_.pop_front();
        ctx.req = std::move(next.req);
        // Latency is measured from arrival, so queueing time counts.
        started = next.arrived;
        token = next.token;
    } else {
        ctx.req = source_.next();
    }
    ctx.kernelIdx = 0;
    ctx.segmentIdx = 0;
    ctx.inflight = std::make_shared<InFlight>();
    ctx.inflight->start = started;
    ctx.inflight->token = token;
    maybeNext(tid);
}

void
ServiceSim::maybeNext(size_t tid)
{
    ThreadCtx &ctx = threads_[tid];
    // Kernels scheduled after already-executed segments come first,
    // then the next segment, then request completion.
    if (ctx.kernelIdx < ctx.req.kernels.size() &&
        ctx.req.kernels[ctx.kernelIdx].afterSegment < ctx.segmentIdx) {
        handleKernel(tid);
    } else if (ctx.segmentIdx < ctx.req.segments.size()) {
        execSegment(tid);
    } else if (ctx.kernelIdx < ctx.req.kernels.size()) {
        // Kernels pointing past the last segment still run.
        handleKernel(tid);
    } else {
        finishHostWork(tid);
    }
}

void
ServiceSim::execSegment(size_t tid)
{
    ThreadCtx &ctx = threads_[tid];
    const WorkSegment &seg = ctx.req.segments[ctx.segmentIdx];
    ++ctx.segmentIdx;
    runOnCore(tid, seg.cycles, [this, tid]() { maybeNext(tid); },
              seg.tag);
}

void
ServiceSim::handleKernel(size_t tid)
{
    ThreadCtx &ctx = threads_[tid];
    const KernelInvocation &k = ctx.req.kernels[ctx.kernelIdx++];

    bool offload = cfg_.accelerated && k.bytes >= cfg_.minOffloadBytes;
    if (!offload) {
        if (measuring_)
            ++metrics_.kernelsOnHost;
        runOnCore(tid, k.hostCycles, [this, tid]() { maybeNext(tid); },
                  k.tag);
        return;
    }

    bool probe = false;
    if (cfg_.breaker.enabled) {
        BreakerGate gate = breakerGate();
        if (!gate.offload) {
            // Breaker open: revert the kernel to host execution.
            if (measuring_) {
                ++metrics_.breakerFallbacks;
                metrics_.fallbackHostCycles += k.hostCycles;
            }
            ctx.inflight->degraded = true;
            runOnCore(tid, k.hostCycles,
                      [this, tid]() { maybeNext(tid); }, k.tag);
            return;
        }
        probe = gate.probe;
    }

    if (measuring_)
        ++metrics_.offloadsIssued;
    switch (cfg_.design) {
      case ThreadingDesign::Sync:
        offloadSync(tid, k, probe);
        break;
      case ThreadingDesign::SyncOS:
        offloadSyncOS(tid, k, probe);
        break;
      case ThreadingDesign::AsyncSameThread:
      case ThreadingDesign::AsyncDistinctThread:
      case ThreadingDesign::AsyncNoResponse:
        offloadAsync(tid, k, probe);
        break;
    }
}

void
ServiceSim::finishHostWork(size_t tid)
{
    ThreadCtx &ctx = threads_[tid];
    ctx.inflight->hostDone = true;
    maybeCompleteRequest(ctx.inflight,
                         cfg_.design == ThreadingDesign::AsyncNoResponse &&
                             cfg_.strategy == Strategy::Remote);
    startNextRequest(tid);
}

void
ServiceSim::maybeCompleteRequest(const std::shared_ptr<InFlight> &inflight,
                                 bool remoteExcluded)
{
    // Service-local latency: remote no-response offloads do not hold the
    // request open (their time lands on the application's end-to-end
    // path instead).
    bool service_done = inflight->hostDone &&
        (remoteExcluded || inflight->pendingKernels == 0);
    if (service_done && !inflight->counted) {
        inflight->counted = true;
        // The control loop sees every completion, warmup included:
        // scaling decisions are live from tick 0, only the *report*
        // window is gated on measuring_.
        if (autoscaler_) {
            autoscaler_->observeLatency(
                static_cast<double>(eq_.now() - inflight->start));
        }
        if (measuring_) {
            ++metrics_.requestsCompleted;
            double latency =
                static_cast<double>(eq_.now() - inflight->start);
            metrics_.latencyCycles.add(latency);
            metrics_.latencySample.add(latency);
            if (inflight->degraded) {
                ++metrics_.requestsDegraded;
                metrics_.degradedLatencyCycles.add(latency);
                metrics_.degradedLatencySample.add(latency);
            }
            if (inflight->failed)
                ++metrics_.requestsFailed;
        }
        // Like the autoscaler feed, the graph hook sees every
        // completion (warmup included); the graph gates its own
        // measurement window.
        if (completionHook_) {
            completionHook_(inflight->token, inflight->start,
                            inflight->failed);
        }
    }
    if (inflight->hostDone && inflight->pendingKernels == 0 &&
        measuring_ && inflight->counted) {
        metrics_.endToEndLatencyCycles.add(
            static_cast<double>(eq_.now() - inflight->start));
    }
}

// --------------------------------------------------------------------
// Offload paths
// --------------------------------------------------------------------

void
ServiceSim::offloadSync(size_t tid, const KernelInvocation &k, bool probe)
{
    double issue = cfg_.offloadSetupCycles + cfg_.unmodeledPerOffloadCycles;
    if (measuring_)
        metrics_.dispatchOverheadCycles += issue;
    runOnCore(tid, issue, [this, tid, k, probe]() {
        // The core stays held (idle) across transfer + queue + service
        // — and, in degraded mode, across timeouts and backoff too: a
        // synchronous driver's retry loop blocks right where it is.
        sim::Tick held_from = eq_.now();
        dispatchResilient(
            tid, k, /*transferPaidByHost=*/false, probe,
            threads_[tid].inflight,
            [this, tid, k, held_from](OffloadOutcome out) {
                if (measuring_) {
                    metrics_.coreHeldIdleCycles +=
                        static_cast<double>(eq_.now() - held_from);
                }
                if (out == OffloadOutcome::HostFallback) {
                    // The core is still held; the kernel re-executes
                    // right here as ordinary (busy) host work.
                    runOnCore(tid, k.hostCycles,
                              [this, tid]() { maybeNext(tid); }, k.tag);
                } else {
                    maybeNext(tid);
                }
            });
    }, kOverheadWorkTag);
}

void
ServiceSim::offloadSyncOS(size_t tid, const KernelInvocation &k,
                          bool probe)
{
    double hold = cfg_.offloadSetupCycles + cfg_.unmodeledPerOffloadCycles;
    if (cfg_.driverWaitsForAck)
        hold += accel_.transferCycles(k.bytes);
    if (measuring_)
        metrics_.dispatchOverheadCycles += hold;
    runOnCore(tid, hold, [this, tid, k, probe]() {
        dispatchResilient(
            tid, k, /*transferPaidByHost=*/cfg_.driverWaitsForAck, probe,
            threads_[tid].inflight,
            [this, tid, k](OffloadOutcome out) {
                ThreadCtx &ctx = threads_[tid];
                ctx.needsSwitchIn = true;
                if (out == OffloadOutcome::HostFallback) {
                    // Wake the blocked thread to re-run the kernel on
                    // its core as ordinary host work.
                    makeReady(tid, [this, tid, k]() {
                        runOnCore(tid, k.hostCycles,
                                  [this, tid]() { maybeNext(tid); },
                                  k.tag);
                    });
                } else {
                    makeReady(tid, [this, tid]() { maybeNext(tid); });
                }
            });
        yieldCore(tid);
    }, kOverheadWorkTag);
}

void
ServiceSim::offloadAsync(size_t tid, const KernelInvocation &k,
                         bool probe)
{
    ThreadCtx &ctx = threads_[tid];
    double hold = cfg_.offloadSetupCycles + cfg_.unmodeledPerOffloadCycles;
    if (cfg_.driverWaitsForAck)
        hold += accel_.transferCycles(k.bytes);
    if (measuring_)
        metrics_.dispatchOverheadCycles += hold;

    bool tracks_outstanding =
        cfg_.design != ThreadingDesign::AsyncNoResponse;

    std::shared_ptr<InFlight> inflight = ctx.inflight;
    ++inflight->pendingKernels;
    if (tracks_outstanding)
        ++ctx.outstanding;

    runOnCore(tid, hold, [this, tid, k, probe, inflight,
                          tracks_outstanding]() {
        dispatchResilient(
            tid, k, /*transferPaidByHost=*/cfg_.driverWaitsForAck, probe,
            inflight,
            [this, tid, k, inflight](OffloadOutcome out) {
                if (out == OffloadOutcome::HostFallback) {
                    // Async fallback: the re-execution steals core
                    // time from whatever runs next (the established
                    // response-pickup accounting; see DESIGN.md).
                    pendingStolenCycles_ += k.hostCycles;
                }
                onAsyncResponse(tid, inflight);
            });

        ThreadCtx &ctx = threads_[tid];
        if (tracks_outstanding && ctx.outstanding >= cfg_.maxOutstanding) {
            // Backpressure: stop issuing until responses drain. The
            // analytical model has no notion of this; it only bites at
            // high accelerator load.
            ctx.blockedOnOutstanding = true;
            ctx.state = ThreadState::Blocked;
            resume_[tid] = [this, tid]() { maybeNext(tid); };
            releaseCore(tid);
            dispatch();
        } else {
            maybeNext(tid);
        }
    }, kOverheadWorkTag);
}

void
ServiceSim::onAsyncResponse(size_t tid,
                            const std::shared_ptr<InFlight> &inflight)
{
    ThreadCtx &ctx = threads_[tid];
    ensure(inflight->pendingKernels > 0,
           "onAsyncResponse: no pending kernels");
    --inflight->pendingKernels;
    inflight->lastResponse = eq_.now();

    bool no_response = cfg_.design == ThreadingDesign::AsyncNoResponse;
    if (!no_response) {
        ensure(ctx.outstanding > 0, "onAsyncResponse: outstanding = 0");
        --ctx.outstanding;
        double stolen = cfg_.responsePickupCycles;
        if (cfg_.design == ThreadingDesign::AsyncDistinctThread) {
            stolen += cfg_.contextSwitchCycles +
                      cfg_.cachePollutionCycles;
        }
        pendingStolenCycles_ += stolen;
    }

    maybeCompleteRequest(inflight,
                         no_response &&
                             cfg_.strategy == Strategy::Remote);

    if (ctx.blockedOnOutstanding &&
        ctx.outstanding < cfg_.maxOutstanding) {
        ctx.blockedOnOutstanding = false;
        sim::InlineCallback resume = std::move(resume_[tid]);
        makeReady(tid, std::move(resume));
    }
}

// --------------------------------------------------------------------
// Degraded-mode offload: deadline + retry + circuit breaker
// --------------------------------------------------------------------

void
ServiceSim::dispatchResilient(size_t tid, const KernelInvocation &k,
                              bool transferPaidByHost, bool probe,
                              const std::shared_ptr<InFlight> &inflight,
                              sim::InlineFunction<void(OffloadOutcome)> &&resolve)
{
    if (!resilienceActive()) {
        // No deadline configured: the pre-fault code path — wait for
        // the device forever. Bit-identical to a tree without this
        // layer.
        accel_.offload(k.hostCycles, k.bytes,
                       [res = std::move(resolve)]() {
                           res(OffloadOutcome::Accel);
                       },
                       transferPaidByHost);
        return;
    }
    issueAttempt(tid, k, transferPaidByHost, /*attempt=*/0, probe,
                 inflight, std::move(resolve));
}

sim::Tick
ServiceSim::backoffTicks(std::uint32_t attempt) const
{
    double d = cfg_.retry.backoffBaseCycles *
               std::pow(cfg_.retry.backoffFactor,
                        static_cast<double>(attempt));
    d = std::min(d, cfg_.retry.backoffCapCycles);
    return static_cast<sim::Tick>(std::llround(d));
}

void
ServiceSim::issueAttempt(size_t tid, const KernelInvocation &k,
                         bool transferPaidByHost, std::uint32_t attempt,
                         bool probe,
                         const std::shared_ptr<InFlight> &inflight,
                         sim::InlineFunction<void(OffloadOutcome)> &&resolve)
{
    auto state = std::make_shared<AttemptState>();
    state->resolve = std::move(resolve);

    // The device completion and the deadline timer race; whichever
    // fires first settles the attempt and the loser is cancelled (or
    // ignored — a completion that lost the race is a late response).
    accel_.offload(
        k.hostCycles, k.bytes,
        [this, state, probe]() {
            if (state->settled) {
                if (measuring_)
                    ++metrics_.lateCompletionsIgnored;
                return;
            }
            state->settled = true;
            eq_.cancelTimer(state->timer);
            breakerRecord(/*success=*/true, probe);
            state->resolve(OffloadOutcome::Accel);
        },
        transferPaidByHost);

    state->timer = eq_.scheduleTimerIn(
        static_cast<sim::Tick>(std::llround(cfg_.retry.timeoutCycles)),
        [this, state, tid, k, transferPaidByHost, attempt, probe,
         inflight]() {
            ensure(!state->settled,
                   "issueAttempt: deadline fired after settlement");
            state->settled = true;
            inflight->degraded = true;
            if (measuring_)
                ++metrics_.offloadTimeouts;
            timeoutWarner_.warn(
                "thread " + std::to_string(tid) + " attempt " +
                std::to_string(attempt + 1) + " deadline at tick " +
                std::to_string(eq_.now()));
            breakerRecord(/*success=*/false, probe);

            // A probe never retries, and an open breaker cuts the
            // retry chain short — both routes go straight to host.
            bool can_retry = !probe &&
                attempt + 1 < cfg_.retry.maxAttempts &&
                breakerState_ == BreakerState::Closed;
            if (can_retry) {
                if (measuring_)
                    ++metrics_.offloadRetries;
                eq_.scheduleIn(
                    backoffTicks(attempt),
                    [this, state, tid, k, transferPaidByHost,
                     attempt, inflight]() {
                        issueAttempt(tid, k, transferPaidByHost,
                                     attempt + 1, /*probe=*/false,
                                     inflight,
                                     std::move(state->resolve));
                    });
            } else if (cfg_.retry.hostFallback) {
                if (measuring_) {
                    ++metrics_.hostFallbacks;
                    metrics_.fallbackHostCycles += k.hostCycles;
                }
                fallbackWarner_.warn(
                    "thread " + std::to_string(tid) +
                    " reverting kernel to host at tick " +
                    std::to_string(eq_.now()));
                state->resolve(OffloadOutcome::HostFallback);
            } else {
                if (measuring_)
                    ++metrics_.offloadsAbandoned;
                inflight->failed = true;
                state->resolve(OffloadOutcome::Abandoned);
            }
        });
}

ServiceSim::BreakerGate
ServiceSim::breakerGate()
{
    switch (breakerState_) {
      case BreakerState::Closed:
        return {true, false};
      case BreakerState::Open:
        if (static_cast<double>(eq_.now() - breakerOpenedAt_) >=
            cfg_.breaker.probeAfterCycles) {
            breakerState_ = BreakerState::HalfOpen;
            if (measuring_)
                ++metrics_.breakerProbes;
            return {true, true};
        }
        return {false, false};
      case BreakerState::HalfOpen:
        // A probe is already in flight; everyone else stays on host.
        return {false, false};
    }
    panic("breakerGate: unreachable state");
}

void
ServiceSim::breakerRecord(bool success, bool probe)
{
    if (!cfg_.breaker.enabled)
        return;
    if (probe) {
        ensure(breakerState_ == BreakerState::HalfOpen,
               "breakerRecord: probe outcome without half-open state");
        if (success) {
            breakerState_ = BreakerState::Closed;
            breakerWindow_.clear();
            breakerFailures_ = 0;
            if (measuring_)
                ++metrics_.breakerCloses;
        } else {
            breakerState_ = BreakerState::Open;
            breakerOpenedAt_ = eq_.now();
        }
        return;
    }
    if (breakerState_ != BreakerState::Closed)
        return; // stragglers from before the breaker opened
    breakerWindow_.push_back(success);
    if (!success)
        ++breakerFailures_;
    if (breakerWindow_.size() > cfg_.breaker.window) {
        if (!breakerWindow_.front())
            --breakerFailures_;
        breakerWindow_.pop_front();
    }
    if (breakerWindow_.size() >= cfg_.breaker.minSamples &&
        static_cast<double>(breakerFailures_) /
                static_cast<double>(breakerWindow_.size()) >=
            cfg_.breaker.openThreshold) {
        breakerState_ = BreakerState::Open;
        breakerOpenedAt_ = eq_.now();
        breakerWindow_.clear();
        breakerFailures_ = 0;
        if (measuring_)
            ++metrics_.breakerOpens;
        warn("circuit breaker opened at tick " +
             std::to_string(eq_.now()) +
             ": offloads revert to host execution");
    }
}

// --------------------------------------------------------------------
// Run loop
// --------------------------------------------------------------------

void
ServiceSim::setCompletionHook(CompletionHook &&hook)
{
    completionHook_ = std::move(hook);
}

void
ServiceSim::beginWindow(double measureSeconds, double warmupSeconds)
{
    require(measureSeconds > 0, "ServiceSim::run: window must be positive");
    require(warmupSeconds >= 0, "ServiceSim::run: negative warmup");
    ensure(endTick_ == 0, "ServiceSim::run: single-use object");

    sim::Tick warmup_tick =
        static_cast<sim::Tick>(warmupSeconds * cyclesPerSecond_);
    endTick_ = warmup_tick +
        static_cast<sim::Tick>(measureSeconds * cyclesPerSecond_);

    metrics_ = ServiceMetrics();
    metrics_.measuredSeconds = measureSeconds;
    measuring_ = warmupSeconds == 0;

    if (!measuring_) {
        eq_.schedule(warmup_tick, [this]() {
            ServiceMetrics fresh;
            fresh.measuredSeconds = metrics_.measuredSeconds;
            metrics_ = fresh;
            // A graph-shared tier is reset by the graph, once — not
            // once per contending service.
            if (!sharedTier_)
                accel_.resetStats();
            if (autoscaler_)
                autoscaler_->resetStats();
            measuring_ = true;
        }, /*priority=*/-100);
    }

    if (autoscaler_)
        autoscaler_->start(endTick_);
    if (openLoop_ && cyclesPerArrival_ > 0)
        scheduleNextArrival();
    for (size_t tid = 0; tid < threads_.size(); ++tid)
        makeReady(tid, [this, tid]() { startNextRequest(tid); });
}

ServiceMetrics
ServiceSim::collectMetrics()
{
    timeoutWarner_.flushSummary();
    fallbackWarner_.flushSummary();
    if (!sharedTier_) {
        metrics_.accelerator = accel_.aggregateDeviceStats();
        metrics_.tier = accel_.snapshot();
    }
    if (autoscaler_)
        metrics_.autoscaler = autoscaler_->stats();
    return metrics_;
}

ServiceMetrics
ServiceSim::run(double measureSeconds, double warmupSeconds)
{
    ensure(ownedEq_ != nullptr,
           "ServiceSim::run: a graph node runs on the graph's shared "
           "queue (ServiceGraph::run), not its own");
    beginWindow(measureSeconds, warmupSeconds);
    eq_.runUntil(endTick_);
    return collectMetrics();
}

} // namespace accel::microsim

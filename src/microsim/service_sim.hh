/**
 * @file
 * Closed-loop microservice instance simulator.
 *
 * Simulates one service instance: worker threads on cores process
 * requests back-to-back (closed loop = the paper's "peak load"
 * measurement). Requests contain offloadable kernels; the configured
 * threading design determines how an offload interacts with cores:
 *
 *  - Sync: one thread per core; the core is held idle during the
 *    transfer, queue wait, and accelerator service (Fig. 12).
 *  - Sync-OS: over-subscribed threads; the core pays a switch (o1),
 *    runs another thread, and pays a second switch when the blocked
 *    thread resumes (Fig. 13).
 *  - Async same-thread: the thread issues the offload and keeps
 *    processing; the response is picked up without a switch (Fig. 14).
 *  - Async distinct-thread: responses are handled by a dedicated thread,
 *    costing one switch per offload.
 *  - Async no-response: the host never consumes the response.
 *
 * The simulator deliberately includes effects the analytical model
 * abstracts away — emergent accelerator queuing, switch-in cache
 * pollution, response pickup work, per-offload driver slop, and
 * bounded-outstanding backpressure — so A/B comparisons against it play
 * the role of the paper's production measurements.
 */

#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "microsim/accelerator.hh"
#include "microsim/metrics.hh"
#include "microsim/request_gen.hh"
#include "model/params.hh"
#include "sim/event_queue.hh"

namespace accel::microsim {

/** Static description of a service instance. */
struct ServiceConfig
{
    std::uint32_t cores = 1;
    std::uint32_t threads = 1;
    model::ThreadingDesign design = model::ThreadingDesign::Sync;
    model::Strategy strategy = model::Strategy::OffChip;
    double clockGHz = 2.0;

    /** False = baseline run: every kernel executes on the host. */
    bool accelerated = true;

    double offloadSetupCycles = 0.0;   //!< o0 charged on the core
    double contextSwitchCycles = 0.0;  //!< o1 per switch
    /** Unmodeled extra cycles after a switch (cache pollution). */
    double cachePollutionCycles = 0.0;
    /** Unmodeled response pickup work per async response. */
    double responsePickupCycles = 0.0;
    /** Unmodeled driver slop per offload. */
    double unmodeledPerOffloadCycles = 0.0;

    /**
     * When true, the core is held during the interface transfer while
     * the driver awaits the device's receipt acknowledgement (the paper's
     * "(L+Q) persists" case). When false (e.g. remote accelerators), the
     * transfer overlaps with host execution.
     */
    bool driverWaitsForAck = true;

    /** Kernels smaller than this execute on the host (selective offload). */
    double minOffloadBytes = 0.0;

    /** Per-thread cap on outstanding async offloads (backpressure). */
    std::uint32_t maxOutstanding = 64;

    /**
     * Load mode. 0 (default) runs the closed loop the paper's
     * peak-load measurements correspond to: every thread processes
     * requests back to back. A positive value switches to open-loop
     * Poisson arrivals at this rate; idle threads park until work
     * arrives, and request latency then includes arrival queueing —
     * enabling latency-vs-load and SLO analysis.
     */
    double openArrivalsPerSec = 0.0;

    /** @throws FatalError on inconsistent settings. */
    void validate() const;
};

/** One simulated service instance. */
class ServiceSim
{
  public:
    /**
     * @param service   instance configuration
     * @param accel     accelerator device description
     * @param workload  request mix
     * @param seed      RNG seed (deterministic replay)
     */
    ServiceSim(const ServiceConfig &service, const AcceleratorConfig &accel,
               const WorkloadSpec &workload, std::uint64_t seed);

    /**
     * Run the closed loop and return metrics for the measurement window.
     *
     * @param measureSeconds  measurement window length
     * @param warmupSeconds   cycles discarded before measuring
     */
    ServiceMetrics run(double measureSeconds, double warmupSeconds = 0.1);

  private:
    enum class ThreadState { Ready, Running, Blocked, Idle, Parked };

    /** Per-request completion tracking shared with response callbacks. */
    struct InFlight
    {
        sim::Tick start = 0;
        std::uint32_t pendingKernels = 0;
        bool hostDone = false;
        bool counted = false;
        sim::Tick lastResponse = 0;
    };

    struct ThreadCtx
    {
        ThreadState state = ThreadState::Ready;
        Request req;
        size_t kernelIdx = 0;
        size_t segmentIdx = 0;
        std::shared_ptr<InFlight> inflight;
        std::uint32_t outstanding = 0;
        bool blockedOnOutstanding = false;
        bool needsSwitchIn = false;
        int core = -1;
    };

    // --- configuration ---
    ServiceConfig cfg_;
    sim::EventQueue eq_;
    Accelerator accel_;
    RequestSource source_;

    // --- scheduler state ---
    std::vector<ThreadCtx> threads_;
    std::deque<size_t> readyQueue_;
    std::uint32_t freeCores_ = 0;

    // --- open-loop arrivals ---
    struct PendingArrival
    {
        Request req;
        sim::Tick arrived;
    };
    std::deque<PendingArrival> arrivals_;
    std::vector<size_t> idleThreads_;
    Rng arrivalRng_;
    double cyclesPerArrival_ = 0.0;

    void scheduleNextArrival();
    void onArrival();

    // --- response-pickup accounting pool (see DESIGN.md) ---
    double pendingStolenCycles_ = 0.0;

    // --- run bookkeeping ---
    sim::Tick endTick_ = 0;
    bool measuring_ = false;
    ServiceMetrics metrics_;

    // --- scheduling ---
    /** Mark @p tid runnable; @p resume is the sink continuation. */
    void makeReady(size_t tid, std::function<void()> &&resume);
    void dispatch();
    void releaseCore(size_t tid);
    void yieldCore(size_t tid);

    /**
     * Occupy the thread's core for @p cycles, then call @p done.
     * @p tag attributes the cycles in coreCyclesByTag.
     */
    void runOnCore(size_t tid, double cycles,
                   std::function<void()> &&done,
                   WorkTag tag = kUntagged);

    // --- request flow ---
    void startNextRequest(size_t tid);
    /** Run segments/kernels in order; dispatches the next work item. */
    void maybeNext(size_t tid);
    void execSegment(size_t tid);
    void handleKernel(size_t tid);
    void finishHostWork(size_t tid);
    void maybeCompleteRequest(const std::shared_ptr<InFlight> &inflight,
                              bool remoteExcluded);

    // --- offload paths ---
    void offloadSync(size_t tid, const KernelInvocation &k);
    void offloadSyncOS(size_t tid, const KernelInvocation &k);
    void offloadAsync(size_t tid, const KernelInvocation &k);
    void onAsyncResponse(size_t tid,
                         const std::shared_ptr<InFlight> &inflight);

    /** Per-thread resume continuation while blocked. */
    std::vector<std::function<void()>> resume_;

    double chargeStolen(double cycles);
};

} // namespace accel::microsim

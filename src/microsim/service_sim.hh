/**
 * @file
 * Closed-loop microservice instance simulator.
 *
 * Simulates one service instance: worker threads on cores process
 * requests back-to-back (closed loop = the paper's "peak load"
 * measurement). Requests contain offloadable kernels; the configured
 * threading design determines how an offload interacts with cores:
 *
 *  - Sync: one thread per core; the core is held idle during the
 *    transfer, queue wait, and accelerator service (Fig. 12).
 *  - Sync-OS: over-subscribed threads; the core pays a switch (o1),
 *    runs another thread, and pays a second switch when the blocked
 *    thread resumes (Fig. 13).
 *  - Async same-thread: the thread issues the offload and keeps
 *    processing; the response is picked up without a switch (Fig. 14).
 *  - Async distinct-thread: responses are handled by a dedicated thread,
 *    costing one switch per offload.
 *  - Async no-response: the host never consumes the response.
 *
 * The simulator deliberately includes effects the analytical model
 * abstracts away — emergent accelerator queuing, switch-in cache
 * pollution, response pickup work, per-offload driver slop, and
 * bounded-outstanding backpressure — so A/B comparisons against it play
 * the role of the paper's production measurements.
 */

#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "microsim/accelerator.hh"
#include "microsim/arrival_program.hh"
#include "microsim/autoscaler.hh"
#include "microsim/metrics.hh"
#include "microsim/request_gen.hh"
#include "microsim/tier.hh"
#include "model/params.hh"
#include "sim/event_queue.hh"
#include "util/logging.hh"

namespace accel::microsim {

/**
 * Per-offload deadline + retry policy (degraded-mode offload).
 *
 * timeoutCycles == 0 (the default) disables the whole resilience
 * layer: offloads wait for the device forever, exactly the pre-fault
 * behaviour. With a deadline, each attempt races a cancellable timer
 * against the device completion; expiry triggers capped exponential
 * backoff and, after maxAttempts, host fallback (or abandonment).
 */
struct RetryPolicy
{
    /** Deadline per offload attempt in cycles (0 = never time out). */
    double timeoutCycles = 0.0;

    /** Total attempts per kernel, including the first. */
    std::uint32_t maxAttempts = 1;

    double backoffBaseCycles = 0.0; //!< delay before the first retry
    double backoffFactor = 2.0;     //!< exponential growth per retry
    double backoffCapCycles = 1e9;  //!< hard cap on any single backoff

    /**
     * After retry exhaustion, re-execute the kernel on the host. When
     * false the kernel is abandoned: the request still completes but
     * counts as failed, not goodput.
     */
    bool hostFallback = true;

    /** True when the deadline/retry layer is engaged. */
    bool active() const { return timeoutCycles > 0; }

    /** @throws FatalError on out-of-domain values (names the field). */
    void validate() const;
};

/**
 * Failure-rate circuit breaker. While closed, offload outcomes feed a
 * sliding window; when the observed failure fraction crosses
 * openThreshold the breaker opens and kernels revert to host
 * execution. After probeAfterCycles one probe offload is attempted
 * (half-open): success closes the breaker, failure re-opens it.
 * Requires RetryPolicy::active() — timeouts are the failure signal.
 */
struct BreakerConfig
{
    bool enabled = false;
    std::uint32_t window = 32;     //!< sliding outcome window size
    std::uint32_t minSamples = 8;  //!< samples before evaluating
    double openThreshold = 0.5;    //!< failure fraction that opens
    double probeAfterCycles = 1e6; //!< open -> probe delay (sim cycles)

    /** @throws FatalError on out-of-domain values (names the field). */
    void validate() const;
};

/** Static description of a service instance. */
struct ServiceConfig
{
    std::uint32_t cores = 1;
    std::uint32_t threads = 1;
    model::ThreadingDesign design = model::ThreadingDesign::Sync;
    model::Strategy strategy = model::Strategy::OffChip;
    double clockGHz = 2.0;

    /** False = baseline run: every kernel executes on the host. */
    bool accelerated = true;

    double offloadSetupCycles = 0.0;   //!< o0 charged on the core
    double contextSwitchCycles = 0.0;  //!< o1 per switch
    /** Unmodeled extra cycles after a switch (cache pollution). */
    double cachePollutionCycles = 0.0;
    /** Unmodeled response pickup work per async response. */
    double responsePickupCycles = 0.0;
    /** Unmodeled driver slop per offload. */
    double unmodeledPerOffloadCycles = 0.0;

    /**
     * When true, the core is held during the interface transfer while
     * the driver awaits the device's receipt acknowledgement (the paper's
     * "(L+Q) persists" case). When false (e.g. remote accelerators), the
     * transfer overlaps with host execution.
     */
    bool driverWaitsForAck = true;

    /** Kernels smaller than this execute on the host (selective offload). */
    double minOffloadBytes = 0.0;

    /** Per-thread cap on outstanding async offloads (backpressure). */
    std::uint32_t maxOutstanding = 64;

    /** Deadline/retry/fallback policy for offloads (default: off). */
    RetryPolicy retry;

    /** Circuit breaker reverting kernels to host (default: off). */
    BreakerConfig breaker;

    /**
     * Open-loop mode: bound on the admission queue. Arrivals beyond
     * this depth are shed (rejected, counted in requestsShed) instead
     * of queued. 0 = unbounded (legacy behaviour).
     */
    std::uint32_t maxArrivalQueue = 0;

    /**
     * Load mode. 0 (default) runs the closed loop the paper's
     * peak-load measurements correspond to: every thread processes
     * requests back to back. A positive value switches to open-loop
     * Poisson arrivals at this rate; idle threads park until work
     * arrives, and request latency then includes arrival queueing —
     * enabling latency-vs-load and SLO analysis.
     */
    double openArrivalsPerSec = 0.0;

    /**
     * Time-varying open-loop arrivals: a seeded non-homogeneous
     * Poisson process whose rate follows this program (day traces,
     * flash crowds, multi-tenant mixes — see arrival_program.hh).
     * Mutually exclusive with openArrivalsPerSec; a *constant* program
     * replays bit-for-bit as the equivalent openArrivalsPerSec run,
     * while a varying one uses Lewis-Shedler thinning (candidates at
     * the peak rate, one extra accept draw per candidate).
     */
    ArrivalProgram arrivalProgram;

    /**
     * SLO-driven control loop over the replica tier plus the optional
     * brown-out admission gate (default: disabled). Requires open-loop
     * arrivals; the brown-out gate additionally requires
     * maxArrivalQueue > 0 to tighten within.
     */
    AutoscalerConfig autoscaler;

    /** @throws FatalError on inconsistent settings. */
    void validate() const;
};

class ServiceSpec;

/** One simulated service instance. */
class ServiceSim
{
  public:
    /**
     * Standalone instance from a validated ServiceSpec (the unified
     * construction API; see service_spec.hh). Owns its event queue and
     * accelerator tier.
     *
     * @throws FatalError listing every spec problem at once.
     */
    explicit ServiceSim(const ServiceSpec &spec);

    /**
     * Graph-node instance: the simulator runs on @p eq (a clock shared
     * with the other nodes of a ServiceGraph) and, when @p sharedTier
     * is non-null, offloads through that graph-owned tier instead of
     * constructing its own. @p serverMode puts the node in open-loop
     * arrival mode even without its own arrival source, so injected
     * RPC arrivals (injectArrival) are its only offered load.
     *
     * Both referents must outlive the simulator. Use run() only on
     * standalone instances; a graph drives beginWindow() /
     * collectMetrics() around its own event-loop run.
     */
    ServiceSim(const ServiceSpec &spec, sim::EventQueue &eq,
               AcceleratorTier *sharedTier, bool serverMode);

    /**
     * @param service   instance configuration
     * @param accel     accelerator device description
     * @param workload  request mix
     * @param seed      RNG seed (deterministic replay)
     *
     * @deprecated Construct through ServiceSpec instead; this shim
     * delegates to the spec path bit-identically.
     */
    [[deprecated("construct via ServiceSpec (see service_spec.hh)")]]
    ServiceSim(const ServiceConfig &service, const AcceleratorConfig &accel,
               const WorkloadSpec &workload, std::uint64_t seed);

    /**
     * As above but with the accelerator behind a replicated tier.
     * @p accel describes each replica; @p tier the replica count,
     * dispatch policy, hedging, and health tracking. The default
     * TierConfig (one replica, everything off) is the plain
     * single-device constructor, bit for bit.
     *
     * @throws FatalError when hedging is combined with the Sync
     *         design (reported via ServiceSpec::validate).
     *
     * @deprecated Construct through ServiceSpec instead; this shim
     * delegates to the spec path bit-identically.
     */
    [[deprecated("construct via ServiceSpec (see service_spec.hh)")]]
    ServiceSim(const ServiceConfig &service, const AcceleratorConfig &accel,
               const TierConfig &tier, const WorkloadSpec &workload,
               std::uint64_t seed);

    /**
     * Run the closed loop and return metrics for the measurement window.
     * Standalone instances only (the graph runs the shared queue).
     *
     * @param measureSeconds  measurement window length
     * @param warmupSeconds   cycles discarded before measuring
     */
    ServiceMetrics run(double measureSeconds, double warmupSeconds = 0.1);

    // --- graph-node driving (ServiceGraph) ---

    /**
     * Invoked once per completed request — warmup included, like the
     * autoscaler's latency feed — with the request's injection token
     * (0 for locally-generated requests), its arrival tick, and
     * whether a kernel was abandoned. Unset: zero overhead, no
     * behaviour change.
     */
    using CompletionHook =
        sim::InlineFunction<void(std::uint64_t token, sim::Tick arrivedAt,
                                 bool failed)>;

    void setCompletionHook(CompletionHook &&hook);

    /**
     * Deliver one externally-generated (RPC) arrival carrying @p token
     * through the normal admission path: it is counted in
     * requestsArrived, subject to the bounded-queue / brown-out shed
     * logic, and wakes an idle thread.
     *
     * @return false when the arrival was shed (the caller owns the
     *         failure accounting); true when admitted, in which case
     *         the completion hook will eventually fire with @p token.
     */
    bool injectArrival(std::uint64_t token);

    /**
     * First half of run(): set up the measurement window (warmup
     * reset, arrival source, thread wake-up) without running the
     * event loop — the graph runs the shared queue itself. A node on
     * a shared tier skips the tier's warmup reset and final snapshot;
     * the graph owns both (once, not once per service).
     */
    void beginWindow(double measureSeconds, double warmupSeconds);

    /** Second half of run(): flush warners, snapshot metrics. */
    ServiceMetrics collectMetrics();

    /** End of the window set by beginWindow()/run(), in ticks. */
    sim::Tick windowEndTick() const { return endTick_; }

  private:
    /** Shared delegate: null @p eq / @p sharedTier = owned. */
    ServiceSim(const ServiceSpec &spec, sim::EventQueue *eq,
               AcceleratorTier *sharedTier, bool serverMode);

    enum class ThreadState { Ready, Running, Blocked, Idle, Parked };

    /** Per-request completion tracking shared with response callbacks. */
    struct InFlight
    {
        sim::Tick start = 0;
        std::uint32_t pendingKernels = 0;
        bool hostDone = false;
        bool counted = false;
        /** Saw degraded handling (timeout/retry/fallback/breaker). */
        bool degraded = false;
        /** A kernel was abandoned: completed without a result. */
        bool failed = false;
        sim::Tick lastResponse = 0;
        /** Injection token (graph RPC); 0 = locally generated. */
        std::uint64_t token = 0;
    };

    struct ThreadCtx
    {
        ThreadState state = ThreadState::Ready;
        Request req;
        size_t kernelIdx = 0;
        size_t segmentIdx = 0;
        std::shared_ptr<InFlight> inflight;
        std::uint32_t outstanding = 0;
        bool blockedOnOutstanding = false;
        bool needsSwitchIn = false;
        int core = -1;
    };

    // --- configuration ---
    ServiceConfig cfg_;
    /** Owned when standalone; null when running on a graph's queue. */
    std::unique_ptr<sim::EventQueue> ownedEq_;
    sim::EventQueue &eq_;
    /** Owned unless the spec names a graph-shared tier. */
    std::unique_ptr<AcceleratorTier> ownedAccel_;
    AcceleratorTier &accel_; //!< trivial tier = the old single device
    /** Tier shared with other graph nodes: reset/snapshot is theirs. */
    bool sharedTier_ = false;
    /** Injected arrivals are the only offered load (graph server). */
    bool serverMode_ = false;
    RequestSource source_;

    // --- scheduler state ---
    std::vector<ThreadCtx> threads_;
    std::deque<size_t> readyQueue_;
    std::uint32_t freeCores_ = 0;

    // --- open-loop arrivals ---
    struct PendingArrival
    {
        Request req;
        sim::Tick arrived;
        std::uint64_t token = 0; //!< graph RPC token; 0 = local
    };
    std::deque<PendingArrival> arrivals_;
    std::vector<size_t> idleThreads_;
    Rng arrivalRng_;
    double cyclesPerArrival_ = 0.0; //!< mean candidate gap (peak rate)
    bool openLoop_ = false;
    /** Non-constant program: thin peak-rate candidates by rate(t)/peak. */
    bool thinning_ = false;
    double peakArrivalsPerSec_ = 0.0;
    double cyclesPerSecond_ = 0.0;

    /** SLO control loop; null unless cfg_.autoscaler.enabled. */
    std::unique_ptr<Autoscaler> autoscaler_;

    void scheduleNextArrival();
    void onArrival();
    /**
     * One accepted arrival: admission check, enqueue, thread wake.
     * @return false when the arrival was shed.
     */
    bool admitArrival(std::uint64_t token);

    // --- response-pickup accounting pool (see DESIGN.md) ---
    double pendingStolenCycles_ = 0.0;

    // --- run bookkeeping ---
    sim::Tick endTick_ = 0;
    bool measuring_ = false;
    ServiceMetrics metrics_;
    CompletionHook completionHook_;

    // --- scheduling ---
    /** Mark @p tid runnable; @p resume is the sink continuation. */
    void makeReady(size_t tid, sim::InlineCallback &&resume);
    void dispatch();
    void releaseCore(size_t tid);
    void yieldCore(size_t tid);

    /**
     * Occupy the thread's core for @p cycles, then call @p done.
     * @p tag attributes the cycles in coreCyclesByTag.
     */
    void runOnCore(size_t tid, double cycles,
                   sim::InlineCallback &&done,
                   WorkTag tag = kUntagged);

    // --- request flow ---
    void startNextRequest(size_t tid);
    /** Run segments/kernels in order; dispatches the next work item. */
    void maybeNext(size_t tid);
    void execSegment(size_t tid);
    void handleKernel(size_t tid);
    void finishHostWork(size_t tid);
    void maybeCompleteRequest(const std::shared_ptr<InFlight> &inflight,
                              bool remoteExcluded);

    // --- offload paths ---
    void offloadSync(size_t tid, const KernelInvocation &k, bool probe);
    void offloadSyncOS(size_t tid, const KernelInvocation &k, bool probe);
    void offloadAsync(size_t tid, const KernelInvocation &k, bool probe);
    void onAsyncResponse(size_t tid,
                         const std::shared_ptr<InFlight> &inflight);

    // --- degraded-mode offload (deadline, retry, breaker) ---

    /** How a resilient offload ultimately resolved. */
    enum class OffloadOutcome
    {
        Accel,        //!< device completion arrived in time
        HostFallback, //!< retries exhausted; re-executed on the host
        Abandoned,    //!< retries exhausted; no fallback configured
    };

    /** One attempt's race between device completion and deadline. */
    struct AttemptState
    {
        bool settled = false;
        sim::TimerId timer = sim::kInvalidTimer;
        sim::InlineFunction<void(OffloadOutcome)> resolve;
    };

    bool resilienceActive() const { return cfg_.retry.active(); }

    /**
     * Offload @p k with the configured resilience policy. @p resolve
     * is invoked exactly once with the final outcome; without an
     * active policy this degenerates to a plain device offload.
     */
    void dispatchResilient(size_t tid, const KernelInvocation &k,
                           bool transferPaidByHost, bool probe,
                           const std::shared_ptr<InFlight> &inflight,
                           sim::InlineFunction<void(OffloadOutcome)> &&resolve);

    void issueAttempt(size_t tid, const KernelInvocation &k,
                      bool transferPaidByHost, std::uint32_t attempt,
                      bool probe,
                      const std::shared_ptr<InFlight> &inflight,
                      sim::InlineFunction<void(OffloadOutcome)> &&resolve);

    sim::Tick backoffTicks(std::uint32_t attempt) const;

    // --- circuit breaker state machine ---
    enum class BreakerState { Closed, Open, HalfOpen };

    struct BreakerGate
    {
        bool offload; //!< false: revert this kernel to the host
        bool probe;   //!< this offload is the half-open probe
    };

    BreakerGate breakerGate();
    void breakerRecord(bool success, bool probe);

    BreakerState breakerState_ = BreakerState::Closed;
    std::deque<bool> breakerWindow_;
    std::uint32_t breakerFailures_ = 0;
    sim::Tick breakerOpenedAt_ = 0;

    // Fault storms must not flood stderr: first-N + suppressed-count
    // (count-based so logs replay identically for a seed).
    RateLimitedWarner timeoutWarner_{"offload timeout", 3};
    RateLimitedWarner fallbackWarner_{"offload fallback", 3};

    /** Per-thread resume continuation while blocked. */
    std::vector<sim::InlineCallback> resume_;

    double chargeStolen(double cycles);
};

} // namespace accel::microsim

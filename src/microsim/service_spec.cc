#include "microsim/service_spec.hh"

#include <utility>

#include "model/config_frontend.hh"
#include "util/logging.hh"

namespace accel::microsim {

using model::ThreadingDesign;

ServiceSpec &
ServiceSpec::name(std::string n)
{
    name_ = std::move(n);
    return *this;
}

ServiceSpec &
ServiceSpec::service(const ServiceConfig &svc)
{
    service_ = svc;
    return *this;
}

ServiceSpec &
ServiceSpec::accelerator(const AcceleratorConfig &dev)
{
    accel_ = dev;
    return *this;
}

ServiceSpec &
ServiceSpec::tier(const TierConfig &t)
{
    tier_ = t;
    return *this;
}

ServiceSpec &
ServiceSpec::workload(const WorkloadSpec &w)
{
    workload_ = w;
    return *this;
}

ServiceSpec &
ServiceSpec::seed(std::uint64_t s)
{
    seed_ = s;
    return *this;
}

ServiceSpec &
ServiceSpec::sharedTier(std::string tierName)
{
    sharedTierName_ = std::move(tierName);
    return *this;
}

namespace {

/**
 * Run one throwing sub-validator and collect its message (the
 * "fatal: " prefix stripped, since the collector re-raises through
 * fatal() itself).
 */
template <typename Fn>
void
collect(std::vector<std::string> &out, Fn &&check)
{
    try {
        check();
    } catch (const FatalError &e) {
        std::string msg = e.what();
        const std::string prefix = "fatal: ";
        if (msg.rfind(prefix, 0) == 0)
            msg.erase(0, prefix.size());
        out.push_back(std::move(msg));
    }
}

} // namespace

std::vector<std::string>
ServiceSpec::errors() const
{
    std::vector<std::string> out;
    collect(out, [this] { service_.validate(); });
    collect(out, [this] { accel_.validate(); });
    collect(out, [this] { tier_.validate(); });
    collect(out, [this] { workload_.validate(); });
    // Cross-config rules. The hedging + Sync check used to hard-throw
    // in the ServiceSim constructor; here it is just one more entry,
    // so ServiceGraph::validate can report every invalid node at once.
    if (tier_.hedge.enabled && service_.design == ThreadingDesign::Sync) {
        out.push_back(
            "TierConfig.hedge cannot help ServiceConfig.design = Sync "
            "(the blocked driver waits on its single offload); use an "
            "async design or Sync-OS, or disable hedging");
    }
    if (!sharedTierName_.empty()) {
        if (!tier_.trivial()) {
            out.push_back(
                "ServiceSpec.sharedTier ('" + sharedTierName_ +
                "') excludes a non-trivial ServiceSpec.tier of its "
                "own: the graph-owned tier replaces it");
        }
        if (service_.autoscaler.enabled) {
            out.push_back(
                "ServiceSpec.sharedTier ('" + sharedTierName_ +
                "') excludes ServiceConfig.autoscaler: one service's "
                "controller cannot own a tier other services contend "
                "for");
        }
    }
    return out;
}

void
ServiceSpec::validate() const
{
    std::vector<std::string> errs = errors();
    if (errs.empty())
        return;
    std::string msg = "ServiceSpec '" + name_ + "':";
    for (const std::string &e : errs)
        msg += "\n  - " + e;
    fatal(msg);
}

std::unique_ptr<ServiceSim>
ServiceSpec::buildSim() const
{
    require(sharedTierName_.empty(),
            "ServiceSpec '" + name_ + "': sharedTier ('" +
                sharedTierName_ +
                "') requires a ServiceGraph; buildSim() constructs a "
                "standalone instance");
    return std::make_unique<ServiceSim>(*this);
}

ServiceSpec
ServiceSpec::fromConfig(const Config &cfg, const std::string &section)
{
    ServiceSpec spec(section);

    ServiceConfig svc;
    svc.cores =
        static_cast<std::uint32_t>(cfg.getCount(section, "cores", 1));
    svc.threads =
        static_cast<std::uint32_t>(cfg.getCount(section, "threads", 1));
    svc.design = model::threadingFromConfig(cfg, section);
    svc.strategy = model::strategyFromString(
        cfg.getString(section, "strategy", "off-chip"));
    svc.clockGHz = cfg.getDouble(section, "clock_ghz", 2.0);
    svc.accelerated = cfg.getBool(section, "accelerated", true);
    svc.offloadSetupCycles = cfg.getDouble(section, "offload_setup", 0.0);
    svc.contextSwitchCycles =
        cfg.getDouble(section, "context_switch", 0.0);
    svc.cachePollutionCycles =
        cfg.getDouble(section, "cache_pollution", 0.0);
    svc.responsePickupCycles =
        cfg.getDouble(section, "response_pickup", 0.0);
    svc.unmodeledPerOffloadCycles =
        cfg.getDouble(section, "unmodeled_per_offload", 0.0);
    svc.driverWaitsForAck =
        cfg.getBool(section, "driver_waits_for_ack", true);
    svc.minOffloadBytes = cfg.getDouble(section, "min_offload_bytes", 0.0);
    svc.maxOutstanding = static_cast<std::uint32_t>(
        cfg.getCount(section, "max_outstanding", 64));
    svc.maxArrivalQueue = static_cast<std::uint32_t>(
        cfg.getCount(section, "max_arrival_queue", 0));
    svc.openArrivalsPerSec =
        cfg.getDouble(section, "open_arrivals_per_sec", 0.0);

    // Presence of retry_timeout enables the deadline/retry layer; the
    // breaker follows the same presence convention on its threshold.
    svc.retry.timeoutCycles = cfg.getDouble(section, "retry_timeout", 0.0);
    svc.retry.maxAttempts = static_cast<std::uint32_t>(
        cfg.getCount(section, "retry_max_attempts", 1));
    svc.retry.backoffBaseCycles =
        cfg.getDouble(section, "retry_backoff_base", 0.0);
    svc.retry.backoffFactor =
        cfg.getDouble(section, "retry_backoff_factor", 2.0);
    svc.retry.backoffCapCycles =
        cfg.getDouble(section, "retry_backoff_cap", 1e9);
    svc.retry.hostFallback =
        cfg.getBool(section, "retry_host_fallback", true);
    svc.breaker.enabled = cfg.has(section, "breaker_open_threshold");
    svc.breaker.openThreshold =
        cfg.getDouble(section, "breaker_open_threshold", 0.5);
    svc.breaker.window = static_cast<std::uint32_t>(
        cfg.getCount(section, "breaker_window", 32));
    svc.breaker.minSamples = static_cast<std::uint32_t>(
        cfg.getCount(section, "breaker_min_samples", 8));
    svc.breaker.probeAfterCycles =
        cfg.getDouble(section, "breaker_probe_after", 1e6);

    svc.arrivalProgram = arrivalProgramFromConfig(cfg, section);
    svc.autoscaler = autoscalerFromConfig(cfg, section);
    spec.service(svc);

    AcceleratorConfig dev;
    dev.speedupFactor = cfg.getDouble(section, "accel_speedup", 1.0);
    dev.fixedLatencyCycles =
        cfg.getDouble(section, "accel_fixed_latency", 0.0);
    dev.latencyCyclesPerByte =
        cfg.getDouble(section, "accel_latency_per_byte", 0.0);
    dev.channels = static_cast<std::uint32_t>(
        cfg.getCount(section, "accel_channels", 1));
    dev.faultPlan = model::faultPlanFromConfig(cfg, section);
    spec.accelerator(dev);

    WorkloadSpec work;
    work.nonKernelCyclesMean =
        cfg.getDouble(section, "work_non_kernel_cycles", 0.0);
    work.nonKernelCv = cfg.getDouble(section, "work_non_kernel_cv", 0.0);
    work.kernelsPerRequest = static_cast<std::uint32_t>(
        cfg.getCount(section, "work_kernels_per_request", 1));
    if (cfg.has(section, "work_granularity_cdf")) {
        work.granularity =
            std::make_shared<const BucketDist>(model::granularityFromConfig(
                cfg.getString(section, "work_granularity_cdf")));
    }
    work.cyclesPerByte = cfg.getDouble(section, "work_cycles_per_byte", 0.0);
    work.beta = cfg.getDouble(section, "work_beta", 1.0);
    spec.workload(work);

    spec.tier(tierFromConfig(cfg, section));
    spec.seed(cfg.getCount(section, "seed", 1));
    if (cfg.has(section, "shared_tier"))
        spec.sharedTier(cfg.getString(section, "shared_tier"));
    // Every recognised key has been probed by now (the composite
    // parsers above walk their full key lists), so anything the
    // tracker never saw is a key this parser does not understand —
    // almost always a typo that would otherwise silently fall back to
    // a default. Reject it by name instead.
    std::vector<std::string> unknown = cfg.unusedKeys(section);
    if (!unknown.empty()) {
        std::string msg = "ServiceSpec::fromConfig: unknown key" +
            std::string(unknown.size() == 1 ? "" : "s") + " in [" +
            section + "]:";
        for (const std::string &k : unknown)
            msg += " '" + k + "'";
        fatal(msg);
    }
    return spec;
}

} // namespace accel::microsim

/**
 * @file
 * Unified construction API for simulated service instances.
 *
 * ServiceSpec gathers everything that describes one service — instance
 * shape (ServiceConfig), device (AcceleratorConfig), replica tier
 * (TierConfig), request mix (WorkloadSpec), arrival program, resilience
 * policies, and the RNG seed — behind one fluent builder. It exists
 * because the ServiceSim constructor-overload set could not grow to
 * express "node in a ServiceGraph with an injected event queue and a
 * shared accelerator tier" without combinatorial explosion; the old
 * constructors survive only as deprecated delegating shims.
 *
 * Unlike the per-struct validate() methods (which throw on the first
 * problem), errors() collects *every* field-named problem at once, so
 * graph assembly can report all invalid nodes in one failure instead
 * of stopping at the first. fromConfig() is the single config entry
 * point: one section parses service, accelerator, workload, tier,
 * fault-plan, arrival-program, and autoscaler keys together.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "config/config.hh"
#include "microsim/service_sim.hh"

namespace accel::microsim {

/**
 * Fluent, validated description of one service instance.
 *
 * Setters return *this for chaining; build a simulator with
 * buildSim() (heap) or by passing the spec to ServiceSim's
 * constructor (stack):
 *
 *     auto sim = ServiceSpec("web").service(svc).accelerator(dev)
 *                    .workload(work).seed(7).buildSim();
 */
class ServiceSpec
{
  public:
    ServiceSpec() = default;

    /** @param specName label used in validation errors and GraphMetrics. */
    explicit ServiceSpec(std::string specName) : name_(std::move(specName)) {}

    // --- fluent setters ---
    ServiceSpec &name(std::string n);
    ServiceSpec &service(const ServiceConfig &svc);
    ServiceSpec &accelerator(const AcceleratorConfig &dev);
    ServiceSpec &tier(const TierConfig &t);
    ServiceSpec &workload(const WorkloadSpec &w);
    ServiceSpec &seed(std::uint64_t s);

    /**
     * Name a graph-owned shared AcceleratorTier this service contends
     * for (see ServiceGraph::addSharedTier). Only meaningful inside a
     * graph; buildSim() rejects it for standalone construction.
     * Mutually exclusive with a non-trivial tier() of its own and with
     * the autoscaler (one controller cannot own a contended tier).
     */
    ServiceSpec &sharedTier(std::string tierName);

    // --- getters ---
    const std::string &name() const { return name_; }
    const ServiceConfig &service() const { return service_; }
    /** Mutable access for in-place tweaks between runs (A/B arms). */
    ServiceConfig &service() { return service_; }
    const AcceleratorConfig &accelerator() const { return accel_; }
    AcceleratorConfig &accelerator() { return accel_; }
    const TierConfig &tier() const { return tier_; }
    TierConfig &tier() { return tier_; }
    const WorkloadSpec &workload() const { return workload_; }
    WorkloadSpec &workload() { return workload_; }
    std::uint64_t seed() const { return seed_; }
    const std::string &sharedTierName() const { return sharedTierName_; }

    /**
     * Every validation problem with this spec, field-named, in a
     * stable order; empty when the spec is valid. Collects the
     * sub-config checks (ServiceConfig, AcceleratorConfig, TierConfig,
     * WorkloadSpec) plus the cross-cutting rules that used to live in
     * the ServiceSim constructor — notably hedging + Sync, which a
     * graph wants reported for *all* of its nodes at once.
     */
    std::vector<std::string> errors() const;

    /** @throws FatalError listing every errors() entry at once. */
    void validate() const;

    /**
     * Build a standalone simulator (validates first).
     * @throws FatalError when the spec is invalid or names a shared
     *         tier (shared tiers only exist inside a ServiceGraph).
     */
    std::unique_ptr<ServiceSim> buildSim() const;

    /**
     * Parse one config section into a spec — the single entry point
     * that unifies the scattered *FromConfig parsers. Recognised keys
     * (all optional; defaults match the field defaults):
     *
     *     ; --- service instance ---
     *     cores = 4
     *     threads = 4
     *     threading = sync            ; model::threadingFromConfig
     *     strategy = off-chip         ; on-chip | off-chip | remote
     *     clock_ghz = 2.0
     *     accelerated = true
     *     offload_setup = 100         ; o0 cycles
     *     context_switch = 3000       ; o1 cycles
     *     cache_pollution = 0
     *     response_pickup = 0
     *     unmodeled_per_offload = 0
     *     driver_waits_for_ack = true
     *     min_offload_bytes = 0
     *     max_outstanding = 64
     *     max_arrival_queue = 0
     *     open_arrivals_per_sec = 0
     *     seed = 1
     *     shared_tier = infer         ; graph-owned tier name
     *
     *     ; --- retry / breaker (presence of retry_timeout enables) ---
     *     retry_timeout = 2000
     *     retry_max_attempts = 2
     *     retry_backoff_base = 500
     *     retry_backoff_factor = 2
     *     retry_backoff_cap = 2000
     *     retry_host_fallback = true
     *     breaker_open_threshold = 0.5 ; presence enables the breaker
     *     breaker_window = 32
     *     breaker_min_samples = 8
     *     breaker_probe_after = 1e6
     *
     *     ; --- accelerator device ---
     *     accel_speedup = 10
     *     accel_fixed_latency = 100
     *     accel_latency_per_byte = 0.1
     *     accel_channels = 1
     *
     *     ; --- workload ---
     *     work_non_kernel_cycles = 4000
     *     work_non_kernel_cv = 0.3
     *     work_kernels_per_request = 1
     *     work_granularity_cdf = 400:600:1.0
     *     work_cycles_per_byte = 2.0
     *     work_beta = 1.0
     *
     * plus the established composite parsers applied to the same
     * section: tierFromConfig (tier_*, fault_r<k>_*),
     * model::faultPlanFromConfig (fault_* → device fault plan),
     * arrivalProgramFromConfig (arrival_*), and autoscalerFromConfig
     * (scale_*). The section name becomes the spec name.
     *
     * Keys in @p section that none of the parsers recognise are
     * rejected with an error naming each offender (via
     * Config::unusedKeys), so a typo like `tier_hege_delay` fails
     * loudly instead of silently keeping the default.
     *
     * @throws FatalError on malformed values (the composite parsers
     *         throw their usual field-named errors) and on unknown
     *         keys; domain errors are reported by validate()/errors()
     *         so a caller can collect them across many sections.
     */
    static ServiceSpec fromConfig(const Config &cfg,
                                  const std::string &section);

  private:
    std::string name_ = "service";
    ServiceConfig service_;
    AcceleratorConfig accel_;
    TierConfig tier_;
    WorkloadSpec workload_;
    std::uint64_t seed_ = 1;
    std::string sharedTierName_;
};

} // namespace accel::microsim

#include "microsim/tier.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "model/config_frontend.hh"
#include "util/json_fmt.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace accel::microsim {

namespace {

/** splitmix64 finalizer: decorrelates (seed, index) into an Rng seed. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

constexpr std::uint64_t kDispatchStream = 0xd15ULL;

/** Watchdogs outrank completions at the same tick, matching the retry
 *  deadline convention in ServiceSim: a completion landing exactly at
 *  the timeout already missed it. */
constexpr int kWatchdogPriority = -1;

} // namespace

const char *
toString(DispatchPolicy policy)
{
    switch (policy) {
    case DispatchPolicy::RoundRobin:
        return "round-robin";
    case DispatchPolicy::LeastOutstanding:
        return "least-outstanding";
    case DispatchPolicy::PowerOfTwoChoices:
        return "p2c";
    }
    return "?";
}

DispatchPolicy
dispatchPolicyFromString(const std::string &name)
{
    if (name == "round-robin" || name == "rr")
        return DispatchPolicy::RoundRobin;
    if (name == "least-outstanding" || name == "lo")
        return DispatchPolicy::LeastOutstanding;
    if (name == "p2c" || name == "power-of-two")
        return DispatchPolicy::PowerOfTwoChoices;
    fatal("tier_policy: unknown dispatch policy '" + name +
          "' (want round-robin, least-outstanding, or p2c)");
}

void
HedgePolicy::validate() const
{
    if (!enabled) {
        require(delayCycles == 0.0,
                "HedgePolicy.delayCycles must be 0 when disabled");
        return;
    }
    require(std::isfinite(delayCycles) && delayCycles > 0.0,
            "HedgePolicy.delayCycles must be finite and > 0 when "
            "hedging is enabled");
}

bool
TierConfig::trivial() const
{
    return replicas == 1 && !hedge.enabled && healthTimeoutCycles == 0.0;
}

void
TierConfig::validate() const
{
    require(replicas >= 1, "TierConfig.replicas must be >= 1");
    hedge.validate();
    require(std::isfinite(healthTimeoutCycles) &&
                healthTimeoutCycles >= 0.0,
            "TierConfig.healthTimeoutCycles must be finite and >= 0");
    require(ejectAfterFailures >= 1,
            "TierConfig.ejectAfterFailures must be >= 1");
    require(ejectAfterFailures <= healthWindow,
            "TierConfig.ejectAfterFailures must be <= healthWindow");
    require(std::isfinite(readmitAfterCycles) && readmitAfterCycles > 0.0,
            "TierConfig.readmitAfterCycles must be finite and > 0");
    require(hedge.enabled ? replicas >= 2 : true,
            "TierConfig.hedge needs replicas >= 2 to re-issue anywhere");
    require(replicaFaultPlans.size() <= replicas,
            "TierConfig.replicaFaultPlans has more entries than "
            "replicas");
    for (const auto &plan : replicaFaultPlans) {
        if (plan)
            plan->validate();
    }
}

TierConfig
tierFromConfig(const Config &cfg, const std::string &section)
{
    TierConfig tier;
    tier.replicas = static_cast<std::uint32_t>(
        cfg.getDouble(section, "tier_replicas", 1.0));
    tier.policy = dispatchPolicyFromString(
        cfg.getString(section, "tier_policy", "round-robin"));
    if (cfg.has(section, "tier_hedge_delay")) {
        tier.hedge.enabled = true;
        tier.hedge.delayCycles =
            cfg.getDouble(section, "tier_hedge_delay");
    }
    if (cfg.has(section, "tier_health_timeout")) {
        tier.healthTimeoutCycles =
            cfg.getDouble(section, "tier_health_timeout");
    }
    tier.ejectAfterFailures = static_cast<std::uint32_t>(
        cfg.getDouble(section, "tier_eject_after", 3.0));
    tier.healthWindow = static_cast<std::uint32_t>(
        cfg.getDouble(section, "tier_health_window", 16.0));
    tier.readmitAfterCycles =
        cfg.getDouble(section, "tier_readmit_after", 1e6);
    tier.maxFailovers = static_cast<std::uint32_t>(
        cfg.getDouble(section, "tier_max_failovers", 3.0));
    tier.seed = static_cast<std::uint64_t>(
        cfg.getDouble(section, "tier_seed", 1.0));

    // Per-replica fault plans: fault_r<k>_* keys, parsed by the same
    // front end as device-level fault_* keys. Only materialise the
    // vector when at least one replica has a plan, so a plan-free
    // section stays the exact default TierConfig.
    std::vector<std::shared_ptr<const faults::FaultPlan>> plans;
    bool anyPlan = false;
    for (std::uint32_t r = 0; r < tier.replicas; ++r) {
        auto plan = model::faultPlanFromConfig(
            cfg, section, "fault_r" + std::to_string(r) + "_");
        anyPlan = anyPlan || plan != nullptr;
        plans.push_back(std::move(plan));
    }
    if (anyPlan)
        tier.replicaFaultPlans = std::move(plans);

    tier.validate();
    return tier;
}

double
TierStats::duplicateWorkFraction() const
{
    if (usefulServiceCycles <= 0.0)
        return 0.0;
    return wastedServiceCycles / usefulServiceCycles;
}

std::string
TierReplicaStats::summaryJson() const
{
    std::ostringstream os;
    os << "{\"dispatched\": " << dispatched << ", \"wins\": " << wins
       << ", \"duplicates\": " << duplicates
       << ", \"wasted_service_cycles\": "
       << jsonNumber(wastedServiceCycles) << ", \"failures\": "
       << failures << ", \"ejections\": " << ejections
       << ", \"readmissions\": " << readmissions << "}";
    return os.str();
}

std::string
TierStats::summaryJson() const
{
    std::ostringstream os;
    os << "{\"offloads\": " << offloads << ", \"hedges_issued\": "
       << hedgesIssued << ", \"hedge_wins\": " << hedgeWins
       << ", \"hedge_losses\": " << hedgeLosses
       << ", \"duplicate_completions\": " << duplicateCompletions
       << ", \"wasted_service_cycles\": "
       << jsonNumber(wastedServiceCycles)
       << ", \"useful_service_cycles\": "
       << jsonNumber(usefulServiceCycles)
       << ", \"duplicate_work_fraction\": "
       << jsonNumber(duplicateWorkFraction()) << ", \"failovers\": "
       << failovers << ", \"failovers_exhausted\": "
       << failoversExhausted << ", \"watchdog_expiries\": "
       << watchdogExpiries << ", \"ejections\": " << ejections
       << ", \"readmission_probes\": " << readmissionProbes
       << ", \"readmissions\": " << readmissions
       << ", \"activations\": " << activations
       << ", \"drains_started\": " << drainsStarted
       << ", \"drains_completed\": " << drainsCompleted
       << ", \"provisioned_replica_cycles\": "
       << jsonNumber(provisionedReplicaCycles)
       << ", \"offload_latency_cycles\": "
       << offloadLatencyCycles.summaryJson() << ", \"replicas\": [";
    for (size_t r = 0; r < replicas.size(); ++r)
        os << (r ? ", " : "") << replicas[r].summaryJson();
    os << "], \"device_stats\": [";
    for (size_t r = 0; r < deviceStats.size(); ++r)
        os << (r ? ", " : "") << deviceStats[r].summaryJson();
    os << "]}";
    return os.str();
}

AcceleratorTier::AcceleratorTier(sim::EventQueue &eq,
                                 const AcceleratorConfig &device,
                                 const TierConfig &tier)
    : eq_(eq), deviceConfig_(device), cfg_(tier)
{
    cfg_.validate();
    trivial_ = cfg_.trivial();

    replicas_.reserve(cfg_.replicas);
    for (std::uint32_t r = 0; r < cfg_.replicas; ++r) {
        AcceleratorConfig rc = deviceConfig_;
        if (r < cfg_.replicaFaultPlans.size() &&
            cfg_.replicaFaultPlans[r]) {
            rc.faultPlan = cfg_.replicaFaultPlans[r];
        } else if (rc.faultPlan && cfg_.replicas > 1) {
            // A shared template plan must not fail in lockstep across
            // replicas: reseed it per replica index so draws stay
            // slot-indexed per (replica, offload) yet independent.
            auto reseeded =
                std::make_shared<faults::FaultPlan>(*rc.faultPlan);
            reseeded->seed = mix(rc.faultPlan->seed ^ mix(r + 1));
            rc.faultPlan = std::move(reseeded);
        }
        replicas_.push_back(std::make_unique<Accelerator>(eq_, rc));
    }
    health_.resize(cfg_.replicas);
    outstanding_.assign(cfg_.replicas, 0);
    stats_.replicas.resize(cfg_.replicas);
    capacityOriginTick_ = eq_.now();
}

double
AcceleratorTier::transferCycles(double bytes) const
{
    return replicas_.front()->transferCycles(bytes);
}

const Accelerator &
AcceleratorTier::replica(size_t index) const
{
    ensure(index < replicas_.size(), "AcceleratorTier: replica index");
    return *replicas_[index];
}

void
AcceleratorTier::resetStats()
{
    for (auto &r : replicas_)
        r->resetStats();
    stats_ = TierStats{};
    stats_.replicas.resize(replicas_.size());
    // Restart the capacity integral at the reset tick so warmup
    // replica-hours are not billed to the measurement window.
    capacityAccumCycles_ = 0.0;
    capacityOriginTick_ = eq_.now();
}

TierStats
AcceleratorTier::snapshot() const
{
    TierStats out = stats_;
    out.provisionedReplicaCycles = capacityAccumCycles_ +
        static_cast<double>(provisionedReplicaCount()) *
            static_cast<double>(eq_.now() - capacityOriginTick_);
    out.deviceStats.reserve(replicas_.size());
    for (const auto &r : replicas_)
        out.deviceStats.push_back(r->stats());
    return out;
}

AcceleratorStats
AcceleratorTier::aggregateDeviceStats() const
{
    // Exact copy for one replica: aggregation must not perturb the
    // single-device metrics path bit-for-bit.
    if (replicas_.size() == 1)
        return replicas_.front()->stats();
    AcceleratorStats agg;
    for (const auto &r : replicas_) {
        const AcceleratorStats &s = r->stats();
        agg.served += s.served;
        agg.busyCycles += s.busyCycles;
        agg.maxQueueDepth =
            std::max(agg.maxQueueDepth, s.maxQueueDepth);
        agg.queueWaitCycles.merge(s.queueWaitCycles);
        agg.serviceCycles.merge(s.serviceCycles);
        agg.transferCycles.merge(s.transferCycles);
        agg.droppedResponses += s.droppedResponses;
        agg.lateResponses += s.lateResponses;
        agg.spikedTransfers += s.spikedTransfers;
        agg.lostToDeviceFailure += s.lostToDeviceFailure;
        agg.stallDeferrals += s.stallDeferrals;
    }
    return agg;
}

bool
AcceleratorTier::replicaEjected(size_t index) const
{
    ensure(index < health_.size(), "AcceleratorTier: replica index");
    return health_[index].state == ReplicaState::Ejected;
}

bool
AcceleratorTier::replicaDraining(size_t index) const
{
    ensure(index < health_.size(), "AcceleratorTier: replica index");
    return health_[index].state == ReplicaState::Draining;
}

bool
AcceleratorTier::replicaStandby(size_t index) const
{
    ensure(index < health_.size(), "AcceleratorTier: replica index");
    return health_[index].state == ReplicaState::Standby;
}

std::uint32_t
AcceleratorTier::provisionedReplicaCount() const
{
    std::uint32_t n = 0;
    for (const ReplicaHealth &h : health_) {
        if (h.state != ReplicaState::Standby)
            ++n;
    }
    return n;
}

std::uint32_t
AcceleratorTier::activeReplicaCount() const
{
    std::uint32_t n = 0;
    for (const ReplicaHealth &h : health_) {
        if (h.state != ReplicaState::Standby &&
            h.state != ReplicaState::Draining)
            ++n;
    }
    return n;
}

void
AcceleratorTier::accrueCapacity()
{
    capacityAccumCycles_ +=
        static_cast<double>(provisionedReplicaCount()) *
        static_cast<double>(eq_.now() - capacityOriginTick_);
    capacityOriginTick_ = eq_.now();
}

void
AcceleratorTier::finalizeDrain(size_t replica)
{
    ensure(outstanding_[replica] == 0,
           "finalizeDrain: replica still has in-flight attempts");
    // Accrue before the provisioned count drops: the drain interval
    // itself is billed capacity.
    accrueCapacity();
    ReplicaHealth &h = health_[replica];
    h.state = ReplicaState::Standby;
    h.consecutiveFailures = 0;
    h.probeInFlight = false;
    ++stats_.drainsCompleted;
}

void
AcceleratorTier::setActiveReplicas(std::uint32_t target)
{
    require(!trivial_,
            "AcceleratorTier::setActiveReplicas: trivial (single-"
            "device) tier has no capacity to scale");
    require(target >= 1 && target <= replicas_.size(),
            "AcceleratorTier::setActiveReplicas: target must be in "
            "[1, replicas]");

    std::uint32_t active = activeReplicaCount();
    if (target > active) {
        std::uint32_t need = target - active;
        // Draining replicas first: they are warm and still provisioned,
        // so un-draining is free. Then standby replicas in index order,
        // with health reset as on readmission.
        for (size_t r = 0; r < health_.size() && need > 0; ++r) {
            if (health_[r].state != ReplicaState::Draining)
                continue;
            health_[r].state = ReplicaState::Healthy;
            health_[r].consecutiveFailures = 0;
            ++stats_.activations;
            --need;
        }
        for (size_t r = 0; r < health_.size() && need > 0; ++r) {
            if (health_[r].state != ReplicaState::Standby)
                continue;
            accrueCapacity(); // provisioned count grows at this tick
            health_[r].state = ReplicaState::Healthy;
            health_[r].consecutiveFailures = 0;
            health_[r].probeInFlight = false;
            ++stats_.activations;
            --need;
        }
        ensure(need == 0,
               "setActiveReplicas: not enough parked replicas");
        return;
    }

    // Shrink: drain (active - target) victims. Ejected replicas go
    // first — they contribute nothing but still bill capacity — then
    // probing, then healthy, highest index first (deterministic).
    std::uint32_t excess = active - target;
    auto drainOne = [this](size_t r) {
        ++stats_.drainsStarted;
        if (outstanding_[r] == 0) {
            // Nothing in flight: park immediately. A pending
            // readmission timer finds the state not Ejected and
            // leaves it parked.
            health_[r].state = ReplicaState::Draining;
            finalizeDrain(r);
        } else {
            health_[r].state = ReplicaState::Draining;
        }
    };
    for (ReplicaState victims : {ReplicaState::Ejected,
                                 ReplicaState::Probing,
                                 ReplicaState::Healthy}) {
        for (size_t i = health_.size(); i > 0 && excess > 0; --i) {
            size_t r = i - 1;
            if (health_[r].state != victims)
                continue;
            drainOne(r);
            --excess;
        }
    }
    ensure(excess == 0, "setActiveReplicas: shrink bookkeeping");
}

std::uint64_t
AcceleratorTier::outstanding(size_t index) const
{
    ensure(index < outstanding_.size(), "AcceleratorTier: replica index");
    return outstanding_[index];
}

size_t
AcceleratorTier::pickReplica(size_t exclude, bool *isProbe)
{
    *isProbe = false;

    // A replica waiting for its readmission probe gets the next
    // eligible offload: one real request decides its fate.
    for (size_t r = 0; r < health_.size(); ++r) {
        if (r == exclude)
            continue;
        if (health_[r].state == ReplicaState::Probing &&
            !health_[r].probeInFlight) {
            *isProbe = true;
            return r;
        }
    }

    // Candidates: healthy replicas (Probing ones are only eligible for
    // their probe; Ejected ones are skipped). If ejection emptied the
    // pool, fall back to every provisioned replica rather than
    // deadlocking — a fully-ejected tier still makes forward progress
    // and the watchdogs keep charging failures. Draining and standby
    // replicas are never candidates, even then: scaled-down capacity
    // must not absorb new work, or drains would never settle.
    std::vector<size_t> candidates;
    candidates.reserve(health_.size());
    for (size_t r = 0; r < health_.size(); ++r) {
        if (r == exclude)
            continue;
        if (health_[r].state == ReplicaState::Healthy)
            candidates.push_back(r);
    }
    if (candidates.empty()) {
        for (size_t r = 0; r < health_.size(); ++r) {
            if (r == exclude ||
                health_[r].state == ReplicaState::Draining ||
                health_[r].state == ReplicaState::Standby)
                continue;
            candidates.push_back(r);
        }
    }
    if (candidates.empty())
        return kNoReplica;
    if (candidates.size() == 1)
        return candidates.front();

    switch (cfg_.policy) {
    case DispatchPolicy::RoundRobin: {
        size_t pick = candidates[rrCursor_ % candidates.size()];
        ++rrCursor_;
        return pick;
    }
    case DispatchPolicy::LeastOutstanding: {
        size_t best = candidates.front();
        for (size_t r : candidates) {
            if (outstanding_[r] < outstanding_[best])
                best = r; // ties keep the lowest index
        }
        return best;
    }
    case DispatchPolicy::PowerOfTwoChoices: {
        // Slot-indexed draws: the pair sampled for dispatch #i is a
        // pure function of (seed, i), so retries and hedges elsewhere
        // cannot shift it.
        Rng rng(mix(cfg_.seed ^ mix(dispatchIndex_ + 1)),
                kDispatchStream);
        ++dispatchIndex_;
        size_t a = candidates[rng.below(
            static_cast<std::uint32_t>(candidates.size()))];
        size_t b = candidates[rng.below(
            static_cast<std::uint32_t>(candidates.size()))];
        if (outstanding_[b] < outstanding_[a])
            return b;
        return a; // ties keep the first draw
    }
    }
    return candidates.front();
}

void
AcceleratorTier::offload(double hostEquivalentCycles, double bytes,
                         sim::InlineCallback &&onComplete,
                         bool transferPaidByHost)
{
    // Trivial tier: hand the offload straight to the single replica.
    // No OffloadState, no timers, no draws — the bit-identical path.
    if (trivial_) {
        replicas_.front()->offload(hostEquivalentCycles, bytes,
                                   std::move(onComplete),
                                   transferPaidByHost);
        return;
    }

    auto state = std::make_shared<OffloadState>();
    state->hostCycles = hostEquivalentCycles;
    state->bytes = bytes;
    state->transferPaidByHost = transferPaidByHost;
    state->issuedAt = eq_.now();
    state->onComplete = std::move(onComplete);

    ++stats_.offloads;

    bool isProbe = false;
    size_t replica = pickReplica(kNoReplica, &isProbe);
    ensure(replica != kNoReplica, "AcceleratorTier: no replica");
    issueAttempt(state, replica, /*isHedge=*/false, isProbe);

    if (cfg_.hedge.enabled) {
        auto delay = static_cast<sim::Tick>(
            std::llround(cfg_.hedge.delayCycles));
        state->hedgeTimer = eq_.scheduleTimerIn(delay, [this, state]() {
            state->hedgeTimer = sim::kInvalidTimer;
            if (state->settled || state->hedged)
                return;
            state->hedged = true;
            bool probe = false;
            size_t second =
                pickReplica(state->attempts.front().replica, &probe);
            if (second == kNoReplica)
                return; // nowhere to hedge to
            ++stats_.hedgesIssued;
            issueAttempt(state, second, /*isHedge=*/true, probe);
        });
    }
}

void
AcceleratorTier::issueAttempt(const std::shared_ptr<OffloadState> &state,
                              size_t replica, bool isHedge, bool isProbe)
{
    size_t attemptIndex = state->attempts.size();
    Attempt attempt;
    attempt.replica = replica;
    attempt.isHedge = isHedge;
    attempt.isProbe = isProbe;

    if (isProbe) {
        health_[replica].probeInFlight = true;
        ++stats_.readmissionProbes;
    }

    ++outstanding_[replica];
    ++stats_.replicas[replica].dispatched;

    if (cfg_.healthTimeoutCycles > 0.0) {
        auto timeout = static_cast<sim::Tick>(
            std::llround(cfg_.healthTimeoutCycles));
        attempt.watchdog = eq_.scheduleTimerIn(
            timeout,
            [this, state, attemptIndex]() {
                onWatchdog(state, attemptIndex);
            },
            kWatchdogPriority);
    }

    state->attempts.push_back(attempt);

    // Hedge and failover attempts always pay the device-side transfer:
    // the host only fronted the interface cost for the primary leg.
    bool paidByHost = state->transferPaidByHost && attemptIndex == 0;
    replicas_[replica]->offload(state->hostCycles, state->bytes,
                                [this, state, attemptIndex]() {
                                    onCompletion(state, attemptIndex);
                                },
                                paidByHost);
}

void
AcceleratorTier::onCompletion(const std::shared_ptr<OffloadState> &state,
                              size_t attemptIndex)
{
    Attempt &attempt = state->attempts[attemptIndex];
    attempt.completed = true;
    size_t replica = attempt.replica;
    double serviceCycles =
        state->hostCycles / deviceConfig_.speedupFactor;

    if (!attempt.timedOut) {
        // First terminal outcome for this attempt: release the replica
        // slot and cancel its watchdog.
        ensure(outstanding_[replica] > 0,
               "AcceleratorTier: outstanding underflow");
        --outstanding_[replica];
        if (attempt.watchdog != sim::kInvalidTimer) {
            eq_.cancelTimer(attempt.watchdog);
            attempt.watchdog = sim::kInvalidTimer;
        }
        recordSuccess(replica);
        if (health_[replica].state == ReplicaState::Draining &&
            outstanding_[replica] == 0)
            finalizeDrain(replica);
    }
    // A completion that limps in after its watchdog expired is still
    // work the device did, but the tier already judged the attempt
    // failed; health state is not retroactively repaired, so a
    // brown-out replica cannot dodge ejection with late answers.

    if (state->settled) {
        ++stats_.duplicateCompletions;
        ++stats_.replicas[replica].duplicates;
        stats_.wastedServiceCycles += serviceCycles;
        stats_.replicas[replica].wastedServiceCycles += serviceCycles;
        return;
    }

    // First completion wins: settle the offload.
    state->settled = true;
    ++stats_.replicas[replica].wins;
    stats_.usefulServiceCycles += serviceCycles;
    stats_.offloadLatencyCycles.add(
        static_cast<double>(eq_.now() - state->issuedAt));

    if (state->hedgeTimer != sim::kInvalidTimer) {
        eq_.cancelTimer(state->hedgeTimer);
        state->hedgeTimer = sim::kInvalidTimer;
    }
    if (state->hedged) {
        if (attempt.isHedge)
            ++stats_.hedgeWins;
        else
            ++stats_.hedgeLosses;
    }

    if (state->onComplete)
        state->onComplete();
    state->onComplete = nullptr; // release caller state promptly
}

void
AcceleratorTier::onWatchdog(const std::shared_ptr<OffloadState> &state,
                            size_t attemptIndex)
{
    Attempt &attempt = state->attempts[attemptIndex];
    attempt.watchdog = sim::kInvalidTimer;
    if (attempt.completed)
        return; // completion already released the slot
    attempt.timedOut = true;
    size_t replica = attempt.replica;

    ensure(outstanding_[replica] > 0,
           "AcceleratorTier: outstanding underflow");
    --outstanding_[replica];
    ++stats_.watchdogExpiries;
    ++stats_.replicas[replica].failures;
    recordFailure(replica);
    if (health_[replica].state == ReplicaState::Draining &&
        outstanding_[replica] == 0)
        finalizeDrain(replica);

    if (state->settled)
        return; // another arm already answered

    // Failover: re-issue to a different replica, excluding the one
    // that just timed out.
    if (state->failovers >= cfg_.maxFailovers) {
        ++stats_.failoversExhausted;
        return; // the caller's own deadline machinery takes over
    }
    bool isProbe = false;
    size_t next = pickReplica(replica, &isProbe);
    if (next == kNoReplica) {
        ++stats_.failoversExhausted;
        return;
    }
    ++state->failovers;
    ++stats_.failovers;
    issueAttempt(state, next, /*isHedge=*/false, isProbe);
}

void
AcceleratorTier::recordSuccess(size_t replica)
{
    ReplicaHealth &h = health_[replica];
    h.consecutiveFailures = 0;
    if (h.state == ReplicaState::Probing) {
        h.state = ReplicaState::Healthy;
        h.probeInFlight = false;
        ++stats_.readmissions;
        ++stats_.replicas[replica].readmissions;
    }
}

void
AcceleratorTier::recordFailure(size_t replica)
{
    ReplicaHealth &h = health_[replica];
    if (h.state == ReplicaState::Draining ||
        h.state == ReplicaState::Standby) {
        // A scale-down victim is leaving anyway; ejecting it would
        // arm a readmission timer that fights the drain.
        return;
    }
    if (h.state == ReplicaState::Probing) {
        // The probe itself failed: straight back to Ejected.
        h.probeInFlight = false;
        ejectReplica(replica);
        return;
    }
    if (h.state == ReplicaState::Ejected)
        return; // already out; nothing new to decide
    h.consecutiveFailures =
        std::min(h.consecutiveFailures + 1, cfg_.healthWindow);
    if (h.consecutiveFailures >= cfg_.ejectAfterFailures)
        ejectReplica(replica);
}

void
AcceleratorTier::ejectReplica(size_t replica)
{
    ReplicaHealth &h = health_[replica];
    h.state = ReplicaState::Ejected;
    h.consecutiveFailures = 0;
    ++stats_.ejections;
    ++stats_.replicas[replica].ejections;
    auto delay = static_cast<sim::Tick>(
        std::llround(cfg_.readmitAfterCycles));
    eq_.scheduleTimerIn(delay, [this, replica]() {
        // Still ejected? Offer one probe. The guard also lets a
        // scale-down win the race: a drained (or since-reactivated)
        // replica is no longer Ejected when this fires, so a stale
        // readmission cannot resurrect parked capacity.
        if (health_[replica].state == ReplicaState::Ejected)
            health_[replica].state = ReplicaState::Probing;
    });
}

} // namespace accel::microsim

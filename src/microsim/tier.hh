/**
 * @file
 * Replicated remote-accelerator tier.
 *
 * A tier owns N Accelerator replicas — each with its own FIFO queue,
 * service channels, and (optionally) an independent per-replica
 * faults::FaultPlan — behind a dispatcher. An offload is routed to one
 * replica by the configured DispatchPolicy; the tier then defends its
 * tail latency with three mechanisms real remote fleets use:
 *
 *  - **Hedged offloads**: after a (typically quantile-derived) hedge
 *    delay the offload is re-issued to a second replica; the first
 *    completion wins and the hedge-arm timer of the race is cancelled
 *    via sim::EventQueue::cancelTimer. The loser's work is not silently
 *    forgotten: duplicate completions and their wasted service cycles
 *    are counted in TierStats.
 *  - **Health tracking**: a per-attempt watchdog (healthTimeoutCycles)
 *    marks a replica failed when a completion does not arrive in time;
 *    ejectAfterFailures consecutive failures eject the replica from
 *    dispatch, and after readmitAfterCycles a single probe offload
 *    decides readmission vs re-ejection — PR 3's circuit breaker
 *    generalized to per-replica scope.
 *  - **Failover**: a timed-out attempt is re-issued to a different
 *    replica (up to maxFailovers times), so a brown-out or hard-failed
 *    replica degrades the tier instead of stalling its offloads — no
 *    host fallback required.
 *  - **Dynamic capacity**: setActiveReplicas() grows or shrinks the
 *    live replica set at runtime (the Autoscaler's actuator).
 *    Scale-down drains: a victim stops taking dispatches immediately
 *    but stays provisioned until its in-flight and hedged attempts
 *    settle, then parks in Standby; ejected victims are preferred
 *    since they contribute no capacity anyway. The provisioned-replica
 *    integral in TierStats is the replica-hours bill an autoscaler is
 *    judged on.
 *
 * Determinism: dispatch draws (power-of-two-choices) are slot-indexed
 * by dispatch sequence number, fault draws are slot-indexed per
 * (replica, offload) because every replica owns its own plan and
 * offload counter, and all racing is resolved by the event queue's
 * (tick, priority, sequence) order. A trivial tier — one replica, no
 * hedging, no health tracking — delegates offloads directly to the
 * replica with zero extra branches, events, or RNG draws, so such a
 * configuration is bit-identical to the single-Accelerator path.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "config/config.hh"
#include "microsim/accelerator.hh"
#include "sim/event_queue.hh"
#include "stats/reservoir.hh"

namespace accel::microsim {

/** How the tier picks a replica for each offload (and hedge/failover). */
enum class DispatchPolicy
{
    RoundRobin,        //!< rotate over non-ejected replicas
    LeastOutstanding,  //!< fewest in-flight offloads (ties: lowest index)
    PowerOfTwoChoices, //!< two slot-indexed draws, keep the less loaded
};

/** Human-readable policy name (used by benches and config parsing). */
const char *toString(DispatchPolicy policy);

/** Parse a policy name ("round-robin", "least-outstanding", "p2c"). */
DispatchPolicy dispatchPolicyFromString(const std::string &name);

/**
 * Hedged-offload policy. When enabled, an offload that has not settled
 * after delayCycles is re-issued to a second replica; the first
 * completion wins. The delay is typically derived from a healthy-tier
 * latency quantile (e.g. p95) so hedges fire only on the slow tail.
 */
struct HedgePolicy
{
    bool enabled = false;

    /** Cycles before the duplicate issues; must be > 0 when enabled. */
    double delayCycles = 0.0;

    /** @throws FatalError on out-of-domain values (names the field). */
    void validate() const;
};

/** Static description of a replicated accelerator tier. */
struct TierConfig
{
    /** Replica count; 1 preserves the single-device path. */
    std::uint32_t replicas = 1;

    DispatchPolicy policy = DispatchPolicy::RoundRobin;

    HedgePolicy hedge;

    /**
     * Per-attempt completion watchdog in cycles; 0 disables health
     * tracking, ejection, and failover entirely (no timers armed).
     */
    double healthTimeoutCycles = 0.0;

    /** Consecutive watchdog failures that eject a replica. */
    std::uint32_t ejectAfterFailures = 3;

    /**
     * Recent per-replica outcomes tracked for the failure-fraction
     * stat; the consecutive-failure run must fit inside it
     * (ejectAfterFailures <= healthWindow).
     */
    std::uint32_t healthWindow = 16;

    /** Ejection -> readmission-probe delay in cycles. */
    double readmitAfterCycles = 1e6;

    /** Re-issues per offload after watchdog expiry (0 = no failover). */
    std::uint32_t maxFailovers = 3;

    /** Seed for slot-indexed power-of-two-choices dispatch draws. */
    std::uint64_t seed = 1;

    /**
     * Per-replica fault plans; index r applies to replica r and null
     * entries leave that replica healthy. When shorter than the replica
     * count, remaining replicas inherit the device template's plan
     * (reseeded per replica index when replicas > 1, so a shared plan
     * does not fail in lockstep).
     */
    std::vector<std::shared_ptr<const faults::FaultPlan>>
        replicaFaultPlans;

    /**
     * True when the tier adds nothing over a single device: one
     * replica, no hedging, no health tracking. The trivial tier
     * delegates offloads directly (bit-identical path).
     */
    bool trivial() const;

    /** @throws FatalError on out-of-domain values (names the field). */
    void validate() const;
};

/**
 * Parse a section's tier keys into a TierConfig. Recognised keys:
 *
 *     tier_replicas = 4
 *     tier_policy = round-robin         ; least-outstanding | p2c
 *     tier_hedge_delay = 5000           ; presence enables hedging
 *     tier_health_timeout = 20000       ; presence enables health/failover
 *     tier_eject_after = 3
 *     tier_health_window = 16
 *     tier_readmit_after = 1e6
 *     tier_max_failovers = 3
 *     tier_seed = 7
 *
 * Per-replica fault plans come from `fault_r<k>_*` keys parsed by
 * model::faultPlanFromConfig with prefix "fault_r<k>_", e.g.
 * `fault_r2_drop_p = 0.5` makes replica 2 lossy while the others stay
 * healthy. A section with none of these keys yields the default
 * (trivial) TierConfig.
 *
 * @throws FatalError on malformed or out-of-domain values.
 */
TierConfig tierFromConfig(const Config &cfg,
                          const std::string &section);

/** Tier-scope view of one replica over a run. */
struct TierReplicaStats
{
    std::uint64_t dispatched = 0; //!< attempts sent (incl. hedges)
    std::uint64_t wins = 0;       //!< completions that settled an offload
    std::uint64_t duplicates = 0; //!< completions after settlement
    double wastedServiceCycles = 0.0; //!< service cycles of duplicates
    std::uint64_t failures = 0;   //!< watchdog expiries charged here
    std::uint64_t ejections = 0;  //!< incl. probe-failure re-ejections
    std::uint64_t readmissions = 0;

    /** Every counter above as one JSON object (report surface). */
    std::string summaryJson() const;
};

/** Observed tier behaviour over a run (all zero on a trivial tier). */
struct TierStats
{
    std::uint64_t offloads = 0;     //!< logical offloads dispatched
    std::uint64_t hedgesIssued = 0;
    std::uint64_t hedgeWins = 0;    //!< hedge attempt settled first
    std::uint64_t hedgeLosses = 0;  //!< primary settled first anyway
    std::uint64_t duplicateCompletions = 0;
    double wastedServiceCycles = 0.0; //!< duplicates' service cycles
    double usefulServiceCycles = 0.0; //!< winning attempts' service cycles
    std::uint64_t failovers = 0;
    std::uint64_t failoversExhausted = 0; //!< no healthy replica left
    std::uint64_t watchdogExpiries = 0;
    std::uint64_t ejections = 0;
    std::uint64_t readmissionProbes = 0;
    std::uint64_t readmissions = 0;

    // --- dynamic capacity (autoscaling; all zero on a static tier) ---
    std::uint64_t activations = 0;     //!< standby/draining -> active
    std::uint64_t drainsStarted = 0;   //!< scale-down victims picked
    std::uint64_t drainsCompleted = 0; //!< drained to standby

    /**
     * Integral of provisioned (non-standby) replicas over simulated
     * cycles — the "replica-hours" an autoscaled tier consumed.
     * Draining replicas still count: capacity is paid for until the
     * drain settles. Finalized by snapshot(); resetStats() restarts
     * the integral at the reset tick.
     */
    double provisionedReplicaCycles = 0.0;

    /** Tier-level offload latency (dispatch -> first completion). */
    ReservoirSample offloadLatencyCycles;

    /** Per-replica breakdowns, indexed by replica number. */
    std::vector<TierReplicaStats> replicas;

    /** Per-replica device statistics (filled by snapshot()). */
    std::vector<AcceleratorStats> deviceStats;

    /**
     * Duplicate-work overhead: wasted service cycles relative to
     * useful service cycles (0 when nothing settled).
     */
    double duplicateWorkFraction() const;

    /**
     * Every tier counter, the offload-latency sample, and the
     * per-replica breakdowns (incl. device stats) as one JSON object
     * — the complete report surface, so no counter the tier collects
     * is silently dropped on the floor.
     */
    std::string summaryJson() const;
};

/** The replicated tier: dispatch -> replica -> race -> settle. */
class AcceleratorTier
{
  public:
    /**
     * @param eq      simulation event queue (must outlive the tier)
     * @param device  per-replica device description; its fault plan
     *                seeds replicas without an explicit per-replica plan
     * @param tier    validated tier description
     */
    AcceleratorTier(sim::EventQueue &eq, const AcceleratorConfig &device,
                    const TierConfig &tier);

    /**
     * Dispatch one logical offload through the tier. @p onComplete is
     * invoked at most once, when the first replica completion arrives;
     * under faults it may never be invoked (callers that need to
     * survive that race a deadline timer against it, exactly as with a
     * single Accelerator).
     */
    void offload(double hostEquivalentCycles, double bytes,
                 sim::InlineCallback &&onComplete,
                 bool transferPaidByHost = false);

    /** Interface transfer cycles (identical across replicas). */
    double transferCycles(double bytes) const;

    /** Clear statistics (end of warmup); health state is preserved. */
    void resetStats();

    size_t replicaCount() const { return replicas_.size(); }

    /** Read-only access to one replica device (tests, reporting). */
    const Accelerator &replica(size_t index) const;

    /** Tier-scope counters (no device stats; see snapshot()). */
    const TierStats &stats() const { return stats_; }

    /** Tier stats plus a copy of every replica's device stats. */
    TierStats snapshot() const;

    /**
     * Device statistics aggregated across replicas: counters sum,
     * distributions merge, queue depths take the max. With one replica
     * this is exactly that replica's stats.
     */
    AcceleratorStats aggregateDeviceStats() const;

    /** True when replica @p index is currently ejected. */
    bool replicaEjected(size_t index) const;

    /** True when replica @p index is draining toward standby. */
    bool replicaDraining(size_t index) const;

    /** True when replica @p index is parked in standby. */
    bool replicaStandby(size_t index) const;

    /** In-flight attempts currently charged to replica @p index. */
    std::uint64_t outstanding(size_t index) const;

    /**
     * Resize the live capacity to @p target replicas (the autoscaler's
     * actuator). Growing reactivates draining replicas first (they are
     * warm), then standby replicas in index order, with health state
     * reset as on readmission. Shrinking drains victims — ejected
     * replicas first (they contribute nothing), then the highest
     * indexes — to Standby once their in-flight and hedged attempts
     * settle; until then they stay provisioned (and billed) but take
     * no new dispatches. Standby replicas are never dispatch
     * candidates, never probed, and never counted as capacity.
     *
     * @throws FatalError when target is 0, exceeds the constructed
     *         replica count, or the tier is trivial (single device).
     */
    void setActiveReplicas(std::uint32_t target);

    /** Replicas currently provisioned (active or draining). */
    std::uint32_t provisionedReplicaCount() const;

    /** Replicas currently accepting dispatch (not standby/draining). */
    std::uint32_t activeReplicaCount() const;

  private:
    enum class ReplicaState
    {
        Healthy,
        Ejected,
        Probing,
        Draining, //!< scale-down victim waiting for in-flight work
        Standby,  //!< descheduled: no dispatch, no probes, no billing
    };

    struct ReplicaHealth
    {
        ReplicaState state = ReplicaState::Healthy;
        std::uint32_t consecutiveFailures = 0;
        bool probeInFlight = false;
    };

    /** One replica attempt inside a logical offload. */
    struct Attempt
    {
        size_t replica = 0;
        sim::TimerId watchdog = sim::kInvalidTimer;
        bool isHedge = false;
        bool isProbe = false;
        bool completed = false;
        bool timedOut = false;
    };

    /** Shared state of one logical offload. */
    struct OffloadState
    {
        double hostCycles = 0.0;
        double bytes = 0.0;
        bool transferPaidByHost = false;
        sim::Tick issuedAt = 0;
        bool settled = false;
        bool hedged = false;
        std::uint32_t failovers = 0;
        sim::TimerId hedgeTimer = sim::kInvalidTimer;
        sim::InlineCallback onComplete;
        std::vector<Attempt> attempts;
    };

    static constexpr size_t kNoReplica = ~static_cast<size_t>(0);

    sim::EventQueue &eq_;
    AcceleratorConfig deviceConfig_; //!< template (plan handled per replica)
    TierConfig cfg_;
    bool trivial_ = false;
    std::vector<std::unique_ptr<Accelerator>> replicas_;
    std::vector<ReplicaHealth> health_;
    std::vector<std::uint64_t> outstanding_;
    std::uint64_t rrCursor_ = 0;      //!< round-robin rotation state
    std::uint64_t dispatchIndex_ = 0; //!< slot index for p2c draws
    TierStats stats_;

    // Lazily-integrated capacity: accumulated provisioned-replica
    // cycles up to capacityOriginTick_, extended on every provisioned
    // count change and finalized by snapshot().
    double capacityAccumCycles_ = 0.0;
    sim::Tick capacityOriginTick_ = 0;

    /**
     * Pick a replica for the next attempt: a probing replica waiting
     * for its probe wins, then the policy chooses among healthy
     * replicas (excluding @p exclude); with every replica ejected the
     * pick falls back to all replicas rather than deadlocking.
     * @return replica index, and sets @p isProbe for probe routing;
     *         kNoReplica only when exclusion empties a 1-replica tier.
     */
    size_t pickReplica(size_t exclude, bool *isProbe);

    void issueAttempt(const std::shared_ptr<OffloadState> &state,
                      size_t replica, bool isHedge, bool isProbe);
    void onCompletion(const std::shared_ptr<OffloadState> &state,
                      size_t attemptIndex);
    void onWatchdog(const std::shared_ptr<OffloadState> &state,
                    size_t attemptIndex);

    void recordSuccess(size_t replica);
    void recordFailure(size_t replica);
    void ejectReplica(size_t replica);

    /** Extend the capacity integral up to the current tick. */
    void accrueCapacity();

    /** Draining replica @p replica hit zero outstanding: park it. */
    void finalizeDrain(size_t replica);
};

} // namespace accel::microsim

#include "model/accelerometer.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace accel::model {

namespace {

/**
 * Thread-switch cycles charged per offload on the *throughput* path:
 * Sync-OS pays two switches (away and back, paper eq. 3); a distinct
 * async response thread pays one; other designs pay none.
 */
double
speedupSwitches(ThreadingDesign design)
{
    switch (design) {
      case ThreadingDesign::SyncOS:
        return 2.0;
      case ThreadingDesign::AsyncDistinctThread:
        return 1.0;
      default:
        return 0.0;
    }
}

/**
 * Thread-switch cycles charged per offload on the *latency* path (paper
 * eq. 5 charges a single o1 for designs that re-schedule a thread).
 */
double
latencySwitches(ThreadingDesign design)
{
    switch (design) {
      case ThreadingDesign::SyncOS:
      case ThreadingDesign::AsyncDistinctThread:
        return 1.0;
      default:
        return 0.0;
    }
}

/** True when accelerator execution time sits on the throughput path. */
bool
accelOnSpeedupPath(ThreadingDesign design)
{
    return design == ThreadingDesign::Sync;
}

/** True when accelerator execution time sits on the request-latency path. */
bool
accelOnLatencyPath(ThreadingDesign design, Strategy strategy)
{
    if (design == ThreadingDesign::AsyncNoResponse &&
        strategy == Strategy::Remote) {
        // The remote accelerator operates after this service is done with
        // the request; its time shows up in the application's end-to-end
        // latency, not this microservice's request latency (paper §3).
        return false;
    }
    return true;
}

} // namespace

Accelerometer::Accelerometer(Params params)
    : params_(params)
{
    params_.validate();
}

double
Accelerometer::overheadFraction(double per_offload_cycles) const
{
    return params_.offloads * per_offload_cycles / params_.hostCycles;
}

double
Accelerometer::acceleratorFraction() const
{
    return params_.alpha * params_.offloadedFraction / params_.accelFactor;
}

double
Accelerometer::hostResidentFraction() const
{
    // Non-kernel work plus the kernel cycles whose granularity was below
    // break-even and therefore stays on the host.
    return (1.0 - params_.alpha) +
           params_.alpha * (1.0 - params_.offloadedFraction);
}

double
Accelerometer::acceleratedHostCycles(ThreadingDesign design) const
{
    double per_offload = params_.dispatchCycles() +
        speedupSwitches(design) * params_.threadSwitchCycles;
    double frac = hostResidentFraction() + overheadFraction(per_offload);
    if (accelOnSpeedupPath(design))
        frac += acceleratorFraction();
    return frac * params_.hostCycles;
}

double
Accelerometer::acceleratedRequestCycles(ThreadingDesign design) const
{
    double per_offload = params_.dispatchCycles() +
        latencySwitches(design) * params_.threadSwitchCycles;
    double frac = hostResidentFraction() + overheadFraction(per_offload);
    if (accelOnLatencyPath(design, params_.strategy))
        frac += acceleratorFraction();
    return frac * params_.hostCycles;
}

double
Accelerometer::speedup(ThreadingDesign design) const
{
    return params_.hostCycles / acceleratedHostCycles(design);
}

double
Accelerometer::latencyReduction(ThreadingDesign design) const
{
    return params_.hostCycles / acceleratedRequestCycles(design);
}

Projection
Accelerometer::project(ThreadingDesign design) const
{
    return {speedup(design), latencyReduction(design)};
}

double
Accelerometer::idealSpeedup() const
{
    if (params_.alpha >= 1.0)
        return std::numeric_limits<double>::infinity();
    return 1.0 / (1.0 - params_.alpha);
}

bool
Accelerometer::profitable(ThreadingDesign design) const
{
    return speedup(design) > 1.0;
}

double
OffloadProfit::hostKernelCycles(double granularity) const
{
    require(granularity >= 0, "OffloadProfit: negative granularity");
    return cyclesPerByte * std::pow(granularity, beta);
}

namespace {

/**
 * Generic per-offload profitability: host cycles saved must exceed the
 * cycles spent offloading. @p accel_factor is (1 - 1/A) when the
 * accelerator is on the relevant path, 1 otherwise.
 */
bool
offloadWins(double host_cycles, double accel_factor, double overhead)
{
    return host_cycles * accel_factor > overhead;
}

double
solveBreakEven(double cycles_per_byte, double beta, double accel_factor,
               double overhead)
{
    if (accel_factor <= 0.0) {
        // A = 1 with accelerator time on the critical path: offloading
        // can never save cycles.
        return overhead > 0.0 ? std::numeric_limits<double>::infinity()
                              : 0.0;
    }
    if (overhead <= 0.0)
        return 0.0;
    double g = overhead / (cycles_per_byte * accel_factor);
    return std::pow(g, 1.0 / beta);
}

} // namespace

bool
OffloadProfit::improvesSpeedup(double granularity, ThreadingDesign design,
                               const Params &params) const
{
    double overhead = params.dispatchCycles() +
        speedupSwitches(design) * params.threadSwitchCycles;
    double factor = accelOnSpeedupPath(design)
        ? 1.0 - 1.0 / params.accelFactor : 1.0;
    return offloadWins(hostKernelCycles(granularity), factor, overhead);
}

bool
OffloadProfit::reducesLatency(double granularity, ThreadingDesign design,
                              const Params &params) const
{
    double overhead = params.dispatchCycles() +
        latencySwitches(design) * params.threadSwitchCycles;
    double factor = accelOnLatencyPath(design, params.strategy)
        ? 1.0 - 1.0 / params.accelFactor : 1.0;
    return offloadWins(hostKernelCycles(granularity), factor, overhead);
}

double
OffloadProfit::breakEvenSpeedup(ThreadingDesign design,
                                const Params &params) const
{
    require(cyclesPerByte > 0, "OffloadProfit: Cb must be positive");
    require(beta > 0, "OffloadProfit: beta must be positive");
    double overhead = params.dispatchCycles() +
        speedupSwitches(design) * params.threadSwitchCycles;
    double factor = accelOnSpeedupPath(design)
        ? 1.0 - 1.0 / params.accelFactor : 1.0;
    return solveBreakEven(cyclesPerByte, beta, factor, overhead);
}

double
OffloadProfit::breakEvenLatency(ThreadingDesign design,
                                const Params &params) const
{
    require(cyclesPerByte > 0, "OffloadProfit: Cb must be positive");
    require(beta > 0, "OffloadProfit: beta must be positive");
    double overhead = params.dispatchCycles() +
        latencySwitches(design) * params.threadSwitchCycles;
    double factor = accelOnLatencyPath(design, params.strategy)
        ? 1.0 - 1.0 / params.accelFactor : 1.0;
    return solveBreakEven(cyclesPerByte, beta, factor, overhead);
}

} // namespace accel::model

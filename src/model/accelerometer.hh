/**
 * @file
 * The Accelerometer analytical model (paper §3).
 *
 * Projects microservice throughput speedup (C/CS) and per-request latency
 * reduction (C/CL) for a hardware acceleration strategy under a given
 * threading design. Implements equations (1)-(8) of the paper, extended
 * with partial offload (only granularities above break-even offload; the
 * rest of the kernel stays on the host).
 */

#pragma once

#include "model/params.hh"

namespace accel::model {

/** The pair of quantities the model projects. */
struct Projection
{
    double speedup;          //!< throughput ratio C / CS
    double latencyReduction; //!< per-request ratio C / CL
};

/**
 * Evaluates the Accelerometer equations for one parameter set.
 *
 * The model is intentionally tiny: construction validates parameter
 * domains, and each query is a closed-form expression. See the paper's
 * Fig. 11-14 for the timelines each design models.
 */
class Accelerometer
{
  public:
    /** @throws FatalError when @p params violates a domain constraint. */
    explicit Accelerometer(Params params);

    /** The validated parameters. */
    const Params &params() const { return params_; }

    /**
     * Throughput speedup C/CS for a threading design.
     *
     * Sync: eq. (1). Sync-OS: eq. (3). Async same-thread and
     * no-response: eq. (6). Async distinct-thread: eq. (3) with one o1.
     */
    double speedup(ThreadingDesign design) const;

    /**
     * Per-request latency reduction C/CL.
     *
     * Sync: eq. (1). Sync-OS and Async distinct-thread: eq. (5).
     * Async same-thread: eq. (8). Async no-response: eq. (8) off-chip but
     * eq. (6) for remote accelerators, whose operation time moves to the
     * application's end-to-end latency instead of this service's request
     * latency.
     */
    double latencyReduction(ThreadingDesign design) const;

    /** Both projections at once. */
    Projection project(ThreadingDesign design) const;

    /** Amdahl ideal speedup 1/(1-α): the kernel takes zero time. */
    double idealSpeedup() const;

    /**
     * Net gain condition (paper text under each equation): true when the
     * projected speedup exceeds 1.
     */
    bool profitable(ThreadingDesign design) const;

    /**
     * Host cycles with acceleration, CS, per time unit (speedup = C/CS).
     */
    double acceleratedHostCycles(ThreadingDesign design) const;

    /**
     * Request-path cycles with acceleration, CL, per time unit
     * (latency reduction = C/CL).
     */
    double acceleratedRequestCycles(ThreadingDesign design) const;

  private:
    Params params_;

    /** n/C · per-offload-overhead, as a fraction of C. */
    double overheadFraction(double per_offload_cycles) const;

    /** Accelerator execution time as a fraction of C: α_off/A. */
    double acceleratorFraction() const;

    /** (1-α) + residual kernel fraction. */
    double hostResidentFraction() const;
};

/**
 * Per-offload profitability tests (paper eqs. 2, 4, 7).
 *
 * An offload of granularity g costs the host cb·g^β cycles when executed
 * locally (β models kernel complexity; 1 = linear).
 */
struct OffloadProfit
{
    double cyclesPerByte; //!< Cb
    double beta = 1.0;    //!< kernel complexity exponent

    /** Host cycles to execute a g-byte kernel locally: Cb·g^β. */
    double hostKernelCycles(double granularity) const;

    /**
     * True when offloading a g-byte kernel improves throughput under the
     * given design and overhead parameters.
     */
    bool improvesSpeedup(double granularity, ThreadingDesign design,
                         const Params &params) const;

    /** True when offloading a g-byte kernel reduces request latency. */
    bool reducesLatency(double granularity, ThreadingDesign design,
                        const Params &params) const;

    /**
     * Smallest granularity whose offload improves throughput (the
     * "break-even g" the paper marks on its CDF figures), or +inf when no
     * granularity profits (e.g. A = 1 with accelerator time on the
     * critical path).
     */
    double breakEvenSpeedup(ThreadingDesign design,
                            const Params &params) const;

    /** Smallest granularity whose offload reduces latency, or +inf. */
    double breakEvenLatency(ThreadingDesign design,
                            const Params &params) const;
};

} // namespace accel::model

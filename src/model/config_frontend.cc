#include "model/config_frontend.hh"

#include <sstream>

#include "model/granularity.hh"
#include "model/report.hh"
#include "util/logging.hh"
#include "util/string_utils.hh"

namespace accel::model {

BucketDist
granularityFromConfig(const std::string &literal)
{
    std::vector<DistBucket> buckets;
    for (const std::string &part : split(literal, ',')) {
        std::string triple = trim(part);
        if (triple.empty())
            continue;
        auto fields = split(triple, ':');
        require(fields.size() == 3,
                "granularity_cdf: expected lo:hi:mass, got '" + triple +
                    "'");
        buckets.push_back({parseDouble(fields[0]),
                           parseDouble(fields[1]),
                           parseDouble(fields[2])});
    }
    require(!buckets.empty(), "granularity_cdf: no buckets");
    return BucketDist(std::move(buckets));
}

Params
paramsFromConfig(const Config &cfg, const std::string &section)
{
    Params p;
    p.hostCycles = cfg.getDouble(section, "C");
    p.alpha = cfg.getDouble(section, "alpha");
    p.setupCycles = cfg.getDouble(section, "o0", 0.0);
    p.queueCycles = cfg.getDouble(section, "Q", 0.0);
    p.interfaceCycles = cfg.getDouble(section, "L", 0.0);
    p.threadSwitchCycles = cfg.getDouble(section, "o1", 0.0);
    p.accelFactor = cfg.getDouble(section, "A", 1.0);
    p.offloadedFraction = cfg.getDouble(section, "offloaded_fraction", 1.0);
    p.strategy =
        strategyFromString(cfg.getString(section, "strategy", "off-chip"));

    if (cfg.has(section, "granularity_cdf")) {
        // Planner mode: derive n and the offloaded fraction from the
        // kernel's size distribution and per-byte cost.
        require(!cfg.has(section, "n"),
                "config: give either n or a granularity_cdf, not both");
        BucketDist sizes = granularityFromConfig(
            cfg.getString(section, "granularity_cdf"));
        OffloadProfit profit{cfg.getDouble(section, "cb"),
                             cfg.getDouble(section, "beta", 1.0)};
        double n_total = cfg.getDouble(section, "n_total");
        std::string weighting =
            toLower(cfg.getString(section, "weighting", "count"));
        require(weighting == "count" || weighting == "bytes",
                "config: weighting must be 'count' or 'bytes'");
        auto plan = planOffloads(
            sizes, n_total, p.alpha, profit,
            threadingFromConfig(cfg, section), p,
            weighting == "count" ? AlphaWeighting::CountWeighted
                                 : AlphaWeighting::BytesWeighted);
        p = applyPlan(p, p.alpha, plan);
    } else {
        p.offloads = cfg.getDouble(section, "n");
    }
    p.validate();
    return p;
}

ThreadingDesign
threadingFromConfig(const Config &cfg, const std::string &section)
{
    return threadingFromString(cfg.getString(section, "threading", "sync"));
}

std::shared_ptr<const faults::FaultPlan>
faultPlanFromConfig(const Config &cfg, const std::string &section)
{
    return faultPlanFromConfig(cfg, section, "fault_");
}

std::shared_ptr<const faults::FaultPlan>
faultPlanFromConfig(const Config &cfg, const std::string &section,
                    const std::string &prefix)
{
    static const char *kKeys[] = {
        "seed",    "drop_p",       "late_p",
        "late_cycles", "spike_p",  "spike_factor",
        "stalls",  "fail_at",      "recover_at",
    };
    bool any = false;
    for (const char *key : kKeys)
        any = any || cfg.has(section, prefix + key);
    if (!any)
        return nullptr;

    faults::FaultPlan plan;
    plan.seed = static_cast<std::uint64_t>(
        cfg.getDouble(section, prefix + "seed", 1.0));
    plan.dropProbability = cfg.getDouble(section, prefix + "drop_p", 0.0);
    plan.lateProbability = cfg.getDouble(section, prefix + "late_p", 0.0);
    plan.lateDelayCycles =
        cfg.getDouble(section, prefix + "late_cycles", 0.0);
    plan.transferSpikeProbability =
        cfg.getDouble(section, prefix + "spike_p", 0.0);
    plan.transferSpikeFactor =
        cfg.getDouble(section, prefix + "spike_factor", 1.0);
    if (cfg.has(section, prefix + "stalls")) {
        for (const std::string &part :
             split(cfg.getString(section, prefix + "stalls"), ',')) {
            std::string window = trim(part);
            if (window.empty())
                continue;
            auto fields = split(window, ':');
            require(fields.size() == 2,
                    prefix + "stalls: expected begin:end, got '" +
                        window + "'");
            plan.stallWindows.push_back(
                {static_cast<sim::Tick>(parseDouble(fields[0])),
                 static_cast<sim::Tick>(parseDouble(fields[1]))});
        }
        require(!plan.stallWindows.empty(),
                prefix + "stalls: no windows");
    }
    if (cfg.has(section, prefix + "fail_at")) {
        plan.deviceFailAtTick = static_cast<sim::Tick>(
            cfg.getDouble(section, prefix + "fail_at"));
    }
    if (cfg.has(section, prefix + "recover_at")) {
        plan.deviceRecoverAtTick = static_cast<sim::Tick>(
            cfg.getDouble(section, prefix + "recover_at"));
    }
    plan.validate();
    return std::make_shared<const faults::FaultPlan>(std::move(plan));
}

std::vector<ConfigCase>
casesFromConfig(const Config &cfg)
{
    std::vector<ConfigCase> cases;
    for (const std::string &section : cfg.sections()) {
        if (section.empty() && cfg.keys(section).empty())
            continue;
        ConfigCase c;
        c.name = section.empty() ? "(global)" : section;
        c.params = paramsFromConfig(cfg, section);
        c.design = threadingFromConfig(cfg, section);
        cases.push_back(std::move(c));
    }
    return cases;
}

std::string
runConfigFile(const std::string &path)
{
    Config cfg = Config::fromFile(path);
    std::vector<ConfigCase> cases = casesFromConfig(cfg);
    if (cases.empty())
        fatal("config '" + path + "' defines no parameter sections");
    std::ostringstream os;
    for (const auto &c : cases) {
        os << projectionReport(c.params, "== " + c.name + " ==");
        os << projectionLine(c.params, c.design) << "\n\n";
    }
    return os.str();
}

} // namespace accel::model

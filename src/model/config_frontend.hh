/**
 * @file
 * Config-file front end: the artifact workflow of "input model parameters
 * into a configuration file, then run the model".
 *
 * A parameter section looks like:
 *
 *     [aes-ni]
 *     C = 2.0e9          ; host cycles per time unit
 *     alpha = 0.165844
 *     n = 298951
 *     o0 = 10
 *     Q = 0
 *     L = 3
 *     o1 = 0
 *     A = 6
 *     strategy = on-chip
 *     threading = sync
 *     offloaded_fraction = 1.0   ; optional, default 1
 *
 * Instead of giving n and offloaded_fraction directly, a section may
 * describe the kernel's granularity distribution and let the planner
 * derive them (the paper's §5 workflow):
 *
 *     [compression-off-chip]
 *     C = 2.3e9
 *     alpha = 0.15
 *     L = 2300
 *     A = 27
 *     threading = sync
 *     cb = 5.62                   ; host cycles per byte
 *     n_total = 15008             ; total kernel invocations
 *     granularity_cdf = 0:64:12, 64:128:6, 128:256:8, 256:512:14.9, ...
 *     weighting = count           ; or "bytes"
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "config/config.hh"
#include "faults/fault_plan.hh"
#include "model/accelerometer.hh"
#include "stats/bucket_dist.hh"

namespace accel::model {

/** A named parameter set plus the threading design to evaluate. */
struct ConfigCase
{
    std::string name;
    Params params;
    ThreadingDesign design;
};

/**
 * Parse one section into model parameters. When the section carries
 * `cb`, `n_total`, and `granularity_cdf`, the profitable-offload plan
 * is derived and its n / offloaded_fraction land in the result;
 * otherwise `n` is required.
 *
 * @throws FatalError when required keys are missing or out of domain.
 */
Params paramsFromConfig(const Config &cfg, const std::string &section);

/**
 * Parse a granularity CDF literal: comma-separated "lo:hi:mass"
 * bucket triples, e.g. "0:64:12, 64:128:6".
 * @throws FatalError on malformed triples.
 */
BucketDist granularityFromConfig(const std::string &literal);

/** Threading design for a section (key "threading", default "sync"). */
ThreadingDesign threadingFromConfig(const Config &cfg,
                                    const std::string &section);

/**
 * Parse a section's fault-plan keys into a FaultPlan, or nullptr when
 * the section sets none of them (so fault-off configs build the exact
 * pre-fault device). Recognised keys, all prefixed `fault_`:
 *
 *     fault_seed = 7
 *     fault_drop_p = 0.05          ; per-offload completion loss
 *     fault_late_p = 0.1           ; per-offload late completion...
 *     fault_late_cycles = 5000     ; ...delayed by this many cycles
 *     fault_spike_p = 0.02         ; per-offload transfer spike...
 *     fault_spike_factor = 8       ; ...multiplying the transfer
 *     fault_stalls = 1e6:2e6, 5e6:6e6   ; begin:end tick windows
 *     fault_fail_at = 2.5e8        ; whole-device failure tick
 *     fault_recover_at = 3.5e8     ; optional recovery tick
 *
 * @throws FatalError on malformed windows or out-of-domain values.
 */
std::shared_ptr<const faults::FaultPlan>
faultPlanFromConfig(const Config &cfg, const std::string &section);

/**
 * As above but with an arbitrary key prefix in place of `fault_`.
 * The replicated-tier front end uses `fault_r<k>_` so each replica in
 * a section carries its own independent plan, e.g. `fault_r2_drop_p`.
 */
std::shared_ptr<const faults::FaultPlan>
faultPlanFromConfig(const Config &cfg, const std::string &section,
                    const std::string &prefix);

/** Parse every section of a config into cases, preserving order. */
std::vector<ConfigCase> casesFromConfig(const Config &cfg);

/** Load a config file and render projection reports for all sections. */
std::string runConfigFile(const std::string &path);

} // namespace accel::model

#include "model/fleet.hh"

#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace accel::model {

double
FleetService::speedup() const
{
    Accelerometer model(params);
    return model.speedup(design);
}

double
FleetProjection::capacityFraction() const
{
    return totalServers > 0 ? serversFreed / totalServers : 0.0;
}

FleetProjection
projectFleet(const std::vector<FleetService> &services)
{
    require(!services.empty(), "projectFleet: no services");

    // Model evaluations shard across the pool; the accumulation below
    // stays serial and in input order so the floating-point sums are
    // bit-identical to the serial path.
    std::vector<double> speedups(services.size());
    parallelFor(services.size(), [&](size_t i) {
        require(services[i].servers > 0,
                "projectFleet: server count must be positive");
        speedups[i] = services[i].speedup();
    });

    FleetProjection out;
    out.totalServers = 0;
    double servers_after = 0;
    for (size_t i = 0; i < services.size(); ++i) {
        const FleetService &svc = services[i];
        out.perService.emplace_back(svc.name, speedups[i]);
        out.totalServers += svc.servers;
        servers_after += svc.servers / speedups[i];
    }
    out.fleetSpeedup = out.totalServers / servers_after;
    out.serversFreed = out.totalServers - servers_after;
    return out;
}

} // namespace accel::model

#include "model/fleet.hh"

#include "util/logging.hh"

namespace accel::model {

double
FleetService::speedup() const
{
    Accelerometer model(params);
    return model.speedup(design);
}

double
FleetProjection::capacityFraction() const
{
    return totalServers > 0 ? serversFreed / totalServers : 0.0;
}

FleetProjection
projectFleet(const std::vector<FleetService> &services)
{
    require(!services.empty(), "projectFleet: no services");

    FleetProjection out;
    out.totalServers = 0;
    double servers_after = 0;
    for (const FleetService &svc : services) {
        require(svc.servers > 0,
                "projectFleet: server count must be positive");
        double s = svc.speedup();
        out.perService.emplace_back(svc.name, s);
        out.totalServers += svc.servers;
        servers_after += svc.servers / s;
    }
    out.fleetSpeedup = out.totalServers / servers_after;
    out.serversFreed = out.totalServers - servers_after;
    return out;
}

} // namespace accel::model

/**
 * @file
 * Fleet-level projection (paper §3, "Applying the Accelerometer model",
 * use case 1): data-center operators project fleet-wide gains from
 * accelerating a common overhead across many services.
 *
 * Each service contributes its own model parameters and its share of
 * the installed server base; the fleet speedup is the capacity-weighted
 * harmonic composition of per-service speedups (equivalently: total
 * fleet cycles before / after). The module also converts speedup into
 * the headline operators care about — servers freed at constant load.
 */

#pragma once

#include <string>
#include <vector>

#include "model/accelerometer.hh"

namespace accel::model {

/** One service's stake in the fleet. */
struct FleetService
{
    std::string name;
    double servers;          //!< installed base running this service
    Params params;           //!< acceleration parameters for it
    ThreadingDesign design;  //!< offload design it would use

    /** Projected speedup for this service alone. */
    double speedup() const;
};

/** Result of a fleet projection. */
struct FleetProjection
{
    double fleetSpeedup;     //!< total-cycles-before / total-cycles-after
    double serversFreed;     //!< servers recovered at constant load
    double totalServers;
    std::vector<std::pair<std::string, double>> perService;

    /** Fraction of the fleet freed: serversFreed / totalServers. */
    double capacityFraction() const;
};

/**
 * Project the fleet-wide effect of deploying the per-service
 * accelerations in @p services.
 *
 * Services with speedup s need 1/s of their servers for the same load,
 * so: fleetSpeedup = Σ servers / Σ (servers / s_i).
 *
 * @throws FatalError when @p services is empty or has non-positive
 *         server counts.
 */
FleetProjection projectFleet(const std::vector<FleetService> &services);

} // namespace accel::model

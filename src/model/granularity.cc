#include "model/granularity.hh"

#include "util/logging.hh"

namespace accel::model {

GranularityPlan
planOffloads(const BucketDist &sizes, double totalOffloads, double alpha,
             const OffloadProfit &profit, ThreadingDesign design,
             const Params &base, AlphaWeighting weighting)
{
    require(totalOffloads >= 0, "planOffloads: negative offload count");
    require(alpha >= 0.0 && alpha <= 1.0,
            "planOffloads: alpha outside [0,1]");

    GranularityPlan plan;
    plan.breakEven = profit.breakEvenSpeedup(design, base);
    plan.profitableFraction = sizes.fractionAtLeast(plan.breakEven);
    plan.bytesFraction = sizes.valueFractionAtLeast(plan.breakEven);
    plan.profitableOffloads = totalOffloads * plan.profitableFraction;

    double scale = weighting == AlphaWeighting::CountWeighted
        ? plan.profitableFraction : plan.bytesFraction;
    plan.effectiveAlpha = alpha * scale;
    plan.offloadedFraction = scale;
    return plan;
}

Params
applyPlan(const Params &base, double alpha, const GranularityPlan &plan)
{
    Params p = base;
    p.alpha = alpha;
    p.offloads = plan.profitableOffloads;
    p.offloadedFraction = plan.offloadedFraction;
    p.validate();
    return p;
}

} // namespace accel::model

/**
 * @file
 * Granularity-aware offload planning (paper §4-§5 methodology).
 *
 * The paper's validation workflow is: (1) find the offload sizes g that
 * improve speedup, (2) count how many such offloads occur per time unit
 * (n) and the kernel-cycle fraction they represent (α_eff), (3) feed
 * those into the model. This module automates that workflow from a
 * granularity CDF (BucketDist) and a per-byte kernel cost.
 */

#pragma once

#include "model/accelerometer.hh"
#include "stats/bucket_dist.hh"

namespace accel::model {

/** How to scale α by the share of offloads above break-even. */
enum class AlphaWeighting
{
    /**
     * α_eff = α · n_profitable / n_total. This is the rule the paper's
     * "Applying" section uses (it exactly reproduces Fig. 20's off-chip
     * numbers; see DESIGN.md).
     */
    CountWeighted,
    /**
     * α_eff = α · (bytes carried by profitable offloads / total bytes).
     * For a linear-complexity kernel, cycles scale with bytes, making
     * this the physically sharper estimate; provided as an extension.
     */
    BytesWeighted,
};

/** Result of planning which offloads to accelerate. */
struct GranularityPlan
{
    double breakEven;          //!< g*: smallest profitable granularity
    double profitableFraction; //!< count fraction of offloads >= g*
    double bytesFraction;      //!< byte fraction carried by offloads >= g*
    double profitableOffloads; //!< n = n_total · profitableFraction
    double effectiveAlpha;     //!< α_eff under the chosen weighting
    double offloadedFraction;  //!< α_eff / α, the Params field
};

/**
 * Derive the profitable-offload plan for a kernel.
 *
 * @param sizes          granularity distribution of kernel invocations
 * @param totalOffloads  total kernel invocations per time unit
 * @param alpha          kernel fraction of host cycles (α)
 * @param profit         per-byte cost and complexity of the kernel
 * @param design         threading design under evaluation
 * @param base           overhead parameters (o0, L, Q, o1, A, strategy)
 * @param weighting      count- (paper) or bytes-weighted α scaling
 *
 * @throws FatalError on invalid inputs (alpha outside [0,1], negative n).
 */
GranularityPlan planOffloads(const BucketDist &sizes, double totalOffloads,
                             double alpha, const OffloadProfit &profit,
                             ThreadingDesign design, const Params &base,
                             AlphaWeighting weighting =
                                 AlphaWeighting::CountWeighted);

/**
 * Produce model parameters implementing a plan: n and offloadedFraction
 * are replaced by the plan's values, everything else copied from @p base.
 */
Params applyPlan(const Params &base, double alpha,
                 const GranularityPlan &plan);

} // namespace accel::model

#include "model/logca.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace accel::model {

void
LogCAParams::validate() const
{
    require(latencyPerByte >= 0, "LogCA: L must be non-negative");
    require(overheadCycles >= 0, "LogCA: o must be non-negative");
    require(cyclesPerByte > 0, "LogCA: C must be positive");
    require(accelFactor >= 1.0, "LogCA: A must be >= 1");
    require(beta > 0, "LogCA: beta must be positive");
}

LogCA::LogCA(LogCAParams params)
    : params_(params)
{
    params_.validate();
}

double
LogCA::hostTime(double granularity) const
{
    require(granularity >= 0, "LogCA: negative granularity");
    return params_.cyclesPerByte * std::pow(granularity, params_.beta);
}

double
LogCA::accelTime(double granularity) const
{
    require(granularity >= 0, "LogCA: negative granularity");
    double transfer = params_.latencyPerByte * granularity;
    double execute = hostTime(granularity) / params_.accelFactor;
    double kernel = params_.pipelined ? std::max(transfer, execute)
                                      : transfer + execute;
    return params_.overheadCycles + kernel;
}

double
LogCA::speedup(double granularity) const
{
    double t1 = accelTime(granularity);
    if (t1 <= 0)
        return 1.0;
    return hostTime(granularity) / t1;
}

double
LogCA::peakSpeedup() const
{
    if (params_.beta > 1.0) {
        // Superlinear kernels amortize the linear transfer cost entirely.
        return params_.accelFactor;
    }
    if (params_.beta < 1.0) {
        // Sublinear kernels are eventually dominated by transfer latency.
        return params_.latencyPerByte > 0
            ? 0.0 : params_.accelFactor;
    }
    double denom = params_.pipelined
        ? std::max(params_.latencyPerByte,
                   params_.cyclesPerByte / params_.accelFactor)
        : params_.latencyPerByte +
              params_.cyclesPerByte / params_.accelFactor;
    ensure(denom > 0, "LogCA: non-positive accelerated rate");
    return params_.cyclesPerByte / denom;
}

double
LogCA::granularityForSpeedup(double target) const
{
    // Bisection on [1, 2^60]; speedup is monotone non-decreasing in g for
    // beta >= 1 (overhead amortizes), so a sign change brackets the root.
    double lo = 1.0;
    double hi = 1.0;
    const double limit = std::ldexp(1.0, 60);
    while (speedup(hi) < target) {
        hi *= 2.0;
        if (hi > limit)
            return std::numeric_limits<double>::infinity();
    }
    if (speedup(lo) >= target)
        return lo;
    for (int i = 0; i < 200; ++i) {
        double mid = 0.5 * (lo + hi);
        if (speedup(mid) >= target)
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

double
LogCA::g1() const
{
    return granularityForSpeedup(1.0);
}

double
LogCA::gHalf() const
{
    double peak = peakSpeedup();
    if (!std::isfinite(peak) || peak <= 0)
        return std::numeric_limits<double>::infinity();
    return granularityForSpeedup(peak / 2.0);
}

} // namespace accel::model

/**
 * @file
 * The LogCA baseline model (Altaf & Wood, ISCA 2017).
 *
 * Accelerometer extends LogCA; we implement LogCA itself as the baseline
 * the paper compares against. LogCA describes a single kernel offload of
 * granularity g with five parameters: L (per-byte interface latency),
 * o (setup overhead), g (granularity), C (computational index: host
 * cycles per byte), and A (peak acceleration). It assumes the host waits
 * for the accelerator — i.e., offload is synchronous — which is exactly
 * the assumption Accelerometer relaxes.
 */

#pragma once

namespace accel::model {

/** LogCA parameters for one kernel. */
struct LogCAParams
{
    double latencyPerByte;   //!< L: interface cycles per offloaded byte
    double overheadCycles;   //!< o: fixed setup cycles per offload
    double cyclesPerByte;    //!< C: host cycles per byte of kernel work
    double accelFactor;      //!< A: peak accelerator speedup (>= 1)
    double beta = 1.0;       //!< kernel complexity exponent

    /**
     * Pipelined interface: the transfer overlaps accelerator execution,
     * so the offload pays max(L·g, C·g^β/A) instead of their sum. The
     * paper notes this case ("when data offload is pipelined, L is
     * independent of g") but studies only unpipelined offloads; we
     * implement both.
     */
    bool pipelined = false;

    /** @throws FatalError when a parameter is out of domain. */
    void validate() const;
};

/**
 * Closed-form LogCA evaluation.
 *
 * Time on host:        T0(g) = C·g^β
 * Unpipelined offload: T1(g) = o + L·g + C·g^β / A
 * Pipelined offload:   T1(g) = o + max(L·g, C·g^β / A)
 */
class LogCA
{
  public:
    /** @throws FatalError on invalid parameters. */
    explicit LogCA(LogCAParams params);

    const LogCAParams &params() const { return params_; }

    /** Unaccelerated host execution time for a g-byte kernel. */
    double hostTime(double granularity) const;

    /** Accelerated execution time including offload overheads. */
    double accelTime(double granularity) const;

    /** Kernel speedup T0/T1 at granularity g. */
    double speedup(double granularity) const;

    /**
     * g1: the break-even granularity where speedup reaches 1, found by
     * bisection (closed form exists only for β = 1). Returns +inf when
     * no granularity breaks even.
     */
    double g1() const;

    /**
     * g_{A/2}: granularity achieving half the peak achievable speedup,
     * LogCA's "reasonable utilization" marker. +inf when unreachable.
     */
    double gHalf() const;

    /**
     * Peak achievable speedup as g → ∞. For β = 1 this is
     * C / (L + C/A); for β > 1 it approaches A.
     */
    double peakSpeedup() const;

  private:
    LogCAParams params_;

    /** Smallest g (by bisection) where speedup(g) >= target, or +inf. */
    double granularityForSpeedup(double target) const;
};

} // namespace accel::model

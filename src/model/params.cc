#include "model/params.hh"

#include "util/logging.hh"
#include "util/string_utils.hh"

namespace accel::model {

std::string
toString(Strategy s)
{
    switch (s) {
      case Strategy::OnChip:
        return "on-chip";
      case Strategy::OffChip:
        return "off-chip";
      case Strategy::Remote:
        return "remote";
    }
    panic("toString: unknown Strategy");
}

std::string
toString(ThreadingDesign d)
{
    switch (d) {
      case ThreadingDesign::Sync:
        return "Sync";
      case ThreadingDesign::SyncOS:
        return "Sync-OS";
      case ThreadingDesign::AsyncSameThread:
        return "Async";
      case ThreadingDesign::AsyncDistinctThread:
        return "Async-distinct-thread";
      case ThreadingDesign::AsyncNoResponse:
        return "Async-no-response";
    }
    panic("toString: unknown ThreadingDesign");
}

Strategy
strategyFromString(const std::string &name)
{
    std::string t = toLower(trim(name));
    if (t == "on-chip" || t == "onchip" || t == "on_chip")
        return Strategy::OnChip;
    if (t == "off-chip" || t == "offchip" || t == "off_chip")
        return Strategy::OffChip;
    if (t == "remote")
        return Strategy::Remote;
    fatal("unknown acceleration strategy '" + name + "'");
}

ThreadingDesign
threadingFromString(const std::string &name)
{
    std::string t = toLower(trim(name));
    if (t == "sync")
        return ThreadingDesign::Sync;
    if (t == "sync-os" || t == "syncos" || t == "sync_os")
        return ThreadingDesign::SyncOS;
    if (t == "async" || t == "async-same-thread")
        return ThreadingDesign::AsyncSameThread;
    if (t == "async-distinct-thread" || t == "async-distinct")
        return ThreadingDesign::AsyncDistinctThread;
    if (t == "async-no-response" || t == "async-fire-and-forget")
        return ThreadingDesign::AsyncNoResponse;
    fatal("unknown threading design '" + name + "'");
}

void
Params::validate() const
{
    require(hostCycles > 0, "Params: C (hostCycles) must be positive");
    require(alpha >= 0.0 && alpha <= 1.0, "Params: alpha must be in [0,1]");
    require(offloads >= 0, "Params: n (offloads) must be non-negative");
    require(setupCycles >= 0, "Params: o0 must be non-negative");
    require(queueCycles >= 0, "Params: Q must be non-negative");
    require(interfaceCycles >= 0, "Params: L must be non-negative");
    require(threadSwitchCycles >= 0, "Params: o1 must be non-negative");
    require(accelFactor >= 1.0, "Params: A must be >= 1");
    require(offloadedFraction >= 0.0 && offloadedFraction <= 1.0,
            "Params: offloadedFraction must be in [0,1]");
}

} // namespace accel::model

/**
 * @file
 * Accelerometer model parameters (paper Table 5) and enumerations of the
 * acceleration strategies and microservice threading designs (paper §3).
 */

#pragma once

#include <cstdint>
#include <string>

namespace accel::model {

/**
 * Where the accelerator lives relative to the host CPU.
 *
 * The strategy mainly determines typical interface latencies (ns-scale
 * on-chip, µs-scale PCIe, ms-scale commodity network) and how remote
 * accelerator time is accounted in per-request latency.
 */
enum class Strategy
{
    OnChip,  //!< CPU-die optimization (e.g. AES-NI, wider SIMD)
    OffChip, //!< PCIe / coherent-interconnect device (GPU, ASIC, smartNIC)
    Remote,  //!< off-platform device reached over the network
};

/**
 * How the microservice's threads interact with an offload (paper §3).
 *
 * The paper's key observation is that speedup depends on this design, not
 * just on accelerator parameters.
 */
enum class ThreadingDesign
{
    /** One thread per core; the core blocks awaiting the response (eq. 1). */
    Sync,
    /**
     * Over-subscribed threads: the core switches to another thread while
     * the offloading thread blocks, paying o1 twice (eqs. 3, 5).
     */
    SyncOS,
    /**
     * Asynchronous offload; the same thread later picks up the response,
     * so no thread switch is paid (eqs. 6, 8).
     */
    AsyncSameThread,
    /**
     * Asynchronous offload with a dedicated response thread: one o1 per
     * offload (speedup of eq. 3 with a single o1; latency of eq. 5).
     */
    AsyncDistinctThread,
    /**
     * Asynchronous offload where the host never consumes the response
     * (e.g. the accelerator forwards encrypted RPCs downstream). Speedup
     * follows eq. 6; per-request latency depends on the strategy: off-chip
     * accelerator time stays on the request path (eq. 8) but remote
     * accelerator time moves to the application's end-to-end latency
     * (eq. 6).
     */
    AsyncNoResponse,
};

/** Printable name of a strategy. */
std::string toString(Strategy s);

/** Printable name of a threading design. */
std::string toString(ThreadingDesign d);

/** Parse a strategy name (case-insensitive; "on-chip"/"onchip" etc.). */
Strategy strategyFromString(const std::string &name);

/** Parse a threading design name (case-insensitive). */
ThreadingDesign threadingFromString(const std::string &name);

/**
 * Model parameters (paper Table 5).
 *
 * All cycle quantities are expressed in host clock cycles; @ref hostCycles
 * (C) fixes the time unit (the paper uses the host's busy cycles in one
 * second).
 */
struct Params
{
    /** C: total host cycles spent executing all logic per time unit. */
    double hostCycles = 0.0;

    /** α: fraction of C spent executing the kernel on the host (≤ 1). */
    double alpha = 0.0;

    /** n: number of profitable kernel offloads per time unit. */
    double offloads = 0.0;

    /** o0: host cycles to set up one offload. */
    double setupCycles = 0.0;

    /** Q: mean queuing cycles between host and accelerator per offload. */
    double queueCycles = 0.0;

    /** L: mean cycles to move one offload across the interface. */
    double interfaceCycles = 0.0;

    /** o1: cycles for one thread switch (context switch + cache pollution). */
    double threadSwitchCycles = 0.0;

    /** A: peak accelerator speedup factor (>= 1; 1 models a remote CPU). */
    double accelFactor = 1.0;

    /**
     * Fraction of the kernel's host cycles that are actually offloaded,
     * in [0, 1]. The paper's "Applying" section offloads only those
     * granularities above break-even and scales the offloaded kernel
     * fraction by the count-fraction of profitable offloads
     * (α_eff = α · n_profitable / n_total); residual kernel cycles stay
     * on the host at full cost. 1.0 reproduces the full-offload equations
     * exactly as printed in the paper.
     */
    double offloadedFraction = 1.0;

    /** Acceleration strategy (affects remote latency accounting). */
    Strategy strategy = Strategy::OffChip;

    /**
     * Check parameter domains.
     * @throws FatalError describing the first violated requirement.
     */
    void validate() const;

    /** Kernel cycles on the host when unaccelerated: α·C. */
    double kernelCycles() const { return alpha * hostCycles; }

    /** Offloaded kernel cycles: α·C·offloadedFraction. */
    double offloadedCycles() const
    {
        return kernelCycles() * offloadedFraction;
    }

    /** Kernel cycles that stay on the host: α·C·(1 - offloadedFraction). */
    double residualKernelCycles() const
    {
        return kernelCycles() * (1.0 - offloadedFraction);
    }

    /** Per-offload dispatch overhead o0 + L + Q. */
    double dispatchCycles() const
    {
        return setupCycles + interfaceCycles + queueCycles;
    }
};

} // namespace accel::model

#include "model/queueing.hh"

#include "util/logging.hh"

namespace accel::model {

double
utilization(double serviceCycles, double offloadsPerSec, double clockHz)
{
    require(serviceCycles >= 0, "utilization: negative service time");
    require(offloadsPerSec >= 0, "utilization: negative load");
    require(clockHz > 0, "utilization: clock must be positive");
    return offloadsPerSec * serviceCycles / clockHz;
}

double
mm1WaitCycles(double serviceCycles, double offloadsPerSec, double clockHz)
{
    double rho = utilization(serviceCycles, offloadsPerSec, clockHz);
    require(rho < 1.0, "mm1WaitCycles: utilization >= 1, queue unstable");
    return rho / (1.0 - rho) * serviceCycles;
}

double
md1WaitCycles(double serviceCycles, double offloadsPerSec, double clockHz)
{
    double rho = utilization(serviceCycles, offloadsPerSec, clockHz);
    require(rho < 1.0, "md1WaitCycles: utilization >= 1, queue unstable");
    return 0.5 * rho / (1.0 - rho) * serviceCycles;
}

double
meanQueueCycles(const std::vector<double> &sampledDelays)
{
    if (sampledDelays.empty())
        return 0.0;
    double sum = 0.0;
    for (double d : sampledDelays) {
        require(d >= 0, "meanQueueCycles: negative delay sample");
        sum += d;
    }
    return sum / static_cast<double>(sampledDelays.size());
}

} // namespace accel::model

#include "model/queueing.hh"

#include "util/logging.hh"

namespace accel::model {

double
utilization(double serviceCycles, double offloadsPerSec, double clockHz)
{
    require(serviceCycles >= 0, "utilization: negative service time");
    require(offloadsPerSec >= 0, "utilization: negative load");
    require(clockHz > 0, "utilization: clock must be positive");
    return offloadsPerSec * serviceCycles / clockHz;
}

double
mm1WaitCycles(double serviceCycles, double offloadsPerSec, double clockHz)
{
    double rho = utilization(serviceCycles, offloadsPerSec, clockHz);
    require(rho < 1.0, "mm1WaitCycles: utilization >= 1, queue unstable");
    return rho / (1.0 - rho) * serviceCycles;
}

double
md1WaitCycles(double serviceCycles, double offloadsPerSec, double clockHz)
{
    double rho = utilization(serviceCycles, offloadsPerSec, clockHz);
    require(rho < 1.0, "md1WaitCycles: utilization >= 1, queue unstable");
    return 0.5 * rho / (1.0 - rho) * serviceCycles;
}

double
erlangC(unsigned servers, double offeredLoad)
{
    require(servers >= 1, "erlangC: servers must be >= 1");
    require(offeredLoad >= 0, "erlangC: negative offered load");
    require(offeredLoad < static_cast<double>(servers),
            "erlangC: offered load >= servers, queue unstable");
    if (offeredLoad == 0.0)
        return 0.0;
    double blocking = 1.0; // Erlang-B via the stable recurrence
    for (unsigned i = 1; i <= servers; ++i) {
        blocking = offeredLoad * blocking /
                   (static_cast<double>(i) + offeredLoad * blocking);
    }
    double rho = offeredLoad / static_cast<double>(servers);
    return blocking / (1.0 - rho * (1.0 - blocking));
}

double
mmkWaitCycles(double serviceCycles, double offloadsPerSec, double clockHz,
              unsigned servers)
{
    require(servers >= 1, "mmkWaitCycles: servers must be >= 1");
    double a = utilization(serviceCycles, offloadsPerSec, clockHz);
    require(a < static_cast<double>(servers),
            "mmkWaitCycles: utilization >= servers, queue unstable");
    if (serviceCycles == 0.0 || a == 0.0)
        return 0.0;
    return erlangC(servers, a) * serviceCycles /
           (static_cast<double>(servers) - a);
}

unsigned
minServersForWait(double serviceCycles, double offloadsPerSec,
                  double clockHz, double waitBudgetCycles,
                  unsigned maxServers)
{
    require(maxServers >= 1, "minServersForWait: maxServers must be >= 1");
    require(waitBudgetCycles >= 0,
            "minServersForWait: negative wait budget");
    double a = utilization(serviceCycles, offloadsPerSec, clockHz);
    for (unsigned k = 1; k <= maxServers; ++k) {
        if (a >= static_cast<double>(k))
            continue; // unstable at this k; keep growing
        if (mmkWaitCycles(serviceCycles, offloadsPerSec, clockHz, k) <=
            waitBudgetCycles)
            return k;
    }
    fatal("minServersForWait: no k <= maxServers meets the wait budget");
}

double
meanQueueCycles(const std::vector<double> &sampledDelays)
{
    if (sampledDelays.empty())
        return 0.0;
    double sum = 0.0;
    for (double d : sampledDelays) {
        require(d >= 0, "meanQueueCycles: negative delay sample");
        sum += d;
    }
    return sum / static_cast<double>(sampledDelays.size());
}

} // namespace accel::model

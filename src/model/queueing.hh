/**
 * @file
 * Accelerator queuing helpers.
 *
 * The model's Q parameter is the mean queuing delay per offload; the
 * paper notes that replacing n·Q with Σ Qi models the full queuing
 * distribution, and that Q lets operators project speedup as a function
 * of accelerator load. These helpers derive Q from load (M/M/1 and M/D/1
 * approximations) or from a sampled delay distribution.
 */

#pragma once

#include <vector>

namespace accel::model {

/**
 * Mean M/M/1 queue wait (cycles) for a shared accelerator.
 *
 * @param serviceCycles  mean accelerator service time per offload, cycles
 * @param offloadsPerSec offered load, offloads per second
 * @param clockHz        cycles per second used to convert load to
 *                       utilization
 *
 * @throws FatalError when utilization >= 1 (unstable queue) or inputs
 *         are out of domain.
 */
double mm1WaitCycles(double serviceCycles, double offloadsPerSec,
                     double clockHz);

/**
 * Mean M/D/1 queue wait (cycles): deterministic service, half the M/M/1
 * wait at equal utilization.
 */
double md1WaitCycles(double serviceCycles, double offloadsPerSec,
                     double clockHz);

/** Accelerator utilization ρ = λ·s. @throws FatalError on bad input. */
double utilization(double serviceCycles, double offloadsPerSec,
                   double clockHz);

/**
 * Mean queuing delay from a sampled per-offload delay distribution:
 * the Σ Qi / n form the paper describes.
 */
double meanQueueCycles(const std::vector<double> &sampledDelays);

} // namespace accel::model

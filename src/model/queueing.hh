/**
 * @file
 * Accelerator queuing helpers.
 *
 * The model's Q parameter is the mean queuing delay per offload; the
 * paper notes that replacing n·Q with Σ Qi models the full queuing
 * distribution, and that Q lets operators project speedup as a function
 * of accelerator load. These helpers derive Q from load (M/M/1 and M/D/1
 * approximations) or from a sampled delay distribution.
 */

#pragma once

#include <vector>

namespace accel::model {

/**
 * Mean M/M/1 queue wait (cycles) for a shared accelerator.
 *
 * @param serviceCycles  mean accelerator service time per offload, cycles
 * @param offloadsPerSec offered load, offloads per second
 * @param clockHz        cycles per second used to convert load to
 *                       utilization
 *
 * @throws FatalError when utilization >= 1 (unstable queue) or inputs
 *         are out of domain.
 */
double mm1WaitCycles(double serviceCycles, double offloadsPerSec,
                     double clockHz);

/**
 * Mean M/D/1 queue wait (cycles): deterministic service, half the M/M/1
 * wait at equal utilization.
 */
double md1WaitCycles(double serviceCycles, double offloadsPerSec,
                     double clockHz);

/** Accelerator utilization ρ = λ·s. @throws FatalError on bad input. */
double utilization(double serviceCycles, double offloadsPerSec,
                   double clockHz);

/**
 * Erlang-C: probability an arrival waits in an M/M/k queue.
 *
 * @param servers       k >= 1 parallel servers (tier replicas)
 * @param offeredLoad   a = λ·s in erlangs; must satisfy a < k (stable)
 *
 * Computed via the numerically stable Erlang-B recurrence
 * B(0) = 1, B(i) = a·B(i-1) / (i + a·B(i-1)), then
 * C = B(k) / (1 - ρ·(1 - B(k))) with ρ = a/k — no factorials, no
 * overflow at large k.
 *
 * @throws FatalError when a >= k or inputs are out of domain.
 */
double erlangC(unsigned servers, double offeredLoad);

/**
 * Mean M/M/k queue wait (cycles) for a replicated accelerator tier:
 * Wq = C(k, a) · s / (k − a). This is the analytical counterpart of
 * the simulator's emergent Σ Qi across tier replicas under a
 * load-balancing dispatch policy (the single shared-queue M/M/k is a
 * lower bound for per-replica FIFO queues; round-robin over k
 * separate queues sits between M/M/k and k independent M/M/1s).
 * With servers == 1 this reduces exactly to mm1WaitCycles.
 *
 * @param serviceCycles  mean per-replica service time, cycles
 * @param offloadsPerSec offered load across the tier, offloads/s
 * @param clockHz        cycles per second
 * @param servers        replica count k >= 1
 *
 * @throws FatalError when total utilization >= 1 (unstable) or inputs
 *         are out of domain.
 */
double mmkWaitCycles(double serviceCycles, double offloadsPerSec,
                     double clockHz, unsigned servers);

/**
 * Mean queuing delay from a sampled per-offload delay distribution:
 * the Σ Qi / n form the paper describes.
 */
double meanQueueCycles(const std::vector<double> &sampledDelays);

/**
 * Smallest replica count k whose M/M/k mean queue wait is at or below
 * @p waitBudgetCycles at the given offered load — the static
 * provisioning answer an SLO-driven autoscaler is compared against
 * (provision for the peak once, versus track demand).
 *
 * @param serviceCycles    mean per-replica service time, cycles
 * @param offloadsPerSec   offered load across the tier, offloads/s
 * @param clockHz          cycles per second
 * @param waitBudgetCycles mean-wait budget in cycles (>= 0)
 * @param maxServers       search cap; k <= maxServers
 *
 * @throws FatalError when inputs are out of domain or no k within the
 *         cap stabilises the queue and meets the budget.
 */
unsigned minServersForWait(double serviceCycles, double offloadsPerSec,
                           double clockHz, double waitBudgetCycles,
                           unsigned maxServers = 1024);

} // namespace accel::model

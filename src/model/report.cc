#include "model/report.hh"

#include <sstream>

#include "util/table.hh"
#include "util/units.hh"

namespace accel::model {

const std::vector<ThreadingDesign> &
reportedDesigns()
{
    static const std::vector<ThreadingDesign> designs = {
        ThreadingDesign::Sync,
        ThreadingDesign::SyncOS,
        ThreadingDesign::AsyncSameThread,
        ThreadingDesign::AsyncDistinctThread,
        ThreadingDesign::AsyncNoResponse,
    };
    return designs;
}

std::string
projectionReport(const Params &params, const std::string &title)
{
    Accelerometer model(params);
    std::ostringstream os;
    if (!title.empty())
        os << title << "\n";
    os << "strategy=" << toString(params.strategy)
       << "  C=" << formatCount(params.hostCycles)
       << "  alpha=" << fmtF(params.alpha, 4)
       << "  n=" << formatCount(params.offloads)
       << "  o0=" << fmtF(params.setupCycles, 0)
       << "  Q=" << fmtF(params.queueCycles, 0)
       << "  L=" << fmtF(params.interfaceCycles, 0)
       << "  o1=" << fmtF(params.threadSwitchCycles, 0)
       << "  A=" << fmtF(params.accelFactor, 2)
       << "  offloaded=" << fmtPct(params.offloadedFraction, 1) << "\n";

    TextTable table({"threading design", "speedup", "latency reduction"});
    table.setAlign(1, Align::Right);
    table.setAlign(2, Align::Right);
    for (ThreadingDesign d : reportedDesigns()) {
        Projection proj = model.project(d);
        table.addRow({toString(d),
                      fmtPct(proj.speedup - 1.0, 2),
                      fmtPct(proj.latencyReduction - 1.0, 2)});
    }
    table.addSeparator();
    table.addRow({"ideal (Amdahl)",
                  fmtPct(model.idealSpeedup() - 1.0, 2),
                  fmtPct(model.idealSpeedup() - 1.0, 2)});
    os << table.str();
    return os.str();
}

std::string
projectionLine(const Params &params, ThreadingDesign design)
{
    Accelerometer model(params);
    Projection proj = model.project(design);
    std::ostringstream os;
    os << toString(design) << ": speedup " << fmtPct(proj.speedup - 1.0, 2)
       << ", latency reduction " << fmtPct(proj.latencyReduction - 1.0, 2);
    return os.str();
}

} // namespace accel::model

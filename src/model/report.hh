/**
 * @file
 * Human-readable model reports: the textual equivalent of the artifact's
 * "run the model on a config, print the estimated speedup".
 */

#pragma once

#include <string>
#include <vector>

#include "model/accelerometer.hh"

namespace accel::model {

/**
 * Render a table of speedup and latency reduction across threading
 * designs for one parameter set, including the Amdahl ideal.
 */
std::string projectionReport(const Params &params,
                             const std::string &title = "");

/**
 * Render a one-line summary for a single design, e.g.
 * "Sync: speedup 15.7%, latency reduction 15.7%".
 */
std::string projectionLine(const Params &params, ThreadingDesign design);

/** The designs a report covers, in display order. */
const std::vector<ThreadingDesign> &reportedDesigns();

} // namespace accel::model

#include "model/sensitivity.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"
#include "util/units.hh"

namespace accel::model {

namespace {

/** A perturbable parameter: name + member accessor. */
struct Knob
{
    const char *name;
    double Params::*field;
    double lowerBound; //!< clamp for the negative perturbation
    double upperBound; //!< clamp for the positive perturbation
};

constexpr double kUnbounded = std::numeric_limits<double>::infinity();

const Knob kKnobs[] = {
    {"alpha", &Params::alpha, 0.0, 1.0},
    {"n", &Params::offloads, 0.0, kUnbounded},
    {"o0", &Params::setupCycles, 0.0, kUnbounded},
    {"Q", &Params::queueCycles, 0.0, kUnbounded},
    {"L", &Params::interfaceCycles, 0.0, kUnbounded},
    {"o1", &Params::threadSwitchCycles, 0.0, kUnbounded},
    {"A", &Params::accelFactor, 1.0, kUnbounded},
    {"offloaded_fraction", &Params::offloadedFraction, 0.0, 1.0},
};

double
speedupAt(const Params &params, ThreadingDesign design)
{
    Accelerometer model(params);
    return model.speedup(design);
}

} // namespace

std::vector<Sensitivity>
speedupSensitivities(const Params &params, ThreadingDesign design,
                     double relStep)
{
    require(relStep > 0, "speedupSensitivities: step must be positive");
    params.validate();
    double base = speedupAt(params, design);

    // Knobs are independent central differences; fan them out across
    // the pool with each knob writing its own slot.
    constexpr size_t kKnobCount = std::size(kKnobs);
    std::vector<Sensitivity> out(kKnobCount);
    parallelFor(kKnobCount, [&](size_t k) {
        const Knob &knob = kKnobs[k];
        double value = params.*(knob.field);
        double step = value != 0 ? std::abs(value) * relStep : relStep;

        Params up = params;
        up.*(knob.field) = std::min(knob.upperBound, value + step);
        Params down = params;
        down.*(knob.field) = std::max(knob.lowerBound, value - step);
        double actual_span = up.*(knob.field) - down.*(knob.field);
        ensure(actual_span > 0, "speedupSensitivities: zero span");

        double derivative =
            (speedupAt(up, design) - speedupAt(down, design)) /
            actual_span;
        double elasticity =
            value != 0 ? derivative * value / base : 0.0;
        out[k] = {knob.name, value, derivative, elasticity};
    });
    std::sort(out.begin(), out.end(),
              [](const Sensitivity &a, const Sensitivity &b) {
                  return std::abs(a.elasticity) > std::abs(b.elasticity);
              });
    return out;
}

std::string
sensitivityReport(const Params &params, ThreadingDesign design)
{
    auto sens = speedupSensitivities(params, design);
    TextTable table({"parameter", "value", "d(speedup)/d(param)",
                     "elasticity"});
    for (size_t c = 1; c <= 3; ++c)
        table.setAlign(c, Align::Right);
    for (const Sensitivity &s : sens) {
        std::string value = s.value < 1000 ? fmtF(s.value, 4)
                                           : formatCount(s.value);
        table.addRow({s.parameter, value, fmtF(s.derivative, 8),
                      fmtF(s.elasticity, 4)});
    }
    return "sensitivity of " + toString(design) + " speedup\n" +
           table.str();
}

} // namespace accel::model

/**
 * @file
 * Parameter sensitivity analysis.
 *
 * Architects asking "which parameter should I fight for?" need more
 * than a point estimate: this module ranks model parameters by their
 * elasticity — the relative change in projected speedup per relative
 * change in the parameter — via central finite differences. A large
 * |elasticity| for L says the interface dominates; a near-zero one for
 * A says a faster device buys nothing (the paper's Fig. 20 lesson,
 * quantified per parameter).
 */

#pragma once

#include <string>
#include <vector>

#include "model/accelerometer.hh"

namespace accel::model {

/** Sensitivity of the projected speedup to one parameter. */
struct Sensitivity
{
    std::string parameter; //!< "alpha", "n", "o0", "Q", "L", "o1", "A"
    double value;          //!< the parameter's current value

    /** d(speedup)/d(param), central difference. */
    double derivative;

    /**
     * Elasticity: (param / speedup) · d(speedup)/d(param). Zero-valued
     * parameters have zero elasticity by construction; consult the
     * derivative for them.
     */
    double elasticity;
};

/**
 * Compute sensitivities of the speedup under @p design for every model
 * parameter, ranked by |elasticity| descending.
 *
 * @param relStep relative perturbation for the finite difference
 *                (absolute step of @p relStep for zero-valued params)
 *
 * @throws FatalError for invalid params or non-positive step.
 */
std::vector<Sensitivity>
speedupSensitivities(const Params &params, ThreadingDesign design,
                     double relStep = 1e-4);

/** Render the ranking as a table. */
std::string sensitivityReport(const Params &params,
                              ThreadingDesign design);

} // namespace accel::model

#include "model/sweep.hh"

#include <cmath>
#include <string>

#include "model/queueing.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace accel::model {

std::vector<double>
linspace(double lo, double hi, size_t count)
{
    require(count >= 2, "linspace: need at least two points");
    require(hi >= lo, "linspace: hi must be >= lo");
    std::vector<double> xs(count);
    double step = (hi - lo) / static_cast<double>(count - 1);
    for (size_t i = 0; i < count; ++i)
        xs[i] = lo + step * static_cast<double>(i);
    return xs;
}

std::vector<double>
logspace(double lo, double hi, size_t count)
{
    require(count >= 2, "logspace: need at least two points");
    require(lo > 0 && hi >= lo, "logspace: need 0 < lo <= hi");
    std::vector<double> xs(count);
    double ratio = std::pow(hi / lo, 1.0 / static_cast<double>(count - 1));
    double v = lo;
    for (size_t i = 0; i < count; ++i) {
        xs[i] = v;
        v *= ratio;
    }
    return xs;
}

std::vector<SweepPoint>
sweep(const Params &base, ThreadingDesign design,
      const std::vector<double> &xs,
      const std::function<void(Params &, double)> &apply)
{
    // Each point is a pure function of (base, design, xs[i]); evaluate
    // them across the worker pool, each writing its own pre-sized slot
    // so the result is bit-identical to the serial loop.
    std::vector<SweepPoint> points(xs.size());
    parallelFor(xs.size(), [&](size_t i) {
        Params p = base;
        apply(p, xs[i]);
        Accelerometer model(p);
        points[i] = {xs[i], model.project(design)};
    });
    return points;
}

std::vector<SweepPoint>
sweepAccelFactor(const Params &base, ThreadingDesign design,
                 const std::vector<double> &factors)
{
    return sweep(base, design, factors,
                 [](Params &p, double x) { p.accelFactor = x; });
}

std::vector<SweepPoint>
sweepInterfaceLatency(const Params &base, ThreadingDesign design,
                      const std::vector<double> &latencies)
{
    return sweep(base, design, latencies,
                 [](Params &p, double x) { p.interfaceCycles = x; });
}

std::vector<SweepPoint>
sweepOffloads(const Params &base, ThreadingDesign design,
              const std::vector<double> &counts)
{
    return sweep(base, design, counts,
                 [](Params &p, double x) { p.offloads = x; });
}

std::vector<SweepPoint>
sweepAlpha(const Params &base, ThreadingDesign design,
           const std::vector<double> &alphas)
{
    return sweep(base, design, alphas,
                 [](Params &p, double x) { p.alpha = x; });
}

std::vector<SweepPoint>
sweepLoad(const Params &base, ThreadingDesign design, double serviceCycles,
          double clockHz, const std::vector<double> &loads,
          size_t *omittedOut)
{
    // Stability is a cheap test; run it first so the parallel phase
    // evaluates exactly the surviving loads, in input order.
    std::vector<double> stable;
    stable.reserve(loads.size());
    for (double load : loads) {
        if (utilization(serviceCycles, load, clockHz) < 1.0)
            stable.push_back(load);
    }
    size_t omitted = loads.size() - stable.size();
    if (omittedOut != nullptr)
        *omittedOut = omitted;
    if (omitted > 0) {
        warn("sweepLoad: omitted " + std::to_string(omitted) + " of " +
             std::to_string(loads.size()) +
             " load points with utilization >= 1 (accelerator saturated)");
    }

    std::vector<SweepPoint> points(stable.size());
    parallelFor(stable.size(), [&](size_t i) {
        double load = stable[i];
        Params p = base;
        p.offloads = load;
        p.queueCycles = mm1WaitCycles(serviceCycles, load, clockHz);
        Accelerometer model(p);
        points[i] = {load, model.project(design)};
    });
    return points;
}

} // namespace accel::model

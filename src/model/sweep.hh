/**
 * @file
 * Parameter sweeps over the Accelerometer model.
 *
 * Architects use these to see where speedup saturates or collapses as a
 * single parameter varies (paper §3 "Applying the Accelerometer model"):
 * accelerator factor A, interface latency L, offload count n, kernel
 * fraction α, and accelerator load (via M/M/1-derived Q).
 */

#pragma once

#include <functional>
#include <vector>

#include "model/accelerometer.hh"

namespace accel::model {

/** One sweep sample: the independent variable and both projections. */
struct SweepPoint
{
    double x;
    Projection projection;
};

/** Evenly spaced values in [lo, hi] (inclusive); count >= 2. */
std::vector<double> linspace(double lo, double hi, size_t count);

/** Logarithmically spaced values in [lo, hi]; requires 0 < lo <= hi. */
std::vector<double> logspace(double lo, double hi, size_t count);

/**
 * Generic sweep: for each x, @p apply mutates a copy of @p base, then the
 * model is evaluated under @p design.
 *
 * Points are evaluated on the global worker pool (see
 * util/thread_pool.hh; ACCEL_JOBS controls the width). Results are
 * written by input index, so the vector is bit-identical to a serial
 * evaluation for every worker count. @p apply must be safe to call
 * concurrently on distinct Params copies.
 */
std::vector<SweepPoint>
sweep(const Params &base, ThreadingDesign design,
      const std::vector<double> &xs,
      const std::function<void(Params &, double)> &apply);

/** Sweep the accelerator speedup factor A. */
std::vector<SweepPoint>
sweepAccelFactor(const Params &base, ThreadingDesign design,
                 const std::vector<double> &factors);

/** Sweep the interface latency L (cycles). */
std::vector<SweepPoint>
sweepInterfaceLatency(const Params &base, ThreadingDesign design,
                      const std::vector<double> &latencies);

/** Sweep the number of offloads per time unit n. */
std::vector<SweepPoint>
sweepOffloads(const Params &base, ThreadingDesign design,
              const std::vector<double> &counts);

/** Sweep the kernel fraction α. */
std::vector<SweepPoint>
sweepAlpha(const Params &base, ThreadingDesign design,
           const std::vector<double> &alphas);

/**
 * Sweep accelerator load: for each offered load (offloads/s), Q is set
 * from the M/M/1 wait at that load and n is set to the load. Points with
 * utilization >= 1 (a saturated accelerator has no finite steady-state
 * wait) are omitted with a warning; pass @p omittedOut to observe how
 * many inputs were dropped — a fully saturated sweep returns an empty
 * vector, which is otherwise indistinguishable from empty input.
 *
 * @param serviceCycles  accelerator service time per offload
 * @param clockHz        host clock in cycles per second
 * @param omittedOut     optional out-count of omitted load points
 */
std::vector<SweepPoint>
sweepLoad(const Params &base, ThreadingDesign design, double serviceCycles,
          double clockHz, const std::vector<double> &loads,
          size_t *omittedOut = nullptr);

} // namespace accel::model

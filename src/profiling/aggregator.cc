#include "profiling/aggregator.hh"

namespace accel::profiling {

using workload::ClibLeaf;
using workload::CopyOrigin;
using workload::Functionality;
using workload::KernelLeaf;
using workload::LeafCategory;
using workload::MemoryLeaf;
using workload::SyncLeaf;

namespace {

/** Map a trace's functionality to a Fig. 4 copy origin. */
CopyOrigin
originOf(Functionality f)
{
    switch (f) {
      case Functionality::SecureInsecureIO:
        return CopyOrigin::SecureInsecureIO;
      case Functionality::IOPrePostProcessing:
        return CopyOrigin::IOPrePostProcessing;
      case Functionality::Serialization:
        return CopyOrigin::Serialization;
      default:
        // The paper attributes all remaining copy sources to
        // application-logic execution.
        return CopyOrigin::ApplicationLogic;
    }
}

} // namespace

void
Aggregator::add(const CallTrace &trace)
{
    const std::string &leaf_name = trace.leafFrame();
    LeafCategory leaf = leafTagger_.tag(leaf_name);
    Functionality func = functionalityTagger_.tag(trace);

    ++traces_;
    totalCycles_ += trace.cycles;
    leaf_[leaf].cycles += trace.cycles;
    leaf_[leaf].instructions += trace.instructions;
    functionality_[func].cycles += trace.cycles;
    functionality_[func].instructions += trace.instructions;

    if (auto m = leafTagger_.memoryLeaf(leaf_name)) {
        memory_[*m] += trace.cycles;
        if (*m == MemoryLeaf::Copy)
            copyOrigin_[originOf(func)] += trace.cycles;
    }
    if (auto k = leafTagger_.kernelLeaf(leaf_name))
        kernel_[*k] += trace.cycles;
    if (auto s = leafTagger_.syncLeaf(leaf_name))
        sync_[*s] += trace.cycles;
    if (auto c = leafTagger_.clibLeaf(leaf_name))
        clib_[*c] += trace.cycles;
}

void
Aggregator::addAll(const std::vector<CallTrace> &traces)
{
    for (const CallTrace &t : traces)
        add(t);
}

template <typename Category>
std::map<Category, double>
Aggregator::toPercent(const std::map<Category, double> &cycles)
{
    double total = 0;
    for (const auto &[cat, c] : cycles)
        total += c;
    std::map<Category, double> out;
    if (total <= 0)
        return out;
    for (const auto &[cat, c] : cycles)
        out[cat] = 100.0 * c / total;
    return out;
}

std::map<LeafCategory, double>
Aggregator::leafBreakdown() const
{
    std::map<LeafCategory, double> cycles;
    for (const auto &[cat, totals] : leaf_)
        cycles[cat] = totals.cycles;
    return toPercent(cycles);
}

std::map<Functionality, double>
Aggregator::functionalityBreakdown() const
{
    std::map<Functionality, double> cycles;
    for (const auto &[cat, totals] : functionality_)
        cycles[cat] = totals.cycles;
    return toPercent(cycles);
}

std::map<MemoryLeaf, double>
Aggregator::memoryBreakdown() const
{
    return toPercent(memory_);
}

std::map<KernelLeaf, double>
Aggregator::kernelBreakdown() const
{
    return toPercent(kernel_);
}

std::map<SyncLeaf, double>
Aggregator::syncBreakdown() const
{
    return toPercent(sync_);
}

std::map<ClibLeaf, double>
Aggregator::clibBreakdown() const
{
    return toPercent(clib_);
}

std::map<CopyOrigin, double>
Aggregator::copyOriginBreakdown() const
{
    return toPercent(copyOrigin_);
}

} // namespace accel::profiling

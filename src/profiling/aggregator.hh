/**
 * @file
 * Aggregation of tagged traces into the paper's breakdowns.
 *
 * Mirrors the second half of the paper's methodology: cycles and
 * instructions are pooled per category, yielding percentage breakdowns
 * (Figs. 1-7, 9) and per-category IPC (Figs. 8, 10).
 */

#pragma once

#include <map>
#include <vector>

#include "profiling/call_trace.hh"
#include "profiling/taggers.hh"
#include "workload/categories.hh"

namespace accel::profiling {

/** Cycles + instructions accumulated for one category. */
struct CategoryTotals
{
    double cycles = 0.0;
    double instructions = 0.0;

    /** Aggregate IPC = Σ instructions / Σ cycles. */
    double ipc() const { return cycles > 0 ? instructions / cycles : 0.0; }
};

/** Aggregated view of a trace stream. */
class Aggregator
{
  public:
    Aggregator() = default;

    /** Tag and accumulate one trace. */
    void add(const CallTrace &trace);

    /** Tag and accumulate a batch. */
    void addAll(const std::vector<CallTrace> &traces);

    /** Total cycles observed. */
    double totalCycles() const { return totalCycles_; }

    /** Number of traces observed. */
    std::uint64_t traceCount() const { return traces_; }

    /** % of total cycles per leaf category (Fig. 2). */
    std::map<workload::LeafCategory, double> leafBreakdown() const;

    /** % of total cycles per functionality (Fig. 9). */
    std::map<workload::Functionality, double>
    functionalityBreakdown() const;

    /** % of memory-leaf cycles per memory sub-leaf (Fig. 3). */
    std::map<workload::MemoryLeaf, double> memoryBreakdown() const;

    /** % of kernel-leaf cycles per kernel sub-leaf (Fig. 5). */
    std::map<workload::KernelLeaf, double> kernelBreakdown() const;

    /** % of sync-leaf cycles per sync sub-leaf (Fig. 6). */
    std::map<workload::SyncLeaf, double> syncBreakdown() const;

    /** % of C-library cycles per C-library sub-leaf (Fig. 7). */
    std::map<workload::ClibLeaf, double> clibBreakdown() const;

    /** % of memory-copy cycles per originating functionality (Fig. 4). */
    std::map<workload::CopyOrigin, double> copyOriginBreakdown() const;

    /** Per-leaf-category totals (IPC for Fig. 8). */
    const std::map<workload::LeafCategory, CategoryTotals> &
    leafTotals() const
    {
        return leaf_;
    }

    /** Per-functionality totals (IPC for Fig. 10). */
    const std::map<workload::Functionality, CategoryTotals> &
    functionalityTotals() const
    {
        return functionality_;
    }

  private:
    LeafTagger leafTagger_;
    FunctionalityTagger functionalityTagger_;

    double totalCycles_ = 0.0;
    std::uint64_t traces_ = 0;
    std::map<workload::LeafCategory, CategoryTotals> leaf_;
    std::map<workload::Functionality, CategoryTotals> functionality_;
    std::map<workload::MemoryLeaf, double> memory_;
    std::map<workload::KernelLeaf, double> kernel_;
    std::map<workload::SyncLeaf, double> sync_;
    std::map<workload::ClibLeaf, double> clib_;
    std::map<workload::CopyOrigin, double> copyOrigin_;

    template <typename Category>
    static std::map<Category, double>
    toPercent(const std::map<Category, double> &cycles);
};

} // namespace accel::profiling

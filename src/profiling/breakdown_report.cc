#include "profiling/breakdown_report.hh"

#include <cmath>
#include <sstream>

#include "profiling/sampler.hh"
#include "util/table.hh"
#include "workload/categories.hh"

namespace accel::profiling {

template <typename Category>
std::string
shareBlock(const std::string &title,
           const std::map<Category, double> &shares, size_t barWidth)
{
    std::ostringstream os;
    os << title << "\n";
    TextTable table({"category", "%", "share"});
    table.setAlign(1, Align::Right);
    for (const auto &[cat, pct] : shares) {
        if (pct < 0.05)
            continue;
        table.addRow({toString(cat), fmtF(pct, 1),
                      percentBar(pct, barWidth)});
    }
    os << table.str();
    return os.str();
}

template <typename Category>
std::string
comparisonBlock(const std::string &title,
                const std::map<Category, double> &paper,
                const std::map<Category, double> &recovered)
{
    std::ostringstream os;
    os << title << "\n";
    TextTable table({"category", "paper %", "recovered %", "|diff|"});
    for (size_t c = 1; c <= 3; ++c)
        table.setAlign(c, Align::Right);
    for (const auto &[cat, pct] : paper) {
        double rec = 0;
        auto it = recovered.find(cat);
        if (it != recovered.end())
            rec = it->second;
        if (pct < 0.05 && rec < 0.05)
            continue;
        table.addRow({toString(cat), fmtF(pct, 1), fmtF(rec, 1),
                      fmtF(std::abs(pct - rec), 1)});
    }
    os << table.str();
    return os.str();
}

// Explicit instantiations for the category types the benches use.
#define ACCEL_INSTANTIATE_REPORT(Category)                                 \
    template std::string shareBlock<Category>(                             \
        const std::string &, const std::map<Category, double> &, size_t);  \
    template std::string comparisonBlock<Category>(                        \
        const std::string &, const std::map<Category, double> &,           \
        const std::map<Category, double> &)

ACCEL_INSTANTIATE_REPORT(workload::LeafCategory);
ACCEL_INSTANTIATE_REPORT(workload::Functionality);
ACCEL_INSTANTIATE_REPORT(workload::MemoryLeaf);
ACCEL_INSTANTIATE_REPORT(workload::CopyOrigin);
ACCEL_INSTANTIATE_REPORT(workload::KernelLeaf);
ACCEL_INSTANTIATE_REPORT(workload::SyncLeaf);
ACCEL_INSTANTIATE_REPORT(workload::ClibLeaf);

#undef ACCEL_INSTANTIATE_REPORT

Aggregator
profileService(workload::ServiceId id, workload::CpuGen gen,
               std::uint64_t seed, size_t traceCount)
{
    TraceSampler sampler(workload::profile(id), gen, seed);
    Aggregator agg;
    for (size_t i = 0; i < traceCount; ++i)
        agg.add(sampler.sample());
    return agg;
}

} // namespace accel::profiling

/**
 * @file
 * Figure-shaped textual reports: render encoded profile tables and
 * pipeline-recovered breakdowns side by side, the way the paper's
 * figures present them.
 */

#pragma once

#include <map>
#include <string>

#include "profiling/aggregator.hh"
#include "workload/platforms.hh"
#include "workload/profiles.hh"

namespace accel::profiling {

/**
 * Render one service's share map as a labeled bar block, e.g.
 *
 *     Web
 *       Memory            37.0  ####################
 */
template <typename Category>
std::string
shareBlock(const std::string &title,
           const std::map<Category, double> &shares, size_t barWidth = 40);

/**
 * Render encoded (paper) vs recovered (pipeline) shares side by side
 * with the absolute difference per category.
 */
template <typename Category>
std::string
comparisonBlock(const std::string &title,
                const std::map<Category, double> &paper,
                const std::map<Category, double> &recovered);

/**
 * Run the full pipeline for a service — sample traces, tag, aggregate —
 * and return the aggregator. @p traceCount controls sampling precision.
 */
Aggregator profileService(workload::ServiceId id, workload::CpuGen gen,
                          std::uint64_t seed, size_t traceCount = 200000);

} // namespace accel::profiling

#include "profiling/call_trace.hh"

#include "util/logging.hh"

namespace accel::profiling {

const std::string &
CallTrace::leafFrame() const
{
    require(!frames.empty(), "CallTrace: no frames");
    return frames.back();
}

double
CallTrace::ipc() const
{
    if (cycles <= 0)
        return 0.0;
    return instructions / cycles;
}

} // namespace accel::profiling

/**
 * @file
 * Call traces: the unit of profiling data.
 *
 * Mirrors what Strobelight gives the paper's authors: a stack of frames
 * from thread entry down to a leaf function, annotated with the cycles
 * and instructions attributed to it.
 */

#pragma once

#include <string>
#include <vector>

namespace accel::profiling {

/** One sampled call trace. */
struct CallTrace
{
    /** Frames ordered outermost (thread entry) to innermost (leaf). */
    std::vector<std::string> frames;

    /** Cycles attributed to this trace. */
    double cycles = 0.0;

    /** Retired instructions attributed to this trace. */
    double instructions = 0.0;

    /** The leaf (innermost) frame. @throws FatalError when empty. */
    const std::string &leafFrame() const;

    /** IPC of this trace; 0 when no cycles were recorded. */
    double ipc() const;
};

} // namespace accel::profiling

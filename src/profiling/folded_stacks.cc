#include "profiling/folded_stacks.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "util/string_utils.hh"

namespace accel::profiling {

std::vector<FoldedStack>
foldStacks(const std::vector<CallTrace> &traces)
{
    std::map<std::string, double> folded;
    for (const CallTrace &trace : traces)
        folded[join(trace.frames, ";")] += trace.cycles;

    std::vector<FoldedStack> out;
    out.reserve(folded.size());
    for (auto &[stack, cycles] : folded)
        out.push_back({stack, cycles});
    std::sort(out.begin(), out.end(),
              [](const FoldedStack &a, const FoldedStack &b) {
                  if (a.cycles != b.cycles)
                      return a.cycles > b.cycles;
                  return a.stack < b.stack;
              });
    return out;
}

std::string
foldedStacksText(const std::vector<CallTrace> &traces, size_t maxStacks)
{
    auto folded = foldStacks(traces);
    if (maxStacks > 0 && folded.size() > maxStacks)
        folded.resize(maxStacks);
    std::ostringstream os;
    for (const FoldedStack &f : folded) {
        os << f.stack << " "
           << static_cast<long long>(std::llround(f.cycles)) << "\n";
    }
    return os.str();
}

} // namespace accel::profiling

/**
 * @file
 * Folded-stack output (Brendan Gregg's flame-graph input format).
 *
 * Production profilers like Strobelight emit "frame;frame;leaf count"
 * lines that flamegraph.pl turns into flame graphs. This module folds a
 * trace stream into that format so sampled workloads can be inspected
 * with standard tooling.
 */

#pragma once

#include <string>
#include <vector>

#include "profiling/call_trace.hh"

namespace accel::profiling {

/** One folded stack with its aggregate cycle weight. */
struct FoldedStack
{
    std::string stack; //!< "frame;frame;leaf"
    double cycles;
};

/**
 * Aggregate traces by their full stack, descending by cycles.
 * Identical stacks merge; frame names keep their order, joined by ';'.
 */
std::vector<FoldedStack>
foldStacks(const std::vector<CallTrace> &traces);

/**
 * Render folded stacks as flamegraph.pl input: one
 * "stack cycle-count\n" line per unique stack (counts rounded).
 *
 * @param maxStacks keep only the heaviest stacks (0 = all)
 */
std::string foldedStacksText(const std::vector<CallTrace> &traces,
                             size_t maxStacks = 0);

} // namespace accel::profiling

#include "profiling/sampler.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace accel::profiling {

using workload::ClibLeaf;
using workload::Functionality;
using workload::KernelLeaf;
using workload::LeafCategory;
using workload::MemoryLeaf;
using workload::SyncLeaf;

namespace {

constexpr size_t kNumF = 10; // functionalities
constexpr size_t kNumL = 9;  // leaf categories

/**
 * Affinity mask: how plausible a leaf category is under a
 * functionality. A small floor keeps every cell reachable so IPF can
 * always satisfy both marginals.
 */
double
affinity(Functionality f, LeafCategory l)
{
    constexpr double floor = 0.02;
    switch (f) {
      case Functionality::SecureInsecureIO:
        if (l == LeafCategory::Kernel)
            return 3.0;
        if (l == LeafCategory::Ssl)
            return 5.0;
        if (l == LeafCategory::Memory)
            return 1.0;
        if (l == LeafCategory::Synchronization)
            return 0.5;
        if (l == LeafCategory::Hashing)
            return 0.5;
        break;
      case Functionality::IOPrePostProcessing:
        if (l == LeafCategory::Memory)
            return 4.0;
        if (l == LeafCategory::CLibraries)
            return 1.0;
        if (l == LeafCategory::Kernel)
            return 1.0;
        break;
      case Functionality::Compression:
        if (l == LeafCategory::Zstd)
            return 6.0;
        if (l == LeafCategory::Memory)
            return 0.5;
        break;
      case Functionality::Serialization:
        if (l == LeafCategory::Memory)
            return 2.0;
        if (l == LeafCategory::CLibraries)
            return 2.0;
        if (l == LeafCategory::Hashing)
            return 0.3;
        break;
      case Functionality::FeatureExtraction:
        if (l == LeafCategory::CLibraries)
            return 3.0;
        if (l == LeafCategory::Memory)
            return 2.0;
        if (l == LeafCategory::Math)
            return 1.0;
        break;
      case Functionality::PredictionRanking:
        if (l == LeafCategory::Math)
            return 6.0;
        if (l == LeafCategory::CLibraries)
            return 2.0;
        if (l == LeafCategory::Memory)
            return 1.0;
        break;
      case Functionality::ApplicationLogic:
        if (l == LeafCategory::Memory)
            return 2.0;
        if (l == LeafCategory::CLibraries)
            return 2.0;
        if (l == LeafCategory::Hashing)
            return 1.0;
        if (l == LeafCategory::Synchronization)
            return 1.0;
        if (l == LeafCategory::Miscellaneous)
            return 1.0;
        break;
      case Functionality::Logging:
        if (l == LeafCategory::Memory)
            return 1.0;
        if (l == LeafCategory::CLibraries)
            return 1.5;
        if (l == LeafCategory::Zstd)
            return 0.5;
        break;
      case Functionality::ThreadPoolManagement:
        if (l == LeafCategory::Synchronization)
            return 4.0;
        if (l == LeafCategory::Kernel)
            return 2.0;
        break;
      case Functionality::Miscellaneous:
        return 0.5;
    }
    return floor;
}

} // namespace

size_t
JointDistribution::index(Functionality f, LeafCategory l)
{
    return static_cast<size_t>(f) * kNumL + static_cast<size_t>(l);
}

JointDistribution::JointDistribution(
    const workload::ServiceProfile &profile, int iterations)
{
    const auto &fs = workload::allFunctionalities();
    const auto &ls = workload::allLeafCategories();
    ensure(fs.size() == kNumF && ls.size() == kNumL,
           "JointDistribution: category count drift");

    cells_.assign(kNumF * kNumL, 0.0);
    for (Functionality f : fs)
        for (LeafCategory l : ls)
            cells_[index(f, l)] = affinity(f, l);

    std::vector<double> row_target(kNumF), col_target(kNumL);
    for (Functionality f : fs) {
        row_target[static_cast<size_t>(f)] =
            profile.functionalityShare.at(f) / 100.0;
    }
    for (LeafCategory l : ls) {
        col_target[static_cast<size_t>(l)] =
            profile.leafShare.at(l) / 100.0;
    }

    // Iterative proportional fitting: alternately scale rows and
    // columns to their targets. Zero-target rows/columns collapse to 0.
    for (int it = 0; it < iterations; ++it) {
        for (size_t r = 0; r < kNumF; ++r) {
            double sum = 0;
            for (size_t c = 0; c < kNumL; ++c)
                sum += cells_[r * kNumL + c];
            double scale = sum > 0 ? row_target[r] / sum : 0.0;
            for (size_t c = 0; c < kNumL; ++c)
                cells_[r * kNumL + c] *= scale;
        }
        for (size_t c = 0; c < kNumL; ++c) {
            double sum = 0;
            for (size_t r = 0; r < kNumF; ++r)
                sum += cells_[r * kNumL + c];
            double scale = sum > 0 ? col_target[c] / sum : 0.0;
            for (size_t r = 0; r < kNumF; ++r)
                cells_[r * kNumL + c] *= scale;
        }
    }

    double total = 0;
    for (double v : cells_)
        total += v;
    ensure(total > 0, "JointDistribution: IPF collapsed to zero");
    for (double &v : cells_)
        v /= total;

    cumulative_.resize(cells_.size());
    double cum = 0;
    for (size_t i = 0; i < cells_.size(); ++i) {
        cum += cells_[i];
        cumulative_[i] = cum;
    }
    cumulative_.back() = 1.0;
}

double
JointDistribution::mass(Functionality f, LeafCategory l) const
{
    return cells_[index(f, l)];
}

double
JointDistribution::functionalityMass(Functionality f) const
{
    double sum = 0;
    for (LeafCategory l : workload::allLeafCategories())
        sum += mass(f, l);
    return sum;
}

double
JointDistribution::leafMass(LeafCategory l) const
{
    double sum = 0;
    for (Functionality f : workload::allFunctionalities())
        sum += mass(f, l);
    return sum;
}

std::pair<Functionality, LeafCategory>
JointDistribution::sample(Rng &rng) const
{
    double u = rng.uniform();
    auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    size_t i = std::min(static_cast<size_t>(it - cumulative_.begin()),
                        cells_.size() - 1);
    return {static_cast<Functionality>(i / kNumL),
            static_cast<LeafCategory>(i % kNumL)};
}

TraceSampler::TraceSampler(const workload::ServiceProfile &profile,
                           workload::CpuGen gen, std::uint64_t seed)
    : profile_(profile), gen_(gen), joint_(profile),
      rng_(seed, 0xa02bdbf7bb3c0a7ULL)
{
}

namespace {

/** Draw a key from a percentage share map. */
template <typename Category>
Category
drawShare(const workload::ShareMap<Category> &shares, Rng &rng)
{
    double u = rng.uniform(0.0, 100.0);
    double cum = 0;
    Category last{};
    for (const auto &[cat, pct] : shares) {
        cum += pct;
        last = cat;
        if (u < cum)
            return cat;
    }
    return last;
}

std::string
memoryLeafName(MemoryLeaf m)
{
    switch (m) {
      case MemoryLeaf::Copy:
        return "__memcpy_avx_unaligned";
      case MemoryLeaf::Free:
        return "tc_free";
      case MemoryLeaf::Allocation:
        return "tc_malloc";
      case MemoryLeaf::Move:
        return "__memmove_avx_unaligned";
      case MemoryLeaf::Set:
        return "__memset_avx2";
      case MemoryLeaf::Compare:
        return "__memcmp_sse4_1";
    }
    return "tc_malloc";
}

std::string
kernelLeafName(KernelLeaf k)
{
    switch (k) {
      case KernelLeaf::Scheduler:
        return "finish_task_switch";
      case KernelLeaf::EventHandling:
        return "ep_poll";
      case KernelLeaf::Network:
        return "tcp_sendmsg";
      case KernelLeaf::Synchronization:
        return "futex_wait_queue_me";
      case KernelLeaf::MemoryManagement:
        return "clear_page_erms";
      case KernelLeaf::Miscellaneous:
        return "do_syscall_64";
    }
    return "do_syscall_64";
}

std::string
syncLeafName(SyncLeaf s)
{
    switch (s) {
      case SyncLeaf::CppAtomics:
        return "std::atomic<long>::fetch_add";
      case SyncLeaf::Mutex:
        return "pthread_mutex_lock";
      case SyncLeaf::CompareExchangeSwap:
        return "__atomic_compare_exchange_16";
      case SyncLeaf::SpinLock:
        return "folly::MicroSpinLock::lock";
    }
    return "pthread_mutex_lock";
}

std::string
clibLeafName(ClibLeaf c)
{
    switch (c) {
      case ClibLeaf::StdAlgorithms:
        return "std::sort";
      case ClibLeaf::ConstructorsDestructors:
        return "std::vector<float>::~vector";
      case ClibLeaf::Strings:
        return "std::string::append";
      case ClibLeaf::HashTables:
        return "std::unordered_map::find";
      case ClibLeaf::Vectors:
        return "std::vector<float>::push_back";
      case ClibLeaf::Trees:
        return "std::map::find";
      case ClibLeaf::OperatorOverride:
        return "operator==";
      case ClibLeaf::Miscellaneous:
        return "std::accumulate";
    }
    return "std::accumulate";
}

std::string
functionalityFrame(Functionality f)
{
    switch (f) {
      case Functionality::SecureInsecureIO:
        return "folly::AsyncSSLSocket::performWrite";
      case Functionality::IOPrePostProcessing:
        return "svc::io::prepareBuffers";
      case Functionality::Compression:
        return "svc::compress::compressPayload";
      case Functionality::Serialization:
        return "apache::thrift::BinaryProtocol::serialize";
      case Functionality::FeatureExtraction:
        return "ml::features::extractFeatures";
      case Functionality::PredictionRanking:
        return "ml::inference::predictRelevance";
      case Functionality::ApplicationLogic:
        return "svc::app::handleRequest";
      case Functionality::Logging:
        return "svc::log::appendLogEntry";
      case Functionality::ThreadPoolManagement:
        return "folly::ThreadPoolExecutor::runTask";
      case Functionality::Miscellaneous:
        return "svc::misc::housekeeping";
    }
    return "svc::misc::housekeeping";
}

} // namespace

std::string
TraceSampler::sampleLeafName(LeafCategory category)
{
    switch (category) {
      case LeafCategory::Memory:
        return memoryLeafName(drawShare(profile_.memoryShare, rng_));
      case LeafCategory::Kernel:
        return kernelLeafName(drawShare(profile_.kernelShare, rng_));
      case LeafCategory::Synchronization:
        return syncLeafName(drawShare(profile_.syncShare, rng_));
      case LeafCategory::CLibraries:
        return clibLeafName(drawShare(profile_.clibShare, rng_));
      case LeafCategory::Hashing:
        return rng_.chance(0.6) ? "SHA256_Update" : "folly::hash::fnv64";
      case LeafCategory::Zstd:
        return rng_.chance(0.7) ? "ZSTD_compressBlock_fast"
                                : "ZSTD_decompressSequences";
      case LeafCategory::Math:
        return rng_.chance(0.5) ? "mkl_blas_avx512_sgemm"
                                : "_mm512_fmadd_ps_loop";
      case LeafCategory::Ssl:
        return rng_.chance(0.5) ? "aes_ctr_encrypt_blocks"
                                : "EVP_EncryptUpdate";
      case LeafCategory::Miscellaneous:
        return "svc_opaque_leaf";
    }
    return "svc_opaque_leaf";
}

std::vector<std::string>
TraceSampler::buildFrames(Functionality f, const std::string &leafName)
{
    return {"start_thread", "svc::server::serve", functionalityFrame(f),
            leafName};
}

CallTrace
TraceSampler::sample()
{
    auto [f, l] = joint_.sample(rng_);
    CallTrace trace;
    trace.frames = buildFrames(f, sampleLeafName(l));
    trace.cycles = rng_.exponential(2000.0);
    trace.instructions = trace.cycles * workload::leafIpc(gen_, l);
    return trace;
}

std::vector<CallTrace>
TraceSampler::sampleMany(size_t count)
{
    std::vector<CallTrace> traces;
    traces.reserve(count);
    for (size_t i = 0; i < count; ++i)
        traces.push_back(sample());
    return traces;
}

} // namespace accel::profiling

/**
 * @file
 * Trace sampler: synthesizes the profiling stream a production profiler
 * would capture for a given service.
 *
 * The sampler builds a joint distribution over (functionality, leaf
 * category) pairs whose marginals match the service's encoded
 * functionality mix (Fig. 9) and leaf mix (Fig. 2). Since the paper
 * publishes only marginals, the joint is reconstructed by iterative
 * proportional fitting (IPF) over an affinity mask expressing which
 * leaves plausibly appear under which functionality (e.g. ZSTD leaves
 * under Compression, SSL leaves under Secure I/O).
 *
 * Sampled traces carry realistic frame names, so the tagger pipeline
 * (LeafTagger + FunctionalityTagger + Aggregator) can re-derive the
 * paper's breakdowns from raw traces — exercising the same measurement
 * path the paper used, not just echoing the tables.
 */

#pragma once

#include <vector>

#include "profiling/call_trace.hh"
#include "util/rng.hh"
#include "workload/platforms.hh"
#include "workload/profiles.hh"

namespace accel::profiling {

/** Joint (functionality x leaf) cycle distribution for a service. */
class JointDistribution
{
  public:
    /**
     * Fit the joint to @p profile's marginals with IPF.
     *
     * @param iterations  IPF sweeps; 100 is plenty for convergence
     */
    explicit JointDistribution(const workload::ServiceProfile &profile,
                               int iterations = 100);

    /** Joint probability mass of a (functionality, leaf) cell. */
    double mass(workload::Functionality f,
                workload::LeafCategory l) const;

    /** Row marginal: total mass of a functionality. */
    double functionalityMass(workload::Functionality f) const;

    /** Column marginal: total mass of a leaf category. */
    double leafMass(workload::LeafCategory l) const;

    /** Draw one cell proportionally to its mass. */
    std::pair<workload::Functionality, workload::LeafCategory>
    sample(Rng &rng) const;

  private:
    std::vector<double> cells_; // row-major [functionality][leaf]
    std::vector<double> cumulative_;

    static size_t index(workload::Functionality f,
                        workload::LeafCategory l);
};

/** Generates CallTrace samples for a service on a CPU generation. */
class TraceSampler
{
  public:
    /**
     * @param profile service to sample
     * @param gen     CPU generation (sets per-category IPC)
     * @param seed    deterministic stream seed
     */
    TraceSampler(const workload::ServiceProfile &profile,
                 workload::CpuGen gen, std::uint64_t seed);

    /** Draw one trace (frames + cycles + instructions). */
    CallTrace sample();

    /** Draw @p count traces. */
    std::vector<CallTrace> sampleMany(size_t count);

    const JointDistribution &joint() const { return joint_; }

  private:
    const workload::ServiceProfile &profile_;
    workload::CpuGen gen_;
    JointDistribution joint_;
    Rng rng_;

    std::string sampleLeafName(workload::LeafCategory category);
    std::vector<std::string>
    buildFrames(workload::Functionality f, const std::string &leafName);
};

} // namespace accel::profiling

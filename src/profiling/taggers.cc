#include "profiling/taggers.hh"

#include "util/string_utils.hh"

namespace accel::profiling {

using workload::ClibLeaf;
using workload::Functionality;
using workload::KernelLeaf;
using workload::LeafCategory;
using workload::MemoryLeaf;
using workload::SyncLeaf;

namespace {

/** Case-insensitive substring test. */
bool
contains(const std::string &haystack, const char *needle)
{
    return toLower(haystack).find(needle) != std::string::npos;
}

} // namespace

LeafCategory
LeafTagger::tag(const std::string &leaf) const
{
    // Order matters: kernel symbols first (futex_wait must not match the
    // mutex rule), then domain-specific libraries, then generic C++.
    if (contains(leaf, "finish_task_switch") || contains(leaf, "ep_poll") ||
        contains(leaf, "tcp_") || contains(leaf, "futex") ||
        contains(leaf, "clear_page") || contains(leaf, "do_syscall") ||
        contains(leaf, "__schedule") || contains(leaf, "net_rx")) {
        return LeafCategory::Kernel;
    }
    if (contains(leaf, "zstd"))
        return LeafCategory::Zstd;
    if (contains(leaf, "aes") || contains(leaf, "evp_") ||
        contains(leaf, "ssl_") || contains(leaf, "chacha")) {
        return LeafCategory::Ssl;
    }
    if (contains(leaf, "sha") || contains(leaf, "fnv") ||
        contains(leaf, "siphash") || contains(leaf, "crc32")) {
        return LeafCategory::Hashing;
    }
    if (contains(leaf, "mkl") || contains(leaf, "_mm") ||
        contains(leaf, "blas") || contains(leaf, "fmadd")) {
        return LeafCategory::Math;
    }
    if (contains(leaf, "memcpy") || contains(leaf, "memmove") ||
        contains(leaf, "memset") || contains(leaf, "memcmp") ||
        contains(leaf, "malloc") || contains(leaf, "calloc") ||
        contains(leaf, "tc_free") || contains(leaf, "cfree") ||
        contains(leaf, "operator new") ||
        contains(leaf, "operator delete") || leaf == "free") {
        return LeafCategory::Memory;
    }
    if (contains(leaf, "atomic") || contains(leaf, "mutex") ||
        contains(leaf, "spin") || contains(leaf, "compare_exchange")) {
        return LeafCategory::Synchronization;
    }
    if (contains(leaf, "std::") || contains(leaf, "operator") ||
        contains(leaf, "__gnu_cxx")) {
        return LeafCategory::CLibraries;
    }
    return LeafCategory::Miscellaneous;
}

std::optional<MemoryLeaf>
LeafTagger::memoryLeaf(const std::string &leaf) const
{
    if (contains(leaf, "memcpy"))
        return MemoryLeaf::Copy;
    if (contains(leaf, "memmove"))
        return MemoryLeaf::Move;
    if (contains(leaf, "memset"))
        return MemoryLeaf::Set;
    if (contains(leaf, "memcmp"))
        return MemoryLeaf::Compare;
    if (contains(leaf, "tc_free") || contains(leaf, "cfree") ||
        contains(leaf, "operator delete") || leaf == "free") {
        return MemoryLeaf::Free;
    }
    if (contains(leaf, "malloc") || contains(leaf, "calloc") ||
        contains(leaf, "operator new")) {
        return MemoryLeaf::Allocation;
    }
    return std::nullopt;
}

std::optional<KernelLeaf>
LeafTagger::kernelLeaf(const std::string &leaf) const
{
    if (contains(leaf, "finish_task_switch") ||
        contains(leaf, "__schedule")) {
        return KernelLeaf::Scheduler;
    }
    if (contains(leaf, "ep_poll"))
        return KernelLeaf::EventHandling;
    if (contains(leaf, "tcp_") || contains(leaf, "net_rx"))
        return KernelLeaf::Network;
    if (contains(leaf, "futex"))
        return KernelLeaf::Synchronization;
    if (contains(leaf, "clear_page"))
        return KernelLeaf::MemoryManagement;
    if (contains(leaf, "do_syscall"))
        return KernelLeaf::Miscellaneous;
    return std::nullopt;
}

std::optional<SyncLeaf>
LeafTagger::syncLeaf(const std::string &leaf) const
{
    if (contains(leaf, "compare_exchange"))
        return SyncLeaf::CompareExchangeSwap;
    if (contains(leaf, "atomic"))
        return SyncLeaf::CppAtomics;
    if (contains(leaf, "mutex"))
        return SyncLeaf::Mutex;
    if (contains(leaf, "spin"))
        return SyncLeaf::SpinLock;
    return std::nullopt;
}

std::optional<ClibLeaf>
LeafTagger::clibLeaf(const std::string &leaf) const
{
    if (contains(leaf, "std::sort") || contains(leaf, "std::find") ||
        contains(leaf, "std::accumulate")) {
        return ClibLeaf::StdAlgorithms;
    }
    if (contains(leaf, "::~") || contains(leaf, "construct"))
        return ClibLeaf::ConstructorsDestructors;
    if (contains(leaf, "std::string") || contains(leaf, "basic_string"))
        return ClibLeaf::Strings;
    if (contains(leaf, "unordered_map") || contains(leaf, "hashtable"))
        return ClibLeaf::HashTables;
    if (contains(leaf, "std::vector"))
        return ClibLeaf::Vectors;
    if (contains(leaf, "std::map") || contains(leaf, "_rb_tree"))
        return ClibLeaf::Trees;
    if (contains(leaf, "operator=") || contains(leaf, "operator<") ||
        contains(leaf, "operator==")) {
        return ClibLeaf::OperatorOverride;
    }
    if (contains(leaf, "std::") || contains(leaf, "__gnu_cxx"))
        return ClibLeaf::Miscellaneous;
    return std::nullopt;
}

Functionality
FunctionalityTagger::tag(const CallTrace &trace) const
{
    for (const std::string &frame : trace.frames) {
        if (contains(frame, "threadpoolexecutor") ||
            contains(frame, "thread_pool")) {
            return Functionality::ThreadPoolManagement;
        }
        if (contains(frame, "sslsocket") ||
            contains(frame, "asyncsocket")) {
            return Functionality::SecureInsecureIO;
        }
        if (contains(frame, "io::prepare") ||
            contains(frame, "io::postprocess")) {
            return Functionality::IOPrePostProcessing;
        }
        if (contains(frame, "thrift::"))
            return Functionality::Serialization;
        if (contains(frame, "features::extract"))
            return Functionality::FeatureExtraction;
        if (contains(frame, "inference::") ||
            contains(frame, "ranking::")) {
            return Functionality::PredictionRanking;
        }
        if (contains(frame, "log::append") ||
            contains(frame, "log::read") ||
            contains(frame, "log::update")) {
            return Functionality::Logging;
        }
        if (contains(frame, "compress::"))
            return Functionality::Compression;
        if (contains(frame, "app::"))
            return Functionality::ApplicationLogic;
        if (contains(frame, "misc::"))
            return Functionality::Miscellaneous;
    }
    return Functionality::Miscellaneous;
}

} // namespace accel::profiling

/**
 * @file
 * Category taggers: the "internal tool" of the paper's methodology.
 *
 * The paper feeds Strobelight traces to a tool that (a) tags each leaf
 * function with a leaf category (e.g. memcpy -> Memory) and (b) buckets
 * each full call trace into a microservice functionality (e.g. a trace
 * through AsyncSSLSocket -> Secure I/O). These taggers implement both
 * steps with ordered substring rules over function names.
 */

#pragma once

#include <optional>
#include <string>

#include "profiling/call_trace.hh"
#include "workload/categories.hh"

namespace accel::profiling {

/** Tags a leaf function name with its leaf category (Table 2). */
class LeafTagger
{
  public:
    /** Category for a leaf function name; Miscellaneous when unknown. */
    workload::LeafCategory tag(const std::string &leafName) const;

    /** Memory sub-category (Fig. 3), when the leaf is a memory leaf. */
    std::optional<workload::MemoryLeaf>
    memoryLeaf(const std::string &leafName) const;

    /** Kernel sub-category (Fig. 5), when the leaf is a kernel leaf. */
    std::optional<workload::KernelLeaf>
    kernelLeaf(const std::string &leafName) const;

    /** Synchronization sub-category (Fig. 6). */
    std::optional<workload::SyncLeaf>
    syncLeaf(const std::string &leafName) const;

    /** C-library sub-category (Fig. 7). */
    std::optional<workload::ClibLeaf>
    clibLeaf(const std::string &leafName) const;
};

/** Buckets full call traces into functionalities (Table 3). */
class FunctionalityTagger
{
  public:
    /**
     * Functionality of a trace: frames are scanned from the thread
     * entry inward; the first frame carrying a functionality marker
     * decides. Miscellaneous when no frame matches.
     */
    workload::Functionality tag(const CallTrace &trace) const;
};

} // namespace accel::profiling

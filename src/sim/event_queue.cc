#include "sim/event_queue.hh"

#include "util/logging.hh"

namespace accel::sim {

void
EventQueue::schedule(Tick when, Callback cb, int priority)
{
    require(when >= now_, "EventQueue: scheduling into the past");
    ensure(static_cast<bool>(cb), "EventQueue: empty callback");
    heap_.push(Event{when, priority, sequence_++, std::move(cb)});
}

void
EventQueue::scheduleIn(Tick delay, Callback cb, int priority)
{
    schedule(now_ + delay, std::move(cb), priority);
}

bool
EventQueue::runNext()
{
    if (heap_.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast is UB-free
    // here because we pop immediately. Copy instead for clarity.
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.when;
    ++processed_;
    ev.callback();
    return true;
}

void
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit)
        runNext();
    if (now_ < limit)
        now_ = limit;
}

void
EventQueue::runAll()
{
    while (runNext()) {
    }
}

} // namespace accel::sim

#include "sim/event_queue.hh"

#include <algorithm>
#include <limits>
#include <numeric>
#include <string>
#include <utility>

#include "util/logging.hh"

namespace accel::sim {

namespace {

constexpr std::uint64_t
quotientOf(Tick when)
{
    return when / EventQueue::kSlotWidth;
}

} // namespace

Tick
EventQueue::deadlineFromNow(Tick delay, const char *who) const
{
    // now_ + delay wraps silently in uint64 arithmetic; the wrapped
    // value either trips the misleading "scheduling into the past"
    // fatal or — worse — lands >= now_ and silently schedules at the
    // wrong tick. Fail with the actual fields instead. The message is
    // built inside the branch: this is the per-event hot path, and a
    // require(cond, string) call would pay the formatting even when
    // the check passes.
    if (delay > std::numeric_limits<Tick>::max() - now_) {
        fatal(std::string(who) +
              ": now + delay overflows Tick (now=" +
              std::to_string(now_) +
              ", delay=" + std::to_string(delay) + ")");
    }
    return now_ + delay;
}

EventQueue::Placement
EventQueue::scheduleEvent(Tick when, Callback &&cb, int priority,
                          bool isTimer)
{
    require(when >= now_, "EventQueue: scheduling into the past");
    ensure(static_cast<bool>(cb), "EventQueue: empty callback");
    std::uint64_t seq = sequence_++;
    const std::uint64_t quotient = quotientOf(when);
    if (quotient - quotientOf(now_) < kWheelSlots) {
        // Near future: O(1) insert into the wheel slot. The slot is
        // kept unsorted until the cursor reaches it, except for the
        // one slot currently being drained, which must stay sorted.
        std::vector<Event> &slot = wheel_[quotient % kWheelSlots];
        slot.emplace_back(when, priority, isTimer, seq, std::move(cb));
        if (quotient == sortedSlotQuotient_) {
            // The slot is mid-drain: record the new event's index at
            // its sorted position in drainOrder_. A new event has the
            // maximal sequence number, so among equal (when, priority)
            // keys it is Later{} than anything queued; binary-search
            // the descending order for the first queued event the new
            // one is later than.
            auto laterThanQueued = [&](std::uint32_t,
                                       std::uint32_t queuedIdx) {
                const Event &queued = slot[queuedIdx];
                if (when != queued.when)
                    return when > queued.when;
                if (priority != queued.priority)
                    return priority > queued.priority;
                return true; // maximal sequence wins the tie
            };
            auto pos = std::upper_bound(drainOrder_.begin(),
                                        drainOrder_.end(),
                                        std::uint32_t{0},
                                        laterThanQueued);
            drainOrder_.insert(
                pos, static_cast<std::uint32_t>(slot.size() - 1));
        }
        ++wheelCount_;
        if (quotient < cursorQuotient_)
            cursorQuotient_ = quotient;
        return {seq, /*inHeap=*/false};
    }
    // Far future: overflow heap, exactly as before the wheel.
    heap_.emplace_back(when, priority, isTimer, seq, std::move(cb));
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return {seq, /*inHeap=*/true};
}

void
EventQueue::schedule(Tick when, Callback &&cb, int priority)
{
    (void)scheduleEvent(when, std::move(cb), priority,
                        /*isTimer=*/false);
}

void
EventQueue::scheduleIn(Tick delay, Callback &&cb, int priority)
{
    schedule(deadlineFromNow(delay, "EventQueue::scheduleIn"),
             std::move(cb), priority);
}

TimerId
EventQueue::scheduleTimer(Tick when, Callback &&cb, int priority)
{
    Placement placed =
        scheduleEvent(when, std::move(cb), priority, /*isTimer=*/true);
    liveTimers_.insert(placed.sequence);
    if (placed.inHeap)
        heapTimers_.insert(placed.sequence);
    return placed.sequence;
}

TimerId
EventQueue::scheduleTimerIn(Tick delay, Callback &&cb, int priority)
{
    return scheduleTimer(
        deadlineFromNow(delay, "EventQueue::scheduleTimerIn"),
        std::move(cb), priority);
}

bool
EventQueue::cancelTimer(TimerId id)
{
    if (liveTimers_.erase(id) == 0)
        return false;
    // The queued Event stays in place; leaving liveTimers_ is what
    // marks it cancelled (its isTimer tag makes the pop path check).
    ++cancelledQueued_;
    // Only heap residents need compaction: a cancelled wheel slot
    // self-drains within one rotation (the wheel horizon), but a
    // cancelled heap slot would persist until its (arbitrarily far)
    // tick.
    if (!heapTimers_.empty() && heapTimers_.erase(id) > 0) {
        ++heapCancelled_;
        maybeCompact();
    }
    return true;
}

void
EventQueue::maybeCompact()
{
    // A cancelled timer's heap slot otherwise persists until its tick
    // drains. Workloads that arm a long timer per operation and cancel
    // almost all of them early — hedged offloads and per-attempt
    // watchdogs are the motivating case — would grow the heap with the
    // number of timers ever cancelled, not the number outstanding.
    // Once cancelled slots dominate the heap, rebuild it without them:
    // amortized O(1) per cancellation, and results cannot change
    // because pop order is the total (when, priority, sequence) order,
    // independent of heap layout. Wheel slots are never swept — their
    // cancelled entries drain with their slot inside one rotation.
    if (heapCancelled_ < kCompactMinCancelled ||
        heapCancelled_ * 2 < heap_.size()) {
        return;
    }
    // Every isTimer event still in the heap is either live (its
    // sequence is in liveTimers_) or cancelled; drop the cancelled
    // ones.
    auto dead = [this](const Event &ev) {
        return ev.isTimer && !liveTimers_.contains(ev.sequence);
    };
    auto tail = std::remove_if(heap_.begin(), heap_.end(), dead);
    cancelledQueued_ -= static_cast<size_t>(heap_.end() - tail);
    heap_.erase(tail, heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), Later{});
    heapCancelled_ = 0;
    ++compactions_;
}

EventQueue::Event
EventQueue::popEvent()
{
    // pop_heap moves the earliest event to the back; moving it out
    // transfers the callback's state instead of copying it.
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    return ev;
}

EventQueue::Event *
EventQueue::wheelFront()
{
    if (wheelCount_ == 0)
        return nullptr;
    // Fast path: the slot being drained is still the front (inserts
    // below it would have pulled cursorQuotient_ back and cleared the
    // match), so its next event is one load away.
    if (sortedSlotQuotient_ == cursorQuotient_ && !drainOrder_.empty())
        return &wheel_[cursorQuotient_ % kWheelSlots]
                      [drainOrder_.back()];
    // Every wheel event e satisfies quotient(now) <= quotient(e.when)
    // < quotient(now) + kWheelSlots, and no event lies below the
    // cursor (inserts pull it back, and the clock never passes a
    // pending event), so scanning one rotation from the cursor must
    // find a non-empty slot.
    std::uint64_t quotient =
        std::max(cursorQuotient_, quotientOf(now_));
    for (size_t scanned = 0; scanned < kWheelSlots;
         ++scanned, ++quotient) {
        std::vector<Event> &slot = wheel_[quotient % kWheelSlots];
        if (slot.empty())
            continue;
        cursorQuotient_ = quotient;
        if (sortedSlotQuotient_ != quotient) {
            compactSortedSlot();
            // Bulk-drop timers cancelled before the cursor got here
            // (in a hedged workload that is most of the slot): they
            // must not pay sort compares or one drain iteration each.
            if (cancelledQueued_ != 0) {
                auto dead = [this](const Event &ev) {
                    return ev.isTimer &&
                           !liveTimers_.contains(ev.sequence);
                };
                auto tail =
                    std::remove_if(slot.begin(), slot.end(), dead);
                const size_t dropped =
                    static_cast<size_t>(slot.end() - tail);
                slot.erase(tail, slot.end());
                wheelCount_ -= dropped;
                cancelledQueued_ -= dropped;
                if (slot.empty()) {
                    if (wheelCount_ == 0)
                        return nullptr; // sweep drained the wheel
                    continue;
                }
            }
            // Lazy sort on first touch. Sorting 4-byte indices into
            // the slot instead of the 96-byte events themselves keeps
            // the events in place; descending under Later, so back()
            // names the earliest and pops are O(1).
            drainOrder_.resize(slot.size());
            std::iota(drainOrder_.begin(), drainOrder_.end(), 0u);
            std::sort(drainOrder_.begin(), drainOrder_.end(),
                      [&slot](std::uint32_t a, std::uint32_t b) {
                          return Later{}(slot[a], slot[b]);
                      });
            sortedSlotQuotient_ = quotient;
        }
        return &slot[drainOrder_.back()];
    }
    panic("EventQueue: wheel population out of sync");
}

EventQueue::Event
EventQueue::popWheel()
{
    std::vector<Event> &slot = wheel_[cursorQuotient_ % kWheelSlots];
    Event ev = std::move(slot[drainOrder_.back()]);
    drainOrder_.pop_back();
    if (drainOrder_.empty()) {
        // Fully drained (anything still in the vector is a moved-from
        // hole): reset the slot for its next rotation.
        slot.clear();
        sortedSlotQuotient_ = kNoSortedSlot;
    }
    --wheelCount_;
    return ev;
}

void
EventQueue::compactSortedSlot()
{
    if (sortedSlotQuotient_ == kNoSortedSlot)
        return;
    // The previously draining slot still holds live events interleaved
    // with moved-from holes; keep just the live ones (in any order —
    // it is about to be an unsorted slot again).
    std::vector<Event> &old = wheel_[sortedSlotQuotient_ % kWheelSlots];
    scratch_.clear();
    for (std::uint32_t idx : drainOrder_)
        scratch_.push_back(std::move(old[idx]));
    old.swap(scratch_);
    scratch_.clear();
    drainOrder_.clear();
    sortedSlotQuotient_ = kNoSortedSlot;
}

bool
EventQueue::runOne(Tick limit)
{
    for (;;) {
        Event *wheelEv = wheelFront();
        bool fromWheel;
        if (wheelEv != nullptr && !heap_.empty())
            // Later(heap, wheel): the wheel event runs first.
            fromWheel = Later{}(heap_.front(), *wheelEv);
        else if (wheelEv != nullptr)
            fromWheel = true;
        else if (!heap_.empty())
            fromWheel = false;
        else
            return false;
        if ((fromWheel ? wheelEv->when : heap_.front().when) > limit)
            return false;
        // The event is fully detached from the queue before the
        // callback runs, so callbacks may schedule further events
        // freely.
        Event ev = fromWheel ? popWheel() : popEvent();
        if (ev.isTimer) {
            if (liveTimers_.erase(ev.sequence) == 0) {
                // Cancelled timer: drop without running or advancing
                // the clock. A cancelled heap slot draining naturally
                // is one fewer for compaction to reclaim.
                --cancelledQueued_;
                if (!fromWheel)
                    --heapCancelled_;
                continue;
            }
            if (!fromWheel)
                heapTimers_.erase(ev.sequence);
        }
        now_ = ev.when;
        ++processed_;
        ev.callback();
        return true;
    }
}

bool
EventQueue::runNext()
{
    return runOne(std::numeric_limits<Tick>::max());
}

void
EventQueue::runUntil(Tick limit)
{
    while (runOne(limit)) {
    }
    if (now_ < limit)
        now_ = limit;
}

void
EventQueue::runAll()
{
    while (runNext()) {
    }
}

} // namespace accel::sim

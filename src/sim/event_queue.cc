#include "sim/event_queue.hh"

#include <algorithm>
#include <utility>

#include "util/logging.hh"

namespace accel::sim {

void
EventQueue::schedule(Tick when, Callback &&cb, int priority)
{
    require(when >= now_, "EventQueue: scheduling into the past");
    ensure(static_cast<bool>(cb), "EventQueue: empty callback");
    heap_.push_back(Event{when, priority, sequence_++, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void
EventQueue::scheduleIn(Tick delay, Callback &&cb, int priority)
{
    schedule(now_ + delay, std::move(cb), priority);
}

EventQueue::Event
EventQueue::popEvent()
{
    // pop_heap moves the earliest event to the back; moving it out
    // transfers the callback's state instead of copying it.
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    return ev;
}

bool
EventQueue::runNext()
{
    if (heap_.empty())
        return false;
    // The event is fully detached from the heap before the callback
    // runs, so callbacks may schedule further events freely.
    Event ev = popEvent();
    now_ = ev.when;
    ++processed_;
    ev.callback();
    return true;
}

void
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.front().when <= limit)
        runNext();
    if (now_ < limit)
        now_ = limit;
}

void
EventQueue::runAll()
{
    while (runNext()) {
    }
}

} // namespace accel::sim

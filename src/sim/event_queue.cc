#include "sim/event_queue.hh"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/logging.hh"

namespace accel::sim {

std::uint64_t
EventQueue::scheduleEvent(Tick when, Callback &&cb, int priority)
{
    require(when >= now_, "EventQueue: scheduling into the past");
    ensure(static_cast<bool>(cb), "EventQueue: empty callback");
    std::uint64_t seq = sequence_++;
    heap_.push_back(Event{when, priority, seq, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return seq;
}

void
EventQueue::schedule(Tick when, Callback &&cb, int priority)
{
    scheduleEvent(when, std::move(cb), priority);
}

void
EventQueue::scheduleIn(Tick delay, Callback &&cb, int priority)
{
    schedule(now_ + delay, std::move(cb), priority);
}

TimerId
EventQueue::scheduleTimer(Tick when, Callback &&cb, int priority)
{
    std::uint64_t seq = scheduleEvent(when, std::move(cb), priority);
    liveTimers_.insert(seq);
    return seq;
}

TimerId
EventQueue::scheduleTimerIn(Tick delay, Callback &&cb, int priority)
{
    return scheduleTimer(now_ + delay, std::move(cb), priority);
}

bool
EventQueue::cancelTimer(TimerId id)
{
    if (liveTimers_.erase(id) == 0)
        return false;
    cancelled_.insert(id);
    maybeCompact();
    return true;
}

void
EventQueue::maybeCompact()
{
    // A cancelled timer's heap slot otherwise persists until its tick
    // drains. Workloads that arm a long timer per operation and cancel
    // almost all of them early — hedged offloads and per-attempt
    // watchdogs are the motivating case — would grow the heap with the
    // number of timers ever cancelled inside the horizon, not the
    // number outstanding. Once cancelled slots dominate, rebuild the
    // heap without them: amortized O(1) per cancellation, and results
    // cannot change because pop order is the total (when, priority,
    // sequence) order, independent of heap layout.
    if (cancelled_.size() < kCompactMinCancelled ||
        cancelled_.size() * 2 < heap_.size()) {
        return;
    }
    auto dead = [this](const Event &ev) {
        return cancelled_.count(ev.sequence) > 0;
    };
    heap_.erase(std::remove_if(heap_.begin(), heap_.end(), dead),
                heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), Later{});
    cancelled_.clear();
    ++compactions_;
}

EventQueue::Event
EventQueue::popEvent()
{
    // pop_heap moves the earliest event to the back; moving it out
    // transfers the callback's state instead of copying it.
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    return ev;
}

bool
EventQueue::runOne(Tick limit)
{
    while (!heap_.empty() && heap_.front().when <= limit) {
        // The event is fully detached from the heap before the callback
        // runs, so callbacks may schedule further events freely.
        Event ev = popEvent();
        if (!cancelled_.empty() && cancelled_.erase(ev.sequence) > 0)
            continue; // cancelled timer: drop without running or
                      // advancing the clock
        if (!liveTimers_.empty())
            liveTimers_.erase(ev.sequence);
        now_ = ev.when;
        ++processed_;
        ev.callback();
        return true;
    }
    return false;
}

bool
EventQueue::runNext()
{
    return runOne(std::numeric_limits<Tick>::max());
}

void
EventQueue::runUntil(Tick limit)
{
    while (runOne(limit)) {
    }
    if (now_ < limit)
        now_ = limit;
}

void
EventQueue::runAll()
{
    while (runNext()) {
    }
}

} // namespace accel::sim

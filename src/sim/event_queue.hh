/**
 * @file
 * Discrete-event simulation core.
 *
 * A minimal, deterministic event queue in simulated host cycles. The
 * microservice simulator (microsim) is built on top of it; the engine
 * itself knows nothing about services or accelerators.
 *
 * Determinism: events at equal ticks execute in (priority, insertion
 * sequence) order, so a seeded simulation always replays identically.
 *
 * Hot-path structure (see DESIGN.md, "Sim-core hot path"):
 *
 *  - Callbacks are `sim::InlineCallback` — move-only with 64 bytes of
 *    inline storage; oversized captures spill into a thread-local
 *    kernels::PoolAllocator, so steady-state scheduling performs no
 *    global heap allocation.
 *  - Near-future events (within kWheelHorizon ticks of now) live in a
 *    calendar-queue timer wheel: O(1) insert into an unsorted slot,
 *    sorted lazily when the cursor reaches it. Far-future events
 *    overflow into the original binary heap. Pop takes the earlier of
 *    the two fronts under the total (when, priority, sequence) order,
 *    so execution order — and therefore every simulation result — is
 *    bit-identical to the single-heap implementation (the property
 *    suite cross-checks this against sim::ReferenceEventQueue).
 *  - Timer bookkeeping uses FlatSet64 (open addressing, no per-insert
 *    node allocation).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/flat_set64.hh"
#include "sim/inline_callback.hh"

namespace accel::sim {

/** Simulated time in host clock cycles. */
using Tick = std::uint64_t;

/** Scheduled work: lower priority values run first within a tick. */
using Callback = InlineCallback;

/**
 * Handle to a cancellable timer. Valid ids are non-zero; kInvalidTimer
 * never names a live timer, so it can serve as an "unset" sentinel.
 */
using TimerId = std::uint64_t;
constexpr TimerId kInvalidTimer = 0;

/** Deterministic event queue (timer wheel + overflow min-heap). */
class EventQueue
{
  public:
    EventQueue() : wheel_(kWheelSlots) {}

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb at absolute time @p when. The callback is taken
     * as a sink (&&): the queue stores millions of events per run, so
     * the type-erased state must move, never copy.
     * @throws FatalError when @p when precedes now().
     */
    void schedule(Tick when, Callback &&cb, int priority = 0);

    /**
     * Schedule @p cb @p delay cycles from now.
     * @throws FatalError when now() + @p delay overflows Tick.
     */
    void scheduleIn(Tick delay, Callback &&cb, int priority = 0);

    /**
     * Schedule a cancellable timer at absolute time @p when. Only
     * timers pay the cancellation bookkeeping; plain schedule() events
     * keep the zero-overhead hot path. Timeout/retry logic (offload
     * deadlines racing device completions) needs the returned handle.
     */
    TimerId scheduleTimer(Tick when, Callback &&cb, int priority = 0);

    /**
     * Schedule a cancellable timer @p delay cycles from now.
     * @throws FatalError when now() + @p delay overflows Tick.
     */
    TimerId scheduleTimerIn(Tick delay, Callback &&cb, int priority = 0);

    /**
     * Cancel a pending timer. A cancelled timer's callback never runs
     * and its state is released when its slot drains from the queue.
     * @return true when @p id was live (scheduled, not yet fired or
     *         cancelled); false for fired, already-cancelled, invalid,
     *         or plain-schedule() ids.
     */
    bool cancelTimer(TimerId id);

    /** Timers scheduled and neither fired nor cancelled yet. */
    size_t activeTimers() const { return liveTimers_.size(); }

    /** True when no events remain (cancelled slots count as events). */
    bool empty() const { return heap_.empty() && wheelCount_ == 0; }

    /**
     * Number of queued event slots, cancelled timers included: a
     * cancelled timer still occupies its slot — and counts here —
     * until its tick drains or slot compaction reclaims it (see
     * compactions()). Use pendingLive() for the number of events that
     * will actually execute; polling pending() for progress or
     * termination decisions overcounts under timer cancellation.
     */
    size_t pending() const { return heap_.size() + wheelCount_; }

    /**
     * Events that will actually execute: pending() minus queued
     * cancelled-timer slots. This is the count to poll for progress /
     * termination decisions.
     */
    size_t pendingLive() const { return pending() - cancelledQueued_; }

    /**
     * Times the overflow heap was rebuilt to shed cancelled-timer
     * slots. The rebuild triggers when at least kCompactMinCancelled
     * heap slots are cancelled and they make up half the heap, which
     * keeps pending() at O(live events + kCompactMinCancelled +
     * one wheel rotation) no matter how many timers were ever
     * cancelled (hedged offloads cancel one timer per offload). Wheel
     * slots are never swept: a cancelled wheel entry drains with its
     * slot within one rotation (kWheelHorizon ticks), so it cannot
     * accumulate. Compaction never changes results: execution order is
     * the total (when, priority, sequence) order, which does not
     * depend on heap layout.
     */
    std::uint64_t compactions() const { return compactions_; }

    /** Cancelled-heap-slot floor below which compaction never triggers. */
    static constexpr size_t kCompactMinCancelled = 64;

    /** Wheel slot width in ticks (one slot per kSlotWidth quotient). */
    static constexpr Tick kSlotWidth = 64;

    /** Number of wheel slots (power of two). */
    static constexpr size_t kWheelSlots = 1024;

    /**
     * Events with when - now() below this horizon take the wheel path;
     * events at or past it go to the overflow heap. (The exact rule is
     * quotient-based: floor(when / kSlotWidth) must be within
     * kWheelSlots of floor(now / kSlotWidth).)
     */
    static constexpr Tick kWheelHorizon = kSlotWidth * kWheelSlots;

    /** Reserve overflow-heap capacity for expected pending events. */
    void reserve(size_t events) { heap_.reserve(events); }

    /** Total events executed so far. */
    std::uint64_t processed() const { return processed_; }

    /**
     * Execute the earliest event, advancing now().
     * @return false when the queue was empty.
     */
    bool runNext();

    /**
     * Run events with timestamps <= @p limit, then advance now() to
     * @p limit. Events scheduled past the limit stay queued.
     */
    void runUntil(Tick limit);

    /** Run until the queue drains. */
    void runAll();

  private:
    struct Event
    {
        Tick when;
        int priority;
        // Lives in the padding after priority, so tagging timers costs
        // no space. A queued timer whose sequence has left liveTimers_
        // was cancelled; untagged events skip cancellation bookkeeping
        // entirely on the pop path.
        bool isTimer;
        std::uint64_t sequence;
        Callback callback;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.sequence > b.sequence;
        }
    };

    static constexpr std::uint64_t kNoSortedSlot = ~std::uint64_t{0};

    /** Where scheduleEvent placed an event, for timer bookkeeping. */
    struct Placement
    {
        std::uint64_t sequence;
        bool inHeap;
    };

    /** Move the earliest event out of the heap (heap_ must be non-empty). */
    Event popEvent();

    /** schedule() body that also reports sequence number and placement. */
    Placement scheduleEvent(Tick when, Callback &&cb, int priority,
                            bool isTimer);

    /** now() + delay with an explicit overflow check (satellite fix). */
    Tick deadlineFromNow(Tick delay, const char *who) const;

    /**
     * Earliest wheel event, or nullptr when the wheel is empty. Sorts
     * the fronting slot lazily; afterwards cursorQuotient_ names that
     * slot and its back() is the pointee.
     */
    Event *wheelFront();

    /** Detach the event wheelFront() returned. */
    Event popWheel();

    /**
     * Squeeze moved-from holes out of a partially drained sorted slot
     * so it can be treated as unsorted again. Only needed on the rare
     * mid-drain switch to another slot (an insert below the cursor).
     */
    void compactSortedSlot();

    /**
     * Pop-and-execute the earliest live event whose tick is <= @p limit,
     * discarding cancelled timers along the way.
     * @return false when no eligible event remains.
     */
    bool runOne(Tick limit);

    /** Rebuild the heap without cancelled slots once they dominate it. */
    void maybeCompact();

    // An explicit vector heap (std::push_heap/pop_heap with Later, so
    // front() is the earliest event) instead of std::priority_queue:
    // priority_queue::top() is const and forces a copy of the Event on
    // every pop, which is pure hot-path overhead in multi-million-event
    // runs. pop_heap moves the earliest event to the back, where it can
    // be moved out. Only far-future events (past the wheel horizon)
    // land here.
    std::vector<Event> heap_;

    // Calendar-queue wheel for near-future events. Slot index is
    // floor(when / kSlotWidth) mod kWheelSlots; because every pending
    // event satisfies now <= when < now + horizon (quotient-wise), the
    // mapping quotient -> slot is injective over pending events, so a
    // slot never mixes two quotients. Slots stay unsorted (and their
    // events never move) until the cursor reaches them; the one
    // draining slot (sortedSlotQuotient_) is ordered through
    // drainOrder_, a vector of indices into the slot sorted descending
    // under Later so back() names the earliest event. Sorting 4-byte
    // indices instead of 96-byte events keeps the sort out of the
    // relocation business; drained entries leave moved-from holes that
    // are reclaimed when the slot empties (or compacted via scratch_
    // on the rare switch to another slot mid-drain).
    std::vector<std::vector<Event>> wheel_;
    std::vector<std::uint32_t> drainOrder_;
    std::vector<Event> scratch_;
    size_t wheelCount_ = 0;
    std::uint64_t cursorQuotient_ = 0;
    std::uint64_t sortedSlotQuotient_ = kNoSortedSlot;

    Tick now_ = 0;
    // Sequence numbers double as TimerIds, so 0 is reserved as the
    // invalid handle. Starting at 1 preserves relative ordering.
    std::uint64_t sequence_ = 1;
    std::uint64_t processed_ = 0;
    std::uint64_t compactions_ = 0;

    // Cancellation bookkeeping. There is no cancelled-id set:
    // cancelTimer erases the id from liveTimers_, and the pop path
    // treats any Event tagged isTimer whose sequence is absent from
    // liveTimers_ as cancelled. Both sets are bounded by the number of
    // pending events and never iterated, so hash order cannot leak
    // into results. Sequence numbers start at 1, so FlatSet64's
    // reserved key 0 is never needed.
    FlatSet64 liveTimers_;

    // Timers currently resident in the overflow heap, so cancelTimer
    // can tell heap cancellations (which need compaction — the slot
    // would otherwise persist until its arbitrarily far tick) from
    // wheel cancellations (which self-drain within one rotation).
    // heapCancelled_ counts cancelled slots still in the heap; it
    // resets on compaction and decrements when a cancelled slot drains
    // off the heap naturally.
    FlatSet64 heapTimers_;
    size_t heapCancelled_ = 0;

    // Cancelled slots still queued anywhere (wheel or heap), so
    // pendingLive() stays O(1).
    size_t cancelledQueued_ = 0;
};

} // namespace accel::sim

/**
 * @file
 * Discrete-event simulation core.
 *
 * A minimal, deterministic event queue in simulated host cycles. The
 * microservice simulator (microsim) is built on top of it; the engine
 * itself knows nothing about services or accelerators.
 *
 * Determinism: events at equal ticks execute in (priority, insertion
 * sequence) order, so a seeded simulation always replays identically.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace accel::sim {

/** Simulated time in host clock cycles. */
using Tick = std::uint64_t;

/** Scheduled work: lower priority values run first within a tick. */
using Callback = std::function<void()>;

/** Deterministic min-heap event queue. */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb at absolute time @p when. The callback is taken
     * as a sink (&&): the queue stores millions of events per run, so
     * the type-erased state must move, never copy.
     * @throws FatalError when @p when precedes now().
     */
    void schedule(Tick when, Callback &&cb, int priority = 0);

    /** Schedule @p cb @p delay cycles from now. */
    void scheduleIn(Tick delay, Callback &&cb, int priority = 0);

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    size_t pending() const { return heap_.size(); }

    /** Reserve heap capacity for an expected number of pending events. */
    void reserve(size_t events) { heap_.reserve(events); }

    /** Total events executed so far. */
    std::uint64_t processed() const { return processed_; }

    /**
     * Execute the earliest event, advancing now().
     * @return false when the queue was empty.
     */
    bool runNext();

    /**
     * Run events with timestamps <= @p limit, then advance now() to
     * @p limit. Events scheduled past the limit stay queued.
     */
    void runUntil(Tick limit);

    /** Run until the queue drains. */
    void runAll();

  private:
    struct Event
    {
        Tick when;
        int priority;
        std::uint64_t sequence;
        Callback callback;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.sequence > b.sequence;
        }
    };

    /** Move the earliest event out of the heap (heap_ must be non-empty). */
    Event popEvent();

    // An explicit vector heap (std::push_heap/pop_heap with Later, so
    // front() is the earliest event) instead of std::priority_queue:
    // priority_queue::top() is const and forces a copy of the Event —
    // including its std::function and any captured shared_ptrs — on
    // every pop, which is pure hot-path overhead in multi-million-event
    // runs. pop_heap moves the earliest event to the back, where it can
    // be moved out.
    std::vector<Event> heap_;
    Tick now_ = 0;
    std::uint64_t sequence_ = 0;
    std::uint64_t processed_ = 0;
};

} // namespace accel::sim

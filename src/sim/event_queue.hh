/**
 * @file
 * Discrete-event simulation core.
 *
 * A minimal, deterministic event queue in simulated host cycles. The
 * microservice simulator (microsim) is built on top of it; the engine
 * itself knows nothing about services or accelerators.
 *
 * Determinism: events at equal ticks execute in (priority, insertion
 * sequence) order, so a seeded simulation always replays identically.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

namespace accel::sim {

/** Simulated time in host clock cycles. */
using Tick = std::uint64_t;

/** Scheduled work: lower priority values run first within a tick. */
using Callback = std::function<void()>;

/**
 * Handle to a cancellable timer. Valid ids are non-zero; kInvalidTimer
 * never names a live timer, so it can serve as an "unset" sentinel.
 */
using TimerId = std::uint64_t;
constexpr TimerId kInvalidTimer = 0;

/** Deterministic min-heap event queue. */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Schedule @p cb at absolute time @p when. The callback is taken
     * as a sink (&&): the queue stores millions of events per run, so
     * the type-erased state must move, never copy.
     * @throws FatalError when @p when precedes now().
     */
    void schedule(Tick when, Callback &&cb, int priority = 0);

    /** Schedule @p cb @p delay cycles from now. */
    void scheduleIn(Tick delay, Callback &&cb, int priority = 0);

    /**
     * Schedule a cancellable timer at absolute time @p when. Only
     * timers pay the cancellation bookkeeping; plain schedule() events
     * keep the zero-overhead hot path. Timeout/retry logic (offload
     * deadlines racing device completions) needs the returned handle.
     */
    TimerId scheduleTimer(Tick when, Callback &&cb, int priority = 0);

    /** Schedule a cancellable timer @p delay cycles from now. */
    TimerId scheduleTimerIn(Tick delay, Callback &&cb, int priority = 0);

    /**
     * Cancel a pending timer. A cancelled timer's callback never runs
     * and its state is released when its slot drains from the heap.
     * @return true when @p id was live (scheduled, not yet fired or
     *         cancelled); false for fired, already-cancelled, invalid,
     *         or plain-schedule() ids.
     */
    bool cancelTimer(TimerId id);

    /** Timers scheduled and neither fired nor cancelled yet. */
    size_t activeTimers() const { return liveTimers_.size(); }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /**
     * Number of pending events. A cancelled timer still occupies its
     * heap slot — and counts here — until its tick drains or slot
     * compaction reclaims it (see compactions()).
     */
    size_t pending() const { return heap_.size(); }

    /**
     * Times the heap was rebuilt to shed cancelled-timer slots. The
     * rebuild triggers when at least kCompactMinCancelled slots are
     * cancelled and they make up half the heap, which keeps pending()
     * at O(live events + kCompactMinCancelled) no matter how many
     * timers were ever cancelled (hedged offloads cancel one timer per
     * offload). Compaction never changes results: execution order is
     * the total (when, priority, sequence) order, which does not
     * depend on heap layout.
     */
    std::uint64_t compactions() const { return compactions_; }

    /** Cancelled-slot floor below which compaction never triggers. */
    static constexpr size_t kCompactMinCancelled = 64;

    /** Reserve heap capacity for an expected number of pending events. */
    void reserve(size_t events) { heap_.reserve(events); }

    /** Total events executed so far. */
    std::uint64_t processed() const { return processed_; }

    /**
     * Execute the earliest event, advancing now().
     * @return false when the queue was empty.
     */
    bool runNext();

    /**
     * Run events with timestamps <= @p limit, then advance now() to
     * @p limit. Events scheduled past the limit stay queued.
     */
    void runUntil(Tick limit);

    /** Run until the queue drains. */
    void runAll();

  private:
    struct Event
    {
        Tick when;
        int priority;
        std::uint64_t sequence;
        Callback callback;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.sequence > b.sequence;
        }
    };

    /** Move the earliest event out of the heap (heap_ must be non-empty). */
    Event popEvent();

    /** schedule() body that also reports the event's sequence number. */
    std::uint64_t scheduleEvent(Tick when, Callback &&cb, int priority);

    /**
     * Pop-and-execute the earliest live event whose tick is <= @p limit,
     * discarding cancelled timers along the way.
     * @return false when no eligible event remains.
     */
    bool runOne(Tick limit);

    /** Rebuild the heap without cancelled slots once they dominate. */
    void maybeCompact();

    // An explicit vector heap (std::push_heap/pop_heap with Later, so
    // front() is the earliest event) instead of std::priority_queue:
    // priority_queue::top() is const and forces a copy of the Event —
    // including its std::function and any captured shared_ptrs — on
    // every pop, which is pure hot-path overhead in multi-million-event
    // runs. pop_heap moves the earliest event to the back, where it can
    // be moved out.
    std::vector<Event> heap_;
    Tick now_ = 0;
    // Sequence numbers double as TimerIds, so 0 is reserved as the
    // invalid handle. Starting at 1 preserves relative ordering.
    std::uint64_t sequence_ = 1;
    std::uint64_t processed_ = 0;
    std::uint64_t compactions_ = 0;

    // Cancellation bookkeeping. Both sets are bounded by the number of
    // pending events: a live timer leaves liveTimers_ when it fires or
    // is cancelled, and a cancelled entry leaves cancelled_ when its
    // heap slot drains. Never iterated, so hash order cannot leak into
    // results.
    std::unordered_set<std::uint64_t> liveTimers_;
    std::unordered_set<std::uint64_t> cancelled_;
};

} // namespace accel::sim

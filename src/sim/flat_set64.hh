/**
 * @file
 * Open-addressing hash set of non-zero 64-bit keys.
 *
 * EventQueue tracks live and cancelled timer ids in sets that are hit
 * on every timer schedule/cancel/fire. `std::unordered_set` pays one
 * node allocation per insert, which would break the sim-core goal of
 * zero steady-state heap traffic; FlatSet64 stores keys directly in a
 * flat power-of-two table (linear probing, backward-shift deletion, no
 * tombstones), so the only allocations are occasional table growths and
 * capacity is retained across clear().
 *
 * Key 0 is reserved as the empty-slot sentinel — a natural fit for the
 * queue, whose sequence numbers and timer ids start at 1
 * (sim::kInvalidTimer == 0).
 *
 * The set is deliberately not iterable: hash order must never reach
 * simulation results (determinism), so the API exposes only membership
 * operations.
 */

#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace accel::sim {

class FlatSet64
{
  public:
    /** Insert @p key; returns true if it was not already present. */
    bool
    insert(std::uint64_t key)
    {
        require(key != 0, "FlatSet64: key 0 is reserved");
        if ((size_ + 1) * 4 >= slots_.size() * 3) {
            grow();
        }
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = hash(key) & mask;
        while (slots_[i] != 0) {
            if (slots_[i] == key) {
                return false;
            }
            i = (i + 1) & mask;
        }
        slots_[i] = key;
        ++size_;
        return true;
    }

    /** Remove @p key; returns the number of keys removed (0 or 1). */
    std::size_t
    erase(std::uint64_t key)
    {
        if (size_ == 0 || key == 0) {
            return 0;
        }
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = hash(key) & mask;
        while (slots_[i] != key) {
            if (slots_[i] == 0) {
                return 0;
            }
            i = (i + 1) & mask;
        }
        // Backward-shift deletion: slide displaced keys of the probe
        // chain into the hole so lookups never need tombstones.
        std::size_t hole = i;
        std::size_t j = i;
        for (;;) {
            j = (j + 1) & mask;
            const std::uint64_t k = slots_[j];
            if (k == 0) {
                break;
            }
            const std::size_t home = hash(k) & mask;
            // k may fill the hole iff its home slot is cyclically at or
            // before the hole (i.e. not strictly inside (hole, j]).
            if (((j - home) & mask) >= ((j - hole) & mask)) {
                slots_[hole] = k;
                hole = j;
            }
        }
        slots_[hole] = 0;
        --size_;
        return 1;
    }

    bool
    contains(std::uint64_t key) const
    {
        if (size_ == 0 || key == 0) {
            return false;
        }
        const std::size_t mask = slots_.size() - 1;
        std::size_t i = hash(key) & mask;
        while (slots_[i] != 0) {
            if (slots_[i] == key) {
                return true;
            }
            i = (i + 1) & mask;
        }
        return false;
    }

    std::size_t size() const { return size_; }

    bool empty() const { return size_ == 0; }

    /** Drop all keys; table capacity is retained. */
    void
    clear()
    {
        std::fill(slots_.begin(), slots_.end(), 0);
        size_ = 0;
    }

  private:
    static constexpr std::size_t kMinCapacity = 16;

    /** splitmix64 finalizer: strong enough to scatter sequential ids. */
    static std::uint64_t
    hash(std::uint64_t x)
    {
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return x;
    }

    void
    grow()
    {
        const std::size_t cap =
            slots_.empty() ? kMinCapacity : slots_.size() * 2;
        std::vector<std::uint64_t> old(std::move(slots_));
        slots_.assign(cap, 0);
        const std::size_t mask = cap - 1;
        for (std::uint64_t key : old) {
            if (key == 0) {
                continue;
            }
            std::size_t i = hash(key) & mask;
            while (slots_[i] != 0) {
                i = (i + 1) & mask;
            }
            slots_[i] = key;
        }
    }

    std::vector<std::uint64_t> slots_; // 0 marks an empty slot
    std::size_t size_ = 0;
};

} // namespace accel::sim

/**
 * @file
 * Spill storage for oversized InlineFunction captures.
 *
 * Each thread owns a private kernels::PoolAllocator, so spilled
 * captures recycle pool blocks instead of hitting the global heap on
 * every construction. Thread-local (rather than a shared pool behind a
 * mutex) because each simulation — EventQueue plus all of its callbacks
 * — lives entirely on one worker thread; a lock here would serialize
 * independent replica sims under ACCEL_JOBS > 1 for no benefit.
 *
 * Requests the pool cannot serve go to aligned global new/delete:
 * alignment above 16 bytes (the pool only guarantees max_align_t) or
 * sizes above PoolAllocator::kMaxBlockSize.
 */

#include "sim/inline_callback.hh"

#include <cstdint>
#include <new>

#include "kernels/pool_allocator.hh"

namespace accel::sim::detail {

namespace {

struct SpillCounters
{
    std::uint64_t allocations = 0;
    std::uint64_t frees = 0;
};

kernels::PoolAllocator &
pool()
{
    thread_local kernels::PoolAllocator tlsPool;
    return tlsPool;
}

SpillCounters &
counters()
{
    thread_local SpillCounters tlsCounters;
    return tlsCounters;
}

/** Strongest alignment the pool guarantees for any block. */
constexpr std::size_t kPoolAlign = alignof(std::max_align_t);

bool
poolServes(std::size_t bytes, std::size_t align)
{
    return bytes <= kernels::PoolAllocator::kMaxBlockSize &&
           align <= kPoolAlign;
}

} // namespace

void *
spillAllocate(std::size_t bytes, std::size_t align)
{
    ++counters().allocations;
    if (poolServes(bytes, align)) {
        return pool().allocate(bytes);
    }
    return ::operator new(bytes, std::align_val_t(align));
}

void
spillFree(void *ptr, std::size_t bytes, std::size_t align) noexcept
{
    ++counters().frees;
    if (poolServes(bytes, align)) {
        pool().sizedFree(ptr, bytes);
        return;
    }
    ::operator delete(ptr, std::align_val_t(align));
}

std::uint64_t
spillAllocations() noexcept
{
    return counters().allocations;
}

std::uint64_t
spillLive() noexcept
{
    return counters().allocations - counters().frees;
}

} // namespace accel::sim::detail

/**
 * @file
 * Move-only, small-buffer-optimized callable for the sim-core hot path.
 *
 * Every simulated event carries a callback; at fleet scale (millions of
 * events per run) the `std::function` it used to carry costs one global
 * heap allocation per event for any capture that is not trivially
 * copyable — which in this codebase means essentially all of them
 * (`shared_ptr` offload state, moved-in work items). InlineFunction
 * removes that cost:
 *
 *  - Captures up to kInlineBytes (64) bytes with alignment at most
 *    `alignof(std::max_align_t)` are stored inline in the object; move
 *    relocates them with the callable's own move constructor.
 *  - Oversized captures spill into a thread-local
 *    `kernels::PoolAllocator` (see inline_callback.cc) instead of the
 *    global heap, so steady-state scheduling performs zero global
 *    allocations once the pool chunks are warm. Spills with alignment
 *    above the pool's 16-byte guarantee, or larger than the pool's
 *    block-size ceiling, fall back to aligned `operator new`.
 *  - The type is move-only, so it accepts move-only captures (e.g.
 *    lambdas that own a moved-in Pending item) that `std::function`
 *    rejects outright.
 *
 * Call semantics mirror `std::function`: `operator()` is shallow-const
 * (callable through a const InlineFunction, like a `std::function`
 * member invoked from a non-mutable lambda), and invoking an empty
 * object panics.
 *
 * Thread-safety: objects are not internally synchronized; a spilled
 * callback must be destroyed on the thread that created it (the spill
 * storage belongs to that thread's pool). EventQueue and the microsim
 * honor this by construction — each simulation lives entirely on one
 * worker thread.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "util/logging.hh"

namespace accel::sim {

namespace detail {

/**
 * Spill-storage hooks (defined in inline_callback.cc). Storage comes
 * from a thread-local kernels::PoolAllocator; requests the pool cannot
 * serve (align > 16 or bytes > PoolAllocator::kMaxBlockSize) use
 * aligned global new/delete. free() must receive the same (bytes,
 * align) pair the allocation was made with, on the same thread.
 */
void *spillAllocate(std::size_t bytes, std::size_t align);
void spillFree(void *ptr, std::size_t bytes, std::size_t align) noexcept;

/** Spilled constructions on this thread since thread start (tests). */
std::uint64_t spillAllocations() noexcept;

/** Spills currently live on this thread (allocations minus frees). */
std::uint64_t spillLive() noexcept;

} // namespace detail

template <typename Signature> class InlineFunction;

/**
 * Move-only callable wrapper with small-buffer optimization. See the
 * file comment for storage and threading rules.
 */
template <typename R, typename... Args>
class InlineFunction<R(Args...)>
{
  public:
    /** Inline capture budget; larger callables spill into the pool. */
    static constexpr std::size_t kInlineBytes = 64;

    InlineFunction() noexcept = default;

    InlineFunction(std::nullptr_t) noexcept {} // NOLINT: match std::function

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineFunction> &&
                  !std::is_same_v<D, std::nullptr_t> &&
                  std::is_invocable_r_v<R, D &, Args...>>>
    InlineFunction(F &&fn) // NOLINT: implicit, like std::function
    {
        construct<D>(std::forward<F>(fn));
    }

    InlineFunction(InlineFunction &&other) noexcept : ops_(other.ops_)
    {
        if (ops_ != nullptr) {
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_ != nullptr) {
                ops_->relocate(storage_, other.storage_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineFunction> &&
                  !std::is_same_v<D, std::nullptr_t> &&
                  std::is_invocable_r_v<R, D &, Args...>>>
    InlineFunction &
    operator=(F &&fn)
    {
        InlineFunction replacement(std::forward<F>(fn));
        *this = std::move(replacement);
        return *this;
    }

    InlineFunction &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    ~InlineFunction() { reset(); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /**
     * Invoke the wrapped callable (shallow const, like std::function).
     * Panics if empty.
     */
    R
    operator()(Args... args) const
    {
        ensure(ops_ != nullptr,
               "InlineFunction: invoking an empty callable");
        return ops_->invoke(const_cast<unsigned char *>(storage_),
                            std::forward<Args>(args)...);
    }

  private:
    struct Ops
    {
        R (*invoke)(void *obj, Args &&...args);
        /** Move *src's payload into dst's raw storage, destroy src's. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *obj) noexcept;
    };

    template <typename D>
    static constexpr bool kFitsInline =
        sizeof(D) <= kInlineBytes &&
        alignof(D) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<D>;

    template <typename D> struct InlineOps
    {
        static D *
        self(void *obj)
        {
            return std::launder(reinterpret_cast<D *>(obj));
        }

        static R
        invoke(void *obj, Args &&...args)
        {
            return (*self(obj))(std::forward<Args>(args)...);
        }

        static void
        relocate(void *dst, void *src) noexcept
        {
            D *from = self(src);
            ::new (dst) D(std::move(*from));
            from->~D();
        }

        static void
        destroy(void *obj) noexcept
        {
            self(obj)->~D();
        }

        static constexpr Ops kOps{&invoke, &relocate, &destroy};
    };

    template <typename D> struct SpillOps
    {
        static D *
        self(void *obj)
        {
            return *std::launder(reinterpret_cast<D **>(obj));
        }

        static R
        invoke(void *obj, Args &&...args)
        {
            return (*self(obj))(std::forward<Args>(args)...);
        }

        static void
        relocate(void *dst, void *src) noexcept
        {
            // The payload stays put; only the pointer moves.
            ::new (dst) D *(self(src));
        }

        static void
        destroy(void *obj) noexcept
        {
            D *target = self(obj);
            target->~D();
            detail::spillFree(target, sizeof(D), alignof(D));
        }

        static constexpr Ops kOps{&invoke, &relocate, &destroy};
    };

    template <typename D, typename F>
    void
    construct(F &&fn)
    {
        if constexpr (kFitsInline<D>) {
            ::new (static_cast<void *>(storage_)) D(std::forward<F>(fn));
            ops_ = &InlineOps<D>::kOps;
        } else {
            void *mem = detail::spillAllocate(sizeof(D), alignof(D));
            try {
                ::new (mem) D(std::forward<F>(fn));
            } catch (...) {
                detail::spillFree(mem, sizeof(D), alignof(D));
                throw;
            }
            ::new (static_cast<void *>(storage_))
                D *(static_cast<D *>(mem));
            ops_ = &SpillOps<D>::kOps;
        }
    }

    void
    reset() noexcept
    {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

/** The event-callback type used throughout the simulator. */
using InlineCallback = InlineFunction<void()>;

} // namespace accel::sim

#include "sim/reference_event_queue.hh"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/logging.hh"

namespace accel::sim {

std::uint64_t
ReferenceEventQueue::scheduleEvent(Tick when, Callback &&cb, int priority)
{
    require(when >= now_,
            "ReferenceEventQueue: scheduling into the past");
    ensure(static_cast<bool>(cb), "ReferenceEventQueue: empty callback");
    std::uint64_t seq = sequence_++;
    heap_.push_back(Event{when, priority, seq, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return seq;
}

void
ReferenceEventQueue::schedule(Tick when, Callback &&cb, int priority)
{
    scheduleEvent(when, std::move(cb), priority);
}

void
ReferenceEventQueue::scheduleIn(Tick delay, Callback &&cb, int priority)
{
    schedule(now_ + delay, std::move(cb), priority);
}

TimerId
ReferenceEventQueue::scheduleTimer(Tick when, Callback &&cb, int priority)
{
    std::uint64_t seq = scheduleEvent(when, std::move(cb), priority);
    liveTimers_.insert(seq);
    return seq;
}

TimerId
ReferenceEventQueue::scheduleTimerIn(Tick delay, Callback &&cb,
                                     int priority)
{
    return scheduleTimer(now_ + delay, std::move(cb), priority);
}

bool
ReferenceEventQueue::cancelTimer(TimerId id)
{
    if (liveTimers_.erase(id) == 0)
        return false;
    cancelled_.insert(id);
    maybeCompact();
    return true;
}

void
ReferenceEventQueue::maybeCompact()
{
    if (cancelled_.size() < kCompactMinCancelled ||
        cancelled_.size() * 2 < heap_.size()) {
        return;
    }
    auto dead = [this](const Event &ev) {
        return cancelled_.count(ev.sequence) > 0;
    };
    heap_.erase(std::remove_if(heap_.begin(), heap_.end(), dead),
                heap_.end());
    std::make_heap(heap_.begin(), heap_.end(), Later{});
    cancelled_.clear();
    ++compactions_;
}

ReferenceEventQueue::Event
ReferenceEventQueue::popEvent()
{
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    return ev;
}

bool
ReferenceEventQueue::runOne(Tick limit)
{
    while (!heap_.empty() && heap_.front().when <= limit) {
        Event ev = popEvent();
        if (!cancelled_.empty() && cancelled_.erase(ev.sequence) > 0)
            continue;
        if (!liveTimers_.empty())
            liveTimers_.erase(ev.sequence);
        now_ = ev.when;
        ++processed_;
        ev.callback();
        return true;
    }
    return false;
}

bool
ReferenceEventQueue::runNext()
{
    return runOne(std::numeric_limits<Tick>::max());
}

void
ReferenceEventQueue::runUntil(Tick limit)
{
    while (runOne(limit)) {
    }
    if (now_ < limit)
        now_ = limit;
}

void
ReferenceEventQueue::runAll()
{
    while (runNext()) {
    }
}

} // namespace accel::sim

/**
 * @file
 * Reference event queue: the pre-optimization sim core, kept verbatim.
 *
 * This is the original `sim::EventQueue` — `std::function` callbacks
 * and a single binary heap with cancelled-slot compaction — preserved
 * as an executable specification. Two consumers depend on it staying
 * byte-for-byte faithful to the seed implementation:
 *
 *  - the randomized property suite (tests/sim/event_queue_property_
 *    test.cc) cross-checks the timer-wheel EventQueue against it:
 *    identical execution sequences and identical now()/processed()
 *    trajectories for arbitrary op mixes;
 *  - bench/simcore_throughput uses it as the "pre-change queue"
 *    baseline for the events/sec and allocations/event regression
 *    gates.
 *
 * Do not optimize this class; it exists to be slow in exactly the old
 * ways.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/event_queue.hh"

namespace accel::sim {

/** Pure-heap, std::function-based event queue (oracle/baseline). */
class ReferenceEventQueue
{
  public:
    using Callback = std::function<void()>;

    ReferenceEventQueue() = default;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p cb at absolute time @p when. */
    void schedule(Tick when, Callback &&cb, int priority = 0);

    /** Schedule @p cb @p delay cycles from now. */
    void scheduleIn(Tick delay, Callback &&cb, int priority = 0);

    /** Schedule a cancellable timer at absolute time @p when. */
    TimerId scheduleTimer(Tick when, Callback &&cb, int priority = 0);

    /** Schedule a cancellable timer @p delay cycles from now. */
    TimerId scheduleTimerIn(Tick delay, Callback &&cb, int priority = 0);

    /** Cancel a pending timer; true when @p id was live. */
    bool cancelTimer(TimerId id);

    /** Timers scheduled and neither fired nor cancelled yet. */
    size_t activeTimers() const { return liveTimers_.size(); }

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Pending events, cancelled-timer slots included. */
    size_t pending() const { return heap_.size(); }

    /** Pending events minus still-queued cancelled-timer slots. */
    size_t pendingLive() const { return heap_.size() - cancelled_.size(); }

    /** Times the heap was rebuilt to shed cancelled slots. */
    std::uint64_t compactions() const { return compactions_; }

    /** Cancelled-slot floor below which compaction never triggers. */
    static constexpr size_t kCompactMinCancelled = 64;

    /** Reserve heap capacity for an expected number of pending events. */
    void reserve(size_t events) { heap_.reserve(events); }

    /** Total events executed so far. */
    std::uint64_t processed() const { return processed_; }

    /** Execute the earliest event; false when the queue was empty. */
    bool runNext();

    /** Run events with timestamps <= @p limit, then advance now(). */
    void runUntil(Tick limit);

    /** Run until the queue drains. */
    void runAll();

  private:
    struct Event
    {
        Tick when;
        int priority;
        std::uint64_t sequence;
        Callback callback;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.sequence > b.sequence;
        }
    };

    Event popEvent();
    std::uint64_t scheduleEvent(Tick when, Callback &&cb, int priority);
    bool runOne(Tick limit);
    void maybeCompact();

    std::vector<Event> heap_;
    Tick now_ = 0;
    std::uint64_t sequence_ = 1;
    std::uint64_t processed_ = 0;
    std::uint64_t compactions_ = 0;
    std::unordered_set<std::uint64_t> liveTimers_;
    std::unordered_set<std::uint64_t> cancelled_;
};

} // namespace accel::sim

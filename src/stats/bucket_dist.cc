#include "stats/bucket_dist.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/logging.hh"

namespace accel {

BucketDist::BucketDist(std::vector<DistBucket> buckets)
    : buckets_(std::move(buckets))
{
    require(!buckets_.empty(), "BucketDist: no buckets");
    double total = 0.0;
    double prev_hi = -std::numeric_limits<double>::infinity();
    for (const auto &b : buckets_) {
        require(b.hi > b.lo, "BucketDist: bucket hi must exceed lo");
        require(b.lo >= prev_hi, "BucketDist: buckets must ascend");
        require(b.mass >= 0, "BucketDist: negative mass");
        require(std::isfinite(b.hi), "BucketDist: bucket hi must be finite");
        prev_hi = b.hi;
        total += b.mass;
    }
    require(total > 0, "BucketDist: total mass must be positive");

    cumulative_.reserve(buckets_.size());
    double cum = 0.0;
    for (auto &b : buckets_) {
        b.mass /= total;
        cum += b.mass;
        cumulative_.push_back(cum);
    }
    // Guard against floating point drift.
    cumulative_.back() = 1.0;
}

const DistBucket &
BucketDist::bucket(size_t i) const
{
    ensure(i < buckets_.size(), "BucketDist: bucket index out of range");
    return buckets_[i];
}

double
BucketDist::fractionAtLeast(double x) const
{
    double frac = 0.0;
    for (const auto &b : buckets_) {
        if (x <= b.lo) {
            frac += b.mass;
        } else if (x < b.hi) {
            frac += b.mass * (b.hi - x) / (b.hi - b.lo);
        }
    }
    return frac;
}

double
BucketDist::valueFractionAtLeast(double x) const
{
    // With uniform density within [lo, hi), the value (e.g. bytes) carried
    // by the bucket is mass * midpoint; the part above x carries
    // mass_above * (x + hi) / 2.
    double total = 0.0;
    double above = 0.0;
    for (const auto &b : buckets_) {
        double bucket_value = b.mass * 0.5 * (b.lo + b.hi);
        total += bucket_value;
        if (x <= b.lo) {
            above += bucket_value;
        } else if (x < b.hi) {
            double mass_above = b.mass * (b.hi - x) / (b.hi - b.lo);
            above += mass_above * 0.5 * (x + b.hi);
        }
    }
    ensure(total > 0, "BucketDist: zero total value");
    return above / total;
}

double
BucketDist::mean() const
{
    double m = 0.0;
    for (const auto &b : buckets_)
        m += b.mass * 0.5 * (b.lo + b.hi);
    return m;
}

double
BucketDist::quantile(double p) const
{
    require(p >= 0.0 && p <= 1.0, "BucketDist::quantile: p outside [0,1]");
    if (p <= 0.0)
        return buckets_.front().lo;
    auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), p);
    size_t i = static_cast<size_t>(it - cumulative_.begin());
    i = std::min(i, buckets_.size() - 1);
    const auto &b = buckets_[i];
    double below = i == 0 ? 0.0 : cumulative_[i - 1];
    if (b.mass <= 0)
        return b.lo;
    double within = (p - below) / b.mass;
    return b.lo + within * (b.hi - b.lo);
}

double
BucketDist::sample(Rng &rng) const
{
    double u = rng.uniform();
    auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    size_t i = static_cast<size_t>(it - cumulative_.begin());
    i = std::min(i, buckets_.size() - 1);
    const auto &b = buckets_[i];
    return rng.uniform(b.lo, b.hi);
}

std::string
BucketDist::bucketLabel(size_t i) const
{
    const auto &b = bucket(i);
    auto fmt = [](double v) {
        std::ostringstream os;
        if (v >= 1024 && std::fmod(v, 1024.0) == 0)
            os << static_cast<long long>(v / 1024) << "K";
        else
            os << static_cast<long long>(v);
        return os.str();
    };
    std::ostringstream os;
    os << fmt(b.lo) << "-" << fmt(b.hi);
    return os.str();
}

} // namespace accel

/**
 * @file
 * Empirical bucketed distributions.
 *
 * The paper characterizes offload granularities as CDFs over byte-range
 * buckets (Figs. 15, 19, 21, 22). BucketDist represents exactly that: a
 * probability mass per [lo, hi) range, with uniform interpolation within a
 * bucket. The model queries it for the fraction of offloads at or above a
 * break-even granularity (count- and bytes-weighted), and the workload
 * generator samples from it.
 */

#pragma once

#include <string>
#include <vector>

#include "util/rng.hh"

namespace accel {

/** One bucket of an empirical distribution: mass over [lo, hi). */
struct DistBucket
{
    double lo;   //!< inclusive lower bound
    double hi;   //!< exclusive upper bound; must be finite
    double mass; //!< unnormalized non-negative weight
};

/** Empirical distribution over contiguous value ranges. */
class BucketDist
{
  public:
    /**
     * Build from buckets; they must be non-overlapping, ascending, with
     * non-negative mass summing to a positive total. Mass is normalized.
     *
     * @throws FatalError on malformed bucket lists.
     */
    explicit BucketDist(std::vector<DistBucket> buckets);

    /** Number of buckets. */
    size_t bucketCount() const { return buckets_.size(); }

    /** Access bucket @p i (normalized mass). */
    const DistBucket &bucket(size_t i) const;

    /** P(X >= x), interpolating uniformly within the straddled bucket. */
    double fractionAtLeast(double x) const;

    /** P(X < x) = 1 - fractionAtLeast(x). */
    double cdf(double x) const { return 1.0 - fractionAtLeast(x); }

    /**
     * Fraction of total *value mass* (e.g. bytes) carried by samples
     * >= x, assuming uniform density within each bucket.
     */
    double valueFractionAtLeast(double x) const;

    /** Mean value, using bucket midpoints for uniform in-bucket density. */
    double mean() const;

    /** Quantile: smallest x with CDF(x) >= p, for p in [0, 1]. */
    double quantile(double p) const;

    /** Draw one sample (uniform within the selected bucket). */
    double sample(Rng &rng) const;

    /** Human-readable bucket label, e.g. "256-512". */
    std::string bucketLabel(size_t i) const;

  private:
    std::vector<DistBucket> buckets_; // masses normalized to sum 1
    std::vector<double> cumulative_;  // cumulative mass after bucket i
};

} // namespace accel

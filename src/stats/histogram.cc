#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/logging.hh"

namespace accel {

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges))
{
    require(edges_.size() >= 2, "Histogram: need at least two edges");
    for (size_t i = 1; i < edges_.size(); ++i) {
        require(edges_[i] > edges_[i - 1],
                "Histogram: edges must be strictly ascending");
    }
    // Buckets between edges plus the overflow bucket.
    counts_.assign(edges_.size(), 0.0);
}

Histogram
Histogram::makePow2(double first, double last)
{
    require(first > 0 && last >= first,
            "Histogram::makePow2: need 0 < first <= last");
    std::vector<double> edges{0.0};
    for (double e = first; e <= last; e *= 2.0)
        edges.push_back(e);
    return Histogram(std::move(edges));
}

void
Histogram::add(double value)
{
    addWeighted(value, 1.0);
}

void
Histogram::addWeighted(double value, double weight)
{
    require(weight >= 0, "Histogram: negative weight");
    counts_[bucketIndex(value)] += weight;
    total_ += weight;
    prefixDirty_ = true;
    stats_.add(value);
}

void
Histogram::merge(const Histogram &other)
{
    require(edges_ == other.edges_,
            "Histogram::merge: bucket edges differ");
    for (size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
    stats_.merge(other.stats_);
    prefixDirty_ = true;
}

double
Histogram::quantile(double q) const
{
    require(q >= 0.0 && q <= 1.0,
            "Histogram::quantile: q must be in [0, 1]");
    if (total_ == 0.0)
        return 0.0;
    double target = q * total_;
    double below = 0.0;
    for (size_t i = 0; i < counts_.size(); ++i) {
        if (below + counts_[i] >= target || i + 1 == counts_.size()) {
            if (i + 1 >= edges_.size())
                return edges_.back(); // overflow: lower bound
            double lo = edges_[i];
            double hi = edges_[i + 1];
            if (counts_[i] <= 0.0)
                return lo;
            double frac = (target - below) / counts_[i];
            return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
        }
        below += counts_[i];
    }
    return edges_.back();
}

double
Histogram::bucketWeight(size_t i) const
{
    ensure(i < counts_.size(), "Histogram: bucket index out of range");
    return counts_[i];
}

double
Histogram::bucketLo(size_t i) const
{
    ensure(i < counts_.size(), "Histogram: bucket index out of range");
    return edges_[i];
}

double
Histogram::bucketHi(size_t i) const
{
    ensure(i < counts_.size(), "Histogram: bucket index out of range");
    if (i + 1 < edges_.size())
        return edges_[i + 1];
    return std::numeric_limits<double>::infinity();
}

std::string
Histogram::bucketLabel(size_t i) const
{
    auto fmt = [](double v) {
        std::ostringstream os;
        if (v >= 1024 && std::fmod(v, 1024.0) == 0) {
            os << static_cast<long long>(v / 1024) << "K";
        } else if (std::floor(v) == v &&
                   std::abs(v) < 9.2e18 /* fits long long */) {
            os << static_cast<long long>(v);
        } else {
            // Fractional edges (e.g. 0.5) must not truncate to the
            // integer below — that produced duplicate labels like
            // "0-0". Default stream precision keeps them readable.
            os << v;
        }
        return os.str();
    };
    if (i + 1 >= edges_.size())
        return ">" + fmt(edges_.back());
    std::ostringstream os;
    os << fmt(edges_[i]) << "-" << fmt(edges_[i + 1]);
    return os.str();
}

double
Histogram::cumulativeFraction(size_t i) const
{
    ensure(i < counts_.size(), "Histogram: bucket index out of range");
    if (total_ == 0)
        return 0.0;
    if (prefixDirty_) {
        // Rebuild once per add-burst; emitting a whole CDF is then O(1)
        // per bucket instead of O(buckets) re-summation. Left-to-right
        // accumulation matches the old per-call loop bit for bit.
        prefix_.resize(counts_.size());
        double cum = 0.0;
        for (size_t b = 0; b < counts_.size(); ++b) {
            cum += counts_[b];
            prefix_[b] = cum;
        }
        prefixDirty_ = false;
    }
    return prefix_[i] / total_;
}

size_t
Histogram::bucketIndex(double value) const
{
    if (value < edges_.front())
        return 0;
    // upper_bound over interior edges: bucket i covers [edges[i],
    // edges[i+1]); values >= last edge land in the overflow bucket.
    auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
    size_t idx = static_cast<size_t>(it - edges_.begin());
    if (idx == 0)
        return 0;
    return std::min(idx - 1, counts_.size() - 1);
}

} // namespace accel

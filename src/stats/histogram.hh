/**
 * @file
 * Bucketed histograms for collecting simulated measurements (latencies,
 * offload sizes) and turning them into the CDF figures the paper reports.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/online_stats.hh"

namespace accel {

/**
 * Histogram over explicit, contiguous [lo, hi) buckets plus an implicit
 * overflow bucket [last_hi, +inf).
 *
 * The paper's CDF figures use power-of-two byte buckets (e.g. Fig. 15's
 * 0-4, 4-8, ..., >4K); makePow2() builds that scheme.
 */
class Histogram
{
  public:
    /** Build from ascending bucket edges; edges.size() >= 2 required. */
    explicit Histogram(std::vector<double> edges);

    /**
     * Power-of-two byte buckets: [0, first), [first, 2*first), ... up to
     * [last, +inf). Matches the paper's CDF figure bucketing.
     */
    static Histogram makePow2(double first, double last);

    /** Record one observation (negative values clamp to the first bucket). */
    void add(double value);

    /** Record @p weight observations of @p value. */
    void addWeighted(double value, double weight);

    /**
     * Fold @p other into this histogram: bucket weights add, summary
     * statistics merge. Both histograms must share identical edges.
     * This is how windowed SLO sampling aggregates control windows
     * into a run-level distribution without double-counting: each
     * window is recorded once, merged once, then discarded.
     */
    void merge(const Histogram &other);

    /**
     * Quantile estimate by linear interpolation inside the bucket
     * where the cumulative weight crosses @p q (in [0, 1]). Weight in
     * the overflow bucket pins the estimate to its lower edge (the
     * estimate is then a lower bound). 0 when the histogram is empty.
     */
    double quantile(double q) const;

    /** Total recorded weight. */
    double total() const { return total_; }

    /** Number of buckets, including the overflow bucket. */
    size_t bucketCount() const { return counts_.size(); }

    /** Weight in bucket @p i. */
    double bucketWeight(size_t i) const;

    /** Inclusive lower edge of bucket @p i. */
    double bucketLo(size_t i) const;

    /** Exclusive upper edge of bucket @p i (+inf for overflow). */
    double bucketHi(size_t i) const;

    /** Human-readable label, e.g. "256-512" or ">4096". */
    std::string bucketLabel(size_t i) const;

    /**
     * Cumulative fraction of weight in buckets 0..i (inclusive).
     * Amortized O(1): a cached prefix sum is rebuilt lazily after adds.
     */
    double cumulativeFraction(size_t i) const;

    /** Summary statistics of raw observations. */
    const OnlineStats &stats() const { return stats_; }

  private:
    std::vector<double> edges_;
    std::vector<double> counts_; // one per bucket incl. overflow
    double total_ = 0.0;
    OnlineStats stats_;
    mutable std::vector<double> prefix_; // cached cumulative weights
    mutable bool prefixDirty_ = true;

    size_t bucketIndex(double value) const;
};

} // namespace accel

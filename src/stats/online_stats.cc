#include "stats/online_stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/json_fmt.hh"

namespace accel {

void
OnlineStats::add(double x)
{
    ++count_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    double delta = other.mean_ - mean_;
    double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
OnlineStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

std::string
OnlineStats::summaryJson() const
{
    std::ostringstream os;
    os << "{\"count\": " << count_ << ", \"mean\": "
       << jsonNumber(mean()) << ", \"min\": "
       << jsonNumber(count_ ? min_ : 0.0) << ", \"max\": "
       << jsonNumber(count_ ? max_ : 0.0) << "}";
    return os.str();
}

} // namespace accel

/**
 * @file
 * Streaming summary statistics (Welford / Chan parallel merge).
 */

#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace accel {

/**
 * Single-pass mean/variance/min/max accumulator.
 *
 * Uses Welford's algorithm for numerical stability; two accumulators can
 * be merged exactly (Chan et al.), which the A/B harness uses to combine
 * per-run metrics.
 */
class OnlineStats
{
  public:
    /** Fold one observation into the summary. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const OnlineStats &other);

    /** Number of observations. */
    std::uint64_t count() const { return count_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Sum of observations. */
    double sum() const { return mean_ * static_cast<double>(count_); }

    /** Population variance; 0 with fewer than two observations. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest observation; +inf when empty. */
    double min() const { return min_; }

    /** Largest observation; -inf when empty. */
    double max() const { return max_; }

    /** {"count":..,"mean":..,"min":..,"max":..} (0s when empty). */
    std::string summaryJson() const;

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace accel

#include "stats/reservoir.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/json_fmt.hh"
#include "util/logging.hh"

namespace accel {

ReservoirSample::ReservoirSample(size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed, 0x7265736572764eULL)
{
    require(capacity_ > 0, "ReservoirSample: capacity must be positive");
    values_.reserve(capacity_);
}

void
ReservoirSample::add(double value)
{
    ++seen_;
    dirty_ = true;
    if (values_.size() < capacity_) {
        values_.push_back(value);
        return;
    }
    // Algorithm R: replace a uniformly random slot with probability
    // capacity / seen. The draw must be an unbiased 64-bit one: a
    // 32-bit `next() % seen_` truncates once seen_ exceeds 2^32 and
    // carries modulo bias at every stream length.
    std::uint64_t slot = rng_.below64(seen_);
    if (slot < capacity_)
        values_[static_cast<size_t>(slot)] = value;
}

double
ReservoirSample::quantile(double p) const
{
    require(!values_.empty(), "ReservoirSample: no observations");
    require(p >= 0.0 && p <= 1.0, "ReservoirSample: p outside [0,1]");
    if (dirty_) {
        sorted_ = values_;
        std::sort(sorted_.begin(), sorted_.end());
        dirty_ = false;
    }
    size_t rank = static_cast<size_t>(
        std::ceil(p * static_cast<double>(sorted_.size())));
    if (rank > 0)
        --rank;
    return sorted_[std::min(rank, sorted_.size() - 1)];
}

std::string
ReservoirSample::summaryJson() const
{
    std::ostringstream os;
    bool any = !values_.empty();
    os << "{\"count\": " << seen_ << ", \"p50\": "
       << jsonNumber(any ? p50() : 0.0) << ", \"p95\": "
       << jsonNumber(any ? p95() : 0.0) << ", \"p99\": "
       << jsonNumber(any ? p99() : 0.0) << "}";
    return os.str();
}

} // namespace accel

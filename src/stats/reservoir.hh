/**
 * @file
 * Reservoir sampling for quantile estimation.
 *
 * The simulator streams millions of per-request latencies; a fixed-size
 * uniform reservoir (Vitter's algorithm R) keeps an unbiased sample
 * from which tail quantiles (p50/p95/p99) are estimated for SLO
 * analysis.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hh"

namespace accel {

/** Fixed-size uniform sample over a stream. */
class ReservoirSample
{
  public:
    /**
     * @param capacity reservoir size (quantile resolution ~1/capacity)
     * @param seed     RNG seed for replacement decisions
     */
    explicit ReservoirSample(size_t capacity = 4096,
                             std::uint64_t seed = 0x5eed);

    /** Observe one value. */
    void add(double value);

    /** Values observed so far (not the reservoir size). */
    std::uint64_t count() const { return seen_; }

    /** Current reservoir occupancy. */
    size_t size() const { return values_.size(); }

    /**
     * Quantile estimate for p in [0, 1] (nearest-rank on the sample).
     * @throws FatalError when empty or p out of range.
     */
    double quantile(double p) const;

    /** Convenience percentiles. */
    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    /** {"count":..,"p50":..,"p95":..,"p99":..} (0s when empty). */
    std::string summaryJson() const;

  private:
    size_t capacity_;
    std::uint64_t seen_ = 0;
    std::vector<double> values_;
    mutable std::vector<double> sorted_;
    mutable bool dirty_ = false;
    Rng rng_;
};

} // namespace accel

#include "util/csv.hh"

#include "util/logging.hh"

namespace accel {

CsvWriter::CsvWriter(std::ostream &os, std::vector<std::string> headers)
    : os_(os), columns_(headers.size())
{
    ensure(columns_ > 0, "CsvWriter requires at least one column");
    writeRow(headers);
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    ensure(cells.size() == columns_, "CsvWriter::row: cell count mismatch");
    writeRow(cells);
    ++rows_;
}

std::string
CsvWriter::quote(const std::string &field)
{
    bool needs = field.find_first_of(",\"\n") != std::string::npos;
    if (!needs)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            os_ << ',';
        os_ << quote(cells[i]);
    }
    os_ << '\n';
}

} // namespace accel

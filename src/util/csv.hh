/**
 * @file
 * Minimal CSV emitter so benches can dump machine-readable series next to
 * the human-readable tables.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace accel {

/**
 * Streams rows of comma-separated values with RFC-4180 quoting.
 *
 * The writer does not own the output stream; callers keep it alive for the
 * writer's lifetime.
 */
class CsvWriter
{
  public:
    /** Bind to an output stream and emit the header row. */
    CsvWriter(std::ostream &os, std::vector<std::string> headers);

    /**
     * Emit one data row.
     * @throws PanicError when the cell count differs from the header count.
     */
    void row(const std::vector<std::string> &cells);

    /** Number of data rows written so far. */
    size_t rows() const { return rows_; }

    /** Quote a single field per RFC 4180 when needed. */
    static std::string quote(const std::string &field);

  private:
    std::ostream &os_;
    size_t columns_;
    size_t rows_ = 0;

    void writeRow(const std::vector<std::string> &cells);
};

} // namespace accel

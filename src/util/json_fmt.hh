/**
 * @file
 * Minimal JSON number/string formatting shared by the stats summary
 * emitters (OnlineStats/ReservoirSample/ServiceMetrics/TierStats).
 *
 * Deliberately tiny: the benches hand-build their JSON reports with
 * ostringstream, and the summary emitters need only two guarantees a
 * bare `<<` does not give — non-finite doubles must not leak "inf"/
 * "nan" tokens into the output (invalid JSON), and the format must be
 * locale-independent and identical across runs so report files diff
 * cleanly under the determinism parity suite.
 */

#pragma once

#include <cmath>
#include <locale>
#include <sstream>
#include <string>

namespace accel {

/** A double as a JSON-valid token; non-finite values render as 0. */
inline std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os << v;
    return os.str();
}

} // namespace accel

#include "util/logging.hh"

#include <iostream>

namespace accel {

namespace {
LogLevel g_level = LogLevel::Inform;
} // namespace

LogLevel
setLogLevel(LogLevel level)
{
    LogLevel prev = g_level;
    g_level = level;
    return prev;
}

LogLevel
logLevel()
{
    return g_level;
}

void
inform(const std::string &msg)
{
    if (g_level >= LogLevel::Inform)
        std::cerr << "info: " << msg << "\n";
}

void
warn(const std::string &msg)
{
    if (g_level >= LogLevel::Warn)
        std::cerr << "warn: " << msg << "\n";
}

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

RateLimitedWarner::RateLimitedWarner(std::string label,
                                     std::uint64_t firstN)
    : label_(std::move(label)), firstN_(firstN)
{}

void
RateLimitedWarner::warn(const std::string &msg)
{
    ++occurrences_;
    if (occurrences_ <= firstN_) {
        accel::warn(label_ + ": " + msg);
        if (occurrences_ == firstN_)
            accel::warn(label_ + ": further warnings suppressed");
    } else {
        ++suppressed_;
    }
}

void
RateLimitedWarner::flushSummary()
{
    if (suppressed_ == 0)
        return;
    accel::warn(label_ + ": suppressed " + std::to_string(suppressed_) +
                " similar warning(s)");
    suppressed_ = 0;
}

} // namespace accel

#include "util/logging.hh"

#include <iostream>

namespace accel {

namespace {
LogLevel g_level = LogLevel::Inform;
} // namespace

LogLevel
setLogLevel(LogLevel level)
{
    LogLevel prev = g_level;
    g_level = level;
    return prev;
}

LogLevel
logLevel()
{
    return g_level;
}

void
inform(const std::string &msg)
{
    if (g_level >= LogLevel::Inform)
        std::cerr << "info: " << msg << "\n";
}

void
warn(const std::string &msg)
{
    if (g_level >= LogLevel::Warn)
        std::cerr << "warn: " << msg << "\n";
}

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

} // namespace accel

/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 idiom: inform() for status, warn() for suspicious but
 * survivable conditions, fatal() for user errors (bad configuration,
 * invalid arguments), and panic() for internal invariant violations.
 * Unlike gem5 we raise typed exceptions instead of terminating the
 * process so library users and tests can observe and handle failures.
 */

#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace accel {

/** Error raised by fatal(): the caller supplied invalid input. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error("fatal: " + msg)
    {}
};

/** Error raised by panic(): an internal invariant was violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error("panic: " + msg)
    {}
};

/**
 * Verbosity control for inform()/warn(). Messages below the threshold are
 * suppressed; benches use this to keep figure output clean.
 */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2 };

/** Set the global log level; returns the previous level. */
LogLevel setLogLevel(LogLevel level);

/** Current global log level. */
LogLevel logLevel();

/** Print an informational status message to stderr. */
void inform(const std::string &msg);

/** Print a warning about a survivable but suspicious condition. */
void warn(const std::string &msg);

/**
 * Report an unrecoverable user error (bad config, invalid argument).
 * @throws FatalError always.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Report an internal invariant violation (a bug in this library).
 * @throws PanicError always.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Check a user-facing precondition, raising FatalError on failure.
 *
 * The const char* overload keeps the success path allocation-free;
 * the message only becomes a std::string when the check fails. Hot
 * paths (the simulator's per-event checks, the allocator) rely on
 * this.
 *
 * @param ok    condition that must hold
 * @param msg   description of the violated requirement
 */
inline void
require(bool ok, const char *msg)
{
    if (!ok) [[unlikely]]
        fatal(msg);
}

/** require() for messages composed at the call site. */
inline void
require(bool ok, const std::string &msg)
{
    if (!ok) [[unlikely]]
        fatal(msg);
}

/** Check an internal invariant, raising PanicError on failure. */
inline void
ensure(bool ok, const char *msg)
{
    if (!ok) [[unlikely]]
        panic(msg);
}

/** ensure() for messages composed at the call site. */
inline void
ensure(bool ok, const std::string &msg)
{
    if (!ok) [[unlikely]]
        panic(msg);
}

/**
 * Count-based rate limiter for warn(): the first N occurrences print,
 * the rest are counted, and flushSummary() reports the suppressed
 * total. Count-based (not wall-clock-based) on purpose — fault storms
 * in the simulator must produce byte-identical logs for a given seed,
 * and the determinism lint bans clock reads in simulation code.
 *
 * Typical use: one warner per failure class (e.g. offload timeouts),
 * warn() on every occurrence, flushSummary() at end of run.
 */
class RateLimitedWarner
{
  public:
    /**
     * @param label  failure-class name, prefixed to every message
     * @param firstN occurrences printed before suppression starts
     */
    explicit RateLimitedWarner(std::string label, std::uint64_t firstN = 5);

    /** Print (first N times) or count (afterwards) one occurrence. */
    void warn(const std::string &msg);

    /** Occurrences seen so far. */
    std::uint64_t occurrences() const { return occurrences_; }

    /** Occurrences swallowed since the last flushSummary(). */
    std::uint64_t suppressed() const { return suppressed_; }

    /**
     * Emit "<label>: suppressed K similar warning(s)" when any were
     * swallowed, then reset the suppressed counter (occurrences keep
     * accumulating). Quiet when nothing was suppressed.
     */
    void flushSummary();

  private:
    std::string label_;
    std::uint64_t firstN_;
    std::uint64_t occurrences_ = 0;
    std::uint64_t suppressed_ = 0;
};

} // namespace accel

#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace accel {

double
Rng::exponential(double mean)
{
    require(mean > 0, "Rng::exponential: mean must be positive");
    // Avoid log(0) by nudging into (0, 1].
    double u = 1.0 - uniform();
    return -mean * std::log(u);
}

double
Rng::gaussian()
{
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

double
Rng::logNormal(double mu, double sigma)
{
    require(sigma >= 0, "Rng::logNormal: sigma must be non-negative");
    return std::exp(mu + sigma * gaussian());
}

} // namespace accel

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components (workload generators, the discrete-event
 * simulator, samplers) take an explicit Rng so experiments are exactly
 * reproducible from a seed. The generator is PCG32 (O'Neill 2014), chosen
 * for statistical quality, tiny state, and platform-independent output.
 */

#pragma once

#include <cstdint>

namespace accel {

/** PCG32 pseudo-random generator with a 64-bit state and stream. */
class Rng
{
  public:
    /** Seed the generator; distinct streams never collide. */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (stream << 1u) | 1u;
        next();
        state_ += seed;
        next();
    }

    /** Next 64 uniformly random bits (two next() words). */
    std::uint64_t
    next64()
    {
        std::uint64_t hi = next();
        return (hi << 32) | next();
    }

    /** Next 32 uniformly random bits. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /**
     * Uniform integer in [0, bound) without modulo bias.
     * A bound of 0 returns 0.
     */
    std::uint32_t
    below(std::uint32_t bound)
    {
        if (bound == 0)
            return 0;
        std::uint32_t threshold = (-bound) % bound;
        while (true) {
            std::uint32_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /**
     * Uniform 64-bit integer in [0, bound) without modulo bias
     * (Lemire's multiply-with-rejection over next64() words). A bound
     * of 0 returns 0. Streams longer than 2^32 — e.g. reservoir
     * sampling over multi-billion-event simulations — need the full
     * 64-bit range; a 32-bit draw would truncate and bias them.
     */
    std::uint64_t
    below64(std::uint64_t bound)
    {
        if (bound == 0)
            return 0;
        unsigned __int128 m =
            static_cast<unsigned __int128>(next64()) * bound;
        auto low = static_cast<std::uint64_t>(m);
        if (low < bound) {
            std::uint64_t threshold = (-bound) % bound;
            while (low < threshold) {
                m = static_cast<unsigned __int128>(next64()) * bound;
                low = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Bernoulli draw with success probability @p p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Exponentially distributed double with the given mean (> 0). */
    double exponential(double mean);

    /** Standard normal via Box-Muller (no cached spare; stateless). */
    double gaussian();

    /** Log-normal with parameters of the underlying normal. */
    double logNormal(double mu, double sigma);

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace accel

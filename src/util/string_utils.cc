#include "util/string_utils.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "util/logging.hh"

namespace accel {

std::string
trim(std::string_view s)
{
    size_t begin = 0;
    size_t end = s.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(s[end - 1])))
        --end;
    return std::string(s.substr(begin, end - begin));
}

std::vector<std::string>
split(std::string_view s, char delim)
{
    std::vector<std::string> out;
    size_t start = 0;
    while (true) {
        size_t pos = s.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(s.substr(start));
            break;
        }
        out.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view s, std::string_view suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

double
parseDouble(std::string_view s)
{
    std::string t = trim(s);
    if (t.empty())
        fatal("parseDouble: empty string");
    char *end = nullptr;
    errno = 0;
    double v = std::strtod(t.c_str(), &end);
    if (errno != 0 || end != t.c_str() + t.size())
        fatal("parseDouble: malformed number '" + t + "'");
    return v;
}

std::uint64_t
parseCount(std::string_view s)
{
    double v = parseDouble(s);
    // NaN compares false against every bound below and would reach the
    // float→integer cast, which is undefined for NaN; reject it first.
    if (!std::isfinite(v))
        fatal("parseCount: non-finite value '" + std::string(s) + "'");
    if (v < 0)
        fatal("parseCount: negative value '" + std::string(s) + "'");
    if (v > static_cast<double>(std::numeric_limits<std::uint64_t>::max()))
        fatal("parseCount: value out of range '" + std::string(s) + "'");
    double rounded = std::round(v);
    if (std::abs(v - rounded) > 1e-6 * std::max(1.0, std::abs(v)))
        fatal("parseCount: non-integral value '" + std::string(s) + "'");
    return static_cast<std::uint64_t>(rounded);
}

bool
parseBool(std::string_view s)
{
    std::string t = toLower(trim(s));
    if (t == "true" || t == "yes" || t == "on" || t == "1")
        return true;
    if (t == "false" || t == "no" || t == "off" || t == "0")
        return false;
    fatal("parseBool: malformed boolean '" + t + "'");
}

} // namespace accel

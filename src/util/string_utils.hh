/**
 * @file
 * Small string helpers shared across the library.
 */

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace accel {

/** Strip leading and trailing ASCII whitespace. */
std::string trim(std::string_view s);

/** Split on a delimiter character; empty fields are preserved. */
std::vector<std::string> split(std::string_view s, char delim);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/** True when @p s begins with @p prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/** True when @p s ends with @p suffix. */
bool endsWith(std::string_view s, std::string_view suffix);

/** Join the elements of @p parts with @p sep. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

/**
 * Parse a double accepting scientific notation; the whole string must be
 * consumed.
 *
 * @throws FatalError on malformed input.
 */
double parseDouble(std::string_view s);

/**
 * Parse a non-negative integer, accepting scientific/suffix forms that
 * represent exact integers (e.g. "2.5e9", "4096").
 *
 * @throws FatalError on malformed or negative input.
 */
std::uint64_t parseCount(std::string_view s);

/** Parse a boolean: accepts true/false/yes/no/on/off/1/0 (case-blind). */
bool parseBool(std::string_view s);

} // namespace accel

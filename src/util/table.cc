#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace accel {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::Left)
{
    ensure(!headers_.empty(), "TextTable requires at least one column");
}

void
TextTable::setAlign(size_t col, Align align)
{
    ensure(col < aligns_.size(), "TextTable::setAlign: column out of range");
    aligns_[col] = align;
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    ensure(cells.size() == headers_.size(),
           "TextTable::addRow: cell count mismatch");
    rows_.push_back(std::move(cells));
    ++numDataRows_;
}

void
TextTable::addSeparator()
{
    rows_.emplace_back();
}

std::string
TextTable::str() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::ostringstream os;
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c > 0)
                os << "  ";
            os << (aligns_[c] == Align::Left ? std::left : std::right)
               << std::setw(static_cast<int>(widths[c])) << cells[c];
        }
        return os.str();
    };

    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c > 0 ? 2 : 0);

    std::ostringstream os;
    os << renderRow(headers_) << "\n";
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_) {
        if (row.empty())
            os << std::string(total, '-') << "\n";
        else
            os << renderRow(row) << "\n";
    }
    return os.str();
}

std::string
percentBar(double percent, size_t width)
{
    double clamped = std::clamp(percent, 0.0, 100.0);
    size_t glyphs = static_cast<size_t>(
        clamped / 100.0 * static_cast<double>(width) + 0.5);
    return std::string(glyphs, '#');
}

std::string
fmtF(double v, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << v;
    return os.str();
}

std::string
fmtPct(double fraction01, int decimals)
{
    return fmtF(fraction01 * 100.0, decimals) + "%";
}

} // namespace accel

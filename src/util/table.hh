/**
 * @file
 * Fixed-width ASCII table and horizontal-bar rendering used by the
 * benchmark harnesses to print the paper's tables and figures.
 */

#pragma once

#include <string>
#include <vector>

namespace accel {

/** Column alignment for TextTable. */
enum class Align { Left, Right };

/**
 * A simple monospace table renderer.
 *
 * Columns are sized to their widest cell; headers are underlined. Intended
 * for terminal output of experiment results.
 */
class TextTable
{
  public:
    /** Construct with column headers; column count is fixed thereafter. */
    explicit TextTable(std::vector<std::string> headers);

    /** Set per-column alignment; defaults to Left. */
    void setAlign(size_t col, Align align);

    /**
     * Append a row.
     * @throws PanicError when the cell count differs from the header count.
     */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render the table to a string terminated by a newline. */
    std::string str() const;

    /** Number of data rows (separators excluded). */
    size_t rows() const { return numDataRows_; }

  private:
    std::vector<std::string> headers_;
    std::vector<Align> aligns_;
    // A separator is encoded as an empty row vector.
    std::vector<std::vector<std::string>> rows_;
    size_t numDataRows_ = 0;
};

/**
 * Render a percentage as a horizontal bar of '#' glyphs, mimicking the
 * stacked-bar figures in the paper.
 *
 * @param percent  value in [0, 100]
 * @param width    glyph count corresponding to 100 %
 */
std::string percentBar(double percent, size_t width = 50);

/** Format a double with fixed decimals. */
std::string fmtF(double v, int decimals = 1);

/** Format a double as a percentage string, e.g. "15.7%". */
std::string fmtPct(double fraction01, int decimals = 1);

} // namespace accel

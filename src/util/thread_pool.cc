#include "util/thread_pool.hh"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "util/logging.hh"

namespace accel {

/**
 * Worker state shared between the pool and its threads. Workers park on
 * a condition variable between batches; a batch publishes the body plus
 * an atomic index cursor, and workers claim indices until the cursor
 * passes n or an exception aborts the batch.
 */
namespace {

/** True on threads owned by a pool; nested parallelFor runs inline. */
thread_local bool tls_in_worker = false;

} // namespace

struct ThreadPool::Impl
{
    std::mutex dispatch; // serializes whole batches from multiple callers
    std::mutex mutex;
    std::condition_variable wake;   // workers wait for a batch
    std::condition_variable done;   // caller waits for batch completion
    std::vector<std::thread> threads;

    // Current batch; guarded by mutex except for the atomic cursor.
    const std::function<void(size_t)> *body = nullptr;
    size_t batchSize = 0;
    std::uint64_t batchId = 0;
    size_t active = 0;
    std::atomic<size_t> cursor{0};
    std::exception_ptr error;
    bool shutdown = false;

    void
    workerLoop()
    {
        tls_in_worker = true;
        std::uint64_t last_seen = 0;
        while (true) {
            const std::function<void(size_t)> *job = nullptr;
            size_t n = 0;
            {
                std::unique_lock<std::mutex> lock(mutex);
                wake.wait(lock, [&] {
                    return shutdown || batchId != last_seen;
                });
                if (shutdown)
                    return;
                last_seen = batchId;
                job = body;
                n = batchSize;
                // A straggler can wake after the batch drained and the
                // caller cleared body; it has nothing to do.
                if (job == nullptr)
                    continue;
                ++active;
            }
            runShard(*job, n);
            {
                std::lock_guard<std::mutex> lock(mutex);
                if (--active == 0 && cursor.load() >= n)
                    done.notify_all();
            }
        }
    }

    void
    runShard(const std::function<void(size_t)> &job, size_t n)
    {
        while (true) {
            size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                break;
            try {
                job(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex);
                if (!error)
                    error = std::current_exception();
                // Abandon the remaining indices so the batch drains
                // promptly; claimed indices still finish.
                cursor.store(n, std::memory_order_relaxed);
            }
        }
    }
};

namespace {

size_t
envWorkers()
{
    const char *env = std::getenv("ACCEL_JOBS");
    if (env == nullptr || *env == '\0')
        return 0;
    char *end = nullptr;
    long parsed = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || parsed < 1) {
        warn("ACCEL_JOBS=\"" + std::string(env) +
             "\" is not a positive integer; ignoring");
        return 0;
    }
    return static_cast<size_t>(parsed);
}

} // namespace

size_t
ThreadPool::defaultWorkers()
{
    size_t n = envWorkers();
    if (n == 0)
        n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

ThreadPool::ThreadPool(size_t workers)
    : workers_(workers > 0 ? workers : defaultWorkers())
{
    if (workers_ == 1)
        return; // exact serial fallback: no threads, no impl
    impl_ = new Impl;
    impl_->threads.reserve(workers_);
    // Capture the Impl pointer by value: setWorkers() may swap impl_
    // to another pool object before a freshly spawned thread runs.
    Impl *impl = impl_;
    for (size_t t = 0; t < workers_; ++t)
        impl_->threads.emplace_back([impl] { impl->workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    if (impl_ == nullptr)
        return;
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->shutdown = true;
    }
    impl_->wake.notify_all();
    for (std::thread &t : impl_->threads)
        t.join();
    delete impl_;
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &body)
{
    ensure(static_cast<bool>(body), "ThreadPool: empty loop body");
    if (n == 0)
        return;
    if (impl_ == nullptr || n == 1 || tls_in_worker) {
        // Serial fallback: identical iteration order to a plain loop.
        // Calls from inside a pool worker (nested parallelism) run
        // inline rather than deadlocking on the busy pool.
        for (size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    // One batch at a time: concurrent external callers take turns.
    std::lock_guard<std::mutex> batch_lock(impl_->dispatch);
    {
        std::lock_guard<std::mutex> lock(impl_->mutex);
        impl_->body = &body;
        impl_->batchSize = n;
        impl_->cursor.store(0, std::memory_order_relaxed);
        impl_->error = nullptr;
        ++impl_->batchId;
    }
    impl_->wake.notify_all();

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(impl_->mutex);
        impl_->done.wait(lock, [&] {
            return impl_->active == 0 && impl_->cursor.load() >= n;
        });
        impl_->body = nullptr;
        error = impl_->error;
    }
    if (error)
        std::rethrow_exception(error);
}

ThreadPool &
ThreadPool::global()
{
    // Function-local static: destroyed at exit, which parks and joins
    // the workers (keeps ThreadSanitizer's thread-leak check quiet).
    static ThreadPool pool;
    return pool;
}

void
ThreadPool::setWorkers(size_t workers)
{
    ThreadPool &pool = global();
    size_t target = workers > 0 ? workers : defaultWorkers();
    if (pool.workers_ == target)
        return;
    // Rebuild in place: join the old workers, then start the new set.
    ThreadPool fresh(target);
    std::swap(pool.impl_, fresh.impl_);
    std::swap(pool.workers_, fresh.workers_);
}

void
parallelFor(size_t n, const std::function<void(size_t)> &body)
{
    ThreadPool::global().parallelFor(n, body);
}

} // namespace accel

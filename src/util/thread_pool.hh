/**
 * @file
 * Fixed-size worker pool for embarrassingly parallel experiment fan-out.
 *
 * The paper's results are produced by hundreds of independent,
 * seed-deterministic model evaluations and simulator runs (sweeps,
 * sensitivity panels, fleet projections, A/B experiments). Each one is a
 * pure function of its inputs, so they can shard across cores freely —
 * provided the results land in pre-sized slots indexed by input
 * position, never by completion order, which keeps every aggregate
 * bit-identical to the serial path regardless of worker count.
 *
 * Worker count resolution (first match wins):
 *   1. an explicit setWorkers() call (tests, embedding programs),
 *   2. the ACCEL_JOBS environment variable,
 *   3. std::thread::hardware_concurrency().
 * A count of 1 bypasses the pool entirely: the loop body runs inline on
 * the calling thread, making ACCEL_JOBS=1 an exact serial fallback.
 */

#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace accel {

/**
 * A fixed pool of worker threads executing indexed loop bodies.
 *
 * The pool is task-batch oriented rather than queue oriented: each
 * parallelFor() call dispatches one batch of indices [0, n) to the
 * workers and blocks until every index has run. Indices are handed out
 * through a shared atomic counter, so uneven per-index cost balances
 * automatically; determinism comes from callers writing to slot i, not
 * from execution order.
 *
 * Exceptions thrown by the body are captured (first one wins), the
 * remaining indices are abandoned, and the exception is rethrown on the
 * calling thread once the batch drains — callers see the same error
 * surface as a serial loop, without deadlock.
 */
class ThreadPool
{
  public:
    /**
     * @param workers thread count; 0 resolves via ACCEL_JOBS or
     *                hardware concurrency (minimum 1)
     */
    explicit ThreadPool(size_t workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker threads backing this pool (>= 1; 1 means inline). */
    size_t workers() const { return workers_; }

    /**
     * Run body(i) for every i in [0, n), blocking until all complete.
     * With one worker (or n <= 1) the body runs inline in index order.
     * @throws whatever body throws (the first captured exception).
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &body);

    /** The process-wide pool used by the experiment runners. */
    static ThreadPool &global();

    /**
     * Reconfigure the global pool's worker count (joins the old
     * workers). Intended for tests and programs that must override
     * ACCEL_JOBS programmatically; not thread-safe against concurrent
     * parallelFor() calls on the global pool.
     */
    static void setWorkers(size_t workers);

    /** Resolve the default worker count (ACCEL_JOBS or hardware). */
    static size_t defaultWorkers();

  private:
    struct Impl;
    Impl *impl_ = nullptr; // absent when workers_ == 1
    size_t workers_ = 1;
};

/**
 * Run body(i) for i in [0, n) on the global pool.
 *
 * The body must confine its writes to per-index state (slot i of a
 * pre-sized output vector); under that contract results are
 * bit-identical for every worker count.
 */
void parallelFor(size_t n, const std::function<void(size_t)> &body);

/**
 * Map @p fn over @p inputs on the global pool, preserving input order.
 * Output slot i holds fn(inputs[i]) regardless of completion order.
 */
template <typename T, typename Fn>
auto
parallelMap(const std::vector<T> &inputs, Fn &&fn)
    -> std::vector<decltype(fn(inputs.front()))>
{
    std::vector<decltype(fn(inputs.front()))> out(inputs.size());
    parallelFor(inputs.size(),
                [&](size_t i) { out[i] = fn(inputs[i]); });
    return out;
}

} // namespace accel

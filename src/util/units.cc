#include "util/units.hh"

#include <array>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/logging.hh"
#include "util/string_utils.hh"

namespace accel {

std::string
formatBytes(double bytes)
{
    static constexpr std::array<const char *, 5> suffixes = {
        "B", "KiB", "MiB", "GiB", "TiB"};
    double v = bytes;
    size_t i = 0;
    while (v >= 1024.0 && i + 1 < suffixes.size()) {
        v /= 1024.0;
        ++i;
    }
    std::ostringstream os;
    os.precision(v < 10 && i > 0 ? 2 : 1);
    os << std::fixed << v << suffixes[i];
    return os.str();
}

std::string
formatCount(double count)
{
    static constexpr std::array<const char *, 5> suffixes = {
        "", "K", "M", "G", "T"};
    double v = count;
    size_t i = 0;
    while (std::abs(v) >= 1000.0 && i + 1 < suffixes.size()) {
        v /= 1000.0;
        ++i;
    }
    std::ostringstream os;
    os.precision(i == 0 ? 0 : 2);
    os << std::fixed << v << suffixes[i];
    return os.str();
}

Bytes
parseBytes(std::string_view s)
{
    std::string t = trim(s);
    if (t.empty())
        fatal("parseBytes: empty string");

    double multiplier = 1.0;
    std::string lower = toLower(t);
    struct Suffix { const char *text; double mult; };
    static constexpr std::array<Suffix, 8> suffixes = {{
        {"kib", 1024.0}, {"mib", 1048576.0}, {"gib", 1073741824.0},
        {"k", 1024.0}, {"m", 1048576.0}, {"g", 1073741824.0},
        {"b", 1.0}, {"", 1.0},
    }};
    std::string number = t;
    for (const auto &suffix : suffixes) {
        if (*suffix.text != '\0' && endsWith(lower, suffix.text)) {
            multiplier = suffix.mult;
            number = t.substr(0, t.size() - std::string(suffix.text).size());
            break;
        }
    }

    double v = parseDouble(number) * multiplier;
    // llround on NaN/inf or beyond long long is undefined; bound at
    // 8 EiB, far above any plausible byte size.
    if (!std::isfinite(v) ||
        v >= static_cast<double>(
                 std::numeric_limits<long long>::max()))
        fatal("parseBytes: size out of range '" + t + "'");
    if (v < 0)
        fatal("parseBytes: negative size '" + t + "'");
    return static_cast<Bytes>(std::llround(v));
}

} // namespace accel

/**
 * @file
 * Unit formatting and parsing for bytes, cycles, and rates.
 */

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace accel {

/** Cycle counts are the model's universal currency. */
using Cycles = double;

/** Offload granularity: bytes transferred per offload. */
using Bytes = std::uint64_t;

/** Format a byte count with binary suffixes, e.g. "4.0KiB". */
std::string formatBytes(double bytes);

/** Format a count with engineering suffixes, e.g. "2.30G". */
std::string formatCount(double count);

/**
 * Parse a byte size with optional binary suffix: "512", "4K", "2KiB",
 * "1.5MiB". Bare suffix letters use binary multiples (K = 1024).
 *
 * @throws FatalError on malformed input.
 */
Bytes parseBytes(std::string_view s);

} // namespace accel

#include "util/wall_timer.hh"

#include <chrono>

namespace accel {

namespace {

class SteadyWallTimer final : public WallTimer
{
  public:
    double
    seconds() const override
    {
        auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now.time_since_epoch())
            .count();
    }
};

} // namespace

const WallTimer &
steadyWallTimer()
{
    static const SteadyWallTimer timer;
    return timer;
}

} // namespace accel

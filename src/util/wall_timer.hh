/**
 * @file
 * Injectable wall-clock time source.
 *
 * Simulation, model, and kernel code must never read the machine clock
 * directly (the accel-lint `banned-clock` rule enforces this): simulated
 * time comes from the event clock, and the one legitimate consumer of
 * wall time — kernel calibration, which times real code — receives its
 * clock through this interface so tests can substitute a deterministic
 * fake. steadyWallTimer() is the single sanctioned steady_clock reader
 * in the library.
 */

#pragma once

namespace accel {

/** Monotonic wall-clock abstraction. */
class WallTimer
{
  public:
    virtual ~WallTimer() = default;

    /** Monotonic seconds since an arbitrary fixed epoch. */
    virtual double seconds() const = 0;
};

/** The process-wide steady-clock timer (thread-safe, stateless). */
const WallTimer &steadyWallTimer();

} // namespace accel

#include "workload/before_after.hh"

#include "util/logging.hh"

namespace accel::workload {

BeforeAfter
beforeAfterBreakdown(const ServiceProfile &profile, Functionality target,
                     const model::Params &params,
                     model::ThreadingDesign design, bool accelOnHost,
                     std::optional<Functionality> overheadSink)
{
    using model::ThreadingDesign;

    double overhead_frac =
        params.offloads * params.dispatchCycles() / params.hostCycles;
    if (design == ThreadingDesign::SyncOS) {
        overhead_frac += params.offloads * 2 *
            params.threadSwitchCycles / params.hostCycles;
    } else if (design == ThreadingDesign::AsyncDistinctThread) {
        overhead_frac += params.offloads * params.threadSwitchCycles /
            params.hostCycles;
    }
    Functionality sink = overheadSink.value_or(target);
    double overhead_pct = overhead_frac * 100.0;
    double resident_pct =
        accelOnHost ? params.alpha / params.accelFactor * 100.0 : 0.0;

    double alpha_pct = params.alpha * 100.0;
    double target_before = profile.functionalityShare.at(target);
    require(alpha_pct <= target_before + 1e-9,
            "beforeAfterBreakdown: kernel exceeds its functionality");

    double target_after_abs = target_before - alpha_pct + resident_pct +
        (sink == target ? overhead_pct : 0.0);
    double total_after =
        100.0 - alpha_pct + resident_pct + overhead_pct;

    BeforeAfter out;
    for (Functionality f : allFunctionalities()) {
        double before = profile.functionalityShare.at(f);
        double after_abs = f == target ? target_after_abs : before;
        if (f == sink && sink != target)
            after_abs += overhead_pct;
        out.shifts.push_back(
            {f, before, after_abs / total_after * 100.0});
    }
    out.freedPercent = alpha_pct - resident_pct - overhead_pct;
    out.targetImprovementPercent =
        target_before > 0
            ? (target_before - target_after_abs) / target_before * 100.0
            : 0.0;
    return out;
}

} // namespace accel::workload

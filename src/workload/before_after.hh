/**
 * @file
 * Before/after functionality breakdowns (paper Figs. 16-18): how a
 * service's cycle shares shift when one kernel inside a functionality
 * is accelerated.
 */

#pragma once

#include <optional>

#include "model/accelerometer.hh"
#include "workload/profiles.hh"

namespace accel::workload {

/** One functionality's share before and after acceleration. */
struct ShareShift
{
    Functionality functionality;
    double beforePercent; //!< share of the unaccelerated total
    double afterPercent;  //!< share of the accelerated total
};

/** The full before/after picture. */
struct BeforeAfter
{
    std::vector<ShareShift> shifts;

    /** Host cycles freed, as % of the unaccelerated total. */
    double freedPercent;

    /** Relative improvement of the target functionality's share. */
    double targetImprovementPercent;
};

/**
 * Compute the accelerated functionality breakdown.
 *
 * The accelerated kernel's host cycles shrink from α·C to the
 * per-offload overheads (o0+L+Q, plus switch charges per the design)
 * plus — when @p accelOnHost — the accelerated execution α/A itself
 * (on-chip instructions retire on the core). All shares re-normalize
 * against the smaller total.
 *
 * @param profile      service profile (Fig. 9 shares)
 * @param target       functionality containing the kernel
 * @param params       acceleration parameters (α is the kernel share)
 * @param design       threading design used to offload
 * @param accelOnHost  true when accelerator time stays on the host
 * @param overheadSink functionality the per-offload overheads are
 *                     attributed to. Defaults to @p target; Fig. 18
 *                     attributes remote-offload I/O (o0) to the I/O bar
 *                     ("Ads1 must invoke many more IO calls"), leaving
 *                     the inference bar fully freed.
 */
BeforeAfter
beforeAfterBreakdown(const ServiceProfile &profile, Functionality target,
                     const model::Params &params,
                     model::ThreadingDesign design, bool accelOnHost,
                     std::optional<Functionality> overheadSink =
                         std::nullopt);

} // namespace accel::workload

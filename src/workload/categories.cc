#include "workload/categories.hh"

#include "util/logging.hh"

namespace accel::workload {

std::string
toString(LeafCategory c)
{
    switch (c) {
      case LeafCategory::Memory:
        return "Memory";
      case LeafCategory::Kernel:
        return "Kernel";
      case LeafCategory::Hashing:
        return "Hashing";
      case LeafCategory::Synchronization:
        return "Synchronization";
      case LeafCategory::Zstd:
        return "ZSTD";
      case LeafCategory::Math:
        return "Math";
      case LeafCategory::Ssl:
        return "SSL";
      case LeafCategory::CLibraries:
        return "C Libraries";
      case LeafCategory::Miscellaneous:
        return "Miscellaneous";
    }
    panic("toString: unknown LeafCategory");
}

std::string
toString(Functionality c)
{
    switch (c) {
      case Functionality::SecureInsecureIO:
        return "Secure + Insecure IO";
      case Functionality::IOPrePostProcessing:
        return "IO Pre/Post Processing";
      case Functionality::Compression:
        return "Compression";
      case Functionality::Serialization:
        return "Serialization/Deserialization";
      case Functionality::FeatureExtraction:
        return "Feature Extraction";
      case Functionality::PredictionRanking:
        return "Prediction/Ranking";
      case Functionality::ApplicationLogic:
        return "Application Logic";
      case Functionality::Logging:
        return "Logging";
      case Functionality::ThreadPoolManagement:
        return "Thread Pool Management";
      case Functionality::Miscellaneous:
        return "Miscellaneous";
    }
    panic("toString: unknown Functionality");
}

std::string
toString(MemoryLeaf c)
{
    switch (c) {
      case MemoryLeaf::Copy:
        return "Memory-Copy";
      case MemoryLeaf::Free:
        return "Memory-Free";
      case MemoryLeaf::Allocation:
        return "Memory-Allocation";
      case MemoryLeaf::Move:
        return "Memory-Move";
      case MemoryLeaf::Set:
        return "Memory-Set";
      case MemoryLeaf::Compare:
        return "Memory-Compare";
    }
    panic("toString: unknown MemoryLeaf");
}

std::string
toString(CopyOrigin c)
{
    switch (c) {
      case CopyOrigin::SecureInsecureIO:
        return "Secure + Insecure IO";
      case CopyOrigin::IOPrePostProcessing:
        return "IO Pre/Post Processing";
      case CopyOrigin::Serialization:
        return "Serialization/Deserialization";
      case CopyOrigin::ApplicationLogic:
        return "Application Logic";
    }
    panic("toString: unknown CopyOrigin");
}

std::string
toString(KernelLeaf c)
{
    switch (c) {
      case KernelLeaf::Scheduler:
        return "Scheduler";
      case KernelLeaf::EventHandling:
        return "Event Handling";
      case KernelLeaf::Network:
        return "Network";
      case KernelLeaf::Synchronization:
        return "Synchronization";
      case KernelLeaf::MemoryManagement:
        return "Memory Management";
      case KernelLeaf::Miscellaneous:
        return "Miscellaneous";
    }
    panic("toString: unknown KernelLeaf");
}

std::string
toString(SyncLeaf c)
{
    switch (c) {
      case SyncLeaf::CppAtomics:
        return "C++ Atomics";
      case SyncLeaf::Mutex:
        return "Mutex";
      case SyncLeaf::CompareExchangeSwap:
        return "Compare-Exchange-Swap";
      case SyncLeaf::SpinLock:
        return "Spin Lock";
    }
    panic("toString: unknown SyncLeaf");
}

std::string
toString(ClibLeaf c)
{
    switch (c) {
      case ClibLeaf::StdAlgorithms:
        return "Std algorithms";
      case ClibLeaf::ConstructorsDestructors:
        return "Constructors/Destructors";
      case ClibLeaf::Strings:
        return "Strings";
      case ClibLeaf::HashTables:
        return "Hash tables";
      case ClibLeaf::Vectors:
        return "Vectors";
      case ClibLeaf::Trees:
        return "Trees";
      case ClibLeaf::OperatorOverride:
        return "Operator override";
      case ClibLeaf::Miscellaneous:
        return "Miscellaneous";
    }
    panic("toString: unknown ClibLeaf");
}

const std::vector<LeafCategory> &
allLeafCategories()
{
    static const std::vector<LeafCategory> all = {
        LeafCategory::Memory, LeafCategory::Kernel, LeafCategory::Hashing,
        LeafCategory::Synchronization, LeafCategory::Zstd,
        LeafCategory::Math, LeafCategory::Ssl, LeafCategory::CLibraries,
        LeafCategory::Miscellaneous,
    };
    return all;
}

const std::vector<Functionality> &
allFunctionalities()
{
    static const std::vector<Functionality> all = {
        Functionality::SecureInsecureIO,
        Functionality::IOPrePostProcessing, Functionality::Compression,
        Functionality::Serialization, Functionality::FeatureExtraction,
        Functionality::PredictionRanking, Functionality::ApplicationLogic,
        Functionality::Logging, Functionality::ThreadPoolManagement,
        Functionality::Miscellaneous,
    };
    return all;
}

const std::vector<MemoryLeaf> &
allMemoryLeaves()
{
    static const std::vector<MemoryLeaf> all = {
        MemoryLeaf::Copy, MemoryLeaf::Free, MemoryLeaf::Allocation,
        MemoryLeaf::Move, MemoryLeaf::Set, MemoryLeaf::Compare,
    };
    return all;
}

const std::vector<CopyOrigin> &
allCopyOrigins()
{
    static const std::vector<CopyOrigin> all = {
        CopyOrigin::SecureInsecureIO, CopyOrigin::IOPrePostProcessing,
        CopyOrigin::Serialization, CopyOrigin::ApplicationLogic,
    };
    return all;
}

const std::vector<KernelLeaf> &
allKernelLeaves()
{
    static const std::vector<KernelLeaf> all = {
        KernelLeaf::Scheduler, KernelLeaf::EventHandling,
        KernelLeaf::Network, KernelLeaf::Synchronization,
        KernelLeaf::MemoryManagement, KernelLeaf::Miscellaneous,
    };
    return all;
}

const std::vector<SyncLeaf> &
allSyncLeaves()
{
    static const std::vector<SyncLeaf> all = {
        SyncLeaf::CppAtomics, SyncLeaf::Mutex,
        SyncLeaf::CompareExchangeSwap, SyncLeaf::SpinLock,
    };
    return all;
}

const std::vector<ClibLeaf> &
allClibLeaves()
{
    static const std::vector<ClibLeaf> all = {
        ClibLeaf::StdAlgorithms, ClibLeaf::ConstructorsDestructors,
        ClibLeaf::Strings, ClibLeaf::HashTables, ClibLeaf::Vectors,
        ClibLeaf::Trees, ClibLeaf::OperatorOverride,
        ClibLeaf::Miscellaneous,
    };
    return all;
}

} // namespace accel::workload

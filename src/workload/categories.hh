/**
 * @file
 * Category taxonomies from the paper's characterization:
 * leaf-function categories (Table 2), microservice functionality
 * categories (Table 3), and the sub-breakdowns of Figures 3-7.
 */

#pragma once

#include <string>
#include <vector>

namespace accel::workload {

/** Leaf-function categories (paper Table 2 / Fig. 2). */
enum class LeafCategory
{
    Memory,          //!< copy, allocation, free, compare
    Kernel,          //!< scheduling, interrupts, network, memory mgmt
    Hashing,         //!< SHA & other hash algorithms
    Synchronization, //!< atomics, mutexes, spin locks, CAS
    Zstd,            //!< compression / decompression
    Math,            //!< MKL, AVX
    Ssl,             //!< encryption / decryption
    CLibraries,      //!< search, array & string compute
    Miscellaneous,
};

/** Microservice functionality categories (paper Table 3 / Fig. 9). */
enum class Functionality
{
    SecureInsecureIO,    //!< encrypted/plain-text I/O sends & receives
    IOPrePostProcessing, //!< allocations, copies etc. around I/O
    Compression,
    Serialization,       //!< RPC serialization / deserialization
    FeatureExtraction,   //!< feature vector creation in ML services
    PredictionRanking,   //!< ML inference algorithms
    ApplicationLogic,    //!< core business logic
    Logging,             //!< creating, reading, updating logs
    ThreadPoolManagement,
    Miscellaneous,
};

/** Memory leaf sub-categories (Fig. 3). */
enum class MemoryLeaf { Copy, Free, Allocation, Move, Set, Compare };

/** Origins of memory copies (Fig. 4). */
enum class CopyOrigin
{
    SecureInsecureIO,
    IOPrePostProcessing,
    Serialization,
    ApplicationLogic,
};

/** Kernel leaf sub-categories (Fig. 5). */
enum class KernelLeaf
{
    Scheduler,
    EventHandling,
    Network,
    Synchronization,
    MemoryManagement,
    Miscellaneous,
};

/** Synchronization leaf sub-categories (Fig. 6). */
enum class SyncLeaf { CppAtomics, Mutex, CompareExchangeSwap, SpinLock };

/** C-library leaf sub-categories (Fig. 7). */
enum class ClibLeaf
{
    StdAlgorithms,
    ConstructorsDestructors,
    Strings,
    HashTables,
    Vectors,
    Trees,
    OperatorOverride,
    Miscellaneous,
};

std::string toString(LeafCategory c);
std::string toString(Functionality c);
std::string toString(MemoryLeaf c);
std::string toString(CopyOrigin c);
std::string toString(KernelLeaf c);
std::string toString(SyncLeaf c);
std::string toString(ClibLeaf c);

const std::vector<LeafCategory> &allLeafCategories();
const std::vector<Functionality> &allFunctionalities();
const std::vector<MemoryLeaf> &allMemoryLeaves();
const std::vector<CopyOrigin> &allCopyOrigins();
const std::vector<KernelLeaf> &allKernelLeaves();
const std::vector<SyncLeaf> &allSyncLeaves();
const std::vector<ClibLeaf> &allClibLeaves();

} // namespace accel::workload

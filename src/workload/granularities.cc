#include "workload/granularities.hh"

#include <map>

#include "util/logging.hh"

namespace accel::workload {

namespace {

/** Shorthand for building a shared immutable distribution. */
std::shared_ptr<const BucketDist>
dist(std::vector<DistBucket> buckets)
{
    return std::make_shared<const BucketDist>(std::move(buckets));
}

/** Power-of-two edges from 4 B to 4 KiB plus overflow (Fig. 15). */
std::shared_ptr<const BucketDist>
encryptionDist(std::vector<double> masses)
{
    // Buckets: 0-4, 4-8, ..., 2K-4K, >4K (overflow modeled to 16K).
    static const std::vector<std::pair<double, double>> edges = {
        {0, 4},      {4, 8},      {8, 16},    {16, 32},  {32, 64},
        {64, 128},   {128, 256},  {256, 512}, {512, 1024},
        {1024, 2048}, {2048, 4096}, {4096, 16384},
    };
    ensure(masses.size() == edges.size(),
           "encryptionDist: mass count mismatch");
    std::vector<DistBucket> buckets;
    for (size_t i = 0; i < edges.size(); ++i)
        buckets.push_back({edges[i].first, edges[i].second, masses[i]});
    return dist(std::move(buckets));
}

/** Fig. 19 buckets: 0-64, 64-128, ..., 16K-32K, >32K (to 64K). */
std::shared_ptr<const BucketDist>
compressionDist(std::vector<double> masses)
{
    static const std::vector<std::pair<double, double>> edges = {
        {0, 64},        {64, 128},     {128, 256},   {256, 512},
        {512, 1024},    {1024, 2048},  {2048, 4096}, {4096, 8192},
        {8192, 16384},  {16384, 32768}, {32768, 65536},
    };
    ensure(masses.size() == edges.size(),
           "compressionDist: mass count mismatch");
    std::vector<DistBucket> buckets;
    for (size_t i = 0; i < edges.size(); ++i)
        buckets.push_back({edges[i].first, edges[i].second, masses[i]});
    return dist(std::move(buckets));
}

/** Fig. 21 / Fig. 22 buckets: 0-1, 1-64, ..., 2K-4K, >4K (to 16K). */
std::shared_ptr<const BucketDist>
smallSizeDist(std::vector<double> masses)
{
    static const std::vector<std::pair<double, double>> edges = {
        {0, 1},      {1, 64},    {64, 128},   {128, 256}, {256, 512},
        {512, 1024}, {1024, 2048}, {2048, 4096}, {4096, 16384},
    };
    ensure(masses.size() == edges.size(),
           "smallSizeDist: mass count mismatch");
    std::vector<DistBucket> buckets;
    for (size_t i = 0; i < edges.size(); ++i)
        buckets.push_back({edges[i].first, edges[i].second, masses[i]});
    return dist(std::move(buckets));
}

} // namespace

std::shared_ptr<const BucketDist>
encryptionSizes(ServiceId id)
{
    // Fig. 15 is published for Cache1 only: encryption sizes start
    // around 4 B and are frequently below 512 B. Cache2/Cache3 get the
    // same shape (they share the caching stack); other services a
    // slightly larger profile (TLS record sized).
    static const std::map<ServiceId,
                          std::shared_ptr<const BucketDist>> table = [] {
        std::map<ServiceId, std::shared_ptr<const BucketDist>> m;
        auto cache_shape = encryptionDist(
            {0, 10, 15, 22, 20, 12, 8, 6, 4, 2, 0.8, 0.2});
        auto record_shape = encryptionDist(
            {0, 2, 4, 8, 12, 16, 20, 18, 12, 5, 2, 1});
        for (ServiceId s : allServices()) {
            bool cache = s == ServiceId::Cache1 ||
                         s == ServiceId::Cache2 ||
                         s == ServiceId::Cache3;
            m.emplace(s, cache ? cache_shape : record_shape);
        }
        return m;
    }();
    return table.at(id);
}

std::shared_ptr<const BucketDist>
compressionSizes(ServiceId id)
{
    // Feed1 masses are engineered against the published break-evens
    // (see the file comment): P(>=425) = 64.2 %, P(>=409) = 65.1 %,
    // P(>=2455) = 26.5 %.
    static const std::map<ServiceId,
                          std::shared_ptr<const BucketDist>> table = [] {
        std::map<ServiceId, std::shared_ptr<const BucketDist>> m;
        auto feed_shape = compressionDist(
            {12.0, 6.0, 8.02, 14.88, 18.7, 12.0, 9.5, 8.8, 4.1, 3.0,
             3.0});
        auto cache_shape = compressionDist(
            {30, 20, 18, 12, 9, 5, 3, 2, 0.7, 0.2, 0.1});
        auto mid_shape = compressionDist(
            {18, 12, 14, 16, 14, 10, 7, 5, 2.5, 1.0, 0.5});
        for (ServiceId s : allServices()) {
            if (s == ServiceId::Feed1 || s == ServiceId::Feed2)
                m.emplace(s, feed_shape);
            else if (s == ServiceId::Cache1 || s == ServiceId::Cache2 ||
                     s == ServiceId::Cache3)
                m.emplace(s, cache_shape);
            else
                m.emplace(s, mid_shape);
        }
        return m;
    }();
    return table.at(id);
}

std::shared_ptr<const BucketDist>
copySizes(ServiceId id)
{
    // Fig. 21: most services frequently copy < 512 B (smaller than a
    // 4 KiB page); Web copies slightly larger I/O buffers.
    static const std::map<ServiceId,
                          std::shared_ptr<const BucketDist>> table = [] {
        std::map<ServiceId, std::shared_ptr<const BucketDist>> m;
        m.emplace(ServiceId::Web, smallSizeDist(
            {1, 22, 16, 16, 16, 12, 9, 5, 3}));
        m.emplace(ServiceId::Feed1, smallSizeDist(
            {2, 34, 20, 16, 12, 8, 5, 2, 1}));
        m.emplace(ServiceId::Feed2, smallSizeDist(
            {2, 30, 20, 17, 13, 9, 5, 3, 1}));
        m.emplace(ServiceId::Ads1, smallSizeDist(
            {2, 30, 18, 16, 14, 10, 6, 3, 1}));
        m.emplace(ServiceId::Ads2, smallSizeDist(
            {2, 32, 19, 16, 13, 9, 5, 3, 1}));
        m.emplace(ServiceId::Cache1, smallSizeDist(
            {3, 38, 21, 15, 11, 7, 3, 1.5, 0.5}));
        m.emplace(ServiceId::Cache2, smallSizeDist(
            {3, 36, 20, 15, 12, 8, 4, 1.5, 0.5}));
        m.emplace(ServiceId::Cache3, smallSizeDist(
            {3, 37, 21, 15, 11, 7, 4, 1.5, 0.5}));
        return m;
    }();
    return table.at(id);
}

std::shared_ptr<const BucketDist>
allocationSizes(ServiceId id)
{
    // Fig. 22: allocations are typically < 512 B everywhere.
    static const std::map<ServiceId,
                          std::shared_ptr<const BucketDist>> table = [] {
        std::map<ServiceId, std::shared_ptr<const BucketDist>> m;
        auto small_shape = smallSizeDist(
            {0.5, 40, 22, 16, 11, 6, 3, 1, 0.5});
        auto web_shape = smallSizeDist(
            {0.5, 30, 20, 17, 14, 10, 5, 2.5, 1});
        for (ServiceId s : allServices()) {
            m.emplace(s, s == ServiceId::Web ? web_shape : small_shape);
        }
        return m;
    }();
    return table.at(id);
}

KernelRates
kernelRates(ServiceId id)
{
    // Rates per second of one busy host (the model's fixed time unit).
    // Published anchors: Cache1 encryption n = 298,951 (Table 6); Feed1
    // compression n_total = 15,008, Ads1 copies n = 1,473,681, Cache1
    // allocations n = 51,695 (Table 7). Remaining rates are scaled from
    // each service's leaf shares.
    static const std::map<ServiceId, KernelRates> table = {
        {ServiceId::Web,    {35000, 9000, 900000, 240000}},
        {ServiceId::Feed1,  {4000, 15008, 350000, 90000}},
        {ServiceId::Feed2,  {6000, 12000, 700000, 160000}},
        {ServiceId::Ads1,   {20000, 5000, 1473681, 110000}},
        {ServiceId::Ads2,   {8000, 4000, 1100000, 150000}},
        {ServiceId::Cache1, {298951, 22000, 820000, 51695}},
        {ServiceId::Cache2, {120000, 9000, 640000, 45000}},
        {ServiceId::Cache3, {101863, 0, 700000, 48000}},
    };
    auto it = table.find(id);
    require(it != table.end(), "kernelRates: unknown service");
    return it->second;
}

} // namespace accel::workload

/**
 * @file
 * Offload granularity distributions (the paper's CDF figures).
 *
 * Fig. 15: bytes encrypted by Cache1 (buckets 0-4 ... >4K).
 * Fig. 19: bytes compressed by Feed1 and Cache1 (1-64 ... >32K).
 * Fig. 21: bytes copied, per service (0, 1-64 ... >4K).
 * Fig. 22: bytes allocated, per service (0, 1-64 ... >4K).
 *
 * The Feed1 compression distribution is constructed so the published
 * profitable-offload counts fall out exactly: with Cb = 5.62 cycles/B
 * (derived from the paper's 425 B off-chip break-even), n_total = 15008
 * yields n = 9629 (Sync, >= 425 B), 9769 (Async, >= 409 B), and ~3986
 * (Sync-OS, >= 2455 B), matching Table 7.
 */

#pragma once

#include <memory>

#include "stats/bucket_dist.hh"
#include "workload/profiles.hh"

namespace accel::workload {

/** Fig. 15: Cache1 encryption granularities (mostly < 512 B). */
std::shared_ptr<const BucketDist> encryptionSizes(ServiceId id);

/** Fig. 19: compression granularities (Feed1 large, Cache1 small). */
std::shared_ptr<const BucketDist> compressionSizes(ServiceId id);

/** Fig. 21: memory-copy granularities (mostly < 512 B). */
std::shared_ptr<const BucketDist> copySizes(ServiceId id);

/** Fig. 22: allocation granularities (mostly < 512 B). */
std::shared_ptr<const BucketDist> allocationSizes(ServiceId id);

/** Kernel invocation rates per second (the model's n_total). */
struct KernelRates
{
    double encryptionsPerSec;
    double compressionsPerSec;
    double copiesPerSec;
    double allocationsPerSec;
};

/**
 * Published or derived invocation rates. Table 6 pins Cache1
 * encryption (298,951/s); Table 7 pins Feed1 compression (15,008/s
 * total on-chip), Ads1 copies (1,473,681/s), and Cache1 allocations
 * (51,695/s). Other services get scaled estimates.
 */
KernelRates kernelRates(ServiceId id);

} // namespace accel::workload

#include "workload/platforms.hh"

#include "util/logging.hh"

namespace accel::workload {

std::string
toString(CpuGen gen)
{
    switch (gen) {
      case CpuGen::GenA:
        return "GenA";
      case CpuGen::GenB:
        return "GenB";
      case CpuGen::GenC:
        return "GenC";
    }
    panic("toString: unknown CpuGen");
}

const std::vector<CpuGen> &
allCpuGens()
{
    static const std::vector<CpuGen> all = {CpuGen::GenA, CpuGen::GenB,
                                            CpuGen::GenC};
    return all;
}

const Platform &
platform(CpuGen gen)
{
    // Paper Table 1. GenC ships as 18- or 20-core parts; we model the
    // 20-core / 27 MiB variant used for Ads2 and the caches.
    static const std::map<CpuGen, Platform> table = {
        {CpuGen::GenA,
         {CpuGen::GenA, "Intel Haswell", 12, 2, 64, 32, 32, 256, 30.0,
          4.0}},
        {CpuGen::GenB,
         {CpuGen::GenB, "Intel Broadwell", 16, 2, 64, 32, 32, 256, 24.0,
          4.0}},
        {CpuGen::GenC,
         {CpuGen::GenC, "Intel Skylake", 20, 2, 64, 32, 32, 1024, 27.0,
          4.0}},
    };
    return table.at(gen);
}

double
leafIpc(CpuGen gen, LeafCategory category)
{
    // Fig. 8 reconstruction (Cache1). Anchors: all categories < 2.0
    // (under half of the 4.0 peak); kernel IPC low and nearly flat;
    // C libraries scale well; GenB -> GenC gains small elsewhere.
    struct Row { double a, b, c; };
    static const std::map<LeafCategory, Row> table = {
        {LeafCategory::Memory,          {0.80, 0.90, 0.94}},
        {LeafCategory::Kernel,          {0.45, 0.48, 0.49}},
        {LeafCategory::Zstd,            {1.10, 1.25, 1.32}},
        {LeafCategory::Ssl,             {1.20, 1.35, 1.44}},
        {LeafCategory::CLibraries,      {1.30, 1.55, 1.80}},
        {LeafCategory::Hashing,         {1.15, 1.27, 1.33}},
        {LeafCategory::Synchronization, {0.65, 0.70, 0.72}},
        {LeafCategory::Math,            {1.60, 1.75, 1.85}},
        {LeafCategory::Miscellaneous,   {0.90, 0.98, 1.02}},
    };
    auto it = table.find(category);
    require(it != table.end(), "leafIpc: no IPC data for category");
    switch (gen) {
      case CpuGen::GenA:
        return it->second.a;
      case CpuGen::GenB:
        return it->second.b;
      case CpuGen::GenC:
        return it->second.c;
    }
    panic("leafIpc: unknown CpuGen");
}

double
functionalityIpc(CpuGen gen, Functionality category)
{
    // Fig. 10 reconstruction (Cache1). Anchors: I/O IPC low and flat
    // (driven by kernel IPC); key-value application logic barely
    // improves (memory bound).
    struct Row { double a, b, c; };
    static const std::map<Functionality, Row> table = {
        {Functionality::SecureInsecureIO,    {0.42, 0.45, 0.46}},
        {Functionality::IOPrePostProcessing, {0.60, 0.66, 0.70}},
        {Functionality::Serialization,       {0.68, 0.76, 0.82}},
        {Functionality::ApplicationLogic,    {0.55, 0.58, 0.60}},
    };
    auto it = table.find(category);
    require(it != table.end(),
            "functionalityIpc: no IPC data for category");
    switch (gen) {
      case CpuGen::GenA:
        return it->second.a;
      case CpuGen::GenB:
        return it->second.b;
      case CpuGen::GenC:
        return it->second.c;
    }
    panic("functionalityIpc: unknown CpuGen");
}

const std::vector<Functionality> &
ipcReportedFunctionalities()
{
    static const std::vector<Functionality> all = {
        Functionality::SecureInsecureIO,
        Functionality::IOPrePostProcessing,
        Functionality::Serialization,
        Functionality::ApplicationLogic,
    };
    return all;
}

const std::vector<LeafCategory> &
ipcReportedLeafCategories()
{
    static const std::vector<LeafCategory> all = {
        LeafCategory::Memory, LeafCategory::Kernel, LeafCategory::Zstd,
        LeafCategory::Ssl, LeafCategory::CLibraries,
    };
    return all;
}

} // namespace accel::workload

/**
 * @file
 * CPU platform models: Table 1's GenA (Haswell), GenB (Broadwell), and
 * GenC (Skylake) attributes plus per-category IPC tables used to
 * reproduce the IPC-scaling figures (Figs. 8 and 10).
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "workload/categories.hh"

namespace accel::workload {

/** The three CPU generations of Table 1. */
enum class CpuGen { GenA, GenB, GenC };

std::string toString(CpuGen gen);
const std::vector<CpuGen> &allCpuGens();

/** Static platform attributes (paper Table 1). */
struct Platform
{
    CpuGen gen;
    std::string microarchitecture;
    std::uint32_t coresPerSocket;
    std::uint32_t smtWays;
    std::uint32_t cacheBlockBytes;
    std::uint32_t l1iKiB;
    std::uint32_t l1dKiB;
    std::uint32_t l2KiB;          //!< private L2 per core
    double llcMiB;                //!< shared last-level cache
    double theoreticalPeakIpc;    //!< per-core issue width
};

/** Table 1 row for a generation. */
const Platform &platform(CpuGen gen);

/**
 * Cache1's per-core IPC for a leaf category on a generation (Fig. 8).
 * Values are reconstructions anchored to the figure's shape: every
 * category below half the 4.0 peak, kernel lowest and nearly flat,
 * C libraries scaling best.
 */
double leafIpc(CpuGen gen, LeafCategory category);

/** Cache1's per-core IPC for a functionality category (Fig. 10). */
double functionalityIpc(CpuGen gen, Functionality category);

/** Functionalities with IPC data in Fig. 10. */
const std::vector<Functionality> &ipcReportedFunctionalities();

/** Leaf categories with IPC data in Fig. 8. */
const std::vector<LeafCategory> &ipcReportedLeafCategories();

} // namespace accel::workload

#include "workload/profiles.hh"

#include <cmath>

#include "util/logging.hh"

namespace accel::workload {

namespace {

using F = Functionality;
using L = LeafCategory;
using M = MemoryLeaf;
using O = CopyOrigin;
using K = KernelLeaf;
using S = SyncLeaf;
using C = ClibLeaf;

/** Build all eight service profiles once. */
std::map<ServiceId, ServiceProfile>
buildProfiles()
{
    std::map<ServiceId, ServiceProfile> out;

    // ---------------- Web ----------------
    // Anchors: 18 % core web-serving logic, 23 % logging (paper §2.4);
    // memory leaves 37 % of cycles (§2.3 / Fig. 3 net); high string and
    // hash-table C-library usage (§2.3.4).
    {
        ServiceProfile p;
        p.id = ServiceId::Web;
        p.name = "Web";
        p.description =
            "HipHop VM serving web requests with request-level "
            "parallelism";
        p.functionalityShare = {
            {F::SecureInsecureIO, 21}, {F::IOPrePostProcessing, 4},
            {F::Compression, 7},       {F::Serialization, 5},
            {F::FeatureExtraction, 0}, {F::PredictionRanking, 0},
            {F::ApplicationLogic, 18}, {F::Logging, 23},
            {F::ThreadPoolManagement, 4}, {F::Miscellaneous, 18},
        };
        p.leafShare = {
            {L::Memory, 37}, {L::Kernel, 7},      {L::Hashing, 1},
            {L::Synchronization, 2}, {L::Zstd, 5}, {L::Math, 0},
            {L::Ssl, 0},     {L::CLibraries, 31}, {L::Miscellaneous, 17},
        };
        p.memoryShare = {
            {M::Copy, 49}, {M::Free, 12}, {M::Allocation, 15},
            {M::Move, 12}, {M::Set, 8},   {M::Compare, 4},
        };
        p.copyOriginShare = {
            {O::SecureInsecureIO, 36}, {O::IOPrePostProcessing, 46},
            {O::Serialization, 9},     {O::ApplicationLogic, 9},
        };
        p.copyNetPercent = 13;
        p.kernelShare = {
            {K::Scheduler, 19}, {K::EventHandling, 19}, {K::Network, 16},
            {K::Synchronization, 13}, {K::MemoryManagement, 33},
            {K::Miscellaneous, 0},
        };
        p.syncShare = {
            {S::CppAtomics, 6}, {S::Mutex, 71},
            {S::CompareExchangeSwap, 5}, {S::SpinLock, 18},
        };
        p.clibShare = {
            {C::StdAlgorithms, 5}, {C::ConstructorsDestructors, 5},
            {C::Strings, 24},      {C::HashTables, 32},
            {C::Vectors, 1},       {C::Trees, 16},
            {C::OperatorOverride, 6}, {C::Miscellaneous, 11},
        };
        out.emplace(p.id, std::move(p));
    }

    // ---------------- Feed1 ----------------
    // Anchors: compression is 15 % of cycles (Table 7); inference share
    // 58 % gives the paper's 2.38x ideal bound; high thread-pool
    // management (§2.4); math-heavy leaves (MLP inference).
    {
        ServiceProfile p;
        p.id = ServiceId::Feed1;
        p.name = "Feed1";
        p.description =
            "News Feed ranking: predicts user relevance vectors from "
            "dense feature vectors";
        p.functionalityShare = {
            {F::SecureInsecureIO, 7},  {F::IOPrePostProcessing, 3},
            {F::Compression, 15},      {F::Serialization, 6},
            {F::FeatureExtraction, 0}, {F::PredictionRanking, 58},
            {F::ApplicationLogic, 1},  {F::Logging, 0},
            {F::ThreadPoolManagement, 7}, {F::Miscellaneous, 3},
        };
        p.leafShare = {
            {L::Memory, 8},  {L::Kernel, 3},     {L::Hashing, 0},
            {L::Synchronization, 1}, {L::Zstd, 19}, {L::Math, 44},
            {L::Ssl, 0},     {L::CLibraries, 5}, {L::Miscellaneous, 20},
        };
        p.memoryShare = {
            {M::Copy, 38}, {M::Free, 32}, {M::Allocation, 11},
            {M::Move, 5},  {M::Set, 9},   {M::Compare, 5},
        };
        p.copyOriginShare = {
            {O::SecureInsecureIO, 0}, {O::IOPrePostProcessing, 0},
            {O::Serialization, 7},    {O::ApplicationLogic, 93},
        };
        p.copyNetPercent = 6;
        p.kernelShare = {
            {K::Scheduler, 14}, {K::EventHandling, 5}, {K::Network, 12},
            {K::Synchronization, 7}, {K::MemoryManagement, 27},
            {K::Miscellaneous, 35},
        };
        p.syncShare = {
            {S::CppAtomics, 26}, {S::Mutex, 63},
            {S::CompareExchangeSwap, 0}, {S::SpinLock, 11},
        };
        p.clibShare = {
            {C::StdAlgorithms, 3}, {C::ConstructorsDestructors, 5},
            {C::Strings, 47},      {C::HashTables, 0},
            {C::Vectors, 6},       {C::Trees, 18},
            {C::OperatorOverride, 2}, {C::Miscellaneous, 19},
        };
        out.emplace(p.id, std::move(p));
    }

    // ---------------- Feed2 ----------------
    // Anchors: heavy feature extraction and vector C-library work
    // (§2.3.4); math <= 13 % despite being an ML service (§2.3);
    // compression+serialization significant (§2.4).
    {
        ServiceProfile p;
        p.id = ServiceId::Feed2;
        p.name = "Feed2";
        p.description =
            "News Feed aggregation: builds stories and dense feature "
            "vectors for Feed1";
        p.functionalityShare = {
            {F::SecureInsecureIO, 6},   {F::IOPrePostProcessing, 6},
            {F::Compression, 17},       {F::Serialization, 11},
            {F::FeatureExtraction, 14}, {F::PredictionRanking, 35},
            {F::ApplicationLogic, 1},   {F::Logging, 0},
            {F::ThreadPoolManagement, 8}, {F::Miscellaneous, 2},
        };
        p.leafShare = {
            {L::Memory, 20}, {L::Kernel, 4},      {L::Hashing, 2},
            {L::Synchronization, 3}, {L::Zstd, 11}, {L::Math, 13},
            {L::Ssl, 0},     {L::CLibraries, 37}, {L::Miscellaneous, 10},
        };
        p.memoryShare = {
            {M::Copy, 44}, {M::Free, 19}, {M::Allocation, 24},
            {M::Move, 5},  {M::Set, 3},   {M::Compare, 5},
        };
        p.copyOriginShare = {
            {O::SecureInsecureIO, 0}, {O::IOPrePostProcessing, 0},
            {O::Serialization, 0},    {O::ApplicationLogic, 100},
        };
        p.copyNetPercent = 8;
        p.kernelShare = {
            {K::Scheduler, 19}, {K::EventHandling, 20}, {K::Network, 8},
            {K::Synchronization, 16}, {K::MemoryManagement, 10},
            {K::Miscellaneous, 27},
        };
        p.syncShare = {
            {S::CppAtomics, 41}, {S::Mutex, 59},
            {S::CompareExchangeSwap, 0}, {S::SpinLock, 0},
        };
        p.clibShare = {
            {C::StdAlgorithms, 15}, {C::ConstructorsDestructors, 6},
            {C::Strings, 10},       {C::HashTables, 1},
            {C::Vectors, 53},       {C::Trees, 0},
            {C::OperatorOverride, 0}, {C::Miscellaneous, 15},
        };
        out.emplace(p.id, std::move(p));
    }

    // ---------------- Ads1 ----------------
    // Anchors: inference α = 0.52 (Table 6 case study 3); highest
    // memory-copy overhead (§5, Fig. 21) with copy α = 0.1512 (Table 7);
    // high thread-pool management (§2.4).
    {
        ServiceProfile p;
        p.id = ServiceId::Ads1;
        p.name = "Ads1";
        p.description =
            "Ad serving: user-specific data, ad ranking, and inference";
        p.functionalityShare = {
            {F::SecureInsecureIO, 17}, {F::IOPrePostProcessing, 3},
            {F::Compression, 4},       {F::Serialization, 9},
            {F::FeatureExtraction, 6}, {F::PredictionRanking, 52},
            {F::ApplicationLogic, 4},  {F::Logging, 0},
            {F::ThreadPoolManagement, 5}, {F::Miscellaneous, 0},
        };
        p.leafShare = {
            {L::Memory, 28}, {L::Kernel, 6},      {L::Hashing, 2},
            {L::Synchronization, 3}, {L::Zstd, 4}, {L::Math, 10},
            {L::Ssl, 0},     {L::CLibraries, 17}, {L::Miscellaneous, 30},
        };
        p.memoryShare = {
            {M::Copy, 54}, {M::Free, 18}, {M::Allocation, 13},
            {M::Move, 5},  {M::Set, 5},   {M::Compare, 5},
        };
        p.copyOriginShare = {
            {O::SecureInsecureIO, 8}, {O::IOPrePostProcessing, 17},
            {O::Serialization, 25},   {O::ApplicationLogic, 50},
        };
        p.copyNetPercent = 15;
        p.kernelShare = {
            {K::Scheduler, 47}, {K::EventHandling, 9}, {K::Network, 10},
            {K::Synchronization, 18}, {K::MemoryManagement, 16},
            {K::Miscellaneous, 0},
        };
        p.syncShare = {
            {S::CppAtomics, 50}, {S::Mutex, 50},
            {S::CompareExchangeSwap, 0}, {S::SpinLock, 0},
        };
        p.clibShare = {
            {C::StdAlgorithms, 19}, {C::ConstructorsDestructors, 11},
            {C::Strings, 15},       {C::HashTables, 6},
            {C::Vectors, 34},       {C::Trees, 0},
            {C::OperatorOverride, 5}, {C::Miscellaneous, 10},
        };
        out.emplace(p.id, std::move(p));
    }

    // ---------------- Ads2 ----------------
    // Anchors: inference 33 % gives the paper's 1.49x ideal bound;
    // math <= 13 %; heavy vector C-library usage.
    {
        ServiceProfile p;
        p.id = ServiceId::Ads2;
        p.name = "Ads2";
        p.description =
            "Ad serving: traverses a sorted ad list against targeting "
            "criteria";
        p.functionalityShare = {
            {F::SecureInsecureIO, 6},   {F::IOPrePostProcessing, 5},
            {F::Compression, 3},        {F::Serialization, 5},
            {F::FeatureExtraction, 11}, {F::PredictionRanking, 33},
            {F::ApplicationLogic, 24},  {F::Logging, 0},
            {F::ThreadPoolManagement, 6}, {F::Miscellaneous, 7},
        };
        p.leafShare = {
            {L::Memory, 28}, {L::Kernel, 4},      {L::Hashing, 2},
            {L::Synchronization, 5}, {L::Zstd, 2}, {L::Math, 13},
            {L::Ssl, 0},     {L::CLibraries, 42}, {L::Miscellaneous, 4},
        };
        p.memoryShare = {
            {M::Copy, 42}, {M::Free, 15}, {M::Allocation, 21},
            {M::Move, 8},  {M::Set, 8},   {M::Compare, 6},
        };
        p.copyOriginShare = {
            {O::SecureInsecureIO, 13}, {O::IOPrePostProcessing, 17},
            {O::Serialization, 25},    {O::ApplicationLogic, 45},
        };
        p.copyNetPercent = 12;
        p.kernelShare = {
            {K::Scheduler, 30}, {K::EventHandling, 11}, {K::Network, 17},
            {K::Synchronization, 13}, {K::MemoryManagement, 13},
            {K::Miscellaneous, 16},
        };
        p.syncShare = {
            {S::CppAtomics, 100}, {S::Mutex, 0},
            {S::CompareExchangeSwap, 0}, {S::SpinLock, 0},
        };
        p.clibShare = {
            {C::StdAlgorithms, 8}, {C::ConstructorsDestructors, 3},
            {C::Strings, 24},      {C::HashTables, 1},
            {C::Vectors, 32},      {C::Trees, 16},
            {C::OperatorOverride, 6}, {C::Miscellaneous, 10},
        };
        out.emplace(p.id, std::move(p));
    }

    // ---------------- Cache1 ----------------
    // Anchors: encryption α = 0.165844 within secure I/O (Table 6);
    // 6 % of cycles in leaf encryption (§2.3); high kernel (scheduler)
    // share from context switches (§2.3.2); spin-lock-heavy
    // synchronization (§2.3.3); highest allocation overhead (§5).
    {
        ServiceProfile p;
        p.id = ServiceId::Cache1;
        p.name = "Cache1";
        p.description =
            "Distributed-memory object cache, inner tier (misses go to "
            "the database cluster)";
        p.functionalityShare = {
            {F::SecureInsecureIO, 38}, {F::IOPrePostProcessing, 15},
            {F::Compression, 8},       {F::Serialization, 10},
            {F::FeatureExtraction, 0}, {F::PredictionRanking, 0},
            {F::ApplicationLogic, 20}, {F::Logging, 0},
            {F::ThreadPoolManagement, 5}, {F::Miscellaneous, 4},
        };
        p.leafShare = {
            {L::Memory, 26}, {L::Kernel, 22},     {L::Hashing, 4},
            {L::Synchronization, 19}, {L::Zstd, 5}, {L::Math, 0},
            {L::Ssl, 6},     {L::CLibraries, 13}, {L::Miscellaneous, 5},
        };
        p.memoryShare = {
            {M::Copy, 38}, {M::Free, 12}, {M::Allocation, 26},
            {M::Move, 6},  {M::Set, 12},  {M::Compare, 6},
        };
        p.copyOriginShare = {
            {O::SecureInsecureIO, 17}, {O::IOPrePostProcessing, 9},
            {O::Serialization, 7},     {O::ApplicationLogic, 67},
        };
        p.copyNetPercent = 12;
        p.kernelShare = {
            {K::Scheduler, 47}, {K::EventHandling, 19}, {K::Network, 23},
            {K::Synchronization, 7}, {K::MemoryManagement, 4},
            {K::Miscellaneous, 0},
        };
        p.syncShare = {
            {S::CppAtomics, 6}, {S::Mutex, 30},
            {S::CompareExchangeSwap, 0}, {S::SpinLock, 64},
        };
        p.clibShare = {
            {C::StdAlgorithms, 3}, {C::ConstructorsDestructors, 2},
            {C::Strings, 13},      {C::HashTables, 18},
            {C::Vectors, 18},      {C::Trees, 17},
            {C::OperatorOverride, 1}, {C::Miscellaneous, 28},
        };
        out.emplace(p.id, std::move(p));
    }

    // ---------------- Cache2 ----------------
    // Anchors: 52 % of cycles sending/receiving I/O (§1, §2.4); the
    // highest kernel leaf share with significant network interaction
    // (§2.3.2); spin locks significant (§2.3.3).
    {
        ServiceProfile p;
        p.id = ServiceId::Cache2;
        p.name = "Cache2";
        p.description =
            "Distributed-memory object cache, client-facing tier";
        p.functionalityShare = {
            {F::SecureInsecureIO, 52}, {F::IOPrePostProcessing, 12},
            {F::Compression, 3},       {F::Serialization, 8},
            {F::FeatureExtraction, 0}, {F::PredictionRanking, 0},
            {F::ApplicationLogic, 14}, {F::Logging, 0},
            {F::ThreadPoolManagement, 4}, {F::Miscellaneous, 7},
        };
        p.leafShare = {
            {L::Memory, 19}, {L::Kernel, 44},     {L::Hashing, 3},
            {L::Synchronization, 10}, {L::Zstd, 2}, {L::Math, 0},
            {L::Ssl, 2},     {L::CLibraries, 10}, {L::Miscellaneous, 10},
        };
        p.memoryShare = {
            {M::Copy, 44}, {M::Free, 9}, {M::Allocation, 21},
            {M::Move, 11}, {M::Set, 12}, {M::Compare, 3},
        };
        p.copyOriginShare = {
            {O::SecureInsecureIO, 38}, {O::IOPrePostProcessing, 8},
            {O::Serialization, 4},     {O::ApplicationLogic, 50},
        };
        p.copyNetPercent = 11;
        p.kernelShare = {
            {K::Scheduler, 32}, {K::EventHandling, 14}, {K::Network, 31},
            {K::Synchronization, 16}, {K::MemoryManagement, 7},
            {K::Miscellaneous, 0},
        };
        p.syncShare = {
            {S::CppAtomics, 0}, {S::Mutex, 50},
            {S::CompareExchangeSwap, 5}, {S::SpinLock, 45},
        };
        p.clibShare = {
            {C::StdAlgorithms, 5}, {C::ConstructorsDestructors, 5},
            {C::Strings, 6},       {C::HashTables, 16},
            {C::Vectors, 19},      {C::Trees, 32},
            {C::OperatorOverride, 10}, {C::Miscellaneous, 7},
        };
        out.emplace(p.id, std::move(p));
    }

    // ---------------- Cache3 ----------------
    // Case study 2 (§4, Fig. 17): a caching service similar to Cache1/2;
    // its functionality breakdown has no compression category. The
    // encryption kernel is α = 0.19154 of cycles, inside secure I/O.
    {
        ServiceProfile p;
        p.id = ServiceId::Cache3;
        p.name = "Cache3";
        p.description =
            "Caching microservice of case study 2 (off-chip encryption)";
        p.functionalityShare = {
            {F::SecureInsecureIO, 40}, {F::IOPrePostProcessing, 12},
            {F::Compression, 0},       {F::Serialization, 10},
            {F::FeatureExtraction, 0}, {F::PredictionRanking, 0},
            {F::ApplicationLogic, 30}, {F::Logging, 0},
            {F::ThreadPoolManagement, 8}, {F::Miscellaneous, 0},
        };
        p.leafShare = {
            {L::Memory, 24}, {L::Kernel, 26},     {L::Hashing, 3},
            {L::Synchronization, 12}, {L::Zstd, 0}, {L::Math, 0},
            {L::Ssl, 19},    {L::CLibraries, 11}, {L::Miscellaneous, 5},
        };
        p.memoryShare = {
            {M::Copy, 40}, {M::Free, 12}, {M::Allocation, 24},
            {M::Move, 8},  {M::Set, 10},  {M::Compare, 6},
        };
        p.copyOriginShare = {
            {O::SecureInsecureIO, 30}, {O::IOPrePostProcessing, 10},
            {O::Serialization, 6},     {O::ApplicationLogic, 54},
        };
        p.copyNetPercent = 10;
        p.kernelShare = {
            {K::Scheduler, 40}, {K::EventHandling, 18}, {K::Network, 26},
            {K::Synchronization, 10}, {K::MemoryManagement, 6},
            {K::Miscellaneous, 0},
        };
        p.syncShare = {
            {S::CppAtomics, 5}, {S::Mutex, 35},
            {S::CompareExchangeSwap, 0}, {S::SpinLock, 60},
        };
        p.clibShare = {
            {C::StdAlgorithms, 4}, {C::ConstructorsDestructors, 3},
            {C::Strings, 10},      {C::HashTables, 20},
            {C::Vectors, 15},      {C::Trees, 25},
            {C::OperatorOverride, 3}, {C::Miscellaneous, 20},
        };
        out.emplace(p.id, std::move(p));
    }

    for (const auto &[id, p] : out) {
        checkShares(p.functionalityShare);
        checkShares(p.leafShare);
        checkShares(p.memoryShare);
        checkShares(p.copyOriginShare);
        checkShares(p.kernelShare);
        checkShares(p.syncShare);
        checkShares(p.clibShare);
    }
    return out;
}

} // namespace

template <typename Category>
void
checkShares(const ShareMap<Category> &shares, double tolerance)
{
    double total = 0;
    for (const auto &[cat, pct] : shares) {
        ensure(pct >= 0, "profile share is negative");
        total += pct;
    }
    ensure(std::abs(total - 100.0) <= tolerance,
           "profile shares do not sum to 100");
}

template void checkShares<Functionality>(const ShareMap<Functionality> &,
                                         double);
template void checkShares<LeafCategory>(const ShareMap<LeafCategory> &,
                                        double);
template void checkShares<MemoryLeaf>(const ShareMap<MemoryLeaf> &,
                                      double);
template void checkShares<CopyOrigin>(const ShareMap<CopyOrigin> &,
                                      double);
template void checkShares<KernelLeaf>(const ShareMap<KernelLeaf> &,
                                      double);
template void checkShares<SyncLeaf>(const ShareMap<SyncLeaf> &, double);
template void checkShares<ClibLeaf>(const ShareMap<ClibLeaf> &, double);

std::string
toString(ServiceId id)
{
    switch (id) {
      case ServiceId::Web:
        return "Web";
      case ServiceId::Feed1:
        return "Feed1";
      case ServiceId::Feed2:
        return "Feed2";
      case ServiceId::Ads1:
        return "Ads1";
      case ServiceId::Ads2:
        return "Ads2";
      case ServiceId::Cache1:
        return "Cache1";
      case ServiceId::Cache2:
        return "Cache2";
      case ServiceId::Cache3:
        return "Cache3";
    }
    panic("toString: unknown ServiceId");
}

const std::vector<ServiceId> &
characterizedServices()
{
    static const std::vector<ServiceId> all = {
        ServiceId::Web,  ServiceId::Feed1,  ServiceId::Feed2,
        ServiceId::Ads1, ServiceId::Ads2,   ServiceId::Cache1,
        ServiceId::Cache2,
    };
    return all;
}

const std::vector<ServiceId> &
allServices()
{
    static const std::vector<ServiceId> all = {
        ServiceId::Web,  ServiceId::Feed1,  ServiceId::Feed2,
        ServiceId::Ads1, ServiceId::Ads2,   ServiceId::Cache1,
        ServiceId::Cache2, ServiceId::Cache3,
    };
    return all;
}

double
ServiceProfile::applicationLogicPercent() const
{
    // Fig. 1 counts ML inference as core application logic: it is what
    // the service exists to compute.
    double app = 0;
    app += functionalityShare.at(Functionality::ApplicationLogic);
    app += functionalityShare.at(Functionality::PredictionRanking);
    return app;
}

double
ServiceProfile::orchestrationPercent() const
{
    return 100.0 - applicationLogicPercent();
}

const ServiceProfile &
profile(ServiceId id)
{
    static const std::map<ServiceId, ServiceProfile> profiles =
        buildProfiles();
    auto it = profiles.find(id);
    require(it != profiles.end(), "profile: unknown service");
    return it->second;
}

const std::vector<ReferenceLeafRow> &
referenceLeafRows()
{
    // Reference rows for Fig. 2 / Fig. 3: Google's fleet [Kanev'15]
    // (memory copy + allocation = 13 % of cycles; scheduler-dominated
    // kernel time) and four SPEC CPU2006 benchmarks whose leaves are
    // math / C-library dominated. Shape-faithful reconstructions.
    static const std::vector<ReferenceLeafRow> rows = {
        {"Google [Kanev'15]",
         {{L::Memory, 13}, {L::Kernel, 19}, {L::Hashing, 2},
          {L::Synchronization, 3}, {L::Zstd, 3}, {L::Math, 10},
          {L::Ssl, 1}, {L::CLibraries, 25}, {L::Miscellaneous, 24}},
         {{M::Copy, 38}, {M::Free, 0}, {M::Allocation, 62},
          {M::Move, 0}, {M::Set, 0}, {M::Compare, 0}},
         13},
        {"400.perlbench",
         {{L::Memory, 7}, {L::Kernel, 0}, {L::Hashing, 0},
          {L::Synchronization, 0}, {L::Zstd, 0}, {L::Math, 6},
          {L::Ssl, 0}, {L::CLibraries, 62}, {L::Miscellaneous, 25}},
         {{M::Copy, 9}, {M::Free, 40}, {M::Allocation, 24},
          {M::Move, 12}, {M::Set, 3}, {M::Compare, 12}},
         7},
        {"403.gcc",
         {{L::Memory, 31}, {L::Kernel, 0}, {L::Hashing, 0},
          {L::Synchronization, 0}, {L::Zstd, 0}, {L::Math, 10},
          {L::Ssl, 0}, {L::CLibraries, 31}, {L::Miscellaneous, 28}},
         {{M::Copy, 1}, {M::Free, 19}, {M::Allocation, 13},
          {M::Move, 26}, {M::Set, 39}, {M::Compare, 2}},
         31},
        {"471.omnetpp",
         {{L::Memory, 11}, {L::Kernel, 0}, {L::Hashing, 0},
          {L::Synchronization, 0}, {L::Zstd, 0}, {L::Math, 7},
          {L::Ssl, 0}, {L::CLibraries, 62}, {L::Miscellaneous, 20}},
         {{M::Copy, 7}, {M::Free, 35}, {M::Allocation, 45},
          {M::Move, 10}, {M::Set, 0}, {M::Compare, 3}},
         11},
        {"473.astar",
         {{L::Memory, 3}, {L::Kernel, 0}, {L::Hashing, 0},
          {L::Synchronization, 0}, {L::Zstd, 0}, {L::Math, 31},
          {L::Ssl, 0}, {L::CLibraries, 24}, {L::Miscellaneous, 42}},
         {{M::Copy, 7}, {M::Free, 73}, {M::Allocation, 20},
          {M::Move, 0}, {M::Set, 0}, {M::Compare, 0}},
         3},
    };
    return rows;
}

} // namespace accel::workload

/**
 * @file
 * Per-service workload profiles.
 *
 * Encodes the characterization of the seven production microservices
 * (plus Cache3 from case study 2) as distributions the rest of the
 * library consumes: functionality mixes (Fig. 9), leaf mixes (Fig. 2),
 * the sub-breakdowns of Figs. 3-7, and reference rows for Google's
 * fleet and SPEC CPU2006.
 *
 * Numbers stated in the paper's prose or tables are encoded exactly
 * (Web app-logic 18 %, Web logging 23 %, caching I/O 52 %, Cache1 SSL
 * leaf 6 %, Table 6/7 α values, ...). Unlabeled bar-chart segments are
 * shape-faithful reconstructions; see DESIGN.md and EXPERIMENTS.md.
 */

#pragma once

#include <map>
#include <string>
#include <vector>

#include "workload/categories.hh"

namespace accel::workload {

/** The services the paper characterizes (Cache3 appears in §4). */
enum class ServiceId
{
    Web,
    Feed1,
    Feed2,
    Ads1,
    Ads2,
    Cache1,
    Cache2,
    Cache3,
};

std::string toString(ServiceId id);

/** The seven characterized services (Fig. 1/2/9 order). */
const std::vector<ServiceId> &characterizedServices();

/** All services including Cache3. */
const std::vector<ServiceId> &allServices();

/** Shares are percentages of the relevant whole, summing to ~100. */
template <typename Category>
using ShareMap = std::map<Category, double>;

/** Everything we encode about one service. */
struct ServiceProfile
{
    ServiceId id;
    std::string name;
    std::string description;

    /** Fig. 9: % of total cycles per functionality (sums to 100). */
    ShareMap<Functionality> functionalityShare;

    /** Fig. 2: % of total cycles per leaf category (sums to 100). */
    ShareMap<LeafCategory> leafShare;

    /** Fig. 3: % of *memory* cycles per memory leaf (sums to 100). */
    ShareMap<MemoryLeaf> memoryShare;

    /** Fig. 4: % of *copy* cycles per origin (sums to 100). */
    ShareMap<CopyOrigin> copyOriginShare;

    /** Fig. 4 annotation: copies as % of total cycles. */
    double copyNetPercent;

    /** Fig. 5: % of *kernel* cycles per kernel leaf (sums to 100). */
    ShareMap<KernelLeaf> kernelShare;

    /** Fig. 6: % of *synchronization* cycles per sync leaf. */
    ShareMap<SyncLeaf> syncShare;

    /** Fig. 7: % of *C library* cycles per C-library leaf. */
    ShareMap<ClibLeaf> clibShare;

    /** % of cycles in core application logic (Fig. 1; = functionality
     *  ApplicationLogic + PredictionRanking for ML services). */
    double applicationLogicPercent() const;

    /** % of cycles in orchestration work (Fig. 1's complement). */
    double orchestrationPercent() const;
};

/** Profile lookup. @throws FatalError for unknown ids. */
const ServiceProfile &profile(ServiceId id);

/** Reference leaf rows: Google fleet + SPEC CPU2006 (Fig. 2 bottom). */
struct ReferenceLeafRow
{
    std::string name;
    ShareMap<LeafCategory> leafShare;
    ShareMap<MemoryLeaf> memoryShare; //!< Fig. 3 reference rows
    double memoryNetPercent;          //!< memory as % of total cycles
};

const std::vector<ReferenceLeafRow> &referenceLeafRows();

/**
 * Validate that a share map sums to ~100 (± @p tolerance).
 * @throws PanicError when it does not; profiles are static data, so a
 * violation is a library bug.
 */
template <typename Category>
void checkShares(const ShareMap<Category> &shares,
                 double tolerance = 0.51);

} // namespace accel::workload

#include "workload/request_factory.hh"

#include "model/granularity.hh"
#include "util/logging.hh"
#include "workload/granularities.hh"

namespace accel::workload {

using model::Strategy;
using model::ThreadingDesign;

microsim::WorkloadSpec
makeWorkload(double hostCyclesPerSec, double alpha, double offloadsPerSec,
             std::shared_ptr<const BucketDist> sizes, double nonKernelCv)
{
    require(hostCyclesPerSec > 0, "makeWorkload: C must be positive");
    require(alpha > 0 && alpha < 1, "makeWorkload: alpha must be in (0,1)");
    require(offloadsPerSec > 0, "makeWorkload: n must be positive");
    require(sizes != nullptr, "makeWorkload: missing granularity dist");

    microsim::WorkloadSpec spec;
    spec.kernelsPerRequest = 1;
    spec.granularity = sizes;
    double kernel_cycles = alpha * hostCyclesPerSec / offloadsPerSec;
    spec.cyclesPerByte = kernel_cycles / sizes->mean();
    spec.nonKernelCyclesMean =
        (1.0 - alpha) * hostCyclesPerSec / offloadsPerSec;
    spec.nonKernelCv = nonKernelCv;
    spec.beta = 1.0;
    return spec;
}

CaseStudy
aesNiCaseStudy()
{
    CaseStudy cs;
    cs.name = "AES-NI for Cache1";
    cs.acceleration = "on-chip (AES-NI instruction)";
    cs.design = ThreadingDesign::Sync;
    cs.paperEstimatedSpeedup = 0.157;
    cs.paperRealSpeedup = 0.14;

    model::Params &p = cs.publishedParams;
    p.hostCycles = 2.0e9;
    p.alpha = 0.165844;
    p.offloads = 298951;
    p.setupCycles = 10;
    p.queueCycles = 0;
    p.interfaceCycles = 3;
    p.accelFactor = 6;
    p.strategy = Strategy::OnChip;
    p.validate();

    microsim::AbExperiment &e = cs.experiment;
    e.service.cores = 1;
    e.service.threads = 1;
    e.service.design = cs.design;
    e.service.strategy = Strategy::OnChip;
    e.service.clockGHz = 2.0;
    e.service.offloadSetupCycles = p.setupCycles;
    // Production effect the model's o0 = 10 understates: AES key
    // schedule re-derivation and register save/restore around the
    // instruction sequence.
    e.service.unmodeledPerOffloadCycles = 80;
    e.accelerator.speedupFactor = p.accelFactor;
    e.accelerator.fixedLatencyCycles = p.interfaceCycles;
    e.accelerator.channels = 1;
    e.workload = makeWorkload(p.hostCycles, p.alpha, p.offloads,
                              encryptionSizes(ServiceId::Cache1));
    e.seed = 11;
    e.measureSeconds = 0.5;
    return cs;
}

CaseStudy
offChipEncryptionCaseStudy()
{
    CaseStudy cs;
    cs.name = "Off-chip encryption for Cache3";
    cs.acceleration = "off-chip (PCIe encryption device)";
    cs.design = ThreadingDesign::AsyncNoResponse;
    cs.paperEstimatedSpeedup = 0.086;
    cs.paperRealSpeedup = 0.075;

    model::Params &p = cs.publishedParams;
    p.hostCycles = 2.3e9;
    p.alpha = 0.19154;
    p.offloads = 101863;
    p.setupCycles = 0;
    p.queueCycles = 0;
    p.interfaceCycles = 2530;
    // The accelerator's speedup factor is immaterial for Async
    // no-response throughput (Table 6 lists it as N/A); model it as a
    // fast crypto ASIC.
    p.accelFactor = 27;
    p.strategy = Strategy::OffChip;
    p.validate();

    microsim::AbExperiment &e = cs.experiment;
    e.service.cores = 1;
    e.service.threads = 1;
    e.service.design = cs.design;
    e.service.strategy = Strategy::OffChip;
    e.service.clockGHz = 2.3;
    e.service.offloadSetupCycles = 0;
    // The host's device driver synchronously awaits the accelerator's
    // receipt acknowledgement (paper §4, case study 2).
    e.service.driverWaitsForAck = true;
    // Completion-interrupt handling and descriptor recycling the model
    // does not charge.
    e.service.unmodeledPerOffloadCycles = 220;
    e.accelerator.speedupFactor = p.accelFactor;
    e.accelerator.fixedLatencyCycles = p.interfaceCycles;
    e.accelerator.channels = 2;
    e.workload = makeWorkload(p.hostCycles, p.alpha, p.offloads,
                              encryptionSizes(ServiceId::Cache3));
    e.seed = 12;
    e.measureSeconds = 0.5;
    return cs;
}

CaseStudy
remoteInferenceCaseStudy()
{
    CaseStudy cs;
    cs.name = "Remote inference for Ads1";
    cs.acceleration = "remote (general-purpose CPU over the network)";
    cs.design = ThreadingDesign::AsyncDistinctThread;
    cs.paperEstimatedSpeedup = 0.7239;
    cs.paperRealSpeedup = 0.6869;

    model::Params &p = cs.publishedParams;
    p.hostCycles = 2.5e9;
    p.alpha = 0.52;
    p.offloads = 10; // carefully batched inference offloads
    p.setupCycles = 25e6; // I/O overhead of shipping feature vectors
    p.queueCycles = 0;
    p.interfaceCycles = 0; // L + Q = 0 for remote accelerators
    p.threadSwitchCycles = 12500;
    p.accelFactor = 1; // a remote CPU, not a faster device
    p.strategy = Strategy::Remote;
    p.validate();

    microsim::AbExperiment &e = cs.experiment;
    e.service.cores = 1;
    e.service.threads = 1;
    e.service.design = cs.design;
    e.service.strategy = Strategy::Remote;
    e.service.clockGHz = 2.5;
    e.service.offloadSetupCycles = p.setupCycles;
    e.service.contextSwitchCycles = p.threadSwitchCycles;
    e.service.driverWaitsForAck = false; // async network send
    // Response-path deserialization of returned relevance vectors; the
    // model charges I/O only on the send side (o0).
    e.service.responsePickupCycles = 3.2e6;
    e.service.maxOutstanding = 16;
    e.accelerator.speedupFactor = 1.0;
    // Round-trip network traversal per batch (~10 ms each way at
    // 2.5 GHz). It never consumes host cycles (async, no ack) but sits
    // on the response path, producing the paper's per-request latency
    // degradation.
    e.accelerator.fixedLatencyCycles = 50e6;
    e.accelerator.channels = 4;

    // Batch-granularity workload: each "request" is one inference batch
    // (the model's abstraction level); granularity is the serialized
    // feature-vector payload.
    std::vector<DistBucket> payload = {
        {200e3, 400e3, 0.3}, {400e3, 800e3, 0.5}, {800e3, 1.6e6, 0.2}};
    e.workload = makeWorkload(p.hostCycles, p.alpha, p.offloads,
                              std::make_shared<const BucketDist>(payload),
                              /*nonKernelCv=*/0.1);
    e.seed = 13;
    e.measureSeconds = 30.0;
    e.warmupSeconds = 2.0;
    return cs;
}

std::vector<CaseStudy>
allCaseStudies()
{
    return {aesNiCaseStudy(), offChipEncryptionCaseStudy(),
            remoteInferenceCaseStudy()};
}

double
feed1CompressionCyclesPerByte()
{
    // The paper's off-chip Sync compression offload breaks even at
    // g = 425 B with L = 2300 and A = 27 (eq. 2):
    // Cb * 425 * (1 - 1/27) = 2300  =>  Cb = 5.62 cycles/B.
    return 2300.0 / (425.0 * (1.0 - 1.0 / 27.0));
}

std::vector<Recommendation>
fig20Recommendations()
{
    std::vector<Recommendation> recs;
    auto sizes = compressionSizes(ServiceId::Feed1);
    double cb = feed1CompressionCyclesPerByte();
    const double n_total = 15008; // Table 7 on-chip row: all offloads

    // ---- Feed1 compression: on-chip Sync (A = 5, negligible o0+L) ----
    {
        model::Params base;
        base.hostCycles = 2.3e9;
        base.alpha = 0.15;
        base.accelFactor = 5;
        base.strategy = Strategy::OnChip;
        model::OffloadProfit profit{cb, 1.0};
        auto plan = model::planOffloads(*sizes, n_total, base.alpha,
                                        profit, ThreadingDesign::Sync,
                                        base);
        recs.push_back({"Feed1: Compression", "On-chip",
                        model::applyPlan(base, base.alpha, plan),
                        ThreadingDesign::Sync, 13.6});
    }

    // ---- Feed1 compression: off-chip (A = 27, L = 2300) ----
    for (auto [design, o1, label, paper] :
         {std::tuple{ThreadingDesign::Sync, 0.0,
                     std::string("Off-chip:Sync"), 9.0},
          std::tuple{ThreadingDesign::SyncOS, 5750.0,
                     std::string("Off-chip:Sync-OS"), 1.6},
          std::tuple{ThreadingDesign::AsyncSameThread, 0.0,
                     std::string("Off-chip:Async"), 9.6}}) {
        model::Params base;
        base.hostCycles = 2.3e9;
        base.alpha = 0.15;
        base.accelFactor = 27;
        base.interfaceCycles = 2300;
        base.threadSwitchCycles = o1;
        base.strategy = Strategy::OffChip;
        model::OffloadProfit profit{cb, 1.0};
        auto plan = model::planOffloads(*sizes, n_total, base.alpha,
                                        profit, design, base);
        recs.push_back({"Feed1: Compression", label,
                        model::applyPlan(base, base.alpha, plan), design,
                        paper});
    }

    // ---- Ads1 memory copy: on-chip Sync (AVX, A = 4) ----
    {
        model::Params p;
        p.hostCycles = 2.3e9;
        p.alpha = 0.1512;
        p.offloads = 1473681;
        p.accelFactor = 4;
        p.strategy = Strategy::OnChip;
        p.validate();
        recs.push_back({"Ads1: Memory copy", "On-chip", p,
                        ThreadingDesign::Sync, 12.7});
    }

    // ---- Cache1 memory allocation: on-chip Sync (Mallacc, A = 1.5) ----
    {
        model::Params p;
        p.hostCycles = 2.0e9;
        p.alpha = 0.055;
        p.offloads = 51695;
        p.accelFactor = 1.5;
        p.strategy = Strategy::OnChip;
        p.validate();
        recs.push_back({"Cache1: Memory allocation", "On-chip", p,
                        ThreadingDesign::Sync, 1.86});
    }
    return recs;
}

} // namespace accel::workload

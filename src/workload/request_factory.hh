/**
 * @file
 * Builders that turn published parameters and workload profiles into
 * runnable experiments: the three Table 6 validation case studies
 * (simulator A/B + model comparison) and the Table 7 / Fig. 20
 * acceleration recommendations (model application).
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "microsim/ab_test.hh"
#include "model/accelerometer.hh"
#include "stats/bucket_dist.hh"
#include "workload/profiles.hh"

namespace accel::workload {

/**
 * Build a one-kernel-per-request workload whose closed-loop execution
 * matches the model's parameters: on a host with @p hostCyclesPerSec
 * busy cycles, @p offloadsPerSec kernels of fraction @p alpha occur.
 * Cb falls out as alpha * C / (n * mean granularity).
 */
microsim::WorkloadSpec
makeWorkload(double hostCyclesPerSec, double alpha, double offloadsPerSec,
             std::shared_ptr<const BucketDist> sizes,
             double nonKernelCv = 0.25);

/** One of the paper's §4 retrospective case studies. */
struct CaseStudy
{
    std::string name;
    std::string acceleration; //!< e.g. "on-chip (AES-NI)"
    microsim::AbExperiment experiment;
    model::Params publishedParams;       //!< Table 6 row
    model::ThreadingDesign design;
    double paperEstimatedSpeedup;        //!< fraction, e.g. 0.157
    double paperRealSpeedup;             //!< fraction, e.g. 0.14
};

/**
 * Case study 1: AES-NI encryption for Cache1 (on-chip, Sync).
 * Table 6: C=2.0e9, α=0.165844, n=298,951, o0=10, L=3, A=6;
 * estimated +15.7 %, real +14 %.
 */
CaseStudy aesNiCaseStudy();

/**
 * Case study 2: off-chip PCIe encryption for Cache3 (Async
 * no-response; the host waits for the receipt acknowledgement).
 * Table 6: C=2.3e9, α=0.19154, n=101,863, L=2530;
 * estimated +8.6 %, real +7.5 %.
 */
CaseStudy offChipEncryptionCaseStudy();

/**
 * Case study 3: remote CPU inference for Ads1 (distinct response
 * thread; a single o1 per offload). Table 6: C=2.5e9, α=0.52, n=10,
 * o0=25e6, o1=12,500, A=1; estimated +72.39 %, real +68.69 %.
 */
CaseStudy remoteInferenceCaseStudy();

/** All three, in Table 6 order. */
std::vector<CaseStudy> allCaseStudies();

/** One Fig. 20 bar: an acceleration recommendation the model projects. */
struct Recommendation
{
    std::string overhead;     //!< "Feed1: Compression" etc.
    std::string acceleration; //!< "On-chip", "Off-chip:Sync", ...
    model::Params params;     //!< Table 7 row (after granularity plan)
    model::ThreadingDesign design;
    double paperSpeedupPercent; //!< the bar's published value
};

/**
 * The six Fig. 20 projections, with n and the offloaded fraction
 * derived from the granularity CDFs exactly as the paper derives them
 * (count-weighted partial offload; see DESIGN.md).
 */
std::vector<Recommendation> fig20Recommendations();

/** Cb for Feed1 compression implied by the published 425 B break-even. */
double feed1CompressionCyclesPerByte();

} // namespace accel::workload

/** @file Tests for the INI-style configuration parser. */

#include "config/config.hh"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel {
namespace {

TEST(Config, ParsesSectionsAndKeys)
{
    Config cfg = Config::fromString(
        "[aes-ni]\n"
        "C = 2.0e9\n"
        "alpha = 0.165844\n"
        "[encryption]\n"
        "L = 2530\n");
    EXPECT_TRUE(cfg.has("aes-ni", "C"));
    EXPECT_DOUBLE_EQ(cfg.getDouble("aes-ni", "alpha"), 0.165844);
    EXPECT_DOUBLE_EQ(cfg.getDouble("encryption", "L"), 2530);
}

TEST(Config, GlobalSection)
{
    Config cfg = Config::fromString("top = 1\n[sec]\nk = 2\n");
    EXPECT_EQ(cfg.getCount("", "top"), 1u);
    EXPECT_EQ(cfg.getCount("sec", "k"), 2u);
}

TEST(Config, CommentsStripped)
{
    Config cfg = Config::fromString(
        "# leading comment\n"
        "a = 1 ; trailing\n"
        "b = 2 # trailing hash\n");
    EXPECT_EQ(cfg.getCount("", "a"), 1u);
    EXPECT_EQ(cfg.getCount("", "b"), 2u);
}

TEST(Config, WhitespaceTolerant)
{
    Config cfg = Config::fromString("  [ sec ]  \n  key =   value  \n");
    EXPECT_EQ(cfg.getString("sec", "key"), "value");
}

TEST(Config, MissingKeyThrows)
{
    Config cfg = Config::fromString("[s]\na = 1\n");
    EXPECT_THROW(cfg.getString("s", "b"), FatalError);
    EXPECT_THROW(cfg.getDouble("other", "a"), FatalError);
}

TEST(Config, DefaultsReturned)
{
    Config cfg = Config::fromString("[s]\na = 1\n");
    EXPECT_DOUBLE_EQ(cfg.getDouble("s", "missing", 3.5), 3.5);
    EXPECT_EQ(cfg.getString("s", "missing", "dflt"), "dflt");
    EXPECT_EQ(cfg.getCount("s", "missing", 9u), 9u);
    EXPECT_TRUE(cfg.getBool("s", "missing", true));
}

TEST(Config, BooleanValues)
{
    Config cfg = Config::fromString("on = yes\noff = 0\n");
    EXPECT_TRUE(cfg.getBool("", "on"));
    EXPECT_FALSE(cfg.getBool("", "off"));
}

TEST(Config, SyntaxErrors)
{
    EXPECT_THROW(Config::fromString("[unterminated\n"), FatalError);
    EXPECT_THROW(Config::fromString("[]\n"), FatalError);
    EXPECT_THROW(Config::fromString("novalue\n"), FatalError);
    EXPECT_THROW(Config::fromString("= bare\n"), FatalError);
}

TEST(Config, DuplicateKeyLastWins)
{
    LogLevel prev = setLogLevel(LogLevel::Silent);
    Config cfg = Config::fromString("a = 1\na = 2\n");
    setLogLevel(prev);
    EXPECT_EQ(cfg.getCount("", "a"), 2u);
}

TEST(Config, SectionsAndKeysPreserveOrder)
{
    Config cfg = Config::fromString("[b]\nz=1\na=2\n[a]\nk=3\n");
    auto secs = cfg.sections();
    ASSERT_EQ(secs.size(), 2u);
    EXPECT_EQ(secs[0], "b");
    EXPECT_EQ(secs[1], "a");
    auto keys = cfg.keys("b");
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "z");
    EXPECT_EQ(keys[1], "a");
}

TEST(Config, SetInsertsAndOverwrites)
{
    Config cfg;
    cfg.set("s", "k", "v1");
    cfg.set("s", "k", "v2");
    EXPECT_EQ(cfg.getString("s", "k"), "v2");
    EXPECT_EQ(cfg.keys("s").size(), 1u);
}

TEST(Config, FromFileRoundTrip)
{
    std::string path = testing::TempDir() + "/accel_config_test.ini";
    {
        std::ofstream out(path);
        out << "[case]\nC = 2.5e9\nthreading = sync-os\n";
    }
    Config cfg = Config::fromFile(path);
    EXPECT_DOUBLE_EQ(cfg.getDouble("case", "C"), 2.5e9);
    EXPECT_EQ(cfg.getString("case", "threading"), "sync-os");
    std::remove(path.c_str());
}

TEST(Config, FromFileMissingThrows)
{
    EXPECT_THROW(Config::fromFile("/nonexistent/path.ini"), FatalError);
}

TEST(Config, KeysOfUnknownSectionEmpty)
{
    Config cfg = Config::fromString("[s]\na=1\n");
    EXPECT_TRUE(cfg.keys("nope").empty());
}

TEST(Config, UnusedKeysTracksProbes)
{
    Config cfg = Config::fromString("[s]\na = 1\nb = 2\nc = 3\n");
    // Nothing probed yet: every key is unused, in insertion order.
    auto unused = cfg.unusedKeys("s");
    ASSERT_EQ(unused.size(), 3u);
    EXPECT_EQ(unused[0], "a");
    EXPECT_EQ(unused[1], "b");
    EXPECT_EQ(unused[2], "c");

    cfg.getCount("s", "b"); // get() marks accessed
    cfg.has("s", "c");      // a bare existence probe counts too
    unused = cfg.unusedKeys("s");
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "a");
}

TEST(Config, UnusedKeysIgnoresProbesForAbsentKeys)
{
    Config cfg = Config::fromString("[s]\na = 1\n");
    // Probing a key that is not there must not mark anything.
    EXPECT_FALSE(cfg.has("s", "zzz"));
    cfg.getCount("s", "zzz", 7u);
    auto unused = cfg.unusedKeys("s");
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "a");
}

TEST(Config, UnusedKeysScopedToSection)
{
    Config cfg = Config::fromString("[x]\na = 1\n[y]\na = 2\n");
    cfg.getCount("x", "a");
    EXPECT_TRUE(cfg.unusedKeys("x").empty());
    ASSERT_EQ(cfg.unusedKeys("y").size(), 1u);
    EXPECT_TRUE(cfg.unusedKeys("nope").empty());
}

TEST(Config, FromStringStartsWithNoAccesses)
{
    // The parser's own duplicate-detection probes must not leak into
    // the access record handed to unknown-key validation.
    LogLevel prev = setLogLevel(LogLevel::Silent);
    Config cfg = Config::fromString("[s]\na = 1\na = 2\nb = 3\n");
    setLogLevel(prev);
    EXPECT_EQ(cfg.unusedKeys("s").size(), 2u);
}

} // namespace
} // namespace accel

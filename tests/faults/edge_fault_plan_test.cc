/** @file Tests for the deterministic per-edge RPC fault schedule. */

#include "faults/edge_fault_plan.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::faults {
namespace {

TEST(EdgeFaultPlan, NullPlanIsInactive)
{
    EdgeFaultPlan plan;
    EXPECT_FALSE(plan.active());
    EXPECT_FALSE(plan.canLoseCalls());
    EXPECT_NO_THROW(plan.validate());
}

TEST(EdgeFaultPlan, EachFaultFieldActivatesThePlan)
{
    EdgeFaultPlan p;
    p.dropProbability = 0.1;
    EXPECT_TRUE(p.active());
    EXPECT_TRUE(p.canLoseCalls());

    p = EdgeFaultPlan{};
    p.spikeProbability = 0.1;
    p.spikeLatencyCycles = 100;
    EXPECT_TRUE(p.active());
    EXPECT_FALSE(p.canLoseCalls()); // delayed, not lost

    p = EdgeFaultPlan{};
    p.blackholes = {{10, 20}};
    EXPECT_TRUE(p.active());
    EXPECT_TRUE(p.canLoseCalls());
}

TEST(EdgeFaultPlan, ValidationNamesTheField)
{
    EdgeFaultPlan p;
    p.spikeProbability = 2.0;
    try {
        p.validate();
        FAIL() << "out-of-domain probability accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("spikeProbability"),
                  std::string::npos);
    }
}

TEST(EdgeFaultPlan, ValidationRejectsOutOfDomainValues)
{
    EdgeFaultPlan p;
    p.dropProbability = -0.5;
    EXPECT_THROW(p.validate(), FatalError);

    p = EdgeFaultPlan{};
    p.spikeProbability = 0.5; // spike without spikeLatencyCycles
    EXPECT_THROW(p.validate(), FatalError);

    p = EdgeFaultPlan{};
    p.spikeLatencyCycles = -1.0;
    EXPECT_THROW(p.validate(), FatalError);

    p = EdgeFaultPlan{};
    p.spikeWindows = {{10, 20}}; // windows narrowing a spike that
    EXPECT_THROW(p.validate(), FatalError); // never fires

    p = EdgeFaultPlan{};
    p.spikeProbability = 0.5;
    p.spikeLatencyCycles = 100;
    p.spikeWindows = {{20, 10}}; // begin >= end
    EXPECT_THROW(p.validate(), FatalError);

    p = EdgeFaultPlan{};
    p.blackholes = {{10, 30}, {20, 40}}; // overlapping
    EXPECT_THROW(p.validate(), FatalError);

    p = EdgeFaultPlan{};
    p.blackholes = {{50, 60}, {10, 20}}; // unsorted
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(EdgeFaultPlan, DrawIsAPureFunctionOfSeedAndSlot)
{
    EdgeFaultPlan p;
    p.seed = 42;
    p.dropProbability = 0.3;
    p.spikeProbability = 0.3;
    p.spikeLatencyCycles = 500;
    for (std::uint64_t i = 0; i < 256; ++i) {
        EdgeFaultDraw a = p.draw(i);
        EdgeFaultDraw b = p.draw(i); // replay, any call order
        EXPECT_EQ(a.drop, b.drop);
        EXPECT_DOUBLE_EQ(a.extraLatencyCycles, b.extraLatencyCycles);
    }
}

TEST(EdgeFaultPlan, DifferentSeedsDecorrelate)
{
    EdgeFaultPlan a, b;
    a.seed = 1;
    b.seed = 2;
    a.dropProbability = b.dropProbability = 0.5;
    int differing = 0;
    for (std::uint64_t i = 0; i < 256; ++i) {
        if (a.draw(i).drop != b.draw(i).drop)
            ++differing;
    }
    EXPECT_GT(differing, 64); // ~half should disagree
}

TEST(EdgeFaultPlan, DrawRatesMatchProbabilities)
{
    EdgeFaultPlan p;
    p.seed = 7;
    p.dropProbability = 0.25;
    p.spikeProbability = 0.25;
    p.spikeLatencyCycles = 100;
    int drops = 0, spikes = 0;
    const int kDraws = 20000;
    for (std::uint64_t i = 0; i < kDraws; ++i) {
        EdgeFaultDraw d = p.draw(i);
        drops += d.drop;
        spikes += d.extraLatencyCycles > 0;
    }
    EXPECT_NEAR(drops / double(kDraws), 0.25, 0.02);
    EXPECT_NEAR(spikes / double(kDraws), 0.25, 0.02);
}

TEST(EdgeFaultPlan, BlackholeWindowLookup)
{
    EdgeFaultPlan p;
    p.blackholes = {{10, 20}, {50, 60}};
    EXPECT_NO_THROW(p.validate());
    EXPECT_FALSE(p.blackholedAt(9));
    EXPECT_TRUE(p.blackholedAt(10));
    EXPECT_TRUE(p.blackholedAt(19));
    EXPECT_FALSE(p.blackholedAt(20)); // half-open
    EXPECT_TRUE(p.blackholedAt(55));
    EXPECT_FALSE(p.blackholedAt(60));
    EXPECT_FALSE(p.blackholedAt(1u << 30));
}

TEST(EdgeFaultPlan, SpikeWindowsNarrowTheSpike)
{
    EdgeFaultPlan p;
    p.spikeProbability = 1.0;
    p.spikeLatencyCycles = 100;
    // No windows: the spike applies for the whole run.
    EXPECT_TRUE(p.spikeActiveAt(0));
    EXPECT_TRUE(p.spikeActiveAt(1u << 30));

    p.spikeWindows = {{100, 200}, {400, 500}};
    EXPECT_NO_THROW(p.validate());
    EXPECT_FALSE(p.spikeActiveAt(99));
    EXPECT_TRUE(p.spikeActiveAt(100));
    EXPECT_TRUE(p.spikeActiveAt(199));
    EXPECT_FALSE(p.spikeActiveAt(200)); // half-open
    EXPECT_TRUE(p.spikeActiveAt(450));
    EXPECT_FALSE(p.spikeActiveAt(500));
}

} // namespace
} // namespace accel::faults

/** @file Tests for the deterministic fault-schedule description. */

#include "faults/fault_plan.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::faults {
namespace {

TEST(FaultPlan, NullPlanIsInactive)
{
    FaultPlan plan;
    EXPECT_FALSE(plan.active());
    EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, EachFaultFieldActivatesThePlan)
{
    FaultPlan p;
    p.dropProbability = 0.1;
    EXPECT_TRUE(p.active());
    p = FaultPlan{};
    p.lateProbability = 0.1;
    p.lateDelayCycles = 10;
    EXPECT_TRUE(p.active());
    p = FaultPlan{};
    p.transferSpikeProbability = 0.1;
    EXPECT_TRUE(p.active());
    p = FaultPlan{};
    p.stallWindows = {{10, 20}};
    EXPECT_TRUE(p.active());
    p = FaultPlan{};
    p.deviceFailAtTick = 100;
    EXPECT_TRUE(p.active());
}

TEST(FaultPlan, ValidationNamesTheField)
{
    FaultPlan p;
    p.dropProbability = 1.5;
    try {
        p.validate();
        FAIL() << "out-of-domain probability accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("dropProbability"),
                  std::string::npos);
    }
}

TEST(FaultPlan, ValidationRejectsOutOfDomainValues)
{
    FaultPlan p;
    p.lateProbability = -0.1;
    EXPECT_THROW(p.validate(), FatalError);

    p = FaultPlan{};
    p.lateProbability = 0.5; // no lateDelayCycles
    EXPECT_THROW(p.validate(), FatalError);

    p = FaultPlan{};
    p.transferSpikeFactor = 0.5; // spikes must not speed transfers up
    EXPECT_THROW(p.validate(), FatalError);

    p = FaultPlan{};
    p.stallWindows = {{20, 10}}; // begin >= end
    EXPECT_THROW(p.validate(), FatalError);

    p = FaultPlan{};
    p.stallWindows = {{10, 30}, {20, 40}}; // overlapping
    EXPECT_THROW(p.validate(), FatalError);

    p = FaultPlan{};
    p.deviceRecoverAtTick = 100; // recovery without failure
    EXPECT_THROW(p.validate(), FatalError);

    p = FaultPlan{};
    p.deviceFailAtTick = 200;
    p.deviceRecoverAtTick = 100; // recovery before failure
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(FaultPlan, DrawIsAPureFunctionOfSeedAndIndex)
{
    FaultPlan p;
    p.seed = 42;
    p.dropProbability = 0.3;
    p.lateProbability = 0.3;
    p.lateDelayCycles = 500;
    p.transferSpikeProbability = 0.2;
    p.transferSpikeFactor = 4.0;
    for (std::uint64_t i = 0; i < 256; ++i) {
        FaultDraw a = p.draw(i);
        FaultDraw b = p.draw(i); // replay, any call order
        EXPECT_EQ(a.dropResponse, b.dropResponse);
        EXPECT_DOUBLE_EQ(a.lateResponseCycles, b.lateResponseCycles);
        EXPECT_DOUBLE_EQ(a.transferFactor, b.transferFactor);
    }
}

TEST(FaultPlan, DifferentSeedsDecorrelate)
{
    FaultPlan a, b;
    a.seed = 1;
    b.seed = 2;
    a.dropProbability = b.dropProbability = 0.5;
    int differing = 0;
    for (std::uint64_t i = 0; i < 256; ++i) {
        if (a.draw(i).dropResponse != b.draw(i).dropResponse)
            ++differing;
    }
    EXPECT_GT(differing, 64); // ~half should disagree
}

TEST(FaultPlan, DrawRatesMatchProbabilities)
{
    FaultPlan p;
    p.seed = 7;
    p.dropProbability = 0.25;
    p.lateProbability = 0.25;
    p.lateDelayCycles = 100;
    int drops = 0, lates = 0;
    const int kDraws = 20000;
    for (std::uint64_t i = 0; i < kDraws; ++i) {
        FaultDraw d = p.draw(i);
        drops += d.dropResponse;
        lates += d.lateResponseCycles > 0;
    }
    EXPECT_NEAR(drops / double(kDraws), 0.25, 0.02);
    // Late draws only happen on non-dropped offloads: 0.75 * 0.25.
    EXPECT_NEAR(lates / double(kDraws), 0.1875, 0.02);
}

TEST(FaultPlan, DroppedCompletionIsNeverAlsoLate)
{
    FaultPlan p;
    p.seed = 3;
    p.dropProbability = 0.5;
    p.lateProbability = 1.0;
    p.lateDelayCycles = 100;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        FaultDraw d = p.draw(i);
        if (d.dropResponse)
            EXPECT_DOUBLE_EQ(d.lateResponseCycles, 0.0);
        else
            EXPECT_DOUBLE_EQ(d.lateResponseCycles, 100.0);
    }
}

TEST(FaultPlan, StallWindowLookup)
{
    FaultPlan p;
    p.stallWindows = {{10, 20}, {50, 60}};
    EXPECT_NO_THROW(p.validate());
    EXPECT_FALSE(p.stalledAt(9));
    EXPECT_TRUE(p.stalledAt(10));
    EXPECT_TRUE(p.stalledAt(19));
    EXPECT_FALSE(p.stalledAt(20)); // half-open
    EXPECT_TRUE(p.stalledAt(55));
    EXPECT_FALSE(p.stalledAt(60));
    EXPECT_EQ(p.stallEnd(15), 20u);
    EXPECT_EQ(p.stallEnd(55), 60u);
    EXPECT_EQ(p.stallEnd(30), 30u); // not stalled: identity
}

TEST(FaultPlan, DeviceFailureWindow)
{
    FaultPlan p;
    p.deviceFailAtTick = 100;
    p.deviceRecoverAtTick = 200;
    EXPECT_NO_THROW(p.validate());
    EXPECT_FALSE(p.failedAt(99));
    EXPECT_TRUE(p.failedAt(100));
    EXPECT_TRUE(p.failedAt(199));
    EXPECT_FALSE(p.failedAt(200));

    p.deviceRecoverAtTick = kNeverTick; // permanent failure
    EXPECT_TRUE(p.failedAt(100));
    EXPECT_TRUE(p.failedAt(1u << 30));
}

} // namespace
} // namespace accel::faults

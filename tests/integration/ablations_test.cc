/**
 * @file
 * Integration tests locking in the ablation-bench findings:
 *  - bytes-weighted partial offload tracks the simulator for
 *    heavy-tailed granularity CDFs where count-weighting does not;
 *  - plugging the simulator's measured Q back into eq. (1) recovers
 *    the contended-device speedup the zero-Q model misses.
 */

#include <gtest/gtest.h>

#include "microsim/ab_test.hh"
#include "model/granularity.hh"
#include "workload/granularities.hh"
#include "workload/request_factory.hh"

namespace accel {
namespace {

using model::AlphaWeighting;
using model::ThreadingDesign;

TEST(AblationWeighting, BytesWeightedTracksSelectiveOffload)
{
    auto sizes = workload::compressionSizes(workload::ServiceId::Feed1);
    double cb = workload::feed1CompressionCyclesPerByte();

    model::Params base;
    base.hostCycles = 2.3e9;
    base.alpha = 0.15;
    base.interfaceCycles = 2300;
    base.accelFactor = 27;
    model::OffloadProfit profit{cb, 1.0};
    double g_star = profit.breakEvenSpeedup(ThreadingDesign::Sync, base);

    microsim::AbExperiment e;
    e.service.cores = 1;
    e.service.threads = 1;
    e.service.design = ThreadingDesign::Sync;
    e.service.clockGHz = 2.3;
    e.service.minOffloadBytes = g_star;
    e.accelerator.speedupFactor = 27;
    e.accelerator.fixedLatencyCycles = 2300;
    e.accelerator.channels = 4;
    e.workload = workload::makeWorkload(base.hostCycles, base.alpha,
                                        15008, sizes);
    e.workload.cyclesPerByte = cb;
    e.workload.nonKernelCyclesMean =
        (1 - base.alpha) / base.alpha * cb * sizes->mean();
    e.seed = 31;
    e.measureSeconds = 0.5;
    e.warmupSeconds = 0.05;
    double real = microsim::runAbTest(e).measuredSpeedup();

    auto project = [&](AlphaWeighting weighting) {
        auto plan = model::planOffloads(*sizes, 15008, base.alpha,
                                        profit, ThreadingDesign::Sync,
                                        base, weighting);
        model::Accelerometer m(
            model::applyPlan(base, base.alpha, plan));
        return m.speedup(ThreadingDesign::Sync);
    };
    double count_est = project(AlphaWeighting::CountWeighted);
    double bytes_est = project(AlphaWeighting::BytesWeighted);

    // For Feed1's heavy-tailed CDF, bytes-weighting is the physically
    // correct rule; count-weighting under-estimates by several points.
    EXPECT_LT(std::abs(bytes_est - real),
              std::abs(count_est - real) / 3);
    EXPECT_LT(count_est, real - 0.03);
    EXPECT_NEAR(bytes_est, real, 0.015);
}

TEST(AblationQueueing, MeasuredQRecoversContendedSpeedup)
{
    // Four Sync cores share one slow channel; the zero-Q projection is
    // far off, the measured-Q projection is near-exact.
    microsim::AbExperiment e;
    e.service.cores = 4;
    e.service.threads = 4;
    e.service.design = ThreadingDesign::Sync;
    e.service.clockGHz = 1.0;
    e.accelerator.speedupFactor = 2;
    e.accelerator.channels = 1;
    e.workload.nonKernelCyclesMean = 2000;
    e.workload.nonKernelCv = 0.4;
    e.workload.kernelsPerRequest = 1;
    e.workload.granularity = std::make_shared<const BucketDist>(
        std::vector<DistBucket>{{900, 1100, 1.0}});
    e.workload.cyclesPerByte = 2.0;
    e.measureSeconds = 0.05;
    e.warmupSeconds = 0.01;
    microsim::AbResult r = microsim::runAbTest(e);
    double real = r.measuredSpeedup();
    double q_sim = r.treatment.accelerator.queueWaitCycles.mean();
    ASSERT_GT(q_sim, 100); // genuinely contended

    model::Params p = microsim::deriveModelParams(e, r);
    model::Accelerometer zero_q(p);
    p.queueCycles = q_sim;
    model::Accelerometer with_q(p);

    EXPECT_GT(zero_q.speedup(ThreadingDesign::Sync), real + 0.10);
    EXPECT_NEAR(with_q.speedup(ThreadingDesign::Sync), real, 0.02);
}

} // namespace
} // namespace accel

/**
 * @file
 * Table 6 reproduction: run each retrospective case study's A/B test in
 * the simulator and compare against the model estimate and the paper's
 * published numbers.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "workload/request_factory.hh"

namespace accel::workload {
namespace {

class CaseStudyTest : public testing::TestWithParam<int>
{
  protected:
    CaseStudy study() const { return allCaseStudies()[GetParam()]; }
};

TEST_P(CaseStudyTest, ModelEstimateMatchesPaperEstimate)
{
    CaseStudy cs = study();
    model::Accelerometer m(cs.publishedParams);
    EXPECT_NEAR(m.speedup(cs.design) - 1.0, cs.paperEstimatedSpeedup,
                0.003)
        << cs.name;
}

TEST_P(CaseStudyTest, SimulatedRealSpeedupNearPaperReal)
{
    CaseStudy cs = study();
    microsim::AbResult r = microsim::runAbTest(cs.experiment);
    double real = r.measuredSpeedup() - 1.0;
    // The simulated "production" speedup should land near the paper's
    // measured value (the unmodeled effects are configured, the
    // emergent behaviour is not).
    double tolerance = std::max(0.02, cs.paperRealSpeedup * 0.12);
    EXPECT_NEAR(real, cs.paperRealSpeedup, tolerance) << cs.name;
}

TEST_P(CaseStudyTest, ModelErrorWithinPaperBound)
{
    // Paper abstract: Accelerometer estimates the real speedup with
    // <= 3.7 % error; grant the simulator a small extra margin.
    CaseStudy cs = study();
    microsim::AbResult r = microsim::runAbTest(cs.experiment);
    model::Accelerometer m(cs.publishedParams);
    double est = m.speedup(cs.design);
    double err = std::abs(est - r.measuredSpeedup());
    EXPECT_LE(err, 0.05) << cs.name;
    // And the model must over-estimate, as it did in production.
    EXPECT_GE(est, r.measuredSpeedup() - 0.005) << cs.name;
}

std::string
caseStudyName(const testing::TestParamInfo<int> &info)
{
    static const char *names[] = {"AesNiCache1", "EncryptionCache3",
                                  "InferenceAds1"};
    return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(Table6, CaseStudyTest, testing::Values(0, 1, 2),
                         caseStudyName);

TEST(CaseStudies, RemoteInferenceDegradesLatencyButHelpsThroughput)
{
    // §4 case study 3: throughput improves although each request incurs
    // an extra network traversal delay.
    CaseStudy cs = remoteInferenceCaseStudy();
    microsim::AbExperiment e = cs.experiment;
    e.measureSeconds = 10.0;
    e.warmupSeconds = 1.0;
    microsim::AbResult r = microsim::runAbTest(e);
    EXPECT_GT(r.measuredSpeedup(), 1.3);
    // Per-request latency gets worse: A = 1 and the network delay is on
    // the response path.
    EXPECT_LT(r.measuredLatencyReduction(), 1.0);
}

TEST(CaseStudies, AesNiFreesSecureIoCycles)
{
    // Fig. 16's shape: acceleration frees host cycles, so the treatment
    // spends fewer core cycles per request than the baseline.
    CaseStudy cs = aesNiCaseStudy();
    microsim::AbExperiment e = cs.experiment;
    e.measureSeconds = 0.2;
    microsim::AbResult r = microsim::runAbTest(e);
    double base_per_req = r.baseline.coreBusyCycles /
        static_cast<double>(r.baseline.requestsCompleted);
    double treat_per_req = r.treatment.coreBusyCycles /
        static_cast<double>(r.treatment.requestsCompleted);
    EXPECT_LT(treat_per_req, base_per_req);
}

} // namespace
} // namespace accel::workload

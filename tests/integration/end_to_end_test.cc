/**
 * @file
 * Cross-module end-to-end flows: config file -> model -> report;
 * real kernel -> calibration -> break-even -> plan -> projection.
 */

#include <cmath>
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "kernels/calibration.hh"
#include "model/config_frontend.hh"
#include "model/granularity.hh"
#include "model/logca.hh"
#include "workload/granularities.hh"
#include "workload/request_factory.hh"

namespace accel {
namespace {

using model::Strategy;
using model::ThreadingDesign;

TEST(EndToEnd, ConfigFileToProjection)
{
    std::string path = testing::TempDir() + "/accel_e2e.ini";
    {
        std::ofstream out(path);
        out << "[remote-inference]\n"
               "C = 2.5e9\nalpha = 0.52\nn = 10\no0 = 25e6\n"
               "o1 = 12500\nA = 1\nstrategy = remote\n"
               "threading = async-distinct-thread\n";
    }
    std::string report = model::runConfigFile(path);
    EXPECT_NE(report.find("remote-inference"), std::string::npos);
    EXPECT_NE(report.find("72.4"), std::string::npos);
    std::remove(path.c_str());
}

TEST(EndToEnd, CalibratedKernelDrivesBreakEven)
{
    // The paper's workflow: measure Cb with a micro-benchmark on the
    // real kernel, then derive the break-even granularity and the
    // profitable-offload plan from the measured cost.
    kernels::Calibration cal = kernels::calibrateLzCompress(2.0);
    ASSERT_GT(cal.cyclesPerByte, 0);

    model::Params base;
    base.hostCycles = 2.3e9;
    base.alpha = 0.15;
    base.interfaceCycles = 2300;
    base.accelFactor = 27;
    base.strategy = Strategy::OffChip;
    model::OffloadProfit profit{cal.cyclesPerByte, 1.0};
    double g_star = profit.breakEvenSpeedup(ThreadingDesign::Sync, base);
    EXPECT_GT(g_star, 0);
    EXPECT_TRUE(std::isfinite(g_star));

    auto sizes = workload::compressionSizes(workload::ServiceId::Feed1);
    auto plan = model::planOffloads(*sizes, 15008, 0.15, profit,
                                    ThreadingDesign::Sync, base);
    model::Params planned = model::applyPlan(base, 0.15, plan);
    model::Accelerometer m(planned);
    double speedup = m.speedup(ThreadingDesign::Sync);
    EXPECT_GT(speedup, 1.0);
    EXPECT_LT(speedup, m.idealSpeedup());
}

TEST(EndToEnd, LogCAAndAccelerometerAgreeOnSyncKernels)
{
    // For a single synchronous offload, the LogCA baseline and
    // Accelerometer agree; Accelerometer's value-add is everything else.
    model::LogCAParams lp{0.2, 500, 8.0, 16.0, 1.0};
    model::LogCA logca(lp);
    double g = 4096;

    model::Params ap;
    ap.hostCycles = lp.cyclesPerByte * g;
    ap.alpha = 1.0;
    ap.offloads = 1;
    ap.setupCycles = lp.overheadCycles;
    ap.interfaceCycles = lp.latencyPerByte * g;
    ap.accelFactor = lp.accelFactor;
    model::Accelerometer accel(ap);
    EXPECT_NEAR(accel.speedup(ThreadingDesign::Sync), logca.speedup(g),
                1e-9);
    // Async offload of the same kernel projects higher throughput than
    // LogCA can express.
    EXPECT_GT(accel.speedup(ThreadingDesign::AsyncSameThread),
              logca.speedup(g));
}

TEST(EndToEnd, Fig20PipelineFromScratch)
{
    // Rebuild the Fig. 20 compression bars without the request-factory
    // helper, exercising the whole planning chain.
    auto sizes = workload::compressionSizes(workload::ServiceId::Feed1);
    double cb = workload::feed1CompressionCyclesPerByte();

    model::Params base;
    base.hostCycles = 2.3e9;
    base.alpha = 0.15;
    base.interfaceCycles = 2300;
    base.accelFactor = 27;
    base.threadSwitchCycles = 5750;
    base.strategy = Strategy::OffChip;

    model::OffloadProfit profit{cb, 1.0};
    auto sync_plan = model::planOffloads(*sizes, 15008, 0.15, profit,
                                         ThreadingDesign::Sync, base);
    auto os_plan = model::planOffloads(*sizes, 15008, 0.15, profit,
                                       ThreadingDesign::SyncOS, base);
    // Sync-OS pays 2*o1 per offload, so fewer offloads break even.
    EXPECT_LT(os_plan.profitableOffloads, sync_plan.profitableOffloads);

    model::Accelerometer sync_m(
        model::applyPlan(base, 0.15, sync_plan));
    model::Accelerometer os_m(model::applyPlan(base, 0.15, os_plan));
    EXPECT_NEAR(sync_m.speedup(ThreadingDesign::Sync) - 1.0, 0.090,
                0.005);
    EXPECT_NEAR(os_m.speedup(ThreadingDesign::SyncOS) - 1.0, 0.016,
                0.005);
}

} // namespace
} // namespace accel

/**
 * @file
 * Model-vs-simulator agreement sweeps: with no unmodeled effects, the
 * analytical projection and the measured A/B speedup must track each
 * other across threading designs and parameter ranges. This is the
 * library-level statement of the paper's validation claim.
 */

#include <cctype>

#include <gtest/gtest.h>

#include "microsim/ab_test.hh"

namespace accel::microsim {
namespace {

using model::Strategy;
using model::ThreadingDesign;

AbExperiment
cleanExperiment(ThreadingDesign design)
{
    AbExperiment e;
    e.service.cores = 1;
    e.service.threads = design == ThreadingDesign::SyncOS ? 6 : 1;
    e.service.design = design;
    e.service.clockGHz = 1.0;
    e.service.offloadSetupCycles = 30;
    e.service.contextSwitchCycles =
        design == ThreadingDesign::SyncOS ||
                design == ThreadingDesign::AsyncDistinctThread
            ? 400
            : 0;
    e.accelerator.speedupFactor = 6;
    e.accelerator.fixedLatencyCycles = 80;
    e.accelerator.channels = 4;
    e.workload.nonKernelCyclesMean = 6000;
    e.workload.kernelsPerRequest = 1;
    e.workload.granularity = std::make_shared<const BucketDist>(
        std::vector<DistBucket>{{500, 1500, 1.0}});
    e.workload.cyclesPerByte = 2.0;
    e.measureSeconds = 0.1;
    e.warmupSeconds = 0.02;
    return e;
}

class AgreementTest : public testing::TestWithParam<ThreadingDesign>
{
};

TEST_P(AgreementTest, EstimateTracksMeasurement)
{
    AbExperiment e = cleanExperiment(GetParam());
    AbResult r = runAbTest(e);
    model::Params p = deriveModelParams(e, r);
    model::Accelerometer m(p);
    double est = m.speedup(GetParam());
    double real = r.measuredSpeedup();
    // Within 3 percentage points, mirroring the paper's <= 3.7 % error.
    EXPECT_NEAR(est, real, 0.03) << toString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Designs, AgreementTest,
    testing::Values(ThreadingDesign::Sync, ThreadingDesign::SyncOS,
                    ThreadingDesign::AsyncSameThread,
                    ThreadingDesign::AsyncNoResponse),
    [](const testing::TestParamInfo<ThreadingDesign> &info) {
        std::string name = toString(info.param);
        std::string out;
        for (char c : name)
            if (std::isalnum(static_cast<unsigned char>(c)))
                out += c;
        return out;
    });

TEST(Agreement, AccelFactorSweep)
{
    for (double a : {2.0, 8.0, 32.0}) {
        AbExperiment e = cleanExperiment(ThreadingDesign::Sync);
        e.accelerator.speedupFactor = a;
        AbResult r = runAbTest(e);
        model::Params p = deriveModelParams(e, r);
        model::Accelerometer m(p);
        EXPECT_NEAR(m.speedup(ThreadingDesign::Sync),
                    r.measuredSpeedup(), 0.03)
            << "A=" << a;
    }
}

TEST(Agreement, InterfaceLatencySweep)
{
    for (double latency : {0.0, 500.0, 2500.0}) {
        AbExperiment e = cleanExperiment(ThreadingDesign::Sync);
        e.accelerator.fixedLatencyCycles = latency;
        AbResult r = runAbTest(e);
        model::Params p = deriveModelParams(e, r);
        model::Accelerometer m(p);
        EXPECT_NEAR(m.speedup(ThreadingDesign::Sync),
                    r.measuredSpeedup(), 0.03)
            << "L=" << latency;
    }
}

TEST(Agreement, SimulatorOrdersDesignsLikeModel)
{
    // The model's qualitative claim: async > sync-os > sync when the
    // device is slow and switches are cheap relative to waiting.
    AbExperiment sync = cleanExperiment(ThreadingDesign::Sync);
    sync.accelerator.speedupFactor = 2;
    sync.accelerator.fixedLatencyCycles = 2000;
    AbExperiment sync_os = cleanExperiment(ThreadingDesign::SyncOS);
    sync_os.accelerator = sync.accelerator;
    sync_os.service.driverWaitsForAck = false;
    AbExperiment async = cleanExperiment(ThreadingDesign::AsyncSameThread);
    async.accelerator = sync.accelerator;
    async.service.driverWaitsForAck = false;

    double s_sync = runAbTest(sync).measuredSpeedup();
    double s_os = runAbTest(sync_os).measuredSpeedup();
    double s_async = runAbTest(async).measuredSpeedup();
    EXPECT_GT(s_async, s_os);
    EXPECT_GT(s_os, s_sync);
}

TEST(Agreement, LatencyReductionTracksEq5Shape)
{
    // The simulator can measure per-request latency (the paper's
    // production setup could not); check it tracks the model's latency
    // equation for the Sync design.
    AbExperiment e = cleanExperiment(ThreadingDesign::Sync);
    AbResult r = runAbTest(e);
    model::Params p = deriveModelParams(e, r);
    model::Accelerometer m(p);
    EXPECT_NEAR(m.latencyReduction(ThreadingDesign::Sync),
                r.measuredLatencyReduction(), 0.04);
}

} // namespace
} // namespace accel::microsim

/**
 * @file
 * Serial-vs-parallel parity suite for the experiment runner.
 *
 * Every experiment in this repository is a pure function of its seed
 * and parameters, and the runner writes results into slots indexed by
 * input position. Consequences tested here: sweeps, sensitivity
 * rankings, fleet projections, and A/B results must be bit-identical —
 * not merely close — for worker counts {1, 2, 8}.
 */

#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "faults/fault_plan.hh"
#include "microsim/ab_test.hh"
#include "microsim/arrival_program.hh"
#include "microsim/service_graph.hh"
#include "model/fleet.hh"
#include "model/sensitivity.hh"
#include "model/sweep.hh"
#include "util/logging.hh"
#include "util/thread_pool.hh"

namespace accel {
namespace {

using model::FleetProjection;
using model::FleetService;
using model::Params;
using model::SweepPoint;
using model::ThreadingDesign;

const std::vector<size_t> kWorkerCounts = {1, 2, 8};

Params
modelParams()
{
    Params p;
    p.hostCycles = 2e9;
    p.alpha = 0.3;
    p.offloads = 2e5;
    p.setupCycles = 30;
    p.interfaceCycles = 400;
    p.threadSwitchCycles = 100;
    p.accelFactor = 10;
    return p;
}

microsim::AbExperiment
abExperiment()
{
    microsim::AbExperiment e;
    e.service.cores = 1;
    e.service.threads = 1;
    e.service.design = ThreadingDesign::Sync;
    e.service.clockGHz = 1.0;
    e.service.offloadSetupCycles = 20;
    e.accelerator.speedupFactor = 8;
    e.accelerator.fixedLatencyCycles = 40;
    e.workload.nonKernelCyclesMean = 4000;
    e.workload.kernelsPerRequest = 1;
    e.workload.granularity = std::make_shared<const BucketDist>(
        std::vector<DistBucket>{{400, 600, 1.0}});
    e.workload.cyclesPerByte = 2.0;
    e.measureSeconds = 0.05;
    e.warmupSeconds = 0.01;
    return e;
}

/** Run @p fn at every worker count and assert bitwise-equal results. */
template <typename Fn>
void
expectParity(Fn &&fn)
{
    ThreadPool::setWorkers(1);
    auto reference = fn();
    for (size_t workers : kWorkerCounts) {
        ThreadPool::setWorkers(workers);
        auto result = fn();
        EXPECT_TRUE(result == reference)
            << "diverged at " << workers << " workers";
    }
    ThreadPool::setWorkers(0); // restore ACCEL_JOBS/hardware default
}

/** Flatten sweep points into a bitwise-comparable tuple vector. */
std::vector<std::tuple<double, double, double>>
flatten(const std::vector<SweepPoint> &points)
{
    std::vector<std::tuple<double, double, double>> out;
    for (const SweepPoint &p : points) {
        out.emplace_back(p.x, p.projection.speedup,
                         p.projection.latencyReduction);
    }
    return out;
}

TEST(ParallelParity, SweepBitIdentical)
{
    expectParity([] {
        return flatten(model::sweepAccelFactor(
            modelParams(), ThreadingDesign::Sync,
            model::logspace(1, 64, 61)));
    });
}

TEST(ParallelParity, LoadSweepBitIdenticalWithOmissions)
{
    expectParity([] {
        size_t omitted = 0;
        auto points = model::sweepLoad(
            modelParams(), ThreadingDesign::Sync,
            /*serviceCycles=*/1000, /*clockHz=*/1e9,
            model::linspace(1e5, 2e6, 40), &omitted);
        return std::make_pair(flatten(points), omitted);
    });
}

TEST(ParallelParity, SensitivityRankingBitIdentical)
{
    expectParity([] {
        auto sens = model::speedupSensitivities(
            modelParams(), ThreadingDesign::AsyncSameThread);
        // Compare the full numeric ranking.
        std::vector<std::pair<std::string, double>> flat;
        for (const auto &s : sens)
            flat.emplace_back(s.parameter, s.elasticity);
        return flat;
    });
}

TEST(ParallelParity, FleetProjectionBitIdentical)
{
    expectParity([] {
        std::vector<FleetService> services;
        for (int i = 0; i < 12; ++i) {
            FleetService svc;
            svc.name = "svc" + std::to_string(i);
            svc.servers = 1000 + 137 * i;
            svc.params = modelParams();
            svc.params.alpha = 0.05 + 0.02 * i;
            svc.design = ThreadingDesign::Sync;
            services.push_back(std::move(svc));
        }
        FleetProjection fp = model::projectFleet(services);
        return std::make_tuple(fp.fleetSpeedup, fp.serversFreed,
                               fp.totalServers, fp.perService);
    });
}

TEST(ParallelParity, AbResultBitIdentical)
{
    expectParity([] {
        microsim::AbResult r = microsim::runAbTest(abExperiment());
        return std::make_tuple(
            r.baseline.qps(), r.baseline.meanLatencyCycles(),
            r.baseline.latencySample.p99(), r.treatment.qps(),
            r.treatment.meanLatencyCycles(),
            r.treatment.latencySample.p99(), r.measuredSpeedup());
    });
}

TEST(ParallelParity, ResilienceAbBitIdentical)
{
    // Fault draws are slot-indexed by offload number, so the resilient
    // arm's retries, fallbacks, and breaker trips must replay
    // bit-identically at any worker count.
    LogLevel prev = setLogLevel(LogLevel::Silent);
    expectParity([] {
        microsim::AbExperiment e = abExperiment();
        auto plan = std::make_shared<faults::FaultPlan>();
        plan->seed = 77;
        plan->dropProbability = 0.3;
        e.accelerator.faultPlan = std::move(plan);
        e.service.retry.timeoutCycles = 2000;
        e.service.retry.maxAttempts = 2;
        e.service.retry.backoffBaseCycles = 500;
        e.service.retry.backoffCapCycles = 2000;
        e.service.breaker.enabled = true;
        e.service.breaker.window = 16;
        e.service.breaker.minSamples = 8;
        e.service.breaker.openThreshold = 0.9;
        e.service.breaker.probeAfterCycles = 50000;
        microsim::ResilienceAbResult r =
            microsim::runResilienceAbTest(e);
        return std::make_tuple(
            r.hostOnly.qps(), r.hostOnly.goodputQps(),
            r.resilient.qps(), r.resilient.goodputQps(),
            r.resilient.offloadTimeouts, r.resilient.offloadRetries,
            r.resilient.hostFallbacks, r.resilient.breakerOpens,
            r.resilient.requestsDegraded, r.goodputRatio());
    });
    setLogLevel(prev);
}

TEST(ParallelParity, TierAbBitIdentical)
{
    // Tier dispatch (p2c), hedging, and per-replica fault draws are
    // all slot-indexed, so a replicated-tier experiment must replay
    // bit-identically at any worker count.
    LogLevel prev = setLogLevel(LogLevel::Silent);
    expectParity([] {
        microsim::AbExperiment e = abExperiment();
        e.service.design = ThreadingDesign::AsyncSameThread;
        e.service.strategy = model::Strategy::Remote;
        e.service.driverWaitsForAck = false;
        e.tier.replicas = 4;
        e.tier.policy = microsim::DispatchPolicy::PowerOfTwoChoices;
        e.tier.hedge.enabled = true;
        e.tier.hedge.delayCycles = 2000;
        e.tier.healthTimeoutCycles = 5000;
        e.tier.readmitAfterCycles = 20000;
        auto slow = std::make_shared<faults::FaultPlan>();
        slow->seed = 23;
        slow->lateProbability = 0.3;
        slow->lateDelayCycles = 8000;
        e.tier.replicaFaultPlans = {nullptr, nullptr, nullptr,
                                    std::move(slow)};
        microsim::AbResult r = microsim::runAbTest(e);
        return std::make_tuple(
            r.treatment.qps(), r.treatment.meanLatencyCycles(),
            r.treatment.latencySample.p99(),
            r.treatment.tier.hedgesIssued, r.treatment.tier.hedgeWins,
            r.treatment.tier.duplicateCompletions,
            r.treatment.tier.wastedServiceCycles,
            r.treatment.tier.watchdogExpiries,
            r.treatment.tier.ejections, r.treatment.tier.failovers,
            r.treatment.tier.offloadLatencyCycles.p99(),
            r.measuredSpeedup());
    });
    setLogLevel(prev);
}

TEST(ParallelParity, ConstantArrivalProgramMatchesLegacyOpenLoop)
{
    // A constant ArrivalProgram takes the legacy single-draw arrival
    // path, so spelling the offered load either way must replay
    // bit-identically — and stay bit-identical at any worker count.
    auto runWith = [](bool program) {
        microsim::AbExperiment e = abExperiment();
        if (program) {
            e.service.arrivalProgram =
                microsim::ArrivalProgram::constant(120000);
        } else {
            e.service.openArrivalsPerSec = 120000;
        }
        microsim::AbResult r = microsim::runAbTest(e);
        auto flat = [](const microsim::ServiceMetrics &m) {
            return std::make_tuple(m.requestsArrived,
                                   m.requestsCompleted, m.qps(),
                                   m.meanLatencyCycles(),
                                   m.latencySample.p99());
        };
        return std::make_pair(flat(r.baseline), flat(r.treatment));
    };
    expectParity([&] {
        auto legacy = runWith(false);
        auto viaProgram = runWith(true);
        EXPECT_TRUE(legacy == viaProgram)
            << "constant program diverged from openArrivalsPerSec";
        return std::make_pair(legacy, viaProgram);
    });
}

TEST(ParallelParity, ServiceGraphBitIdentical)
{
    // A graph runs on one event queue, but its construction path and
    // metrics collection must not pick up any worker-count dependence
    // (and graph users will shard seeds across the pool).
    expectParity([] {
        const microsim::AbExperiment base = abExperiment();
        auto node = [&base](const std::string &name, double load) {
            microsim::ServiceConfig cfg = base.service;
            cfg.openArrivalsPerSec = load;
            return microsim::ServiceSpec(name)
                .service(cfg)
                .accelerator(base.accelerator)
                .workload(base.workload)
                .seed(19);
        };
        microsim::ServiceGraph graph(19);
        graph.addService(node("web", 15000));
        graph.addService(node("mid", 0));
        graph.addService(node("leaf", 0));
        microsim::EdgeConfig fan;
        fan.caller = "web";
        fan.callee = "mid";
        fan.fanout = 2;
        fan.latencyCycles = 1000;
        fan.latencyJitterCycles = 500;
        graph.addEdge(fan);
        microsim::EdgeConfig tail;
        tail.caller = "mid";
        tail.callee = "leaf";
        tail.style = microsim::CallStyle::Async;
        tail.latencyCycles = 2000;
        graph.addEdge(tail);
        return graph.run(0.03, 0.01).summaryJson();
    });
}

TEST(ParallelParity, ResilientServiceGraphBitIdentical)
{
    // The containment layer adds timers, retry chains, breaker state,
    // and slot-indexed fault draws; none of it may pick up a
    // worker-count dependence, and the fault-off edge beside the
    // faulted one must stay on the legacy path at every ACCEL_JOBS.
    expectParity([] {
        const microsim::AbExperiment base = abExperiment();
        auto node = [&base](const std::string &name, double load) {
            microsim::ServiceConfig cfg = base.service;
            cfg.openArrivalsPerSec = load;
            return microsim::ServiceSpec(name)
                .service(cfg)
                .accelerator(base.accelerator)
                .workload(base.workload)
                .seed(23);
        };
        microsim::ServiceGraph graph(23);
        graph.addService(node("web", 15000));
        graph.addService(node("mid", 0));
        graph.addService(node("leaf", 0));
        microsim::EdgeConfig plain;
        plain.caller = "web";
        plain.callee = "mid";
        plain.latencyCycles = 1000;
        plain.latencyJitterCycles = 500;
        graph.addEdge(plain);
        microsim::EdgeConfig sick;
        sick.caller = "mid";
        sick.callee = "leaf";
        sick.latencyCycles = 1000;
        sick.rpcTimeoutCycles = 30e3;
        sick.maxAttempts = 3;
        sick.retryBudget.cap = 10;
        sick.budgetSplit = microsim::BudgetSplit::ReserveForRetry;
        sick.breaker.enabled = true;
        sick.breaker.minSamples = 4;
        sick.breaker.probeAfterCycles = 1e5;
        auto plan = std::make_shared<faults::EdgeFaultPlan>();
        plan->seed = 29;
        plan->dropProbability = 0.2;
        plan->spikeProbability = 0.2;
        plan->spikeLatencyCycles = 50e3;
        sick.faultPlan = std::move(plan);
        graph.addEdge(sick);
        graph.rootDeadline(500e3);
        LogLevel prev = setLogLevel(LogLevel::Silent);
        std::string json = graph.run(0.03, 0.01).summaryJson();
        setLogLevel(prev);
        return json;
    });
}

TEST(ParallelParity, WorkerExceptionPropagatesFromSweep)
{
    ThreadPool::setWorkers(8);
    EXPECT_THROW(
        model::sweep(modelParams(), ThreadingDesign::Sync,
                     model::linspace(0, 1, 32),
                     [](Params &p, double x) {
                         // alpha > 1 violates the model domain.
                         p.alpha = 1.5 + x;
                     }),
        FatalError);
    ThreadPool::setWorkers(0);
}

} // namespace
} // namespace accel

/** @file AES-128 known-answer and property tests. */

#include "kernels/aes128.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/rng.hh"

namespace accel::kernels {
namespace {

std::array<std::uint8_t, 16>
arr16(const std::uint8_t (&v)[16])
{
    std::array<std::uint8_t, 16> out;
    std::copy(std::begin(v), std::end(v), out.begin());
    return out;
}

TEST(Aes128, Fips197AppendixBVector)
{
    // FIPS-197 Appendix B: key 2b7e...3c, plaintext 3243...34.
    const std::uint8_t key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                  0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                  0x09, 0xcf, 0x4f, 0x3c};
    std::uint8_t block[16] = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a,
                              0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2,
                              0xe0, 0x37, 0x07, 0x34};
    const std::uint8_t expected[16] = {0x39, 0x25, 0x84, 0x1d, 0x02,
                                       0xdc, 0x09, 0xfb, 0xdc, 0x11,
                                       0x85, 0x97, 0x19, 0x6a, 0x0b,
                                       0x32};
    Aes128 cipher(arr16(key));
    cipher.encryptBlock(block);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(block[i], expected[i]) << "byte " << i;
}

TEST(Aes128, Fips197AppendixCVector)
{
    // FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233...ff.
    std::uint8_t key[16], block[16];
    for (int i = 0; i < 16; ++i) {
        key[i] = static_cast<std::uint8_t>(i);
        block[i] = static_cast<std::uint8_t>(i * 0x11);
    }
    const std::uint8_t expected[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a,
                                       0x7b, 0x04, 0x30, 0xd8, 0xcd,
                                       0xb7, 0x80, 0x70, 0xb4, 0xc5,
                                       0x5a};
    Aes128 cipher(arr16(key));
    cipher.encryptBlock(block);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(block[i], expected[i]) << "byte " << i;
}

TEST(Aes128, DecryptInvertsEncrypt)
{
    const std::uint8_t key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                  0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                  0x09, 0xcf, 0x4f, 0x3c};
    Aes128 cipher(arr16(key));
    Rng rng(1);
    for (int trial = 0; trial < 50; ++trial) {
        std::uint8_t block[16], original[16];
        for (auto &b : block)
            b = static_cast<std::uint8_t>(rng.below(256));
        std::copy(std::begin(block), std::end(block), original);
        cipher.encryptBlock(block);
        cipher.decryptBlock(block);
        for (int i = 0; i < 16; ++i)
            EXPECT_EQ(block[i], original[i]);
    }
}

TEST(Aes128, CtrKnownAnswerSp80038a)
{
    // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt, first block.
    const std::uint8_t key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                  0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                  0x09, 0xcf, 0x4f, 0x3c};
    const std::uint8_t iv[16] = {0xf0, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5,
                                 0xf6, 0xf7, 0xf8, 0xf9, 0xfa, 0xfb,
                                 0xfc, 0xfd, 0xfe, 0xff};
    std::vector<std::uint8_t> plaintext = {
        0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96,
        0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93, 0x17, 0x2a};
    const std::uint8_t expected[16] = {0x87, 0x4d, 0x61, 0x91, 0xb6,
                                       0x20, 0xe3, 0x26, 0x1b, 0xef,
                                       0x68, 0x64, 0x99, 0x0d, 0xb6,
                                       0xce};
    Aes128 cipher(arr16(key));
    auto out = cipher.ctr(plaintext, arr16(iv));
    ASSERT_EQ(out.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(out[i], expected[i]) << "byte " << i;
}

TEST(Aes128, CtrIsInvolution)
{
    std::array<std::uint8_t, 16> key{}, iv{};
    key[0] = 1;
    iv[15] = 9;
    Aes128 cipher(key);
    Rng rng(2);
    for (size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 1000u}) {
        std::vector<std::uint8_t> data(len);
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.below(256));
        auto enc = cipher.ctr(data, iv);
        auto dec = cipher.ctr(enc, iv);
        EXPECT_EQ(dec, data) << "length " << len;
    }
}

TEST(Aes128, CtrHandlesCounterCarry)
{
    // IV of all 0xff forces a multi-byte counter carry on increment.
    std::array<std::uint8_t, 16> key{};
    std::array<std::uint8_t, 16> iv;
    iv.fill(0xff);
    Aes128 cipher(key);
    std::vector<std::uint8_t> data(48, 0xab);
    auto enc = cipher.ctr(data, iv);
    auto dec = cipher.ctr(enc, iv);
    EXPECT_EQ(dec, data);
}

TEST(Aes128, EcbRoundTripAndBlockIndependence)
{
    std::array<std::uint8_t, 16> key{};
    key[5] = 0x42;
    Aes128 cipher(key);
    std::vector<std::uint8_t> data(64);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i % 16); // repeating blocks
    auto enc = cipher.ecbEncrypt(data);
    // ECB: identical plaintext blocks yield identical ciphertext blocks.
    EXPECT_TRUE(std::equal(enc.begin(), enc.begin() + 16,
                           enc.begin() + 16));
    EXPECT_EQ(cipher.ecbDecrypt(enc), data);
}

TEST(Aes128, EcbRejectsPartialBlocks)
{
    Aes128 cipher(std::array<std::uint8_t, 16>{});
    std::vector<std::uint8_t> data(15);
    EXPECT_THROW(cipher.ecbEncrypt(data), FatalError);
    EXPECT_THROW(cipher.ecbDecrypt(data), FatalError);
}

TEST(Aes128, DifferentKeysDifferentCiphertext)
{
    std::array<std::uint8_t, 16> k1{}, k2{};
    k2[0] = 1;
    std::uint8_t b1[16] = {}, b2[16] = {};
    Aes128(k1).encryptBlock(b1);
    Aes128(k2).encryptBlock(b2);
    bool differ = false;
    for (int i = 0; i < 16; ++i)
        differ |= b1[i] != b2[i];
    EXPECT_TRUE(differ);
}

} // namespace
} // namespace accel::kernels

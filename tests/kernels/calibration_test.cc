/** @file Tests for the kernel calibration fitter. */

#include "kernels/calibration.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::kernels {
namespace {

TEST(FitLinear, ExactLine)
{
    // cycles = 3*g + 50.
    std::vector<std::pair<double, double>> samples;
    for (double g : {10.0, 100.0, 1000.0})
        samples.emplace_back(g, 3 * g + 50);
    Calibration c = fitLinear(samples);
    EXPECT_NEAR(c.cyclesPerByte, 3.0, 1e-9);
    EXPECT_NEAR(c.fixedCycles, 50.0, 1e-6);
    EXPECT_NEAR(c.rSquared, 1.0, 1e-9);
}

TEST(FitLinear, NoisyLineStillRecoversSlope)
{
    std::vector<std::pair<double, double>> samples = {
        {100, 310}, {200, 590}, {400, 1220}, {800, 2390}};
    Calibration c = fitLinear(samples);
    EXPECT_NEAR(c.cyclesPerByte, 3.0, 0.1);
    EXPECT_GT(c.rSquared, 0.99);
}

TEST(FitLinear, RejectsDegenerateInput)
{
    EXPECT_THROW(fitLinear({{1, 1}}), FatalError);
    EXPECT_THROW(fitLinear({{5, 1}, {5, 2}}), FatalError);
}

TEST(Calibrate, SyntheticOperatorRecovered)
{
    // A fake "kernel" that models 2 cycles/byte at a 1 GHz clock by
    // just returning; we validate plumbing with a deterministic op via
    // fitLinear instead of wall time, so here only check the callable
    // path runs and produces a finite result.
    auto op = [](size_t bytes) -> std::uint64_t {
        volatile std::uint64_t acc = 0;
        for (size_t i = 0; i < bytes; ++i)
            acc = acc + i;
        return acc;
    };
    Calibration c = calibrate(op, {1024, 4096, 16384}, 2.0, 3);
    EXPECT_GT(c.cyclesPerByte, 0.0);
    EXPECT_TRUE(std::isfinite(c.fixedCycles));
}

TEST(Calibrate, DomainChecks)
{
    auto op = [](size_t) -> std::uint64_t { return 0; };
    EXPECT_THROW(calibrate(op, {1, 2}, 0.0), FatalError);
    EXPECT_THROW(calibrate(op, {1, 2}, 2.0, 0), FatalError);
    EXPECT_THROW(calibrate(op, {7, 7}, 2.0, 1), FatalError);
}

/**
 * Wall clock that advances by a scripted amount per timed call: the
 * k-th timeOnce interval for a b-byte op lasts (2*b + 100) "seconds",
 * so at a 1e-9 GHz clock (1 cycle/second) calibration must recover
 * exactly 2 cycles/byte and 100 fixed cycles — deterministically,
 * with zero reads of the real clock.
 */
class ScriptedTimer final : public WallTimer
{
  public:
    double
    seconds() const override
    {
        // Calls alternate start/end; odd calls close an interval of
        // the scripted duration for the current op size.
        if (++calls_ % 2 == 1)
            return clock_;
        clock_ += 2.0 * static_cast<double>(bytes_) + 100.0;
        return clock_;
    }

    void setBytes(size_t bytes) { bytes_ = bytes; }

  private:
    mutable std::uint64_t calls_ = 0;
    mutable double clock_ = 0.0;
    size_t bytes_ = 0;
};

TEST(Calibrate, InjectedTimerMakesCalibrationDeterministic)
{
    ScriptedTimer timer;
    auto op = [&timer](size_t bytes) -> std::uint64_t {
        timer.setBytes(bytes);
        return bytes;
    };
    // 1e-9 GHz => 1 cycle per scripted "second".
    Calibration c =
        calibrate(op, {256, 1024, 4096}, 1e-9, 3, timer);
    EXPECT_NEAR(c.cyclesPerByte, 2.0, 1e-9);
    EXPECT_NEAR(c.fixedCycles, 100.0, 1e-6);
    EXPECT_NEAR(c.rSquared, 1.0, 1e-12);

    // Bit-identical on a second run: no hidden wall-clock dependence.
    ScriptedTimer timer2;
    auto op2 = [&timer2](size_t bytes) -> std::uint64_t {
        timer2.setBytes(bytes);
        return bytes;
    };
    Calibration d =
        calibrate(op2, {256, 1024, 4096}, 1e-9, 3, timer2);
    EXPECT_EQ(c.cyclesPerByte, d.cyclesPerByte);
    EXPECT_EQ(c.fixedCycles, d.fixedCycles);
}

TEST(Calibrate, RealKernelsHavePositiveMarginalCost)
{
    // Smoke calibration of the real kernels with few repetitions: the
    // fitted per-byte cost must be positive and the fit meaningful.
    for (auto fn : {calibrateAesCtr, calibrateSha256,
                    calibrateLzCompress}) {
        Calibration c = fn(2.0);
        EXPECT_GT(c.cyclesPerByte, 0.0);
        EXPECT_GT(c.rSquared, 0.8);
    }
}

TEST(Calibrate, AesCostsMoreThanMemcpyPerByte)
{
    Calibration aes = calibrateAesCtr(2.0);
    Calibration copy = calibrateMemOp(0 /*Copy*/, 2.0);
    EXPECT_GT(aes.cyclesPerByte, copy.cyclesPerByte);
}

} // namespace
} // namespace accel::kernels

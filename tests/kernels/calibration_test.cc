/** @file Tests for the kernel calibration fitter. */

#include "kernels/calibration.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::kernels {
namespace {

TEST(FitLinear, ExactLine)
{
    // cycles = 3*g + 50.
    std::vector<std::pair<double, double>> samples;
    for (double g : {10.0, 100.0, 1000.0})
        samples.emplace_back(g, 3 * g + 50);
    Calibration c = fitLinear(samples);
    EXPECT_NEAR(c.cyclesPerByte, 3.0, 1e-9);
    EXPECT_NEAR(c.fixedCycles, 50.0, 1e-6);
    EXPECT_NEAR(c.rSquared, 1.0, 1e-9);
}

TEST(FitLinear, NoisyLineStillRecoversSlope)
{
    std::vector<std::pair<double, double>> samples = {
        {100, 310}, {200, 590}, {400, 1220}, {800, 2390}};
    Calibration c = fitLinear(samples);
    EXPECT_NEAR(c.cyclesPerByte, 3.0, 0.1);
    EXPECT_GT(c.rSquared, 0.99);
}

TEST(FitLinear, RejectsDegenerateInput)
{
    EXPECT_THROW(fitLinear({{1, 1}}), FatalError);
    EXPECT_THROW(fitLinear({{5, 1}, {5, 2}}), FatalError);
}

TEST(Calibrate, SyntheticOperatorRecovered)
{
    // A fake "kernel" that models 2 cycles/byte at a 1 GHz clock by
    // just returning; we validate plumbing with a deterministic op via
    // fitLinear instead of wall time, so here only check the callable
    // path runs and produces a finite result.
    auto op = [](size_t bytes) -> std::uint64_t {
        volatile std::uint64_t acc = 0;
        for (size_t i = 0; i < bytes; ++i)
            acc = acc + i;
        return acc;
    };
    Calibration c = calibrate(op, {1024, 4096, 16384}, 2.0, 3);
    EXPECT_GT(c.cyclesPerByte, 0.0);
    EXPECT_TRUE(std::isfinite(c.fixedCycles));
}

TEST(Calibrate, DomainChecks)
{
    auto op = [](size_t) -> std::uint64_t { return 0; };
    EXPECT_THROW(calibrate(op, {1, 2}, 0.0), FatalError);
    EXPECT_THROW(calibrate(op, {1, 2}, 2.0, 0), FatalError);
    EXPECT_THROW(calibrate(op, {7, 7}, 2.0, 1), FatalError);
}

TEST(Calibrate, RealKernelsHavePositiveMarginalCost)
{
    // Smoke calibration of the real kernels with few repetitions: the
    // fitted per-byte cost must be positive and the fit meaningful.
    for (auto fn : {calibrateAesCtr, calibrateSha256,
                    calibrateLzCompress}) {
        Calibration c = fn(2.0);
        EXPECT_GT(c.cyclesPerByte, 0.0);
        EXPECT_GT(c.rSquared, 0.8);
    }
}

TEST(Calibrate, AesCostsMoreThanMemcpyPerByte)
{
    Calibration aes = calibrateAesCtr(2.0);
    Calibration copy = calibrateMemOp(0 /*Copy*/, 2.0);
    EXPECT_GT(aes.cyclesPerByte, copy.cyclesPerByte);
}

} // namespace
} // namespace accel::kernels

/** @file Round-trip and robustness tests for the LZ77 compressor. */

#include "kernels/lz_compress.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/rng.hh"

namespace accel::kernels {
namespace {

std::vector<std::uint8_t>
bytes(const std::string &s)
{
    return {s.begin(), s.end()};
}

void
expectRoundTrip(const std::vector<std::uint8_t> &data)
{
    auto frame = lzCompress(data);
    auto back = lzDecompress(frame);
    ASSERT_EQ(back.size(), data.size());
    EXPECT_EQ(back, data);
}

TEST(Lz, EmptyInput)
{
    expectRoundTrip({});
}

TEST(Lz, TinyInputs)
{
    expectRoundTrip(bytes("a"));
    expectRoundTrip(bytes("ab"));
    expectRoundTrip(bytes("abc"));
    expectRoundTrip(bytes("abcd"));
}

TEST(Lz, RepetitiveInputCompresses)
{
    std::vector<std::uint8_t> data(10000, 'x');
    auto frame = lzCompress(data);
    EXPECT_LT(frame.size(), data.size() / 10);
    expectRoundTrip(data);
}

TEST(Lz, OverlappingMatchReplication)
{
    // "abab..." forces matches with distance < length (RLE-style).
    std::vector<std::uint8_t> data;
    for (int i = 0; i < 5000; ++i)
        data.push_back(i % 2 ? 'b' : 'a');
    expectRoundTrip(data);
}

TEST(Lz, IncompressibleRandomData)
{
    Rng rng(5);
    std::vector<std::uint8_t> data(4096);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.below(256));
    auto frame = lzCompress(data);
    // Random data cannot shrink much, but framing overhead stays small.
    EXPECT_LT(frame.size(), data.size() + data.size() / 16 + 64);
    expectRoundTrip(data);
}

TEST(Lz, LogLikeTextCompressesWell)
{
    std::string line = "GET /api/v2/feed status=200 latency_us=1234 "
                       "region=prn cache_hit bytes=512\n";
    std::vector<std::uint8_t> data;
    for (int i = 0; i < 200; ++i)
        data.insert(data.end(), line.begin(), line.end());
    auto frame = lzCompress(data);
    EXPECT_LT(frame.size(), data.size() / 4);
    expectRoundTrip(data);
}

TEST(Lz, RandomStructuredFuzzRoundTrips)
{
    Rng rng(6);
    for (int trial = 0; trial < 30; ++trial) {
        std::vector<std::uint8_t> data;
        size_t target = 100 + rng.below(8000);
        while (data.size() < target) {
            if (rng.chance(0.5) && !data.empty()) {
                // Copy a previous chunk (creates matches).
                size_t start = rng.below(
                    static_cast<std::uint32_t>(data.size()));
                size_t len = 1 + rng.below(64);
                for (size_t i = 0; i < len && start + i < data.size();
                     ++i) {
                    data.push_back(data[start + i]);
                }
            } else {
                data.push_back(static_cast<std::uint8_t>(rng.below(256)));
            }
        }
        expectRoundTrip(data);
    }
}

TEST(Lz, WindowLimitsMatchDistance)
{
    LzOptions tiny;
    tiny.windowSize = 64;
    std::vector<std::uint8_t> data;
    std::string phrase = "abcdefghij";
    data.insert(data.end(), phrase.begin(), phrase.end());
    data.insert(data.end(), 1000, 'z');
    data.insert(data.end(), phrase.begin(), phrase.end());
    auto frame = lzCompress(data, tiny);
    EXPECT_EQ(lzDecompress(frame), data);
}

TEST(Lz, MalformedFramesRejected)
{
    // Truncated varint.
    EXPECT_THROW(lzDecompress({0x80}), FatalError);
    // Declared size but missing tokens.
    EXPECT_THROW(lzDecompress({0x05}), FatalError);
    // Unknown token type.
    EXPECT_THROW(lzDecompress({0x02, 0xff}), FatalError);
    // Literal run past end of frame.
    EXPECT_THROW(lzDecompress({0x05, 0x00, 0x05, 'a'}), FatalError);
    // Match with distance beyond output.
    EXPECT_THROW(lzDecompress({0x08, 0x01, 0x04, 0x07}), FatalError);
    // Zero-length literal run.
    EXPECT_THROW(lzDecompress({0x02, 0x00, 0x00}), FatalError);
}

TEST(Lz, TrailingGarbageRejected)
{
    auto frame = lzCompress(bytes("hello world"));
    frame.push_back(0x00);
    EXPECT_THROW(lzDecompress(frame), FatalError);
}

TEST(Varint, RoundTripsBoundaries)
{
    for (std::uint64_t v :
         {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
          0xffffffffull, 0xffffffffffffffffull}) {
        std::vector<std::uint8_t> buf;
        putVarint(buf, v);
        size_t pos = 0;
        EXPECT_EQ(getVarint(buf, pos), v);
        EXPECT_EQ(pos, buf.size());
    }
}

TEST(Varint, RejectsOverlong)
{
    std::vector<std::uint8_t> buf(11, 0x80);
    size_t pos = 0;
    EXPECT_THROW(getVarint(buf, pos), FatalError);
}

} // namespace
} // namespace accel::kernels

/** @file Tests for the memory leaf-function harness. */

#include "kernels/memops.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::kernels {
namespace {

TEST(MemOps, Names)
{
    EXPECT_EQ(toString(MemOp::Copy), "Memory-Copy");
    EXPECT_EQ(toString(MemOp::Move), "Memory-Move");
    EXPECT_EQ(toString(MemOp::Set), "Memory-Set");
    EXPECT_EQ(toString(MemOp::Compare), "Memory-Compare");
}

TEST(MemOps, CopyReturnsLastCopiedByte)
{
    MemOpHarness h(1024);
    // Source byte pattern is i*131+17; byte 99 = (99*131+17) & 0xff.
    std::uint64_t v = h.run(MemOp::Copy, 100);
    EXPECT_EQ(v, static_cast<std::uint8_t>(99 * 131 + 17));
}

TEST(MemOps, SetUsesFreshFillValue)
{
    MemOpHarness h(64);
    std::uint64_t a = h.run(MemOp::Set, 64);
    std::uint64_t b = h.run(MemOp::Set, 64);
    EXPECT_NE(a, b); // fill value advances so work cannot be cached
}

TEST(MemOps, CompareConsistentAfterCopy)
{
    MemOpHarness h(256);
    h.run(MemOp::Copy, 256);
    // dst == src after a full copy: memcmp == 0 -> returns 1.
    EXPECT_EQ(h.run(MemOp::Compare, 256), 1u);
}

TEST(MemOps, MoveCompletes)
{
    MemOpHarness h(1024);
    EXPECT_NO_THROW(h.run(MemOp::Move, 1024));
}

TEST(MemOps, ZeroBytesIsNoop)
{
    MemOpHarness h(16);
    EXPECT_EQ(h.run(MemOp::Copy, 0), 0u);
}

TEST(MemOps, RejectsOversizedRequest)
{
    MemOpHarness h(16);
    EXPECT_THROW(h.run(MemOp::Copy, 17), FatalError);
}

TEST(MemOps, RejectsZeroCapacity)
{
    EXPECT_THROW(MemOpHarness(0), FatalError);
}

TEST(MemOps, CapacityReported)
{
    MemOpHarness h(4096);
    EXPECT_EQ(h.capacity(), 4096u);
}

} // namespace
} // namespace accel::kernels

/** @file Tests for the size-class pool allocator. */

#include "kernels/pool_allocator.hh"

#include <cstring>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/rng.hh"

namespace accel::kernels {
namespace {

TEST(Pool, SizeClassesCoverRange)
{
    PoolAllocator pool;
    EXPECT_EQ(pool.classBlockSize(pool.sizeClassFor(1)), 16u);
    EXPECT_EQ(pool.classBlockSize(pool.sizeClassFor(16)), 16u);
    EXPECT_EQ(pool.classBlockSize(pool.sizeClassFor(17)), 32u);
    EXPECT_EQ(pool.classBlockSize(pool.sizeClassFor(64)), 64u);
    EXPECT_EQ(pool.classBlockSize(pool.sizeClassFor(65)), 128u);
    EXPECT_EQ(pool.classBlockSize(
                  pool.sizeClassFor(PoolAllocator::kMaxBlockSize)),
              PoolAllocator::kMaxBlockSize);
}

TEST(Pool, ClassSizesNeverShrinkRequest)
{
    PoolAllocator pool;
    for (size_t bytes = 1; bytes <= 4096; bytes += 37)
        EXPECT_GE(pool.classBlockSize(pool.sizeClassFor(bytes)), bytes);
}

TEST(Pool, RejectsZeroAndOversized)
{
    PoolAllocator pool;
    EXPECT_THROW(pool.sizeClassFor(0), FatalError);
    EXPECT_THROW(pool.allocate(0), FatalError);
    EXPECT_THROW(pool.allocate(PoolAllocator::kMaxBlockSize + 1),
                 FatalError);
}

TEST(Pool, AllocationsAreDistinctAndWritable)
{
    PoolAllocator pool;
    std::set<void *> seen;
    std::vector<void *> ptrs;
    for (int i = 0; i < 1000; ++i) {
        void *p = pool.allocate(48);
        EXPECT_TRUE(seen.insert(p).second) << "duplicate block";
        std::memset(p, 0xab, 48);
        ptrs.push_back(p);
    }
    for (void *p : ptrs)
        pool.free(p);
    EXPECT_EQ(pool.stats().liveBlocks, 0u);
}

TEST(Pool, FreeRecyclesBlocks)
{
    PoolAllocator pool;
    void *a = pool.allocate(100);
    pool.free(a);
    void *b = pool.allocate(100);
    EXPECT_EQ(a, b); // LIFO free list returns the same block
}

TEST(Pool, SizedFreeRecyclesIntoRightClass)
{
    PoolAllocator pool;
    void *a = pool.allocate(100); // class 128
    pool.sizedFree(a, 100);
    void *b = pool.allocate(128);
    EXPECT_EQ(a, b);
    pool.free(b);
}

TEST(Pool, UnsizedFreeRecoversClassViaPageMap)
{
    PoolAllocator pool;
    // Allocate from several classes, free unsized, reallocate.
    void *small = pool.allocate(16);
    void *mid = pool.allocate(1000);
    void *large = pool.allocate(30000);
    pool.free(large);
    pool.free(small);
    pool.free(mid);
    EXPECT_EQ(pool.allocate(16), small);
    EXPECT_EQ(pool.allocate(1000), mid);
    EXPECT_EQ(pool.allocate(30000), large);
}

TEST(Pool, ForeignPointerRejected)
{
    PoolAllocator pool;
    int on_stack;
    EXPECT_THROW(pool.free(&on_stack), FatalError);
    EXPECT_THROW(pool.free(nullptr), FatalError);
}

TEST(Pool, StatsTrackOperations)
{
    PoolAllocator pool;
    void *a = pool.allocate(10);
    void *b = pool.allocate(20);
    pool.free(a);
    pool.sizedFree(b, 20);
    const PoolStats &s = pool.stats();
    EXPECT_EQ(s.allocations, 2u);
    EXPECT_EQ(s.frees, 1u);
    EXPECT_EQ(s.sizedFrees, 1u);
    EXPECT_EQ(s.bytesRequested, 30u);
    EXPECT_EQ(s.liveBlocks, 0u);
    EXPECT_GE(s.chunkRefills, 1u);
}

TEST(Pool, RandomizedAllocFreeStress)
{
    PoolAllocator pool;
    Rng rng(9);
    std::vector<std::pair<void *, size_t>> live;
    for (int step = 0; step < 20000; ++step) {
        if (live.empty() || rng.chance(0.6)) {
            size_t bytes = 1 + rng.below(PoolAllocator::kMaxBlockSize);
            void *p = pool.allocate(bytes);
            // Touch first and last byte of the request.
            static_cast<std::uint8_t *>(p)[0] = 1;
            static_cast<std::uint8_t *>(p)[bytes - 1] = 2;
            live.emplace_back(p, bytes);
        } else {
            size_t i = rng.below(static_cast<std::uint32_t>(live.size()));
            auto [p, bytes] = live[i];
            if (rng.chance(0.5))
                pool.free(p);
            else
                pool.sizedFree(p, bytes);
            live[i] = live.back();
            live.pop_back();
        }
    }
    EXPECT_EQ(pool.stats().liveBlocks, live.size());
}

} // namespace
} // namespace accel::kernels

/** @file Round-trip and robustness tests for the serialization kernel. */

#include "kernels/serde.hh"

#include <limits>

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/rng.hh"

namespace accel::kernels {
namespace {

TEST(Zigzag, KnownValues)
{
    EXPECT_EQ(zigzagEncode(0), 0u);
    EXPECT_EQ(zigzagEncode(-1), 1u);
    EXPECT_EQ(zigzagEncode(1), 2u);
    EXPECT_EQ(zigzagEncode(-2), 3u);
    EXPECT_EQ(zigzagEncode(2147483647), 4294967294u);
}

TEST(Zigzag, RoundTripExtremes)
{
    for (std::int64_t v :
         {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
          std::numeric_limits<std::int64_t>::min(),
          std::numeric_limits<std::int64_t>::max()}) {
        EXPECT_EQ(zigzagDecode(zigzagEncode(v)), v);
    }
}

TEST(Serde, EmptyMessage)
{
    SerdeMessage msg;
    auto wire = serialize(msg);
    EXPECT_EQ(wire, (std::vector<std::uint8_t>{0x00}));
    EXPECT_EQ(deserialize(wire), msg);
}

TEST(Serde, AllTypesRoundTrip)
{
    SerdeMessage msg;
    msg.set(1, std::int64_t{-123456789});
    msg.set(2, 3.14159);
    msg.set(3, std::string("hello, \0 world", 14));
    msg.set(7, std::vector<std::int64_t>{1, -2, 3, -4, 1000000});
    SerdeMessage back = deserialize(serialize(msg));
    EXPECT_EQ(back, msg);
    EXPECT_EQ(std::get<std::int64_t>(back.get(1)), -123456789);
    EXPECT_DOUBLE_EQ(std::get<double>(back.get(2)), 3.14159);
}

TEST(Serde, FieldAccessors)
{
    SerdeMessage msg;
    msg.set(5, std::int64_t{9});
    EXPECT_TRUE(msg.has(5));
    EXPECT_FALSE(msg.has(4));
    EXPECT_THROW(msg.get(4), FatalError);
    EXPECT_THROW(msg.set(0, std::int64_t{1}), FatalError);
    msg.set(5, std::int64_t{10}); // overwrite
    EXPECT_EQ(msg.size(), 1u);
    EXPECT_EQ(std::get<std::int64_t>(msg.get(5)), 10);
}

TEST(Serde, LargeTagsAndValues)
{
    SerdeMessage msg;
    msg.set(0xfffffffe, std::int64_t{42});
    EXPECT_EQ(deserialize(serialize(msg)), msg);
}

TEST(Serde, RandomizedRoundTrips)
{
    Rng rng(21);
    for (int trial = 0; trial < 50; ++trial) {
        SerdeMessage msg;
        std::uint32_t fields = 1 + rng.below(12);
        for (std::uint32_t f = 0; f < fields; ++f) {
            std::uint32_t tag = 1 + rng.below(100);
            switch (rng.below(4)) {
              case 0:
                msg.set(tag, static_cast<std::int64_t>(rng.next()) -
                                 (1LL << 31));
                break;
              case 1:
                msg.set(tag, rng.uniform(-1e9, 1e9));
                break;
              case 2: {
                std::string s;
                for (std::uint32_t i = 0; i < rng.below(200); ++i)
                    s += static_cast<char>(rng.below(256));
                msg.set(tag, std::move(s));
                break;
              }
              default: {
                std::vector<std::int64_t> list;
                for (std::uint32_t i = 0; i < rng.below(50); ++i)
                    list.push_back(
                        static_cast<std::int64_t>(rng.next()) - 100);
                msg.set(tag, std::move(list));
              }
            }
        }
        EXPECT_EQ(deserialize(serialize(msg)), msg);
    }
}

TEST(Serde, MalformedWireRejected)
{
    // Missing end marker.
    EXPECT_THROW(deserialize({}), FatalError);
    // Truncated after tag.
    EXPECT_THROW(deserialize({0x01}), FatalError);
    // Unknown type.
    EXPECT_THROW(deserialize({0x01, 0x09, 0x00}), FatalError);
    // Truncated double.
    EXPECT_THROW(deserialize({0x01, 0x02, 0x01, 0x02, 0x00}),
                 FatalError);
    // String length past the end.
    EXPECT_THROW(deserialize({0x01, 0x03, 0x7f, 0x61, 0x00}),
                 FatalError);
    // Trailing bytes after the end marker.
    EXPECT_THROW(deserialize({0x00, 0x00}), FatalError);
    // Duplicate tag.
    EXPECT_THROW(
        deserialize({0x01, 0x01, 0x02, 0x01, 0x01, 0x04, 0x00}),
        FatalError);
}

TEST(Serde, StoryMessageApproximatesTargetSize)
{
    for (size_t target : {512u, 4096u, 32768u}) {
        auto wire = serialize(makeStoryMessage(target, 7));
        EXPECT_GT(wire.size(), target / 2) << target;
        EXPECT_LT(wire.size(), target * 2) << target;
    }
}

TEST(Serde, StoryMessageDeterministic)
{
    EXPECT_EQ(serialize(makeStoryMessage(2048, 9)),
              serialize(makeStoryMessage(2048, 9)));
    EXPECT_NE(serialize(makeStoryMessage(2048, 9)),
              serialize(makeStoryMessage(2048, 10)));
}

} // namespace
} // namespace accel::kernels

/** @file SHA-256 known-answer and property tests (FIPS 180-4 vectors). */

#include "kernels/sha256.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::kernels {
namespace {

TEST(Sha256, EmptyString)
{
    EXPECT_EQ(Sha256::hex(Sha256::digest(std::string(""))),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
              "7852b855");
}

TEST(Sha256, Abc)
{
    EXPECT_EQ(Sha256::hex(Sha256::digest(std::string("abc"))),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
              "f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    // FIPS 180-4 test vector: 448-bit message.
    EXPECT_EQ(Sha256::hex(Sha256::digest(std::string(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopn"
                  "opq"))),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
              "19db06c1");
}

TEST(Sha256, MillionAs)
{
    Sha256 h;
    std::vector<std::uint8_t> chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        h.update(chunk);
    EXPECT_EQ(Sha256::hex(h.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39cc"
              "c7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    std::string msg = "the quick brown fox jumps over the lazy dog";
    auto oneshot = Sha256::digest(msg);
    // Feed in awkward chunk sizes spanning block boundaries.
    for (size_t chunk : {1u, 3u, 7u, 13u, 63u, 64u, 65u}) {
        Sha256 h;
        for (size_t i = 0; i < msg.size(); i += chunk) {
            size_t len = std::min(chunk, msg.size() - i);
            h.update(reinterpret_cast<const std::uint8_t *>(msg.data()) +
                         i,
                     len);
        }
        EXPECT_EQ(h.finish(), oneshot) << "chunk " << chunk;
    }
}

TEST(Sha256, LengthBoundaryMessages)
{
    // 55/56/64 bytes straddle the padding boundary.
    for (size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
        std::vector<std::uint8_t> a(len, 0x61);
        std::vector<std::uint8_t> b(len, 0x61);
        EXPECT_EQ(Sha256::digest(a), Sha256::digest(b));
        b[len - 1] ^= 1;
        EXPECT_NE(Sha256::digest(a), Sha256::digest(b)) << len;
    }
}

TEST(Sha256, UpdateAfterFinishPanics)
{
    Sha256 h;
    h.update(std::vector<std::uint8_t>{1, 2, 3});
    h.finish();
    std::uint8_t b = 0;
    EXPECT_THROW(h.update(&b, 1), PanicError);
    EXPECT_THROW(h.finish(), PanicError);
}

TEST(Sha256, HexIsLowercase64Chars)
{
    auto d = Sha256::digest(std::string("x"));
    std::string hex = Sha256::hex(d);
    EXPECT_EQ(hex.size(), 64u);
    for (char c : hex)
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
}

} // namespace
} // namespace accel::kernels

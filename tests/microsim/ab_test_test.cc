/** @file Tests for the A/B harness and model-parameter derivation. */

#include "microsim/ab_test.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::microsim {
namespace {

using model::ThreadingDesign;

AbExperiment
experiment()
{
    AbExperiment e;
    e.service.cores = 1;
    e.service.threads = 1;
    e.service.design = ThreadingDesign::Sync;
    e.service.clockGHz = 1.0;
    e.service.offloadSetupCycles = 20;
    e.accelerator.speedupFactor = 8;
    e.accelerator.fixedLatencyCycles = 40;
    e.workload.nonKernelCyclesMean = 4000;
    e.workload.kernelsPerRequest = 1;
    e.workload.granularity = std::make_shared<const BucketDist>(
        std::vector<DistBucket>{{400, 600, 1.0}});
    e.workload.cyclesPerByte = 2.0;
    e.measureSeconds = 0.1;
    e.warmupSeconds = 0.01;
    return e;
}

TEST(AbTest, TreatmentBeatsBaselineWithGoodAccelerator)
{
    AbResult r = runAbTest(experiment());
    EXPECT_GT(r.measuredSpeedup(), 1.05);
    EXPECT_GT(r.measuredLatencyReduction(), 1.0);
    EXPECT_GT(r.baseline.requestsCompleted, 1000u);
    EXPECT_EQ(r.baseline.offloadsIssued, 0u);
    EXPECT_GT(r.treatment.offloadsIssued, 0u);
}

TEST(AbTest, SpeedupIsRatioOfQps)
{
    AbResult r = runAbTest(experiment());
    EXPECT_NEAR(r.measuredSpeedup(),
                r.treatment.qps() / r.baseline.qps(), 1e-12);
}

TEST(AbTest, DerivedParamsReflectExperiment)
{
    AbExperiment e = experiment();
    AbResult r = runAbTest(e);
    model::Params p = deriveModelParams(e, r);
    EXPECT_DOUBLE_EQ(p.hostCycles, 1e9);
    // Workload: kernel ~1000 of ~5000 cycles.
    EXPECT_NEAR(p.alpha, 0.2, 0.01);
    EXPECT_NEAR(p.offloads, r.baseline.qps(), r.baseline.qps() * 0.01);
    EXPECT_DOUBLE_EQ(p.setupCycles, 20);
    EXPECT_DOUBLE_EQ(p.interfaceCycles, 40);
    EXPECT_DOUBLE_EQ(p.accelFactor, 8);
    EXPECT_DOUBLE_EQ(p.offloadedFraction, 1.0);
}

TEST(AbTest, ModelTracksSimulatorForSync)
{
    // With no unmodeled effects configured, the analytical model and
    // the simulator must agree closely — the core validation property.
    AbExperiment e = experiment();
    AbResult r = runAbTest(e);
    model::Params p = deriveModelParams(e, r);
    model::Accelerometer m(p);
    double est = m.speedup(e.service.design);
    EXPECT_NEAR(est, r.measuredSpeedup(), 0.02);
}

TEST(AbTest, SelectiveOffloadShrinksDerivedN)
{
    AbExperiment e = experiment();
    e.service.minOffloadBytes = 500; // half the [400, 600) kernels
    AbResult r = runAbTest(e);
    model::Params p = deriveModelParams(e, r);
    EXPECT_NEAR(p.offloadedFraction, 0.5, 1e-9);
    EXPECT_NEAR(p.offloads, r.baseline.qps() * 0.5,
                r.baseline.qps() * 0.01);
    // Mean granularity of offloaded kernels: [500, 600) -> 550.
    EXPECT_NEAR(p.interfaceCycles, 40.0, 1e-9);
}

TEST(AbTest, CompareLineMentionsBothNumbers)
{
    AbExperiment e = experiment();
    AbResult r = runAbTest(e);
    std::string line = compareLine(e, r);
    EXPECT_NE(line.find("est +"), std::string::npos);
    EXPECT_NE(line.find("real +"), std::string::npos);
    EXPECT_NE(line.find("pp"), std::string::npos);
}

TEST(AbTest, UnmodeledDragLowersRealBelowEstimate)
{
    // The paper's model over-estimates production speedup; driver slop
    // in the simulator reproduces that direction.
    AbExperiment e = experiment();
    e.service.unmodeledPerOffloadCycles = 200;
    AbResult r = runAbTest(e);
    model::Params p = deriveModelParams(e, r);
    model::Accelerometer m(p);
    EXPECT_GT(m.speedup(e.service.design), r.measuredSpeedup());
}

} // namespace
} // namespace accel::microsim

/** @file Tests for the accelerator device model. */

#include "microsim/accelerator.hh"

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::microsim {
namespace {

TEST(Accelerator, ConfigValidation)
{
    AcceleratorConfig bad;
    bad.speedupFactor = 0.5;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = AcceleratorConfig{};
    bad.channels = 0;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = AcceleratorConfig{};
    bad.fixedLatencyCycles = -1;
    EXPECT_THROW(bad.validate(), FatalError);
}

TEST(Accelerator, TransferCyclesLinearInBytes)
{
    sim::EventQueue eq;
    AcceleratorConfig cfg;
    cfg.fixedLatencyCycles = 100;
    cfg.latencyCyclesPerByte = 2;
    Accelerator dev(eq, cfg);
    EXPECT_DOUBLE_EQ(dev.transferCycles(0), 100);
    EXPECT_DOUBLE_EQ(dev.transferCycles(50), 200);
}

TEST(Accelerator, ServiceTimeDividedBySpeedup)
{
    sim::EventQueue eq;
    AcceleratorConfig cfg;
    cfg.speedupFactor = 4;
    Accelerator dev(eq, cfg);
    sim::Tick done = 0;
    dev.offload(1000, 0, [&] { done = eq.now(); });
    eq.runAll();
    EXPECT_EQ(done, 250u);
}

TEST(Accelerator, TransferDelaysArrival)
{
    sim::EventQueue eq;
    AcceleratorConfig cfg;
    cfg.speedupFactor = 2;
    cfg.fixedLatencyCycles = 300;
    Accelerator dev(eq, cfg);
    sim::Tick done = 0;
    dev.offload(1000, 0, [&] { done = eq.now(); });
    eq.runAll();
    EXPECT_EQ(done, 300u + 500u);
}

TEST(Accelerator, HostPaidTransferSkipsDeviceDelay)
{
    sim::EventQueue eq;
    AcceleratorConfig cfg;
    cfg.speedupFactor = 2;
    cfg.fixedLatencyCycles = 300;
    Accelerator dev(eq, cfg);
    sim::Tick done = 0;
    dev.offload(1000, 0, [&] { done = eq.now(); },
                /*transferPaidByHost=*/true);
    eq.runAll();
    EXPECT_EQ(done, 500u);
}

TEST(Accelerator, SingleChannelSerializesOffloads)
{
    sim::EventQueue eq;
    AcceleratorConfig cfg;
    cfg.speedupFactor = 1;
    Accelerator dev(eq, cfg);
    std::vector<sim::Tick> done;
    for (int i = 0; i < 3; ++i)
        dev.offload(100, 0, [&] { done.push_back(eq.now()); });
    eq.runAll();
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(done[0], 100u);
    EXPECT_EQ(done[1], 200u);
    EXPECT_EQ(done[2], 300u);
    // Queue waits: 0, 100, 200 -> mean 100. The first offload is
    // dequeued the instant it arrives, so at most two wait at once.
    EXPECT_NEAR(dev.stats().queueWaitCycles.mean(), 100.0, 1e-9);
    EXPECT_EQ(dev.stats().maxQueueDepth, 2u);
}

TEST(Accelerator, MultipleChannelsServeInParallel)
{
    sim::EventQueue eq;
    AcceleratorConfig cfg;
    cfg.channels = 3;
    Accelerator dev(eq, cfg);
    std::vector<sim::Tick> done;
    for (int i = 0; i < 3; ++i)
        dev.offload(100, 0, [&] { done.push_back(eq.now()); });
    eq.runAll();
    for (sim::Tick t : done)
        EXPECT_EQ(t, 100u);
    EXPECT_DOUBLE_EQ(dev.stats().queueWaitCycles.mean(), 0.0);
}

TEST(Accelerator, StatsAccumulateAndReset)
{
    sim::EventQueue eq;
    AcceleratorConfig cfg;
    cfg.speedupFactor = 2;
    Accelerator dev(eq, cfg);
    dev.offload(1000, 0, [] {});
    eq.runAll();
    EXPECT_EQ(dev.stats().served, 1u);
    EXPECT_DOUBLE_EQ(dev.stats().busyCycles, 500);
    dev.resetStats();
    EXPECT_EQ(dev.stats().served, 0u);
    EXPECT_DOUBLE_EQ(dev.stats().busyCycles, 0);
}

TEST(Accelerator, RejectsNegativeWork)
{
    sim::EventQueue eq;
    Accelerator dev(eq, AcceleratorConfig{});
    EXPECT_THROW(dev.offload(-1, 0, [] {}), FatalError);
    EXPECT_THROW(dev.offload(1, -1, [] {}), FatalError);
}

} // namespace
} // namespace accel::microsim

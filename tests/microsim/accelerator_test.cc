/** @file Tests for the accelerator device model. */

#include "microsim/accelerator.hh"

#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::microsim {
namespace {

TEST(Accelerator, ConfigValidation)
{
    AcceleratorConfig bad;
    bad.speedupFactor = 0.5;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = AcceleratorConfig{};
    bad.channels = 0;
    EXPECT_THROW(bad.validate(), FatalError);
    bad = AcceleratorConfig{};
    bad.fixedLatencyCycles = -1;
    EXPECT_THROW(bad.validate(), FatalError);
}

TEST(Accelerator, TransferCyclesLinearInBytes)
{
    sim::EventQueue eq;
    AcceleratorConfig cfg;
    cfg.fixedLatencyCycles = 100;
    cfg.latencyCyclesPerByte = 2;
    Accelerator dev(eq, cfg);
    EXPECT_DOUBLE_EQ(dev.transferCycles(0), 100);
    EXPECT_DOUBLE_EQ(dev.transferCycles(50), 200);
}

TEST(Accelerator, ServiceTimeDividedBySpeedup)
{
    sim::EventQueue eq;
    AcceleratorConfig cfg;
    cfg.speedupFactor = 4;
    Accelerator dev(eq, cfg);
    sim::Tick done = 0;
    dev.offload(1000, 0, [&] { done = eq.now(); });
    eq.runAll();
    EXPECT_EQ(done, 250u);
}

TEST(Accelerator, TransferDelaysArrival)
{
    sim::EventQueue eq;
    AcceleratorConfig cfg;
    cfg.speedupFactor = 2;
    cfg.fixedLatencyCycles = 300;
    Accelerator dev(eq, cfg);
    sim::Tick done = 0;
    dev.offload(1000, 0, [&] { done = eq.now(); });
    eq.runAll();
    EXPECT_EQ(done, 300u + 500u);
}

TEST(Accelerator, HostPaidTransferSkipsDeviceDelay)
{
    sim::EventQueue eq;
    AcceleratorConfig cfg;
    cfg.speedupFactor = 2;
    cfg.fixedLatencyCycles = 300;
    Accelerator dev(eq, cfg);
    sim::Tick done = 0;
    dev.offload(1000, 0, [&] { done = eq.now(); },
                /*transferPaidByHost=*/true);
    eq.runAll();
    EXPECT_EQ(done, 500u);
}

TEST(Accelerator, SingleChannelSerializesOffloads)
{
    sim::EventQueue eq;
    AcceleratorConfig cfg;
    cfg.speedupFactor = 1;
    Accelerator dev(eq, cfg);
    std::vector<sim::Tick> done;
    for (int i = 0; i < 3; ++i)
        dev.offload(100, 0, [&] { done.push_back(eq.now()); });
    eq.runAll();
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(done[0], 100u);
    EXPECT_EQ(done[1], 200u);
    EXPECT_EQ(done[2], 300u);
    // Queue waits: 0, 100, 200 -> mean 100. The first offload is
    // dequeued the instant it arrives, so at most two wait at once.
    EXPECT_NEAR(dev.stats().queueWaitCycles.mean(), 100.0, 1e-9);
    EXPECT_EQ(dev.stats().maxQueueDepth, 2u);
}

TEST(Accelerator, MultipleChannelsServeInParallel)
{
    sim::EventQueue eq;
    AcceleratorConfig cfg;
    cfg.channels = 3;
    Accelerator dev(eq, cfg);
    std::vector<sim::Tick> done;
    for (int i = 0; i < 3; ++i)
        dev.offload(100, 0, [&] { done.push_back(eq.now()); });
    eq.runAll();
    for (sim::Tick t : done)
        EXPECT_EQ(t, 100u);
    EXPECT_DOUBLE_EQ(dev.stats().queueWaitCycles.mean(), 0.0);
}

TEST(Accelerator, StatsAccumulateAndReset)
{
    sim::EventQueue eq;
    AcceleratorConfig cfg;
    cfg.speedupFactor = 2;
    Accelerator dev(eq, cfg);
    dev.offload(1000, 0, [] {});
    eq.runAll();
    EXPECT_EQ(dev.stats().served, 1u);
    EXPECT_DOUBLE_EQ(dev.stats().busyCycles, 500);
    dev.resetStats();
    EXPECT_EQ(dev.stats().served, 0u);
    EXPECT_DOUBLE_EQ(dev.stats().busyCycles, 0);
}

TEST(Accelerator, RejectsNegativeWork)
{
    sim::EventQueue eq;
    Accelerator dev(eq, AcceleratorConfig{});
    EXPECT_THROW(dev.offload(-1, 0, [] {}), FatalError);
    EXPECT_THROW(dev.offload(1, -1, [] {}), FatalError);
}

TEST(Accelerator, ValidationNamesTheOffendingField)
{
    AcceleratorConfig bad;
    bad.channels = 0;
    try {
        bad.validate();
        FAIL() << "channels = 0 accepted";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("channels"),
                  std::string::npos);
    }
}

TEST(Accelerator, ValidationRejectsNonFiniteValues)
{
    AcceleratorConfig bad;
    bad.speedupFactor = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(bad.validate(), FatalError);
    bad = AcceleratorConfig{};
    bad.latencyCyclesPerByte =
        std::numeric_limits<double>::infinity();
    EXPECT_THROW(bad.validate(), FatalError);
    bad = AcceleratorConfig{};
    bad.latencyCyclesPerByte = -0.5;
    EXPECT_THROW(bad.validate(), FatalError);
}

TEST(Accelerator, ValidationCoversTheFaultPlan)
{
    AcceleratorConfig cfg;
    auto plan = std::make_shared<faults::FaultPlan>();
    plan->dropProbability = 2.0;
    cfg.faultPlan = plan;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Accelerator, DroppedResponseServesButNeverCallsBack)
{
    sim::EventQueue eq;
    AcceleratorConfig cfg;
    auto plan = std::make_shared<faults::FaultPlan>();
    plan->dropProbability = 1.0;
    cfg.faultPlan = plan;
    Accelerator dev(eq, cfg);
    int fired = 0;
    dev.offload(100, 0, [&] { ++fired; });
    eq.runAll();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(dev.stats().served, 1u);
    EXPECT_EQ(dev.stats().droppedResponses, 1u);
}

TEST(Accelerator, LateResponseDelaysTheCallback)
{
    sim::EventQueue eq;
    AcceleratorConfig cfg;
    auto plan = std::make_shared<faults::FaultPlan>();
    plan->lateProbability = 1.0;
    plan->lateDelayCycles = 700;
    cfg.faultPlan = plan;
    Accelerator dev(eq, cfg);
    sim::Tick done = 0;
    dev.offload(100, 0, [&] { done = eq.now(); });
    eq.runAll();
    EXPECT_EQ(done, 100u + 700u);
    EXPECT_EQ(dev.stats().lateResponses, 1u);
}

TEST(Accelerator, TransferSpikeMultipliesDeviceSideTransferOnly)
{
    AcceleratorConfig cfg;
    cfg.fixedLatencyCycles = 100;
    auto plan = std::make_shared<faults::FaultPlan>();
    plan->transferSpikeProbability = 1.0;
    plan->transferSpikeFactor = 5.0;
    cfg.faultPlan = plan;

    sim::EventQueue eq;
    Accelerator dev(eq, cfg);
    sim::Tick done = 0;
    dev.offload(100, 0, [&] { done = eq.now(); });
    eq.runAll();
    EXPECT_EQ(done, 500u + 100u); // spiked transfer + service
    EXPECT_EQ(dev.stats().spikedTransfers, 1u);

    // Host-paid transfers were charged at nominal cost on the core
    // already; the spike must not double-bill them.
    sim::EventQueue eq2;
    Accelerator dev2(eq2, cfg);
    sim::Tick done2 = 0;
    dev2.offload(100, 0, [&] { done2 = eq2.now(); },
                 /*transferPaidByHost=*/true);
    eq2.runAll();
    EXPECT_EQ(done2, 100u);
    EXPECT_EQ(dev2.stats().spikedTransfers, 0u);
}

TEST(Accelerator, StallWindowDefersServiceToWindowEnd)
{
    AcceleratorConfig cfg;
    auto plan = std::make_shared<faults::FaultPlan>();
    plan->stallWindows = {{0, 1000}};
    cfg.faultPlan = plan;
    sim::EventQueue eq;
    Accelerator dev(eq, cfg);
    sim::Tick done = 0;
    dev.offload(100, 0, [&] { done = eq.now(); });
    eq.runAll();
    EXPECT_EQ(done, 1000u + 100u);
    EXPECT_GE(dev.stats().stallDeferrals, 1u);
    EXPECT_GT(dev.stats().queueWaitCycles.mean(), 0.0);
}

TEST(Accelerator, DeviceFailureDiscardsArrivalsUntilRecovery)
{
    AcceleratorConfig cfg;
    auto plan = std::make_shared<faults::FaultPlan>();
    plan->deviceFailAtTick = 0;
    plan->deviceRecoverAtTick = 5000;
    cfg.faultPlan = plan;
    sim::EventQueue eq;
    Accelerator dev(eq, cfg);
    int fired = 0;
    dev.offload(100, 0, [&] { ++fired; }); // arrives dead -> lost
    eq.runAll();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(dev.stats().lostToDeviceFailure, 1u);

    eq.runUntil(6000); // past recovery
    sim::Tick done = 0;
    dev.offload(100, 0, [&] { done = eq.now(); });
    eq.runAll();
    EXPECT_EQ(done, 6000u + 100u);
    EXPECT_EQ(dev.stats().served, 1u);
}

TEST(Accelerator, FailureMidServiceLosesInFlightCompletions)
{
    AcceleratorConfig cfg;
    auto plan = std::make_shared<faults::FaultPlan>();
    plan->deviceFailAtTick = 50; // strikes while serving
    cfg.faultPlan = plan;
    sim::EventQueue eq;
    Accelerator dev(eq, cfg);
    int fired = 0;
    dev.offload(100, 0, [&] { ++fired; }); // service 0..100
    eq.runAll();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(dev.stats().lostToDeviceFailure, 1u);
    EXPECT_EQ(dev.stats().served, 0u);
}

TEST(Accelerator, InertPlanIsDroppedAtConstruction)
{
    // A default-constructed plan is the null plan: behaviour and stats
    // must match a device built without one, event for event.
    auto run = [](std::shared_ptr<const faults::FaultPlan> plan) {
        sim::EventQueue eq;
        AcceleratorConfig cfg;
        cfg.speedupFactor = 2;
        cfg.fixedLatencyCycles = 30;
        cfg.faultPlan = std::move(plan);
        Accelerator dev(eq, cfg);
        std::vector<sim::Tick> done;
        for (int i = 0; i < 4; ++i)
            dev.offload(100, 10, [&] { done.push_back(eq.now()); });
        eq.runAll();
        return std::make_pair(done, eq.processed());
    };
    EXPECT_EQ(run(nullptr),
              run(std::make_shared<faults::FaultPlan>()));
}

TEST(Accelerator, FaultReplayIsDeterministic)
{
    auto run = [] {
        sim::EventQueue eq;
        AcceleratorConfig cfg;
        auto plan = std::make_shared<faults::FaultPlan>();
        plan->seed = 12;
        plan->dropProbability = 0.4;
        plan->lateProbability = 0.3;
        plan->lateDelayCycles = 250;
        cfg.faultPlan = plan;
        Accelerator dev(eq, cfg);
        std::vector<sim::Tick> done;
        for (int i = 0; i < 200; ++i)
            dev.offload(50, 0, [&] { done.push_back(eq.now()); });
        eq.runAll();
        return std::make_tuple(done, dev.stats().droppedResponses,
                               dev.stats().lateResponses);
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace accel::microsim

/** @file Tests for time-varying arrival-rate programs. */

#include "microsim/arrival_program.hh"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace accel::microsim {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ArrivalProgram, ConstantProgram)
{
    ArrivalProgram p = ArrivalProgram::constant(1e5);
    EXPECT_FALSE(p.empty());
    EXPECT_TRUE(p.isConstant());
    EXPECT_DOUBLE_EQ(p.rateAt(0.0), 1e5);
    EXPECT_DOUBLE_EQ(p.rateAt(123.0), 1e5);
    EXPECT_DOUBLE_EQ(p.peakRate(), 1e5);
    EXPECT_DOUBLE_EQ(p.meanRate(10.0), 1e5);
}

TEST(ArrivalProgram, EmptyProgramIsZeroRate)
{
    ArrivalProgram p;
    EXPECT_TRUE(p.empty());
    EXPECT_DOUBLE_EQ(p.rateAt(1.0), 0.0);
    EXPECT_DOUBLE_EQ(p.peakRate(), 0.0);
    p.validate(); // empty is a valid "no program"
}

TEST(ArrivalProgram, DayTraceStepsAndWraps)
{
    // Three 10-second steps at 1x, 2x, 0.5x of 1000/s; period 30 s.
    ArrivalProgram p =
        ArrivalProgram::dayTrace(1000.0, {1.0, 2.0, 0.5}, 10.0);
    EXPECT_DOUBLE_EQ(p.periodSeconds, 30.0);
    EXPECT_DOUBLE_EQ(p.rateAt(0.0), 1000.0);
    EXPECT_DOUBLE_EQ(p.rateAt(9.999), 1000.0);
    EXPECT_DOUBLE_EQ(p.rateAt(10.0), 2000.0);
    EXPECT_DOUBLE_EQ(p.rateAt(25.0), 500.0);
    // Wraps: t = 35 is t = 5 of the next day.
    EXPECT_DOUBLE_EQ(p.rateAt(35.0), 1000.0);
    EXPECT_DOUBLE_EQ(p.peakRate(), 2000.0);
    // Mean over exactly one period: (1 + 2 + 0.5)/3 * 1000.
    EXPECT_NEAR(p.meanRate(30.0), 3500.0 / 3.0, 1e-9);
    EXPECT_FALSE(p.isConstant());
}

TEST(ArrivalProgram, FlashCrowdShape)
{
    // Zero until 10 s, ramp up over 2 s, hold 5 s, ramp down over 2 s.
    ArrivalProgram p = ArrivalProgram::flashCrowd(800.0, 10.0, 2.0, 5.0);
    EXPECT_DOUBLE_EQ(p.rateAt(0.0), 0.0);
    EXPECT_DOUBLE_EQ(p.rateAt(9.99), 0.0);
    EXPECT_DOUBLE_EQ(p.rateAt(11.0), 400.0); // mid-ramp
    EXPECT_DOUBLE_EQ(p.rateAt(12.0), 800.0);
    EXPECT_DOUBLE_EQ(p.rateAt(15.0), 800.0);
    EXPECT_DOUBLE_EQ(p.rateAt(18.0), 400.0); // mid-ramp-down
    EXPECT_DOUBLE_EQ(p.rateAt(19.0), 0.0);
    EXPECT_DOUBLE_EQ(p.rateAt(100.0), 0.0);
    EXPECT_DOUBLE_EQ(p.peakRate(), 800.0);
}

TEST(ArrivalProgram, ComposeSumsRates)
{
    ArrivalProgram base = ArrivalProgram::constant(1000.0);
    ArrivalProgram flash =
        ArrivalProgram::flashCrowd(500.0, 1.0, 0.5, 1.0);
    ArrivalProgram mix = ArrivalProgram::compose({base, flash});
    EXPECT_DOUBLE_EQ(mix.rateAt(0.5), 1000.0);
    EXPECT_DOUBLE_EQ(mix.rateAt(1.25), 1250.0); // mid-ramp
    EXPECT_DOUBLE_EQ(mix.rateAt(2.0), 1500.0);  // holding
    EXPECT_DOUBLE_EQ(mix.rateAt(10.0), 1000.0); // after the surge
    EXPECT_DOUBLE_EQ(mix.peakRate(), 1500.0);
    // The composed breakpoints keep the ramp exact, so the integral
    // equals base + the surge trapezoid: 500 * (0.5 + 1.0 + 0.5)/... :
    // ramp up (0.5 s avg 250) + hold (1 s at 500) + ramp down.
    double surgeArea = 0.5 * 0.5 * 500.0 * 2 + 1.0 * 500.0;
    EXPECT_NEAR(mix.meanRate(10.0), 1000.0 + surgeArea / 10.0, 1e-9);
}

TEST(ArrivalProgram, ComposeMultiTenantMix)
{
    // Two periodic tenants with the same period sum pointwise.
    ArrivalProgram a = ArrivalProgram::dayTrace(100.0, {1.0, 3.0}, 5.0);
    ArrivalProgram b = ArrivalProgram::dayTrace(50.0, {2.0, 1.0}, 5.0);
    ArrivalProgram mix = ArrivalProgram::compose({a, b});
    EXPECT_DOUBLE_EQ(mix.periodSeconds, 10.0);
    EXPECT_DOUBLE_EQ(mix.rateAt(0.0), 200.0);
    EXPECT_DOUBLE_EQ(mix.rateAt(7.0), 350.0);
    EXPECT_DOUBLE_EQ(mix.rateAt(12.0), 200.0); // wrapped
}

TEST(ArrivalProgram, ComposeRejectsPeriodMismatch)
{
    ArrivalProgram a = ArrivalProgram::dayTrace(100.0, {1.0}, 5.0);
    ArrivalProgram b = ArrivalProgram::constant(10.0);
    EXPECT_THROW(ArrivalProgram::compose({a, b}), FatalError);
}

TEST(ArrivalProgram, ValidateRejectsBadShapes)
{
    ArrivalProgram p;
    // Must start at t = 0.
    p.segments = {ArrivalSegment{1.0, 2.0, 10.0, 10.0}};
    EXPECT_THROW(p.validate(), FatalError);
    // Gap between segments.
    p.segments = {ArrivalSegment{0.0, 1.0, 10.0, 10.0},
                  ArrivalSegment{2.0, 3.0, 10.0, 10.0}};
    EXPECT_THROW(p.validate(), FatalError);
    // An unbounded segment must come last and cannot ramp.
    p.segments = {ArrivalSegment{0.0, kInf, 10.0, 20.0}};
    EXPECT_THROW(p.validate(), FatalError);
    // All-zero rate has no arrivals to generate.
    p.segments = {ArrivalSegment{0.0, kInf, 0.0, 0.0}};
    EXPECT_THROW(p.validate(), FatalError);
    // Periodic segments must tile the period exactly.
    p.segments = {ArrivalSegment{0.0, 1.0, 10.0, 10.0}};
    p.periodSeconds = 2.0;
    EXPECT_THROW(p.validate(), FatalError);
    // Negative rates are out of domain.
    p.periodSeconds = 0.0;
    p.segments = {ArrivalSegment{0.0, kInf, -5.0, -5.0}};
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(ArrivalProgram, NonPeriodicHoldsFinalRate)
{
    ArrivalProgram p;
    p.segments = {ArrivalSegment{0.0, 1.0, 100.0, 200.0},
                  ArrivalSegment{1.0, kInf, 200.0, 200.0}};
    p.validate();
    EXPECT_DOUBLE_EQ(p.rateAt(0.5), 150.0);
    EXPECT_DOUBLE_EQ(p.rateAt(50.0), 200.0);
    // Mean over [0, 2]: ramp trapezoid (avg 150) + 1 s held at 200.
    EXPECT_NEAR(p.meanRate(2.0), (150.0 + 200.0) / 2.0, 1e-9);
}

TEST(ArrivalProgramConfig, StepTraceParses)
{
    Config cfg = Config::fromString(
        "[svc]\n"
        "arrival_trace = 0:1e5, 0.2:2e5, 0.4:5e4\n"
        "arrival_shape = step\n");
    ArrivalProgram p = arrivalProgramFromConfig(cfg, "svc");
    EXPECT_DOUBLE_EQ(p.rateAt(0.1), 1e5);
    EXPECT_DOUBLE_EQ(p.rateAt(0.3), 2e5);
    EXPECT_DOUBLE_EQ(p.rateAt(0.5), 5e4);
    EXPECT_DOUBLE_EQ(p.rateAt(10.0), 5e4); // final rate held
    EXPECT_DOUBLE_EQ(p.peakRate(), 2e5);
}

TEST(ArrivalProgramConfig, LinearPeriodicTraceRampsBack)
{
    Config cfg = Config::fromString(
        "[svc]\n"
        "arrival_trace = 0:100, 1:300\n"
        "arrival_shape = linear\n"
        "arrival_period = 2\n");
    ArrivalProgram p = arrivalProgramFromConfig(cfg, "svc");
    EXPECT_DOUBLE_EQ(p.periodSeconds, 2.0);
    EXPECT_DOUBLE_EQ(p.rateAt(0.5), 200.0);
    // Last span ramps back to the first breakpoint's rate.
    EXPECT_DOUBLE_EQ(p.rateAt(1.5), 200.0);
    EXPECT_DOUBLE_EQ(p.rateAt(2.5), 200.0); // wrapped
}

TEST(ArrivalProgramConfig, FlashOverlayComposes)
{
    Config cfg = Config::fromString(
        "[svc]\n"
        "arrival_trace = 0:1000\n"
        "arrival_flash_at = 0.5\n"
        "arrival_flash_extra = 400\n"
        "arrival_flash_ramp = 0.1\n"
        "arrival_flash_hold = 0.2\n");
    ArrivalProgram p = arrivalProgramFromConfig(cfg, "svc");
    EXPECT_DOUBLE_EQ(p.rateAt(0.0), 1000.0);
    EXPECT_DOUBLE_EQ(p.rateAt(0.7), 1400.0);
    EXPECT_DOUBLE_EQ(p.rateAt(2.0), 1000.0);
}

TEST(ArrivalProgramConfig, AbsentKeysYieldEmptyProgram)
{
    Config cfg = Config::fromString("[svc]\nopen_arrivals_per_sec = 5\n");
    EXPECT_TRUE(arrivalProgramFromConfig(cfg, "svc").empty());
}

TEST(ArrivalProgramConfig, RejectsMalformedKeys)
{
    // Period without a trace.
    Config noTrace =
        Config::fromString("[svc]\narrival_period = 2\n");
    EXPECT_THROW(arrivalProgramFromConfig(noTrace, "svc"), FatalError);
    // Shape without a trace.
    Config noShape =
        Config::fromString("[svc]\narrival_shape = step\n");
    EXPECT_THROW(arrivalProgramFromConfig(noShape, "svc"), FatalError);
    // Malformed breakpoint.
    Config badPair = Config::fromString(
        "[svc]\narrival_trace = 0:100, oops\n");
    EXPECT_THROW(arrivalProgramFromConfig(badPair, "svc"), FatalError);
    // Flash crowd on a periodic trace is unsupported.
    Config flashPeriodic = Config::fromString(
        "[svc]\n"
        "arrival_trace = 0:100\n"
        "arrival_period = 1\n"
        "arrival_flash_at = 0.5\n"
        "arrival_flash_extra = 10\n"
        "arrival_flash_hold = 0.1\n");
    EXPECT_THROW(arrivalProgramFromConfig(flashPeriodic, "svc"),
                 FatalError);
    // Unknown shape literal.
    Config badShape = Config::fromString(
        "[svc]\narrival_trace = 0:100\narrival_shape = wavy\n");
    EXPECT_THROW(arrivalProgramFromConfig(badShape, "svc"), FatalError);
}

} // namespace
} // namespace accel::microsim
